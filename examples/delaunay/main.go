// Delaunay-style work-queue refinement with TransactionalQueue.
//
// The paper's §3.3 motivates TransactionalQueue with Delaunay mesh
// refinement (after Kulkarni et al.): workers repeatedly take a "bad
// triangle" from a shared queue, refine it — possibly producing new bad
// triangles that go back on the queue — and must do so atomically: if
// the refinement transaction aborts, the work it took must return to
// the queue and the work it produced must vanish. Raw open nesting gets
// this wrong ("if transactions abort, the new work added to the queue
// is invalid, but may be impossible to recover since another
// transaction may have dequeued it"); TransactionalQueue's buffered
// puts and compensated takes get it right.
//
// This example runs a synthetic refinement (each element splits into
// children until its quality reaches a threshold) with injected
// transaction failures, then checks that every element was processed
// exactly once — nothing lost, nothing duplicated.
//
// Run with:
//
//	go run ./examples/delaunay
package main

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"tcc/internal/collections"
	"tcc/internal/core"
	"tcc/internal/stm"
)

// element is one unit of refinement work.
type element struct {
	ID      int64
	Quality int // refined (dropped) when Quality reaches 0
}

const (
	seeds   = 64
	quality = 3 // each seed produces a tree of refinements this deep
	workers = 6
)

func main() {
	queue := core.NewTransactionalQueue[element](collections.NewLinkedQueue[element]())
	ids := core.NewUIDGen(0)
	processed := core.NewCounter(0)

	setup := stm.NewThread(&stm.RealClock{}, 0)
	if err := setup.Atomic(func(tx *stm.Tx) error {
		for i := 0; i < seeds; i++ {
			queue.Put(tx, element{ID: ids.Next(tx), Quality: quality})
		}
		return nil
	}); err != nil {
		panic(err)
	}

	// The complete refinement is a binary tree of depth `quality` per
	// seed, so the total number of elements is known up front and doubles
	// as the termination condition.
	want := seeds * ((1 << (quality + 1)) - 1)

	var seen sync.Map // element ID -> times processed
	injected := errors.New("injected failure")

	var wg sync.WaitGroup
	var injectedCount int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := stm.NewThread(&stm.RealClock{}, int64(id+1))
			step := 0
			for {
				var got element
				var ok bool
				err := th.Atomic(func(tx *stm.Tx) error {
					got, ok = queue.Poll(tx)
					if !ok {
						return nil // queue empty (other workers may refill it)
					}
					// Refine: produce children while quality remains.
					if got.Quality > 0 {
						queue.Put(tx, element{ID: ids.Next(tx), Quality: got.Quality - 1})
						queue.Put(tx, element{ID: ids.Next(tx), Quality: got.Quality - 1})
					}
					processed.Add(tx, 1)
					step++
					if step%7 == 0 {
						// Simulated cascade failure: the element we
						// took must return to the queue, the children
						// we produced must never appear.
						return injected
					}
					return nil
				})
				switch {
				case err == injected:
					mu.Lock()
					injectedCount++
					mu.Unlock()
					continue
				case err != nil:
					panic(err)
				case !ok:
					// Empty queue is not termination: a peer may still
					// be refining and about to publish children. Done
					// only once every known element has been processed.
					if processed.Value() >= int64(want) {
						return
					}
					runtime.Gosched()
					continue
				}
				// Successful commit: record exactly-once processing.
				if n, loaded := seen.LoadOrStore(got.ID, 1); loaded {
					seen.Store(got.ID, n.(int)+1)
				}
			}
		}(w)
	}
	wg.Wait()

	count, dups := 0, 0
	seen.Range(func(_, v any) bool {
		count++
		if v.(int) != 1 {
			dups++
		}
		return true
	})
	fmt.Printf("elements processed   = %d (want %d)\n", count, want)
	fmt.Printf("duplicate processing = %d (want 0)\n", dups)
	fmt.Printf("injected failures    = %d (each rolled back and retried safely)\n", injectedCount)
	fmt.Printf("committed refinements (open-nested counter) = %d\n", processed.Value())
	fmt.Printf("queue leftover       = %d (want 0)\n", queue.CommittedSize())
	if count != want || dups != 0 || queue.CommittedSize() != 0 {
		panic("refinement lost or duplicated work")
	}
	fmt.Println("ok: no work lost or duplicated despite aborted transactions")
}
