// jbbdemo runs the high-contention SPECjbb2000-style workload end to
// end on the deterministic simulator, in all four configurations of the
// paper's Figure 4, and validates warehouse consistency after each run.
//
// Run with:
//
//	go run ./examples/jbbdemo
//	go run ./examples/jbbdemo -cpus 16 -ops 2048
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"tcc/internal/harness"
	"tcc/internal/jbb"
)

func main() {
	cpus := flag.Int("cpus", 8, "virtual CPUs")
	ops := flag.Int("ops", 1024, "total operations")
	flag.Parse()

	params := jbb.DefaultParams()
	configs := []jbb.Config{
		jbb.ConfigJava,
		jbb.ConfigAtomosBaseline,
		jbb.ConfigAtomosOpen,
		jbb.ConfigAtomosTransactional,
	}

	fmt.Printf("SPECjbb2000-style workload: %d virtual CPUs, %d operations, single warehouse\n\n", *cpus, *ops)
	var baseline float64
	for _, cfg := range configs {
		pl := &harness.SimPlatform{Seed: 42}
		var wh jbb.Warehouse
		if cfg == jbb.ConfigJava {
			wh = jbb.NewJavaWarehouse(params, pl)
		} else {
			wh = jbb.NewAtomosWarehouse(cfg, params)
		}
		var mu sync.Mutex
		var counts jbb.Counts
		per := *ops / *cpus
		res := pl.Run(*cpus, func(w *harness.Worker) {
			var local jbb.Counts
			for i := 0; i < per; i++ {
				local.Add(wh.Do(w, jbb.DrawOp(w)))
			}
			mu.Lock()
			counts.Add(local)
			mu.Unlock()
		})
		if err := wh.Check(counts); err != nil {
			fmt.Fprintf(os.Stderr, "consistency check FAILED: %v\n", err)
			os.Exit(1)
		}
		if baseline == 0 {
			baseline = res.Elapsed
		}
		fmt.Printf("%-22s makespan %12.0f cycles  throughput x%.2f   aborts=%d violations=%d\n",
			cfg.String(), res.Elapsed, baseline/res.Elapsed, res.Stats.Aborts, res.Stats.Violations)
		fmt.Printf("%22s orders=%d payments=%d deliveries=%d (consistency: ok)\n",
			"", counts.NewOrders, counts.Payments, counts.Deliveries)
		if profile := harness.FormatViolationProfile(res.Stats, 3); profile != "" {
			fmt.Printf("%22s lost work: %s\n", "", profile)
		}
	}
	fmt.Println("\nAll four configurations passed their warehouse consistency checks.")
}
