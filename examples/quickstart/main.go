// Quickstart: wrap an existing map in a TransactionalMap and operate on
// it from concurrent long-running transactions.
//
// The program runs several goroutines, each repeatedly executing a
// transaction that composes multiple map operations (a read-modify-write
// on one key plus an insert of a fresh key). Because the wrapper uses
// semantic concurrency control, inserts of different keys never
// conflict — even though every insert changes the hash table's internal
// size field — while read-modify-writes of the same key serialize
// correctly.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"tcc/internal/collections"
	"tcc/internal/core"
	"tcc/internal/stm"
)

func main() {
	// Wrap a plain, non-thread-safe HashMap — the same way the paper
	// wraps java.util.HashMap. All access now goes through the wrapper.
	tm := core.NewTransactionalMap[string, int](collections.NewHashMap[string, int]())

	const workers = 8
	const perWorker = 200

	var wg sync.WaitGroup
	var totalViolations, totalAborts uint64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Each concurrent worker needs its own stm.Thread.
			th := stm.NewThread(&stm.RealClock{}, int64(id))
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("worker-%d-item-%d", id, i)
				err := th.Atomic(func(tx *stm.Tx) error {
					// Compose several operations atomically: bump a
					// shared counter key and insert a private key.
					n, _ := tm.Get(tx, "total")
					tm.Put(tx, "total", n+1)
					tm.Put(tx, key, i)
					return nil
				})
				if err != nil {
					panic(err)
				}
			}
			mu.Lock()
			totalViolations += th.Stats.Violations
			totalAborts += th.Stats.Aborts
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	th := stm.NewThread(&stm.RealClock{}, 99)
	if err := th.Atomic(func(tx *stm.Tx) error {
		total, _ := tm.Get(tx, "total")
		size := tm.Size(tx)
		fmt.Printf("counter key 'total' = %d (want %d)\n", total, workers*perWorker)
		fmt.Printf("map size            = %d (want %d)\n", size, workers*perWorker+1)
		return nil
	}); err != nil {
		panic(err)
	}
	fmt.Printf("semantic violations = %d (same-key read-modify-write conflicts, resolved by retry)\n", totalViolations)
	fmt.Printf("memory aborts       = %d (the wrapper eliminates size-field conflicts)\n", totalAborts)
}
