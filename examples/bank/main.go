// Bank: atomic composition across multiple transactional collections.
//
// Accounts live in a TransactionalSortedMap (so an auditor can iterate
// them in order) and every transfer also appends to a
// TransactionalMap-backed journal — one transaction touching two
// collections plus an open-nested UID generator. This is the capability
// the paper contrasts against undisciplined open nesting: "transactional
// collection classes allow programmers to compose multiple operations on
// transactional objects atomically" (§1).
//
// While transfer workers run, an auditor repeatedly sums every balance
// through a full ordered iteration; serializability guarantees it always
// observes the conserved total.
//
// Run with:
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tcc/internal/collections"
	"tcc/internal/core"
	"tcc/internal/stm"
)

const (
	accounts       = 16
	initialBalance = 1_000
	transfers      = 400
	workers        = 4
)

type journalEntry struct {
	From, To, Amount int
}

func main() {
	ledger := core.NewTransactionalSortedMap[int, int](collections.NewTreeMap[int, int]())
	journal := core.NewTransactionalMap[int64, journalEntry](collections.NewHashMap[int64, journalEntry]())
	txnIDs := core.NewUIDGen(1)

	setup := stm.NewThread(&stm.RealClock{}, 0)
	if err := setup.Atomic(func(tx *stm.Tx) error {
		for i := 0; i < accounts; i++ {
			ledger.Put(tx, i, initialBalance)
		}
		return nil
	}); err != nil {
		panic(err)
	}

	var wg sync.WaitGroup
	var audits, anomalies atomic.Int64
	stop := make(chan struct{})

	// Auditor: iterate the whole ledger in key order and check the
	// invariant. The full enumeration takes key locks plus the size
	// lock, so any committing transfer that would make the sum
	// inconsistent aborts the audit instead.
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := stm.NewThread(&stm.RealClock{}, 100)
		for {
			select {
			case <-stop:
				return
			default:
			}
			sum := 0
			if err := th.Atomic(func(tx *stm.Tx) error {
				sum = 0
				ledger.ForEach(tx, func(_ int, balance int) bool {
					sum += balance
					return true
				})
				return nil
			}); err != nil {
				panic(err)
			}
			audits.Add(1)
			if sum != accounts*initialBalance {
				anomalies.Add(1)
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := stm.NewThread(&stm.RealClock{}, int64(id+1))
			for i := 0; i < transfers; i++ {
				from := (id + i) % accounts
				to := (id + 3*i + 1) % accounts
				if from == to {
					continue
				}
				if err := th.Atomic(func(tx *stm.Tx) error {
					a, _ := ledger.Get(tx, from)
					b, _ := ledger.Get(tx, to)
					amount := 1 + i%20
					ledger.Put(tx, from, a-amount)
					ledger.Put(tx, to, b+amount)
					// Journal entry: fresh UID (open-nested, conflict
					// free) + blind insert (no read dependency).
					id := txnIDs.Next(tx)
					journal.PutUnread(tx, id, journalEntry{From: from, To: to, Amount: amount})
					return nil
				}); err != nil {
					panic(err)
				}
			}
		}(w)
	}

	// Let the transfer workers finish, then stop the auditor.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// The auditor is part of wg; signal it once the workers are done by
	// polling the journal size (each worker writes its transfers).
	finish := make(chan struct{})
	go func() {
		defer close(finish)
		th := stm.NewThread(&stm.RealClock{}, 200)
		for {
			var n int
			if err := th.Atomic(func(tx *stm.Tx) error {
				n = journal.Size(tx)
				return nil
			}); err != nil {
				panic(err)
			}
			if n >= workers*(transfers-transfers/accounts-1) {
				return
			}
		}
	}()
	<-finish
	close(stop)
	<-done

	check := stm.NewThread(&stm.RealClock{}, 300)
	if err := check.Atomic(func(tx *stm.Tx) error {
		sum := 0
		var lowest, highest int
		first := true
		ledger.ForEach(tx, func(acct, balance int) bool {
			sum += balance
			if first || balance < lowest {
				lowest = balance
			}
			if first || balance > highest {
				highest = balance
			}
			first = false
			return true
		})
		fmt.Printf("total balance   = %d (want %d)\n", sum, accounts*initialBalance)
		fmt.Printf("balance range   = [%d, %d]\n", lowest, highest)
		fmt.Printf("journal entries = %d\n", journal.Size(tx))
		fmt.Printf("audits run      = %d, anomalies = %d\n", audits.Load(), anomalies.Load())
		if sum != accounts*initialBalance || anomalies.Load() != 0 {
			return fmt.Errorf("invariant violated")
		}
		return nil
	}); err != nil {
		panic(err)
	}
	fmt.Println("ok: every audit observed a serializable snapshot")
}
