package tcc

// The figure benchmarks run the paper's evaluation sweeps on the
// deterministic virtual-CPU simulator and expose the headline speedups
// as custom benchmark metrics (e.g. "java@32x", "tcc@32x"), so
// `go test -bench .` regenerates the numbers behind every figure. The
// ablation benchmarks measure the §5.1 design choices. The microbench
// group at the end measures real wall-clock operation costs.

import (
	"sync/atomic"
	"testing"
	"time"

	"tcc/internal/collections"
	"tcc/internal/concurrent"
	"tcc/internal/core"
	"tcc/internal/harness"
	"tcc/internal/jbb"
	"tcc/internal/stm"
	"tcc/internal/stmcol"
)

// benchCPUs is a reduced sweep (the full 1..32 sweep is tccbench's job;
// benches report the endpoints that characterize each figure's shape).
var benchCPUs = []int{1, 32}

func reportFigure(b *testing.B, fig harness.Figure, short []string) {
	for i, s := range fig.Series {
		b.ReportMetric(s.Speedup[32], short[i]+"@32x")
	}
}

// BenchmarkFigure1 regenerates TestMap: Java HashMap vs Atomos HashMap
// vs Atomos TransactionalMap.
func BenchmarkFigure1(b *testing.B) {
	p := harness.DefaultMapParams()
	p.TotalOps = 2048
	var fig harness.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.RunFigure("TestMap", harness.TestMapConfigs(p), benchCPUs, p.TotalOps, 7)
	}
	reportFigure(b, fig, []string{"java", "atomos", "tcc"})
}

// BenchmarkFigure2 regenerates TestSortedMap: Java TreeMap vs Atomos
// TreeMap vs Atomos TransactionalSortedMap.
func BenchmarkFigure2(b *testing.B) {
	p := harness.DefaultMapParams()
	p.TotalOps = 2048
	var fig harness.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.RunFigure("TestSortedMap", harness.TestSortedMapConfigs(p), benchCPUs, p.TotalOps, 7)
	}
	reportFigure(b, fig, []string{"java", "atomos", "tcc"})
}

// BenchmarkFigure3 regenerates TestCompound: composed operations under
// a coarse lock vs inside one transaction.
func BenchmarkFigure3(b *testing.B) {
	p := harness.DefaultMapParams()
	p.TotalOps = 2048
	var fig harness.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.RunFigure("TestCompound", harness.TestCompoundConfigs(p), benchCPUs, p.TotalOps, 7)
	}
	reportFigure(b, fig, []string{"java", "atomos", "tcc"})
}

// BenchmarkFigureDisjoint sweeps the commit-guard sharding pair: one
// shared TransactionalMap (overlapping guard footprints and keyspace)
// against per-worker private maps (pairwise-disjoint footprints). The
// disjoint line scales near-linearly because nothing — neither the
// optimistic read/write sets nor, since the guards were sharded, the
// commit handlers — is shared between workers.
func BenchmarkFigureDisjoint(b *testing.B) {
	p := harness.DefaultMapParams()
	p.TotalOps = 2048
	var fig harness.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.RunFigure("TestDisjoint", harness.DisjointMapConfigs(p), benchCPUs, p.TotalOps, 7)
	}
	reportFigure(b, fig, []string{"shared", "disjoint"})
}

// BenchmarkFigureStriped sweeps the intra-collection striping pair
// (tccbench figure 5): one shared map, per-worker disjoint key ranges,
// single-guard baseline vs 16-stripe map.
func BenchmarkFigureStriped(b *testing.B) {
	p := harness.DefaultMapParams()
	p.TotalOps = 2048
	var fig harness.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.RunFigure("TestStripedMap", harness.StripedMapConfigs(p), benchCPUs, p.TotalOps, 7)
	}
	reportFigure(b, fig, []string{"single", "striped"})
}

// BenchmarkFigureReadRatio sweeps the 99%-read snapshot pairing
// (tccbench figure 7): each structure's lookups run once on the retry
// path and once as MVCC-lite snapshot transactions.
func BenchmarkFigureReadRatio(b *testing.B) {
	p := harness.ReadRatioParams(99)
	p.TotalOps = 2048
	var fig harness.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.RunFigure("TestMapRead99", harness.ReadRatioConfigs(p), benchCPUs, p.TotalOps, 7)
	}
	reportFigure(b, fig, []string{"atomosRetry", "atomosSnap", "tccRetry", "tccSnap"})
}

// hotMapDisjointKeys is the wall-clock demonstration for
// intra-collection striping, the map-level sequel to
// stm.BenchmarkSTMDisjointHandlerWindow: 8 workers hammer ONE shared
// map, each on its own key, and each commit carries a 50µs sleeping
// handler under that key's stripe guard (I/O-shaped post-commit work).
// On the single-guard map every handler window — the map's own commit
// handler and the sleep — serializes behind the one instance guard, so
// an op costs ~8×50µs; on the striped map the workers' keys live on
// distinct stripes, the windows overlap, and the per-op cost approaches
// the 50µs floor even on one CPU, because sleeping goroutines yield.
func hotMapDisjointKeys(b *testing.B, tm *core.TransactionalMap[int, int]) {
	const workers = 8
	// One key per worker; when the map has at least `workers` stripes
	// the keys are chosen on pairwise-distinct stripes.
	keys := make([]int, 0, workers)
	seenStripe := make(map[int]bool)
	for k := 0; len(keys) < workers && k < 1<<16; k++ {
		si := tm.StripeOf(k)
		if tm.Stripes() >= workers && seenStripe[si] {
			continue
		}
		seenStripe[si] = true
		keys = append(keys, k)
	}
	var next atomic.Int64
	b.SetParallelism(workers)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		wkr := int(next.Add(1)-1) % workers
		k := keys[wkr]
		g := tm.StripeGuard(k)
		th := stm.NewThread(&stm.RealClock{}, int64(wkr+1))
		handler := func() { time.Sleep(50 * time.Microsecond) }
		v := 0
		for pb.Next() {
			v++
			_ = th.Atomic(func(tx *stm.Tx) error {
				tm.Put(tx, k, v)
				tx.OnCommitGuarded(g, handler)
				return nil
			})
		}
	})
}

// BenchmarkSTMHotMapDisjointKeys is the tentpole target: disjoint-key
// writers on one striped map commit in parallel.
func BenchmarkSTMHotMapDisjointKeys(b *testing.B) {
	hotMapDisjointKeys(b, core.NewStripedTransactionalMap[int, int](func() collections.Map[int, int] {
		return collections.NewHashMap[int, int]()
	}, core.DefaultStripes))
}

// BenchmarkSTMHotMapDisjointKeysSingleGuard is the pre-striping
// baseline: the same workload against a single-guard TransactionalMap.
func BenchmarkSTMHotMapDisjointKeysSingleGuard(b *testing.B) {
	hotMapDisjointKeys(b, core.NewTransactionalMap[int, int](collections.NewHashMap[int, int]()))
}

// hotSortedMapDisjointRanges is the sorted-map sequel to
// hotMapDisjointKeys: 8 workers hammer ONE shared sorted map, each
// confined to its own key range, and each commit carries a 50µs
// sleeping handler under that range's stripe guard. On the single-guard
// sorted map every window serializes; on the range-striped map the
// workers' intervals live on distinct stripes and the windows overlap.
func hotSortedMapDisjointRanges(b *testing.B, tm *core.TransactionalSortedMap[int, int]) {
	const workers = 8
	var next atomic.Int64
	b.SetParallelism(workers)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		wkr := int(next.Add(1)-1) % workers
		base := wkr * 1024 // worker w owns [w*1024, (w+1)*1024)
		g := tm.StripeGuard(base)
		th := stm.NewThread(&stm.RealClock{}, int64(wkr+1))
		handler := func() { time.Sleep(50 * time.Microsecond) }
		v := 0
		for pb.Next() {
			v++
			_ = th.Atomic(func(tx *stm.Tx) error {
				tm.Put(tx, base+v&1023, v)
				tx.OnCommitGuarded(g, handler)
				return nil
			})
		}
	})
}

// sortedBenchBoundaries splits the 8 workers' 1024-key intervals onto
// distinct stripes.
var sortedBenchBoundaries = []int{1024, 2048, 3072, 4096, 5120, 6144, 7168}

// BenchmarkSTMHotSortedMap is the tentpole target: disjoint-range
// writers on one range-striped sorted map commit in parallel.
func BenchmarkSTMHotSortedMap(b *testing.B) {
	hotSortedMapDisjointRanges(b, core.NewRangeStripedTransactionalSortedMap[int, int](func() collections.SortedMap[int, int] {
		return collections.NewTreeMap[int, int]()
	}, sortedBenchBoundaries))
}

// BenchmarkSTMHotSortedMapSingleGuard is the pre-striping baseline: the
// same workload against a single-guard TransactionalSortedMap.
func BenchmarkSTMHotSortedMapSingleGuard(b *testing.B) {
	hotSortedMapDisjointRanges(b, core.NewTransactionalSortedMap[int, int](collections.NewTreeMap[int, int]()))
}

// hotQueueDisjointLanes is the companion queue demonstration: 8
// producers each append to their own lane, every commit carrying a 50µs
// sleeping handler under that lane's guard.
func hotQueueDisjointLanes(b *testing.B, q *core.TransactionalQueue[int], lanes int) {
	const workers = 8
	var next atomic.Int64
	b.SetParallelism(workers)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		wkr := int(next.Add(1)-1) % workers
		lane := wkr % lanes
		g := q.LaneGuard(lane)
		th := stm.NewThread(&stm.RealClock{}, int64(wkr+1))
		handler := func() { time.Sleep(50 * time.Microsecond) }
		for pb.Next() {
			_ = th.Atomic(func(tx *stm.Tx) error {
				q.PutLane(tx, lane, wkr)
				tx.OnCommitGuarded(g, handler)
				return nil
			})
		}
	})
}

// BenchmarkSTMHotQueueDisjointLanes: disjoint-lane producers on one
// segmented queue commit in parallel.
func BenchmarkSTMHotQueueDisjointLanes(b *testing.B) {
	hotQueueDisjointLanes(b, core.NewSegmentedTransactionalQueue[int](func() collections.Queue[int] {
		return collections.NewLinkedQueue[int]()
	}, 8), 8)
}

// BenchmarkSTMHotQueueDisjointLanesSingleLane is the pre-segmentation
// baseline: the same workload against a single-lane queue.
func BenchmarkSTMHotQueueDisjointLanesSingleLane(b *testing.B) {
	hotQueueDisjointLanes(b, core.NewTransactionalQueue[int](collections.NewLinkedQueue[int]()), 1)
}

// BenchmarkFigure4 regenerates the single-warehouse SPECjbb2000 sweep
// across the four configurations.
func BenchmarkFigure4(b *testing.B) {
	var fig harness.Figure
	for i := 0; i < b.N; i++ {
		fig = jbb.RunFigure4(benchCPUs, 2048, jbb.DefaultParams(), 11)
	}
	reportFigure(b, fig, []string{"java", "baseline", "open", "tcc"})
}

// ablationRun measures `ops` transactions of `body` across 16 virtual
// CPUs and returns the run's result (virtual makespan + stats).
func ablationRunFull(ops int, setup func(pl harness.Platform) func(w *harness.Worker)) harness.Result {
	pl := &harness.SimPlatform{Seed: 5}
	exec := setup(pl)
	const cpus = 16
	return pl.Run(cpus, func(w *harness.Worker) {
		for i := 0; i < ops/cpus; i++ {
			exec(w)
		}
	})
}

// ablationRun is ablationRunFull reduced to the simulated makespan.
func ablationRun(ops int, setup func(pl harness.Platform) func(w *harness.Worker)) float64 {
	return ablationRunFull(ops, setup).Elapsed
}

// BenchmarkAblationIsEmpty reproduces the §5.1 example: transactions
// running "if !m.IsEmpty() { m.Put(freshKey, v) }" on a non-empty map
// commute under the empty-transition lock but serialize when isEmpty is
// derived from size.
func BenchmarkAblationIsEmpty(b *testing.B) {
	mk := func(viaSize bool) func(pl harness.Platform) func(w *harness.Worker) {
		return func(pl harness.Platform) func(w *harness.Worker) {
			tm := core.NewTransactionalMap[int, int](collections.NewHashMap[int, int]())
			tm.SetIsEmptyViaSize(viaSize)
			th := stm.NewThread(&stm.RealClock{}, 1)
			_ = th.Atomic(func(tx *stm.Tx) error {
				tm.Put(tx, -1, 0)
				return nil
			})
			return func(w *harness.Worker) {
				k := w.Index<<20 | w.RNG.Intn(1<<20)
				_ = w.Thread.Atomic(func(tx *stm.Tx) error {
					w.Compute(500)
					if !tm.IsEmpty(tx) {
						tm.Put(tx, k, 1)
					}
					w.Compute(500)
					return nil
				})
			}
		}
	}
	var emptyLock, sizeLock float64
	for i := 0; i < b.N; i++ {
		emptyLock = ablationRun(1024, mk(false))
		sizeLock = ablationRun(1024, mk(true))
	}
	b.ReportMetric(sizeLock/emptyLock, "sizeLockSlowdown")
}

// BenchmarkAblationBlindPut reproduces the "LastModified" example:
// value-returning puts to one shared key order all writers, blind puts
// commute.
func BenchmarkAblationBlindPut(b *testing.B) {
	mk := func(blind bool) func(pl harness.Platform) func(w *harness.Worker) {
		return func(pl harness.Platform) func(w *harness.Worker) {
			tm := core.NewTransactionalMap[string, int](collections.NewHashMap[string, int]())
			return func(w *harness.Worker) {
				stamp := w.RNG.Int()
				_ = w.Thread.Atomic(func(tx *stm.Tx) error {
					w.Compute(500)
					if blind {
						tm.PutUnread(tx, "LastModified", stamp)
					} else {
						tm.Put(tx, "LastModified", stamp)
					}
					w.Compute(500)
					return nil
				})
			}
		}
	}
	var blind, reading float64
	for i := 0; i < b.N; i++ {
		blind = ablationRun(1024, mk(true))
		reading = ablationRun(1024, mk(false))
	}
	b.ReportMetric(reading/blind, "readingPutSlowdown")
}

// BenchmarkAblationSegmented measures the §2.4 claim that a segmented
// ConcurrentHashMap-style table only statistically reduces conflicts
// inside long transactions: a transaction touching several keys almost
// always shares a segment (and its size field) with a concurrent one.
func BenchmarkAblationSegmented(b *testing.B) {
	const keysPerTx = 8
	segmented := func(pl harness.Platform) func(w *harness.Worker) {
		m := stmcol.NewSegmentedHashMap[int, int](16)
		return func(w *harness.Worker) {
			var keys [keysPerTx]int
			for i := range keys {
				keys[i] = w.RNG.Intn(1 << 20)
			}
			_ = w.Thread.Atomic(func(tx *stm.Tx) error {
				w.Compute(500)
				for _, k := range keys {
					m.Put(tx, k, k)
				}
				w.Compute(500)
				return nil
			})
		}
	}
	wrapped := func(pl harness.Platform) func(w *harness.Worker) {
		tm := core.NewTransactionalMap[int, int](collections.NewHashMap[int, int]())
		return func(w *harness.Worker) {
			var keys [keysPerTx]int
			for i := range keys {
				keys[i] = w.RNG.Intn(1 << 20)
			}
			_ = w.Thread.Atomic(func(tx *stm.Tx) error {
				w.Compute(500)
				for _, k := range keys {
					tm.Put(tx, k, k)
				}
				w.Compute(500)
				return nil
			})
		}
	}
	var seg, wrap float64
	for i := 0; i < b.N; i++ {
		seg = ablationRun(1024, segmented)
		wrap = ablationRun(1024, wrapped)
	}
	b.ReportMetric(seg/wrap, "segmentedSlowdown")
}

// BenchmarkAblationEagerWriteCheck compares commit-time (optimistic)
// semantic conflict detection against the §5.1 pessimistic alternative
// where writes abort conflicting readers at operation time.
func BenchmarkAblationEagerWriteCheck(b *testing.B) {
	mk := func(eager bool) func(pl harness.Platform) func(w *harness.Worker) {
		return func(pl harness.Platform) func(w *harness.Worker) {
			tm := core.NewTransactionalMap[int, int](collections.NewHashMap[int, int]())
			tm.SetEagerWriteCheck(eager)
			th := stm.NewThread(&stm.RealClock{}, 1)
			_ = th.Atomic(func(tx *stm.Tx) error {
				for k := 0; k < 16; k++ {
					tm.Put(tx, k, 0)
				}
				return nil
			})
			return func(w *harness.Worker) {
				k := w.RNG.Intn(16)
				write := w.RNG.Intn(100) < 20
				_ = w.Thread.Atomic(func(tx *stm.Tx) error {
					w.Compute(300)
					if write {
						v, _ := tm.Get(tx, k)
						tm.Put(tx, k, v+1)
					} else {
						tm.Get(tx, k)
					}
					w.Compute(700)
					return nil
				})
			}
		}
	}
	var lazy, eager float64
	for i := 0; i < b.N; i++ {
		lazy = ablationRun(1024, mk(false))
		eager = ablationRun(1024, mk(true))
	}
	b.ReportMetric(eager/lazy, "eagerVsLazy")
}

// --- Real wall-clock microbenchmarks -------------------------------

// BenchmarkRealMapOps measures per-operation wall-clock cost of the
// three map flavors on the host (single-threaded; the scalability story
// is the simulator's job).
func BenchmarkRealMapOps(b *testing.B) {
	b.Run("SyncMap/Get", func(b *testing.B) {
		m := concurrent.NewSyncMap[int, int](collections.NewHashMap[int, int]())
		for i := 0; i < 1024; i++ {
			m.Put(i, i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Get(i & 1023)
		}
	})
	b.Run("StmcolHashMap/Get", func(b *testing.B) {
		m := stmcol.NewHashMap[int, int]()
		th := stm.NewThread(&stm.RealClock{}, 1)
		_ = th.Atomic(func(tx *stm.Tx) error {
			for i := 0; i < 1024; i++ {
				m.Put(tx, i, i)
			}
			return nil
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = th.Atomic(func(tx *stm.Tx) error {
				m.Get(tx, i&1023)
				return nil
			})
		}
	})
	b.Run("TransactionalMap/Get", func(b *testing.B) {
		tm := core.NewTransactionalMap[int, int](collections.NewHashMap[int, int]())
		th := stm.NewThread(&stm.RealClock{}, 1)
		_ = th.Atomic(func(tx *stm.Tx) error {
			for i := 0; i < 1024; i++ {
				tm.Put(tx, i, i)
			}
			return nil
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = th.Atomic(func(tx *stm.Tx) error {
				tm.Get(tx, i&1023)
				return nil
			})
		}
	})
	b.Run("TransactionalMap/Put", func(b *testing.B) {
		tm := core.NewTransactionalMap[int, int](collections.NewHashMap[int, int]())
		th := stm.NewThread(&stm.RealClock{}, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = th.Atomic(func(tx *stm.Tx) error {
				tm.Put(tx, i&4095, i)
				return nil
			})
		}
	})
}

// BenchmarkRealSTM measures raw STM primitive costs on the host.
func BenchmarkRealSTM(b *testing.B) {
	b.Run("ReadOnlyTx", func(b *testing.B) {
		v := stm.NewVar(1)
		th := stm.NewThread(&stm.RealClock{}, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = th.Atomic(func(tx *stm.Tx) error {
				v.Get(tx)
				return nil
			})
		}
	})
	b.Run("SnapshotReadOnlyTx", func(b *testing.B) {
		v := stm.NewVar(1)
		th := stm.NewThread(&stm.RealClock{}, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = th.AtomicRead(func(tx *stm.Tx) error {
				v.Get(tx)
				return nil
			})
		}
	})
	b.Run("WriteTx", func(b *testing.B) {
		v := stm.NewVar(1)
		th := stm.NewThread(&stm.RealClock{}, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = th.Atomic(func(tx *stm.Tx) error {
				v.Set(tx, v.Get(tx)+1)
				return nil
			})
		}
	})
	b.Run("OpenNested", func(b *testing.B) {
		v := stm.NewVar(1)
		th := stm.NewThread(&stm.RealClock{}, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = th.Atomic(func(tx *stm.Tx) error {
				return tx.Open(func(o *stm.Tx) error {
					v.Set(o, i)
					return nil
				})
			})
		}
	})
	b.Run("TenVarTx", func(b *testing.B) {
		var vars [10]*stm.Var[int]
		for i := range vars {
			vars[i] = stm.NewVar(i)
		}
		th := stm.NewThread(&stm.RealClock{}, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = th.Atomic(func(tx *stm.Tx) error {
				for _, v := range vars {
					v.Set(tx, v.Get(tx)+1)
				}
				return nil
			})
		}
	})
}

// BenchmarkAblationContentionManagement compares backoff policies under
// genuine livelock pressure: an eager-write-check map (pessimistic
// conflict detection, the other §5.1 alternative) with every worker
// doing read-modify-writes of one key. Under eager detection each
// writer kills the other in-flight readers at operation time, so
// symmetric transactions can ping-pong; randomized exponential backoff
// breaks the symmetry, aggressive retry re-collides immediately.
func BenchmarkAblationContentionManagement(b *testing.B) {
	mk := func(policy stm.BackoffPolicy) func(pl harness.Platform) func(w *harness.Worker) {
		return func(pl harness.Platform) func(w *harness.Worker) {
			tm := core.NewTransactionalMap[int, int](collections.NewHashMap[int, int]())
			tm.SetEagerWriteCheck(true)
			th := stm.NewThread(&stm.RealClock{}, 1)
			_ = th.Atomic(func(tx *stm.Tx) error {
				tm.Put(tx, 0, 0)
				return nil
			})
			return func(w *harness.Worker) {
				if policy != nil {
					w.Thread.SetBackoffPolicy(policy)
				}
				_ = w.Thread.Atomic(func(tx *stm.Tx) error {
					v, _ := tm.Get(tx, 0)
					w.Compute(500) // hold the read lock across computation
					tm.Put(tx, 0, v+1)
					return nil
				})
			}
		}
	}
	var exp, lin, agg harness.Result
	for i := 0; i < b.N; i++ {
		exp = ablationRunFull(512, mk(nil))
		lin = ablationRunFull(512, mk(stm.LinearBackoff{Base: 32}))
		agg = ablationRunFull(512, mk(stm.AggressiveRetry{}))
	}
	b.ReportMetric(lin.Elapsed/exp.Elapsed, "linearVsExpTime")
	b.ReportMetric(agg.Elapsed/exp.Elapsed, "aggressiveVsExpTime")
	b.ReportMetric(float64(agg.Stats.Violations)/float64(exp.Stats.Violations+1), "aggressiveWastedWorkX")
}

// BenchmarkRealSortedMapOps measures wall-clock costs of the sorted
// wrapper against its wrapped TreeMap.
func BenchmarkRealSortedMapOps(b *testing.B) {
	b.Run("TreeMap/Put", func(b *testing.B) {
		m := collections.NewTreeMap[int, int]()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Put(i&8191, i)
		}
	})
	b.Run("TransactionalSortedMap/Put", func(b *testing.B) {
		tm := core.NewTransactionalSortedMap[int, int](collections.NewTreeMap[int, int]())
		th := stm.NewThread(&stm.RealClock{}, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = th.Atomic(func(tx *stm.Tx) error {
				tm.Put(tx, i&8191, i)
				return nil
			})
		}
	})
	b.Run("TransactionalSortedMap/RangeScan8", func(b *testing.B) {
		tm := core.NewTransactionalSortedMap[int, int](collections.NewTreeMap[int, int]())
		th := stm.NewThread(&stm.RealClock{}, 1)
		_ = th.Atomic(func(tx *stm.Tx) error {
			for i := 0; i < 1024; i++ {
				tm.Put(tx, i, i)
			}
			return nil
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = th.Atomic(func(tx *stm.Tx) error {
				lo := i & 1015
				tm.SubMap(lo, lo+8).ForEach(tx, func(int, int) bool { return true })
				return nil
			})
		}
	})
	b.Run("TransactionalSortedMap/FirstKey", func(b *testing.B) {
		tm := core.NewTransactionalSortedMap[int, int](collections.NewTreeMap[int, int]())
		th := stm.NewThread(&stm.RealClock{}, 1)
		_ = th.Atomic(func(tx *stm.Tx) error {
			for i := 0; i < 1024; i++ {
				tm.Put(tx, i, i)
			}
			return nil
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = th.Atomic(func(tx *stm.Tx) error {
				tm.FirstKey(tx)
				return nil
			})
		}
	})
}

// BenchmarkRealQueueOps measures wall-clock queue costs: the
// transactional wrapper vs the lock-free Michael-Scott baseline.
func BenchmarkRealQueueOps(b *testing.B) {
	b.Run("MSQueue/EnqueueDequeue", func(b *testing.B) {
		q := concurrent.NewMSQueue[int]()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Enqueue(i)
			q.Dequeue()
		}
	})
	b.Run("TransactionalQueue/PutPoll", func(b *testing.B) {
		q := core.NewTransactionalQueue[int](collections.NewLinkedQueue[int]())
		th := stm.NewThread(&stm.RealClock{}, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = th.Atomic(func(tx *stm.Tx) error {
				q.Put(tx, i)
				return nil
			})
			_ = th.Atomic(func(tx *stm.Tx) error {
				q.Poll(tx)
				return nil
			})
		}
	})
}

// BenchmarkCollections measures the raw wrapped structures.
func BenchmarkCollections(b *testing.B) {
	b.Run("HashMap/Put", func(b *testing.B) {
		m := collections.NewHashMap[int, int]()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Put(i&8191, i)
		}
	})
	b.Run("HashMap/Get", func(b *testing.B) {
		m := collections.NewHashMap[int, int]()
		for i := 0; i < 8192; i++ {
			m.Put(i, i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Get(i & 8191)
		}
	})
	b.Run("TreeMap/Get", func(b *testing.B) {
		m := collections.NewTreeMap[int, int]()
		for i := 0; i < 8192; i++ {
			m.Put(i, i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Get(i & 8191)
		}
	})
	b.Run("SkipListMap/Get", func(b *testing.B) {
		m := collections.NewSkipListMap[int, int](func(a, c int) int { return a - c }, 5)
		for i := 0; i < 8192; i++ {
			m.Put(i, i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Get(i & 8191)
		}
	})
}

// BenchmarkJBBDistrictSensitivity sweeps the district count at 32
// virtual CPUs: SPECjbb's standard 10-districts-per-warehouse layout
// spreads the order-table contention, but the Baseline stays flat
// (warehouse-level counters) while Open improves — separating the two
// fixes the paper applies.
func BenchmarkJBBDistrictSensitivity(b *testing.B) {
	run := func(cfg jbb.Config, districts int) float64 {
		p := jbb.DefaultParams()
		p.Districts = districts
		pl := &harness.SimPlatform{Seed: 12}
		var wh jbb.Warehouse
		if cfg == jbb.ConfigJava {
			wh = jbb.NewJavaWarehouse(p, pl)
		} else {
			wh = jbb.NewAtomosWarehouse(cfg, p)
		}
		res := pl.Run(32, func(w *harness.Worker) {
			for i := 0; i < 64; i++ {
				wh.Do(w, jbb.DrawOp(w))
			}
		})
		return res.Elapsed
	}
	var base1, base10, open1, open10, trans1, trans10 float64
	for i := 0; i < b.N; i++ {
		base1 = run(jbb.ConfigAtomosBaseline, 1)
		base10 = run(jbb.ConfigAtomosBaseline, 10)
		open1 = run(jbb.ConfigAtomosOpen, 1)
		open10 = run(jbb.ConfigAtomosOpen, 10)
		trans1 = run(jbb.ConfigAtomosTransactional, 1)
		trans10 = run(jbb.ConfigAtomosTransactional, 10)
	}
	b.ReportMetric(base1/base10, "baselineDistrictGain")
	b.ReportMetric(open1/open10, "openDistrictGain")
	b.ReportMetric(trans1/trans10, "transDistrictGain")
}
