#!/usr/bin/env bash
# verify.sh — the repository's full verification gate:
#
#   build + vet + race-enabled tests + stmlint discipline check
#   + a tiny deterministic tccbench smoke run.
#
# Tier-1 (see ROADMAP.md) is the subset `go build ./... && go test ./...`;
# this script is the superset CI should run.
set -euo pipefail
cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== stmlint ./..."
go run ./cmd/stmlint ./...

echo "== tccbench smoke (figure 1, tiny config)"
go run ./cmd/tccbench -fig 1 -ops 64 -cpus 1,2 >/dev/null

echo "verify: OK"
