#!/usr/bin/env bash
# verify.sh — the repository's full verification gate:
#
#   build + vet + race-enabled tests + stmlint discipline check
#   + a tiny deterministic tccbench smoke run.
#
# Tier-1 (see ROADMAP.md) is the subset `go build ./... && go test ./...`;
# this script is the superset CI should run.
#
# Non-default mode: `./verify.sh bench` additionally runs the tracked
# benchmark suite (scripts/bench.sh) and refreshes BENCH_stm.json, the
# machine-readable perf trajectory.
set -euo pipefail
cd "$(dirname "$0")"
mode=${1:-gate}

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== stmlint -json -timing ./... (empty-baseline gate)"
# Per-rule timing goes to stderr (visible above); the JSON report is
# captured and must contain zero diagnostics — the baseline is empty,
# so any finding (even one the exit code somehow missed) fails the gate.
if ! lint_json=$(go run ./cmd/stmlint -json -timing ./...); then
  echo "stmlint: diagnostics found (baseline is empty):" >&2
  printf '%s\n' "$lint_json" >&2
  exit 1
fi
if printf '%s' "$lint_json" | grep -q '"rule"'; then
  echo "stmlint: non-empty report with zero exit status:" >&2
  printf '%s\n' "$lint_json" >&2
  exit 1
fi

echo "== disjoint-commit smoke (sharded guard footprints overlap)"
go test -run 'TestDisjointHandlerWindowsOverlap|TestGuardFreeRollbackTakesNoGuard' \
  -count=1 ./internal/stm >/dev/null

echo "== striped-map smoke (disjoint-key windows overlap + figure 5 sim run)"
go test -run 'TestStripedDisjointKeyHandlerWindowsOverlap|TestStripedMapConflicts' \
  -count=1 ./internal/core >/dev/null
go run ./cmd/tccbench -fig 5 -ops 64 -cpus 1,2 >/dev/null

echo "== striped-sortedmap + segmented-queue smoke (disjoint windows overlap, all protocols)"
go test -run 'TestRangeStripedDisjointRangeHandlerWindowsOverlap|TestRangeStripedScanSerializability|TestSegmentedQueueDisjointLaneHandlerWindowsOverlap|TestSegmentedQueueLaneFIFO|TestStripedStructuresAcrossProtocols' \
  -count=1 ./internal/core >/dev/null

echo "== tccbench smoke (figure 1, tiny config)"
go run ./cmd/tccbench -fig 1 -ops 64 -cpus 1,2 >/dev/null

echo "== snapshot-read smoke (MVCC-lite path: wait-free readers + figure 7 sim run)"
go test -run 'TestSnapshotReadersNonBlocking|TestSnapshotReadOnlyAllocationGuardrail' \
  -count=1 ./internal/stm >/dev/null
go run ./cmd/tccbench -fig 7 -ops 64 -cpus 1,2 >/dev/null

echo "== observability smoke (profile + stats-json + trace, validated)"
obsdir=$(mktemp -d)
trap 'rm -rf "$obsdir"' EXIT
go run ./cmd/tccbench -fig 1 -ops 512 -cpus 8 -profile \
  -stats-json "$obsdir/stats.json" -trace "$obsdir/trace.json" >/dev/null
go run ./cmd/tracecheck -stats "$obsdir/stats.json" -trace "$obsdir/trace.json"

echo "== metrics smoke (live /metrics endpoint, scraped and validated)"
# tccbench -metrics-addr binds an ephemeral port, prints the endpoint
# URL on its first stdout line, runs a sustained workload for the
# -run-for duration, and exits 0 on clean shutdown. tracecheck's
# -prom-url parser validates the scrape (format + required families).
go run ./cmd/tccbench -metrics-addr 127.0.0.1:0 -run-for 4s -workers 4 \
  > "$obsdir/metrics.out" 2> "$obsdir/metrics.err" &
bench_pid=$!
metrics_url=""
for _ in $(seq 1 50); do
  metrics_url=$(head -n 1 "$obsdir/metrics.out" 2>/dev/null | sed -n 's/^metrics: //p')
  [[ -n "$metrics_url" ]] && break
  sleep 0.2
done
if [[ -z "$metrics_url" ]]; then
  echo "metrics smoke: tccbench never printed its endpoint" >&2
  cat "$obsdir/metrics.err" >&2 || true
  kill "$bench_pid" 2>/dev/null || true
  exit 1
fi
sleep 1  # let the workload populate the window before scraping
go run ./cmd/tracecheck -prom-url "$metrics_url"
if ! wait "$bench_pid"; then
  echo "metrics smoke: tccbench exited non-zero" >&2
  cat "$obsdir/metrics.err" >&2 || true
  exit 1
fi

echo "== protocol sweep smoke (stmsweep -smoke, JSON-validated via benchjson)"
# The tiny deterministic sweep: every registered protocol × 2
# collections × 2 update mixes × 2 thread counts. Its stdout is
# standard `go test -bench` text; piping through cmd/benchjson both
# validates the convention and produces the JSON we assert on.
go run ./cmd/stmsweep -smoke 2> /dev/null \
  | go run ./cmd/benchjson -note "stmsweep smoke" > "$obsdir/sweep.json"
for cell in 'Sweep/striped/u10/g2/tl2' 'Sweep/striped/u50/g4/norec' \
            'Sweep/queue/u50/g4/tl2-eager' 'Sweep/sortedmap/u10/g2/tl2' \
            'Sweep/lanequeue/u50/g4/norec'; do
  if ! grep -q "\"name\": \"$cell\"" "$obsdir/sweep.json"; then
    echo "sweep smoke: cell $cell missing from report" >&2
    exit 1
  fi
done

if [[ "$mode" == "bench" ]]; then
  echo "== bench suite (scripts/bench.sh)"
  ./scripts/bench.sh
fi

echo "verify: OK"
