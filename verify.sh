#!/usr/bin/env bash
# verify.sh — the repository's full verification gate:
#
#   build + vet + race-enabled tests + stmlint discipline check
#   + a tiny deterministic tccbench smoke run.
#
# Tier-1 (see ROADMAP.md) is the subset `go build ./... && go test ./...`;
# this script is the superset CI should run.
#
# Non-default mode: `./verify.sh bench` additionally runs the tracked
# benchmark suite (scripts/bench.sh) and refreshes BENCH_stm.json, the
# machine-readable perf trajectory.
set -euo pipefail
cd "$(dirname "$0")"
mode=${1:-gate}

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== stmlint -json -timing ./... (empty-baseline gate)"
# Per-rule timing goes to stderr (visible above); the JSON report is
# captured and must contain zero diagnostics — the baseline is empty,
# so any finding (even one the exit code somehow missed) fails the gate.
if ! lint_json=$(go run ./cmd/stmlint -json -timing ./...); then
  echo "stmlint: diagnostics found (baseline is empty):" >&2
  printf '%s\n' "$lint_json" >&2
  exit 1
fi
if printf '%s' "$lint_json" | grep -q '"rule"'; then
  echo "stmlint: non-empty report with zero exit status:" >&2
  printf '%s\n' "$lint_json" >&2
  exit 1
fi

echo "== disjoint-commit smoke (sharded guard footprints overlap)"
go test -run 'TestDisjointHandlerWindowsOverlap|TestGuardFreeRollbackTakesNoGuard' \
  -count=1 ./internal/stm >/dev/null

echo "== striped-map smoke (disjoint-key windows overlap + figure 5 sim run)"
go test -run 'TestStripedDisjointKeyHandlerWindowsOverlap|TestStripedMapConflicts' \
  -count=1 ./internal/core >/dev/null
go run ./cmd/tccbench -fig 5 -ops 64 -cpus 1,2 >/dev/null

echo "== tccbench smoke (figure 1, tiny config)"
go run ./cmd/tccbench -fig 1 -ops 64 -cpus 1,2 >/dev/null

echo "== snapshot-read smoke (MVCC-lite path: wait-free readers + figure 7 sim run)"
go test -run 'TestSnapshotReadersNonBlocking|TestSnapshotReadOnlyAllocationGuardrail' \
  -count=1 ./internal/stm >/dev/null
go run ./cmd/tccbench -fig 7 -ops 64 -cpus 1,2 >/dev/null

echo "== observability smoke (profile + stats-json + trace, validated)"
obsdir=$(mktemp -d)
trap 'rm -rf "$obsdir"' EXIT
go run ./cmd/tccbench -fig 1 -ops 512 -cpus 8 -profile \
  -stats-json "$obsdir/stats.json" -trace "$obsdir/trace.json" >/dev/null
go run ./cmd/tracecheck -stats "$obsdir/stats.json" -trace "$obsdir/trace.json"

if [[ "$mode" == "bench" ]]; then
  echo "== bench suite (scripts/bench.sh)"
  ./scripts/bench.sh
fi

echo "verify: OK"
