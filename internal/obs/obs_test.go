package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

type countTracer struct{ n int }

func (c *countTracer) Trace(Event) { c.n++ }

func TestSetTracerAndActive(t *testing.T) {
	defer SetTracer(nil)
	if Active() != nil {
		t.Fatalf("fresh package: Active() = %v, want nil", Active())
	}
	c := &countTracer{}
	SetTracer(c)
	got := Active()
	if got == nil {
		t.Fatal("Active() nil after SetTracer")
	}
	got.Trace(Event{Kind: KindTxBegin})
	if c.n != 1 {
		t.Fatalf("tracer saw %d events, want 1", c.n)
	}
	SetTracer(nil)
	if Active() != nil {
		t.Fatal("Active() non-nil after SetTracer(nil)")
	}
}

func TestTee(t *testing.T) {
	a, b := &countTracer{}, &countTracer{}
	if Tee(nil, nil) != nil {
		t.Fatal("Tee(nil,nil) should be nil")
	}
	if Tee(a, nil) != Tracer(a) || Tee(nil, b) != Tracer(b) {
		t.Fatal("Tee with one nil side should collapse")
	}
	Tee(a, b).Trace(Event{})
	if a.n != 1 || b.n != 1 {
		t.Fatalf("tee fan-out: a=%d b=%d, want 1,1", a.n, b.n)
	}
}

func TestKindString(t *testing.T) {
	if KindTxCommit.String() != "tx.commit" || KindBackoff.String() != "backoff" {
		t.Fatalf("kind names wrong: %q %q", KindTxCommit, KindBackoff)
	}
	if Kind(200).String() != "obs.unknown" {
		t.Fatalf("out-of-range kind: %q", Kind(200))
	}
}

func TestHistBucketing(t *testing.T) {
	var h Hist
	// Same lane for determinism; values chosen to pin bucket edges.
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1 << 39} {
		h.Observe(3, v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	want := map[uint64]uint64{ // lo → n
		0: 1, 1: 1, 2: 2, 4: 2, 8: 1, 1 << 38: 1,
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want lows %v", s.Buckets, want)
	}
	for _, b := range s.Buckets {
		if want[b.Lo] != b.N {
			t.Fatalf("bucket lo=%d n=%d, want n=%d", b.Lo, b.N, want[b.Lo])
		}
	}
	if s.Sum != 0+1+2+3+4+7+8+1<<39 {
		t.Fatalf("sum = %d", s.Sum)
	}
}

func TestHistShardMerge(t *testing.T) {
	var h Hist
	for lane := 0; lane < 64; lane++ { // exercise shard wraparound
		h.Observe(lane, uint64(lane))
	}
	if s := h.Snapshot(); s.Count != 64 {
		t.Fatalf("count = %d, want 64", s.Count)
	}
}

func TestHistQuantile(t *testing.T) {
	var h Hist
	for v := uint64(1); v <= 100; v++ {
		h.Observe(0, v)
	}
	s := h.Snapshot()
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("p0 ≤ %d, want 1", q)
	}
	// p50 of 1..100 lands in bucket [32,63].
	if q := s.Quantile(0.5); q != 63 {
		t.Fatalf("p50 ≤ %d, want 63", q)
	}
	if q := s.Quantile(1); q != 127 {
		t.Fatalf("p100 ≤ %d, want 127", q)
	}
	var empty Hist
	if q := empty.Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty hist quantile = %d", q)
	}
}

func TestProfileAggregation(t *testing.T) {
	p := NewProfile()
	p.Trace(Event{Kind: KindTxBegin, CPU: 0})
	p.Trace(Event{Kind: KindTxAbort, CPU: 0, Dur: 100, Where: "HashMap.size", Reason: "stale read"})
	p.Trace(Event{Kind: KindTxBegin, CPU: 0, Attempt: 1})
	p.Trace(Event{Kind: KindBackoff, CPU: 0, Dur: 32, Attempt: 1})
	p.Trace(Event{Kind: KindTxCommit, CPU: 0, Dur: 400, Attempt: 1, Reads: 3, Writes: 2})
	p.Trace(Event{Kind: KindTxViolated, CPU: 1, Dur: 50, Reason: "TestMap: key conflict"})
	p.Trace(Event{Kind: KindTxAbort, CPU: 1, Dur: 60, Where: "HashMap.size"})
	p.Trace(Event{Kind: KindNestedRetry, CPU: 1, Dur: 10, Where: "HashMap.bucket[3]"})
	p.Trace(Event{Kind: KindTxAbort, CPU: 1, Dur: 5}) // unattributed

	r := p.Report()
	if r.Commits != 1 || r.Aborts != 3 || r.Violations != 1 || r.NestedRetries != 1 {
		t.Fatalf("counters wrong: %+v", r)
	}
	if r.LostCycles != 100+50+60+5 {
		t.Fatalf("lost cycles = %d", r.LostCycles)
	}
	if r.BackoffCycles != 32 || r.Backoffs != 1 {
		t.Fatalf("backoff = %d/%d", r.BackoffCycles, r.Backoffs)
	}
	if len(r.Hotspots) != 4 {
		t.Fatalf("hotspots = %+v", r.Hotspots)
	}
	top := r.Hotspots[0]
	if top.Label != "HashMap.size" || top.Rollbacks != 2 || top.Kind != "var" {
		t.Fatalf("top hotspot = %+v", top)
	}
	// 2 of 4 attributed rollbacks (size×2, semantic×1, unattributed×1).
	if got := r.HotspotShare("HashMap.size"); got != 0.5 {
		t.Fatalf("size share = %v, want 0.5", got)
	}
	var sem *Hotspot
	for i := range r.Hotspots {
		if r.Hotspots[i].Label == "TestMap: key conflict" {
			sem = &r.Hotspots[i]
		}
	}
	if sem == nil || sem.Kind != "semantic" {
		t.Fatalf("semantic hotspot missing: %+v", r.Hotspots)
	}
	if r.Latency.Count != 1 || r.Retries.Count != 1 {
		t.Fatalf("hists: latency=%d retries=%d", r.Latency.Count, r.Retries.Count)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ProfileReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Hotspots[0].Label != "HashMap.size" {
		t.Fatalf("round-trip top hotspot = %+v", back.Hotspots[0])
	}

	text := r.Format(2)
	if !strings.Contains(text, "HashMap.size") || !strings.Contains(text, "and 2 more") {
		t.Fatalf("Format(2) output:\n%s", text)
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 6; i++ {
		r.Trace(Event{Kind: KindTxCommit, TxID: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	for i, want := range []uint64{3, 4, 5, 6} {
		if evs[i].TxID != want {
			t.Fatalf("ring order %v", evs)
		}
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
}

func TestWriteTraceValidJSON(t *testing.T) {
	r := NewRecorder(16)
	r.Trace(Event{Kind: KindTxBegin, TxID: 7, CPU: 0, Time: 10})
	r.Trace(Event{Kind: KindTxAbort, TxID: 7, CPU: 0, Time: 90, Dur: 80, Where: "HashMap.size", Reason: "stale read"})
	r.Trace(Event{Kind: KindBackoff, TxID: 7, CPU: 0, Time: 120, Dur: 30, Attempt: 1})
	r.Trace(Event{Kind: KindTxCommit, TxID: 7, CPU: 0, Time: 200, Dur: 190, Attempt: 1, Reads: 2, Writes: 1})
	r.Trace(Event{Kind: KindOpenCommit, TxID: 9, CPU: 1, Time: 150, Writes: 1})
	r.Trace(Event{Kind: KindNestedRetry, TxID: 9, CPU: 1, Time: 160, Where: "TreeMap.root"})

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 metadata lanes + process + 5 events (begin is folded into spans).
	if len(doc.TraceEvents) != 3+5 {
		t.Fatalf("trace has %d events:\n%s", len(doc.TraceEvents), buf.String())
	}
	phases := map[string]int{}
	var sawSizeConflict, sawLane1 bool
	for _, te := range doc.TraceEvents {
		ph, _ := te["ph"].(string)
		phases[ph]++
		if args, ok := te["args"].(map[string]any); ok {
			if args["where"] == "HashMap.size" {
				sawSizeConflict = true
			}
			if args["name"] == "vCPU 1" {
				sawLane1 = true
			}
		}
	}
	if phases["M"] != 3 || phases["X"] != 3 || phases["i"] != 2 {
		t.Fatalf("phase mix %v:\n%s", phases, buf.String())
	}
	if !sawSizeConflict || !sawLane1 {
		t.Fatalf("missing attribution or lane metadata:\n%s", buf.String())
	}
	// Tx ids must be renumbered densely from 1.
	if strings.Contains(buf.String(), `"tx": 7`) || !strings.Contains(buf.String(), `"tx": 1`) {
		t.Fatalf("tx ids not normalized:\n%s", buf.String())
	}
}

func TestWriteTraceSpanClamp(t *testing.T) {
	r := NewRecorder(4)
	// Dur exceeds Time: the exported span must clamp to start at 0,
	// not underflow uint64.
	r.Trace(Event{Kind: KindTxCommit, TxID: 1, CPU: 0, Time: 5, Dur: 50})
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ts": 0`) {
		t.Fatalf("span not clamped:\n%s", buf.String())
	}
}
