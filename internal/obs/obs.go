// Package obs is the observability layer for the STM: a TAPE-style
// event stream (conflict attribution, latency, lost work) that is
// always compiled in but near-zero-cost when disabled.
//
// The design splits responsibilities so the STM hot path stays cheap:
//
//   - The STM emits Event values through a Tracer interface. The
//     active tracer lives behind one atomic pointer; when no tracer is
//     installed the per-transaction cost is a single atomic load and a
//     nil check (guarded by the alloc/latency benchmarks in
//     internal/stm/stm_bench_test.go).
//   - Sinks do the expensive work. Profile aggregates events into a
//     conflict heatmap and latency/retry histograms; Recorder keeps a
//     bounded ring of raw events and exports Chrome trace_event JSON.
//
// obs is a leaf package: it must not import internal/stm (the STM
// imports obs), so events carry plain strings and integers rather
// than STM types. Times and durations are in clock cycles of the
// emitting thread's stm.Clock — virtual cycles under internal/sim,
// cost-model cycles under the real clock.
package obs

import "sync/atomic"

// Kind classifies a lifecycle event.
type Kind uint8

const (
	// KindTxBegin marks the start of one attempt of a top-level
	// transaction. Attempt counts retries (0 = first try).
	KindTxBegin Kind = iota
	// KindTxCommit marks a successful top-level commit. Dur spans the
	// whole transaction including all aborted attempts and backoff;
	// Reads/Writes/Handlers describe the committed attempt.
	KindTxCommit
	// KindTxAbort marks a memory-conflict rollback of one attempt.
	// Where names the conflicting Var (its label), OtherTx the
	// transaction holding its lockword (0 if unknown), Reason the
	// mechanical cause ("stale read", "commit lock busy", ...). Dur is
	// the lost work: cycles spent on the doomed attempt.
	KindTxAbort
	// KindTxViolated marks a semantic rollback: another transaction's
	// ViolateOthers, or a program-directed Handle.Violate. Reason is
	// the violation reason (semantic-lock reasons identify the
	// collection and, optionally, the key).
	KindTxViolated
	// KindTxUserAbort marks a rollback requested by the transaction
	// body returning an error (or stm.Abort).
	KindTxUserAbort
	// KindNestedRetry marks a closed-nested child rolling back and
	// retrying without aborting its parent (partial rollback).
	KindNestedRetry
	// KindOpenCommit marks an open-nested child committing its writes
	// to shared memory while the parent continues.
	KindOpenCommit
	// KindOpenRetry marks an open-nested child retrying.
	KindOpenRetry
	// KindBackoff marks a contention-manager pause; Dur is the cycles
	// waited, Attempt the retry count that provoked it.
	KindBackoff
	// KindGuardWait marks a commit or rollback that blocked acquiring
	// its commit-guard footprint: commit-serialization lost work. Where
	// names the last contended guard, Waits counts how many guards of
	// the footprint were contended. Emitted after the guards are
	// released, once per contended commit/rollback.
	KindGuardWait
)

var kindNames = [...]string{
	"tx.begin", "tx.commit", "tx.abort", "tx.violated", "tx.user-abort",
	"nested.retry", "open.commit", "open.retry", "backoff", "guard.wait",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "obs.unknown"
}

// Event is one structured lifecycle record. Fields that do not apply
// to a Kind are zero. Events are plain values: sinks may retain them.
type Event struct {
	Kind     Kind
	TxID     uint64 // top-level transaction id (stable across retries)
	OtherTx  uint64 // conflicting transaction id, if known
	CPU      int    // virtual CPU / worker lane (Thread.TraceID)
	Attempt  int    // retry count of the enclosing top-level attempt
	Time     uint64 // emission time, cycles on the emitting clock
	Dur      uint64 // span length in cycles (commit: whole tx; abort: attempt)
	Reads    int    // read-set size (commit events)
	Writes   int    // write-set size (commit events)
	Handlers int    // commit/abort handlers attached (commit events)
	Waits    int    // contended guards in the footprint (guard-wait events)
	Snapshot bool   // transaction ran on the MVCC-lite snapshot path (begin/commit events)
	Where    string // conflicting Var or guard label ("HashMap.size", ...)
	Reason   string // mechanical cause or violation reason
}

// Tracer receives every event. Implementations must be safe for
// concurrent use and must not call back into the STM: Trace runs on
// the transaction's thread between attempts (never while a commit
// guard is held — enforced by the stmlint trace-in-commit rule).
type Tracer interface {
	Trace(e Event)
}

var active atomic.Pointer[Tracer]

// SetTracer installs t as the process-global tracer (nil disables
// tracing). Installation is atomic; in-flight transactions pick the
// tracer up on their next attempt.
func SetTracer(t Tracer) {
	if t == nil {
		active.Store(nil)
		return
	}
	active.Store(&t)
}

// Active returns the installed tracer, or nil. This is the hot-path
// check: one atomic load.
func Active() Tracer {
	p := active.Load()
	if p == nil {
		return nil
	}
	return *p
}

type tee struct{ a, b Tracer }

func (t tee) Trace(e Event) {
	t.a.Trace(e)
	t.b.Trace(e)
}

// Tee fans events out to both tracers; nil arguments collapse away,
// so Tee(Active(), p) layers p over whatever is already installed.
func Tee(a, b Tracer) Tracer {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		return tee{a, b}
	}
}
