package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tcc/internal/obs/metrics"
)

// Profile is a Tracer that aggregates events into the TAPE-style
// summary the paper's §6.3 analysis was built on: per-object conflict
// attribution (which Var or semantic lock caused rollbacks, and how
// much work they destroyed), plus latency and retry histograms.
//
// Counters are atomics and histograms are lock-free; only the
// conflict map takes a mutex, and only on the rollback path (which is
// already the slow path).
type Profile struct {
	begins, commits, aborts, violations, userAborts atomic.Uint64
	nestedRetries, openCommits, openRetries         atomic.Uint64
	backoffs, backoffCycles, lostCycles             atomic.Uint64
	guardWaits, snapshotCommits                     atomic.Uint64

	latency Hist // committed-tx latency in cycles (incl. retries+backoff)
	retries Hist // retries per committed tx

	mu   sync.Mutex
	spot map[string]*hotspot
}

type hotspot struct {
	kind          string // "var", "semantic" or "guard"
	rollbacks     uint64 // top-level aborts + violations attributed here
	nestedRetries uint64
	openRetries   uint64
	guardWaits    uint64 // contended commit-guard acquisitions
	lostCycles    uint64
}

// NewProfile returns an empty aggregator ready to install with
// SetTracer (or layer via Tee).
func NewProfile() *Profile {
	return &Profile{spot: make(map[string]*hotspot)}
}

// unattributed collects rollbacks with no conflict record (e.g. a
// violation with an empty reason); keeping them visible stops the
// heatmap from silently dropping lost work.
const unattributed = "(unattributed)"

// Trace implements Tracer.
func (p *Profile) Trace(e Event) {
	switch e.Kind {
	case KindTxBegin:
		p.begins.Add(1)
	case KindTxCommit:
		p.commits.Add(1)
		if e.Snapshot {
			p.snapshotCommits.Add(1)
		}
		p.latency.Observe(e.CPU, e.Dur)
		p.retries.Observe(e.CPU, uint64(e.Attempt))
	case KindTxAbort:
		p.aborts.Add(1)
		p.lostCycles.Add(e.Dur)
		p.note(e.Where, "var", e.Dur, rollbackTop)
	case KindTxViolated:
		p.violations.Add(1)
		p.lostCycles.Add(e.Dur)
		where, kind := e.Where, "var"
		if where == "" {
			where, kind = e.Reason, "semantic"
		}
		p.note(where, kind, e.Dur, rollbackTop)
	case KindTxUserAbort:
		p.userAborts.Add(1)
	case KindNestedRetry:
		p.nestedRetries.Add(1)
		p.note(e.Where, "var", e.Dur, rollbackNested)
	case KindOpenCommit:
		p.openCommits.Add(1)
	case KindOpenRetry:
		p.openRetries.Add(1)
		p.note(e.Where, "var", e.Dur, rollbackOpen)
	case KindBackoff:
		p.backoffs.Add(1)
		p.backoffCycles.Add(e.Dur)
	case KindGuardWait:
		p.guardWaits.Add(uint64(e.Waits))
		p.noteGuardWait(e.Where, uint64(e.Waits))
	}
}

type rollbackClass uint8

const (
	rollbackTop rollbackClass = iota
	rollbackNested
	rollbackOpen
)

func (p *Profile) note(where, kind string, lost uint64, class rollbackClass) {
	if where == "" {
		where, kind = unattributed, "?"
	}
	p.mu.Lock()
	h := p.spot[where]
	if h == nil {
		h = &hotspot{kind: kind}
		p.spot[where] = h
	}
	switch class {
	case rollbackTop:
		h.rollbacks++
	case rollbackNested:
		h.nestedRetries++
	case rollbackOpen:
		h.openRetries++
	}
	h.lostCycles += lost
	p.mu.Unlock()
}

// noteGuardWait charges contended commit-guard acquisitions to the
// guard's heatmap row, so commit-serialization shows up next to the
// conflict hotspots it usually accompanies.
func (p *Profile) noteGuardWait(where string, waits uint64) {
	if where == "" {
		where = unattributed
	}
	p.mu.Lock()
	h := p.spot[where]
	if h == nil {
		h = &hotspot{kind: "guard"}
		p.spot[where] = h
	}
	h.guardWaits += waits
	p.mu.Unlock()
}

// Hotspot is one heatmap row: a Var or semantic lock ranked by the
// rollbacks it caused.
type Hotspot struct {
	Label         string  `json:"label"`
	Kind          string  `json:"kind"` // "var" | "semantic" | "?"
	Rollbacks     uint64  `json:"rollbacks"`
	NestedRetries uint64  `json:"nested_retries,omitempty"`
	OpenRetries   uint64  `json:"open_retries,omitempty"`
	GuardWaits    uint64  `json:"guard_waits,omitempty"`
	LostCycles    uint64  `json:"lost_cycles"`
	Share         float64 `json:"share"` // fraction of attributed rollbacks
}

// ProfileReport is the exportable (JSON-able) snapshot of a Profile.
type ProfileReport struct {
	Begins          uint64       `json:"begins"`
	Commits         uint64       `json:"commits"`
	SnapshotCommits uint64       `json:"snapshot_commits,omitempty"`
	Aborts          uint64       `json:"aborts"`
	Violations      uint64       `json:"violations"`
	UserAborts      uint64       `json:"user_aborts,omitempty"`
	NestedRetries   uint64       `json:"nested_retries,omitempty"`
	OpenCommits     uint64       `json:"open_commits,omitempty"`
	OpenRetries     uint64       `json:"open_retries,omitempty"`
	Backoffs        uint64       `json:"backoffs,omitempty"`
	BackoffCycles   uint64       `json:"backoff_cycles,omitempty"`
	GuardWaits      uint64       `json:"guard_waits,omitempty"`
	LostCycles      uint64       `json:"lost_cycles"`
	// AbortRate is (aborts+violations+user aborts) over all finished
	// transactions in this profile.
	AbortRate float64 `json:"abort_rate"`
	// WindowedAbortRate is the live metrics plane's trailing-window
	// abort rate, sampled at Report time when metrics are enabled
	// (0 and omitted otherwise).
	WindowedAbortRate float64      `json:"windowed_abort_rate,omitempty"`
	Hotspots          []Hotspot    `json:"hotspots,omitempty"`
	Latency           HistSnapshot `json:"latency"`
	Retries           HistSnapshot `json:"retries"`
}

// Report snapshots the profile. Hotspots are sorted hottest-first
// (rollbacks, then lost cycles, then label — deterministic for tests).
func (p *Profile) Report() *ProfileReport {
	r := &ProfileReport{
		Begins:          p.begins.Load(),
		Commits:         p.commits.Load(),
		SnapshotCommits: p.snapshotCommits.Load(),
		Aborts:          p.aborts.Load(),
		Violations:      p.violations.Load(),
		UserAborts:      p.userAborts.Load(),
		NestedRetries:   p.nestedRetries.Load(),
		OpenCommits:     p.openCommits.Load(),
		OpenRetries:     p.openRetries.Load(),
		Backoffs:        p.backoffs.Load(),
		BackoffCycles:   p.backoffCycles.Load(),
		GuardWaits:      p.guardWaits.Load(),
		LostCycles:      p.lostCycles.Load(),
		Latency:         p.latency.Snapshot(),
		Retries:         p.retries.Snapshot(),
	}
	if rolled := r.Aborts + r.Violations + r.UserAborts; r.Commits+rolled > 0 {
		r.AbortRate = float64(rolled) / float64(r.Commits+rolled)
	}
	if metrics.On() {
		if rate, total := metrics.WindowedAbortRate(metrics.Default); total > 0 {
			r.WindowedAbortRate = rate
		}
	}
	p.mu.Lock()
	var total uint64
	for _, h := range p.spot {
		total += h.rollbacks
	}
	for label, h := range p.spot {
		row := Hotspot{
			Label:         label,
			Kind:          h.kind,
			Rollbacks:     h.rollbacks,
			NestedRetries: h.nestedRetries,
			OpenRetries:   h.openRetries,
			GuardWaits:    h.guardWaits,
			LostCycles:    h.lostCycles,
		}
		if total > 0 {
			row.Share = float64(h.rollbacks) / float64(total)
		}
		r.Hotspots = append(r.Hotspots, row)
	}
	p.mu.Unlock()
	sort.Slice(r.Hotspots, func(i, j int) bool {
		a, b := r.Hotspots[i], r.Hotspots[j]
		if a.Rollbacks != b.Rollbacks {
			return a.Rollbacks > b.Rollbacks
		}
		if a.LostCycles != b.LostCycles {
			return a.LostCycles > b.LostCycles
		}
		return a.Label < b.Label
	})
	return r
}

// HotspotShare returns the attributed-rollback share of the row whose
// label is exactly label (0 if absent).
func (r *ProfileReport) HotspotShare(label string) float64 {
	for _, h := range r.Hotspots {
		if h.Label == label {
			return h.Share
		}
	}
	return 0
}

// WriteJSON writes the report as indented JSON.
func (r *ProfileReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format renders the TAPE-table-style text heatmap, truncated to the
// top hottest rows (top <= 0 means all).
func (r *ProfileReport) Format(top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "commits=%d aborts=%d violations=%d lost-work=%d cycles",
		r.Commits, r.Aborts, r.Violations, r.LostCycles)
	if r.SnapshotCommits > 0 {
		fmt.Fprintf(&b, " snapshot-commits=%d", r.SnapshotCommits)
	}
	if r.Backoffs > 0 {
		fmt.Fprintf(&b, " backoff=%d cycles/%d waits", r.BackoffCycles, r.Backoffs)
	}
	if r.GuardWaits > 0 {
		fmt.Fprintf(&b, " guard-waits=%d", r.GuardWaits)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "latency(cycles): %s   retries/commit: %s\n",
		r.Latency.String(), r.Retries.String())
	if len(r.Hotspots) == 0 {
		b.WriteString("no conflicts recorded\n")
		return b.String()
	}
	b.WriteString("hotspot                          kind      rollbacks  share   lost-cycles\n")
	n := len(r.Hotspots)
	if top > 0 && top < n {
		n = top
	}
	for _, h := range r.Hotspots[:n] {
		extra := ""
		if h.NestedRetries > 0 || h.OpenRetries > 0 {
			extra = fmt.Sprintf("  (nested=%d open=%d)", h.NestedRetries, h.OpenRetries)
		}
		if h.GuardWaits > 0 {
			extra += fmt.Sprintf("  (guard-waits=%d)", h.GuardWaits)
		}
		fmt.Fprintf(&b, "%-32s %-9s %9d  %5.1f%%  %11d%s\n",
			h.Label, h.Kind, h.Rollbacks, h.Share*100, h.LostCycles, extra)
	}
	if n < len(r.Hotspots) {
		fmt.Fprintf(&b, "... and %d more\n", len(r.Hotspots)-n)
	}
	return b.String()
}

// String renders the full heatmap.
func (r *ProfileReport) String() string { return r.Format(0) }
