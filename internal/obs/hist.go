package obs

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
)

// HistBuckets is the number of power-of-two buckets in a Hist.
// Bucket i holds values v with bits.Len64(v) == i, i.e. bucket 0 is
// {0}, bucket 1 is {1}, bucket 2 is [2,3], bucket 3 is [4,7], ... and
// the final bucket is open-ended.
const HistBuckets = 40

// histShards bounds cross-CPU cache contention: observers index by
// their CPU lane, so threads on different lanes touch different
// cache lines. Merging walks all shards.
const histShards = 16

type histShard struct {
	count  atomic.Uint64
	sum    atomic.Uint64
	bucket [HistBuckets]atomic.Uint64
	_      [5]uint64 // pad to a cache-line boundary between shards
}

// Hist is a log-bucketed histogram: lock-free, wait-free observation,
// sharded per CPU lane. The zero value is ready to use.
type Hist struct {
	shards [histShards]histShard
}

func bucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// Observe records v on the shard for CPU lane. Safe for concurrent
// use; never allocates.
func (h *Hist) Observe(lane int, v uint64) {
	s := &h.shards[uint(lane)%histShards]
	s.count.Add(1)
	s.sum.Add(v)
	s.bucket[bucketOf(v)].Add(1)
}

// HistSnapshot is a merged, immutable view of a Hist. P50/P99/P999
// are the precomputed quantile upper bounds (see Quantile), exported
// so JSON consumers get them without re-deriving from Buckets.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	P50     uint64       `json:"p50"`
	P99     uint64       `json:"p99"`
	P999    uint64       `json:"p999"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one non-empty bucket: values in [Lo, Hi].
type HistBucket struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
	N  uint64 `json:"n"`
}

func bucketBounds(i int) (lo, hi uint64) {
	switch {
	case i == 0:
		return 0, 0
	case i == HistBuckets-1:
		return 1 << (i - 1), ^uint64(0)
	default:
		return 1 << (i - 1), 1<<i - 1
	}
}

// Snapshot merges all shards. It may run concurrently with Observe;
// the result is a consistent-enough view for reporting.
func (h *Hist) Snapshot() HistSnapshot {
	var merged [HistBuckets]uint64
	snap := HistSnapshot{}
	for i := range h.shards {
		s := &h.shards[i]
		snap.Count += s.count.Load()
		snap.Sum += s.sum.Load()
		for b := range s.bucket {
			merged[b] += s.bucket[b].Load()
		}
	}
	for i, n := range merged {
		if n == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		snap.Buckets = append(snap.Buckets, HistBucket{Lo: lo, Hi: hi, N: n})
	}
	snap.P50 = snap.Quantile(0.50)
	snap.P99 = snap.Quantile(0.99)
	snap.P999 = snap.Quantile(0.999)
	return snap
}

// Mean returns the arithmetic mean of observed values (0 if empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]):
// the inclusive upper edge of the bucket holding the q-th value.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count-1))
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.N
		if rank < seen {
			return b.Hi
		}
	}
	return s.Buckets[len(s.Buckets)-1].Hi
}

// String renders a compact one-line summary, e.g.
// "n=128 mean=412.0 p50≤511 p99≤4095".
func (s HistSnapshot) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f p50≤%d p99≤%d",
		s.Count, s.Mean(), s.Quantile(0.50), s.Quantile(0.99))
	return b.String()
}
