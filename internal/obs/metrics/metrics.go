// Package metrics is the live metrics plane: a lock-free, sharded
// runtime metrics registry (counters, gauges, and time-windowed
// summaries) with the same disabled-fast-path discipline as the
// tracer in internal/obs — when metrics are off the per-event cost is
// one atomic load (metrics.On()), zero allocations, enforced by
// AllocsPerRun guardrails in internal/stm.
//
// Window semantics: every instrument keeps a cumulative total plus a
// ring of windowSlots rolling slots. Registry.Advance rotates the
// ring as wall time passes; the "windowed" view of an instrument is
// the merge of all live slots, so it covers between (slots-1)/slots
// and 1.0 of the configured window. Rotation races with concurrent
// increments are benign: an increment may land in a slot that is
// being cleared and be dropped from the window (never from the
// cumulative total). Advance is called by the background Monitor and
// by every scrape, so windows stay fresh without a dedicated ticker.
//
// metrics is a leaf package: it imports neither internal/stm nor
// internal/obs. That keeps calls from commit-guard hold windows
// (per-stripe violation counters in internal/core) clean of the
// stmlint trace-in-commit rule, and the package is in the
// commit-window-blocking trusted set because its increment paths are
// atomic-only (registration, which locks a mutex, happens at
// collection-construction time, never inside a window).
package metrics

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the process-global gate. The hot path is On(): one
// atomic load, mirroring obs.Active().
var enabled atomic.Bool

// SetEnabled turns the metrics plane on or off. In-flight
// transactions pick the new state up on their next attempt (the STM
// samples On() once per attempt, like the tracer).
func SetEnabled(on bool) { enabled.Store(on) }

// On reports whether the metrics plane is enabled. This is the
// hot-path check: one atomic load.
func On() bool { return enabled.Load() }

// windowSlots is the ring length of every windowed instrument. With
// the default 10s window each slot covers 1.25s and the windowed view
// spans 8.75–10s.
const windowSlots = 8

// Label is one name=value pair attached to a metric within a family.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// labelKey serializes a label set into a map key (labels are sorted
// at registration, so equal sets collide).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// instrument is the registry-internal view of one metric: rotate
// clears a ring slot, snapshot renders the current state.
type instrument interface {
	rotate(slot int)
	snapshot() MetricSnapshot
}

// family groups metrics sharing one name, type and help string.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "summary"
	order   []string
	metrics map[string]instrument
}

// Registry owns a set of metric families and the shared window ring.
// Instruments are obtained once (get-or-create, mutex-protected) and
// then used lock-free; the hot path never touches the registry map.
type Registry struct {
	window  time.Duration
	slotDur time.Duration

	// cur is the ring slot increments land in. Read lock-free by every
	// instrument on every increment.
	cur atomic.Uint32

	mu       sync.Mutex
	lastRot  time.Time
	rotInit  bool
	families map[string]*family
	order    []string
}

// DefaultWindow is the rolling window of the package-global Default
// registry.
const DefaultWindow = 10 * time.Second

// Default is the process-global registry the STM and the collections
// instrument against.
var Default = NewRegistry(DefaultWindow)

// NewRegistry returns a registry whose windowed views cover roughly
// the trailing window duration.
func NewRegistry(window time.Duration) *Registry {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Registry{
		window:   window,
		slotDur:  window / windowSlots,
		families: map[string]*family{},
	}
}

// Window returns the configured rolling-window duration.
func (r *Registry) Window() time.Duration { return r.window }

// Advance rotates the window ring to account for wall time elapsed
// since the previous call, clearing slots that have aged out. It is
// called by the Monitor tick and by every scrape; extra calls are
// cheap no-ops until a slot boundary passes.
func (r *Registry) Advance(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.rotInit {
		r.rotInit = true
		r.lastRot = now
		return
	}
	steps := int(now.Sub(r.lastRot) / r.slotDur)
	if steps <= 0 {
		return
	}
	if steps > windowSlots {
		steps = windowSlots
	}
	cur := int(r.cur.Load())
	for i := 0; i < steps; i++ {
		cur = (cur + 1) % windowSlots
		for _, name := range r.order {
			f := r.families[name]
			for _, k := range f.order {
				f.metrics[k].rotate(cur)
			}
		}
		// Publish after clearing so concurrent increments never land in
		// a slot that is about to be zeroed wholesale.
		r.cur.Store(uint32(cur))
	}
	r.lastRot = r.lastRot.Add(time.Duration(steps) * r.slotDur)
	if now.Sub(r.lastRot) >= r.slotDur {
		// Fell far behind (all slots aged out); resynchronize.
		r.lastRot = now
	}
}

// getOrCreate returns the instrument for name+labels, creating family
// and instrument on first use. Panics if name is reused with a
// different type (a registration bug, not a runtime condition).
func (r *Registry) getOrCreate(name, help, typ string, labels []Label, mk func() instrument) instrument {
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, metrics: map[string]instrument{}}
		r.families[name] = f
		r.order = append(r.order, name)
		sort.Strings(r.order)
	}
	if f.typ != typ {
		panic("metrics: " + name + " registered as " + f.typ + ", requested as " + typ)
	}
	k := labelKey(labels)
	if m, ok := f.metrics[k]; ok {
		return m
	}
	m := mk()
	f.metrics[k] = m
	f.order = append(f.order, k)
	sort.Strings(f.order)
	return m
}

// counterLane is one cache-line-padded shard of a Counter.
type counterLane struct {
	total atomic.Uint64
	ring  [windowSlots]atomic.Uint64
	_     [7]uint64 // pad to 128 bytes so lanes do not false-share
}

// Counter is a monotonically increasing counter with a cumulative
// total and a rolling-window view. The default counter has one lane;
// hot process-global counters use CounterSharded so concurrent
// threads touch distinct cache lines.
type Counter struct {
	reg    *Registry
	labels []Label
	lanes  []counterLane
}

// Counter returns the (single-lane) counter for name+labels,
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.CounterSharded(name, help, 1, labels...)
}

// CounterSharded is Counter with lanes internal shards. Use for hot
// global counters; per-collection counters should stay single-lane
// (compactness beats contention for per-stripe instruments).
func (r *Registry) CounterSharded(name, help string, lanes int, labels ...Label) *Counter {
	if lanes < 1 {
		lanes = 1
	}
	m := r.getOrCreate(name, help, "counter", labels, func() instrument {
		return &Counter{reg: r, labels: labels, lanes: make([]counterLane, lanes)}
	})
	return m.(*Counter)
}

// Add adds n on lane 0. Atomic-only; safe inside commit-guard hold
// windows.
func (c *Counter) Add(n uint64) { c.AddLane(0, n) }

// Inc adds 1 on lane 0.
func (c *Counter) Inc() { c.AddLane(0, 1) }

// AddLane adds n on the given shard lane (callers pass their CPU /
// worker index; any int is safe). Cost: one atomic load (ring slot)
// plus two atomic adds. Never allocates.
func (c *Counter) AddLane(lane int, n uint64) {
	l := &c.lanes[uint(lane)%uint(len(c.lanes))]
	l.total.Add(n)
	l.ring[c.reg.cur.Load()].Add(n)
}

// Total returns the cumulative count.
func (c *Counter) Total() uint64 {
	var t uint64
	for i := range c.lanes {
		t += c.lanes[i].total.Load()
	}
	return t
}

// Windowed returns the count accumulated over the live window slots.
func (c *Counter) Windowed() uint64 {
	var t uint64
	for i := range c.lanes {
		for s := 0; s < windowSlots; s++ {
			t += c.lanes[i].ring[s].Load()
		}
	}
	return t
}

func (c *Counter) rotate(slot int) {
	for i := range c.lanes {
		c.lanes[i].ring[slot].Store(0)
	}
}

func (c *Counter) snapshot() MetricSnapshot {
	return MetricSnapshot{Labels: c.labels, Value: float64(c.Total()), Windowed: c.Windowed()}
}

// Gauge is a settable instantaneous value (float64, stored as bits
// in one atomic word — gauges are not hot-path instruments).
type Gauge struct {
	labels []Label
	bits   atomic.Uint64
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.getOrCreate(name, help, "gauge", labels, func() instrument {
		return &Gauge{labels: labels}
	})
	return m.(*Gauge)
}

// Set stores v. Atomic-only.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) rotate(int) {}

func (g *Gauge) snapshot() MetricSnapshot {
	return MetricSnapshot{Labels: g.labels, Value: g.Value()}
}

// gaugeFunc samples a callback at snapshot time.
type gaugeFunc struct {
	labels []Label
	fn     func() float64
}

// GaugeFunc registers a gauge whose value is sampled from fn at
// snapshot time (e.g. the STM global clock).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.getOrCreate(name, help, "gauge", labels, func() instrument {
		return &gaugeFunc{labels: labels, fn: fn}
	})
}

func (g *gaugeFunc) rotate(int) {}

func (g *gaugeFunc) snapshot() MetricSnapshot {
	return MetricSnapshot{Labels: g.labels, Value: g.fn()}
}

// MetricSnapshot is one metric's rendered state.
type MetricSnapshot struct {
	Labels   []Label          `json:"labels,omitempty"`
	Value    float64          `json:"value"`
	Windowed uint64           `json:"windowed,omitempty"`
	Summary  *SummarySnapshot `json:"summary,omitempty"`
}

// FamilySnapshot is one family's rendered state.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help"`
	Type    string           `json:"type"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// Gather renders every family, sorted by name (and by label set
// within a family), for the exposition endpoints.
func (r *Registry) Gather() []FamilySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FamilySnapshot, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ}
		for _, k := range f.order {
			fs.Metrics = append(fs.Metrics, f.metrics[k].snapshot())
		}
		out = append(out, fs)
	}
	return out
}
