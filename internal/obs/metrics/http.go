package metrics

import (
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux returns an http.ServeMux (stdlib only) exposing the
// registry:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON sibling (same Gather view, window included)
//	/debug/pprof/  runtime profiles — CPU profiles taken here carry
//	               the pprof labels the harness attaches to workers
//	               (figure/config, collection, snapshot-vs-retry)
//
// Every scrape calls Advance first, so the windowed views stay fresh
// even without a running Monitor.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		r.Advance(time.Now())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		r.Advance(time.Now())
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteJSON(w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
