package metrics

// Canonical metric family names. The STM and the collections register
// instruments under these names against the Default registry; the
// Monitor and the tracecheck -prom validator look families up by the
// same constants, so the wiring cannot drift apart silently.
const (
	// STM lifecycle counters (internal/stm).
	StmCommits           = "tcc_stm_commits_total"
	StmAborts            = "tcc_stm_aborts_total" // label: cause
	StmRetries           = "tcc_stm_retries_total"
	StmViolations        = "tcc_stm_violations_total"
	StmUserAborts        = "tcc_stm_user_aborts_total"
	StmNestedRetries     = "tcc_stm_nested_retries_total"
	StmOpenCommits       = "tcc_stm_open_commits_total"
	StmOpenRetries       = "tcc_stm_open_retries_total"
	StmSnapshotCommits   = "tcc_stm_snapshot_commits_total"
	StmSnapshotFallbacks = "tcc_stm_snapshot_fallbacks_total"

	// Commit-guard serialization cost (internal/stm).
	StmGuardWaits  = "tcc_stm_guard_waits_total"
	StmGuardWaitNs = "tcc_stm_guard_wait_ns_total"

	// Concurrency-control protocol plane (internal/stm): commits by
	// protocol, and how many Threads are configured for each. Both
	// carry a protocol label, so /metrics scrapes of a sweep run can
	// tell configurations apart.
	StmProtocolCommits = "tcc_stm_protocol_commits_total" // label: protocol
	StmProtocolThreads = "tcc_stm_protocol_threads"       // label: protocol

	// StmClock is the TL2 global version clock, as a gauge: its slope
	// is the system-wide commit rate.
	StmClock = "tcc_stm_clock"

	// StmTxLatency is the windowed top-level commit latency summary,
	// in cycles of the committing thread's clock.
	StmTxLatency = "tcc_stm_tx_latency_cycles"

	// CollectionViolations counts semantic violations landed by each
	// collection stripe's sweeps. Labels: collection, stripe.
	CollectionViolations = "tcc_collection_violations_total"

	// Monitor outputs.
	MonitorAbortRate = "tcc_monitor_abort_rate"
	MonitorAlert     = "tcc_monitor_alert" // label: alert; 1 raised / 0 clear
)
