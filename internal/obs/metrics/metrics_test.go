package metrics

import (
	"testing"
	"time"
)

func TestCounterTotalAndWindow(t *testing.T) {
	r := NewRegistry(800 * time.Millisecond) // 100ms slots
	c := r.Counter("test_events_total", "events")
	c.Add(3)
	c.Inc()
	if got := c.Total(); got != 4 {
		t.Fatalf("Total = %d, want 4", got)
	}
	if got := c.Windowed(); got != 4 {
		t.Fatalf("Windowed = %d, want 4", got)
	}
}

func TestCounterShardedLanes(t *testing.T) {
	r := NewRegistry(time.Second)
	c := r.CounterSharded("test_lanes_total", "events", 4)
	for lane := 0; lane < 16; lane++ {
		c.AddLane(lane, 1)
	}
	if got := c.Total(); got != 16 {
		t.Fatalf("Total = %d, want 16", got)
	}
	// Same name+labels must return the same instrument.
	if c2 := r.CounterSharded("test_lanes_total", "events", 4); c2 != c {
		t.Fatalf("second registration returned a different instrument")
	}
}

// TestWindowRotation is the windowed-histogram rotation test: counts
// and quantiles must decay to zero once the window passes, while
// cumulative totals survive.
func TestWindowRotation(t *testing.T) {
	r := NewRegistry(800 * time.Millisecond) // 8 slots × 100ms
	c := r.Counter("test_rot_total", "events")
	s := r.Summary("test_rot_latency", "latency")

	t0 := time.Unix(1000, 0)
	r.Advance(t0) // initializes the rotation clock

	c.Add(10)
	s.Observe(0, 100)
	s.Observe(0, 200)

	// Half the window: everything still visible.
	r.Advance(t0.Add(400 * time.Millisecond))
	if got := c.Windowed(); got != 10 {
		t.Fatalf("after half window: Windowed = %d, want 10", got)
	}
	if sn := s.Snapshot(); sn.Count != 2 || sn.P99 == 0 {
		t.Fatalf("after half window: summary = %+v, want count 2 and nonzero p99", sn)
	}

	// Past the full window: windowed views decay to zero.
	r.Advance(t0.Add(2 * time.Second))
	if got := c.Windowed(); got != 0 {
		t.Fatalf("after window passed: Windowed = %d, want 0", got)
	}
	if sn := s.Snapshot(); sn.Count != 0 || sn.Sum != 0 || sn.P50 != 0 || sn.P999 != 0 {
		t.Fatalf("after window passed: summary = %+v, want all zero", sn)
	}
	if got := c.Total(); got != 10 {
		t.Fatalf("cumulative total decayed: Total = %d, want 10", got)
	}
}

// TestWindowPartialDecay checks that old observations age out while
// fresh ones inside the window survive the same Advance.
func TestWindowPartialDecay(t *testing.T) {
	r := NewRegistry(800 * time.Millisecond)
	c := r.Counter("test_partial_total", "events")

	t0 := time.Unix(2000, 0)
	r.Advance(t0)
	c.Add(5) // lands in the initial slot

	r.Advance(t0.Add(600 * time.Millisecond)) // 6 slots later
	c.Add(7) // lands in a fresh slot

	// 4 more slots: the first write's slot has aged out (10 slots > 8),
	// the second (4 slots old) is still live.
	r.Advance(t0.Add(1 * time.Second))
	if got := c.Windowed(); got != 7 {
		t.Fatalf("Windowed = %d, want 7 (old 5 aged out, fresh 7 live)", got)
	}
	if got := c.Total(); got != 12 {
		t.Fatalf("Total = %d, want 12", got)
	}
}

func TestGaugeAndGaugeFunc(t *testing.T) {
	r := NewRegistry(time.Second)
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(0.25)
	if got := g.Value(); got != 0.25 {
		t.Fatalf("Value = %v, want 0.25", got)
	}
	v := 3.0
	r.GaugeFunc("test_gauge_fn", "sampled", func() float64 { return v })
	fams := r.Gather()
	var sampled float64
	for _, f := range fams {
		if f.Name == "test_gauge_fn" {
			sampled = f.Metrics[0].Value
		}
	}
	if sampled != 3.0 {
		t.Fatalf("GaugeFunc sampled %v, want 3", sampled)
	}
}

func TestSummaryQuantiles(t *testing.T) {
	r := NewRegistry(time.Second)
	s := r.Summary("test_quant", "values")
	// 1000 small values and 10 large: p50 stays in the small bucket
	// range, p999 reaches the large one.
	for i := 0; i < 1000; i++ {
		s.Observe(i, 7) // bucket for 4..7
	}
	for i := 0; i < 10; i++ {
		s.Observe(i, 1000) // bucket for 512..1023
	}
	sn := s.Snapshot()
	if sn.Count != 1010 {
		t.Fatalf("Count = %d, want 1010", sn.Count)
	}
	if sn.Sum != 1000*7+10*1000 {
		t.Fatalf("Sum = %d, want %d", sn.Sum, 1000*7+10*1000)
	}
	if sn.P50 != 7 {
		t.Fatalf("P50 = %d, want 7 (upper edge of the 4..7 bucket)", sn.P50)
	}
	if sn.P999 != 1023 {
		t.Fatalf("P999 = %d, want 1023 (upper edge of the 512..1023 bucket)", sn.P999)
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry(time.Second)
	r.Counter("test_mismatch", "x")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("test_mismatch", "x")
}

func TestOnOff(t *testing.T) {
	if On() {
		t.Fatalf("metrics enabled at package init")
	}
	SetEnabled(true)
	if !On() {
		t.Fatalf("SetEnabled(true) not visible")
	}
	SetEnabled(false)
	if On() {
		t.Fatalf("SetEnabled(false) not visible")
	}
}
