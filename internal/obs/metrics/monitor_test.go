package metrics

import (
	"log"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuf is a mutex-guarded strings.Builder so the monitor goroutine
// can log while the test reads.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestMonitorAbortRateAlert(t *testing.T) {
	r := NewRegistry(10 * time.Second)
	commits := r.Counter(StmCommits, "commits")
	aborts := r.Counter(StmAborts, "aborts", L("cause", "stale read"))

	var buf syncBuf
	m := NewMonitor(r, MonitorConfig{
		AbortRateThreshold: 0.5,
		MinWindowTx:        10,
		Logger:             log.New(&buf, "", 0),
	})

	// Quiet window: no alert even though the rate is 0/0.
	m.Tick()
	if m.gAbortAl.Value() != 0 {
		t.Fatalf("alert raised on an empty window")
	}

	// Hot window: 80 aborts vs 20 commits.
	commits.Add(20)
	aborts.Add(80)
	m.Tick()
	if got := m.gRate.Value(); got != 0.8 {
		t.Fatalf("abort-rate gauge = %v, want 0.8", got)
	}
	if m.gAbortAl.Value() != 1 {
		t.Fatalf("abort-rate alert not raised at rate 0.8")
	}
	if !strings.Contains(buf.String(), "abort-rate alert RAISED") {
		t.Fatalf("raise transition not logged:\n%s", buf.String())
	}

	// A second hot tick must not re-log (transitions only).
	before := buf.String()
	m.Tick()
	if buf.String() != before {
		t.Fatalf("steady-state tick logged again")
	}

	// Window ages out (simulate by rotating everything): alert clears.
	for s := 0; s < windowSlots; s++ {
		commits.rotate(s)
		aborts.rotate(s)
	}
	m.Tick()
	if m.gAbortAl.Value() != 0 {
		t.Fatalf("abort-rate alert not cleared after window drained")
	}
	if !strings.Contains(buf.String(), "abort-rate alert cleared") {
		t.Fatalf("clear transition not logged:\n%s", buf.String())
	}
}

func TestMonitorBelowMinWindowTx(t *testing.T) {
	r := NewRegistry(10 * time.Second)
	r.Counter(StmCommits, "commits").Add(1)
	r.Counter(StmAborts, "aborts", L("cause", "stale read")).Add(9)
	m := NewMonitor(r, MonitorConfig{MinWindowTx: 100})
	m.Tick()
	if m.gAbortAl.Value() != 0 {
		t.Fatalf("alert raised with only 10 tx in window (MinWindowTx 100)")
	}
}

func TestMonitorGuardWaitAlert(t *testing.T) {
	r := NewRegistry(10 * time.Second)
	gw := r.Counter(StmGuardWaitNs, "guard wait ns")
	var buf syncBuf
	m := NewMonitor(r, MonitorConfig{
		GuardWaitThreshold: time.Millisecond,
		Logger:             log.New(&buf, "", 0),
	})
	gw.Add(uint64(2 * time.Millisecond))
	m.Tick()
	if m.gGuardAl.Value() != 1 {
		t.Fatalf("guard-wait alert not raised at 2ms windowed wait")
	}
	if !strings.Contains(buf.String(), "guard-wait alert RAISED") {
		t.Fatalf("raise not logged:\n%s", buf.String())
	}
}

func TestMonitorStartStop(t *testing.T) {
	r := NewRegistry(time.Second)
	m := NewMonitor(r, MonitorConfig{Interval: 5 * time.Millisecond})
	m.Start()
	time.Sleep(20 * time.Millisecond)
	m.Stop()
	// Stop is idempotent and Start/Stop can cycle.
	m.Stop()
	m.Start()
	m.Stop()
}
