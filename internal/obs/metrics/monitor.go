package metrics

import (
	"log"
	"time"

	"tcc/internal/thread"
)

// MonitorConfig tunes the background monitor's cadence and alert
// thresholds. The zero value gets sensible defaults from NewMonitor.
type MonitorConfig struct {
	// Interval between samples (default 1s).
	Interval time.Duration
	// AbortRateThreshold raises the abort-rate alert when
	// windowed (aborts+violations) / (commits+aborts+violations)
	// exceeds it (default 0.5).
	AbortRateThreshold float64
	// MinWindowTx suppresses the abort-rate alert until the window
	// holds at least this many finished transactions, so idle or
	// just-started processes do not flap (default 100).
	MinWindowTx uint64
	// GuardWaitThreshold raises the guard-wait alert when the
	// trailing-window commit-guard blocking time exceeds it
	// (default 100ms per window).
	GuardWaitThreshold time.Duration
	// Logger receives alert transitions (RAISED/cleared) and thread
	// lifecycle messages. Nil drops them.
	Logger *log.Logger
}

// Monitor is the background metrics thread: every Interval it
// advances the registry window, recomputes the windowed abort rate
// and guard-wait totals, publishes them as gauges
// (tcc_monitor_abort_rate, tcc_monitor_alert{alert=...}), and logs
// alert transitions. Built on the internal/thread periodic-thread
// idiom; Start/Stop are cheap and idempotent.
type Monitor struct {
	reg *Registry
	cfg MonitorConfig
	th  *thread.Thread

	gRate       *Gauge
	gAbortAl    *Gauge
	gGuardAl    *Gauge
	abortRaised bool
	guardRaised bool
}

// NewMonitor returns an unstarted monitor over r.
func NewMonitor(r *Registry, cfg MonitorConfig) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.AbortRateThreshold <= 0 {
		cfg.AbortRateThreshold = 0.5
	}
	if cfg.MinWindowTx == 0 {
		cfg.MinWindowTx = 100
	}
	if cfg.GuardWaitThreshold <= 0 {
		cfg.GuardWaitThreshold = 100 * time.Millisecond
	}
	m := &Monitor{
		reg:      r,
		cfg:      cfg,
		gRate:    r.Gauge(MonitorAbortRate, "Windowed abort rate: (aborts+violations)/(commits+aborts+violations) over the trailing window"),
		gAbortAl: r.Gauge(MonitorAlert, "Monitor alert state: 1 raised, 0 clear", L("alert", "abort_rate")),
		gGuardAl: r.Gauge(MonitorAlert, "Monitor alert state: 1 raised, 0 clear", L("alert", "guard_wait")),
	}
	m.th = thread.New(cfg.Logger, "metrics-monitor", cfg.Interval, m.Tick)
	return m
}

// Start launches the periodic sampling thread.
func (m *Monitor) Start() { m.th.Start() }

// Stop halts it, blocking until the in-flight tick (if any) is done.
func (m *Monitor) Stop() { m.th.Stop() }

// windowedStm sums the trailing-window view of the STM families the
// monitor and the profile exporter alert on.
func windowedStm(r *Registry) (commits, aborts, gwaitNs uint64) {
	for _, f := range r.Gather() {
		var sum uint64
		for _, mt := range f.Metrics {
			sum += mt.Windowed
		}
		switch f.Name {
		// StmSnapshotCommits is a subset of StmCommits; adding it here
		// would double-count snapshot commits.
		case StmCommits:
			commits += sum
		case StmAborts, StmViolations, StmUserAborts:
			aborts += sum
		case StmGuardWaitNs:
			gwaitNs += sum
		}
	}
	return commits, aborts, gwaitNs
}

// WindowedAbortRate reports the trailing-window abort rate of r —
// (aborts+violations+user aborts) / all finished transactions — and
// the number of finished transactions the window holds. Rate is 0
// when the window is empty.
func WindowedAbortRate(r *Registry) (rate float64, total uint64) {
	commits, aborts, _ := windowedStm(r)
	total = commits + aborts
	if total > 0 {
		rate = float64(aborts) / float64(total)
	}
	return rate, total
}

// Tick runs one sampling pass. Exported so tests (and one-shot
// callers) can drive the monitor without the goroutine.
func (m *Monitor) Tick() {
	m.reg.Advance(time.Now())

	commits, aborts, gwaitNs := windowedStm(m.reg)
	total := commits + aborts
	rate := 0.0
	if total > 0 {
		rate = float64(aborts) / float64(total)
	}
	m.gRate.Set(rate)

	abortHot := total >= m.cfg.MinWindowTx && rate > m.cfg.AbortRateThreshold
	m.transition(&m.abortRaised, abortHot, m.gAbortAl,
		"abort-rate alert", "windowed rate %.3f (threshold %.3f, %d tx in window)",
		rate, m.cfg.AbortRateThreshold, total)

	guardHot := gwaitNs > uint64(m.cfg.GuardWaitThreshold.Nanoseconds())
	m.transition(&m.guardRaised, guardHot, m.gGuardAl,
		"guard-wait alert", "windowed guard wait %v (threshold %v)",
		time.Duration(gwaitNs), m.cfg.GuardWaitThreshold)
}

func (m *Monitor) transition(raised *bool, hot bool, g *Gauge, name, format string, args ...any) {
	if hot == *raised {
		return
	}
	*raised = hot
	if hot {
		g.Set(1)
		m.logf("metrics-monitor: %s RAISED: "+format, append([]any{name}, args...)...)
	} else {
		g.Set(0)
		m.logf("metrics-monitor: %s cleared: "+format, append([]any{name}, args...)...)
	}
}

func (m *Monitor) logf(format string, args ...any) {
	if m.cfg.Logger != nil {
		m.cfg.Logger.Printf(format, args...)
	}
}
