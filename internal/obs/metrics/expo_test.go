package metrics

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildExpoRegistry constructs a registry with one instrument of each
// type and deterministic contents for the golden exposition test.
func buildExpoRegistry() *Registry {
	r := NewRegistry(10 * time.Second)
	c := r.Counter("tcc_test_commits_total", "Committed transactions", L("cause", "ok"))
	c.Add(42)
	g := r.Gauge("tcc_test_clock", "Global commit clock")
	g.Set(7)
	s := r.Summary("tcc_test_latency", "Transaction latency")
	for i := 0; i < 100; i++ {
		s.Observe(0, 7)
	}
	for i := 0; i < 10; i++ {
		s.Observe(0, 1000)
	}
	return r
}

// TestWritePrometheusGolden pins the exact text exposition: HELP/TYPE
// pairs, label rendering, the counter's sibling _window gauge family,
// and the summary's windowed quantile/_sum/_count samples.
func TestWritePrometheusGolden(t *testing.T) {
	const golden = `# HELP tcc_test_clock Global commit clock
# TYPE tcc_test_clock gauge
tcc_test_clock 7
# HELP tcc_test_commits_total Committed transactions
# TYPE tcc_test_commits_total counter
tcc_test_commits_total{cause="ok"} 42
# HELP tcc_test_commits_total_window Committed transactions (trailing window)
# TYPE tcc_test_commits_total_window gauge
tcc_test_commits_total_window{cause="ok"} 42
# HELP tcc_test_latency Transaction latency
# TYPE tcc_test_latency summary
tcc_test_latency{quantile="0.5"} 7
tcc_test_latency{quantile="0.99"} 1023
tcc_test_latency{quantile="0.999"} 1023
tcc_test_latency_sum 10700
tcc_test_latency_count 110
`
	var b strings.Builder
	if err := WritePrometheus(&b, buildExpoRegistry()); err != nil {
		t.Fatal(err)
	}
	if b.String() != golden {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), golden)
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, buildExpoRegistry()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		WindowSeconds float64          `json:"window_seconds"`
		Families      []FamilySnapshot `json:"families"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("JSON endpoint emitted invalid JSON: %v", err)
	}
	if doc.WindowSeconds != 10 {
		t.Fatalf("window_seconds = %v, want 10", doc.WindowSeconds)
	}
	byName := map[string]FamilySnapshot{}
	for _, f := range doc.Families {
		byName[f.Name] = f
	}
	if f := byName["tcc_test_commits_total"]; len(f.Metrics) != 1 || f.Metrics[0].Value != 42 {
		t.Fatalf("counter family = %+v, want one metric of value 42", f)
	}
	sum := byName["tcc_test_latency"]
	if len(sum.Metrics) != 1 || sum.Metrics[0].Summary == nil {
		t.Fatalf("summary family = %+v, want an embedded summary", sum)
	}
	if sn := sum.Metrics[0].Summary; sn.Count != 110 || sn.P999 != 1023 {
		t.Fatalf("summary snapshot = %+v, want count 110 p999 1023", sn)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry(time.Second)
	r.Counter("tcc_test_escape_total", "line\nbreak", L("k", `a"b\c`))
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `line\nbreak`) {
		t.Fatalf("help newline not escaped:\n%s", b.String())
	}
	if !strings.Contains(b.String(), `k="a\"b\\c"`) {
		t.Fatalf("label quoting not escaped:\n%s", b.String())
	}
}

func TestMuxEndpoints(t *testing.T) {
	r := buildExpoRegistry()
	mux := NewMux(r)

	req := httptest.NewRequest("GET", "/metrics", nil)
	rw := httptest.NewRecorder()
	mux.ServeHTTP(rw, req)
	if rw.Code != 200 {
		t.Fatalf("/metrics status = %d", rw.Code)
	}
	if ct := rw.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q, want the 0.0.4 text format", ct)
	}
	if body := rw.Body.String(); !strings.Contains(body, "tcc_test_commits_total") {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}

	req = httptest.NewRequest("GET", "/metrics.json", nil)
	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, req)
	if rw.Code != 200 {
		t.Fatalf("/metrics.json status = %d", rw.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(rw.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/metrics.json invalid: %v", err)
	}
}

// TestConcurrentScrape hammers counters and summaries from writer
// goroutines while scraping and rotating concurrently — the -race
// checker validates the lock-free increment/rotate/snapshot paths.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry(80 * time.Millisecond) // 10ms slots: rotation is exercised
	c := r.CounterSharded("tcc_test_race_total", "events", 4)
	s := r.Summary("tcc_test_race_latency", "latency")
	g := r.Gauge("tcc_test_race_gauge", "gauge")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.AddLane(w, 1)
				s.Observe(w, uint64(i%1024))
				g.Set(float64(i))
			}
		}(w)
	}
	start := time.Now()
	for time.Since(start) < 150*time.Millisecond {
		r.Advance(time.Now())
		if err := WritePrometheus(io.Discard, r); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if c.Total() == 0 {
		t.Fatalf("no increments observed")
	}
}
