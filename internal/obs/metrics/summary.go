package metrics

import (
	"math/bits"
	"sync/atomic"
)

// summaryBuckets is the number of power-of-two buckets per slot,
// mirroring obs.HistBuckets: bucket i holds values v with
// bits.Len64(v) == i, the last bucket is open-ended.
const summaryBuckets = 40

// summaryShards bounds cross-CPU contention inside one ring slot.
// Smaller than obs's 16: a Summary carries windowSlots copies, so
// memory scales as slots × shards × buckets.
const summaryShards = 4

type summaryShard struct {
	count  atomic.Uint64
	sum    atomic.Uint64
	bucket [summaryBuckets]atomic.Uint64
	_      [6]uint64 // pad shards apart
}

type summarySlot struct {
	shards [summaryShards]summaryShard
}

// Summary is a time-windowed log-bucketed histogram: observations
// land in the current ring slot, rotation clears aged slots, and
// quantiles are computed over the merged live slots — so p50/p99/p999
// reflect the last window, not process lifetime.
type Summary struct {
	reg    *Registry
	labels []Label
	slots  [windowSlots]summarySlot
}

// Summary returns the windowed summary for name+labels, creating it
// on first use.
func (r *Registry) Summary(name, help string, labels ...Label) *Summary {
	m := r.getOrCreate(name, help, "summary", labels, func() instrument {
		return &Summary{reg: r, labels: labels}
	})
	return m.(*Summary)
}

func summaryBucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= summaryBuckets {
		return summaryBuckets - 1
	}
	return b
}

// Observe records v on the given shard lane of the current window
// slot. Atomic-only, never allocates; safe for concurrent use.
func (s *Summary) Observe(lane int, v uint64) {
	slot := &s.slots[s.reg.cur.Load()%windowSlots]
	sh := &slot.shards[uint(lane)%summaryShards]
	sh.count.Add(1)
	sh.sum.Add(v)
	sh.bucket[summaryBucketOf(v)].Add(1)
}

func (s *Summary) rotate(slot int) {
	sl := &s.slots[slot]
	for i := range sl.shards {
		sh := &sl.shards[i]
		sh.count.Store(0)
		sh.sum.Store(0)
		for b := range sh.bucket {
			sh.bucket[b].Store(0)
		}
	}
}

// SummarySnapshot is the merged windowed view of a Summary.
type SummarySnapshot struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	P50   uint64 `json:"p50"`
	P99   uint64 `json:"p99"`
	P999  uint64 `json:"p999"`
}

func summaryBucketBounds(i int) (lo, hi uint64) {
	switch {
	case i == 0:
		return 0, 0
	case i == summaryBuckets-1:
		return 1 << (i - 1), ^uint64(0)
	default:
		return 1 << (i - 1), 1<<i - 1
	}
}

// Snapshot merges every live slot and shard. It may run concurrently
// with Observe; the result is a consistent-enough view for scraping.
func (s *Summary) Snapshot() SummarySnapshot {
	var merged [summaryBuckets]uint64
	var snap SummarySnapshot
	for si := range s.slots {
		for hi := range s.slots[si].shards {
			sh := &s.slots[si].shards[hi]
			snap.Count += sh.count.Load()
			snap.Sum += sh.sum.Load()
			for b := range sh.bucket {
				merged[b] += sh.bucket[b].Load()
			}
		}
	}
	snap.P50 = quantileOf(merged[:], snap.Count, 0.50)
	snap.P99 = quantileOf(merged[:], snap.Count, 0.99)
	snap.P999 = quantileOf(merged[:], snap.Count, 0.999)
	return snap
}

// quantileOf returns the inclusive upper edge of the bucket holding
// the q-th of count values (0 if empty), matching obs.HistSnapshot's
// quantile convention.
func quantileOf(buckets []uint64, count uint64, q float64) uint64 {
	if count == 0 {
		return 0
	}
	rank := uint64(q * float64(count-1))
	var seen uint64
	last := uint64(0)
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		seen += n
		_, hi := summaryBucketBounds(i)
		last = hi
		if rank < seen {
			return hi
		}
	}
	return last
}

func (s *Summary) snapshot() MetricSnapshot {
	sn := s.Snapshot()
	return MetricSnapshot{Labels: s.labels, Summary: &sn}
}
