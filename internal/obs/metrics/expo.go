package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE pair per
// family, then one sample line per metric. Counters emit the
// cumulative total plus a sibling <name>_window gauge carrying the
// trailing-window count (Prometheus-side rate() works on the total;
// the _window family gives in-process rates without a server).
// Summaries emit windowed quantile samples plus _sum and _count —
// note that unlike textbook Prometheus summaries those two are
// windowed as well, matching the quantiles (documented in DESIGN.md
// §10).
func WritePrometheus(w io.Writer, r *Registry) error {
	for _, f := range r.Gather() {
		if err := writeFamily(w, f); err != nil {
			return err
		}
	}
	return nil
}

func writeFamily(w io.Writer, f FamilySnapshot) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.Name, escapeHelp(f.Help), f.Name, f.Type); err != nil {
		return err
	}
	switch f.Type {
	case "summary":
		for _, m := range f.Metrics {
			s := m.Summary
			if s == nil {
				continue
			}
			for _, q := range [...]struct {
				q string
				v uint64
			}{{"0.5", s.P50}, {"0.99", s.P99}, {"0.999", s.P999}} {
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.Name, labelString(m.Labels, L("quantile", q.q)), q.v); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n",
				f.Name, labelString(m.Labels), s.Sum, f.Name, labelString(m.Labels), s.Count); err != nil {
				return err
			}
		}
	default:
		for _, m := range f.Metrics {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, labelString(m.Labels), formatValue(m.Value)); err != nil {
				return err
			}
		}
		if f.Type == "counter" {
			// Sibling windowed family: trailing-window counts as a gauge.
			if _, err := fmt.Fprintf(w, "# HELP %s_window %s (trailing window)\n# TYPE %s_window gauge\n",
				f.Name, escapeHelp(f.Help), f.Name); err != nil {
				return err
			}
			for _, m := range f.Metrics {
				if _, err := fmt.Fprintf(w, "%s_window%s %d\n", f.Name, labelString(m.Labels), m.Windowed); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// formatValue renders integers without an exponent and everything
// else in the shortest float form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func labelString(labels []Label, extra ...Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	n := 0
	for _, l := range labels {
		if n > 0 {
			b.WriteByte(',')
		}
		n++
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	for _, l := range extra {
		if n > 0 {
			b.WriteByte(',')
		}
		n++
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

// WriteJSON renders the same Gather() view as indented JSON, the
// machine-readable sibling of the Prometheus endpoint.
func WriteJSON(w io.Writer, r *Registry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		WindowSeconds float64          `json:"window_seconds"`
		Families      []FamilySnapshot `json:"families"`
	}{r.Window().Seconds(), r.Gather()})
}
