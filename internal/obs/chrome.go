package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Recorder is a Tracer that keeps the most recent events in a bounded
// ring buffer and exports them as Chrome trace_event JSON — one lane
// (tid) per virtual CPU, using the emitting clock's cycle counts as
// microsecond timestamps. Load the output in Perfetto or
// chrome://tracing.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	dropped uint64
}

// DefaultRecorderCap bounds memory when no capacity is given:
// ~128k events × ~100 B ≈ 13 MB worst case.
const DefaultRecorderCap = 1 << 17

// NewRecorder returns a ring recorder holding up to capacity events
// (DefaultRecorderCap if capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCap
	}
	return &Recorder{buf: make([]Event, 0, capacity)}
}

// Trace implements Tracer.
func (r *Recorder) Trace(e Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
		r.full = true
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns the recorded events in arrival order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf...)
	}
	out := make([]Event, 0, cap(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped reports how many events were evicted from the ring.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// traceEvent is one Chrome trace_event record; field order here fixes
// the JSON key order, which keeps golden files stable.
type traceEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat,omitempty"`
	Ph   string     `json:"ph"`
	Ts   uint64     `json:"ts"`
	Dur  uint64     `json:"dur,omitempty"`
	Pid  int        `json:"pid"`
	Tid  int        `json:"tid"`
	S    string     `json:"s,omitempty"` // instant scope
	Args *traceArgs `json:"args,omitempty"`
}

type traceArgs struct {
	Tx       uint64 `json:"tx,omitempty"`
	OtherTx  uint64 `json:"other_tx,omitempty"`
	Attempt  int    `json:"attempt,omitempty"`
	Reads    int    `json:"reads,omitempty"`
	Writes   int    `json:"writes,omitempty"`
	Handlers int    `json:"handlers,omitempty"`
	Snapshot bool   `json:"snapshot,omitempty"`
	Where    string `json:"where,omitempty"`
	Reason   string `json:"reason,omitempty"`
	Name     string `json:"name,omitempty"` // metadata payload
}

type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace exports the ring as a Chrome trace_event JSON document.
//
// Transaction ids are renumbered densely in order of first appearance
// so the output is stable even though the process-global id counter
// is shared across runs (golden-file tests rely on this). Events are
// sorted by (ts, tid, name) before writing.
func (r *Recorder) WriteTrace(w io.Writer) error {
	events := r.Events()

	renum := make(map[uint64]uint64, 64)
	dense := func(id uint64) uint64 {
		if id == 0 {
			return 0
		}
		if d, ok := renum[id]; ok {
			return d
		}
		d := uint64(len(renum) + 1)
		renum[id] = d
		return d
	}

	lanes := map[int]bool{}
	out := make([]traceEvent, 0, len(events)+8)
	for _, e := range events {
		lanes[e.CPU] = true
		tx := dense(e.TxID)
		other := uint64(0)
		if e.OtherTx != 0 {
			// Only map conflicting ids already seen; an id outside the
			// ring window has no dense name.
			if d, ok := renum[e.OtherTx]; ok {
				other = d
			}
		}
		te := traceEvent{
			Name: e.Kind.String(),
			Pid:  1,
			Tid:  e.CPU,
			Ts:   e.Time,
			Args: &traceArgs{Tx: tx, OtherTx: other, Attempt: e.Attempt},
		}
		span := func(dur uint64) {
			te.Ph = "X"
			if dur == 0 {
				dur = 1
			}
			if dur > te.Ts {
				dur = te.Ts // clamp: spans cannot start before t=0
			}
			te.Ts -= dur
			te.Dur = dur
		}
		switch e.Kind {
		case KindTxBegin:
			// Implicit in the commit/abort spans; an instant per begin
			// would only clutter the lanes.
			continue
		case KindTxCommit:
			te.Cat = "tx"
			span(e.Dur)
			te.Args.Reads, te.Args.Writes, te.Args.Handlers = e.Reads, e.Writes, e.Handlers
			te.Args.Snapshot = e.Snapshot
		case KindTxAbort, KindTxViolated, KindTxUserAbort:
			te.Cat = "conflict"
			span(e.Dur)
			te.Args.Where, te.Args.Reason = e.Where, e.Reason
		case KindBackoff:
			te.Cat = "backoff"
			span(e.Dur)
		case KindNestedRetry, KindOpenRetry:
			te.Ph = "i"
			te.Cat = "conflict"
			te.S = "t"
			te.Args.Where, te.Args.Reason = e.Where, e.Reason
		case KindOpenCommit:
			te.Ph = "i"
			te.Cat = "tx"
			te.S = "t"
			te.Args.Writes = e.Writes
		case KindGuardWait:
			te.Ph = "i"
			te.Cat = "guard"
			te.S = "t"
			te.Args.Where = e.Where
		default:
			te.Ph = "i"
			te.S = "t"
		}
		out = append(out, te)
	}

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Ts != out[j].Ts {
			return out[i].Ts < out[j].Ts
		}
		if out[i].Tid != out[j].Tid {
			return out[i].Tid < out[j].Tid
		}
		return out[i].Name < out[j].Name
	})

	laneIDs := make([]int, 0, len(lanes))
	for id := range lanes {
		laneIDs = append(laneIDs, id)
	}
	sort.Ints(laneIDs)
	meta := make([]traceEvent, 0, len(laneIDs)+1)
	meta = append(meta, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: &traceArgs{Name: "tcc-stm"},
	})
	for _, id := range laneIDs {
		meta = append(meta, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: id,
			Args: &traceArgs{Name: laneName(id)},
		})
	}

	doc := chromeTrace{TraceEvents: append(meta, out...), DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

func laneName(id int) string {
	return "vCPU " + strconv.Itoa(id)
}
