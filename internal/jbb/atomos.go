package jbb

import (
	"fmt"

	"tcc/internal/collections"
	"tcc/internal/core"
	"tcc/internal/harness"
	"tcc/internal/stm"
	"tcc/internal/stmcol"
)

// atomosDistrict is one district's share of the transactional
// warehouse: its order-ID generator and its order tables, in the
// representation of the active configuration.
type atomosDistrict struct {
	nextOrderVar *stm.Var[int]
	nextOrderGen *core.UIDGen

	orderTableS    *stmcol.TreeMap[int, *Order]
	newOrderTableS *stmcol.TreeMap[int, *Order]
	orderTableT    *core.TransactionalSortedMap[int, *Order]
	newOrderTableT *core.TransactionalSortedMap[int, *Order]
}

// atomosWarehouse implements the three transactional configurations.
// Each of the five operations runs as a single top-level transaction —
// the paper's "first step baseline parallelization by a novice parallel
// programmer" whose correctness is easy to reason about because all
// parallel code executes inside transactions (§6.3).
//
//   - Baseline: identifiers are stm.Vars (every operation conflicts on
//     the warehouse transaction counter, every NewOrder on its
//     district's nextOrder, every Payment on the history UID and ytd),
//     tables are STM-instrumented collections.
//   - Open (openCounters): identifiers become open-nested UIDGen /
//     Counter instances, eliminating the counter conflicts.
//   - Transactional (transactionalTables): the hot tables are wrapped
//     in transactional collection classes, eliminating the structural
//     conflicts too.
type atomosWarehouse struct {
	p                   Params
	openCounters        bool
	transactionalTables bool

	districts []*atomosDistrict

	// Warehouse-level identifier state (Baseline vs Open+).
	nextHistoryVar *stm.Var[int]
	ytdVar         *stm.Var[int64]
	txCountVar     *stm.Var[int64]
	nextHistoryGen *core.UIDGen
	ytdCounter     *core.Counter
	txCountCounter *core.Counter

	// Per-entity state: one var per stock slot / customer balance, so
	// only same-entity accesses conflict (as object fields would in
	// Atomos).
	stock   []*stm.Var[int]
	balance []*stm.Var[int]
	// lastOrderOf mirrors TPC-C: each customer's most recent order, the
	// object Order-Status queries.
	lastOrderOf []*stm.Var[*Order]

	historyTableS *stmcol.HashMap[int, *History]
	historyTableT *core.TransactionalMap[int, *History]
}

// NewAtomosWarehouse builds one of the transactional configurations.
func NewAtomosWarehouse(cfg Config, p Params) Warehouse {
	wh := &atomosWarehouse{
		p:                   p,
		openCounters:        cfg == ConfigAtomosOpen || cfg == ConfigAtomosTransactional,
		transactionalTables: cfg == ConfigAtomosTransactional,
	}
	for i := 0; i < p.Items; i++ {
		wh.stock = append(wh.stock, stm.NewVar(10_000))
	}
	for i := 0; i < p.Customers; i++ {
		wh.balance = append(wh.balance, stm.NewVar(0))
		wh.lastOrderOf = append(wh.lastOrderOf, stm.NewVar[*Order](nil))
	}
	if wh.openCounters {
		wh.nextHistoryGen = core.NewUIDGen(0)
		wh.ytdCounter = core.NewCounter(0)
		wh.txCountCounter = core.NewCounter(0)
	} else {
		wh.nextHistoryVar = stm.NewVar(0)
		wh.ytdVar = stm.NewVar[int64](0)
		wh.txCountVar = stm.NewVar[int64](0)
	}
	if wh.transactionalTables {
		wh.historyTableT = core.NewTransactionalMap[int, *History](collections.NewHashMap[int, *History]())
		wh.historyTableT.SetName("Warehouse.historyTable")
	} else {
		wh.historyTableS = stmcol.NewHashMap[int, *History]()
	}
	th := stm.NewThread(&stm.RealClock{}, 999)
	for di := 0; di < p.districtCount(); di++ {
		d := &atomosDistrict{}
		if wh.openCounters {
			d.nextOrderGen = core.NewUIDGen(int64(p.InitialOrders))
		} else {
			d.nextOrderVar = stm.NewVar(p.InitialOrders)
		}
		var put func(tx *stm.Tx, k int, o *Order)
		if wh.transactionalTables {
			d.orderTableT = core.NewTransactionalSortedMap[int, *Order](collections.NewTreeMap[int, *Order]())
			d.orderTableT.SetName(fmt.Sprintf("District[%d].orderTable", di))
			d.newOrderTableT = core.NewTransactionalSortedMap[int, *Order](collections.NewTreeMap[int, *Order]())
			d.newOrderTableT.SetName(fmt.Sprintf("District[%d].newOrderTable", di))
			put = func(tx *stm.Tx, k int, o *Order) {
				d.orderTableT.Put(tx, k, o)
				d.newOrderTableT.Put(tx, k, o)
			}
		} else {
			d.orderTableS = stmcol.NewTreeMap[int, *Order]()
			d.newOrderTableS = stmcol.NewTreeMap[int, *Order]()
			put = func(tx *stm.Tx, k int, o *Order) {
				d.orderTableS.Put(tx, k, o)
				d.newOrderTableS.Put(tx, k, o)
			}
		}
		if err := th.Atomic(func(tx *stm.Tx) error {
			for oid := 0; oid < p.InitialOrders; oid++ {
				put(tx, oid, &Order{ID: oid, Customer: oid % p.Customers, Total: 10})
			}
			return nil
		}); err != nil {
			panic(err)
		}
		wh.districts = append(wh.districts, d)
	}
	return wh
}

// Identifier helpers dispatch on the configuration.

func (d *atomosDistrict) takeOrderID(tx *stm.Tx) int {
	if d.nextOrderGen != nil {
		return int(d.nextOrderGen.Next(tx))
	}
	id := d.nextOrderVar.Get(tx)
	d.nextOrderVar.Set(tx, id+1)
	return id
}

// currentOrderID reads the district's next order id without consuming
// it — TPC-C's Stock-Level reads D_NEXT_O_ID to bound its scan. In the
// Open and Transactional configurations this is a reduced-isolation
// read of the open-nested generator and creates no conflict; in the
// Baseline it is an ordinary transactional read that conflicts with
// every NewOrder in the district.
func (d *atomosDistrict) currentOrderID(tx *stm.Tx) int {
	if d.nextOrderGen != nil {
		return int(d.nextOrderGen.Current(tx))
	}
	return d.nextOrderVar.Get(tx)
}

func (wh *atomosWarehouse) takeHistoryID(tx *stm.Tx) int {
	if wh.openCounters {
		return int(wh.nextHistoryGen.Next(tx))
	}
	id := wh.nextHistoryVar.Get(tx)
	wh.nextHistoryVar.Set(tx, id+1)
	return id
}

// countTransaction bumps the warehouse's transaction counter (the
// throughput statistic SPECjbb's TransactionManager keeps) — in the
// Baseline it is a transactional variable every operation reads and
// writes, making it the dominant source of lost work, exactly the role
// the paper assigns its global counters (§6.3).
func (wh *atomosWarehouse) countTransaction(tx *stm.Tx) {
	if wh.openCounters {
		wh.txCountCounter.Add(tx, 1)
		return
	}
	wh.txCountVar.Set(tx, wh.txCountVar.Get(tx)+1)
}

func (wh *atomosWarehouse) addYtd(tx *stm.Tx, amount int64) {
	if wh.openCounters {
		wh.ytdCounter.Add(tx, amount)
		return
	}
	wh.ytdVar.Set(tx, wh.ytdVar.Get(tx)+amount)
}

// Table helpers dispatch on the configuration.

func (wh *atomosWarehouse) putOrder(tx *stm.Tx, d *atomosDistrict, oid int, o *Order) {
	if wh.transactionalTables {
		d.orderTableT.Put(tx, oid, o)
		d.newOrderTableT.Put(tx, oid, o)
		return
	}
	d.orderTableS.Put(tx, oid, o)
	d.newOrderTableS.Put(tx, oid, o)
}

func (wh *atomosWarehouse) takeFirstNewOrder(tx *stm.Tx, d *atomosDistrict) (*Order, bool) {
	if wh.transactionalTables {
		first, ok := d.newOrderTableT.FirstKey(tx)
		if !ok {
			return nil, false
		}
		o, _ := d.newOrderTableT.Get(tx, first)
		d.newOrderTableT.Remove(tx, first)
		return o, o != nil
	}
	first, ok := d.newOrderTableS.FirstKey(tx)
	if !ok {
		return nil, false
	}
	o, _ := d.newOrderTableS.Get(tx, first)
	d.newOrderTableS.Remove(tx, first)
	return o, o != nil
}

func (wh *atomosWarehouse) recentOrderItems(tx *stm.Tx, d *atomosDistrict) map[int]struct{} {
	items := map[int]struct{}{}
	collect := func(_ int, o *Order) bool {
		for _, l := range o.Lines {
			items[l.Item] = struct{}{}
		}
		return true
	}
	hi := d.currentOrderID(tx)
	lo := hi - wh.p.RecentOrders
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return items
	}
	// The scan is bounded ([hi-20, hi), per TPC-C), so order insertions
	// beyond the observed id bound do not semantically conflict with it.
	if wh.transactionalTables {
		d.orderTableT.SubMap(lo, hi).ForEach(tx, collect)
		return items
	}
	d.orderTableS.AscendRange(tx, &lo, &hi, collect)
	return items
}

func (wh *atomosWarehouse) putHistory(tx *stm.Tx, hid int, h *History) {
	if wh.transactionalTables {
		// Blind put: the ID is fresh, nobody needs the (absent) old
		// value — the §5.1 "unread" variant avoids even the key read.
		wh.historyTableT.PutUnread(tx, hid, h)
		return
	}
	wh.historyTableS.Put(tx, hid, h)
}

// Do executes op as one atomic transaction.
func (wh *atomosWarehouse) Do(w *harness.Worker, op Op) Counts {
	d := wh.districts[w.RNG.Intn(len(wh.districts))]
	switch op {
	case OpNewOrder:
		return wh.newOrder(w, d)
	case OpPayment:
		return wh.payment(w)
	case OpOrderStatus:
		return wh.orderStatus(w)
	case OpDelivery:
		return wh.delivery(w, d)
	default:
		return wh.stockLevel(w, d)
	}
}

func (wh *atomosWarehouse) newOrder(w *harness.Worker, d *atomosDistrict) Counts {
	nLines := 1 + w.RNG.Intn(wh.p.MaxOrderLines)
	customer := w.RNG.Intn(wh.p.Customers)
	lines := make([]OrderLine, nLines)
	for i := range lines {
		lines[i] = OrderLine{Item: w.RNG.Intn(wh.p.Items), Qty: 1 + w.RNG.Intn(5)}
	}
	harness.MustAtomic(w.Thread, func(tx *stm.Tx) error {
		w.Compute(wh.p.Compute / 2)
		wh.countTransaction(tx)
		oid := d.takeOrderID(tx)
		total := 0
		for _, l := range lines {
			q := wh.stock[l.Item].Get(tx)
			q -= l.Qty
			if q < 100 {
				q += 5_000 // restock
			}
			wh.stock[l.Item].Set(tx, q)
			total += l.Qty * itemPrice(l.Item)
		}
		o := &Order{ID: oid, Customer: customer, Lines: lines, Total: total}
		wh.putOrder(tx, d, oid, o)
		wh.lastOrderOf[customer].Set(tx, o)
		w.Compute(wh.p.Compute / 2)
		return nil
	})
	return Counts{NewOrders: 1}
}

func (wh *atomosWarehouse) payment(w *harness.Worker) Counts {
	customer := w.RNG.Intn(wh.p.Customers)
	amount := 1 + w.RNG.Intn(100)
	harness.MustAtomic(w.Thread, func(tx *stm.Tx) error {
		w.Compute(wh.p.Compute / 2)
		wh.countTransaction(tx)
		b := wh.balance[customer]
		b.Set(tx, b.Get(tx)-amount)
		wh.addYtd(tx, int64(amount))
		hid := wh.takeHistoryID(tx)
		wh.putHistory(tx, hid, &History{ID: hid, Customer: customer, Amount: amount})
		w.Compute(wh.p.Compute / 2)
		return nil
	})
	return Counts{Payments: 1, PaymentTotal: int64(amount)}
}

func (wh *atomosWarehouse) orderStatus(w *harness.Worker) Counts {
	// TPC-C's Order-Status queries the status of the *customer's* most
	// recent order.
	customer := w.RNG.Intn(wh.p.Customers)
	harness.MustAtomic(w.Thread, func(tx *stm.Tx) error {
		w.Compute(wh.p.Compute / 2)
		wh.countTransaction(tx)
		if o := wh.lastOrderOf[customer].Get(tx); o != nil {
			sum := 0
			for _, l := range o.Lines {
				sum += l.Qty
			}
			_ = sum
		}
		w.Compute(wh.p.Compute / 2)
		return nil
	})
	return Counts{OrderStatuses: 1}
}

func (wh *atomosWarehouse) delivery(w *harness.Worker, d *atomosDistrict) Counts {
	delivered := false
	harness.MustAtomic(w.Thread, func(tx *stm.Tx) error {
		delivered = false
		w.Compute(wh.p.Compute / 2)
		wh.countTransaction(tx)
		if o, ok := wh.takeFirstNewOrder(tx, d); ok {
			b := wh.balance[o.Customer]
			b.Set(tx, b.Get(tx)+o.Total)
			delivered = true
		}
		w.Compute(wh.p.Compute / 2)
		return nil
	})
	if delivered {
		return Counts{Deliveries: 1}
	}
	return Counts{EmptyDeliveries: 1}
}

func (wh *atomosWarehouse) stockLevel(w *harness.Worker, d *atomosDistrict) Counts {
	harness.MustAtomic(w.Thread, func(tx *stm.Tx) error {
		w.Compute(wh.p.Compute / 2)
		wh.countTransaction(tx)
		low := 0
		for it := range wh.recentOrderItems(tx, d) {
			if wh.stock[it].Get(tx) < wh.p.StockThreshold {
				low++
			}
		}
		w.Compute(wh.p.Compute / 2)
		return nil
	})
	return Counts{StockLevels: 1}
}

// Check validates table sizes and counters against the tally.
func (wh *atomosWarehouse) Check(c Counts) error {
	th := stm.NewThread(&stm.RealClock{}, 777)
	var orderN, newOrderN, historyN int
	if err := th.Atomic(func(tx *stm.Tx) error {
		orderN, newOrderN = 0, 0
		for _, d := range wh.districts {
			if wh.transactionalTables {
				orderN += d.orderTableT.Size(tx)
				newOrderN += d.newOrderTableT.Size(tx)
			} else {
				orderN += d.orderTableS.Size(tx)
				newOrderN += d.newOrderTableS.Size(tx)
			}
		}
		if wh.transactionalTables {
			historyN = wh.historyTableT.Size(tx)
		} else {
			historyN = wh.historyTableS.Size(tx)
		}
		return nil
	}); err != nil {
		return err
	}
	nd := int64(len(wh.districts))
	if got, want := int64(orderN), nd*int64(wh.p.InitialOrders)+c.NewOrders; got != want {
		return fmt.Errorf("jbb/atomos: orderTable size %d, want %d", got, want)
	}
	if got, want := int64(newOrderN), nd*int64(wh.p.InitialOrders)+c.NewOrders-c.Deliveries; got != want {
		return fmt.Errorf("jbb/atomos: newOrderTable size %d, want %d", got, want)
	}
	if got, want := int64(historyN), c.Payments; got != want {
		return fmt.Errorf("jbb/atomos: historyTable size %d, want %d", got, want)
	}
	// Identifier checks: exact for the serializable Baseline counters;
	// gaps allowed (>=) for open-nested UID generators.
	if wh.openCounters {
		var sum int64
		for _, d := range wh.districts {
			sum += d.nextOrderGen.Peek() - int64(wh.p.InitialOrders)
		}
		if sum < c.NewOrders {
			return fmt.Errorf("jbb/atomos: nextOrder sum %d, want >= %d", sum, c.NewOrders)
		}
		if got := wh.ytdCounter.Value(); got != c.PaymentTotal {
			return fmt.Errorf("jbb/atomos: ytd %d, want %d", got, c.PaymentTotal)
		}
		if got, want := wh.txCountCounter.Value(), c.totalOps(); got != want {
			return fmt.Errorf("jbb/atomos: txCount %d, want %d", got, want)
		}
	} else {
		var sum int64
		for _, d := range wh.districts {
			sum += int64(d.nextOrderVar.GetCommitted() - wh.p.InitialOrders)
		}
		if sum != c.NewOrders {
			return fmt.Errorf("jbb/atomos: nextOrder sum %d, want %d", sum, c.NewOrders)
		}
		if got := wh.ytdVar.GetCommitted(); got != c.PaymentTotal {
			return fmt.Errorf("jbb/atomos: ytd %d, want %d", got, c.PaymentTotal)
		}
		if got, want := wh.txCountVar.GetCommitted(), c.totalOps(); got != want {
			return fmt.Errorf("jbb/atomos: txCount %d, want %d", got, want)
		}
	}
	return nil
}
