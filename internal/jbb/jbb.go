// Package jbb is a from-scratch stand-in for the paper's
// high-contention SPECjbb2000 variant (§6.3): a TPC-C-style order
// processing workload where — unlike stock SPECjbb — every thread
// operates on a single shared warehouse with a single district, so the
// shared structures the paper names become hot:
//
//   - District.nextOrder, the order-ID generator (every NewOrder),
//   - Warehouse.historyTable (every Payment),
//   - District.orderTable and District.newOrderTable (NewOrder,
//     Delivery, OrderStatus, StockLevel).
//
// Four configurations reproduce the paper's Figure 4 lines:
//
//	Java                 — plain collections, one lock per structure
//	                       (the synchronized critical regions).
//	Atomos Baseline      — each of the five operations is one
//	                       transaction over STM-instrumented structures;
//	                       a novice's first parallelization.
//	Atomos Open          — Baseline plus open-nested counters and UID
//	                       generators for nextOrder / history IDs / ytd.
//	Atomos Transactional — Open plus the three hot tables wrapped in
//	                       TransactionalMap / TransactionalSortedMap.
package jbb

import (
	"fmt"

	"tcc/internal/harness"
)

// Config selects one of the four Figure 4 configurations.
type Config int

// The Figure 4 configurations.
const (
	ConfigJava Config = iota
	ConfigAtomosBaseline
	ConfigAtomosOpen
	ConfigAtomosTransactional
)

// String implements fmt.Stringer.
func (c Config) String() string {
	switch c {
	case ConfigJava:
		return "Java"
	case ConfigAtomosBaseline:
		return "Atomos Baseline"
	case ConfigAtomosOpen:
		return "Atomos Open"
	case ConfigAtomosTransactional:
		return "Atomos Transactional"
	default:
		return fmt.Sprintf("Config(%d)", int(c))
	}
}

// Params sizes the workload.
type Params struct {
	// Items and Customers size the static entity tables.
	Items, Customers int
	// InitialOrders pre-populates the order tables.
	InitialOrders int
	// MaxOrderLines bounds the lines per order (TPC-C draws 5-15; we
	// default lower to keep simulated transactions comparable to the
	// micro-benchmarks).
	MaxOrderLines int
	// Compute is the per-operation surrounding computation in cycles.
	Compute uint64
	// StockThreshold is StockLevel's low-stock cutoff.
	StockThreshold int
	// RecentOrders is how far back StockLevel scans.
	RecentOrders int
	// Districts is the number of districts in the shared warehouse.
	// SPECjbb's standard warehouse has 10; the paper's high-contention
	// variant concentrates everything, so the default here is 1. The
	// district-sensitivity benchmark sweeps it.
	Districts int
}

// districtCount normalizes the Districts parameter (zero means one).
func (p Params) districtCount() int {
	if p.Districts <= 0 {
		return 1
	}
	return p.Districts
}

// DefaultParams returns the workload sizing used for Figure 4.
func DefaultParams() Params {
	return Params{
		Items:          200,
		Customers:      100,
		InitialOrders:  50,
		MaxOrderLines:  4,
		Compute:        1200,
		StockThreshold: 500,
		RecentOrders:   20,
	}
}

// Op is one of the five TPC-C-style operations.
type Op int

// The five operations of SPECjbb2000.
const (
	OpNewOrder Op = iota
	OpPayment
	OpOrderStatus
	OpDelivery
	OpStockLevel
)

// DrawOp samples the SPECjbb2000 operation mix (10:10:1:1:1 —
// NewOrder and Payment dominate).
func DrawOp(w *harness.Worker) Op {
	switch r := w.RNG.Intn(23); {
	case r < 10:
		return OpNewOrder
	case r < 20:
		return OpPayment
	case r < 21:
		return OpOrderStatus
	case r < 22:
		return OpDelivery
	default:
		return OpStockLevel
	}
}

// Order is one customer order; immutable once published.
type Order struct {
	ID       int
	Customer int
	Lines    []OrderLine
	Total    int
}

// OrderLine is one item/quantity pair of an order.
type OrderLine struct {
	Item, Qty int
}

// History is one payment record.
type History struct {
	ID       int
	Customer int
	Amount   int
}

// Counts tallies the operations a run actually performed, for
// consistency checking.
type Counts struct {
	NewOrders, Payments, OrderStatuses, StockLevels int64
	// Deliveries counts deliveries that found an undelivered order;
	// EmptyDeliveries counts the ones that found none.
	Deliveries, EmptyDeliveries int64
	// PaymentTotal sums committed payment amounts.
	PaymentTotal int64
}

// totalOps is the number of operations the tally covers.
func (c Counts) totalOps() int64 {
	return c.NewOrders + c.Payments + c.OrderStatuses + c.StockLevels + c.Deliveries + c.EmptyDeliveries
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.NewOrders += other.NewOrders
	c.Payments += other.Payments
	c.OrderStatuses += other.OrderStatuses
	c.StockLevels += other.StockLevels
	c.Deliveries += other.Deliveries
	c.EmptyDeliveries += other.EmptyDeliveries
	c.PaymentTotal += other.PaymentTotal
}

// Warehouse is one configured instance of the workload's shared state.
type Warehouse interface {
	// Do executes op to successful completion on behalf of w and
	// returns the operation's contribution to the consistency tally.
	Do(w *harness.Worker, op Op) Counts
	// Check validates the shared state against the tallied operations
	// after all workers have quiesced.
	Check(c Counts) error
}

// itemPrice is the static price list (items are read-only, as in
// SPECjbb's item table).
func itemPrice(item int) int { return 10 + item%90 }
