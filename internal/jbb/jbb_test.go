package jbb

import (
	"sync"
	"testing"

	"tcc/internal/harness"
)

// runWarehouse drives ops on a warehouse across workers on the given
// platform and returns the tallied counts.
func runWarehouse(pl harness.Platform, wh Warehouse, workers, opsPerWorker int) Counts {
	var mu sync.Mutex
	var total Counts
	pl.Run(workers, func(w *harness.Worker) {
		var local Counts
		for i := 0; i < opsPerWorker; i++ {
			local.Add(wh.Do(w, DrawOp(w)))
		}
		mu.Lock()
		total.Add(local)
		mu.Unlock()
	})
	return total
}

func testConfigConsistency(t *testing.T, cfg Config) {
	t.Helper()
	p := DefaultParams()
	p.Compute = 100 // keep simulated runs fast in tests
	pl := &harness.SimPlatform{Seed: 3}
	var wh Warehouse
	if cfg == ConfigJava {
		wh = NewJavaWarehouse(p, pl)
	} else {
		wh = NewAtomosWarehouse(cfg, p)
	}
	counts := runWarehouse(pl, wh, 8, 40)
	if counts.NewOrders == 0 || counts.Payments == 0 {
		t.Fatalf("degenerate op mix: %+v", counts)
	}
	if err := wh.Check(counts); err != nil {
		t.Fatal(err)
	}
}

func TestJavaConsistency(t *testing.T)          { testConfigConsistency(t, ConfigJava) }
func TestBaselineConsistency(t *testing.T)      { testConfigConsistency(t, ConfigAtomosBaseline) }
func TestOpenConsistency(t *testing.T)          { testConfigConsistency(t, ConfigAtomosOpen) }
func TestTransactionalConsistency(t *testing.T) { testConfigConsistency(t, ConfigAtomosTransactional) }

// TestConfigsOnRealGoroutines exercises the transactional
// configurations under true host concurrency (and the race detector,
// when enabled).
func TestConfigsOnRealGoroutines(t *testing.T) {
	for _, cfg := range []Config{ConfigAtomosBaseline, ConfigAtomosOpen, ConfigAtomosTransactional} {
		t.Run(cfg.String(), func(t *testing.T) {
			p := DefaultParams()
			p.Compute = 10
			pl := &harness.RealPlatform{Seed: 5}
			wh := NewAtomosWarehouse(cfg, p)
			counts := runWarehouse(pl, wh, 4, 60)
			if err := wh.Check(counts); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOperationMix sanity-checks the 10:10:1:1:1 draw.
func TestOperationMix(t *testing.T) {
	pl := &harness.SimPlatform{Seed: 1}
	var mu sync.Mutex
	tally := map[Op]int{}
	pl.Run(1, func(w *harness.Worker) {
		for i := 0; i < 23_000; i++ {
			op := DrawOp(w)
			mu.Lock()
			tally[op]++
			mu.Unlock()
		}
	})
	if tally[OpNewOrder] < 8_000 || tally[OpNewOrder] > 12_000 {
		t.Fatalf("NewOrder share off: %d", tally[OpNewOrder])
	}
	if tally[OpDelivery] < 600 || tally[OpDelivery] > 1_400 {
		t.Fatalf("Delivery share off: %d", tally[OpDelivery])
	}
}

// TestFigure4Smoke runs a miniature Figure 4 sweep and checks the
// paper's qualitative result: the Baseline fails to scale while the
// Transactional configuration scales substantially, with Open in
// between.
func TestFigure4Smoke(t *testing.T) {
	p := DefaultParams()
	fig := RunFigure4([]int{1, 8}, 512, p, 11)
	get := func(name string, cpus int) float64 {
		for _, s := range fig.Series {
			if s.Name == name {
				return s.Speedup[cpus]
			}
		}
		t.Fatalf("series %q missing", name)
		return 0
	}
	base8 := get("Atomos Baseline", 8)
	open8 := get("Atomos Open", 8)
	trans8 := get("Atomos Transactional", 8)
	if trans8 < 2*base8 {
		t.Errorf("Transactional (%.2f) should far outscale Baseline (%.2f) at 8 CPUs", trans8, base8)
	}
	if open8 <= base8 {
		t.Errorf("Open (%.2f) should outscale Baseline (%.2f)", open8, base8)
	}
	if trans8 < 4 {
		t.Errorf("Transactional speedup at 8 CPUs = %.2f, want >= 4", trans8)
	}
}
