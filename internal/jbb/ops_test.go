package jbb

import (
	"strings"
	"sync"
	"testing"

	"tcc/internal/harness"
	"tcc/internal/stm"
)

// runOps drives exactly the given operations through one worker on the
// simulator and returns the tally.
func runOps(pl *harness.SimPlatform, wh Warehouse, ops []Op) Counts {
	var total Counts
	pl.Run(1, func(w *harness.Worker) {
		for _, op := range ops {
			total.Add(wh.Do(w, op))
		}
	})
	return total
}

func eachConfig(t *testing.T, fn func(t *testing.T, cfg Config, wh Warehouse, pl *harness.SimPlatform, p Params)) {
	t.Helper()
	for _, cfg := range []Config{ConfigJava, ConfigAtomosBaseline, ConfigAtomosOpen, ConfigAtomosTransactional} {
		t.Run(cfg.String(), func(t *testing.T) {
			p := DefaultParams()
			p.Compute = 50
			pl := &harness.SimPlatform{Seed: 4}
			var wh Warehouse
			if cfg == ConfigJava {
				wh = NewJavaWarehouse(p, pl)
			} else {
				wh = NewAtomosWarehouse(cfg, p)
			}
			fn(t, cfg, wh, pl, p)
		})
	}
}

func TestNewOrderGrowsTables(t *testing.T) {
	eachConfig(t, func(t *testing.T, cfg Config, wh Warehouse, pl *harness.SimPlatform, p Params) {
		counts := runOps(pl, wh, []Op{OpNewOrder, OpNewOrder, OpNewOrder})
		if counts.NewOrders != 3 {
			t.Fatalf("counts = %+v", counts)
		}
		if err := wh.Check(counts); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDeliveryConsumesOldestOrder(t *testing.T) {
	eachConfig(t, func(t *testing.T, cfg Config, wh Warehouse, pl *harness.SimPlatform, p Params) {
		// InitialOrders pre-populate the newOrder table, so the first
		// deliveries always find work.
		counts := runOps(pl, wh, []Op{OpDelivery, OpDelivery})
		if counts.Deliveries != 2 || counts.EmptyDeliveries != 0 {
			t.Fatalf("counts = %+v", counts)
		}
		if err := wh.Check(counts); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDeliveryOnDrainedTableReportsEmpty(t *testing.T) {
	eachConfig(t, func(t *testing.T, cfg Config, wh Warehouse, pl *harness.SimPlatform, p Params) {
		ops := make([]Op, 0, p.InitialOrders+2)
		for i := 0; i < p.InitialOrders+2; i++ {
			ops = append(ops, OpDelivery)
		}
		counts := runOps(pl, wh, ops)
		if counts.Deliveries != int64(p.InitialOrders) {
			t.Fatalf("delivered %d, want %d", counts.Deliveries, p.InitialOrders)
		}
		if counts.EmptyDeliveries != 2 {
			t.Fatalf("empty deliveries = %d, want 2", counts.EmptyDeliveries)
		}
		if err := wh.Check(counts); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPaymentAccumulatesYtd(t *testing.T) {
	eachConfig(t, func(t *testing.T, cfg Config, wh Warehouse, pl *harness.SimPlatform, p Params) {
		counts := runOps(pl, wh, []Op{OpPayment, OpPayment, OpPayment, OpPayment})
		if counts.Payments != 4 || counts.PaymentTotal <= 0 {
			t.Fatalf("counts = %+v", counts)
		}
		if err := wh.Check(counts); err != nil {
			t.Fatal(err)
		}
	})
}

func TestReadOnlyOpsLeaveStateUntouched(t *testing.T) {
	eachConfig(t, func(t *testing.T, cfg Config, wh Warehouse, pl *harness.SimPlatform, p Params) {
		counts := runOps(pl, wh, []Op{OpOrderStatus, OpStockLevel, OpOrderStatus})
		if counts.OrderStatuses != 2 || counts.StockLevels != 1 {
			t.Fatalf("counts = %+v", counts)
		}
		if err := wh.Check(counts); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTransactionalLostWorkIsAttributed checks that the Transactional
// configuration's violation profile names the warehouse structures —
// the reproduction of the paper's TAPE-based conflict analysis.
func TestTransactionalLostWorkIsAttributed(t *testing.T) {
	p := DefaultParams()
	pl := &harness.SimPlatform{Seed: 11}
	wh := NewAtomosWarehouse(ConfigAtomosTransactional, p)
	var mu sync.Mutex
	var counts Counts
	var stats stm.Stats
	res := pl.Run(16, func(w *harness.Worker) {
		var local Counts
		for i := 0; i < 64; i++ {
			local.Add(wh.Do(w, DrawOp(w)))
		}
		mu.Lock()
		counts.Add(local)
		mu.Unlock()
	})
	stats = res.Stats
	if err := wh.Check(counts); err != nil {
		t.Fatal(err)
	}
	if stats.Violations == 0 {
		t.Skip("no semantic conflicts occurred at this scale/seed")
	}
	profile := harness.FormatViolationProfile(stats, 5)
	if !strings.Contains(profile, "District") && !strings.Contains(profile, "Warehouse") {
		t.Fatalf("lost-work profile does not attribute structures: %q", profile)
	}
}

// TestJavaAndAtomosAgreeOnFinalCounts runs identical deterministic op
// streams through Java and Transactional warehouses; the table sizes
// must agree (both executed the same committed work).
func TestJavaAndAtomosAgreeOnFinalCounts(t *testing.T) {
	p := DefaultParams()
	p.Compute = 50
	ops := []Op{
		OpNewOrder, OpPayment, OpNewOrder, OpDelivery, OpOrderStatus,
		OpStockLevel, OpPayment, OpNewOrder, OpDelivery, OpPayment,
	}
	plJ := &harness.SimPlatform{Seed: 6}
	whJ := NewJavaWarehouse(p, plJ)
	cJ := runOps(plJ, whJ, ops)

	plA := &harness.SimPlatform{Seed: 6}
	whA := NewAtomosWarehouse(ConfigAtomosTransactional, p)
	cA := runOps(plA, whA, ops)

	if cJ.NewOrders != cA.NewOrders || cJ.Payments != cA.Payments || cJ.Deliveries != cA.Deliveries {
		t.Fatalf("count mismatch: java %+v vs atomos %+v", cJ, cA)
	}
	if err := whJ.Check(cJ); err != nil {
		t.Fatal(err)
	}
	if err := whA.Check(cA); err != nil {
		t.Fatal(err)
	}
}

// TestMultiDistrictConsistency exercises the SPECjbb-standard layout
// (10 districts per warehouse) across all configurations.
func TestMultiDistrictConsistency(t *testing.T) {
	for _, cfg := range []Config{ConfigJava, ConfigAtomosBaseline, ConfigAtomosOpen, ConfigAtomosTransactional} {
		t.Run(cfg.String(), func(t *testing.T) {
			p := DefaultParams()
			p.Compute = 100
			p.Districts = 10
			pl := &harness.SimPlatform{Seed: 8}
			var wh Warehouse
			if cfg == ConfigJava {
				wh = NewJavaWarehouse(p, pl)
			} else {
				wh = NewAtomosWarehouse(cfg, p)
			}
			var mu sync.Mutex
			var counts Counts
			pl.Run(8, func(w *harness.Worker) {
				var local Counts
				for i := 0; i < 40; i++ {
					local.Add(wh.Do(w, DrawOp(w)))
				}
				mu.Lock()
				counts.Add(local)
				mu.Unlock()
			})
			if err := wh.Check(counts); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDistrictsSpreadContention: with 10 districts the Baseline's
// district-level conflicts spread out, but its warehouse-level counter
// still serializes everything — districts alone don't rescue it, which
// is why the paper needed open nesting.
func TestDistrictsSpreadContention(t *testing.T) {
	run := func(cfg Config, districts int) float64 {
		p := DefaultParams()
		p.Districts = districts
		pl := &harness.SimPlatform{Seed: 12}
		var wh Warehouse
		if cfg == ConfigJava {
			wh = NewJavaWarehouse(p, pl)
		} else {
			wh = NewAtomosWarehouse(cfg, p)
		}
		res := pl.Run(16, func(w *harness.Worker) {
			for i := 0; i < 64; i++ {
				wh.Do(w, DrawOp(w))
			}
		})
		return res.Elapsed
	}
	base1 := run(ConfigAtomosBaseline, 1)
	base10 := run(ConfigAtomosBaseline, 10)
	if base10 > base1*1.2 {
		t.Errorf("baseline slowed down with more districts: %.0f vs %.0f", base10, base1)
	}
	// The warehouse-level counter keeps the Baseline near-serial even
	// with 10 districts: it must remain far slower than Transactional.
	trans10 := run(ConfigAtomosTransactional, 10)
	if base10 < 2*trans10 {
		t.Errorf("baseline (%.0f) should remain much slower than transactional (%.0f) despite districts", base10, trans10)
	}
}
