package jbb

import (
	"fmt"

	"tcc/internal/collections"
	"tcc/internal/harness"
)

// javaDistrict is one district's share of the lock-based warehouse:
// its order-ID counter and its order tables, each behind its own lock
// (the synchronized critical regions of the original Java SPECjbb2000).
type javaDistrict struct {
	lock      harness.Lock
	nextOrder int

	orderLock  harness.Lock
	orderTable *collections.TreeMap[int, *Order]

	newOrderLock  harness.Lock
	newOrderTable *collections.TreeMap[int, *Order]
}

// javaWarehouse is the lock-based configuration: plain collections,
// each protected by its own lock. Operations are sequences of short
// critical sections; only individual structure accesses are atomic,
// exactly as in the original benchmark.
type javaWarehouse struct {
	p Params

	districts []*javaDistrict

	nextHistoryLock harness.Lock
	nextHistory     int

	txCountLock harness.Lock
	txCount     int64

	stockLock harness.Lock
	stock     []int

	customerLock harness.Lock
	balance      []int
	lastOrder    []*Order

	ytdLock harness.Lock
	ytd     int64

	historyLock  harness.Lock
	historyTable *collections.HashMap[int, *History]
}

// NewJavaWarehouse builds the lock-based configuration on pl.
func NewJavaWarehouse(p Params, pl harness.Platform) Warehouse {
	wh := &javaWarehouse{
		p:               p,
		nextHistoryLock: pl.NewLock(),
		txCountLock:     pl.NewLock(),
		stockLock:       pl.NewLock(),
		customerLock:    pl.NewLock(),
		ytdLock:         pl.NewLock(),
		historyLock:     pl.NewLock(),
		stock:           make([]int, p.Items),
		balance:         make([]int, p.Customers),
		lastOrder:       make([]*Order, p.Customers),
		historyTable:    collections.NewHashMap[int, *History](),
	}
	for i := range wh.stock {
		wh.stock[i] = 10_000
	}
	for d := 0; d < p.districtCount(); d++ {
		dist := &javaDistrict{
			lock:          pl.NewLock(),
			orderLock:     pl.NewLock(),
			newOrderLock:  pl.NewLock(),
			orderTable:    collections.NewTreeMap[int, *Order](),
			newOrderTable: collections.NewTreeMap[int, *Order](),
		}
		for oid := 0; oid < p.InitialOrders; oid++ {
			o := &Order{ID: oid, Customer: oid % p.Customers, Total: 10}
			dist.orderTable.Put(oid, o)
			dist.newOrderTable.Put(oid, o)
		}
		dist.nextOrder = p.InitialOrders
		wh.districts = append(wh.districts, dist)
	}
	return wh
}

// Abstract cycle costs of the Java critical sections: opCost is a small
// field access, tableCost a tree or hash operation against a large
// shared table, scanCost is charged per order visited by a range scan.
const (
	opCost    = 40
	tableCost = 150
	scanCost  = 10
)

func (wh *javaWarehouse) Do(w *harness.Worker, op Op) Counts {
	// Every operation bumps the warehouse's transaction counter (the
	// throughput statistic SPECjbb's TransactionManager keeps), one of
	// the "several global counters" of paper §6.3.
	wh.txCountLock.Lock(w)
	w.Compute(opCost / 8)
	wh.txCount++
	wh.txCountLock.Unlock(w)
	d := wh.districts[w.RNG.Intn(len(wh.districts))]
	switch op {
	case OpNewOrder:
		return wh.newOrder(w, d)
	case OpPayment:
		return wh.payment(w)
	case OpOrderStatus:
		return wh.orderStatus(w)
	case OpDelivery:
		return wh.delivery(w, d)
	default:
		return wh.stockLevel(w, d)
	}
}

func (wh *javaWarehouse) newOrder(w *harness.Worker, d *javaDistrict) Counts {
	nLines := 1 + w.RNG.Intn(wh.p.MaxOrderLines)
	customer := w.RNG.Intn(wh.p.Customers)
	lines := make([]OrderLine, nLines)
	for i := range lines {
		lines[i] = OrderLine{Item: w.RNG.Intn(wh.p.Items), Qty: 1 + w.RNG.Intn(5)}
	}
	w.Compute(wh.p.Compute / 2)

	d.lock.Lock(w)
	w.Compute(opCost / 4)
	oid := d.nextOrder
	d.nextOrder++
	d.lock.Unlock(w)

	total := 0
	wh.stockLock.Lock(w)
	w.Compute(opCost)
	for _, l := range lines {
		wh.stock[l.Item] -= l.Qty
		if wh.stock[l.Item] < 100 {
			wh.stock[l.Item] += 5_000 // restock
		}
		total += l.Qty * itemPrice(l.Item)
	}
	wh.stockLock.Unlock(w)

	o := &Order{ID: oid, Customer: customer, Lines: lines, Total: total}
	d.orderLock.Lock(w)
	w.Compute(tableCost)
	d.orderTable.Put(oid, o)
	d.orderLock.Unlock(w)

	d.newOrderLock.Lock(w)
	w.Compute(tableCost)
	d.newOrderTable.Put(oid, o)
	d.newOrderLock.Unlock(w)

	wh.customerLock.Lock(w)
	w.Compute(opCost / 4)
	wh.lastOrder[customer] = o
	wh.customerLock.Unlock(w)

	w.Compute(wh.p.Compute / 2)
	return Counts{NewOrders: 1}
}

func (wh *javaWarehouse) payment(w *harness.Worker) Counts {
	customer := w.RNG.Intn(wh.p.Customers)
	amount := 1 + w.RNG.Intn(100)
	w.Compute(wh.p.Compute / 2)

	wh.customerLock.Lock(w)
	w.Compute(opCost / 4)
	wh.balance[customer] -= amount
	wh.customerLock.Unlock(w)

	wh.ytdLock.Lock(w)
	w.Compute(opCost / 4)
	wh.ytd += int64(amount)
	wh.ytdLock.Unlock(w)

	wh.nextHistoryLock.Lock(w)
	w.Compute(opCost / 4)
	hid := wh.nextHistory
	wh.nextHistory++
	wh.nextHistoryLock.Unlock(w)

	wh.historyLock.Lock(w)
	w.Compute(tableCost)
	wh.historyTable.Put(hid, &History{ID: hid, Customer: customer, Amount: amount})
	wh.historyLock.Unlock(w)

	w.Compute(wh.p.Compute / 2)
	return Counts{Payments: 1, PaymentTotal: int64(amount)}
}

func (wh *javaWarehouse) orderStatus(w *harness.Worker) Counts {
	// TPC-C's Order-Status queries the status of the *customer's* most
	// recent order.
	customer := w.RNG.Intn(wh.p.Customers)
	w.Compute(wh.p.Compute / 2)
	wh.customerLock.Lock(w)
	w.Compute(opCost / 4)
	o := wh.lastOrder[customer]
	wh.customerLock.Unlock(w)
	if o != nil {
		sum := 0
		for _, l := range o.Lines {
			sum += l.Qty
		}
		_ = sum
	}
	w.Compute(wh.p.Compute / 2)
	return Counts{OrderStatuses: 1}
}

func (wh *javaWarehouse) delivery(w *harness.Worker, d *javaDistrict) Counts {
	w.Compute(wh.p.Compute / 2)
	var o *Order
	d.newOrderLock.Lock(w)
	w.Compute(tableCost)
	if first, ok := d.newOrderTable.FirstKey(); ok {
		o, _ = d.newOrderTable.Get(first)
		d.newOrderTable.Remove(first)
	}
	d.newOrderLock.Unlock(w)
	if o == nil {
		w.Compute(wh.p.Compute / 2)
		return Counts{EmptyDeliveries: 1}
	}
	wh.customerLock.Lock(w)
	w.Compute(opCost / 4)
	wh.balance[o.Customer] += o.Total
	wh.customerLock.Unlock(w)
	w.Compute(wh.p.Compute / 2)
	return Counts{Deliveries: 1}
}

func (wh *javaWarehouse) stockLevel(w *harness.Worker, d *javaDistrict) Counts {
	w.Compute(wh.p.Compute / 2)
	items := map[int]struct{}{}
	// TPC-C bounds the scan by the district's next order id.
	d.lock.Lock(w)
	w.Compute(opCost / 4)
	hi := d.nextOrder
	d.lock.Unlock(w)
	lo := hi - wh.p.RecentOrders
	if lo < 0 {
		lo = 0
	}
	d.orderLock.Lock(w)
	w.Compute(tableCost)
	visited := uint64(0)
	d.orderTable.AscendRange(&lo, &hi, func(_ int, o *Order) bool {
		visited++
		for _, l := range o.Lines {
			items[l.Item] = struct{}{}
		}
		return true
	})
	w.Compute(scanCost * visited)
	d.orderLock.Unlock(w)
	low := 0
	wh.stockLock.Lock(w)
	w.Compute(opCost)
	for it := range items {
		if wh.stock[it] < wh.p.StockThreshold {
			low++
		}
	}
	wh.stockLock.Unlock(w)
	w.Compute(wh.p.Compute / 2)
	return Counts{StockLevels: 1}
}

func (wh *javaWarehouse) Check(c Counts) error {
	nd := int64(len(wh.districts))
	orderN, newOrderN, nextSum := int64(0), int64(0), int64(0)
	for _, d := range wh.districts {
		orderN += int64(d.orderTable.Size())
		newOrderN += int64(d.newOrderTable.Size())
		nextSum += int64(d.nextOrder)
	}
	if want := nd*int64(wh.p.InitialOrders) + c.NewOrders; orderN != want {
		return fmt.Errorf("jbb/java: orderTable size %d, want %d", orderN, want)
	}
	if want := nd*int64(wh.p.InitialOrders) + c.NewOrders - c.Deliveries; newOrderN != want {
		return fmt.Errorf("jbb/java: newOrderTable size %d, want %d", newOrderN, want)
	}
	if want := nd*int64(wh.p.InitialOrders) + c.NewOrders; nextSum != want {
		return fmt.Errorf("jbb/java: nextOrder sum %d, want %d", nextSum, want)
	}
	if got, want := int64(wh.historyTable.Size()), c.Payments; got != want {
		return fmt.Errorf("jbb/java: historyTable size %d, want %d", got, want)
	}
	if wh.ytd != c.PaymentTotal {
		return fmt.Errorf("jbb/java: ytd %d, want %d", wh.ytd, c.PaymentTotal)
	}
	if got, want := wh.txCount, c.totalOps(); got != want {
		return fmt.Errorf("jbb/java: txCount %d, want %d", got, want)
	}
	return nil
}
