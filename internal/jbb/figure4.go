package jbb

import (
	"tcc/internal/harness"
)

// Configs builds the four Figure 4 configurations as harness configs.
func Configs(p Params) []harness.Config {
	mk := func(cfg Config) harness.Config {
		return harness.Config{
			Name: cfg.String(),
			Setup: func(pl harness.Platform) func(w *harness.Worker) {
				var wh Warehouse
				if cfg == ConfigJava {
					wh = NewJavaWarehouse(p, pl)
				} else {
					wh = NewAtomosWarehouse(cfg, p)
				}
				return func(w *harness.Worker) {
					wh.Do(w, DrawOp(w))
				}
			},
		}
	}
	return []harness.Config{
		mk(ConfigJava),
		mk(ConfigAtomosBaseline),
		mk(ConfigAtomosOpen),
		mk(ConfigAtomosTransactional),
	}
}

// RunFigure4 sweeps the four configurations over cpus on the
// deterministic simulator, reproducing the paper's Figure 4
// (high-contention single-warehouse SPECjbb2000).
func RunFigure4(cpus []int, totalOps int, p Params, seed int64) harness.Figure {
	return RunFigure4Opts(cpus, totalOps, p, seed, harness.FigureOptions{})
}

// RunFigure4Opts is RunFigure4 with instrumentation options (conflict
// profiling for the §6.3-style lost-work analysis).
func RunFigure4Opts(cpus []int, totalOps int, p Params, seed int64, opts harness.FigureOptions) harness.Figure {
	return harness.RunFigureOpts("SPECjbb2000, single warehouse (Figure 4)", Configs(p), cpus, totalOps, seed, opts)
}
