// Package sim provides a deterministic discrete-event simulator of a
// chip multiprocessor with a configurable number of virtual CPUs.
//
// The paper evaluates its transactional collection classes on an
// execution-driven simulator of a 1-32 CPU PowerPC CMP where every
// instruction except loads and stores has a CPI of 1.0. This package is
// the substitute substrate: workload code runs as one goroutine per
// virtual CPU and charges abstract cycles for compute blocks, memory
// transactions and data-structure operations. The scheduler always runs
// the CPU with the smallest virtual time (ties broken by CPU id), so a
// run is fully deterministic for a fixed seed, which makes conflict
// behaviour — the thing the paper's figures actually measure —
// reproducible down to the cycle.
//
// Exactly one CPU goroutine executes at any instant: the scheduler
// grants a timeslice, the CPU runs until it charges time via Tick or
// Wait (a yield point) or finishes, then the scheduler picks the next
// CPU. Code between yield points therefore executes atomically with
// respect to other virtual CPUs, mirroring how the paper's simulator
// interleaves processors at memory-operation granularity.
package sim

import (
	"fmt"
	"sort"
)

// CPU is one virtual processor. It implements the stm.Clock interface so
// transactional code can charge cycles without knowing whether it runs
// on the simulator or on real hardware.
type CPU struct {
	id      int
	now     uint64
	sim     *Simulator
	grant   chan struct{}
	blocked bool
	done    bool
}

// ID returns the CPU's index, in [0, NumCPUs).
func (c *CPU) ID() int { return c.id }

// Now returns the CPU's local virtual time in cycles.
func (c *CPU) Now() uint64 { return c.now }

// Tick charges busy cycles and yields to the scheduler. It must never be
// called while holding a real lock shared with other virtual CPUs: the
// calling goroutine is suspended until all CPUs with smaller virtual
// time have caught up.
func (c *CPU) Tick(cycles uint64) {
	c.now += cycles
	c.yield()
}

// Wait charges stall cycles (e.g. contention backoff). On the simulator
// stalling and computing cost the same thing — elapsed virtual time — so
// Wait is Tick; the distinction matters for the real-hardware clock.
func (c *CPU) Wait(cycles uint64) { c.Tick(cycles) }

// yield hands control back to the scheduler and blocks until the
// scheduler grants this CPU its next timeslice.
func (c *CPU) yield() {
	c.sim.events <- event{cpu: c}
	<-c.grant
}

// block marks the CPU unrunnable (it holds no timeslice afterwards) and
// suspends the goroutine until another CPU calls unblock.
func (c *CPU) block() {
	c.blocked = true
	c.sim.events <- event{cpu: c}
	<-c.grant
}

// unblock makes the target CPU runnable again, advancing its clock to at
// least wake so causality is respected (the waker's present is the
// sleeper's earliest possible future). Only the currently scheduled CPU
// may call unblock, so no locking is required.
func (c *CPU) unblock(wake uint64) {
	if !c.blocked {
		panic("sim: unblock of runnable CPU")
	}
	c.blocked = false
	if c.now < wake {
		c.now = wake
	}
}

type event struct {
	cpu      *CPU
	finished bool
	err      any // non-nil if the CPU body panicked
}

// Simulator owns a set of virtual CPUs and schedules them by virtual
// time.
type Simulator struct {
	cpus   []*CPU
	events chan event
}

// New creates a simulator with n virtual CPUs.
func New(n int) *Simulator {
	if n <= 0 {
		panic(fmt.Sprintf("sim: invalid CPU count %d", n))
	}
	s := &Simulator{events: make(chan event)}
	for i := 0; i < n; i++ {
		s.cpus = append(s.cpus, &CPU{id: i, sim: s, grant: make(chan struct{})})
	}
	return s
}

// NumCPUs returns the number of virtual CPUs.
func (s *Simulator) NumCPUs() int { return len(s.cpus) }

// Run executes body once per virtual CPU and returns when every CPU has
// finished. It panics if all live CPUs become blocked (a virtual-time
// deadlock) or if any CPU body panics, re-raising the body's panic value
// so tests see the original failure.
func (s *Simulator) Run(body func(cpu *CPU)) {
	live := len(s.cpus)
	for _, c := range s.cpus {
		c.done = false
		c.blocked = false
		go func(c *CPU) {
			<-c.grant
			defer func() {
				if r := recover(); r != nil {
					s.events <- event{cpu: c, finished: true, err: r}
					return
				}
				s.events <- event{cpu: c, finished: true}
			}()
			body(c)
		}(c)
	}
	for live > 0 {
		next := s.pick()
		if next == nil {
			panic(fmt.Sprintf("sim: virtual-time deadlock, %d CPUs blocked", live))
		}
		next.grant <- struct{}{}
		ev := <-s.events
		if ev.err != nil {
			panic(ev.err)
		}
		if ev.finished {
			ev.cpu.done = true
			live--
		}
	}
}

// pick returns the runnable CPU with the smallest (now, id), or nil if
// every live CPU is blocked.
func (s *Simulator) pick() *CPU {
	var best *CPU
	for _, c := range s.cpus {
		if c.done || c.blocked {
			continue
		}
		if best == nil || c.now < best.now || (c.now == best.now && c.id < best.id) {
			best = c
		}
	}
	return best
}

// Makespan returns the maximum virtual completion time across CPUs — the
// simulated wall-clock duration of the last Run.
func (s *Simulator) Makespan() uint64 {
	var m uint64
	for _, c := range s.cpus {
		if c.now > m {
			m = c.now
		}
	}
	return m
}

// Times returns each CPU's final virtual time, sorted ascending. Useful
// for load-balance diagnostics in tests.
func (s *Simulator) Times() []uint64 {
	out := make([]uint64, len(s.cpus))
	for i, c := range s.cpus {
		out[i] = c.now
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
