package sim

// Lock is a mutex that costs virtual time: a CPU that finds the lock
// held blocks until the holder releases it, and its clock is advanced to
// the release time. This models the queueing behaviour of Java
// `synchronized` regions on the paper's CMP, which a real sync.Mutex
// cannot (under the simulator only one goroutine runs at a time, so a
// real mutex is never contended).
//
// Lock state is only ever touched by the currently scheduled CPU, so no
// host-level synchronization is needed.
type Lock struct {
	holder  *CPU
	waiters []*CPU
}

// AcquireCost and ReleaseCost are the cycles charged for an uncontended
// lock operation, approximating the paper's MESI-coherence lock cost.
const (
	AcquireCost = 5
	ReleaseCost = 5
)

// Acquire takes the lock on behalf of c, blocking (in virtual time)
// while another CPU holds it.
func (l *Lock) Acquire(c *CPU) {
	c.Tick(AcquireCost)
	if l.holder == nil {
		l.holder = c
		return
	}
	if l.holder == c {
		panic("sim: recursive Lock.Acquire")
	}
	l.waiters = append(l.waiters, c)
	c.block()
	// When we run again, Release has made us the holder and advanced
	// our clock to the release time.
	if l.holder != c {
		panic("sim: woken waiter is not holder")
	}
}

// Release hands the lock to the longest-waiting CPU, if any.
func (l *Lock) Release(c *CPU) {
	if l.holder != c {
		panic("sim: Lock.Release by non-holder")
	}
	c.Tick(ReleaseCost)
	if len(l.waiters) == 0 {
		l.holder = nil
		return
	}
	next := l.waiters[0]
	l.waiters = l.waiters[1:]
	l.holder = next
	next.unblock(c.now)
}
