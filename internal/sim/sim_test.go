package sim

import (
	"testing"
)

func TestSingleCPUAdvancesTime(t *testing.T) {
	s := New(1)
	s.Run(func(c *CPU) {
		for i := 0; i < 10; i++ {
			c.Tick(100)
		}
	})
	if got := s.Makespan(); got != 1000 {
		t.Fatalf("makespan = %d, want 1000", got)
	}
}

func TestParallelCPUsOverlap(t *testing.T) {
	// 4 CPUs each doing 1000 cycles of independent work should finish in
	// 1000 virtual cycles, not 4000.
	s := New(4)
	s.Run(func(c *CPU) {
		for i := 0; i < 10; i++ {
			c.Tick(100)
		}
	})
	if got := s.Makespan(); got != 1000 {
		t.Fatalf("makespan = %d, want 1000", got)
	}
}

func TestSchedulerIsDeterministic(t *testing.T) {
	run := func() []int {
		var order []int
		s := New(3)
		s.Run(func(c *CPU) {
			for i := 0; i < 5; i++ {
				c.Tick(uint64(10 * (c.ID() + 1)))
				order = append(order, c.ID())
			}
		})
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at step %d: %v vs %v", i, a, b)
		}
	}
}

func TestMinTimeFirstScheduling(t *testing.T) {
	// CPU 0 ticks in units of 1, CPU 1 in units of 100. After CPU 1's
	// first tick, CPU 0 must run ~100 steps before CPU 1 runs again.
	var trace []int
	s := New(2)
	s.Run(func(c *CPU) {
		n := 4
		step := uint64(100)
		if c.ID() == 0 {
			n = 400
			step = 1
		}
		for i := 0; i < n; i++ {
			c.Tick(step)
			trace = append(trace, c.ID())
		}
	})
	// Count CPU-0 steps before the second appearance of CPU 1.
	seen1 := 0
	zerosBefore := 0
	for _, id := range trace {
		if id == 1 {
			seen1++
			if seen1 == 2 {
				break
			}
		} else if seen1 == 1 {
			zerosBefore++
		}
	}
	if zerosBefore < 99 {
		t.Fatalf("CPU 0 ran only %d steps between CPU 1's slices, want >= 99", zerosBefore)
	}
}

func TestLockSerializesCriticalSections(t *testing.T) {
	// 4 CPUs each hold the lock for 100 cycles, 10 times. The critical
	// sections must serialize: makespan >= 4*10*100 cycles.
	s := New(4)
	var l Lock
	inside := 0
	s.Run(func(c *CPU) {
		for i := 0; i < 10; i++ {
			l.Acquire(c)
			inside++
			if inside != 1 {
				t.Errorf("lock not exclusive: %d CPUs inside", inside)
			}
			c.Tick(100)
			inside--
			l.Release(c)
		}
	})
	if got := s.Makespan(); got < 4000 {
		t.Fatalf("makespan = %d, want >= 4000 (serialized critical sections)", got)
	}
}

func TestLockUncontendedIsCheap(t *testing.T) {
	s := New(1)
	var l Lock
	s.Run(func(c *CPU) {
		l.Acquire(c)
		l.Release(c)
	})
	if got := s.Makespan(); got != AcquireCost+ReleaseCost {
		t.Fatalf("makespan = %d, want %d", got, AcquireCost+ReleaseCost)
	}
}

func TestLockFIFOHandoff(t *testing.T) {
	// CPU 0 grabs the lock first and holds it; CPUs 1..3 queue in ID
	// order (they attempt at increasing virtual times) and must acquire
	// it in that order.
	var got []int
	s := New(4)
	var l Lock
	s.Run(func(c *CPU) {
		c.Tick(uint64(c.ID())) // stagger arrival
		l.Acquire(c)
		got = append(got, c.ID())
		c.Tick(50)
		l.Release(c)
	})
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("acquisition order %v, want %v", got, want)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	s := New(2)
	var a, b Lock
	s.Run(func(c *CPU) {
		if c.ID() == 0 {
			a.Acquire(c)
			c.Tick(10)
			b.Acquire(c)
		} else {
			b.Acquire(c)
			c.Tick(10)
			a.Acquire(c)
		}
	})
}

func TestBodyPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	s := New(2)
	s.Run(func(c *CPU) {
		c.Tick(1)
		if c.ID() == 1 {
			panic("boom")
		}
		c.Tick(1)
	})
}

func TestWaitAdvancesTime(t *testing.T) {
	s := New(1)
	s.Run(func(c *CPU) { c.Wait(123) })
	if got := s.Makespan(); got != 123 {
		t.Fatalf("makespan = %d, want 123", got)
	}
}

func TestTimesSorted(t *testing.T) {
	s := New(3)
	s.Run(func(c *CPU) { c.Tick(uint64(100 * (3 - c.ID()))) })
	ts := s.Times()
	if ts[0] != 100 || ts[1] != 200 || ts[2] != 300 {
		t.Fatalf("times = %v", ts)
	}
}

func TestUnblockAdvancesSleeperClock(t *testing.T) {
	// A CPU that waits on a lock must resume with its clock advanced to
	// the releaser's time (causality), not its own stale time.
	s := New(2)
	var l Lock
	var resumeTime uint64
	s.Run(func(c *CPU) {
		if c.ID() == 0 {
			l.Acquire(c)
			c.Tick(10_000) // hold for a long time
			l.Release(c)
			return
		}
		c.Tick(1) // arrive second
		l.Acquire(c)
		resumeTime = c.Now()
		l.Release(c)
	})
	if resumeTime < 10_000 {
		t.Fatalf("waiter resumed at %d, before the holder released at >=10000", resumeTime)
	}
}

func TestManyCPUs(t *testing.T) {
	// The scheduler must handle wide machines (the paper sweeps to 32).
	s := New(64)
	total := 0
	s.Run(func(c *CPU) {
		for i := 0; i < 10; i++ {
			c.Tick(10)
		}
		total++ // safe: only one CPU runs at a time
	})
	if total != 64 {
		t.Fatalf("ran %d bodies", total)
	}
	if s.Makespan() != 100 {
		t.Fatalf("makespan = %d", s.Makespan())
	}
}
