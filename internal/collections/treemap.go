package collections

import "cmp"

// TreeMap is a java.util.TreeMap-style red-black binary search tree
// (CLRS formulation with parent pointers and a black sentinel). The
// rebalancing rotations and recolorings on insert and remove are the
// implementation details that make a plain tree scale poorly inside
// transactions (paper §6.2: "Atomos with a plain TreeMap fails to scale
// because of non-semantic conflicts due to internal operations such as
// red-black tree balancing").
type TreeMap[K comparable, V any] struct {
	cmp  func(a, b K) int
	nilN *tmNode[K, V] // sentinel: black, self-linked
	root *tmNode[K, V]
	size int
}

type tmNode[K comparable, V any] struct {
	key                 K
	val                 V
	left, right, parent *tmNode[K, V]
	red                 bool
}

// NewTreeMap creates an empty TreeMap ordered by cmp.Compare.
func NewTreeMap[K cmp.Ordered, V any]() *TreeMap[K, V] {
	return NewTreeMapFunc[K, V](cmp.Compare[K])
}

// NewTreeMapFunc creates an empty TreeMap with an explicit comparator,
// like java.util.TreeMap's Comparator constructor.
func NewTreeMapFunc[K comparable, V any](compare func(a, b K) int) *TreeMap[K, V] {
	t := &TreeMap[K, V]{cmp: compare}
	t.nilN = &tmNode[K, V]{}
	t.nilN.left, t.nilN.right, t.nilN.parent = t.nilN, t.nilN, t.nilN
	t.root = t.nilN
	return t
}

// Compare applies the map's comparator.
func (t *TreeMap[K, V]) Compare(a, b K) int { return t.cmp(a, b) }

func (t *TreeMap[K, V]) find(k K) *tmNode[K, V] {
	n := t.root
	for n != t.nilN {
		c := t.cmp(k, n.key)
		switch {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n
		}
	}
	return t.nilN
}

// Get returns the value mapped to k.
func (t *TreeMap[K, V]) Get(k K) (V, bool) {
	n := t.find(k)
	if n == t.nilN {
		var zero V
		return zero, false
	}
	return n.val, true
}

// ContainsKey reports whether k is mapped.
func (t *TreeMap[K, V]) ContainsKey(k K) bool { return t.find(k) != t.nilN }

// Size returns the number of mappings.
func (t *TreeMap[K, V]) Size() int { return t.size }

func (t *TreeMap[K, V]) leftRotate(x *tmNode[K, V]) {
	y := x.right
	x.right = y.left
	if y.left != t.nilN {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nilN:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *TreeMap[K, V]) rightRotate(x *tmNode[K, V]) {
	y := x.left
	x.left = y.right
	if y.right != t.nilN {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nilN:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

// Put maps k to v, returning the previous value if k was present.
func (t *TreeMap[K, V]) Put(k K, v V) (V, bool) {
	y := t.nilN
	x := t.root
	for x != t.nilN {
		y = x
		c := t.cmp(k, x.key)
		switch {
		case c < 0:
			x = x.left
		case c > 0:
			x = x.right
		default:
			old := x.val
			x.val = v
			return old, true
		}
	}
	z := &tmNode[K, V]{key: k, val: v, left: t.nilN, right: t.nilN, parent: y, red: true}
	switch {
	case y == t.nilN:
		t.root = z
	case t.cmp(k, y.key) < 0:
		y.left = z
	default:
		y.right = z
	}
	t.size++
	t.insertFixup(z)
	var zero V
	return zero, false
}

func (t *TreeMap[K, V]) insertFixup(z *tmNode[K, V]) {
	for z.parent.red {
		if z.parent == z.parent.parent.left {
			y := z.parent.parent.right
			if y.red {
				z.parent.red = false
				y.red = false
				z.parent.parent.red = true
				z = z.parent.parent
			} else {
				if z == z.parent.right {
					z = z.parent
					t.leftRotate(z)
				}
				z.parent.red = false
				z.parent.parent.red = true
				t.rightRotate(z.parent.parent)
			}
		} else {
			y := z.parent.parent.left
			if y.red {
				z.parent.red = false
				y.red = false
				z.parent.parent.red = true
				z = z.parent.parent
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rightRotate(z)
				}
				z.parent.red = false
				z.parent.parent.red = true
				t.leftRotate(z.parent.parent)
			}
		}
	}
	t.root.red = false
}

func (t *TreeMap[K, V]) transplant(u, v *tmNode[K, V]) {
	switch {
	case u.parent == t.nilN:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	v.parent = u.parent
}

func (t *TreeMap[K, V]) minimum(n *tmNode[K, V]) *tmNode[K, V] {
	for n.left != t.nilN {
		n = n.left
	}
	return n
}

func (t *TreeMap[K, V]) maximum(n *tmNode[K, V]) *tmNode[K, V] {
	for n.right != t.nilN {
		n = n.right
	}
	return n
}

// Remove deletes k's mapping, returning the removed value if present.
func (t *TreeMap[K, V]) Remove(k K) (V, bool) {
	z := t.find(k)
	if z == t.nilN {
		var zero V
		return zero, false
	}
	removed := z.val
	y := z
	yWasRed := y.red
	var x *tmNode[K, V]
	switch {
	case z.left == t.nilN:
		x = z.right
		t.transplant(z, z.right)
	case z.right == t.nilN:
		x = z.left
		t.transplant(z, z.left)
	default:
		y = t.minimum(z.right)
		yWasRed = y.red
		x = y.right
		if y.parent == z {
			x.parent = y
		} else {
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.red = z.red
	}
	if !yWasRed {
		t.deleteFixup(x)
	}
	t.size--
	// Re-point the sentinel at itself in case fixup dirtied it.
	t.nilN.parent = t.nilN
	return removed, true
}

func (t *TreeMap[K, V]) deleteFixup(x *tmNode[K, V]) {
	for x != t.root && !x.red {
		if x == x.parent.left {
			w := x.parent.right
			if w.red {
				w.red = false
				x.parent.red = true
				t.leftRotate(x.parent)
				w = x.parent.right
			}
			if !w.left.red && !w.right.red {
				w.red = true
				x = x.parent
			} else {
				if !w.right.red {
					w.left.red = false
					w.red = true
					t.rightRotate(w)
					w = x.parent.right
				}
				w.red = x.parent.red
				x.parent.red = false
				w.right.red = false
				t.leftRotate(x.parent)
				x = t.root
			}
		} else {
			w := x.parent.left
			if w.red {
				w.red = false
				x.parent.red = true
				t.rightRotate(x.parent)
				w = x.parent.left
			}
			if !w.right.red && !w.left.red {
				w.red = true
				x = x.parent
			} else {
				if !w.left.red {
					w.right.red = false
					w.red = true
					t.leftRotate(w)
					w = x.parent.left
				}
				w.red = x.parent.red
				x.parent.red = false
				w.left.red = false
				t.rightRotate(x.parent)
				x = t.root
			}
		}
	}
	x.red = false
}

// FirstKey returns the minimum key.
func (t *TreeMap[K, V]) FirstKey() (K, bool) {
	if t.root == t.nilN {
		var zero K
		return zero, false
	}
	return t.minimum(t.root).key, true
}

// LastKey returns the maximum key.
func (t *TreeMap[K, V]) LastKey() (K, bool) {
	if t.root == t.nilN {
		var zero K
		return zero, false
	}
	return t.maximum(t.root).key, true
}

// ceilingNode returns the node with the smallest key >= k (or > k when
// strict), or the sentinel.
func (t *TreeMap[K, V]) ceilingNode(k K, strict bool) *tmNode[K, V] {
	best := t.nilN
	n := t.root
	for n != t.nilN {
		switch c := t.cmp(k, n.key); {
		case c < 0:
			best = n
			n = n.left
		case c > 0:
			n = n.right
		case strict:
			// Equal but we need a strictly greater key: the successor
			// lives in the right subtree (or is an already-seen best).
			n = n.right
		default:
			return n
		}
	}
	return best
}

// floorNode returns the node with the largest key <= k (or < k when
// strict), or the sentinel.
func (t *TreeMap[K, V]) floorNode(k K, strict bool) *tmNode[K, V] {
	best := t.nilN
	n := t.root
	for n != t.nilN {
		c := t.cmp(k, n.key)
		if c > 0 {
			best = n
			n = n.right
			continue
		}
		if c == 0 && !strict {
			return n
		}
		n = n.left
	}
	return best
}

// CeilingKey returns the smallest key >= k.
func (t *TreeMap[K, V]) CeilingKey(k K) (K, bool) { return t.keyOf(t.ceilingNode(k, false)) }

// HigherKey returns the smallest key > k.
func (t *TreeMap[K, V]) HigherKey(k K) (K, bool) { return t.keyOf(t.ceilingNode(k, true)) }

// FloorKey returns the largest key <= k.
func (t *TreeMap[K, V]) FloorKey(k K) (K, bool) { return t.keyOf(t.floorNode(k, false)) }

// LowerKey returns the largest key < k.
func (t *TreeMap[K, V]) LowerKey(k K) (K, bool) { return t.keyOf(t.floorNode(k, true)) }

func (t *TreeMap[K, V]) keyOf(n *tmNode[K, V]) (K, bool) {
	if n == t.nilN {
		var zero K
		return zero, false
	}
	return n.key, true
}

// successor returns the in-order successor of n.
func (t *TreeMap[K, V]) successor(n *tmNode[K, V]) *tmNode[K, V] {
	if n.right != t.nilN {
		return t.minimum(n.right)
	}
	p := n.parent
	for p != t.nilN && n == p.right {
		n = p
		p = p.parent
	}
	return p
}

// AscendRange visits mappings with lo <= key < hi in ascending order
// until fn returns false; nil bounds are unbounded.
func (t *TreeMap[K, V]) AscendRange(lo, hi *K, fn func(k K, v V) bool) {
	var n *tmNode[K, V]
	if lo == nil {
		if t.root == t.nilN {
			return
		}
		n = t.minimum(t.root)
	} else {
		n = t.ceilingNode(*lo, false)
	}
	for n != t.nilN {
		if hi != nil && t.cmp(n.key, *hi) >= 0 {
			return
		}
		if !fn(n.key, n.val) {
			return
		}
		n = t.successor(n)
	}
}

// ForEach visits every mapping in ascending key order until fn returns
// false.
func (t *TreeMap[K, V]) ForEach(fn func(k K, v V) bool) { t.AscendRange(nil, nil, fn) }

// Keys returns the keys in ascending order.
func (t *TreeMap[K, V]) Keys() []K {
	out := make([]K, 0, t.size)
	t.ForEach(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Clear removes all mappings.
func (t *TreeMap[K, V]) Clear() {
	t.root = t.nilN
	t.size = 0
}

var _ SortedMap[int, int] = (*TreeMap[int, int])(nil)

// checkInvariants verifies the red-black properties, for tests: the
// root is black, no red node has a red child, and every root-to-leaf
// path has the same black height. It returns the black height.
func (t *TreeMap[K, V]) checkInvariants() (int, error) {
	if t.root.red {
		return 0, errRedRoot
	}
	return t.checkNode(t.root)
}

type treeError string

func (e treeError) Error() string { return string(e) }

const (
	errRedRoot  = treeError("red root")
	errRedRed   = treeError("red node with red child")
	errBlackImb = treeError("black-height imbalance")
	errOrder    = treeError("BST order violated")
)

func (t *TreeMap[K, V]) checkNode(n *tmNode[K, V]) (int, error) {
	if n == t.nilN {
		return 1, nil
	}
	if n.red && (n.left.red || n.right.red) {
		return 0, errRedRed
	}
	if n.left != t.nilN && t.cmp(n.left.key, n.key) >= 0 {
		return 0, errOrder
	}
	if n.right != t.nilN && t.cmp(n.right.key, n.key) <= 0 {
		return 0, errOrder
	}
	lh, err := t.checkNode(n.left)
	if err != nil {
		return 0, err
	}
	rh, err := t.checkNode(n.right)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, errBlackImb
	}
	if n.red {
		return lh, nil
	}
	return lh + 1, nil
}
