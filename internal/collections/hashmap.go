package collections

import "hash/maphash"

// hashSeed is shared by all HashMaps so hashes are stable within a
// process but vary across processes, like java.util.HashMap's spread.
var hashSeed = maphash.MakeSeed()

// HashMap is a java.util.HashMap-style bucketed hash table: an array of
// singly linked collision chains, a size field, and a load factor that
// triggers doubling rehashes. The size field and collision chains are
// precisely the implementation details that cause the unnecessary
// memory-level conflicts motivating the paper (§2.4) when this kind of
// structure is used directly inside transactions.
type HashMap[K comparable, V any] struct {
	buckets   []*hmNode[K, V]
	size      int
	threshold int
}

type hmNode[K comparable, V any] struct {
	hash uint64
	key  K
	val  V
	next *hmNode[K, V]
}

const (
	hmInitialBuckets = 16
	// hmLoadFactorNum/Den encode java.util.HashMap's default 0.75.
	hmLoadFactorNum = 3
	hmLoadFactorDen = 4
)

// NewHashMap creates an empty HashMap.
func NewHashMap[K comparable, V any]() *HashMap[K, V] {
	m := &HashMap[K, V]{}
	m.initTable(hmInitialBuckets)
	return m
}

func (m *HashMap[K, V]) initTable(n int) {
	m.buckets = make([]*hmNode[K, V], n)
	m.threshold = n * hmLoadFactorNum / hmLoadFactorDen
}

func hashKey[K comparable](k K) uint64 {
	return maphash.Comparable(hashSeed, k)
}

func (m *HashMap[K, V]) bucketFor(h uint64) int {
	return int(h & uint64(len(m.buckets)-1))
}

// Get returns the value mapped to k.
func (m *HashMap[K, V]) Get(k K) (V, bool) {
	h := hashKey(k)
	for n := m.buckets[m.bucketFor(h)]; n != nil; n = n.next {
		if n.hash == h && n.key == k {
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// ContainsKey reports whether k is mapped.
func (m *HashMap[K, V]) ContainsKey(k K) bool {
	_, ok := m.Get(k)
	return ok
}

// Put maps k to v, returning the previous value if k was present.
func (m *HashMap[K, V]) Put(k K, v V) (V, bool) {
	h := hashKey(k)
	i := m.bucketFor(h)
	for n := m.buckets[i]; n != nil; n = n.next {
		if n.hash == h && n.key == k {
			old := n.val
			n.val = v
			return old, true
		}
	}
	m.buckets[i] = &hmNode[K, V]{hash: h, key: k, val: v, next: m.buckets[i]}
	m.size++
	if m.size > m.threshold {
		m.rehash()
	}
	var zero V
	return zero, false
}

// Remove deletes k's mapping, returning the removed value if present.
func (m *HashMap[K, V]) Remove(k K) (V, bool) {
	h := hashKey(k)
	i := m.bucketFor(h)
	var prev *hmNode[K, V]
	for n := m.buckets[i]; n != nil; n = n.next {
		if n.hash == h && n.key == k {
			if prev == nil {
				m.buckets[i] = n.next
			} else {
				prev.next = n.next
			}
			m.size--
			return n.val, true
		}
		prev = n
	}
	var zero V
	return zero, false
}

func (m *HashMap[K, V]) rehash() {
	old := m.buckets
	m.initTable(len(old) * 2)
	for _, n := range old {
		for n != nil {
			next := n.next
			i := m.bucketFor(n.hash)
			n.next = m.buckets[i]
			m.buckets[i] = n
			n = next
		}
	}
}

// Size returns the number of mappings.
func (m *HashMap[K, V]) Size() int { return m.size }

// ForEach visits every mapping in bucket order until fn returns false.
func (m *HashMap[K, V]) ForEach(fn func(k K, v V) bool) {
	for _, n := range m.buckets {
		for ; n != nil; n = n.next {
			if !fn(n.key, n.val) {
				return
			}
		}
	}
}

// Keys returns a snapshot of the keys in ForEach order.
func (m *HashMap[K, V]) Keys() []K {
	out := make([]K, 0, m.size)
	m.ForEach(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Clear removes all mappings.
func (m *HashMap[K, V]) Clear() {
	m.initTable(hmInitialBuckets)
	m.size = 0
}

var _ Map[int, int] = (*HashMap[int, int])(nil)
