// Package collections provides from-scratch, single-threaded collection
// implementations with java.util semantics: a bucketed, load-factored
// HashMap (the paper's java.util.HashMap stand-in), a red-black TreeMap
// implementing a SortedMap with navigation queries (the
// java.util.TreeMap stand-in), and a linked Queue.
//
// These are the *underlying* structures that the transactional
// collection classes in internal/core wrap: they are deliberately not
// thread-safe, exactly like the Java classes the paper wraps, because
// the wrapper confines all access to its open-nested critical sections.
package collections

// Map is the abstract data type analyzed in Table 1 of the paper: the
// primitive operations of java.util.Map. Derivative operations
// (isEmpty, putAll, ...) are compositions of these (paper §3.1).
type Map[K comparable, V any] interface {
	// Get returns the value mapped to k.
	Get(k K) (V, bool)
	// Put maps k to v and returns the previous value, if any.
	Put(k K, v V) (V, bool)
	// Remove deletes k's mapping and returns the removed value, if any.
	Remove(k K) (V, bool)
	// ContainsKey reports whether k is mapped.
	ContainsKey(k K) bool
	// Size returns the number of mappings.
	Size() int
	// ForEach visits every mapping until fn returns false. Visit order
	// is implementation-defined.
	ForEach(fn func(k K, v V) bool)
	// Keys returns a snapshot of the keys in ForEach order.
	Keys() []K
	// Clear removes all mappings.
	Clear()
}

// SortedMap extends Map with the ordering-dependent operations of
// java.util.SortedMap analyzed in Table 4: ordered iteration, endpoint
// queries, and range views (expressed here as navigation primitives the
// transactional wrapper builds its views and iterators from).
type SortedMap[K comparable, V any] interface {
	Map[K, V]
	// Compare is the map's comparator.
	Compare(a, b K) int
	// FirstKey and LastKey return the minimum and maximum keys.
	FirstKey() (K, bool)
	LastKey() (K, bool)
	// CeilingKey returns the smallest key >= k.
	CeilingKey(k K) (K, bool)
	// HigherKey returns the smallest key > k.
	HigherKey(k K) (K, bool)
	// FloorKey returns the largest key <= k.
	FloorKey(k K) (K, bool)
	// LowerKey returns the largest key < k.
	LowerKey(k K) (K, bool)
	// AscendRange visits mappings with lo <= key < hi in ascending
	// order until fn returns false; a nil bound is unbounded (Java
	// subMap/headMap/tailMap semantics).
	AscendRange(lo, hi *K, fn func(k K, v V) bool)
}

// Queue is a FIFO queue of elements, the structure wrapped by
// TransactionalQueue through the simpler Channel interface (paper §3.3).
type Queue[T any] interface {
	// Enqueue appends v at the tail.
	Enqueue(v T)
	// Dequeue removes and returns the head element.
	Dequeue() (T, bool)
	// Peek returns the head element without removing it.
	Peek() (T, bool)
	// Size returns the number of queued elements.
	Size() int
}
