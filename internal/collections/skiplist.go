package collections

import "math/rand"

// SkipListMap is a probabilistically balanced sorted map — the
// structure underlying the ConcurrentSkipListMap that paper §2.2 cites
// as JDK 6's NavigableMap implementation. Like the other structures in
// this package it is single-threaded: it exists as an *alternative*
// SortedMap implementation so the transactional wrapper's "wrap any
// existing implementation, no knowledge of internals required" claim
// can be demonstrated over a second, structurally different tree
// substitute (see TestWrapperOverSkipList).
type SkipListMap[K comparable, V any] struct {
	cmp  func(a, b K) int
	head *slNode[K, V] // sentinel with maxLevel forward pointers
	rng  *rand.Rand
	size int
	// level is the current highest occupied level + 1.
	level int
}

type slNode[K comparable, V any] struct {
	key     K
	val     V
	forward []*slNode[K, V]
}

const slMaxLevel = 24

// NewSkipListMap creates an empty skip list ordered by compare, with a
// deterministic tower-height stream seeded by seed.
func NewSkipListMap[K comparable, V any](compare func(a, b K) int, seed int64) *SkipListMap[K, V] {
	return &SkipListMap[K, V]{
		cmp:   compare,
		head:  &slNode[K, V]{forward: make([]*slNode[K, V], slMaxLevel)},
		rng:   rand.New(rand.NewSource(seed)),
		level: 1,
	}
}

// Compare applies the map's comparator.
func (s *SkipListMap[K, V]) Compare(a, b K) int { return s.cmp(a, b) }

// randomLevel draws a tower height with P(level > l) = 2^-l.
func (s *SkipListMap[K, V]) randomLevel() int {
	lvl := 1
	for lvl < slMaxLevel && s.rng.Intn(2) == 0 {
		lvl++
	}
	return lvl
}

// findPredecessors fills update with the rightmost node strictly before
// k at every level and returns the candidate node at level 0.
func (s *SkipListMap[K, V]) findPredecessors(k K, update []*slNode[K, V]) *slNode[K, V] {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.forward[i] != nil && s.cmp(x.forward[i].key, k) < 0 {
			x = x.forward[i]
		}
		if update != nil {
			update[i] = x
		}
	}
	return x.forward[0]
}

// Get returns the value mapped to k.
func (s *SkipListMap[K, V]) Get(k K) (V, bool) {
	n := s.findPredecessors(k, nil)
	if n != nil && s.cmp(n.key, k) == 0 {
		return n.val, true
	}
	var zero V
	return zero, false
}

// ContainsKey reports whether k is mapped.
func (s *SkipListMap[K, V]) ContainsKey(k K) bool {
	_, ok := s.Get(k)
	return ok
}

// Put maps k to v, returning the previous value if k was present.
func (s *SkipListMap[K, V]) Put(k K, v V) (V, bool) {
	update := make([]*slNode[K, V], slMaxLevel)
	for i := s.level; i < slMaxLevel; i++ {
		update[i] = s.head
	}
	n := s.findPredecessors(k, update)
	if n != nil && s.cmp(n.key, k) == 0 {
		old := n.val
		n.val = v
		return old, true
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		s.level = lvl
	}
	node := &slNode[K, V]{key: k, val: v, forward: make([]*slNode[K, V], lvl)}
	for i := 0; i < lvl; i++ {
		node.forward[i] = update[i].forward[i]
		update[i].forward[i] = node
	}
	s.size++
	var zero V
	return zero, false
}

// Remove deletes k's mapping, returning the removed value if present.
func (s *SkipListMap[K, V]) Remove(k K) (V, bool) {
	update := make([]*slNode[K, V], slMaxLevel)
	for i := s.level; i < slMaxLevel; i++ {
		update[i] = s.head
	}
	n := s.findPredecessors(k, update)
	if n == nil || s.cmp(n.key, k) != 0 {
		var zero V
		return zero, false
	}
	for i := 0; i < len(n.forward); i++ {
		if update[i].forward[i] == n {
			update[i].forward[i] = n.forward[i]
		}
	}
	for s.level > 1 && s.head.forward[s.level-1] == nil {
		s.level--
	}
	s.size--
	return n.val, true
}

// Size returns the number of mappings.
func (s *SkipListMap[K, V]) Size() int { return s.size }

// FirstKey returns the minimum key.
func (s *SkipListMap[K, V]) FirstKey() (K, bool) {
	if n := s.head.forward[0]; n != nil {
		return n.key, true
	}
	var zero K
	return zero, false
}

// LastKey returns the maximum key.
func (s *SkipListMap[K, V]) LastKey() (K, bool) {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.forward[i] != nil {
			x = x.forward[i]
		}
	}
	if x == s.head {
		var zero K
		return zero, false
	}
	return x.key, true
}

// CeilingKey returns the smallest key >= k.
func (s *SkipListMap[K, V]) CeilingKey(k K) (K, bool) {
	if n := s.findPredecessors(k, nil); n != nil {
		return n.key, true
	}
	var zero K
	return zero, false
}

// HigherKey returns the smallest key > k.
func (s *SkipListMap[K, V]) HigherKey(k K) (K, bool) {
	n := s.findPredecessors(k, nil)
	if n != nil && s.cmp(n.key, k) == 0 {
		n = n.forward[0]
	}
	if n != nil {
		return n.key, true
	}
	var zero K
	return zero, false
}

// lowerNode returns the rightmost node with key < k (or the sentinel).
func (s *SkipListMap[K, V]) lowerNode(k K) *slNode[K, V] {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.forward[i] != nil && s.cmp(x.forward[i].key, k) < 0 {
			x = x.forward[i]
		}
	}
	return x
}

// FloorKey returns the largest key <= k.
func (s *SkipListMap[K, V]) FloorKey(k K) (K, bool) {
	x := s.lowerNode(k)
	if next := x.forward[0]; next != nil && s.cmp(next.key, k) == 0 {
		return next.key, true
	}
	if x == s.head {
		var zero K
		return zero, false
	}
	return x.key, true
}

// LowerKey returns the largest key < k.
func (s *SkipListMap[K, V]) LowerKey(k K) (K, bool) {
	x := s.lowerNode(k)
	if x == s.head {
		var zero K
		return zero, false
	}
	return x.key, true
}

// AscendRange visits mappings with lo <= key < hi in ascending order
// until fn returns false; nil bounds are unbounded.
func (s *SkipListMap[K, V]) AscendRange(lo, hi *K, fn func(k K, v V) bool) {
	var n *slNode[K, V]
	if lo == nil {
		n = s.head.forward[0]
	} else {
		n = s.findPredecessors(*lo, nil)
	}
	for n != nil {
		if hi != nil && s.cmp(n.key, *hi) >= 0 {
			return
		}
		if !fn(n.key, n.val) {
			return
		}
		n = n.forward[0]
	}
}

// ForEach visits every mapping in ascending key order until fn returns
// false.
func (s *SkipListMap[K, V]) ForEach(fn func(k K, v V) bool) { s.AscendRange(nil, nil, fn) }

// Keys returns the keys in ascending order.
func (s *SkipListMap[K, V]) Keys() []K {
	out := make([]K, 0, s.size)
	s.ForEach(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Clear removes all mappings.
func (s *SkipListMap[K, V]) Clear() {
	s.head = &slNode[K, V]{forward: make([]*slNode[K, V], slMaxLevel)}
	s.level = 1
	s.size = 0
}

var _ SortedMap[int, int] = (*SkipListMap[int, int])(nil)
