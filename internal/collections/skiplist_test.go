package collections

import (
	"cmp"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func newIntSkipList() *SkipListMap[int, int] {
	return NewSkipListMap[int, int](cmp.Compare[int], 7)
}

func TestSkipListBasics(t *testing.T) {
	m := newIntSkipList()
	if m.Size() != 0 || m.ContainsKey(1) {
		t.Fatal("fresh list not empty")
	}
	if _, had := m.Put(1, 10); had {
		t.Fatal("first put had previous")
	}
	if v, ok := m.Get(1); !ok || v != 10 {
		t.Fatalf("get = (%d,%v)", v, ok)
	}
	if old, had := m.Put(1, 11); !had || old != 10 {
		t.Fatalf("overwrite = (%d,%v)", old, had)
	}
	if v, ok := m.Remove(1); !ok || v != 11 {
		t.Fatalf("remove = (%d,%v)", v, ok)
	}
	if _, ok := m.Remove(1); ok {
		t.Fatal("double remove")
	}
	if m.Size() != 0 {
		t.Fatalf("size = %d", m.Size())
	}
}

// TestSkipListMatchesTreeMap drives the skip list and the red-black
// tree with identical random operations; as two implementations of the
// same SortedMap interface they must agree on everything.
func TestSkipListMatchesTreeMap(t *testing.T) {
	sl := newIntSkipList()
	tm := NewTreeMap[int, int]()
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 30_000; i++ {
		k := rng.Intn(400)
		switch rng.Intn(5) {
		case 0, 1:
			v := rng.Int() % 10_000
			o1, h1 := sl.Put(k, v)
			o2, h2 := tm.Put(k, v)
			if h1 != h2 || (h1 && o1 != o2) {
				t.Fatalf("put(%d) disagreement: (%d,%v) vs (%d,%v)", k, o1, h1, o2, h2)
			}
		case 2:
			o1, h1 := sl.Remove(k)
			o2, h2 := tm.Remove(k)
			if h1 != h2 || (h1 && o1 != o2) {
				t.Fatalf("remove(%d) disagreement", k)
			}
		case 3:
			v1, ok1 := sl.Get(k)
			v2, ok2 := tm.Get(k)
			if ok1 != ok2 || (ok1 && v1 != v2) {
				t.Fatalf("get(%d) disagreement", k)
			}
		default:
			type nav struct {
				name string
				a, b func(int) (int, bool)
			}
			for _, q := range []nav{
				{"ceiling", sl.CeilingKey, tm.CeilingKey},
				{"higher", sl.HigherKey, tm.HigherKey},
				{"floor", sl.FloorKey, tm.FloorKey},
				{"lower", sl.LowerKey, tm.LowerKey},
			} {
				a, aok := q.a(k)
				b, bok := q.b(k)
				if aok != bok || (aok && a != b) {
					t.Fatalf("%s(%d) disagreement: (%d,%v) vs (%d,%v)", q.name, k, a, aok, b, bok)
				}
			}
		}
		if sl.Size() != tm.Size() {
			t.Fatalf("size disagreement: %d vs %d", sl.Size(), tm.Size())
		}
	}
	// Endpoints and full ordering.
	f1, _ := sl.FirstKey()
	f2, _ := tm.FirstKey()
	l1, _ := sl.LastKey()
	l2, _ := tm.LastKey()
	if f1 != f2 || l1 != l2 {
		t.Fatalf("endpoints disagree: (%d,%d) vs (%d,%d)", f1, l1, f2, l2)
	}
	ka, kb := sl.Keys(), tm.Keys()
	if len(ka) != len(kb) {
		t.Fatalf("key counts: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("keys diverge at %d: %d vs %d", i, ka[i], kb[i])
		}
	}
}

func TestSkipListAscendRange(t *testing.T) {
	m := newIntSkipList()
	for i := 0; i < 100; i += 10 {
		m.Put(i, i)
	}
	lo, hi := 15, 55
	var got []int
	m.AscendRange(&lo, &hi, func(k, _ int) bool {
		got = append(got, k)
		return true
	})
	want := []int{20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	m.AscendRange(nil, nil, func(int, int) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestSkipListOrderedProperty(t *testing.T) {
	prop := func(keys []int16) bool {
		m := NewSkipListMap[int16, int](func(a, b int16) int { return int(a) - int(b) }, 3)
		set := map[int16]bool{}
		for _, k := range keys {
			m.Put(k, int(k))
			set[k] = true
		}
		got := m.Keys()
		if len(got) != len(set) {
			return false
		}
		want := make([]int, 0, len(set))
		for k := range set {
			want = append(want, int(k))
		}
		sort.Ints(want)
		for i := range want {
			if int(got[i]) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSkipListClear(t *testing.T) {
	m := newIntSkipList()
	for i := 0; i < 64; i++ {
		m.Put(i, i)
	}
	m.Clear()
	if m.Size() != 0 || m.ContainsKey(3) {
		t.Fatal("clear failed")
	}
	m.Put(5, 5)
	if v, ok := m.Get(5); !ok || v != 5 {
		t.Fatal("unusable after clear")
	}
}
