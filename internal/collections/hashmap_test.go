package collections

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashMapBasics(t *testing.T) {
	m := NewHashMap[string, int]()
	if m.Size() != 0 {
		t.Fatal("new map not empty")
	}
	if _, ok := m.Get("a"); ok {
		t.Fatal("get on empty map succeeded")
	}
	if old, had := m.Put("a", 1); had {
		t.Fatalf("first put reported previous value %d", old)
	}
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("get = (%d,%v), want (1,true)", v, ok)
	}
	if old, had := m.Put("a", 2); !had || old != 1 {
		t.Fatalf("overwrite = (%d,%v), want (1,true)", old, had)
	}
	if m.Size() != 1 {
		t.Fatalf("size = %d, want 1", m.Size())
	}
	if v, ok := m.Remove("a"); !ok || v != 2 {
		t.Fatalf("remove = (%d,%v), want (2,true)", v, ok)
	}
	if _, ok := m.Remove("a"); ok {
		t.Fatal("double remove succeeded")
	}
	if m.Size() != 0 {
		t.Fatalf("size = %d after removal, want 0", m.Size())
	}
}

func TestHashMapResize(t *testing.T) {
	m := NewHashMap[int, int]()
	const n = 10_000
	for i := 0; i < n; i++ {
		m.Put(i, i*i)
	}
	if m.Size() != n {
		t.Fatalf("size = %d, want %d", m.Size(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(i); !ok || v != i*i {
			t.Fatalf("get(%d) = (%d,%v)", i, v, ok)
		}
	}
	if len(m.buckets) <= hmInitialBuckets {
		t.Fatal("table never grew")
	}
}

func TestHashMapForEachAndKeys(t *testing.T) {
	m := NewHashMap[int, string]()
	want := map[int]string{1: "a", 2: "b", 3: "c"}
	for k, v := range want {
		m.Put(k, v)
	}
	seen := map[int]string{}
	m.ForEach(func(k int, v string) bool {
		seen[k] = v
		return true
	})
	if len(seen) != len(want) {
		t.Fatalf("ForEach visited %d entries, want %d", len(seen), len(want))
	}
	for k, v := range want {
		if seen[k] != v {
			t.Fatalf("ForEach saw %q for %d, want %q", seen[k], k, v)
		}
	}
	if got := m.Keys(); len(got) != 3 {
		t.Fatalf("Keys() = %v", got)
	}
	// Early termination.
	count := 0
	m.ForEach(func(int, string) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("ForEach visited %d entries after stop, want 1", count)
	}
}

func TestHashMapClear(t *testing.T) {
	m := NewHashMap[int, int]()
	for i := 0; i < 100; i++ {
		m.Put(i, i)
	}
	m.Clear()
	if m.Size() != 0 || m.ContainsKey(5) {
		t.Fatal("clear left entries behind")
	}
	m.Put(7, 7)
	if v, ok := m.Get(7); !ok || v != 7 {
		t.Fatal("map unusable after clear")
	}
}

// TestHashMapMatchesModel drives the HashMap with random operations and
// compares against Go's built-in map as the reference model.
func TestHashMapMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewHashMap[int, int]()
	ref := map[int]int{}
	for i := 0; i < 50_000; i++ {
		k := rng.Intn(500)
		switch rng.Intn(3) {
		case 0:
			v := rng.Int()
			wantOld, wantHad := ref[k]
			gotOld, gotHad := m.Put(k, v)
			if gotHad != wantHad || (wantHad && gotOld != wantOld) {
				t.Fatalf("put(%d): got (%d,%v), want (%d,%v)", k, gotOld, gotHad, wantOld, wantHad)
			}
			ref[k] = v
		case 1:
			wantOld, wantHad := ref[k]
			gotOld, gotHad := m.Remove(k)
			if gotHad != wantHad || (wantHad && gotOld != wantOld) {
				t.Fatalf("remove(%d): got (%d,%v), want (%d,%v)", k, gotOld, gotHad, wantOld, wantHad)
			}
			delete(ref, k)
		default:
			wantV, wantOK := ref[k]
			gotV, gotOK := m.Get(k)
			if gotOK != wantOK || (wantOK && gotV != wantV) {
				t.Fatalf("get(%d): got (%d,%v), want (%d,%v)", k, gotV, gotOK, wantV, wantOK)
			}
		}
		if m.Size() != len(ref) {
			t.Fatalf("size = %d, want %d", m.Size(), len(ref))
		}
	}
}

// TestHashMapPutGetProperty is a quick-check property: after Put(k,v),
// Get(k) returns v and size never disagrees with distinct-key count.
func TestHashMapPutGetProperty(t *testing.T) {
	prop := func(keys []int16, v int) bool {
		m := NewHashMap[int16, int]()
		distinct := map[int16]bool{}
		for i, k := range keys {
			m.Put(k, v+i)
			distinct[k] = true
			if got, ok := m.Get(k); !ok || got != v+i {
				return false
			}
		}
		return m.Size() == len(distinct)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkedQueueFIFO(t *testing.T) {
	q := NewLinkedQueue[int]()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue on empty queue succeeded")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty queue succeeded")
	}
	for i := 0; i < 10; i++ {
		q.Enqueue(i)
	}
	if q.Size() != 10 {
		t.Fatalf("size = %d, want 10", q.Size())
	}
	if v, ok := q.Peek(); !ok || v != 0 {
		t.Fatalf("peek = (%d,%v), want (0,true)", v, ok)
	}
	for i := 0; i < 10; i++ {
		if v, ok := q.Dequeue(); !ok || v != i {
			t.Fatalf("dequeue = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if q.Size() != 0 {
		t.Fatal("queue not empty after draining")
	}
	// Reusable after draining.
	q.Enqueue(42)
	if v, ok := q.Dequeue(); !ok || v != 42 {
		t.Fatalf("dequeue after drain = (%d,%v)", v, ok)
	}
}

func TestLinkedQueueInterleaved(t *testing.T) {
	q := NewLinkedQueue[int]()
	ref := []int{}
	rng := rand.New(rand.NewSource(3))
	next := 0
	for i := 0; i < 10_000; i++ {
		if rng.Intn(2) == 0 {
			q.Enqueue(next)
			ref = append(ref, next)
			next++
		} else {
			v, ok := q.Dequeue()
			if len(ref) == 0 {
				if ok {
					t.Fatal("dequeue succeeded on empty")
				}
				continue
			}
			if !ok || v != ref[0] {
				t.Fatalf("dequeue = (%d,%v), want (%d,true)", v, ok, ref[0])
			}
			ref = ref[1:]
		}
		if q.Size() != len(ref) {
			t.Fatalf("size = %d, want %d", q.Size(), len(ref))
		}
	}
}
