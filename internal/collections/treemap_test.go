package collections

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTreeMapBasics(t *testing.T) {
	m := NewTreeMap[int, string]()
	if m.Size() != 0 {
		t.Fatal("new tree not empty")
	}
	if _, ok := m.FirstKey(); ok {
		t.Fatal("FirstKey on empty tree succeeded")
	}
	if _, ok := m.LastKey(); ok {
		t.Fatal("LastKey on empty tree succeeded")
	}
	m.Put(5, "e")
	m.Put(1, "a")
	m.Put(9, "i")
	if v, ok := m.Get(5); !ok || v != "e" {
		t.Fatalf("get(5) = (%q,%v)", v, ok)
	}
	if k, _ := m.FirstKey(); k != 1 {
		t.Fatalf("first = %d, want 1", k)
	}
	if k, _ := m.LastKey(); k != 9 {
		t.Fatalf("last = %d, want 9", k)
	}
	if old, had := m.Put(5, "E"); !had || old != "e" {
		t.Fatalf("overwrite = (%q,%v)", old, had)
	}
	if m.Size() != 3 {
		t.Fatalf("size = %d, want 3", m.Size())
	}
	if v, ok := m.Remove(5); !ok || v != "E" {
		t.Fatalf("remove = (%q,%v)", v, ok)
	}
	if m.ContainsKey(5) {
		t.Fatal("removed key still present")
	}
}

func TestTreeMapOrderedIteration(t *testing.T) {
	m := NewTreeMap[int, int]()
	perm := rand.New(rand.NewSource(1)).Perm(1000)
	for _, k := range perm {
		m.Put(k, k*2)
	}
	var got []int
	m.ForEach(func(k, v int) bool {
		if v != k*2 {
			t.Fatalf("value mismatch at %d: %d", k, v)
		}
		got = append(got, k)
		return true
	})
	if len(got) != 1000 {
		t.Fatalf("visited %d keys, want 1000", len(got))
	}
	if !sort.IntsAreSorted(got) {
		t.Fatal("iteration not in ascending order")
	}
}

func TestTreeMapNavigation(t *testing.T) {
	m := NewTreeMap[int, int]()
	for _, k := range []int{10, 20, 30, 40, 50} {
		m.Put(k, k)
	}
	cases := []struct {
		name string
		fn   func(int) (int, bool)
		in   int
		want int
		ok   bool
	}{
		{"ceiling-exact", m.CeilingKey, 30, 30, true},
		{"ceiling-between", m.CeilingKey, 31, 40, true},
		{"ceiling-low", m.CeilingKey, -5, 10, true},
		{"ceiling-high", m.CeilingKey, 51, 0, false},
		{"higher-exact", m.HigherKey, 30, 40, true},
		{"higher-between", m.HigherKey, 29, 30, true},
		{"higher-max", m.HigherKey, 50, 0, false},
		{"floor-exact", m.FloorKey, 30, 30, true},
		{"floor-between", m.FloorKey, 29, 20, true},
		{"floor-low", m.FloorKey, 5, 0, false},
		{"lower-exact", m.LowerKey, 30, 20, true},
		{"lower-min", m.LowerKey, 10, 0, false},
		{"lower-high", m.LowerKey, 99, 50, true},
	}
	for _, c := range cases {
		got, ok := c.fn(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("%s(%d) = (%d,%v), want (%d,%v)", c.name, c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestTreeMapAscendRange(t *testing.T) {
	m := NewTreeMap[int, int]()
	for i := 0; i < 100; i += 10 {
		m.Put(i, i)
	}
	collect := func(lo, hi *int) []int {
		var out []int
		m.AscendRange(lo, hi, func(k, _ int) bool {
			out = append(out, k)
			return true
		})
		return out
	}
	lo, hi := 25, 65
	got := collect(&lo, &hi)
	want := []int{30, 40, 50, 60}
	if len(got) != len(want) {
		t.Fatalf("range [25,65) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range [25,65) = %v, want %v", got, want)
		}
	}
	// hi is exclusive (Java subMap semantics).
	lo, hi = 30, 60
	got = collect(&lo, &hi)
	if len(got) != 3 || got[0] != 30 || got[2] != 50 {
		t.Fatalf("range [30,60) = %v, want [30 40 50]", got)
	}
	// Unbounded sides.
	if got := collect(nil, &hi); len(got) != 6 {
		t.Fatalf("range (-inf,60) = %v", got)
	}
	if got := collect(&lo, nil); len(got) != 7 {
		t.Fatalf("range [30,inf) = %v", got)
	}
	if got := collect(nil, nil); len(got) != 10 {
		t.Fatalf("full range = %v", got)
	}
}

func TestTreeMapCustomComparator(t *testing.T) {
	// Descending comparator flips first/last.
	m := NewTreeMapFunc[int, int](func(a, b int) int { return b - a })
	for _, k := range []int{3, 1, 2} {
		m.Put(k, k)
	}
	if k, _ := m.FirstKey(); k != 3 {
		t.Fatalf("first under descending order = %d, want 3", k)
	}
	if k, _ := m.LastKey(); k != 1 {
		t.Fatalf("last under descending order = %d, want 1", k)
	}
}

// TestTreeMapMatchesModel drives the tree with random operations,
// checking results against a Go map + sorted keys reference and
// verifying the red-black invariants as the tree churns.
func TestTreeMapMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewTreeMap[int, int]()
	ref := map[int]int{}
	for i := 0; i < 30_000; i++ {
		k := rng.Intn(300)
		switch rng.Intn(4) {
		case 0, 1:
			v := rng.Int()
			wantOld, wantHad := ref[k]
			gotOld, gotHad := m.Put(k, v)
			if gotHad != wantHad || (wantHad && gotOld != wantOld) {
				t.Fatalf("put(%d): got (%d,%v), want (%d,%v)", k, gotOld, gotHad, wantOld, wantHad)
			}
			ref[k] = v
		case 2:
			wantOld, wantHad := ref[k]
			gotOld, gotHad := m.Remove(k)
			if gotHad != wantHad || (wantHad && gotOld != wantOld) {
				t.Fatalf("remove(%d): got (%d,%v), want (%d,%v)", k, gotOld, gotHad, wantOld, wantHad)
			}
			delete(ref, k)
		default:
			wantV, wantOK := ref[k]
			gotV, gotOK := m.Get(k)
			if gotOK != wantOK || (wantOK && gotV != wantV) {
				t.Fatalf("get(%d): got (%d,%v), want (%d,%v)", k, gotV, gotOK, wantV, wantOK)
			}
		}
		if m.Size() != len(ref) {
			t.Fatalf("size = %d, want %d", m.Size(), len(ref))
		}
		if i%512 == 0 {
			if _, err := m.checkInvariants(); err != nil {
				t.Fatalf("red-black invariant broken after %d ops: %v", i, err)
			}
		}
	}
	if _, err := m.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Final ordering check against the reference.
	keys := make([]int, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	got := m.Keys()
	if len(got) != len(keys) {
		t.Fatalf("key count %d, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("keys[%d] = %d, want %d", i, got[i], keys[i])
		}
	}
}

// TestTreeMapInvariantProperty quick-checks that any insertion sequence
// followed by any deletion subset leaves a valid red-black tree.
func TestTreeMapInvariantProperty(t *testing.T) {
	prop := func(ins []int16, del []int16) bool {
		m := NewTreeMap[int16, int]()
		for i, k := range ins {
			m.Put(k, i)
		}
		if _, err := m.checkInvariants(); err != nil {
			return false
		}
		for _, k := range del {
			m.Remove(k)
		}
		_, err := m.checkInvariants()
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTreeMapNavigationProperty quick-checks navigation queries against
// a sorted-slice oracle.
func TestTreeMapNavigationProperty(t *testing.T) {
	prop := func(ins []int16, probe int16) bool {
		m := NewTreeMap[int16, int]()
		set := map[int16]bool{}
		for _, k := range ins {
			m.Put(k, 0)
			set[k] = true
		}
		keys := make([]int, 0, len(set))
		for k := range set {
			keys = append(keys, int(k))
		}
		sort.Ints(keys)
		oracle := func(pred func(int) bool, fromLow bool) (int16, bool) {
			if fromLow {
				for _, k := range keys {
					if pred(k) {
						return int16(k), true
					}
				}
			} else {
				for i := len(keys) - 1; i >= 0; i-- {
					if pred(keys[i]) {
						return int16(keys[i]), true
					}
				}
			}
			return 0, false
		}
		p := int(probe)
		type q struct {
			got, want int16
			gok, wok  bool
		}
		var checks []q
		g, gok := m.CeilingKey(probe)
		w, wok := oracle(func(k int) bool { return k >= p }, true)
		checks = append(checks, q{g, w, gok, wok})
		g, gok = m.HigherKey(probe)
		w, wok = oracle(func(k int) bool { return k > p }, true)
		checks = append(checks, q{g, w, gok, wok})
		g, gok = m.FloorKey(probe)
		w, wok = oracle(func(k int) bool { return k <= p }, false)
		checks = append(checks, q{g, w, gok, wok})
		g, gok = m.LowerKey(probe)
		w, wok = oracle(func(k int) bool { return k < p }, false)
		checks = append(checks, q{g, w, gok, wok})
		for _, c := range checks {
			if c.gok != c.wok || (c.gok && c.got != c.want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeMapClear(t *testing.T) {
	m := NewTreeMap[int, int]()
	for i := 0; i < 50; i++ {
		m.Put(i, i)
	}
	m.Clear()
	if m.Size() != 0 {
		t.Fatal("clear left entries")
	}
	if _, err := m.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	m.Put(1, 1)
	if v, ok := m.Get(1); !ok || v != 1 {
		t.Fatal("tree unusable after clear")
	}
}
