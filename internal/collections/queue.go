package collections

// LinkedQueue is a singly linked FIFO queue with head/tail pointers,
// the structure TransactionalQueue wraps (paper §3.3).
type LinkedQueue[T any] struct {
	head, tail *lqNode[T]
	size       int
}

type lqNode[T any] struct {
	val  T
	next *lqNode[T]
}

// NewLinkedQueue creates an empty queue.
func NewLinkedQueue[T any]() *LinkedQueue[T] { return &LinkedQueue[T]{} }

// Enqueue appends v at the tail.
func (q *LinkedQueue[T]) Enqueue(v T) {
	n := &lqNode[T]{val: v}
	if q.tail == nil {
		q.head, q.tail = n, n
	} else {
		q.tail.next = n
		q.tail = n
	}
	q.size++
}

// Dequeue removes and returns the head element.
func (q *LinkedQueue[T]) Dequeue() (T, bool) {
	if q.head == nil {
		var zero T
		return zero, false
	}
	n := q.head
	q.head = n.next
	if q.head == nil {
		q.tail = nil
	}
	q.size--
	return n.val, true
}

// Peek returns the head element without removing it.
func (q *LinkedQueue[T]) Peek() (T, bool) {
	if q.head == nil {
		var zero T
		return zero, false
	}
	return q.head.val, true
}

// Size returns the number of queued elements.
func (q *LinkedQueue[T]) Size() int { return q.size }

var _ Queue[int] = (*LinkedQueue[int])(nil)
