// Package harness runs the paper's benchmark workloads (TestMap,
// TestSortedMap, TestCompound and the SPECjbb2000-style workload in
// internal/jbb) across CPU counts and reports speedups in the shape of
// the paper's Figures 1-4.
//
// Workloads are written against the Platform abstraction so the same
// code runs on two substrates: the deterministic virtual-CPU simulator
// (internal/sim), which produces the figures regardless of how many
// host cores exist — exactly as the paper used an execution-driven CMP
// simulator — and real goroutines for wall-clock testing.B benches.
package harness

import (
	"math/rand"
	"sync"
	"time"

	"tcc/internal/sim"
	"tcc/internal/stm"
)

// Worker is one concurrent executor of a workload: a transactional
// thread plus a deterministic per-worker RNG.
type Worker struct {
	// Index identifies the worker, in [0, N).
	Index int
	// Thread is the worker's transactional context.
	Thread *stm.Thread
	// RNG drives the workload's randomized choices deterministically.
	RNG *rand.Rand
}

// Compute charges pure computation time — the "surrounding computation"
// of the paper's micro-benchmarks.
func (w *Worker) Compute(cycles uint64) { w.Thread.Clock.Tick(cycles) }

// Lock is a mutual-exclusion lock whose contention costs time on the
// current platform; the "Java synchronized" baselines are built on it.
type Lock interface {
	Lock(w *Worker)
	Unlock(w *Worker)
}

// Result is one measured run.
type Result struct {
	// Workers is the number of concurrent workers (virtual CPUs).
	Workers int
	// Elapsed is the run's duration in the platform's time unit
	// (virtual cycles on the simulator, nanoseconds for real runs).
	Elapsed float64
	// Stats aggregates transactional events across workers.
	Stats stm.Stats
}

// Platform runs workers and measures elapsed time.
type Platform interface {
	// Run executes body once per worker, concurrently, and reports the
	// elapsed time and aggregate transaction statistics.
	Run(workers int, body func(w *Worker)) Result
	// NewLock creates a lock whose contention is accounted on this
	// platform.
	NewLock() Lock
}

// SimPlatform runs workloads on the deterministic virtual-CPU
// simulator. The zero value is ready to use; set Seed for different
// deterministic schedules, and Protocol to run workers under a
// non-default concurrency-control protocol.
type SimPlatform struct {
	Seed int64
	// Protocol selects the STM protocol for every worker thread
	// (stm.Protocols() lists the choices); "" means the default.
	Protocol string
}

// Run executes body on `workers` virtual CPUs and reports the virtual
// makespan.
func (p *SimPlatform) Run(workers int, body func(w *Worker)) Result {
	s := sim.New(workers)
	var mu sync.Mutex
	var agg stm.Stats
	s.Run(func(cpu *sim.CPU) {
		w := &Worker{
			Index:  cpu.ID(),
			Thread: stm.NewThread(cpu, p.Seed<<8|int64(cpu.ID())),
			RNG:    rand.New(rand.NewSource(p.Seed<<16 | int64(cpu.ID()+1))),
		}
		w.Thread.TraceID = cpu.ID()
		setProtocol(w.Thread, p.Protocol)
		body(w)
		mu.Lock()
		agg.Add(w.Thread.Stats)
		mu.Unlock()
	})
	return Result{Workers: workers, Elapsed: float64(s.Makespan()), Stats: agg}
}

// NewLock returns a virtual-time lock.
func (p *SimPlatform) NewLock() Lock { return &simLock{} }

type simLock struct {
	l sim.Lock
}

func (s *simLock) Lock(w *Worker)   { s.l.Acquire(w.Thread.Clock.(*sim.CPU)) }
func (s *simLock) Unlock(w *Worker) { s.l.Release(w.Thread.Clock.(*sim.CPU)) }

// RealPlatform runs workloads on real goroutines and measures wall
// time. Useful for testing.B benches and stress tests; speedup curves
// beyond the host's core count require SimPlatform.
type RealPlatform struct {
	Seed int64
	// Protocol selects the STM protocol for every worker thread
	// (stm.Protocols() lists the choices); "" means the default.
	Protocol string
}

// setProtocol applies a platform's protocol selection to a freshly
// created worker thread. An unknown name panics: a sweep comparing
// protocols must not silently fall back to the default and report its
// numbers under the wrong label.
func setProtocol(th *stm.Thread, proto string) {
	if proto == "" {
		return
	}
	if err := th.SetProtocol(proto); err != nil {
		panic(err)
	}
}

// Run executes body on `workers` goroutines and reports wall time in
// nanoseconds.
func (p *RealPlatform) Run(workers int, body func(w *Worker)) Result {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var agg stm.Stats
	start := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{
				Index:  i,
				Thread: stm.NewThread(&stm.RealClock{}, p.Seed<<8|int64(i)),
				RNG:    rand.New(rand.NewSource(p.Seed<<16 | int64(i+1))),
			}
			w.Thread.TraceID = i
			setProtocol(w.Thread, p.Protocol)
			body(w)
			mu.Lock()
			agg.Add(w.Thread.Stats)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return Result{Workers: workers, Elapsed: float64(time.Since(start).Nanoseconds()), Stats: agg}
}

// NewLock returns a real mutex.
func (p *RealPlatform) NewLock() Lock { return &realLock{} }

type realLock struct {
	mu sync.Mutex
}

func (r *realLock) Lock(*Worker)   { r.mu.Lock() }
func (r *realLock) Unlock(*Worker) { r.mu.Unlock() }
