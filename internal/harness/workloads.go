package harness

import (
	"tcc/internal/collections"
	"tcc/internal/core"
	"tcc/internal/stm"
	"tcc/internal/stmcol"
)

// MapBenchParams parameterizes the TestMap / TestSortedMap /
// TestCompound micro-benchmarks (paper §6.2): a mixture of 80% lookups,
// 10% insertions and 10% removals against a single shared map, each
// operation surrounded by computation to emulate access from within
// long-running transactions.
type MapBenchParams struct {
	// TotalOps is the fixed amount of work divided among workers
	// (strong scaling, as in the paper's fixed-size benchmarks).
	TotalOps int
	// Compute is the cycles of surrounding computation per operation.
	Compute uint64
	// KeySpace is the number of distinct keys; Prepopulate of them are
	// inserted before measurement.
	KeySpace    int
	Prepopulate int
	// ReadPct and PutPct split the operation mix (the remainder are
	// removals).
	ReadPct, PutPct int
	// RangeSpan is the width of TestSortedMap's subMap range lookups.
	RangeSpan int
}

// DefaultMapParams returns the parameters used for the figures.
func DefaultMapParams() MapBenchParams {
	return MapBenchParams{
		TotalOps:    4096,
		Compute:     2000,
		KeySpace:    512,
		Prepopulate: 256,
		ReadPct:     80,
		PutPct:      10,
		RangeSpan:   8,
	}
}

// opKind is one drawn operation.
type opKind int

const (
	opRead opKind = iota
	opPut
	opRemove
)

func (p MapBenchParams) drawOp(w *Worker) (opKind, int) {
	k := w.RNG.Intn(p.KeySpace)
	r := w.RNG.Intn(100)
	switch {
	case r < p.ReadPct:
		return opRead, k
	case r < p.ReadPct+p.PutPct:
		return opPut, k
	default:
		return opRemove, k
	}
}

// Config is one benchmark configuration (one line in a figure): Setup
// builds fresh shared state on the platform and returns the per-worker
// operation executor.
type Config struct {
	Name  string
	Setup func(pl Platform) func(w *Worker)
}

// setupThread returns a throwaway transactional thread for
// pre-measurement population of transactional structures.
func setupThread() *stm.Thread { return stm.NewThread(&stm.RealClock{}, 12345) }

// MustAtomic runs fn as a top-level transaction and panics on error.
// The benchmark bodies never return errors and never call tx.Abort, so
// an error here is a harness bug; panicking loudly beats the silent
// `_ =` discard that would let a rolled-back transaction count as a
// completed operation.
func MustAtomic(th *stm.Thread, fn func(tx *stm.Tx) error) {
	if err := th.Atomic(fn); err != nil {
		panic(err)
	}
}

// MustAtomicRead runs fn as a read-only snapshot transaction (MVCC-lite
// path) and panics on error, mirroring MustAtomic for the read side of
// read-mostly workloads.
func MustAtomicRead(th *stm.Thread, fn func(tx *stm.Tx) error) {
	if err := th.AtomicRead(fn); err != nil {
		panic(err)
	}
}

// ReadRatioParams returns the figure parameters with the lookup share
// raised to readPct (puts and removes split the remainder evenly) —
// the read-mostly regimes of figures 6 and 7.
func ReadRatioParams(readPct int) MapBenchParams {
	p := DefaultMapParams()
	p.ReadPct = readPct
	p.PutPct = (100 - readPct + 1) / 2
	return p
}

// ReadRatioConfigs builds the snapshot-read sweep (figures 6 and 7):
// the Figure 1 workload at a read-heavy mix, with each structure run
// twice — lookups as ordinary retry-path transactions versus lookups as
// MVCC-lite snapshot transactions (Thread.AtomicRead). Writes always
// use the retry path. The gap between the paired lines is what the
// snapshot path buys: read transactions that never CAS a lockword,
// never take a semantic lock, and never abort, so at 90–99% reads the
// writers' commits are the only contention left.
func ReadRatioConfigs(p MapBenchParams) []Config {
	atomosSetup := func(snapshot bool) func(pl Platform) func(w *Worker) {
		return func(pl Platform) func(w *Worker) {
			m := stmcol.NewHashMap[int, int]()
			th := setupThread()
			MustAtomic(th, func(tx *stm.Tx) error {
				for i := 0; i < p.Prepopulate; i++ {
					m.Put(tx, i, i)
				}
				return nil
			})
			return func(w *Worker) {
				op, k := p.drawOp(w)
				body := func(tx *stm.Tx) error {
					w.Compute(p.Compute / 2)
					switch op {
					case opRead:
						m.Get(tx, k)
					case opPut:
						m.Put(tx, k, k)
					default:
						m.Remove(tx, k)
					}
					w.Compute(p.Compute / 2)
					return nil
				}
				if snapshot && op == opRead {
					MustAtomicRead(w.Thread, body)
				} else {
					MustAtomic(w.Thread, body)
				}
			}
		}
	}
	tccSetup := func(snapshot bool) func(pl Platform) func(w *Worker) {
		return func(pl Platform) func(w *Worker) {
			tm := core.NewStripedTransactionalMap[int, int](func() collections.Map[int, int] {
				return collections.NewHashMap[int, int]()
			}, core.DefaultStripes)
			th := setupThread()
			MustAtomic(th, func(tx *stm.Tx) error {
				for i := 0; i < p.Prepopulate; i++ {
					tm.Put(tx, i, i)
				}
				return nil
			})
			return func(w *Worker) {
				op, k := p.drawOp(w)
				body := func(tx *stm.Tx) error {
					w.Compute(p.Compute / 2)
					switch op {
					case opRead:
						tm.Get(tx, k)
					case opPut:
						tm.Put(tx, k, k)
					default:
						tm.Remove(tx, k)
					}
					w.Compute(p.Compute / 2)
					return nil
				}
				if snapshot && op == opRead {
					MustAtomicRead(w.Thread, body)
				} else {
					MustAtomic(w.Thread, body)
				}
			}
		}
	}
	return []Config{
		{Name: "Atomos HashMap (retry reads)", Setup: atomosSetup(false)},
		{Name: "Atomos HashMap (snapshot reads)", Setup: atomosSetup(true)},
		{Name: "TransactionalMap (retry reads)", Setup: tccSetup(false)},
		{Name: "TransactionalMap (snapshot reads)", Setup: tccSetup(true)},
	}
}

// TestMapConfigs builds the three Figure 1 configurations: Java HashMap
// (coarse lock per operation), Atomos HashMap (STM-instrumented map
// accessed directly inside the long transaction), and Atomos
// TransactionalMap (the wrapper).
func TestMapConfigs(p MapBenchParams) []Config {
	return []Config{
		{
			Name: "Java HashMap",
			Setup: func(pl Platform) func(w *Worker) {
				m := collections.NewHashMap[int, int]()
				for i := 0; i < p.Prepopulate; i++ {
					m.Put(i, i)
				}
				lock := pl.NewLock()
				return func(w *Worker) {
					op, k := p.drawOp(w)
					w.Compute(p.Compute / 2)
					lock.Lock(w)
					w.Compute(core.DefaultOpCost)
					switch op {
					case opRead:
						m.Get(k)
					case opPut:
						m.Put(k, k)
					default:
						m.Remove(k)
					}
					lock.Unlock(w)
					w.Compute(p.Compute / 2)
				}
			},
		},
		{
			Name: "Atomos HashMap",
			Setup: func(pl Platform) func(w *Worker) {
				m := stmcol.NewHashMap[int, int]()
				th := setupThread()
				MustAtomic(th, func(tx *stm.Tx) error {
					for i := 0; i < p.Prepopulate; i++ {
						m.Put(tx, i, i)
					}
					return nil
				})
				return func(w *Worker) {
					op, k := p.drawOp(w)
					MustAtomic(w.Thread, func(tx *stm.Tx) error {
						w.Compute(p.Compute / 2)
						switch op {
						case opRead:
							m.Get(tx, k)
						case opPut:
							m.Put(tx, k, k)
						default:
							m.Remove(tx, k)
						}
						w.Compute(p.Compute / 2)
						return nil
					})
				}
			},
		},
		{
			Name: "Atomos TransactionalMap",
			Setup: func(pl Platform) func(w *Worker) {
				tm := core.NewTransactionalMap[int, int](collections.NewHashMap[int, int]())
				th := setupThread()
				MustAtomic(th, func(tx *stm.Tx) error {
					for i := 0; i < p.Prepopulate; i++ {
						tm.Put(tx, i, i)
					}
					return nil
				})
				return func(w *Worker) {
					op, k := p.drawOp(w)
					MustAtomic(w.Thread, func(tx *stm.Tx) error {
						w.Compute(p.Compute / 2)
						switch op {
						case opRead:
							tm.Get(tx, k)
						case opPut:
							tm.Put(tx, k, k)
						default:
							tm.Remove(tx, k)
						}
						w.Compute(p.Compute / 2)
						return nil
					})
				}
			},
		},
	}
}

// DisjointMapConfigs builds the commit-guard sharding pair: the same
// 80/10/10 operation mix run against one shared TransactionalMap
// (every commit carries the same guard, and the keyspace is shared, so
// transactions both conflict and queue) versus per-worker private maps
// (pairwise-disjoint guard footprints and keyspaces, so commits neither
// conflict nor serialize). The gap between the two lines at high CPU
// counts is the workload-level view of what the per-collection guards
// buy: under the old global commit guard the per-worker line was still
// bounded by one lock shared with everyone else's handlers.
func DisjointMapConfigs(p MapBenchParams) []Config {
	// One map per possible worker; DefaultCPUs tops out at 32.
	const maxWorkers = 64
	runOp := func(w *Worker, tm *core.TransactionalMap[int, int], op opKind, k int) {
		MustAtomic(w.Thread, func(tx *stm.Tx) error {
			w.Compute(p.Compute / 2)
			switch op {
			case opRead:
				tm.Get(tx, k)
			case opPut:
				tm.Put(tx, k, k)
			default:
				tm.Remove(tx, k)
			}
			w.Compute(p.Compute / 2)
			return nil
		})
	}
	newMap := func(th *stm.Thread) *core.TransactionalMap[int, int] {
		tm := core.NewTransactionalMap[int, int](collections.NewHashMap[int, int]())
		MustAtomic(th, func(tx *stm.Tx) error {
			for i := 0; i < p.Prepopulate; i++ {
				tm.Put(tx, i, i)
			}
			return nil
		})
		return tm
	}
	return []Config{
		{
			Name: "Shared TransactionalMap",
			Setup: func(pl Platform) func(w *Worker) {
				tm := newMap(setupThread())
				return func(w *Worker) {
					op, k := p.drawOp(w)
					runOp(w, tm, op, k)
				}
			},
		},
		{
			Name: "Per-worker TransactionalMap",
			Setup: func(pl Platform) func(w *Worker) {
				th := setupThread()
				maps := make([]*core.TransactionalMap[int, int], maxWorkers)
				for i := range maps {
					maps[i] = newMap(th)
				}
				return func(w *Worker) {
					op, k := p.drawOp(w)
					runOp(w, maps[w.Index%maxWorkers], op, k)
				}
			},
		},
	}
}

// TestSortedMapConfigs builds the Figure 2 configurations: lookups are
// replaced by subMap range scans that take the median key of the
// returned range (paper §6.2).
func TestSortedMapConfigs(p MapBenchParams) []Config {
	// Range starts stay clear of the keyspace's top so [k, k+span) is
	// well formed.
	rangeStart := func(w *Worker, k int) int {
		if k >= p.KeySpace-p.RangeSpan {
			k = p.KeySpace - p.RangeSpan - 1
		}
		return k
	}
	return []Config{
		{
			Name: "Java TreeMap",
			Setup: func(pl Platform) func(w *Worker) {
				m := collections.NewTreeMap[int, int]()
				for i := 0; i < p.Prepopulate; i++ {
					m.Put(i*2, i)
				}
				lock := pl.NewLock()
				return func(w *Worker) {
					op, k := p.drawOp(w)
					w.Compute(p.Compute / 2)
					lock.Lock(w)
					w.Compute(core.DefaultOpCost)
					switch op {
					case opRead:
						lo := rangeStart(w, k)
						hi := lo + p.RangeSpan
						var keys []int
						m.AscendRange(&lo, &hi, func(kk, _ int) bool {
							keys = append(keys, kk)
							return true
						})
						if len(keys) > 0 {
							_ = keys[len(keys)/2] // median key
						}
					case opPut:
						m.Put(k, k)
					default:
						m.Remove(k)
					}
					lock.Unlock(w)
					w.Compute(p.Compute / 2)
				}
			},
		},
		{
			Name: "Atomos TreeMap",
			Setup: func(pl Platform) func(w *Worker) {
				m := stmcol.NewTreeMap[int, int]()
				th := setupThread()
				MustAtomic(th, func(tx *stm.Tx) error {
					for i := 0; i < p.Prepopulate; i++ {
						m.Put(tx, i*2, i)
					}
					return nil
				})
				return func(w *Worker) {
					op, k := p.drawOp(w)
					MustAtomic(w.Thread, func(tx *stm.Tx) error {
						w.Compute(p.Compute / 2)
						switch op {
						case opRead:
							lo := rangeStart(w, k)
							hi := lo + p.RangeSpan
							var keys []int
							m.AscendRange(tx, &lo, &hi, func(kk, _ int) bool {
								keys = append(keys, kk)
								return true
							})
							if len(keys) > 0 {
								_ = keys[len(keys)/2]
							}
						case opPut:
							m.Put(tx, k, k)
						default:
							m.Remove(tx, k)
						}
						w.Compute(p.Compute / 2)
						return nil
					})
				}
			},
		},
		{
			Name: "Atomos TransactionalSortedMap",
			Setup: func(pl Platform) func(w *Worker) {
				tm := core.NewTransactionalSortedMap[int, int](collections.NewTreeMap[int, int]())
				th := setupThread()
				MustAtomic(th, func(tx *stm.Tx) error {
					for i := 0; i < p.Prepopulate; i++ {
						tm.Put(tx, i*2, i)
					}
					return nil
				})
				return func(w *Worker) {
					op, k := p.drawOp(w)
					MustAtomic(w.Thread, func(tx *stm.Tx) error {
						w.Compute(p.Compute / 2)
						switch op {
						case opRead:
							lo := rangeStart(w, k)
							view := tm.SubMap(lo, lo+p.RangeSpan)
							keys := view.Keys(tx)
							if len(keys) > 0 {
								_ = keys[len(keys)/2]
							}
						case opPut:
							tm.Put(tx, k, k)
						default:
							tm.Remove(tx, k)
						}
						w.Compute(p.Compute / 2)
						return nil
					})
				}
			},
		},
	}
}

// TestCompoundConfigs builds the Figure 3 configurations: each
// iteration composes two map operations separated by computation. The
// Java version must hold one coarse lock across the whole compound
// operation (including the computation between the two accesses) to
// stay atomic; the Atomos versions run the loop body as one
// transaction.
func TestCompoundConfigs(p MapBenchParams) []Config {
	return []Config{
		{
			Name: "Java HashMap",
			Setup: func(pl Platform) func(w *Worker) {
				m := collections.NewHashMap[int, int]()
				for i := 0; i < p.Prepopulate; i++ {
					m.Put(i, i)
				}
				lock := pl.NewLock()
				return func(w *Worker) {
					k1 := w.RNG.Intn(p.KeySpace)
					k2 := w.RNG.Intn(p.KeySpace)
					w.Compute(p.Compute / 3)
					lock.Lock(w)
					w.Compute(core.DefaultOpCost)
					v, _ := m.Get(k1)
					w.Compute(p.Compute / 3)
					w.Compute(core.DefaultOpCost)
					m.Put(k2, v+1)
					lock.Unlock(w)
					w.Compute(p.Compute / 3)
				}
			},
		},
		{
			Name: "Atomos HashMap",
			Setup: func(pl Platform) func(w *Worker) {
				m := stmcol.NewHashMap[int, int]()
				th := setupThread()
				MustAtomic(th, func(tx *stm.Tx) error {
					for i := 0; i < p.Prepopulate; i++ {
						m.Put(tx, i, i)
					}
					return nil
				})
				return func(w *Worker) {
					k1 := w.RNG.Intn(p.KeySpace)
					k2 := w.RNG.Intn(p.KeySpace)
					MustAtomic(w.Thread, func(tx *stm.Tx) error {
						w.Compute(p.Compute / 3)
						v, _ := m.Get(tx, k1)
						w.Compute(p.Compute / 3)
						m.Put(tx, k2, v+1)
						w.Compute(p.Compute / 3)
						return nil
					})
				}
			},
		},
		{
			Name: "Atomos TransactionalMap",
			Setup: func(pl Platform) func(w *Worker) {
				tm := core.NewTransactionalMap[int, int](collections.NewHashMap[int, int]())
				th := setupThread()
				MustAtomic(th, func(tx *stm.Tx) error {
					for i := 0; i < p.Prepopulate; i++ {
						tm.Put(tx, i, i)
					}
					return nil
				})
				return func(w *Worker) {
					k1 := w.RNG.Intn(p.KeySpace)
					k2 := w.RNG.Intn(p.KeySpace)
					MustAtomic(w.Thread, func(tx *stm.Tx) error {
						w.Compute(p.Compute / 3)
						v, _ := tm.Get(tx, k1)
						w.Compute(p.Compute / 3)
						tm.Put(tx, k2, v+1)
						w.Compute(p.Compute / 3)
						return nil
					})
				}
			},
		},
	}
}

// StripedMapConfigs builds the intra-collection striping pair (figure
// 5): ONE shared map in both configurations, with each worker
// transacting over its own disjoint key range. Because no two workers
// ever touch the same key, every cross-worker interaction comes from
// the map's internal structure: the baseline single-guard
// TransactionalMap funnels all commit-handler windows (and the shared
// size counter's lock table) through one guard, while the striped map
// gives disjoint-key writers disjoint stripe guards and per-stripe
// counters, so their critical sections and handler windows never meet.
func StripedMapConfigs(p MapBenchParams) []Config {
	// One key range per possible worker; DefaultCPUs tops out at 32.
	const maxWorkers = 64
	runOp := func(w *Worker, tm *core.TransactionalMap[int, int], op opKind, k int) {
		// Offset the drawn key into the worker's private range.
		k += (w.Index % maxWorkers) * p.KeySpace
		MustAtomic(w.Thread, func(tx *stm.Tx) error {
			w.Compute(p.Compute / 2)
			switch op {
			case opRead:
				tm.Get(tx, k)
			case opPut:
				tm.Put(tx, k, k)
			default:
				tm.Remove(tx, k)
			}
			w.Compute(p.Compute / 2)
			return nil
		})
	}
	prepopulate := func(tm *core.TransactionalMap[int, int]) *core.TransactionalMap[int, int] {
		th := setupThread()
		for r := 0; r < maxWorkers; r++ {
			base := r * p.KeySpace
			MustAtomic(th, func(tx *stm.Tx) error {
				for i := 0; i < p.Prepopulate; i++ {
					tm.Put(tx, base+i, i)
				}
				return nil
			})
		}
		return tm
	}
	return []Config{
		{
			Name: "Single-guard TransactionalMap",
			Setup: func(pl Platform) func(w *Worker) {
				tm := prepopulate(core.NewTransactionalMap[int, int](collections.NewHashMap[int, int]()))
				return func(w *Worker) {
					op, k := p.drawOp(w)
					runOp(w, tm, op, k)
				}
			},
		},
		{
			Name: "Striped TransactionalMap",
			Setup: func(pl Platform) func(w *Worker) {
				tm := prepopulate(core.NewStripedTransactionalMap[int, int](func() collections.Map[int, int] {
					return collections.NewHashMap[int, int]()
				}, core.DefaultStripes))
				return func(w *Worker) {
					op, k := p.drawOp(w)
					runOp(w, tm, op, k)
				}
			},
		},
	}
}
