package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"

	"tcc/internal/obs"
	"tcc/internal/stm"
)

// Report is the machine-readable form of a tccbench run, written by the
// -stats-json flag. Like cmd/benchjson's BENCH_stm.json it carries a
// free-form note plus host identification, so committed runs can be
// compared across revisions and machines.
type Report struct {
	Note    string         `json:"note,omitempty"`
	Goos    string         `json:"goos,omitempty"`
	Goarch  string         `json:"goarch,omitempty"`
	Figures []FigureReport `json:"figures"`
}

// FigureReport is one figure's sweep.
type FigureReport struct {
	Title  string         `json:"title"`
	CPUs   []int          `json:"cpus"`
	Series []SeriesReport `json:"series"`
}

// SeriesReport is one configuration's line, one entry per CPU count.
type SeriesReport struct {
	Name string      `json:"name"`
	Runs []RunReport `json:"runs"`
}

// RunReport is a single measured run.
type RunReport struct {
	CPUs    int                `json:"cpus"`
	Speedup float64            `json:"speedup"`
	Stats   stm.Stats          `json:"stats"`
	Profile *obs.ProfileReport `json:"profile,omitempty"`
}

// BuildReport converts measured figures into the export shape.
func BuildReport(note string, figs ...Figure) Report {
	rep := Report{Note: note, Goos: runtime.GOOS, Goarch: runtime.GOARCH}
	for _, f := range figs {
		fr := FigureReport{Title: f.Title, CPUs: f.CPUs}
		for _, s := range f.Series {
			sr := SeriesReport{Name: s.Name}
			for _, n := range f.CPUs {
				rr := RunReport{CPUs: n, Speedup: s.Speedup[n], Stats: s.Stats[n]}
				if s.Profiles != nil {
					rr.Profile = s.Profiles[n]
				}
				sr.Runs = append(sr.Runs, rr)
			}
			fr.Series = append(fr.Series, sr)
		}
		rep.Figures = append(rep.Figures, fr)
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ProfileString renders each profiled run's conflict heatmap — the
// TAPE-style per-variable attribution of §6.3, one table per (series,
// CPU count) pair. Empty when the figure was run without profiling.
func (f Figure) ProfileString(top int) string {
	var b strings.Builder
	for _, s := range f.Series {
		if s.Profiles == nil {
			continue
		}
		for _, n := range f.CPUs {
			p := s.Profiles[n]
			if p == nil || p.Aborts+p.Violations == 0 {
				continue
			}
			if b.Len() == 0 {
				fmt.Fprintf(&b, "%s — conflict profiles\n", f.Title)
			}
			fmt.Fprintf(&b, "  %s @ %d CPUs:\n", s.Name, n)
			for _, line := range strings.Split(strings.TrimRight(p.Format(top), "\n"), "\n") {
				fmt.Fprintf(&b, "    %s\n", line)
			}
		}
	}
	return b.String()
}
