package harness

import (
	"context"
	"math/rand"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tcc/internal/collections"
	"tcc/internal/core"
	"tcc/internal/stm"
)

// SustainedResult is what one RunSustained call measured.
type SustainedResult struct {
	Workers int
	Elapsed time.Duration
	// Ops counts completed operations across workers.
	Ops uint64
	// Stats aggregates transactional events across workers.
	Stats stm.Stats
}

// RunSustained drives a contended session-store workload — a striped
// TransactionalMap under a mixed Get/Put/Remove/Size load — on real
// goroutines until stop closes. It is the long-running mode behind
// `tccbench -metrics-addr`: a live process the metrics plane can be
// scraped from, generating commits, memory aborts, semantic
// violations (Size readers vs writers) and snapshot reads
// continuously.
//
// Workers run under runtime/pprof labels (workload, collection,
// reads=snapshot|retry), so CPU profiles taken while the load runs
// attribute to the same names the metrics use. Even-indexed workers
// perform lookups on the MVCC-lite snapshot path, odd-indexed workers
// on the retry path.
func RunSustained(workers int, seed int64, stop <-chan struct{}) SustainedResult {
	if workers <= 0 {
		workers = 4
	}
	const (
		keySpace    = 128
		prepopulate = 64
		name        = "sessions"
	)
	m := core.NewStripedTransactionalMap(func() collections.Map[int, int] {
		return collections.NewHashMap[int, int]()
	}, core.DefaultStripes)
	m.SetName(name)
	th := setupThread()
	MustAtomic(th, func(tx *stm.Tx) error {
		for i := 0; i < prepopulate; i++ {
			m.Put(tx, i, i)
		}
		return nil
	})

	var wg sync.WaitGroup
	var mu sync.Mutex
	var agg stm.Stats
	var ops atomic.Uint64
	start := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snapshotReads := i%2 == 0
			mode := "retry"
			if snapshotReads {
				mode = "snapshot"
			}
			w := &Worker{
				Index:  i,
				Thread: stm.NewThread(&stm.RealClock{}, seed<<8|int64(i)),
				RNG:    rand.New(rand.NewSource(seed<<16 | int64(i+1))),
			}
			w.Thread.TraceID = i
			labels := pprof.Labels(
				"workload", "sustained",
				"collection", name,
				"reads", mode,
				"worker", strconv.Itoa(i),
			)
			pprof.Do(context.Background(), labels, func(context.Context) {
				n := uint64(0)
				for {
					select {
					case <-stop:
						ops.Add(n)
						mu.Lock()
						agg.Add(w.Thread.Stats)
						mu.Unlock()
						return
					default:
					}
					sustainedOp(w, m, keySpace, snapshotReads)
					n++
				}
			})
		}(i)
	}
	wg.Wait()
	return SustainedResult{
		Workers: workers,
		Elapsed: time.Since(start),
		Ops:     ops.Load(),
		Stats:   agg,
	}
}

// sustainedOp performs one drawn operation: 70% lookups (snapshot or
// retry path per worker), 15% puts, 10% removes, 5% whole-map Size
// reads — the Size share is what keeps semantic violations flowing
// (Table 2: size conflicts with any insert or remove).
func sustainedOp(w *Worker, m *core.TransactionalMap[int, int], keySpace int, snapshotReads bool) {
	k := w.RNG.Intn(keySpace)
	r := w.RNG.Intn(100)
	switch {
	case r < 70:
		body := func(tx *stm.Tx) error {
			m.Get(tx, k)
			return nil
		}
		if snapshotReads {
			MustAtomicRead(w.Thread, body)
		} else {
			MustAtomic(w.Thread, body)
		}
	case r < 85:
		MustAtomic(w.Thread, func(tx *stm.Tx) error {
			m.Put(tx, k, r)
			return nil
		})
	case r < 95:
		MustAtomic(w.Thread, func(tx *stm.Tx) error {
			m.Remove(tx, k)
			return nil
		})
	default:
		MustAtomic(w.Thread, func(tx *stm.Tx) error {
			m.Size(tx)
			return nil
		})
	}
}
