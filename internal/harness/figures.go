package harness

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"tcc/internal/obs"
	"tcc/internal/stm"
)

// DefaultCPUs is the processor sweep of the paper's figures.
var DefaultCPUs = []int{1, 2, 4, 8, 16, 32}

// Series is one configuration's line in a figure.
type Series struct {
	Name string
	// Speedup maps CPU count to speedup relative to the figure's
	// baseline (the single-CPU run of the first configuration, i.e.
	// "the single-processor Java version" per paper §6).
	Speedup map[int]float64
	// Stats maps CPU count to the aggregate transaction statistics of
	// that run, for the conflict analyses of §6.3.
	Stats map[int]stm.Stats
	// Profiles maps CPU count to the run's conflict profile. Nil unless
	// the figure was produced with FigureOptions.Profile.
	Profiles map[int]*obs.ProfileReport
}

// Figure is a full CPU sweep across configurations.
type Figure struct {
	Title  string
	CPUs   []int
	Series []Series
}

// FigureOptions selects optional instrumentation for a figure run.
type FigureOptions struct {
	// Profile attaches a fresh obs.Profile to every measured run and
	// stores its report in Series.Profiles, keyed by CPU count. The
	// profile tracer is installed after Config.Setup returns, so
	// prepopulation transactions are not attributed.
	Profile bool
}

// RunFigure sweeps every configuration across the CPU counts on the
// deterministic simulator, dividing totalOps of work evenly among
// workers, and normalizes to the first configuration's 1-CPU run.
func RunFigure(title string, configs []Config, cpus []int, totalOps int, seed int64) Figure {
	return RunFigureOpts(title, configs, cpus, totalOps, seed, FigureOptions{})
}

// RunFigureOpts is RunFigure with explicit instrumentation options.
func RunFigureOpts(title string, configs []Config, cpus []int, totalOps int, seed int64, opts FigureOptions) Figure {
	fig := Figure{Title: title, CPUs: cpus}
	var baseline float64
	for ci, cfg := range configs {
		s := Series{Name: cfg.Name, Speedup: map[int]float64{}, Stats: map[int]stm.Stats{}}
		if opts.Profile {
			s.Profiles = map[int]*obs.ProfileReport{}
		}
		for _, n := range cpus {
			pl := &SimPlatform{Seed: seed + int64(ci)}
			exec := cfg.Setup(pl)
			var prof *obs.Profile
			var prev obs.Tracer
			if opts.Profile {
				// Tee onto whatever sink the caller already installed
				// (e.g. tccbench's trace recorder); restored right after
				// the measured run so the next run's setup transactions
				// stay out of this profile.
				prev = obs.Active()
				prof = obs.NewProfile()
				obs.SetTracer(obs.Tee(prev, prof))
			}
			per := totalOps / n
			// pprof labels are inherited by goroutines spawned inside
			// Do, so every worker the platform starts is attributed to
			// this figure/config/cpus cell in CPU profiles.
			labels := pprof.Labels("figure", title, "config", cfg.Name, "cpus", strconv.Itoa(n))
			var res Result
			pprof.Do(context.Background(), labels, func(context.Context) {
				res = pl.Run(n, func(w *Worker) {
					for i := 0; i < per; i++ {
						exec(w)
					}
				})
			})
			if prof != nil {
				obs.SetTracer(prev)
				s.Profiles[n] = prof.Report()
			}
			if ci == 0 && n == cpus[0] {
				baseline = res.Elapsed
			}
			s.Speedup[n] = baseline / res.Elapsed
			s.Stats[n] = res.Stats
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// String renders the figure as the table the paper plots: one row per
// CPU count, one column per configuration, values are speedups over
// 1-CPU Java.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%-6s", "CPUs")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %-30s", s.Name)
	}
	b.WriteByte('\n')
	for _, n := range f.CPUs {
		fmt.Fprintf(&b, "%-6d", n)
		for _, s := range f.Series {
			fmt.Fprintf(&b, "  %-30.2f", s.Speedup[n])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// StatsString renders the per-run abort/violation counts, the
// TAPE-style conflict breakdown the paper's §6.3 analysis uses.
func (f Figure) StatsString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — transaction statistics (commits/aborts/violations)\n", f.Title)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %s:\n", s.Name)
		for _, n := range f.CPUs {
			st := s.Stats[n]
			fmt.Fprintf(&b, "    %2d CPUs: commits=%d aborts=%d violations=%d open=%d handlers=%d",
				n, st.Commits, st.Aborts, st.Violations, st.OpenCommits, st.HandlerRuns)
			if st.SnapshotCommits > 0 || st.SnapshotFallbacks > 0 {
				fmt.Fprintf(&b, " snapshot=%d fallbacks=%d", st.SnapshotCommits, st.SnapshotFallbacks)
			}
			b.WriteByte('\n')
			if breakdown := FormatViolationProfile(st, 3); breakdown != "" {
				fmt.Fprintf(&b, "             lost work: %s\n", breakdown)
			}
		}
	}
	return b.String()
}

// FormatViolationProfile renders the top sources of semantic lost work,
// the TAPE-style attribution the paper used to find the counters and
// tables worth wrapping (§6.3).
func FormatViolationProfile(st stm.Stats, top int) string {
	if len(st.ViolationsByReason) == 0 {
		return ""
	}
	type rc struct {
		reason string
		n      uint64
	}
	all := make([]rc, 0, len(st.ViolationsByReason))
	for r, n := range st.ViolationsByReason {
		all = append(all, rc{r, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].reason < all[j].reason
	})
	if len(all) > top {
		all = all[:top]
	}
	parts := make([]string, len(all))
	for i, e := range all {
		parts[i] = fmt.Sprintf("%s ×%d", e.reason, e.n)
	}
	return strings.Join(parts, ", ")
}
