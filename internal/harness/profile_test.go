package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"tcc/internal/obs"
)

// hotMapParams is a deliberately contended TestMap configuration: a tiny
// key space, a write-heavy mix so nearly every transaction updates the
// map's size field, and little surrounding computation so transactions
// overlap constantly.
func hotMapParams() MapBenchParams {
	return MapBenchParams{
		TotalOps:    2048,
		Compute:     64,
		KeySpace:    32,
		Prepopulate: 16,
		ReadPct:     10,
		PutPct:      45,
		RangeSpan:   4,
	}
}

// TestProfileAttributesSizeVar reproduces the paper's §6.3 finding with
// the conflict heatmap instead of TAPE: under a contended TestMap run,
// the shared HashMap size counter — not the per-bucket chains — is the
// dominant source of rolled-back work. The run is deterministic (sim
// platform, fixed seed), so the ≥80% attribution bound is stable.
func TestProfileAttributesSizeVar(t *testing.T) {
	p := hotMapParams()
	// Configuration index 1 is "Atomos HashMap": the stmcol.HashMap
	// accessed directly inside the transaction, the shape whose size
	// counter the paper calls out.
	cfg := TestMapConfigs(p)[1]
	fig := RunFigureOpts("hot TestMap", []Config{cfg}, []int{8}, p.TotalOps, 1, FigureOptions{Profile: true})

	prof := fig.Series[0].Profiles[8]
	if prof == nil {
		t.Fatal("no profile captured")
	}
	if prof.Aborts == 0 {
		t.Fatal("contended run produced no aborts; the workload is not exercising conflicts")
	}
	share := prof.HotspotShare("HashMap.size")
	if share < 0.8 {
		t.Fatalf("HashMap.size caused %.0f%% of attributed rollbacks, want >= 80%%\nheatmap:\n%s",
			share*100, prof.Format(10))
	}

	// The rendered heatmap should lead with the same hotspot.
	if got := fig.ProfileString(3); !bytes.Contains([]byte(got), []byte("HashMap.size")) {
		t.Fatalf("ProfileString missing HashMap.size:\n%s", got)
	}
}

// TestProfileRunsAreDeterministic pins that two identical profiled
// sweeps agree event-for-event — the property that makes profile
// assertions (and the golden trace test in cmd/tccbench) trustworthy.
func TestProfileRunsAreDeterministic(t *testing.T) {
	p := hotMapParams()
	run := func() *obs.ProfileReport {
		cfg := TestMapConfigs(p)[1]
		fig := RunFigureOpts("det", []Config{cfg}, []int{4}, p.TotalOps, 7, FigureOptions{Profile: true})
		return fig.Series[0].Profiles[4]
	}
	a, b := run(), run()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("profiles differ across identical runs:\n%s\nvs\n%s", aj, bj)
	}
}

// TestBuildReportRoundTrip checks the -stats-json export shape: the
// report marshals, decodes, and carries the profile through.
func TestBuildReportRoundTrip(t *testing.T) {
	p := hotMapParams()
	cfg := TestMapConfigs(p)[1]
	fig := RunFigureOpts("export", []Config{cfg}, []int{2, 4}, p.TotalOps, 3, FigureOptions{Profile: true})
	rep := BuildReport("test run", fig)

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Note != "test run" || len(back.Figures) != 1 {
		t.Fatalf("report shape wrong: %+v", back)
	}
	f := back.Figures[0]
	if len(f.Series) != 1 || len(f.Series[0].Runs) != 2 {
		t.Fatalf("series shape wrong: %+v", f)
	}
	for _, r := range f.Series[0].Runs {
		if r.Profile == nil {
			t.Fatalf("run at %d CPUs lost its profile", r.CPUs)
		}
		if r.Stats.Commits == 0 {
			t.Fatalf("run at %d CPUs has no commits", r.CPUs)
		}
	}
}
