package harness

import (
	"testing"

	"tcc/internal/stm"
)

func TestSimPlatformDeterminism(t *testing.T) {
	p := DefaultMapParams()
	p.TotalOps = 256
	run := func() float64 {
		pl := &SimPlatform{Seed: 3}
		exec := TestMapConfigs(p)[2].Setup(pl) // TransactionalMap config
		per := p.TotalOps / 4
		res := pl.Run(4, func(w *Worker) {
			for i := 0; i < per; i++ {
				exec(w)
			}
		})
		return res.Elapsed
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed gave different makespans: %v vs %v", a, b)
	}
}

func TestSimLockCostsVirtualTime(t *testing.T) {
	pl := &SimPlatform{}
	l := pl.NewLock()
	res := pl.Run(4, func(w *Worker) {
		for i := 0; i < 5; i++ {
			l.Lock(w)
			w.Compute(100)
			l.Unlock(w)
		}
	})
	if res.Elapsed < 4*5*100 {
		t.Fatalf("critical sections did not serialize: makespan %.0f", res.Elapsed)
	}
}

func TestRealPlatformRuns(t *testing.T) {
	p := DefaultMapParams()
	p.TotalOps = 64
	p.Compute = 10
	pl := &RealPlatform{Seed: 9}
	for _, cfg := range TestMapConfigs(p) {
		exec := cfg.Setup(pl)
		res := pl.Run(4, func(w *Worker) {
			for i := 0; i < p.TotalOps/4; i++ {
				exec(w)
			}
		})
		if res.Elapsed <= 0 {
			t.Fatalf("%s: elapsed %v", cfg.Name, res.Elapsed)
		}
	}
}

// TestFigure1Shape runs a small Figure 1 sweep and asserts the paper's
// qualitative result: Java and TransactionalMap scale, the plain
// STM-instrumented HashMap does not.
func TestFigure1Shape(t *testing.T) {
	p := DefaultMapParams()
	p.TotalOps = 1024
	fig := RunFigure("TestMap", TestMapConfigs(p), []int{1, 16}, p.TotalOps, 7)
	get := func(name string, n int) float64 {
		for _, s := range fig.Series {
			if s.Name == name {
				return s.Speedup[n]
			}
		}
		t.Fatalf("missing series %s", name)
		return 0
	}
	java := get("Java HashMap", 16)
	atomos := get("Atomos HashMap", 16)
	trans := get("Atomos TransactionalMap", 16)
	if java < 10 {
		t.Errorf("Java HashMap should scale: %.2f at 16 CPUs", java)
	}
	if trans < 10 {
		t.Errorf("TransactionalMap should regain scalability: %.2f at 16 CPUs", trans)
	}
	if atomos > trans*0.85 {
		t.Errorf("plain STM HashMap (%.2f) should scale worse than TransactionalMap (%.2f)", atomos, trans)
	}
	// The Atomos HashMap configuration must actually be aborting on the
	// size field.
	if fig.Series[1].Stats[16].Aborts == 0 {
		t.Error("Atomos HashMap recorded no aborts; size-field conflicts missing")
	}
	// The wrapper's conflicts must be semantic (violations), not
	// memory-level.
	if fig.Series[2].Stats[16].Aborts > fig.Series[2].Stats[16].Commits/10 {
		t.Errorf("TransactionalMap has excessive memory aborts: %+v", fig.Series[2].Stats[16])
	}
}

// TestFigure3Shape asserts the TestCompound result: the coarse-lock
// Java version is bounded by lock-hold time, while the transactional
// version composes the two operations and still scales.
func TestFigure3Shape(t *testing.T) {
	p := DefaultMapParams()
	p.TotalOps = 1024
	fig := RunFigure("TestCompound", TestCompoundConfigs(p), []int{1, 16}, p.TotalOps, 7)
	java := fig.Series[0].Speedup[16]
	trans := fig.Series[2].Speedup[16]
	if java > 5 {
		t.Errorf("Java compound should be serialized by its coarse lock: %.2f", java)
	}
	if trans < 2*java {
		t.Errorf("TransactionalMap compound (%.2f) should far exceed Java (%.2f)", trans, java)
	}
}

func TestFigureStringRendering(t *testing.T) {
	p := DefaultMapParams()
	p.TotalOps = 128
	fig := RunFigure("TestMap (smoke)", TestMapConfigs(p)[:1], []int{1, 2}, p.TotalOps, 1)
	out := fig.String()
	if len(out) == 0 || out[len(out)-1] != '\n' {
		t.Fatalf("rendering malformed: %q", out)
	}
	if fig.Series[0].Speedup[1] != 1.0 {
		t.Fatalf("baseline speedup = %v, want 1.0", fig.Series[0].Speedup[1])
	}
	if st := fig.StatsString(); len(st) == 0 {
		t.Fatal("empty stats rendering")
	}
}

// TestFigure2Shape runs a small TestSortedMap sweep and asserts the
// tree-specific claim: the STM-instrumented TreeMap stops scaling while
// the wrapper keeps up with Java.
func TestFigure2Shape(t *testing.T) {
	p := DefaultMapParams()
	p.TotalOps = 1024
	fig := RunFigure("TestSortedMap", TestSortedMapConfigs(p), []int{1, 16}, p.TotalOps, 7)
	java := fig.Series[0].Speedup[16]
	atomos := fig.Series[1].Speedup[16]
	trans := fig.Series[2].Speedup[16]
	if java < 10 {
		t.Errorf("Java TreeMap should scale: %.2f", java)
	}
	if trans < 0.8*java {
		t.Errorf("TransactionalSortedMap (%.2f) should track Java (%.2f)", trans, java)
	}
	if atomos >= trans {
		t.Errorf("Atomos TreeMap (%.2f) should lag the wrapper (%.2f)", atomos, trans)
	}
	if fig.Series[1].Stats[16].Aborts == 0 {
		t.Error("Atomos TreeMap produced no rebalancing/size aborts")
	}
}

func TestFormatViolationProfile(t *testing.T) {
	var st stm.Stats
	if got := FormatViolationProfile(st, 3); got != "" {
		t.Fatalf("empty stats rendered %q", got)
	}
	st.ViolationsByReason = map[string]uint64{
		"a: key conflict":  5,
		"b: size conflict": 9,
		"c: range":         1,
		"d: first":         1,
	}
	st.Violations = 16
	got := FormatViolationProfile(st, 2)
	want := "b: size conflict ×9, a: key conflict ×5"
	if got != want {
		t.Fatalf("profile = %q, want %q", got, want)
	}
	// Ties break alphabetically, truncation respects top.
	got = FormatViolationProfile(st, 4)
	if got != "b: size conflict ×9, a: key conflict ×5, c: range ×1, d: first ×1" {
		t.Fatalf("full profile = %q", got)
	}
}
