package stmcol

import (
	"sync"
	"testing"

	"tcc/internal/stm"
)

// TestHashMapSnapshotReads: the wrappers answer from committed state
// on the snapshot path — zero fallbacks, zero aborts.
func TestHashMapSnapshotReads(t *testing.T) {
	m := NewHashMap[int, int]().SetName("SnapMap")
	th := stm.NewThread(&stm.RealClock{}, 1)
	if err := th.Atomic(func(tx *stm.Tx) error {
		for i := 0; i < 40; i++ {
			m.Put(tx, i, i*2)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.SnapshotGet(th, 7); !ok || v != 14 {
		t.Fatalf("SnapshotGet(7) = (%d, %v), want (14, true)", v, ok)
	}
	if !m.SnapshotContainsKey(th, 0) || m.SnapshotContainsKey(th, 99) {
		t.Fatal("SnapshotContainsKey wrong")
	}
	if n := m.SnapshotSize(th); n != 40 {
		t.Fatalf("SnapshotSize = %d, want 40", n)
	}
	seen := 0
	m.SnapshotForEach(th, func(k, v int) bool {
		if v != k*2 {
			t.Errorf("entry (%d, %d) wrong", k, v)
		}
		seen++
		return true
	})
	if seen != 40 {
		t.Fatalf("SnapshotForEach visited %d entries, want 40", seen)
	}
	if th.Stats.SnapshotFallbacks != 0 || th.Stats.Aborts != 0 {
		t.Fatalf("snapshot reads fell back or aborted: %+v", th.Stats)
	}
}

// TestHashMapSnapshotWalkVsWriters: the serializability the Atomos
// baseline can't get cheaply — whole-map walks under concurrent inserts
// (including rehashes) always observe size-many entries, with zero
// aborts on the reading thread.
func TestHashMapSnapshotWalkVsWriters(t *testing.T) {
	m := NewHashMap[int, int]().SetName("WalkMap")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := stm.NewThread(&stm.RealClock{}, 9)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = w.Atomic(func(tx *stm.Tx) error {
				m.Put(tx, i, i)
				return nil
			})
		}
	}()
	reader := stm.NewThread(&stm.RealClock{}, 1)
	iters := 200
	if testing.Short() {
		iters = 40
	}
	for i := 0; i < iters; i++ {
		var size, walked int
		if err := reader.AtomicRead(func(tx *stm.Tx) error {
			size = m.Size(tx)
			walked = 0
			m.ForEach(tx, func(int, int) bool {
				walked++
				return true
			})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if size != walked {
			t.Fatalf("snapshot walk saw %d entries against size %d", walked, size)
		}
	}
	close(stop)
	wg.Wait()
	if reader.Stats.Aborts != 0 {
		t.Fatalf("snapshot reader aborted: %+v", reader.Stats)
	}
}

// TestTreeMapSnapshotReads exercises the TreeMap wrappers, including
// an ordered range walk on the snapshot path.
func TestTreeMapSnapshotReads(t *testing.T) {
	tm := NewTreeMap[int, int]().SetName("SnapTree")
	th := stm.NewThread(&stm.RealClock{}, 1)
	if err := th.Atomic(func(tx *stm.Tx) error {
		for i := 0; i < 30; i++ {
			tm.Put(tx, i, i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v, ok := tm.SnapshotGet(th, 11); !ok || v != 11 {
		t.Fatalf("SnapshotGet(11) = (%d, %v), want (11, true)", v, ok)
	}
	if n := tm.SnapshotSize(th); n != 30 {
		t.Fatalf("SnapshotSize = %d, want 30", n)
	}
	var order []int
	tm.SnapshotForEach(th, func(k, _ int) bool {
		order = append(order, k)
		return true
	})
	for i, k := range order {
		if k != i {
			t.Fatalf("snapshot walk out of order at %d: %v", i, order)
		}
	}
	lo, hi := 10, 20
	var ranged []int
	tm.SnapshotAscendRange(th, &lo, &hi, func(k, _ int) bool {
		ranged = append(ranged, k)
		return true
	})
	if len(ranged) != 10 || ranged[0] != 10 || ranged[9] != 19 {
		t.Fatalf("SnapshotAscendRange = %v, want 10..19", ranged)
	}
	if th.Stats.SnapshotFallbacks != 0 || th.Stats.Aborts != 0 {
		t.Fatalf("snapshot reads fell back or aborted: %+v", th.Stats)
	}
}

// TestTreeMapSnapshotWalkVsRebalance walks the tree while writers force
// rotations; the snapshot must stay in order and internally consistent.
func TestTreeMapSnapshotWalkVsRebalance(t *testing.T) {
	tm := NewTreeMap[int, int]().SetName("RotTree")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := stm.NewThread(&stm.RealClock{}, 9)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = w.Atomic(func(tx *stm.Tx) error {
				tm.Put(tx, i, i)
				return nil
			})
		}
	}()
	reader := stm.NewThread(&stm.RealClock{}, 1)
	iters := 200
	if testing.Short() {
		iters = 40
	}
	for i := 0; i < iters; i++ {
		var size, walked, prev int
		prev = -1
		ordered := true
		if err := reader.AtomicRead(func(tx *stm.Tx) error {
			size = tm.Size(tx)
			walked, prev, ordered = 0, -1, true
			tm.ForEach(tx, func(k, _ int) bool {
				if k <= prev {
					ordered = false
				}
				prev = k
				walked++
				return true
			})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !ordered {
			t.Fatal("snapshot walk observed keys out of order")
		}
		if size != walked {
			t.Fatalf("snapshot walk saw %d entries against size %d", walked, size)
		}
	}
	close(stop)
	wg.Wait()
	if reader.Stats.Aborts != 0 {
		t.Fatalf("snapshot reader aborted: %+v", reader.Stats)
	}
}
