package stmcol

import (
	"cmp"

	"tcc/internal/stm"
)

// TreeMap is a red-black tree (transliterated from the classic
// java.util.TreeMap formulation) whose every mutable field — child and
// parent links, colors, keys, values, root, size — is a transactional
// variable. Rebalancing rotations and recolorings therefore write nodes
// on other transactions' lookup paths, producing the non-semantic
// conflicts that keep the paper's "Atomos TreeMap" from scaling
// (Figure 2).
type TreeMap[K comparable, V any] struct {
	cmp  func(a, b K) int
	root *stm.Var[*TNode[K, V]]
	size *stm.Var[int]
	// Observability labels. Per-node vars share two label strings —
	// "name.node" for structural fields (links and colors, written by
	// rotations) and "name.entry" for key/value fields — so the
	// conflict heatmap aggregates rotation conflicts into one row
	// instead of one row per node.
	nodeLabel  string
	entryLabel string
}

// TNode is a tree node; exported only within the package's API surface
// so iterators can hold positions.
type TNode[K comparable, V any] struct {
	key                 *stm.Var[K]
	val                 *stm.Var[V]
	left, right, parent *stm.Var[*TNode[K, V]]
	red                 *stm.Var[bool]
}

func (t *TreeMap[K, V]) newTNode(k K, v V, parent *TNode[K, V]) *TNode[K, V] {
	return &TNode[K, V]{
		key:    stm.NewVar(k).SetLabel(t.entryLabel),
		val:    stm.NewVar(v).SetLabel(t.entryLabel),
		left:   stm.NewVar[*TNode[K, V]](nil).SetLabel(t.nodeLabel),
		right:  stm.NewVar[*TNode[K, V]](nil).SetLabel(t.nodeLabel),
		parent: stm.NewVar(parent).SetLabel(t.nodeLabel),
		red:    stm.NewVar(false).SetLabel(t.nodeLabel),
	}
}

// NewTreeMap creates an empty transactional tree map ordered by
// cmp.Compare.
func NewTreeMap[K cmp.Ordered, V any]() *TreeMap[K, V] {
	return NewTreeMapFunc[K, V](cmp.Compare[K])
}

// NewTreeMapFunc creates an empty transactional tree map with an
// explicit comparator.
func NewTreeMapFunc[K comparable, V any](compare func(a, b K) int) *TreeMap[K, V] {
	t := &TreeMap[K, V]{
		cmp:  compare,
		root: stm.NewVar[*TNode[K, V]](nil),
		size: stm.NewVar(0),
	}
	t.SetName("TreeMap")
	return t
}

// SetName labels the tree's vars for conflict attribution
// ("name.root", "name.size", "name.node", "name.entry"). Nodes created
// before the rename keep their old labels; call before populating.
func (t *TreeMap[K, V]) SetName(name string) *TreeMap[K, V] {
	t.root.SetLabel(name + ".root")
	t.size.SetLabel(name + ".size")
	t.nodeLabel = name + ".node"
	t.entryLabel = name + ".entry"
	return t
}

// Null-safe helpers, mirroring java.util.TreeMap's colorOf/parentOf/
// leftOf/rightOf: absent nodes are black.
func isRed[K comparable, V any](tx *stm.Tx, n *TNode[K, V]) bool {
	return n != nil && n.red.Get(tx)
}

func setRed[K comparable, V any](tx *stm.Tx, n *TNode[K, V], red bool) {
	if n != nil {
		n.red.Set(tx, red)
	}
}

func parentOf[K comparable, V any](tx *stm.Tx, n *TNode[K, V]) *TNode[K, V] {
	if n == nil {
		return nil
	}
	return n.parent.Get(tx)
}

func leftOf[K comparable, V any](tx *stm.Tx, n *TNode[K, V]) *TNode[K, V] {
	if n == nil {
		return nil
	}
	return n.left.Get(tx)
}

func rightOf[K comparable, V any](tx *stm.Tx, n *TNode[K, V]) *TNode[K, V] {
	if n == nil {
		return nil
	}
	return n.right.Get(tx)
}

func (t *TreeMap[K, V]) getEntry(tx *stm.Tx, k K) *TNode[K, V] {
	n := t.root.Get(tx)
	for n != nil {
		c := t.cmp(k, n.key.Get(tx))
		switch {
		case c < 0:
			n = n.left.Get(tx)
		case c > 0:
			n = n.right.Get(tx)
		default:
			return n
		}
	}
	return nil
}

// Get returns the value mapped to k.
func (t *TreeMap[K, V]) Get(tx *stm.Tx, k K) (V, bool) {
	if n := t.getEntry(tx, k); n != nil {
		return n.val.Get(tx), true
	}
	var zero V
	return zero, false
}

// ContainsKey reports whether k is mapped.
func (t *TreeMap[K, V]) ContainsKey(tx *stm.Tx, k K) bool {
	return t.getEntry(tx, k) != nil
}

// Size returns the number of mappings.
func (t *TreeMap[K, V]) Size(tx *stm.Tx) int { return t.size.Get(tx) }

// Put maps k to v, returning the previous value if k was present.
func (t *TreeMap[K, V]) Put(tx *stm.Tx, k K, v V) (V, bool) {
	var zero V
	n := t.root.Get(tx)
	if n == nil {
		t.root.Set(tx, t.newTNode(k, v, nil))
		t.size.Set(tx, 1)
		return zero, false
	}
	var parent *TNode[K, V]
	var c int
	for n != nil {
		parent = n
		c = t.cmp(k, n.key.Get(tx))
		switch {
		case c < 0:
			n = n.left.Get(tx)
		case c > 0:
			n = n.right.Get(tx)
		default:
			old := n.val.Get(tx)
			n.val.Set(tx, v)
			return old, true
		}
	}
	e := t.newTNode(k, v, parent)
	if c < 0 {
		parent.left.Set(tx, e)
	} else {
		parent.right.Set(tx, e)
	}
	t.fixAfterInsertion(tx, e)
	t.size.Set(tx, t.size.Get(tx)+1)
	return zero, false
}

func (t *TreeMap[K, V]) rotateLeft(tx *stm.Tx, p *TNode[K, V]) {
	if p == nil {
		return
	}
	r := p.right.Get(tx)
	p.right.Set(tx, r.left.Get(tx))
	if rl := r.left.Get(tx); rl != nil {
		rl.parent.Set(tx, p)
	}
	pp := p.parent.Get(tx)
	r.parent.Set(tx, pp)
	switch {
	case pp == nil:
		t.root.Set(tx, r)
	case pp.left.Get(tx) == p:
		pp.left.Set(tx, r)
	default:
		pp.right.Set(tx, r)
	}
	r.left.Set(tx, p)
	p.parent.Set(tx, r)
}

func (t *TreeMap[K, V]) rotateRight(tx *stm.Tx, p *TNode[K, V]) {
	if p == nil {
		return
	}
	l := p.left.Get(tx)
	p.left.Set(tx, l.right.Get(tx))
	if lr := l.right.Get(tx); lr != nil {
		lr.parent.Set(tx, p)
	}
	pp := p.parent.Get(tx)
	l.parent.Set(tx, pp)
	switch {
	case pp == nil:
		t.root.Set(tx, l)
	case pp.right.Get(tx) == p:
		pp.right.Set(tx, l)
	default:
		pp.left.Set(tx, l)
	}
	l.right.Set(tx, p)
	p.parent.Set(tx, l)
}

func (t *TreeMap[K, V]) fixAfterInsertion(tx *stm.Tx, x *TNode[K, V]) {
	x.red.Set(tx, true)
	for x != nil && x != t.root.Get(tx) && isRed(tx, parentOf(tx, x)) {
		p := parentOf(tx, x)
		g := parentOf(tx, p)
		if p == leftOf(tx, g) {
			y := rightOf(tx, g)
			if isRed(tx, y) {
				setRed(tx, p, false)
				setRed(tx, y, false)
				setRed(tx, g, true)
				x = g
			} else {
				if x == rightOf(tx, p) {
					x = p
					t.rotateLeft(tx, x)
				}
				setRed(tx, parentOf(tx, x), false)
				setRed(tx, parentOf(tx, parentOf(tx, x)), true)
				t.rotateRight(tx, parentOf(tx, parentOf(tx, x)))
			}
		} else {
			y := leftOf(tx, g)
			if isRed(tx, y) {
				setRed(tx, p, false)
				setRed(tx, y, false)
				setRed(tx, g, true)
				x = g
			} else {
				if x == leftOf(tx, p) {
					x = p
					t.rotateRight(tx, x)
				}
				setRed(tx, parentOf(tx, x), false)
				setRed(tx, parentOf(tx, parentOf(tx, x)), true)
				t.rotateLeft(tx, parentOf(tx, parentOf(tx, x)))
			}
		}
	}
	t.root.Get(tx).red.Set(tx, false)
}

// Remove deletes k's mapping, returning the removed value if present.
func (t *TreeMap[K, V]) Remove(tx *stm.Tx, k K) (V, bool) {
	p := t.getEntry(tx, k)
	if p == nil {
		var zero V
		return zero, false
	}
	old := p.val.Get(tx)
	t.deleteEntry(tx, p)
	t.size.Set(tx, t.size.Get(tx)-1)
	return old, true
}

func (t *TreeMap[K, V]) minimum(tx *stm.Tx, n *TNode[K, V]) *TNode[K, V] {
	for l := n.left.Get(tx); l != nil; l = n.left.Get(tx) {
		n = l
	}
	return n
}

func (t *TreeMap[K, V]) maximum(tx *stm.Tx, n *TNode[K, V]) *TNode[K, V] {
	for r := n.right.Get(tx); r != nil; r = n.right.Get(tx) {
		n = r
	}
	return n
}

// successor returns the in-order successor of n.
func (t *TreeMap[K, V]) successor(tx *stm.Tx, n *TNode[K, V]) *TNode[K, V] {
	if n == nil {
		return nil
	}
	if r := n.right.Get(tx); r != nil {
		return t.minimum(tx, r)
	}
	p := n.parent.Get(tx)
	ch := n
	for p != nil && ch == p.right.Get(tx) {
		ch = p
		p = p.parent.Get(tx)
	}
	return p
}

func (t *TreeMap[K, V]) deleteEntry(tx *stm.Tx, p *TNode[K, V]) {
	// Internal node: copy successor's key/value, then delete successor.
	if p.left.Get(tx) != nil && p.right.Get(tx) != nil {
		s := t.successor(tx, p)
		p.key.Set(tx, s.key.Get(tx))
		p.val.Set(tx, s.val.Get(tx))
		p = s
	}
	replacement := p.left.Get(tx)
	if replacement == nil {
		replacement = p.right.Get(tx)
	}
	pp := p.parent.Get(tx)
	if replacement != nil {
		replacement.parent.Set(tx, pp)
		switch {
		case pp == nil:
			t.root.Set(tx, replacement)
		case p == pp.left.Get(tx):
			pp.left.Set(tx, replacement)
		default:
			pp.right.Set(tx, replacement)
		}
		if !p.red.Get(tx) {
			t.fixAfterDeletion(tx, replacement)
		}
	} else if pp == nil {
		t.root.Set(tx, nil)
	} else {
		// No children: fix with p still linked, then unlink (the
		// java.util.TreeMap trick that avoids a sentinel).
		if !p.red.Get(tx) {
			t.fixAfterDeletion(tx, p)
		}
		if gp := p.parent.Get(tx); gp != nil {
			if p == gp.left.Get(tx) {
				gp.left.Set(tx, nil)
			} else {
				gp.right.Set(tx, nil)
			}
			p.parent.Set(tx, nil)
		}
	}
}

func (t *TreeMap[K, V]) fixAfterDeletion(tx *stm.Tx, x *TNode[K, V]) {
	for x != t.root.Get(tx) && !isRed(tx, x) {
		p := parentOf(tx, x)
		if x == leftOf(tx, p) {
			sib := rightOf(tx, p)
			if isRed(tx, sib) {
				setRed(tx, sib, false)
				setRed(tx, p, true)
				t.rotateLeft(tx, p)
				p = parentOf(tx, x)
				sib = rightOf(tx, p)
			}
			if !isRed(tx, leftOf(tx, sib)) && !isRed(tx, rightOf(tx, sib)) {
				setRed(tx, sib, true)
				x = p
			} else {
				if !isRed(tx, rightOf(tx, sib)) {
					setRed(tx, leftOf(tx, sib), false)
					setRed(tx, sib, true)
					t.rotateRight(tx, sib)
					p = parentOf(tx, x)
					sib = rightOf(tx, p)
				}
				setRed(tx, sib, isRed(tx, p))
				setRed(tx, p, false)
				setRed(tx, rightOf(tx, sib), false)
				t.rotateLeft(tx, p)
				x = t.root.Get(tx)
			}
		} else {
			sib := leftOf(tx, p)
			if isRed(tx, sib) {
				setRed(tx, sib, false)
				setRed(tx, p, true)
				t.rotateRight(tx, p)
				p = parentOf(tx, x)
				sib = leftOf(tx, p)
			}
			if !isRed(tx, rightOf(tx, sib)) && !isRed(tx, leftOf(tx, sib)) {
				setRed(tx, sib, true)
				x = p
			} else {
				if !isRed(tx, leftOf(tx, sib)) {
					setRed(tx, rightOf(tx, sib), false)
					setRed(tx, sib, true)
					t.rotateLeft(tx, sib)
					p = parentOf(tx, x)
					sib = leftOf(tx, p)
				}
				setRed(tx, sib, isRed(tx, p))
				setRed(tx, p, false)
				setRed(tx, leftOf(tx, sib), false)
				t.rotateRight(tx, p)
				x = t.root.Get(tx)
			}
		}
	}
	setRed(tx, x, false)
}

// FirstKey returns the minimum key.
func (t *TreeMap[K, V]) FirstKey(tx *stm.Tx) (K, bool) {
	n := t.root.Get(tx)
	if n == nil {
		var zero K
		return zero, false
	}
	return t.minimum(tx, n).key.Get(tx), true
}

// LastKey returns the maximum key.
func (t *TreeMap[K, V]) LastKey(tx *stm.Tx) (K, bool) {
	n := t.root.Get(tx)
	if n == nil {
		var zero K
		return zero, false
	}
	return t.maximum(tx, n).key.Get(tx), true
}

// ceilingEntry returns the node with the smallest key >= k (> k when
// strict).
func (t *TreeMap[K, V]) ceilingEntry(tx *stm.Tx, k K, strict bool) *TNode[K, V] {
	var best *TNode[K, V]
	n := t.root.Get(tx)
	for n != nil {
		switch c := t.cmp(k, n.key.Get(tx)); {
		case c < 0:
			best = n
			n = n.left.Get(tx)
		case c > 0:
			n = n.right.Get(tx)
		case strict:
			n = n.right.Get(tx)
		default:
			return n
		}
	}
	return best
}

// CeilingKey returns the smallest key >= k.
func (t *TreeMap[K, V]) CeilingKey(tx *stm.Tx, k K) (K, bool) {
	if n := t.ceilingEntry(tx, k, false); n != nil {
		return n.key.Get(tx), true
	}
	var zero K
	return zero, false
}

// HigherKey returns the smallest key > k.
func (t *TreeMap[K, V]) HigherKey(tx *stm.Tx, k K) (K, bool) {
	if n := t.ceilingEntry(tx, k, true); n != nil {
		return n.key.Get(tx), true
	}
	var zero K
	return zero, false
}

// AscendRange visits mappings with lo <= key < hi in ascending order
// until fn returns false; nil bounds are unbounded.
func (t *TreeMap[K, V]) AscendRange(tx *stm.Tx, lo, hi *K, fn func(k K, v V) bool) {
	var n *TNode[K, V]
	if lo == nil {
		if r := t.root.Get(tx); r != nil {
			n = t.minimum(tx, r)
		}
	} else {
		n = t.ceilingEntry(tx, *lo, false)
	}
	for n != nil {
		k := n.key.Get(tx)
		if hi != nil && t.cmp(k, *hi) >= 0 {
			return
		}
		if !fn(k, n.val.Get(tx)) {
			return
		}
		n = t.successor(tx, n)
	}
}

// ForEach visits every mapping in ascending key order until fn returns
// false.
func (t *TreeMap[K, V]) ForEach(tx *stm.Tx, fn func(k K, v V) bool) {
	t.AscendRange(tx, nil, nil, fn)
}
