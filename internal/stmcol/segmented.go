package stmcol

// SegmentedHashMap is a ConcurrentHashMap-style hash table partitioned
// into independent segments, each with its own buckets and size field.
// The paper (§2.4) observes that segmentation only *statistically*
// reduces transactional conflicts: two long transactions that each
// touch several keys still collide on a shared segment's size field
// with high probability. BenchmarkAblationSegmented measures exactly
// that claim against TransactionalMap.

import (
	"strconv"

	"tcc/internal/stm"
)

// SegmentedHashMap divides the key space across nSeg independent
// transactional hash maps.
type SegmentedHashMap[K comparable, V any] struct {
	segments []*HashMap[K, V]
	mask     uint64
}

// NewSegmentedHashMap creates a map with nSeg segments; nSeg must be a
// power of two (like java.util.concurrent.ConcurrentHashMap's
// concurrency level).
func NewSegmentedHashMap[K comparable, V any](nSeg int) *SegmentedHashMap[K, V] {
	if nSeg <= 0 || nSeg&(nSeg-1) != 0 {
		panic("stmcol: segment count must be a positive power of two")
	}
	m := &SegmentedHashMap[K, V]{mask: uint64(nSeg - 1)}
	for i := 0; i < nSeg; i++ {
		seg := NewHashMap[K, V]().SetName("SegmentedHashMap.seg[" + strconv.Itoa(i) + "]")
		m.segments = append(m.segments, seg)
	}
	return m
}

func (m *SegmentedHashMap[K, V]) segment(k K) *HashMap[K, V] {
	// Use the high hash bits for segment selection so segment and
	// bucket indices stay independent.
	return m.segments[(hashKey(k)>>32)&m.mask]
}

// Get returns the value mapped to k.
func (m *SegmentedHashMap[K, V]) Get(tx *stm.Tx, k K) (V, bool) {
	return m.segment(k).Get(tx, k)
}

// Put maps k to v, returning the previous value if k was present.
func (m *SegmentedHashMap[K, V]) Put(tx *stm.Tx, k K, v V) (V, bool) {
	return m.segment(k).Put(tx, k, v)
}

// Remove deletes k's mapping, returning the removed value if present.
func (m *SegmentedHashMap[K, V]) Remove(tx *stm.Tx, k K) (V, bool) {
	return m.segment(k).Remove(tx, k)
}

// ContainsKey reports whether k is mapped.
func (m *SegmentedHashMap[K, V]) ContainsKey(tx *stm.Tx, k K) bool {
	return m.segment(k).ContainsKey(tx, k)
}

// Size sums the per-segment sizes; it reads every segment's size field,
// exactly like ConcurrentHashMap.size().
func (m *SegmentedHashMap[K, V]) Size(tx *stm.Tx) int {
	total := 0
	for _, s := range m.segments {
		total += s.Size(tx)
	}
	return total
}
