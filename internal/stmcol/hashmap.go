// Package stmcol provides STM-instrumented collections: structurally the
// same HashMap / TreeMap / Queue as internal/collections, but with every
// mutable field held in an stm.Var so that using them *directly* inside
// a long-running transaction creates exactly the memory-level
// dependencies the paper describes — every insert or remove reads and
// writes the internal size field, puts conflict on collision chains,
// and tree rebalancing writes spill across lookup paths (§2.4).
//
// These are the paper's "Atomos HashMap" and "Atomos TreeMap" baseline
// configurations. The transactional collection classes in internal/core
// exist to replace this usage pattern.
package stmcol

import (
	"hash/maphash"
	"strconv"

	"tcc/internal/stm"
)

var hashSeed = maphash.MakeSeed()

// HashMap is a bucketed, load-factored hash table whose buckets, table
// and size field are transactional variables. Collision chains are
// immutable once published; mutation copies the chain prefix and swings
// the bucket var, which gives bucket-granularity conflicts plus the
// size-field hotspot.
type HashMap[K comparable, V any] struct {
	table *stm.Var[*hTable[K, V]]
	size  *stm.Var[int]
	// name prefixes the observability labels of the map's internal
	// vars, so conflict heatmaps attribute aborts to e.g.
	// "TestMap.size" — the paper's §6.3 "global counters" finding.
	name string
}

type hTable[K comparable, V any] struct {
	buckets   []*stm.Var[*hNode[K, V]]
	threshold int
}

type hNode[K comparable, V any] struct {
	hash uint64
	key  K
	val  V
	next *hNode[K, V]
}

const (
	initialBuckets = 16
	loadFactorNum  = 3
	loadFactorDen  = 4
)

// NewHashMap creates an empty transactional hash map.
func NewHashMap[K comparable, V any]() *HashMap[K, V] {
	m := &HashMap[K, V]{
		table: stm.NewVar(newHTable[K, V](initialBuckets)),
		size:  stm.NewVar(0),
	}
	m.SetName("HashMap")
	return m
}

// SetName labels the map's internal vars for conflict attribution
// ("name.size", "name.table", "name.bucket[i]"). Call before sharing
// the map with concurrent transactions.
func (m *HashMap[K, V]) SetName(name string) *HashMap[K, V] {
	m.name = name
	m.size.SetLabel(name + ".size")
	m.table.SetLabel(name + ".table")
	labelBuckets(name, m.table.GetCommitted())
	return m
}

func labelBuckets[K comparable, V any](name string, t *hTable[K, V]) {
	for i, b := range t.buckets {
		b.SetLabel(name + ".bucket[" + strconv.Itoa(i) + "]")
	}
}

func newHTable[K comparable, V any](n int) *hTable[K, V] {
	t := &hTable[K, V]{
		buckets:   make([]*stm.Var[*hNode[K, V]], n),
		threshold: n * loadFactorNum / loadFactorDen,
	}
	for i := range t.buckets {
		t.buckets[i] = stm.NewVar[*hNode[K, V]](nil)
	}
	return t
}

func hashKey[K comparable](k K) uint64 {
	return maphash.Comparable(hashSeed, k)
}

func (t *hTable[K, V]) bucketFor(h uint64) *stm.Var[*hNode[K, V]] {
	return t.buckets[int(h&uint64(len(t.buckets)-1))]
}

// Get returns the value mapped to k.
func (m *HashMap[K, V]) Get(tx *stm.Tx, k K) (V, bool) {
	h := hashKey(k)
	t := m.table.Get(tx)
	for n := t.bucketFor(h).Get(tx); n != nil; n = n.next {
		if n.hash == h && n.key == k {
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// ContainsKey reports whether k is mapped.
func (m *HashMap[K, V]) ContainsKey(tx *stm.Tx, k K) bool {
	_, ok := m.Get(tx, k)
	return ok
}

// Put maps k to v, returning the previous value if k was present. New
// insertions read and write the shared size field — the conflict the
// paper's §2.4 example is built around.
func (m *HashMap[K, V]) Put(tx *stm.Tx, k K, v V) (V, bool) {
	h := hashKey(k)
	t := m.table.Get(tx)
	b := t.bucketFor(h)
	head := b.Get(tx)
	for n := head; n != nil; n = n.next {
		if n.hash == h && n.key == k {
			b.Set(tx, replaceNode(head, n, &hNode[K, V]{hash: h, key: k, val: v, next: n.next}))
			return n.val, true
		}
	}
	b.Set(tx, &hNode[K, V]{hash: h, key: k, val: v, next: head})
	sz := m.size.Get(tx) + 1
	m.size.Set(tx, sz)
	if sz > t.threshold {
		m.rehash(tx, t)
	}
	var zero V
	return zero, false
}

// replaceNode returns a copy of the chain with target replaced.
func replaceNode[K comparable, V any](head, target, repl *hNode[K, V]) *hNode[K, V] {
	if head == target {
		return repl
	}
	return &hNode[K, V]{hash: head.hash, key: head.key, val: head.val, next: replaceNode(head.next, target, repl)}
}

// Remove deletes k's mapping, returning the removed value if present.
func (m *HashMap[K, V]) Remove(tx *stm.Tx, k K) (V, bool) {
	h := hashKey(k)
	t := m.table.Get(tx)
	b := t.bucketFor(h)
	head := b.Get(tx)
	for n := head; n != nil; n = n.next {
		if n.hash == h && n.key == k {
			b.Set(tx, removeNode(head, n))
			m.size.Set(tx, m.size.Get(tx)-1)
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// removeNode returns a copy of the chain without target.
func removeNode[K comparable, V any](head, target *hNode[K, V]) *hNode[K, V] {
	if head == target {
		return head.next
	}
	return &hNode[K, V]{hash: head.hash, key: head.key, val: head.val, next: removeNode(head.next, target)}
}

func (m *HashMap[K, V]) rehash(tx *stm.Tx, old *hTable[K, V]) {
	nt := newHTable[K, V](len(old.buckets) * 2)
	// The new table is still private to this transaction; label its
	// buckets before it is published through m.table.
	labelBuckets(m.name, nt)
	for _, b := range old.buckets {
		for n := b.Get(tx); n != nil; n = n.next {
			nb := nt.bucketFor(n.hash)
			nb.Set(tx, &hNode[K, V]{hash: n.hash, key: n.key, val: n.val, next: nb.Get(tx)})
		}
	}
	m.table.Set(tx, nt)
}

// Size returns the number of mappings; reading it depends on every
// concurrent insert and remove, which is why the paper's size() takes a
// semantic lock instead when wrapped.
func (m *HashMap[K, V]) Size(tx *stm.Tx) int { return m.size.Get(tx) }

// ForEach visits every mapping until fn returns false.
func (m *HashMap[K, V]) ForEach(tx *stm.Tx, fn func(k K, v V) bool) {
	t := m.table.Get(tx)
	for _, b := range t.buckets {
		for n := b.Get(tx); n != nil; n = n.next {
			if !fn(n.key, n.val) {
				return
			}
		}
	}
}
