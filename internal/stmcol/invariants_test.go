package stmcol

import (
	"fmt"
	"math/rand"
	"testing"

	"tcc/internal/stm"
)

// checkRB verifies the red-black properties of the STM tree inside a
// transaction: black root, no red-red edges, uniform black height, BST
// order, and consistent parent links.
func checkRB[K comparable, V any](tx *stm.Tx, t *TreeMap[K, V]) error {
	root := t.root.Get(tx)
	if root == nil {
		return nil
	}
	if root.red.Get(tx) {
		return fmt.Errorf("red root")
	}
	_, err := checkRBNode(tx, t, root, nil)
	return err
}

func checkRBNode[K comparable, V any](tx *stm.Tx, t *TreeMap[K, V], n, parent *TNode[K, V]) (int, error) {
	if n == nil {
		return 1, nil
	}
	if p := n.parent.Get(tx); p != parent {
		return 0, fmt.Errorf("broken parent link")
	}
	l, r := n.left.Get(tx), n.right.Get(tx)
	if n.red.Get(tx) && (isRed(tx, l) || isRed(tx, r)) {
		return 0, fmt.Errorf("red-red edge")
	}
	k := n.key.Get(tx)
	if l != nil && t.cmp(l.key.Get(tx), k) >= 0 {
		return 0, fmt.Errorf("BST order violated (left)")
	}
	if r != nil && t.cmp(r.key.Get(tx), k) <= 0 {
		return 0, fmt.Errorf("BST order violated (right)")
	}
	lh, err := checkRBNode(tx, t, l, n)
	if err != nil {
		return 0, err
	}
	rh, err := checkRBNode(tx, t, r, n)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("black-height imbalance (%d vs %d)", lh, rh)
	}
	if n.red.Get(tx) {
		return lh, nil
	}
	return lh + 1, nil
}

func TestTreeMapInvariantsUnderChurn(t *testing.T) {
	m := NewTreeMap[int, int]()
	th := newTh()
	rng := rand.New(rand.NewSource(11))
	present := map[int]bool{}
	for round := 0; round < 150; round++ {
		if err := th.Atomic(func(tx *stm.Tx) error {
			for i := 0; i < 10; i++ {
				k := rng.Intn(200)
				if rng.Intn(2) == 0 {
					m.Put(tx, k, k)
					present[k] = true
				} else {
					m.Remove(tx, k)
					delete(present, k)
				}
			}
			return checkRB(tx, m)
		}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if err := th.Atomic(func(tx *stm.Tx) error {
		if got := m.Size(tx); got != len(present) {
			return fmt.Errorf("size %d, want %d", got, len(present))
		}
		return checkRB(tx, m)
	}); err != nil {
		t.Fatal(err)
	}
}
