package stmcol

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"tcc/internal/stm"
)

func run1(t *testing.T, th *stm.Thread, fn func(tx *stm.Tx)) {
	t.Helper()
	if err := th.Atomic(func(tx *stm.Tx) error {
		fn(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func newTh() *stm.Thread { return stm.NewThread(&stm.RealClock{}, 1) }

func TestHashMapSingleThread(t *testing.T) {
	m := NewHashMap[int, string]()
	th := newTh()
	run1(t, th, func(tx *stm.Tx) {
		if _, ok := m.Get(tx, 1); ok {
			t.Error("empty map get succeeded")
		}
		if _, had := m.Put(tx, 1, "a"); had {
			t.Error("first put had previous value")
		}
		if v, ok := m.Get(tx, 1); !ok || v != "a" {
			t.Errorf("get = (%q,%v)", v, ok)
		}
		if old, had := m.Put(tx, 1, "b"); !had || old != "a" {
			t.Errorf("overwrite = (%q,%v)", old, had)
		}
		if m.Size(tx) != 1 {
			t.Errorf("size = %d", m.Size(tx))
		}
		if v, ok := m.Remove(tx, 1); !ok || v != "b" {
			t.Errorf("remove = (%q,%v)", v, ok)
		}
		if m.Size(tx) != 0 {
			t.Errorf("size after remove = %d", m.Size(tx))
		}
	})
}

func TestHashMapResizeInsideTx(t *testing.T) {
	m := NewHashMap[int, int]()
	th := newTh()
	const n = 2000
	run1(t, th, func(tx *stm.Tx) {
		for i := 0; i < n; i++ {
			m.Put(tx, i, i*3)
		}
	})
	run1(t, th, func(tx *stm.Tx) {
		if m.Size(tx) != n {
			t.Errorf("size = %d, want %d", m.Size(tx), n)
		}
		for i := 0; i < n; i++ {
			if v, ok := m.Get(tx, i); !ok || v != i*3 {
				t.Fatalf("get(%d) = (%d,%v)", i, v, ok)
			}
		}
	})
}

func TestHashMapAbortRollsBack(t *testing.T) {
	m := NewHashMap[int, int]()
	th := newTh()
	run1(t, th, func(tx *stm.Tx) { m.Put(tx, 1, 1) })
	errBoom := errTest("boom")
	if err := th.Atomic(func(tx *stm.Tx) error {
		m.Put(tx, 2, 2)
		m.Remove(tx, 1)
		return errBoom
	}); err != errBoom {
		t.Fatal(err)
	}
	run1(t, th, func(tx *stm.Tx) {
		if !m.ContainsKey(tx, 1) || m.ContainsKey(tx, 2) {
			t.Error("aborted transaction leaked structure changes")
		}
		if m.Size(tx) != 1 {
			t.Errorf("size = %d, want 1", m.Size(tx))
		}
	})
}

type errTest string

func (e errTest) Error() string { return string(e) }

// TestHashMapConcurrentInsertsConflictOnSize demonstrates the paper's
// §2.4 point: transactions inserting *different* keys still conflict
// because both increment the shared size field. With only two workers
// strictly alternating there must be aborts under any interleaving that
// overlaps, which the STM's optimistic commit produces reliably when
// bodies are forced to overlap via a barrier.
func TestHashMapConcurrentInsertsConflictOnSize(t *testing.T) {
	m := NewHashMap[int, int]()
	var wg sync.WaitGroup
	var aborts uint64
	var mu sync.Mutex
	const workers, per = 4, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := stm.NewThread(&stm.RealClock{}, int64(w))
			for i := 0; i < per; i++ {
				k := w*per + i // disjoint keys
				if err := th.Atomic(func(tx *stm.Tx) error {
					m.Put(tx, k, k)
					return nil
				}); err != nil {
					t.Error(err)
				}
			}
			mu.Lock()
			aborts += th.Stats.Aborts
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	th := newTh()
	run1(t, th, func(tx *stm.Tx) {
		if m.Size(tx) != workers*per {
			t.Errorf("size = %d, want %d (lost updates)", m.Size(tx), workers*per)
		}
		for w := 0; w < workers; w++ {
			for i := 0; i < per; i++ {
				k := w*per + i
				if v, ok := m.Get(tx, k); !ok || v != k {
					t.Fatalf("get(%d) = (%d,%v)", k, v, ok)
				}
			}
		}
	})
}

func TestTreeMapMatchesModel(t *testing.T) {
	m := NewTreeMap[int, int]()
	ref := map[int]int{}
	th := newTh()
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 200; round++ {
		run1(t, th, func(tx *stm.Tx) {
			for i := 0; i < 20; i++ {
				k := rng.Intn(100)
				switch rng.Intn(3) {
				case 0:
					v := rng.Int()
					gotOld, gotHad := m.Put(tx, k, v)
					wantOld, wantHad := ref[k]
					if gotHad != wantHad || (wantHad && gotOld != wantOld) {
						t.Fatalf("put(%d) mismatch", k)
					}
					ref[k] = v
				case 1:
					gotOld, gotHad := m.Remove(tx, k)
					wantOld, wantHad := ref[k]
					if gotHad != wantHad || (wantHad && gotOld != wantOld) {
						t.Fatalf("remove(%d) mismatch", k)
					}
					delete(ref, k)
				default:
					gotV, gotOK := m.Get(tx, k)
					wantV, wantOK := ref[k]
					if gotOK != wantOK || (wantOK && gotV != wantV) {
						t.Fatalf("get(%d) mismatch", k)
					}
				}
			}
			if m.Size(tx) != len(ref) {
				t.Fatalf("size = %d, want %d", m.Size(tx), len(ref))
			}
		})
	}
	// Ordered iteration must match the sorted reference keys.
	keys := make([]int, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	run1(t, th, func(tx *stm.Tx) {
		i := 0
		m.ForEach(tx, func(k, v int) bool {
			if i >= len(keys) || k != keys[i] || v != ref[k] {
				t.Fatalf("iteration mismatch at %d: key %d", i, k)
			}
			i++
			return true
		})
		if i != len(keys) {
			t.Fatalf("visited %d keys, want %d", i, len(keys))
		}
	})
}

func TestTreeMapNavigation(t *testing.T) {
	m := NewTreeMap[int, int]()
	th := newTh()
	run1(t, th, func(tx *stm.Tx) {
		for _, k := range []int{10, 20, 30} {
			m.Put(tx, k, k)
		}
		if k, ok := m.FirstKey(tx); !ok || k != 10 {
			t.Errorf("first = (%d,%v)", k, ok)
		}
		if k, ok := m.LastKey(tx); !ok || k != 30 {
			t.Errorf("last = (%d,%v)", k, ok)
		}
		if k, ok := m.CeilingKey(tx, 15); !ok || k != 20 {
			t.Errorf("ceiling(15) = (%d,%v)", k, ok)
		}
		if k, ok := m.HigherKey(tx, 20); !ok || k != 30 {
			t.Errorf("higher(20) = (%d,%v)", k, ok)
		}
		if _, ok := m.HigherKey(tx, 30); ok {
			t.Error("higher(30) succeeded")
		}
		var got []int
		lo, hi := 10, 30
		m.AscendRange(tx, &lo, &hi, func(k, _ int) bool {
			got = append(got, k)
			return true
		})
		if len(got) != 2 || got[0] != 10 || got[1] != 20 {
			t.Errorf("range [10,30) = %v", got)
		}
	})
}

func TestTreeMapConcurrentDisjointKeys(t *testing.T) {
	m := NewTreeMap[int, int]()
	var wg sync.WaitGroup
	const workers, per = 4, 80
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := stm.NewThread(&stm.RealClock{}, int64(w))
			for i := 0; i < per; i++ {
				k := i*workers + w
				if err := th.Atomic(func(tx *stm.Tx) error {
					m.Put(tx, k, k)
					return nil
				}); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	th := newTh()
	run1(t, th, func(tx *stm.Tx) {
		if got := m.Size(tx); got != workers*per {
			t.Fatalf("size = %d, want %d", got, workers*per)
		}
		prev := -1
		m.ForEach(tx, func(k, _ int) bool {
			if k <= prev {
				t.Fatalf("order violated: %d after %d", k, prev)
			}
			prev = k
			return true
		})
	})
}

func TestQueueFIFOWithinTx(t *testing.T) {
	q := NewQueue[int]()
	th := newTh()
	run1(t, th, func(tx *stm.Tx) {
		if _, ok := q.Dequeue(tx); ok {
			t.Error("dequeue on empty succeeded")
		}
		for i := 0; i < 5; i++ {
			q.Enqueue(tx, i)
		}
		if v, ok := q.Peek(tx); !ok || v != 0 {
			t.Errorf("peek = (%d,%v)", v, ok)
		}
		for i := 0; i < 5; i++ {
			if v, ok := q.Dequeue(tx); !ok || v != i {
				t.Errorf("dequeue = (%d,%v), want %d", v, ok, i)
			}
		}
		if q.Size(tx) != 0 {
			t.Errorf("size = %d", q.Size(tx))
		}
	})
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue[int]()
	const producers, per = 4, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := stm.NewThread(&stm.RealClock{}, int64(p))
			for i := 0; i < per; i++ {
				if err := th.Atomic(func(tx *stm.Tx) error {
					q.Enqueue(tx, p*per+i)
					return nil
				}); err != nil {
					t.Error(err)
				}
			}
		}(p)
	}
	wg.Wait()
	seen := map[int]bool{}
	th := newTh()
	run1(t, th, func(tx *stm.Tx) {
		for {
			v, ok := q.Dequeue(tx)
			if !ok {
				break
			}
			if seen[v] {
				t.Fatalf("duplicate element %d", v)
			}
			seen[v] = true
		}
	})
	if len(seen) != producers*per {
		t.Fatalf("drained %d elements, want %d", len(seen), producers*per)
	}
}

func TestSegmentedMapBehaves(t *testing.T) {
	m := NewSegmentedHashMap[int, int](8)
	th := newTh()
	run1(t, th, func(tx *stm.Tx) {
		for i := 0; i < 500; i++ {
			m.Put(tx, i, i+1)
		}
		if m.Size(tx) != 500 {
			t.Errorf("size = %d", m.Size(tx))
		}
		for i := 0; i < 500; i++ {
			if v, ok := m.Get(tx, i); !ok || v != i+1 {
				t.Fatalf("get(%d) = (%d,%v)", i, v, ok)
			}
		}
		for i := 0; i < 500; i += 2 {
			if _, ok := m.Remove(tx, i); !ok {
				t.Fatalf("remove(%d) failed", i)
			}
		}
		if m.Size(tx) != 250 {
			t.Errorf("size after removes = %d", m.Size(tx))
		}
	})
}

func TestSegmentedMapBadSegmentsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two segments")
		}
	}()
	NewSegmentedHashMap[int, int](3)
}

// TestSegmentedSameSegmentConflicts verifies §2.4's mechanism directly:
// two transactions inserting different keys conflict exactly when the
// keys share a segment (same per-segment size field).
func TestSegmentedSameSegmentConflicts(t *testing.T) {
	m := NewSegmentedHashMap[int, int](8)
	// Probe for two keys in the same segment and two in different ones.
	seg := func(k int) *HashMap[int, int] { return m.segment(k) }
	sameA, sameB, diffB := -1, -1, -1
	for k := 1; k < 10_000; k++ {
		if seg(k) == seg(0) && sameA == -1 {
			sameA = k
		} else if seg(k) != seg(0) && diffB == -1 {
			diffB = k
		}
		if sameA != -1 && diffB != -1 {
			break
		}
	}
	sameB = 0
	if sameA == -1 || diffB == -1 {
		t.Fatal("could not find probe keys")
	}

	run := func(k1, k2 int) (conflicted bool) {
		parked := make(chan struct{})
		release := make(chan struct{})
		done := make(chan error, 1)
		attempts := 0
		go func() {
			th := stm.NewThread(&stm.RealClock{}, 1)
			done <- th.Atomic(func(tx *stm.Tx) error {
				attempts = tx.Attempt() + 1
				m.Put(tx, k1, 1)
				if tx.Attempt() == 0 {
					parked <- struct{}{}
					<-release
				}
				return nil
			})
		}()
		<-parked
		th2 := stm.NewThread(&stm.RealClock{}, 2)
		if err := th2.Atomic(func(tx *stm.Tx) error {
			m.Put(tx, k2, 2)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		close(release)
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		return attempts > 1
	}
	if !run(sameA, sameB) {
		t.Error("same-segment inserts did not conflict on the segment size field")
	}
	m2 := NewSegmentedHashMap[int, int](8)
	m = m2 // fresh map for the commuting pair
	if run(sameA, diffB) {
		t.Error("different-segment inserts conflicted")
	}
}
