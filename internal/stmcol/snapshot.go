package stmcol

import (
	"tcc/internal/stm"
)

// Snapshot entry points (DESIGN.md §4.4). Every read operation of these
// collections is a pure composition of stm.Var reads, so inside an
// stm.Thread.AtomicRead body they already ride the MVCC-lite snapshot
// path end to end: no lockword CAS, no read-set, no aborts, and — the
// property the Var-level machinery cannot give internal/core — a fully
// serializable multi-operation view at one read version, including
// whole-structure walks that a committing writer cannot tear.
//
// The wrappers below package the common read-only shapes as one-call
// snapshot transactions. Reads against a bucket or tree node that a
// writer has lapped twice transparently restart or fall back inside
// AtomicRead; the caller never sees the difference.

// SnapshotGet returns k's mapping as one read-only snapshot
// transaction on t.
func (m *HashMap[K, V]) SnapshotGet(t *stm.Thread, k K) (V, bool) {
	var v V
	var ok bool
	_ = t.AtomicRead(func(tx *stm.Tx) error {
		v, ok = m.Get(tx, k)
		return nil
	})
	return v, ok
}

// SnapshotContainsKey reports whether k is mapped, as one read-only
// snapshot transaction on t.
func (m *HashMap[K, V]) SnapshotContainsKey(t *stm.Thread, k K) bool {
	_, ok := m.SnapshotGet(t, k)
	return ok
}

// SnapshotSize returns the map's size without touching the size-field
// hotspot's lockword: the §2.4 "global counter" read with none of its
// conflicts.
func (m *HashMap[K, V]) SnapshotSize(t *stm.Thread) int {
	var n int
	_ = t.AtomicRead(func(tx *stm.Tx) error {
		n = m.Size(tx)
		return nil
	})
	return n
}

// SnapshotForEach walks every mapping in one read-only snapshot
// transaction: the walk observes one read version, so a concurrent
// rehash or chain edit is either fully visible or fully invisible.
func (m *HashMap[K, V]) SnapshotForEach(t *stm.Thread, fn func(k K, v V) bool) {
	_ = t.AtomicRead(func(tx *stm.Tx) error {
		m.ForEach(tx, fn)
		return nil
	})
}

// SnapshotGet returns k's mapping as one read-only snapshot
// transaction on th.
func (t *TreeMap[K, V]) SnapshotGet(th *stm.Thread, k K) (V, bool) {
	var v V
	var ok bool
	_ = th.AtomicRead(func(tx *stm.Tx) error {
		v, ok = t.Get(tx, k)
		return nil
	})
	return v, ok
}

// SnapshotContainsKey reports whether k is mapped, as one read-only
// snapshot transaction on th.
func (t *TreeMap[K, V]) SnapshotContainsKey(th *stm.Thread, k K) bool {
	_, ok := t.SnapshotGet(th, k)
	return ok
}

// SnapshotSize returns the tree's size without conflicting with
// writers.
func (t *TreeMap[K, V]) SnapshotSize(th *stm.Thread) int {
	var n int
	_ = th.AtomicRead(func(tx *stm.Tx) error {
		n = t.Size(tx)
		return nil
	})
	return n
}

// SnapshotForEach walks the tree in key order in one read-only
// snapshot transaction; a concurrent rebalance cannot tear the walk —
// rotations committed after the snapshot's read version are invisible.
func (t *TreeMap[K, V]) SnapshotForEach(th *stm.Thread, fn func(k K, v V) bool) {
	_ = th.AtomicRead(func(tx *stm.Tx) error {
		t.ForEach(tx, fn)
		return nil
	})
}

// SnapshotAscendRange walks [lo, hi) in key order in one read-only
// snapshot transaction (nil bounds are open, as in AscendRange).
func (t *TreeMap[K, V]) SnapshotAscendRange(th *stm.Thread, lo, hi *K, fn func(k K, v V) bool) {
	_ = th.AtomicRead(func(tx *stm.Tx) error {
		t.AscendRange(tx, lo, hi, fn)
		return nil
	})
}
