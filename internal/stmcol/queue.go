package stmcol

import "tcc/internal/stm"

// Queue is a linked FIFO queue whose head, tail and size are
// transactional variables; every enqueue and dequeue conflicts on the
// ends, which is what makes naive in-transaction work queues serialize
// (the Delaunay motivation of paper §3.3).
type Queue[T any] struct {
	head, tail *stm.Var[*qNode[T]]
	size       *stm.Var[int]
	// nodeLabel is the shared observability label of per-node next
	// links (one heatmap row for all of them).
	nodeLabel string
}

type qNode[T any] struct {
	val  T
	next *stm.Var[*qNode[T]]
}

// NewQueue creates an empty transactional queue.
func NewQueue[T any]() *Queue[T] {
	q := &Queue[T]{
		head: stm.NewVar[*qNode[T]](nil),
		tail: stm.NewVar[*qNode[T]](nil),
		size: stm.NewVar(0),
	}
	q.SetName("Queue")
	return q
}

// SetName labels the queue's vars for conflict attribution
// ("name.head", "name.tail", "name.size", "name.node"). Call before
// sharing the queue with concurrent transactions.
func (q *Queue[T]) SetName(name string) *Queue[T] {
	q.head.SetLabel(name + ".head")
	q.tail.SetLabel(name + ".tail")
	q.size.SetLabel(name + ".size")
	q.nodeLabel = name + ".node"
	return q
}

// Enqueue appends v at the tail.
func (q *Queue[T]) Enqueue(tx *stm.Tx, v T) {
	n := &qNode[T]{val: v, next: stm.NewVar[*qNode[T]](nil).SetLabel(q.nodeLabel)}
	t := q.tail.Get(tx)
	if t == nil {
		q.head.Set(tx, n)
	} else {
		t.next.Set(tx, n)
	}
	q.tail.Set(tx, n)
	q.size.Set(tx, q.size.Get(tx)+1)
}

// Dequeue removes and returns the head element.
func (q *Queue[T]) Dequeue(tx *stm.Tx) (T, bool) {
	h := q.head.Get(tx)
	if h == nil {
		var zero T
		return zero, false
	}
	next := h.next.Get(tx)
	q.head.Set(tx, next)
	if next == nil {
		q.tail.Set(tx, nil)
	}
	q.size.Set(tx, q.size.Get(tx)-1)
	return h.val, true
}

// Peek returns the head element without removing it.
func (q *Queue[T]) Peek(tx *stm.Tx) (T, bool) {
	h := q.head.Get(tx)
	if h == nil {
		var zero T
		return zero, false
	}
	return h.val, true
}

// Size returns the number of queued elements.
func (q *Queue[T]) Size(tx *stm.Tx) int { return q.size.Get(tx) }
