package thread

import (
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestThreadRunsPeriodically(t *testing.T) {
	var ticks atomic.Int64
	th := New(nil, "test", time.Millisecond, func() { ticks.Add(1) })
	th.Start()
	deadline := time.Now().Add(time.Second)
	for ticks.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	th.Stop()
	if got := ticks.Load(); got < 3 {
		t.Fatalf("ticks = %d, want >= 3", got)
	}
}

func TestThreadStopBlocksUntilTickDone(t *testing.T) {
	var inFlight, raced atomic.Bool
	th := New(nil, "test", time.Millisecond, func() {
		inFlight.Store(true)
		time.Sleep(5 * time.Millisecond)
		inFlight.Store(false)
	})
	th.Start()
	time.Sleep(2 * time.Millisecond) // let a tick start
	th.Stop()
	if inFlight.Load() {
		raced.Store(true)
	}
	if raced.Load() {
		t.Fatalf("Stop returned while fn was still running")
	}
}

func TestThreadStopIdempotentAndRestartable(t *testing.T) {
	var ticks atomic.Int64
	th := New(nil, "test", time.Millisecond, func() { ticks.Add(1) })
	th.Stop() // never started: no-op
	th.Start()
	th.Start() // already running: no-op
	time.Sleep(5 * time.Millisecond)
	th.Stop()
	th.Stop() // already stopped: no-op
	n := ticks.Load()
	th.Start()
	deadline := time.Now().Add(time.Second)
	for ticks.Load() == n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	th.Stop()
	if ticks.Load() == n {
		t.Fatalf("restarted thread never ticked")
	}
}

func TestThreadLogsLifecycle(t *testing.T) {
	var mu sync.Mutex
	var b strings.Builder
	logger := log.New(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	}), "", 0)
	th := New(logger, "worker", time.Hour, func() {})
	th.Start()
	th.Stop()
	mu.Lock()
	out := b.String()
	mu.Unlock()
	if !strings.Contains(out, "thread worker: started") || !strings.Contains(out, "thread worker: stopped") {
		t.Fatalf("lifecycle not logged:\n%s", out)
	}
}

func TestThreadPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New with zero interval did not panic")
		}
	}()
	New(nil, "bad", 0, func() {})
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
