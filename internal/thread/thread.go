// Package thread provides a small periodic background thread: a
// named goroutine that runs a function at a fixed interval until
// stopped, after the pkg/thread idiom in openshift/assisted-service
// (SNIPPETS.md) — construct with a logger, name, interval and
// function; Start launches it, Stop blocks until the loop has fully
// exited so callers can tear down shared state safely afterwards.
package thread

import (
	"log"
	"time"
)

// Thread runs fn every interval on its own goroutine.
type Thread struct {
	log      *log.Logger
	name     string
	interval time.Duration
	fn       func()

	stop chan struct{}
	done chan struct{}
}

// New returns an unstarted periodic thread. logger may be nil
// (lifecycle messages are dropped); interval must be positive.
func New(logger *log.Logger, name string, interval time.Duration, fn func()) *Thread {
	if interval <= 0 {
		panic("thread: non-positive interval")
	}
	return &Thread{log: logger, name: name, interval: interval, fn: fn}
}

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// Start launches the periodic loop. Calling Start on a running
// thread is a no-op; a stopped thread can be started again.
func (t *Thread) Start() {
	if t.stop != nil {
		return
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	t.logf("thread %s: started (interval %v)", t.name, t.interval)
	go t.run(t.stop, t.done)
}

// Stop halts the loop and blocks until it has exited. A tick in
// flight completes first. No-op if not running.
func (t *Thread) Stop() {
	if t.stop == nil {
		return
	}
	close(t.stop)
	<-t.done
	t.stop, t.done = nil, nil
	t.logf("thread %s: stopped", t.name)
}

func (t *Thread) run(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(t.interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			t.fn()
		}
	}
}

func (t *Thread) logf(format string, args ...any) {
	if t.log != nil {
		t.log.Printf(format, args...)
	}
}
