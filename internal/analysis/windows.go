package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// This file locates the code regions that execute with a commit guard
// held — the roots the interprocedural rules (trace-in-commit,
// commit-window-blocking, guard-order) analyze from. Two kinds exist:
//
//   - Guard-hold windows: within one block, the statements between a
//     window-opening statement (Guard.Lock, acquireGuards, lockGuards)
//     and the closing one (Guard.Unlock, releaseGuards, unlockGuards).
//     The opener itself is excluded — acquisition is not yet "inside" —
//     and the closer is included (it still runs with the guard held).
//     A window never closed in its block extends to the block's end,
//     which is also how a deferred Unlock behaves: the guard is held
//     until the function returns.
//
//   - Handler bodies: function literals registered as commit/abort
//     handlers, and named functions the module registers anywhere (per
//     the call graph). The STM runs them with their guard held, so they
//     are windows whose opener lives in the commit protocol.
type guardWindow struct {
	// block is the enclosing block, for context-sensitive exemptions
	// (guard-order's ascending-ID idiom).
	block *ast.BlockStmt
	// open is the statement that opened the window.
	open ast.Stmt
	// body is the statements that run with the guard held, closer
	// included.
	body []ast.Stmt
}

// forEachGuardWindow scans every block in f for guard-hold windows.
// Windows in nested blocks are reported for their own block; a window
// spanning an if/for statement contains that whole statement in its
// body, so effects inside nested blocks of a wider window are still
// attributed to it.
func (p *Pass) forEachGuardWindow(f *ast.File, visit func(w guardWindow)) {
	info := p.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		open := -1
		for i, stmt := range block.List {
			if open < 0 {
				if stmtOpensGuardWindow(info, stmt) {
					open = i
				}
				continue
			}
			if stmtClosesGuardWindow(info, stmt) {
				visit(guardWindow{block: block, open: block.List[open], body: block.List[open+1 : i+1]})
				open = -1
			}
		}
		if open >= 0 {
			visit(guardWindow{block: block, open: block.List[open], body: block.List[open+1:]})
		}
		return true
	})
}

// forEachHandlerBody visits the body of every handler in f: literals
// classified bodyHandler, and declared functions some package of the
// module registers as handlers.
func (p *Pass) forEachHandlerBody(f *ast.File, visit func(body *ast.BlockStmt)) {
	info := p.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if p.Graph.litKinds[n] == bodyHandler {
				visit(n.Body)
			}
		case *ast.FuncDecl:
			if n.Body != nil && p.Graph.handlerFuncs[declFunc(info, n)] {
				visit(n.Body)
			}
		}
		return true
	})
}

// Window vocabulary. Openers are calls that leave the caller holding
// an exclusive resource every other committer can queue on; closers
// release it. Three layers share the machinery:
//
//   - Commit guards: Guard.Lock/Unlock (the collections' fused
//     critical sections), acquireGuards/releaseGuards (the commit
//     protocol's footprint acquisition — matched by name so the rule
//     works both on the stm package's unexported helpers and on
//     fixtures that model them), and the striped collections'
//     multi-guard sweeps hung off the instance:
//     lockGuards/unlockGuards (all stripes),
//     lockStripeSpan/unlockStripeSpan (a contiguous interval span of
//     a range-striped sorted map), and lockLanes/unlockLanes (all
//     lanes of a segmented queue).
//   - Write-set lockwords: lockWriteSet acquires every written var's
//     lockword in id order; unlockWriteSet (failed commit) and
//     installWriteSet (successful publish) release them. Between the
//     two, every reader of those vars spins — the protocol seam's
//     per-protocol commit methods (protocol_*.go) all hold this span.
//   - The NOrec sequence lock: norecSeqAcquire leaves norecSeq odd,
//     which stalls every NOrec reader and writer system-wide until
//     norecSeqRelease stores it even again — the widest window of the
//     three, so keeping it tight matters most.
//
// windowOpenNames/windowCloseNames entries marked free are matched
// only as free functions (a method of that name would be something
// else); the rest match with or without a receiver.
var windowOpenNames = map[string]bool{
	"acquireGuards":   true,
	"lockGuards":      false,
	"lockStripeSpan":  false,
	"lockLanes":       false,
	"lockWriteSet":    true,
	"norecSeqAcquire": true,
}

var windowCloseNames = map[string]bool{
	"releaseGuards":    true,
	"unlockGuards":     false,
	"unlockStripeSpan": false,
	"unlockLanes":      false,
	"unlockWriteSet":   true,
	"installWriteSet":  true,
	"norecSeqRelease":  true,
}

// stmtOpensGuardWindow reports whether stmt directly opens a hold
// window: stm.Guard.Lock or one of windowOpenNames. Deferred calls and
// function literals do not count: a defer runs at function return, and
// a closure body runs whenever it is invoked — neither changes whether
// the resource is held at the statements that follow.
func stmtOpensGuardWindow(info *types.Info, stmt ast.Stmt) bool {
	return stmtGuardOp(info, stmt, "Lock", windowOpenNames)
}

// stmtClosesGuardWindow reports whether stmt directly closes the
// window: Guard.Unlock or one of windowCloseNames.
func stmtClosesGuardWindow(info *types.Info, stmt ast.Stmt) bool {
	return stmtGuardOp(info, stmt, "Unlock", windowCloseNames)
}

// stmtGuardOp matches a window transition under stmt: the Guard method
// itself (type-checked against the stm package), or a call whose
// callee's name is in names — freeOnly entries only when the callee
// has no receiver.
func stmtGuardOp(info *types.Info, stmt ast.Stmt, method string, names map[string]bool) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isSTMMethod(info, n, "Guard", method) {
				found = true
			} else if fn := calleeFunc(info, n); fn != nil {
				if freeOnly, ok := names[fn.Name()]; ok && (!freeOnly || recvNamed(fn) == nil) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// guardMachineryNames are the protocols' own acquisition/release
// helpers. The blocking rule trusts them (acquiring the footprint, the
// write-set lockwords, or the sequence lock is the one sanctioned
// blocking operation — ordered or bounded, and it IS the window), and
// window scanning treats calls to them as the window boundary rather
// than as content.
var guardMachineryNames = map[string]bool{
	"acquireGuards":    true,
	"releaseGuards":    true,
	"lockGuards":       true,
	"unlockGuards":     true,
	"lockStripeSpan":   true,
	"unlockStripeSpan": true,
	"lockLanes":        true,
	"unlockLanes":      true,
	"lockWriteSet":     true,
	"unlockWriteSet":   true,
	"installWriteSet":  true,
	"norecSeqAcquire":  true,
	"norecSeqRelease":  true,
}

// isGuardMethod reports whether fn is a method of stm.Guard.
func isGuardMethod(fn *types.Func) bool {
	named := recvNamed(fn)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Guard" && obj.Pkg() != nil && isSTMPath(obj.Pkg().Path())
}

// reportReach runs the searcher from every call on the synchronous
// path under stmts and reports the first reachable effect per call
// site, positioned at the call (so suppression stays local to the
// window) with the chain in the message. seen deduplicates across
// overlapping windows; format receives the chain head's display name
// and the rendered chain.
func (p *Pass) reportReach(stmts []ast.Stmt, s *reachSearcher, seen map[string]bool, format func(head, chain string) string) {
	info := p.Pkg.Info
	for _, stmt := range stmts {
		p.Graph.inspectSyncPath(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// A call already flagged as a lexical effect (reportLexical
			// runs first and records its positions) is one finding, not
			// two: don't chase what it reaches.
			if seen[posKey(call.Pos())] {
				return true
			}
			chain, eff, found := s.fromCall(info, call)
			if !found {
				return true
			}
			msg := format(funcDisplayName(chain[0]), s.describeChain(chain, eff))
			key := dedupKey(call.Pos(), msg)
			if !seen[key] {
				seen[key] = true
				p.Reportf(call.Pos(), "%s", msg)
			}
			return true
		})
	}
}

// reportLexical reports every effect the detector finds lexically under
// stmts, at the effect's own position, deduplicated across overlapping
// windows.
func (p *Pass) reportLexical(stmts []ast.Stmt, detect func(root ast.Node) []effect, seen map[string]bool, format func(desc string) string) {
	for _, stmt := range stmts {
		for _, e := range detect(stmt) {
			seen[posKey(e.pos)] = true
			msg := format(e.desc)
			key := dedupKey(e.pos, msg)
			if !seen[key] {
				seen[key] = true
				p.Reportf(e.pos, "%s", msg)
			}
		}
	}
}

// posKey marks a position as lexically reported, letting reportReach
// skip calls that are themselves the finding.
func posKey(pos token.Pos) string {
	return "pos:" + strconv.Itoa(int(pos))
}

// dedupKey identifies a diagnostic for cross-window deduplication (a
// statement can sit in two overlapping windows when an inner block
// opens its own window inside a wider one).
func dedupKey(pos token.Pos, msg string) string {
	return strconv.Itoa(int(pos)) + "|" + msg
}
