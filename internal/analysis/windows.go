package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// This file locates the code regions that execute with a commit guard
// held — the roots the interprocedural rules (trace-in-commit,
// commit-window-blocking, guard-order) analyze from. Two kinds exist:
//
//   - Guard-hold windows: within one block, the statements between a
//     window-opening statement (Guard.Lock, acquireGuards, lockGuards)
//     and the closing one (Guard.Unlock, releaseGuards, unlockGuards).
//     The opener itself is excluded — acquisition is not yet "inside" —
//     and the closer is included (it still runs with the guard held).
//     A window never closed in its block extends to the block's end,
//     which is also how a deferred Unlock behaves: the guard is held
//     until the function returns.
//
//   - Handler bodies: function literals registered as commit/abort
//     handlers, and named functions the module registers anywhere (per
//     the call graph). The STM runs them with their guard held, so they
//     are windows whose opener lives in the commit protocol.
type guardWindow struct {
	// block is the enclosing block, for context-sensitive exemptions
	// (guard-order's ascending-ID idiom).
	block *ast.BlockStmt
	// open is the statement that opened the window.
	open ast.Stmt
	// body is the statements that run with the guard held, closer
	// included.
	body []ast.Stmt
}

// forEachGuardWindow scans every block in f for guard-hold windows.
// Windows in nested blocks are reported for their own block; a window
// spanning an if/for statement contains that whole statement in its
// body, so effects inside nested blocks of a wider window are still
// attributed to it.
func (p *Pass) forEachGuardWindow(f *ast.File, visit func(w guardWindow)) {
	info := p.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		open := -1
		for i, stmt := range block.List {
			if open < 0 {
				if stmtOpensGuardWindow(info, stmt) {
					open = i
				}
				continue
			}
			if stmtClosesGuardWindow(info, stmt) {
				visit(guardWindow{block: block, open: block.List[open], body: block.List[open+1 : i+1]})
				open = -1
			}
		}
		if open >= 0 {
			visit(guardWindow{block: block, open: block.List[open], body: block.List[open+1:]})
		}
		return true
	})
}

// forEachHandlerBody visits the body of every handler in f: literals
// classified bodyHandler, and declared functions some package of the
// module registers as handlers.
func (p *Pass) forEachHandlerBody(f *ast.File, visit func(body *ast.BlockStmt)) {
	info := p.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if p.Graph.litKinds[n] == bodyHandler {
				visit(n.Body)
			}
		case *ast.FuncDecl:
			if n.Body != nil && p.Graph.handlerFuncs[declFunc(info, n)] {
				visit(n.Body)
			}
		}
		return true
	})
}

// stmtOpensGuardWindow reports whether stmt directly opens a
// commit-guard hold window: it calls stm.Guard.Lock (the collections'
// fused critical sections), a function named acquireGuards (the commit
// protocol's blocking footprint acquisition — matched by name so the
// rule works both on the stm package's unexported helper and on
// fixtures that model it), or a function or method named lockGuards (a
// striped collection's all-stripes acquisition helper: a loop locking
// every stripe guard in ascending id order, e.g. for an iterator
// snapshot — everything after it runs with the whole instance's guards
// held). Deferred calls and function literals do not count: a defer
// runs at function return, and a closure body runs whenever it is
// invoked — neither changes whether a guard is held at the statements
// that follow.
func stmtOpensGuardWindow(info *types.Info, stmt ast.Stmt) bool {
	return stmtGuardOp(info, stmt, "Lock", "acquireGuards", "lockGuards")
}

// stmtClosesGuardWindow reports whether stmt directly closes the
// window: Guard.Unlock, or a call to a function named releaseGuards or
// a function or method named unlockGuards.
func stmtClosesGuardWindow(info *types.Info, stmt ast.Stmt) bool {
	return stmtGuardOp(info, stmt, "Unlock", "releaseGuards", "unlockGuards")
}

// stmtGuardOp matches three shapes of guard transition under stmt: the
// Guard method itself (type-checked against the stm package), a free
// function named freeName (acquireGuards/releaseGuards take the guard
// slice as an argument, so a method of that name would be something
// else), and a helper named helperName with or without a receiver —
// striped collections hang lockGuards/unlockGuards off the instance
// whose stripes they sweep.
func stmtGuardOp(info *types.Info, stmt ast.Stmt, method, freeName, helperName string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isSTMMethod(info, n, "Guard", method) {
				found = true
			} else if fn := calleeFunc(info, n); fn != nil {
				if fn.Name() == freeName && recvNamed(fn) == nil {
					found = true
				} else if fn.Name() == helperName {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// guardMachineryNames are the protocol's own acquisition/release
// helpers. The blocking rule trusts them (acquiring the footprint is
// the one sanctioned blocking operation — it is ordered, and it IS the
// window), and window scanning treats calls to them as the window
// boundary rather than as content.
var guardMachineryNames = map[string]bool{
	"acquireGuards": true,
	"releaseGuards": true,
	"lockGuards":    true,
	"unlockGuards":  true,
}

// isGuardMethod reports whether fn is a method of stm.Guard.
func isGuardMethod(fn *types.Func) bool {
	named := recvNamed(fn)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Guard" && obj.Pkg() != nil && isSTMPath(obj.Pkg().Path())
}

// reportReach runs the searcher from every call on the synchronous
// path under stmts and reports the first reachable effect per call
// site, positioned at the call (so suppression stays local to the
// window) with the chain in the message. seen deduplicates across
// overlapping windows; format receives the chain head's display name
// and the rendered chain.
func (p *Pass) reportReach(stmts []ast.Stmt, s *reachSearcher, seen map[string]bool, format func(head, chain string) string) {
	info := p.Pkg.Info
	for _, stmt := range stmts {
		p.Graph.inspectSyncPath(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// A call already flagged as a lexical effect (reportLexical
			// runs first and records its positions) is one finding, not
			// two: don't chase what it reaches.
			if seen[posKey(call.Pos())] {
				return true
			}
			chain, eff, found := s.fromCall(info, call)
			if !found {
				return true
			}
			msg := format(funcDisplayName(chain[0]), s.describeChain(chain, eff))
			key := dedupKey(call.Pos(), msg)
			if !seen[key] {
				seen[key] = true
				p.Reportf(call.Pos(), "%s", msg)
			}
			return true
		})
	}
}

// reportLexical reports every effect the detector finds lexically under
// stmts, at the effect's own position, deduplicated across overlapping
// windows.
func (p *Pass) reportLexical(stmts []ast.Stmt, detect func(root ast.Node) []effect, seen map[string]bool, format func(desc string) string) {
	for _, stmt := range stmts {
		for _, e := range detect(stmt) {
			seen[posKey(e.pos)] = true
			msg := format(e.desc)
			key := dedupKey(e.pos, msg)
			if !seen[key] {
				seen[key] = true
				p.Reportf(e.pos, "%s", msg)
			}
		}
	}
}

// posKey marks a position as lexically reported, letting reportReach
// skip calls that are themselves the finding.
func posKey(pos token.Pos) string {
	return "pos:" + strconv.Itoa(int(pos))
}

// dedupKey identifies a diagnostic for cross-window deduplication (a
// statement can sit in two overlapping windows when an inner block
// opens its own window inside a wider one).
func dedupKey(pos token.Pos, msg string) string {
	return strconv.Itoa(int(pos)) + "|" + msg
}
