package analysis

import "go/ast"

// nested-atomic: Thread.Atomic started while a transaction is already
// running on the thread. The STM panics on this at runtime
// ("stm: nested Atomic on one Thread"); the paper's composition story
// (§2.3, §4) requires closed nesting (tx.Nested) for partial rollback
// or open nesting (tx.Open) for early release — never a second
// top-level transaction. The rule is lexical: any Atomic call reachable
// inside an Atomic/Open/Nested body closure (including through plain
// nested closures, which may be invoked inline) is flagged. Goroutine
// bodies are excluded — a spawned goroutine is a different worker, and
// leaking the transaction into it is tx-escape's domain.
var ruleNestedAtomic = &Rule{
	ID:  "nested-atomic",
	Doc: "Thread.Atomic called inside a transactional body; use tx.Nested or tx.Open",
	Run: runNestedAtomic,
}

func runNestedAtomic(p *Pass) {
	info := p.Pkg.Info
	p.forEachFile(func(f *ast.File) {
		p.walkCtx(f, func(n ast.Node, ctx funcCtx) {
			call, ok := n.(*ast.CallExpr)
			if !ok || !ctx.inTx || ctx.inHandler {
				return
			}
			if isSTMMethod(info, call, "Thread", "Atomic") {
				p.Reportf(call.Pos(), "Thread.Atomic called inside a transactional body (panics at runtime); use tx.Nested for partial rollback or tx.Open for open nesting")
			}
		})
	})
}
