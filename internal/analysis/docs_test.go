package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tcc/internal/analysis"
)

// TestDesignRuleTable keeps DESIGN.md §8 honest: the rule table's ID
// column must list exactly the registered rules, in registration
// order. A rule added, renamed, or removed without its documentation
// row fails here, not in review.
func TestDesignRuleTable(t *testing.T) {
	l := getLoader(t)
	data, err := os.ReadFile(filepath.Join(l.ModuleDir, "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	start := strings.Index(text, "## 8.")
	if start < 0 {
		t.Fatal("DESIGN.md has no section 8")
	}
	end := strings.Index(text[start:], "\n## 9.")
	if end < 0 {
		end = len(text) - start
	}
	section := text[start : start+end]

	var documented []string
	for _, line := range strings.Split(section, "\n") {
		rest, ok := strings.CutPrefix(line, "| `")
		if !ok {
			continue
		}
		id, _, ok := strings.Cut(rest, "`")
		if !ok {
			continue
		}
		documented = append(documented, id)
	}

	var registered []string
	for _, r := range analysis.Rules() {
		registered = append(registered, r.ID)
	}
	if strings.Join(documented, " ") != strings.Join(registered, " ") {
		t.Errorf("DESIGN.md §8 rule table out of sync with analysis.Rules():\n  documented: %v\n  registered: %v",
			documented, registered)
	}
}
