package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// This file is the interprocedural engine under stmlint. Atomos could
// enforce its discipline whole-program because the compiler saw every
// call; the per-function rules that sufficed for the early rule set
// stop sufficing once the properties under check are themselves
// interprocedural — "no path out of a commit window blocks" and "no
// path acquires a second guard" are statements about everything
// reachable from the window, not about the window's own statements. The
// CallGraph gives every rule the same whole-module view: one node per
// declared function or method, call edges resolved at build time
// (including interface calls, via CHA-style name matching), and a
// bounded-depth reachability search that reconstructs the offending
// call chain for the diagnostic.
//
// Soundness caveats, by construction:
//
//   - Function values are not tracked: a call through a func-typed
//     variable, field, or parameter has no outgoing edge (the STM's
//     handler execution — h() over registered closures — is the big
//     instance, and handler bodies are covered separately as analysis
//     roots).
//   - Interface calls resolve by method-set matching on name and
//     arity (parameter and result counts) against every named type
//     declared in the module — full signature identity is not checked,
//     a deliberate over-approximation that stays correct under
//     generics, where instantiation-sensitive types.Implements checks
//     would be both fiddly and incomplete. Arity is part of the match
//     because it too is preserved by instantiation, and it is what
//     separates the plain collections (Get(k)) from the transactional
//     wrappers (Get(tx, k)) that share their method names.
//   - Reachability stops after reachBudget call edges; a blocking
//     operation buried deeper than the budget is not reported. The
//     budget exists to keep diagnostics explainable — a ten-edge chain
//     is not something a reviewer can act on — and to bound the search.
//   - Calls under a go statement are off the synchronous path and grow
//     no edges (the spawned body neither blocks the window nor holds
//     its guards); likewise function literals registered as handlers,
//     which run later under their own guard and are separate roots.
type CallGraph struct {
	fset *token.FileSet
	pkgs []*Package

	// nodes maps every declared function or method with a body (keyed
	// by its origin object, so generic instantiations collapse onto one
	// node) to its declaration and resolved callees.
	nodes map[*types.Func]*callNode

	// litKinds classifies every function literal in every spanned file
	// (see bodyKind); the walkCtx machinery and the window scanners
	// share it so "handler body" means the same thing everywhere.
	litKinds map[*ast.FuncLit]bodyKind

	// handlerFuncs and txBodyFuncs are *named* functions the module
	// registers as handlers or passes as transaction bodies anywhere —
	// the interprocedural generalization of the literal classification:
	// a function declared in package A and registered in package B is
	// classified when either package is analyzed.
	handlerFuncs map[*types.Func]bool
	txBodyFuncs  map[*types.Func]bool

	// readonlyBodyFuncs is the subset of txBodyFuncs passed to
	// Thread.AtomicRead somewhere: transaction bodies that declared
	// themselves read-only and must not reach a write.
	readonlyBodyFuncs map[*types.Func]bool

	// concretes indexes every named type declared in the module by its
	// explicit method-name set, in deterministic order, for CHA
	// resolution of interface calls.
	concretes []*typeMethods

	// chaMu guards chaCache: rules resolve call targets while packages
	// are checked in parallel, and handler-literal call sites are not
	// pre-resolved at build time.
	chaMu    sync.Mutex
	chaCache map[*types.Func][]*types.Func
}

// callNode is one declared function in the graph.
type callNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	// callees are the node's resolved outgoing edges, deduplicated, in
	// source order (CHA fan-out in declaration order).
	callees []*types.Func
}

// typeMethods is the CHA index entry for one named type: its
// explicitly declared methods by name (promotion through embedding is
// not followed — none of the module's transactional types rely on it).
type typeMethods struct {
	byName map[string]*types.Func
}

// reachBudget caps how many call edges a reachability query follows
// from a window or handler. Deep enough for the module's real chains
// (window → collection helper → semantic-lock table → Violate is four
// edges); shallow enough that every reported chain fits in one
// diagnostic line.
const reachBudget = 8

// originFunc collapses a possibly-instantiated function object onto
// its generic origin, the canonical node key.
func originFunc(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// declFunc resolves a function declaration to its types.Func.
func declFunc(info *types.Info, fd *ast.FuncDecl) *types.Func {
	fn, _ := info.Defs[fd.Name].(*types.Func)
	return originFunc(fn)
}

// exprFunc resolves an expression used as a function value (a handler
// or body argument) to the named function it denotes, or nil when it
// is a literal, a variable, or anything else the graph cannot name.
func exprFunc(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return originFunc(fn)
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return originFunc(fn)
	}
	return nil
}

// BuildCallGraph builds the module-wide graph over pkgs. The build is
// serial; the finished graph is read-only apart from the mutex-guarded
// CHA cache, so packages can then be checked concurrently against it.
func BuildCallGraph(fset *token.FileSet, pkgs []*Package) *CallGraph {
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	g := &CallGraph{
		fset:              fset,
		pkgs:              sorted,
		nodes:             make(map[*types.Func]*callNode),
		litKinds:          make(map[*ast.FuncLit]bodyKind),
		handlerFuncs:      make(map[*types.Func]bool),
		txBodyFuncs:       make(map[*types.Func]bool),
		readonlyBodyFuncs: make(map[*types.Func]bool),
		chaCache:          make(map[*types.Func][]*types.Func),
	}

	// Pass 1: nodes, literal kinds, named handler/body registration,
	// and the CHA type index.
	for _, pkg := range sorted {
		for _, f := range pkg.Files {
			for lit, k := range classifyFuncLits(pkg.Info, f) {
				g.litKinds[lit] = k
			}
			g.classifyNamedArgs(pkg.Info, f)
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn := declFunc(pkg.Info, fd); fn != nil {
					g.nodes[fn] = &callNode{fn: fn, decl: fd, pkg: pkg}
				}
			}
		}
		g.indexTypes(pkg)
	}

	// Pass 2: resolve each node's outgoing edges. Iterate files, not
	// the node map, so edge order is deterministic.
	for _, pkg := range sorted {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn := declFunc(pkg.Info, fd)
				if n := g.nodes[fn]; n != nil {
					n.callees = g.collectCallees(pkg.Info, fd.Body)
				}
			}
		}
	}
	return g
}

// indexTypes adds pkg's named types to the CHA index. Scope names are
// already sorted, keeping the index deterministic.
func (g *CallGraph) indexTypes(pkg *Package) {
	if pkg.Types == nil {
		return
	}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || named.NumMethods() == 0 {
			continue
		}
		tm := &typeMethods{byName: make(map[string]*types.Func)}
		for i := 0; i < named.NumMethods(); i++ {
			m := originFunc(named.Method(i))
			tm.byName[m.Name()] = m
		}
		g.concretes = append(g.concretes, tm)
	}
}

// classifyNamedArgs records named functions passed where classifyFuncLits
// records literals: as transaction bodies (Atomic/Open/Nested) or as
// handlers (OnCommit family, plain or Guarded).
func (g *CallGraph) classifyNamedArgs(info *types.Info, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fnAt := func(i int) *types.Func {
			if i >= len(call.Args) {
				return nil
			}
			return exprFunc(info, call.Args[i])
		}
		switch {
		case isSTMMethod(info, call, "Thread", "Atomic"),
			isSTMMethod(info, call, "Tx", "Open"),
			isSTMMethod(info, call, "Tx", "Nested"):
			if fn := fnAt(0); fn != nil {
				g.txBodyFuncs[fn] = true
			}
		case isSTMMethod(info, call, "Thread", "AtomicRead"):
			// A read-only body is still a transaction body (it runs with
			// a live *stm.Tx, so the tx-context rules apply) and is
			// additionally rooted by the write-in-readonly rule.
			if fn := fnAt(0); fn != nil {
				g.txBodyFuncs[fn] = true
				g.readonlyBodyFuncs[fn] = true
			}
		case isSTMMethod(info, call, "Tx", "OnCommit"),
			isSTMMethod(info, call, "Tx", "OnAbort"),
			isSTMMethod(info, call, "Tx", "OnTopCommit"),
			isSTMMethod(info, call, "Tx", "OnTopAbort"):
			if fn := fnAt(0); fn != nil {
				g.handlerFuncs[fn] = true
			}
		case isSTMMethod(info, call, "Tx", "OnCommitGuarded"),
			isSTMMethod(info, call, "Tx", "OnAbortGuarded"),
			isSTMMethod(info, call, "Tx", "OnTopCommitGuarded"),
			isSTMMethod(info, call, "Tx", "OnTopAbortGuarded"):
			if fn := fnAt(1); fn != nil {
				g.handlerFuncs[fn] = true
			}
		}
		return true
	})
}

// collectCallees resolves every call on the synchronous path under
// body to graph nodes, deduplicated in first-appearance order.
func (g *CallGraph) collectCallees(info *types.Info, body ast.Node) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	g.inspectSyncPath(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			for _, t := range g.Targets(info, call) {
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		}
		return true
	})
	return out
}

// inspectSyncPath walks n, pruning subtrees that do not execute on the
// enclosing function's synchronous path: go statements (the spawned
// call runs concurrently) and function literals registered as handlers
// or launched as goroutines (they are analysis roots of their own).
// Plain closures and transaction-body literals are walked — in this
// codebase both are invoked inline.
func (g *CallGraph) inspectSyncPath(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.GoStmt:
			return false
		case *ast.FuncLit:
			if k := g.litKinds[c]; k == bodyHandler || k == bodyGo {
				return false
			}
		}
		if c == nil {
			return true
		}
		return visit(c)
	})
}

// Targets resolves a call expression to the graph nodes it may invoke:
// the called function itself when it is declared in the module, or —
// for an interface method — every module type whose method-name set
// covers the interface (CHA by name; see the type comment's caveats).
// Calls to the standard library or through function values resolve to
// nothing.
func (g *CallGraph) Targets(info *types.Info, call *ast.CallExpr) []*types.Func {
	fn := originFunc(calleeFunc(info, call))
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		return g.implementers(fn)
	}
	if g.nodes[fn] != nil {
		return []*types.Func{fn}
	}
	return nil
}

// implementers returns the module methods an interface method call may
// dispatch to, caching per interface method.
func (g *CallGraph) implementers(iface *types.Func) []*types.Func {
	g.chaMu.Lock()
	defer g.chaMu.Unlock()
	if out, ok := g.chaCache[iface]; ok {
		return out
	}
	out := []*types.Func{}
	sig := iface.Type().(*types.Signature)
	if it, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
		for _, tm := range g.concretes {
			covers := true
			for i := 0; i < it.NumMethods(); i++ {
				im := it.Method(i)
				m := tm.byName[im.Name()]
				if m == nil || !arityMatch(m, im) {
					covers = false
					break
				}
			}
			if !covers {
				continue
			}
			if m := tm.byName[iface.Name()]; m != nil && g.nodes[m] != nil {
				out = append(out, m)
			}
		}
	}
	g.chaCache[iface] = out
	return out
}

// arityMatch reports whether a concrete method could satisfy an
// interface method: same parameter and result counts. Interface
// satisfaction requires identical signatures, so count equality is a
// sound relaxation — and unlike full identity it survives generic
// instantiation unchanged.
func arityMatch(m, im *types.Func) bool {
	ms, ok1 := m.Type().(*types.Signature)
	is, ok2 := im.Type().(*types.Signature)
	return ok1 && ok2 &&
		ms.Params().Len() == is.Params().Len() &&
		ms.Results().Len() == is.Results().Len()
}

// effect is one forbidden operation found lexically in a function body
// or window — what it is, and where.
type effect struct {
	pos  token.Pos
	desc string
}

// reachSearcher runs bounded-depth reachability queries for one rule:
// direct computes a node's own effects (memoized), skip prunes trusted
// nodes — neither scanned nor traversed through.
type reachSearcher struct {
	g      *CallGraph
	direct func(n *callNode) []effect
	skip   func(fn *types.Func) bool
	cache  map[*types.Func][]effect
	mu     sync.Mutex
}

// newSearcher creates a searcher over the graph. A searcher may be
// shared across concurrently-checked packages; its memo is locked.
func (g *CallGraph) newSearcher(direct func(n *callNode) []effect, skip func(fn *types.Func) bool) *reachSearcher {
	return &reachSearcher{g: g, direct: direct, skip: skip, cache: make(map[*types.Func][]effect)}
}

// directEffects returns the memoized lexical effects of fn's body.
func (s *reachSearcher) directEffects(fn *types.Func) []effect {
	s.mu.Lock()
	effs, ok := s.cache[fn]
	s.mu.Unlock()
	if ok {
		return effs
	}
	effs = []effect{}
	if n := s.g.nodes[fn]; n != nil {
		effs = s.direct(n)
	}
	s.mu.Lock()
	s.cache[fn] = effs
	s.mu.Unlock()
	return effs
}

// fromCall searches everything reachable from call within reachBudget
// call edges (BFS, so the reported chain is a shortest one) and returns
// the first effect found together with the chain of functions leading
// to it, ordered from the call's target to the effect's owner.
func (s *reachSearcher) fromCall(info *types.Info, call *ast.CallExpr) (chain []*types.Func, eff effect, found bool) {
	type item struct {
		fn     *types.Func
		parent int // index into items, -1 for roots
		depth  int
	}
	var items []item
	visited := make(map[*types.Func]bool)
	enqueue := func(fn *types.Func, parent, depth int) {
		if !visited[fn] && !s.skip(fn) {
			visited[fn] = true
			items = append(items, item{fn, parent, depth})
		}
	}
	for _, t := range s.g.Targets(info, call) {
		enqueue(t, -1, 1)
	}
	for i := 0; i < len(items); i++ {
		it := items[i]
		if effs := s.directEffects(it.fn); len(effs) > 0 {
			for j := i; j >= 0; j = items[j].parent {
				chain = append(chain, items[j].fn)
			}
			for a, b := 0, len(chain)-1; a < b; a, b = a+1, b-1 {
				chain[a], chain[b] = chain[b], chain[a]
			}
			return chain, effs[0], true
		}
		if it.depth >= reachBudget {
			continue
		}
		if n := s.g.nodes[it.fn]; n != nil {
			for _, callee := range n.callees {
				enqueue(callee, i, it.depth+1)
			}
		}
	}
	return nil, effect{}, false
}

// funcDisplayName renders a function compactly for chain diagnostics:
// Type.Method for methods, package.Func otherwise.
func funcDisplayName(fn *types.Func) string {
	if named := recvNamed(fn); named != nil {
		return named.Obj().Name() + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// describeChain renders "a → b → <effect> (file:line)" for a
// reachability diagnostic.
func (s *reachSearcher) describeChain(chain []*types.Func, eff effect) string {
	var b []byte
	for _, fn := range chain {
		b = append(b, funcDisplayName(fn)...)
		b = append(b, " → "...)
	}
	b = append(b, eff.desc...)
	pos := s.g.fset.Position(eff.pos)
	b = append(b, " ("...)
	b = append(b, shortPath(pos.Filename)...)
	b = append(b, ':')
	var num [12]byte
	i := len(num)
	for l := pos.Line; ; {
		i--
		num[i] = byte('0' + l%10)
		l /= 10
		if l == 0 {
			break
		}
	}
	b = append(b, num[i:]...)
	b = append(b, ')')
	return string(b)
}

// shortPath trims a path to its final element for in-message positions
// (the diagnostic's own Pos carries the full path).
func shortPath(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}
