package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package together with everything
// the rule passes need: its syntax trees (with comments, for the
// suppression directives) and the go/types facts.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking errors. A package with type
	// errors still carries as much type information as the checker
	// could recover, but stmlint treats it as a load failure.
	TypeErrors []error
}

// Loader loads and type-checks the packages of a single module plus
// their standard-library dependencies using only the standard library
// (go/parser, go/types, go/importer) — no golang.org/x/tools. Module
// dependencies outside the module itself are not supported, which is
// exactly the situation of this repository (stdlib-only go.mod).
type Loader struct {
	// Fset is shared by every package the loader touches, so positions
	// from any of them render correctly.
	Fset *token.FileSet
	// ModuleDir is the absolute path of the module root (the directory
	// containing go.mod); ModulePath is the declared module path.
	ModuleDir  string
	ModulePath string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool

	// preparsed caches files parsed ahead of time by Preparse, keyed by
	// absolute file path. Parsing is the one loader stage that is safe
	// to parallelize (FileSet is locked internally; type-checking is not
	// parallel-safe because the source importer shares state), so
	// callers that know their package set up front can parse it across
	// cores before the serial type-checking walk begins.
	preparsed map[string]*ast.File
}

// NewLoader creates a loader for the module rooted at moduleDir, which
// must contain a go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %s is not a module root: %w", moduleDir, err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", moduleDir)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleDir:  abs,
		ModulePath: modPath,
		// The "source" importer type-checks standard-library packages
		// from $GOROOT source; unlike the default export-data importer
		// it needs no pre-compiled .a files.
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Import implements types.Importer: module-internal paths are resolved
// against the module directory and loaded recursively; everything else
// is assumed to be standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.moduleRel(path); ok {
		pkg, err := l.LoadDir(filepath.Join(l.ModuleDir, rel), path)
		if err != nil {
			return nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return pkg.Types, pkg.TypeErrors[0]
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// moduleRel maps an import path inside the module to a directory
// relative to the module root.
func (l *Loader) moduleRel(path string) (string, bool) {
	if path == l.ModulePath {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.FromSlash(rest), true
	}
	return "", false
}

// LoadDir parses and type-checks the package in dir under the given
// import path, caching the result. Test files (_test.go) are skipped:
// stmlint checks the discipline of production transactional code, and
// the STM's own tests intentionally break the rules to probe edge
// behavior.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") ||
			strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		path := filepath.Join(dir, name)
		if f, ok := l.preparsed[path]; ok {
			files = append(files, f)
			continue
		}
		f, err := parser.ParseFile(l.Fset, path, nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, pkg.Info)
	pkg.Types = tpkg
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// Preparse parses every buildable Go file of the given package
// directories in parallel and caches the syntax trees for LoadDir.
// Parse errors are deferred: the file is left out of the cache and
// LoadDir re-parses it serially, reporting the error with its usual
// context. Must be called before the corresponding LoadDir calls, not
// concurrently with them.
func (l *Loader) Preparse(dirs []string) {
	var paths []string
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") ||
				strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") ||
				strings.HasPrefix(name, "_") {
				continue
			}
			paths = append(paths, filepath.Join(dir, name))
		}
	}
	if l.preparsed == nil {
		l.preparsed = make(map[string]*ast.File, len(paths))
	}
	pending := paths[:0]
	for _, path := range paths {
		if _, ok := l.preparsed[path]; !ok {
			pending = append(pending, path)
		}
	}
	// Workers fill a private map; l.preparsed itself is only touched
	// before dispatch and after the final Wait.
	parsed := make(map[string]*ast.File, len(pending))
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, path := range pending {
		wg.Add(1)
		sem <- struct{}{}
		go func(path string) {
			defer wg.Done()
			defer func() { <-sem }()
			f, err := parser.ParseFile(l.Fset, path, nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return
			}
			mu.Lock()
			parsed[path] = f
			mu.Unlock()
		}(path)
	}
	wg.Wait()
	for path, f := range parsed {
		l.preparsed[path] = f
	}
}

// Packages returns every module package the loader has loaded so far,
// sorted by import path — the package universe a module-wide call
// graph should span.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, pkg := range l.pkgs {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// ModulePackages returns the import paths of every buildable package in
// the module, sorted. Hidden directories, testdata, and vendor trees
// are skipped, matching the go tool's ./... expansion.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir &&
			(strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			rel, err := filepath.Rel(l.ModuleDir, path)
			if err != nil {
				return err
			}
			if rel == "." {
				paths = append(paths, l.ModulePath)
			} else {
				paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// hasGoFiles reports whether dir directly contains at least one
// buildable (non-test) Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing a go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		abs = parent
	}
}
