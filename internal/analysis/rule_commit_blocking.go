package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// commit-window-blocking: nothing reachable from a commit-guard hold
// window or a handler body may block. A commit window serializes every
// transaction sharing its guards; a blocked window turns one slow
// transaction into a convoy ("On the Cost of Concurrency in TM" is the
// PAPERS.md entry arguing the window must stay tight). The blocking
// vocabulary covered: time.Sleep, channel send/receive (including
// range-over-channel and select without a default), sync.Mutex/RWMutex
// Lock/RLock, sync.WaitGroup.Wait, sync.Cond.Wait, os file I/O,
// os/exec, net, and stdout/log output. Trusted and skipped: the guard
// machinery itself (acquireGuards and friends — footprint acquisition
// is ordered and IS the window boundary), stm.Guard's methods, the
// /concurrent package (the deliberately lock-based baselines the
// benchmarks compare against, reachable through CHA over-approximation
// from any collections interface call), /obs (its emission inside
// windows is trace-in-commit's finding; reporting it twice under two
// rule IDs would double every diagnostic), and /obs/metrics (the live
// metrics plane's increment paths are atomic-only and are designed to
// run inside hold windows).
var ruleCommitBlocking = &Rule{
	ID:  "commit-window-blocking",
	Doc: "blocking operation (sleep, channel, mutex, I/O) reachable from a commit-guard hold window or handler",
	Run: runCommitBlocking,
}

// osBlockingFuncs are the os package functions treated as blocking I/O.
var osBlockingFuncs = map[string]bool{
	"Create": true, "CreateTemp": true, "Mkdir": true, "MkdirAll": true,
	"MkdirTemp": true, "Open": true, "OpenFile": true, "Pipe": true,
	"ReadDir": true, "ReadFile": true, "Remove": true, "RemoveAll": true,
	"Rename": true, "Stat": true, "Lstat": true, "Symlink": true,
	"Truncate": true, "WriteFile": true,
}

// osFileMethods are the *os.File methods treated as blocking I/O.
var osFileMethods = map[string]bool{
	"Read": true, "ReadAt": true, "ReadDir": true, "Write": true,
	"WriteAt": true, "WriteString": true, "Close": true, "Sync": true,
	"Seek": true, "Stat": true, "Truncate": true,
}

// netPureFuncs are net package functions that only parse or format and
// never touch the network.
var netPureFuncs = map[string]bool{
	"ParseIP": true, "ParseCIDR": true, "ParseMAC": true,
	"SplitHostPort": true, "JoinHostPort": true, "CIDRMask": true,
	"IPv4": true, "IPv4Mask": true,
}

// syncBlockingMethods are the sync package methods that park the
// goroutine (Unlock/Broadcast/Signal/Done never block).
var syncBlockingMethods = map[string]bool{
	"Lock": true, "RLock": true, "Wait": true,
}

// outputFuncs are fmt/log calls that write to the process's streams.
var outputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true, "Output": true,
}

func runCommitBlocking(p *Pass) {
	g := p.Graph
	searcher := g.newSearcher(func(n *callNode) []effect {
		return blockingEffectsIn(g, n.pkg.Info, n.decl.Body)
	}, blockingTrusted)

	info := p.Pkg.Info
	seen := make(map[string]bool)
	check := func(stmts []ast.Stmt, where string) {
		p.reportLexical(stmts, func(root ast.Node) []effect {
			return blockingEffectsIn(g, info, root)
		}, seen, func(desc string) string {
			return desc + " inside a " + where + "; a blocked window stalls every transaction sharing its guards — move the operation outside the guard"
		})
		p.reportReach(stmts, searcher, seen, func(head, chain string) string {
			return "call to " + head + " inside a " + where + " may block (" + chain + "); a blocked window stalls every transaction sharing its guards"
		})
	}
	p.forEachFile(func(f *ast.File) {
		p.forEachGuardWindow(f, func(w guardWindow) {
			check(w.body, "commit-guard hold window")
		})
		p.forEachHandlerBody(f, func(body *ast.BlockStmt) {
			check(body.List, "commit/abort handler (which runs with its guard held)")
		})
	})
}

// blockingTrusted prunes the reachability search at nodes whose
// blocking is sanctioned or already another rule's finding.
func blockingTrusted(fn *types.Func) bool {
	if guardMachineryNames[fn.Name()] || isGuardMethod(fn) {
		return true
	}
	if pkg := fn.Pkg(); pkg != nil {
		path := pkg.Path()
		if strings.HasSuffix(path, "/concurrent") || isObsPath(path) || isMetricsPath(path) {
			return true
		}
	}
	return false
}

// isMetricsPath matches the live metrics plane (internal/obs/metrics),
// trusted inside windows by design: its increment paths (Counter.Add,
// Summary.Observe, Gauge.Set) are atomic-only, and registration —
// which does take a mutex — happens at collection-construction time,
// never inside a window.
func isMetricsPath(path string) bool {
	return path == "metrics" || strings.HasSuffix(path, "/obs/metrics")
}

// blockingEffectsIn collects the blocking operations lexically present
// on the synchronous path under root, in source order. select needs
// bespoke traversal — its comm clauses (`case <-ch:`) are attempted
// non-blockingly once a default exists, so only a default-less select
// is itself an effect, and comm expressions are never individual ones.
func blockingEffectsIn(g *CallGraph, info *types.Info, root ast.Node) []effect {
	var effs []effect
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		if sel, ok := n.(*ast.SelectStmt); ok {
			hasDefault := false
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				effs = append(effs, effect{sel.Pos(), "select with no default case"})
			}
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, stmt := range cc.Body {
						walk(stmt)
					}
				}
			}
			return
		}
		g.inspectSyncPath(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.SelectStmt:
				// Never the root here — a select root is intercepted
				// above — so recursing cannot loop.
				walk(c)
				return false
			case *ast.SendStmt:
				effs = append(effs, effect{c.Arrow, "channel send"})
			case *ast.UnaryExpr:
				if c.Op == token.ARROW {
					effs = append(effs, effect{c.OpPos, "channel receive"})
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[c.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						effs = append(effs, effect{c.For, "range over channel"})
					}
				}
			case *ast.CallExpr:
				if e, ok := blockingCall(info, c); ok {
					effs = append(effs, e)
				}
			}
			return true
		})
	}
	walk(root)
	return effs
}

// blockingCall classifies a call expression as a blocking operation by
// its callee's package and name.
func blockingCall(info *types.Info, call *ast.CallExpr) (effect, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return effect{}, false
	}
	path := fn.Pkg().Path()
	name := fn.Name()
	named := recvNamed(fn)
	blocked := func(what string) (effect, bool) {
		return effect{call.Pos(), "call to " + what}, true
	}
	switch {
	case path == "time" && name == "Sleep":
		return blocked("time.Sleep")
	case path == "sync" && named != nil && syncBlockingMethods[name]:
		return blocked("sync." + named.Obj().Name() + "." + name)
	case path == "os" && named == nil && osBlockingFuncs[name]:
		return blocked("os." + name)
	case path == "os" && named != nil && named.Obj().Name() == "File" && osFileMethods[name]:
		return blocked("os.File." + name)
	case path == "os/exec":
		return blocked("os/exec." + name)
	case (path == "net" || strings.HasPrefix(path, "net/")) && !(path == "net" && netPureFuncs[name]):
		what := path + "." + name
		if named != nil {
			what = path + "." + named.Obj().Name() + "." + name
		}
		return blocked(what)
	case (path == "fmt" || path == "log") && outputFuncs[name]:
		what := path + "." + name
		if named != nil {
			what = path + "." + named.Obj().Name() + "." + name
		}
		return blocked(what)
	}
	return effect{}, false
}
