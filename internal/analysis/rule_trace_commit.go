package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// trace-in-commit: observability work inside a commit-guard hold
// window. The STM promises that tracing is pay-as-you-go: event structs
// are built and Tracer.Trace is invoked only outside commit guards
// (stm.Guard), because a sink is arbitrary user code and event assembly
// allocates — either one inside a guard window would serialize every
// commit sharing that guard behind it. Conflict attribution inside the
// window is limited to plain field stores (stm's noteConflict and
// noteGuardWait); emission happens after the guards are released. This
// rule makes that boundary machine-checked: between a window-opening
// statement — a Guard.Lock() call, a call to a function named
// acquireGuards (the protocol's footprint acquisition), or a call to a
// lockGuards helper (a striped collection's all-stripes sweep) — and
// the matching Guard.Unlock() / releaseGuards() / unlockGuards(), no
// statement — nor any same-package function called from one — may call
// into the obs package or construct an obs value.
var ruleTraceInCommit = &Rule{
	ID:  "trace-in-commit",
	Doc: "observability emission (obs call or obs value construction) inside a commit-guard hold window",
	Run: runTraceInCommit,
}

// isObsPath reports whether an import path names the observability
// package, by suffix for the same reason isSTMPath matches by suffix.
func isObsPath(path string) bool {
	return path == "obs" || strings.HasSuffix(path, "/obs")
}

func runTraceInCommit(p *Pass) {
	info := p.Pkg.Info

	// Map declared functions to their bodies so in-window calls can be
	// followed one package deep.
	decls := make(map[*types.Func]*ast.FuncDecl)
	p.forEachFile(func(f *ast.File) {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	})

	// guarded collects same-package functions invoked with the guard
	// held; their bodies run inside the window even though the Lock call
	// is not lexically visible in them.
	guarded := make(map[*types.Func]bool)

	p.forEachFile(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			held := false
			for _, stmt := range block.List {
				if !held && stmtOpensGuardWindow(info, stmt) {
					held = true
				}
				if held {
					p.reportObsRefs(stmt, "")
					collectPackageCallees(info, stmt, guarded)
					if stmtClosesGuardWindow(info, stmt) {
						held = false
					}
				}
			}
			return true
		})
	})

	// Follow the guarded functions transitively within the package.
	visited := make(map[*types.Func]bool)
	queue := make([]*types.Func, 0, len(guarded))
	for fn := range guarded {
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if visited[fn] {
			continue
		}
		visited[fn] = true
		fd, ok := decls[fn]
		if !ok {
			continue
		}
		p.reportObsRefs(fd.Body, fn.Name())
		more := make(map[*types.Func]bool)
		collectPackageCallees(info, fd.Body, more)
		for callee := range more {
			if !visited[callee] {
				queue = append(queue, callee)
			}
		}
	}
}

// stmtOpensGuardWindow reports whether stmt directly opens a
// commit-guard hold window: it calls stm.Guard.Lock (the collections'
// fused critical sections), a function named acquireGuards (the commit
// protocol's blocking footprint acquisition — matched by name so the
// rule works both on the stm package's unexported helper and on
// fixtures that model it), or a function or method named lockGuards (a
// striped collection's all-stripes acquisition helper: a loop locking
// every stripe guard in ascending id order, e.g. for an iterator
// snapshot — everything after it runs with the whole instance's guards
// held). Deferred calls and function literals do not count: a defer
// runs at function return, and a closure body runs whenever it is
// invoked — neither changes whether a guard is held at the statements
// that follow.
func stmtOpensGuardWindow(info *types.Info, stmt ast.Stmt) bool {
	return stmtGuardOp(info, stmt, "Lock", "acquireGuards", "lockGuards")
}

// stmtClosesGuardWindow reports whether stmt directly closes the
// window: Guard.Unlock, or a call to a function named releaseGuards or
// a function or method named unlockGuards.
func stmtClosesGuardWindow(info *types.Info, stmt ast.Stmt) bool {
	return stmtGuardOp(info, stmt, "Unlock", "releaseGuards", "unlockGuards")
}

// stmtGuardOp matches three shapes of guard transition under stmt: the
// Guard method itself (type-checked against the stm package), a free
// function named freeName (acquireGuards/releaseGuards take the guard
// slice as an argument, so a method of that name would be something
// else), and a helper named helperName with or without a receiver —
// striped collections hang lockGuards/unlockGuards off the instance
// whose stripes they sweep.
func stmtGuardOp(info *types.Info, stmt ast.Stmt, method, freeName, helperName string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isSTMMethod(info, n, "Guard", method) {
				found = true
			} else if fn := calleeFunc(info, n); fn != nil {
				if fn.Name() == freeName && recvNamed(fn) == nil {
					found = true
				} else if fn.Name() == helperName {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// reportObsRefs flags calls into the obs package (including interface
// methods like Tracer.Trace, whose declaring package is obs) and
// composite literals of obs types under n. via names the guarded
// function the reference was reached through, for call-chain context;
// it is empty when the reference is lexically inside the window.
func (p *Pass) reportObsRefs(n ast.Node, via string) {
	info := p.Pkg.Info
	suffix := ""
	if via != "" {
		suffix = " (in " + via + ", which runs with the commit guard held)"
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, c)
			if fn != nil && fn.Pkg() != nil && isObsPath(fn.Pkg().Path()) {
				p.Reportf(c.Pos(), "call to obs.%s inside a commit-guard hold window%s; emit after the guard is released — a tracer sink is user code and must not run under a commit guard", fn.Name(), suffix)
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[c]; ok {
				if named, ok := tv.Type.(*types.Named); ok {
					obj := named.Origin().Obj()
					if obj.Pkg() != nil && isObsPath(obj.Pkg().Path()) {
						p.Reportf(c.Pos(), "constructing obs.%s inside a commit-guard hold window%s; event assembly allocates and belongs after the guard is released", obj.Name(), suffix)
					}
				}
			}
		}
		return true
	})
}

// collectPackageCallees records every function or method of the package
// under analysis that n calls.
func collectPackageCallees(info *types.Info, n ast.Node, out map[*types.Func]bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok {
			if fn := calleeFunc(info, call); fn != nil {
				out[fn] = true
			}
		}
		return true
	})
}
