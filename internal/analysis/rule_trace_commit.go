package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// trace-in-commit: observability work inside a commit-guard hold
// window. The STM promises that tracing is pay-as-you-go: event structs
// are built and Tracer.Trace is invoked only outside commit guards
// (stm.Guard), because a sink is arbitrary user code and event assembly
// allocates — either one inside a guard window would serialize every
// commit sharing that guard behind it. Conflict attribution inside the
// window is limited to plain field stores (stm's noteConflict and
// noteGuardWait); emission happens after the guards are released. This
// rule makes that boundary machine-checked over the whole module: no
// statement of a guard-hold window or handler body — nor anything
// reachable from one through the call graph, across packages — may
// call into the obs package or construct an obs value. Lexical
// violations are reported at the offending expression; reachable ones
// at the in-window call site, with the call chain in the message, so
// any suppression stays next to the window that owns the problem.
var ruleTraceInCommit = &Rule{
	ID:  "trace-in-commit",
	Doc: "observability emission (obs call or obs value construction) inside a commit-guard hold window",
	Run: runTraceInCommit,
}

// isObsPath reports whether an import path names the observability
// package, by suffix for the same reason isSTMPath matches by suffix.
func isObsPath(path string) bool {
	return path == "obs" || strings.HasSuffix(path, "/obs")
}

func runTraceInCommit(p *Pass) {
	g := p.Graph
	// The search stops at obs package boundaries: the forbidden thing
	// is entering obs (or building its values) with a guard held, which
	// the *edge* into obs already is — descending inside would only
	// produce longer chains for the same finding.
	searcher := g.newSearcher(func(n *callNode) []effect {
		return obsEffectsIn(g, n.pkg.Info, n.decl.Body)
	}, func(fn *types.Func) bool {
		return fn.Pkg() != nil && isObsPath(fn.Pkg().Path())
	})

	info := p.Pkg.Info
	seen := make(map[string]bool)
	check := func(stmts []ast.Stmt, where string) {
		p.reportLexical(stmts, func(root ast.Node) []effect {
			return obsEffectsIn(g, info, root)
		}, seen, func(desc string) string {
			return desc + " inside a " + where + "; emit after the guard is released — a tracer sink is user code and event assembly allocates, and neither may run under a commit guard"
		})
		p.reportReach(stmts, searcher, seen, func(head, chain string) string {
			return "call to " + head + " inside a " + where + " reaches observability emission (" + chain + "); emit after the guard is released"
		})
	}
	p.forEachFile(func(f *ast.File) {
		p.forEachGuardWindow(f, func(w guardWindow) {
			check(w.body, "commit-guard hold window")
		})
		p.forEachHandlerBody(f, func(body *ast.BlockStmt) {
			check(body.List, "commit/abort handler (which runs with its guard held)")
		})
	})
}

// obsEffectsIn collects references to the obs package lexically on the
// synchronous path under root: calls whose callee is declared in obs
// (including interface methods like Tracer.Trace) and composite
// literals of obs types.
func obsEffectsIn(g *CallGraph, info *types.Info, root ast.Node) []effect {
	var effs []effect
	g.inspectSyncPath(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn != nil && fn.Pkg() != nil && isObsPath(fn.Pkg().Path()) {
				effs = append(effs, effect{n.Pos(), "call to obs." + fn.Name()})
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				if named, ok := tv.Type.(*types.Named); ok {
					obj := named.Origin().Obj()
					if obj.Pkg() != nil && isObsPath(obj.Pkg().Path()) {
						effs = append(effs, effect{n.Pos(), "constructing obs." + obj.Name()})
					}
				}
			}
		}
		return true
	})
	return effs
}
