package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// guard-order: multi-guard acquisition must go through the footprint
// machinery or be provably ordered. The commit protocol is deadlock-
// free because every path that holds more than one stm.Guard acquires
// them in ascending ID order — acquireGuards over a sorted footprint,
// or a striped collection's lockGuards sweep. A manual second
// Guard.Lock while one is held (directly in the window, or anywhere a
// call from the window reaches) reintroduces exactly the lock-order
// inversion the protocol exists to rule out. Three shapes are flagged:
//
//   - a loop that acquires guards without releasing inside the body
//     (a footprint sweep), unless the enclosing function is itself the
//     sanctioned machinery (named lockGuards or acquireGuards);
//   - a direct acquisition — Guard.Lock, lockGuards, acquireGuards —
//     inside a window or handler body;
//   - an acquisition reachable through calls from a window or handler.
//
// The escape hatch for genuinely ordered manual code: nest the
// acquisitions under an if whose condition compares the two guards'
// ID()s — the canonical ascending-order proof — and the block is
// exempt.
var ruleGuardOrder = &Rule{
	ID:  "guard-order",
	Doc: "manual multi-guard acquisition outside the footprint machinery or a proven ascending ID order",
	Run: runGuardOrder,
}

func runGuardOrder(p *Pass) {
	g := p.Graph
	searcher := g.newSearcher(func(n *callNode) []effect {
		return guardAcquireEffectsIn(g, n.pkg.Info, n.decl.Body)
	}, func(fn *types.Func) bool { return false })

	info := p.Pkg.Info
	seen := make(map[string]bool)
	p.forEachFile(func(f *ast.File) {
		exempt := orderProvenBlocks(info, f)
		p.checkAcquisitionLoops(f, seen)

		check := func(block *ast.BlockStmt, stmts []ast.Stmt, where string) {
			if block != nil && exempt[block] {
				return
			}
			p.reportLexical(stmts, func(root ast.Node) []effect {
				return guardAcquireEffectsIn(g, info, root)
			}, seen, func(desc string) string {
				return desc + " while a guard is already held " + where + "; acquire multi-guard footprints through lockGuards/acquireGuards (ascending ID order), or guard the nesting with an explicit ID() comparison"
			})
			p.reportReach(stmts, searcher, seen, func(head, chain string) string {
				return "call to " + head + " " + where + " acquires another guard (" + chain + "); acquire multi-guard footprints through lockGuards/acquireGuards (ascending ID order)"
			})
		}
		p.forEachGuardWindow(f, func(w guardWindow) {
			check(w.block, w.body, "inside a commit-guard hold window")
		})
		p.forEachHandlerBody(f, func(body *ast.BlockStmt) {
			check(body, body.List, "inside a commit/abort handler (which runs with its guard held)")
		})
	})
}

// checkAcquisitionLoops flags loops that lock a guard per iteration
// without a matching in-iteration unlock — a manual footprint sweep —
// unless the enclosing declaration is the sanctioned machinery itself.
func (p *Pass) checkAcquisitionLoops(f *ast.File, seen map[string]bool) {
	info := p.Pkg.Info
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil || guardMachineryNames[fd.Name.Name] {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			lock, unlock := loopGuardOps(info, body)
			if lock != token.NoPos || unlock {
				// Either way, don't descend: a nested loop's ops were
				// already counted against this one.
				if lock != token.NoPos && !unlock {
					msg := "loop acquires a guard every iteration without releasing it; a manual footprint sweep deadlocks against the commit protocol unless it is the lockGuards/acquireGuards machinery itself (ascending ID order)"
					key := dedupKey(lock, msg)
					if !seen[key] {
						seen[key] = true
						p.Reportf(lock, "%s", msg)
					}
				}
				return false
			}
			return true
		})
	}
}

// loopGuardOps scans a loop body (synchronous path, deferred unlocks
// excluded — a deferred release happens at function return, after every
// iteration has already locked) for Guard.Lock and Guard.Unlock calls.
func loopGuardOps(info *types.Info, body *ast.BlockStmt) (lock token.Pos, unlock bool) {
	lock = token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isSTMMethod(info, n, "Guard", "Lock") && lock == token.NoPos {
				lock = n.Pos()
			}
			if isSTMMethod(info, n, "Guard", "Unlock") {
				unlock = true
			}
		}
		return true
	})
	return lock, unlock
}

// guardAcquireOpenerNames are the multi-guard openers whose *call*
// counts as acquiring more guards when it happens with one already
// held: the striped collections' sweeps plus the footprint machinery.
var guardAcquireOpenerNames = map[string]bool{
	"lockGuards":     true,
	"lockStripeSpan": true,
	"lockLanes":      true,
}

// guardAcquireEffectsIn collects guard acquisitions lexically on the
// synchronous path under root: Guard.Lock calls and calls to any
// multi-guard opener (lockGuards, lockStripeSpan, lockLanes,
// acquireGuards).
func guardAcquireEffectsIn(g *CallGraph, info *types.Info, root ast.Node) []effect {
	var effs []effect
	g.inspectSyncPath(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isSTMMethod(info, call, "Guard", "Lock") {
			effs = append(effs, effect{call.Pos(), "Guard.Lock"})
		} else if fn := calleeFunc(info, call); fn != nil &&
			(guardAcquireOpenerNames[fn.Name()] || (fn.Name() == "acquireGuards" && recvNamed(fn) == nil)) {
			effs = append(effs, effect{call.Pos(), "call to " + fn.Name()})
		}
		return true
	})
	return effs
}

// orderProvenBlocks collects the blocks exempted by the ascending-ID
// idiom: the then/else blocks of any if whose condition mentions two or
// more Guard.ID() calls — the programmer is explicitly ordering the
// acquisitions by ID, which is the protocol's own order.
func orderProvenBlocks(info *types.Info, f *ast.File) map[*ast.BlockStmt]bool {
	exempt := make(map[*ast.BlockStmt]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		ids := 0
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok && isSTMMethod(info, call, "Guard", "ID") {
				ids++
			}
			return true
		})
		if ids >= 2 {
			exempt[ifs.Body] = true
			if els, ok := ifs.Else.(*ast.BlockStmt); ok {
				exempt[els] = true
			}
		}
		return true
	})
	return exempt
}
