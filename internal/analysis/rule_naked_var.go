package analysis

import "go/ast"

// naked-var-access: Var.GetCommitted / Var.SetCommitted used where a
// *stm.Tx is in scope. The committed accessors bypass the versioned
// global clock entirely — no read-set entry, no snapshot validation, no
// buffered write — so using them where a transaction is available
// silently breaks serializability: the transaction can commit having
// observed (or produced) state no serial order explains. They exist for
// single-threaded setup and post-run inspection only; inside a
// transaction the same access must be Get(tx)/Set(tx).
var ruleNakedVar = &Rule{
	ID:  "naked-var-access",
	Doc: "Var.GetCommitted/SetCommitted used where a *stm.Tx is in scope (bypasses validation)",
	Run: runNakedVar,
}

func runNakedVar(p *Pass) {
	if p.isSTMPackage() {
		return
	}
	info := p.Pkg.Info
	p.forEachFile(func(f *ast.File) {
		p.walkCtx(f, func(n ast.Node, ctx funcCtx) {
			call, ok := n.(*ast.CallExpr)
			if !ok || !ctx.txInScope || ctx.inHandler {
				return
			}
			for _, name := range [...]string{"GetCommitted", "SetCommitted"} {
				if isSTMMethod(info, call, "Var", name) {
					verb := "Get(tx)"
					if name == "SetCommitted" {
						verb = "Set(tx)"
					}
					p.Reportf(call.Pos(), "Var.%s bypasses versioned-clock validation while a *stm.Tx is in scope; use %s", name, verb)
				}
			}
		})
	})
}
