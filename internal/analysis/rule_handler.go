package analysis

import (
	"go/ast"
	"go/types"
)

// handler-txn: transactional work inside a commit/abort handler. The
// paper's handler rules (§4, §5) are strict: handlers run after the
// transaction's fate is decided — commit handlers after the memory
// commit, abort handlers during rollback, both under the global commit
// guard — so they must operate on non-transactional state (the
// underlying collection, guarded by its own mutex) and must not start
// transactions, touch stm.Vars, or use the dead *stm.Tx they may have
// captured. A handler that did any of those could deadlock on the
// commit guard, observe a half-committed snapshot, or resurrect a
// transaction whose read/write sets are already discarded.
var ruleHandlerTxn = &Rule{
	ID:  "handler-txn",
	Doc: "commit/abort handler starts a transaction, touches a Var, or uses a captured *stm.Tx",
	Run: runHandlerTxn,
}

func runHandlerTxn(p *Pass) {
	if p.isSTMPackage() {
		return
	}
	info := p.Pkg.Info
	p.forEachFile(func(f *ast.File) {
		// Receivers of calls this rule already reported, so the ident
		// check below doesn't double-report `tx` in `tx.Nested(...)`.
		reported := make(map[*ast.Ident]bool)
		p.walkCtx(f, func(n ast.Node, ctx funcCtx) {
			if !ctx.inHandler {
				return
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				switch {
				case isSTMMethod(info, n, "Thread", "Atomic"),
					isSTMMethod(info, n, "Tx", "Open"),
					isSTMMethod(info, n, "Tx", "Nested"):
					p.Reportf(n.Pos(), "handler starts a transaction; handlers run after the transaction's fate is decided and must only touch non-transactional state")
					markReceiver(n, reported)
				case isSTMMethod(info, n, "Var", "Get"),
					isSTMMethod(info, n, "Var", "Set"),
					isSTMMethod(info, n, "Var", "GetCommitted"),
					isSTMMethod(info, n, "Var", "SetCommitted"):
					p.Reportf(n.Pos(), "handler touches transactional state (stm.Var); apply buffered updates to the underlying structure instead")
					markReceiver(n, reported)
				case isSTMMethod(info, n, "Tx", "OnCommit"),
					isSTMMethod(info, n, "Tx", "OnAbort"),
					isSTMMethod(info, n, "Tx", "OnTopCommit"),
					isSTMMethod(info, n, "Tx", "OnTopAbort"),
					isSTMMethod(info, n, "Tx", "OnCommitGuarded"),
					isSTMMethod(info, n, "Tx", "OnAbortGuarded"),
					isSTMMethod(info, n, "Tx", "OnTopCommitGuarded"),
					isSTMMethod(info, n, "Tx", "OnTopAbortGuarded"):
					p.Reportf(n.Pos(), "handler registers another handler on a finished transaction")
					markReceiver(n, reported)
				}
			case *ast.Ident:
				if reported[n] {
					return
				}
				obj, isVar := info.Uses[n].(*types.Var)
				if isVar && !obj.IsField() && stmNamedPtr(obj.Type(), "Tx") {
					p.Reportf(n.Pos(), "handler closure captures *stm.Tx %q; the transaction is finished when the handler runs — capture tx.Handle() or tx.Thread() before registering instead", n.Name)
				}
			}
		})
	})
}

// markReceiver records the receiver identifier of a method call so the
// ident pass skips it.
func markReceiver(call *ast.CallExpr, reported map[*ast.Ident]bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		reported[id] = true
	}
}
