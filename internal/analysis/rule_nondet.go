package analysis

import (
	"go/ast"
	"strings"
)

// nondeterminism: wall-clock or global-RNG calls inside transactional
// bodies or handlers. All time in this system is charged through
// stm.Clock so the same code runs on the deterministic virtual-CPU
// simulator (internal/sim) that regenerates the paper's figures;
// time.Now/time.Sleep read or spend host time the virtual clock never
// sees, and the global math/rand state is shared across goroutines, so
// either desynchronizes the simulated schedule and makes reruns
// unreproducible. Transactions retry, which makes it worse: each
// re-execution draws fresh wall-clock values, so aborted attempts
// diverge from committed ones. Use the worker's Clock for time and a
// per-thread seeded *rand.Rand (harness.Worker.RNG) for randomness.
var ruleNondeterminism = &Rule{
	ID:  "nondeterminism",
	Doc: "time.Now/time.Sleep/global math/rand inside a transactional body or handler",
	Run: runNondeterminism,
}

// nondetTimeFuncs are the "time" package functions that read or spend
// host wall-clock time.
var nondetTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func runNondeterminism(p *Pass) {
	info := p.Pkg.Info
	p.forEachFile(func(f *ast.File) {
		p.walkCtx(f, func(n ast.Node, ctx funcCtx) {
			call, ok := n.(*ast.CallExpr)
			if !ok || (!ctx.inTx && !ctx.inHandler) {
				return
			}
			fn := calleeFunc(info, call)
			if fn == nil || recvNamed(fn) != nil || fn.Pkg() == nil {
				return
			}
			where := "a transactional body"
			if ctx.inHandler {
				where = "a commit/abort handler"
			}
			switch fn.Pkg().Path() {
			case "time":
				if nondetTimeFuncs[fn.Name()] {
					p.Reportf(call.Pos(), "time.%s inside %s desynchronizes the deterministic virtual clock; charge time through the worker's stm.Clock", fn.Name(), where)
				}
			case "math/rand", "math/rand/v2":
				// Constructors (New, NewSource, NewPCG, ...) build
				// deterministic private generators and are fine; every
				// other exported function draws from the shared global
				// state.
				if !strings.HasPrefix(fn.Name(), "New") {
					p.Reportf(call.Pos(), "global %s.%s inside %s is shared mutable state and unseeded per worker; use a per-thread seeded *rand.Rand", fn.Pkg().Name(), fn.Name(), where)
				}
			}
		})
	})
}
