package analysis

import (
	"go/ast"
	"go/types"
)

// tx-escape: a *stm.Tx or *stm.Thread smuggled out of its transaction
// or worker. A Tx is only valid inside the dynamic extent of the
// Atomic/Open/Nested call that created it — its read/write sets die at
// commit — and a Thread is a single-worker context (unsynchronized RNG,
// in-transaction flag). The rule flags:
//
//   - go statements whose call captures or is passed a *stm.Tx or
//     *stm.Thread from the enclosing scope (the goroutine outlives the
//     transaction and races the owning worker);
//   - *stm.Tx values stored into struct fields, map/slice elements, or
//     package-level variables (storage that outlives the transaction);
//   - *stm.Tx values placed in composite literals.
//
// The STM implementation package itself is exempt: it constructs and
// threads Tx values by design.
var ruleTxEscape = &Rule{
	ID:  "tx-escape",
	Doc: "*stm.Tx/*stm.Thread escapes its transaction (goroutine capture or long-lived store)",
	Run: runTxEscape,
}

func runTxEscape(p *Pass) {
	if p.isSTMPackage() {
		return
	}
	info := p.Pkg.Info
	p.forEachFile(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGoCapture(p, n)
			case *ast.AssignStmt:
				checkEscapingAssign(p, n)
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if tv, ok := info.Types[v]; ok && stmNamedPtr(tv.Type, "Tx") {
						p.Reportf(v.Pos(), "*stm.Tx stored in a composite literal may outlive its transaction; pass the Tx as a parameter instead")
					}
				}
			}
			return true
		})
	})
}

// checkGoCapture flags *stm.Tx- and *stm.Thread-typed values that a go
// statement captures from the enclosing scope (free variables of the
// function literal, or arguments passed to the spawned call). Values
// rooted at declarations inside the go statement's own subtree — a
// thread the goroutine creates for itself — are fine.
func checkGoCapture(p *Pass, g *ast.GoStmt) {
	info := p.Pkg.Info
	declaredInside := func(id *ast.Ident) bool {
		obj := info.Uses[id]
		return obj != nil && obj.Pos() >= g.Pos() && obj.Pos() < g.End()
	}
	ast.Inspect(g.Call, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := info.Types[expr]
		if !ok {
			return true
		}
		var kind string
		switch {
		case stmNamedPtr(tv.Type, "Tx"):
			kind = "*stm.Tx"
		case stmNamedPtr(tv.Type, "Thread"):
			kind = "*stm.Thread"
		default:
			return true
		}
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			v, isVar := info.Uses[e].(*types.Var)
			if !isVar || v.IsField() || declaredInside(e) {
				return true
			}
			p.Reportf(e.Pos(), "%s %q captured by a goroutine escapes its %s; create a new Thread inside the goroutine",
				kind, e.Name, ownerNoun(kind))
			return false
		case *ast.SelectorExpr:
			if root := rootIdent(e); root != nil && declaredInside(root) {
				return true
			}
			p.Reportf(e.Pos(), "%s reached through %q inside a goroutine escapes its %s; create a new Thread inside the goroutine",
				kind, exprString(e), ownerNoun(kind))
			return false
		default:
			// Calls (e.g. stm.NewThread inside the goroutine) and other
			// expressions produce fresh values; descend into operands.
			return true
		}
	})
}

// rootIdent returns the leftmost identifier of a selector chain
// (a.b.c -> a), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprString renders a short selector chain for diagnostics.
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	default:
		return "expression"
	}
}

func ownerNoun(kind string) string {
	if kind == "*stm.Tx" {
		return "transaction"
	}
	return "worker"
}

// checkEscapingAssign flags assignments that store a *stm.Tx into
// storage that outlives the transaction: struct fields, map or slice
// elements, dereferenced pointers, and package-level variables.
func checkEscapingAssign(p *Pass, a *ast.AssignStmt) {
	info := p.Pkg.Info
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, rhs := range a.Rhs {
		tv, ok := info.Types[rhs]
		if !ok || !stmNamedPtr(tv.Type, "Tx") {
			continue
		}
		switch lhs := ast.Unparen(a.Lhs[i]).(type) {
		case *ast.SelectorExpr:
			p.Reportf(a.Pos(), "*stm.Tx stored into field %s outlives the transaction; pass the Tx as a parameter instead", lhs.Sel.Name)
		case *ast.IndexExpr, *ast.StarExpr:
			p.Reportf(a.Pos(), "*stm.Tx stored through a pointer or into a container outlives the transaction; pass the Tx as a parameter instead")
		case *ast.Ident:
			if obj := info.Uses[lhs]; obj != nil && obj.Parent() == obj.Pkg().Scope() {
				p.Reportf(a.Pos(), "*stm.Tx stored into package-level variable %s outlives the transaction", lhs.Name)
			}
		}
	}
}
