// Package analysis is stmlint: a static analyzer for the transactional
// discipline the paper's collection classes depend on. Atomos enforced
// the open-nesting rules in its compiler and language runtime; in Go
// nothing stops a caller from starting a transaction inside a
// transaction, leaking a *stm.Tx into a goroutine, bypassing the
// versioned clock with committed accessors, or desynchronizing the
// deterministic simulator with wall-clock time. Each rule in this
// package makes one of those conventions machine-checkable (in the
// spirit of Proust's machine-checked usage rules for transactional data
// structures).
//
// The engine is standard-library only: go/parser + go/types via the
// Loader, a rule registry, and //stmlint:ignore suppression comments.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one rule finding at a source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Rule is one stmlint check.
type Rule struct {
	// ID is the stable rule identifier reported in diagnostics and
	// accepted by //stmlint:ignore.
	ID string
	// Doc is a one-line description for -rules listings.
	Doc string
	// Run inspects the package and reports findings through the pass.
	Run func(p *Pass)
}

// Rules returns the registered rule set in a stable order.
func Rules() []*Rule {
	return []*Rule{
		ruleNestedAtomic,
		ruleTxEscape,
		ruleNakedVar,
		ruleNondeterminism,
		ruleHandlerTxn,
		ruleUncheckedAtomic,
		ruleTraceInCommit,
		ruleGuardOrder,
		ruleCommitBlocking,
		ruleWriteInReadonly,
	}
}

// Pass carries one package through one rule.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	// Graph is the module-wide call graph the interprocedural rules
	// (and the context classifier) consult. It spans at least the
	// package under analysis; under cmd/stmlint and TestRepoClean it
	// spans every package of the module.
	Graph *CallGraph

	rule  *Rule
	diags *[]Diagnostic
}

// Reportf records a diagnostic for the current rule at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule.ID,
		Message: fmt.Sprintf(format, args...),
	})
}

// Result is the outcome of checking one package: the surviving
// diagnostics, how many were suppressed by //stmlint:ignore, and how
// long each rule spent.
type Result struct {
	Diagnostics []Diagnostic
	Suppressed  int
	RuleTime    map[string]time.Duration
}

// Check runs every registered rule over pkg and returns the surviving
// (non-suppressed) diagnostics sorted by position. The call graph is
// built over the single package, which is what the hermetic fixture
// tests want; whole-module callers build one graph with BuildCallGraph
// and use CheckWithGraph.
func Check(fset *token.FileSet, pkg *Package) []Diagnostic {
	g := BuildCallGraph(fset, []*Package{pkg})
	return CheckWithGraph(fset, pkg, g).Diagnostics
}

// CheckWithGraph runs every registered rule over pkg against a
// prebuilt (typically module-wide) call graph. The graph is read-only
// here, so multiple packages can be checked concurrently against the
// same one.
func CheckWithGraph(fset *token.FileSet, pkg *Package, g *CallGraph) Result {
	var diags []Diagnostic
	times := make(map[string]time.Duration)
	for _, r := range Rules() {
		start := time.Now()
		p := &Pass{Fset: fset, Pkg: pkg, Graph: g, rule: r, diags: &diags}
		r.Run(p)
		times[r.ID] = time.Since(start)
	}
	diags, suppressed := filterSuppressed(fset, pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return Result{Diagnostics: diags, Suppressed: suppressed, RuleTime: times}
}

// ignoreDirective is one parsed //stmlint:ignore comment.
type ignoreDirective struct {
	rules  map[string]bool // nil means every rule ("all")
	reason string
}

// matches reports whether the directive suppresses the given rule ID.
func (d ignoreDirective) matches(rule string) bool {
	return d.rules == nil || d.rules[rule]
}

// parseIgnore parses "stmlint:ignore RULE[,RULE...] reason" from a
// comment's text (with the leading // or /* already stripped). It
// returns ok=false for comments that are not stmlint directives.
func parseIgnore(text string) (ignoreDirective, bool) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(text), "stmlint:ignore")
	if !ok {
		return ignoreDirective{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		// Bare "stmlint:ignore": suppress everything on the line.
		return ignoreDirective{}, true
	}
	d := ignoreDirective{reason: strings.Join(fields[1:], " ")}
	if fields[0] != "all" {
		d.rules = make(map[string]bool)
		for _, r := range strings.Split(fields[0], ",") {
			d.rules[r] = true
		}
	}
	return d, true
}

// filterSuppressed drops diagnostics covered by an //stmlint:ignore
// directive, returning the survivors and the suppressed count. A
// directive applies to its own source line (end-of-line comment) and
// to the line immediately following it (standalone comment above the
// offending statement).
func filterSuppressed(fset *token.FileSet, pkg *Package, diags []Diagnostic) ([]Diagnostic, int) {
	// file name -> line -> directives active on that line
	ignores := make(map[string]map[int][]ignoreDirective)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				d, ok := parseIgnore(text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				m := ignores[pos.Filename]
				if m == nil {
					m = make(map[int][]ignoreDirective)
					ignores[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], d)
				m[pos.Line+1] = append(m[pos.Line+1], d)
			}
		}
	}
	if len(ignores) == 0 {
		return diags, 0
	}
	kept := diags[:0]
	dropped := 0
	for _, d := range diags {
		suppressed := false
		for _, dir := range ignores[d.Pos.Filename][d.Pos.Line] {
			if dir.matches(d.Rule) {
				suppressed = true
				break
			}
		}
		if suppressed {
			dropped++
		} else {
			kept = append(kept, d)
		}
	}
	return kept, dropped
}

// forEachFile applies visit to every file of the pass's package.
func (p *Pass) forEachFile(visit func(f *ast.File)) {
	for _, f := range p.Pkg.Files {
		visit(f)
	}
}
