package analysis

import "go/ast"

// unchecked-atomic: Thread.Atomic's error result discarded. Atomic does
// not retry forever: if the body returns an error or calls tx.Abort the
// transaction rolls back and the error comes out of Atomic — that is
// the paper's program-directed self-abort channel (§4), the only way a
// transaction reports "I saw an inconsistency and undid myself".
// Dropping the result (a bare call statement, `_ =`, or go/defer-ing
// the call) silently swallows those aborts: the caller proceeds as if
// the transaction committed when none of its effects exist.
var ruleUncheckedAtomic = &Rule{
	ID:  "unchecked-atomic",
	Doc: "Thread.Atomic's error result discarded (user aborts are silently lost)",
	Run: runUncheckedAtomic,
}

func runUncheckedAtomic(p *Pass) {
	info := p.Pkg.Info
	isAtomic := func(e ast.Expr) (*ast.CallExpr, bool) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil, false
		}
		return call, isSTMMethod(info, call, "Thread", "Atomic")
	}
	p.forEachFile(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := isAtomic(n.X); ok {
					p.Reportf(call.Pos(), "Atomic's error result discarded; it carries user aborts (tx.Abort / body errors) whose effects were rolled back")
				}
			case *ast.GoStmt:
				if call, ok := isAtomic(n.Call); ok {
					p.Reportf(call.Pos(), "Atomic launched with go discards its error result; run it inside the goroutine and handle the error")
				}
			case *ast.DeferStmt:
				if call, ok := isAtomic(n.Call); ok {
					p.Reportf(call.Pos(), "deferred Atomic discards its error result; wrap it in a closure and handle the error")
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := isAtomic(n.Rhs[0])
				if !ok {
					return true
				}
				allBlank := true
				for _, lhs := range n.Lhs {
					if id, isID := ast.Unparen(lhs).(*ast.Ident); !isID || id.Name != "_" {
						allBlank = false
					}
				}
				if allBlank {
					p.Reportf(call.Pos(), "Atomic's error result assigned to _; it carries user aborts whose effects were rolled back")
				}
			}
			return true
		})
	})
}
