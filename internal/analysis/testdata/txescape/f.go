// Package fixture exercises the tx-escape rule.
package fixture

import "tcc/internal/stm"

type holder struct {
	tx *stm.Tx
}

var globalTx *stm.Tx

// bad: goroutine captures the transaction; it outlives the commit.
func escapeGo(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		go func() {
			tx.Poll() // want tx-escape
		}()
		return nil
	})
}

// bad: the worker thread is handed to a goroutine (threads are
// single-worker state: RNG and in-transaction flag are unsynchronized).
func escapeThreadGo(th *stm.Thread) {
	go runWorker(th) // want tx-escape
}

func runWorker(th *stm.Thread) {
	if err := th.Atomic(func(tx *stm.Tx) error { return nil }); err != nil {
		panic(err)
	}
}

// bad: stored into a struct field that outlives the transaction.
func escapeField(h *holder, th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		h.tx = tx // want tx-escape
		return nil
	})
}

// bad: stored into a package-level variable.
func escapeGlobal(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		globalTx = tx // want tx-escape
		return nil
	})
}

// bad: placed in a composite literal.
func escapeLit(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		h := holder{tx: tx} // want tx-escape
		_ = h
		return nil
	})
}

// clean: passing tx down the call stack as a parameter.
func cleanParam(th *stm.Thread, v *stm.Var[int]) error {
	return th.Atomic(func(tx *stm.Tx) error {
		bump(tx, v)
		return nil
	})
}

func bump(tx *stm.Tx, v *stm.Var[int]) { v.Set(tx, v.Get(tx)+1) }

// clean: a goroutine that creates its own worker thread.
func cleanGo(done chan error) {
	go func() {
		th := stm.NewThread(&stm.RealClock{}, 7)
		done <- th.Atomic(func(tx *stm.Tx) error { return nil })
	}()
}

// clean: a local rebinding does not outlive the transaction.
func cleanLocal(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		cur := tx
		cur.Poll()
		return nil
	})
}
