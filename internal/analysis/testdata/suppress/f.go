// Package fixture exercises //stmlint:ignore suppression.
package fixture

import "tcc/internal/stm"

var globalTx *stm.Tx

// Suppression on the line above the finding.
func suppressedAbove(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		//stmlint:ignore tx-escape fixture demonstrating standalone suppression
		globalTx = tx
		return nil
	})
}

// End-of-line suppression.
func suppressedEOL(th *stm.Thread) {
	_ = th.Atomic(func(tx *stm.Tx) error { return nil }) //stmlint:ignore unchecked-atomic body cannot fail
}

// "all" suppresses every rule on the line.
func suppressedAll(th *stm.Thread) {
	_ = th.Atomic(func(tx *stm.Tx) error { return nil }) //stmlint:ignore all fixture
}

// A directive naming a different rule does not suppress.
func wrongRule(th *stm.Thread) {
	//stmlint:ignore nondeterminism directive for another rule must not suppress
	_ = th.Atomic(func(tx *stm.Tx) error { return nil }) // want unchecked-atomic
}
