// Edge cases of //stmlint:ignore placement and scope, including
// interaction with the interprocedural rules (whose diagnostics land on
// the in-window call site, which is what makes call-site suppression
// possible at all).
package fixture

import (
	"time"

	"tcc/internal/stm"
)

var edgeGuard = stm.NewGuard()

// A comma-separated directive suppresses each named rule: the line
// below violates both guard-order (second guard while one is held) and
// nothing else — and the directive also names commit-window-blocking,
// which is legal even though it never fires here.
func multiRuleIgnore(other *stm.Guard) {
	edgeGuard.Lock()
	//stmlint:ignore guard-order,commit-window-blocking reviewed nesting
	other.Lock()
	other.Unlock()
	edgeGuard.Unlock()
}

// A multi-rule directive that names only rules which do NOT fire on
// the line leaves the real finding standing.
func multiRulePartial(th *stm.Thread) {
	//stmlint:ignore guard-order,commit-window-blocking wrong rules for this line
	_ = th.Atomic(func(tx *stm.Tx) error { return nil }) // want unchecked-atomic
}

// A directive covers its own line and the line immediately below —
// but not two lines below.
func twoLinesAbove() {
	edgeGuard.Lock()
	//stmlint:ignore commit-window-blocking too far away to cover the sleep

	time.Sleep(time.Millisecond) // want commit-window-blocking
	edgeGuard.Unlock()
}

// Same-line (end-of-line) suppression of an interprocedural finding:
// the diagnostic is reported at the in-window call site, so the
// comment sits on the call, not on the callee that actually blocks.
func eolOnCallSite(ch chan int) {
	edgeGuard.Lock()
	edgeNotify(ch) //stmlint:ignore commit-window-blocking drained by a dedicated receiver
	edgeGuard.Unlock()
}

func edgeNotify(ch chan int) {
	ch <- 1
}

// A directive above a call site suppresses the reachable finding the
// same way it suppresses a lexical one.
func aboveCallSite(ch chan int) {
	edgeGuard.Lock()
	//stmlint:ignore commit-window-blocking drained by a dedicated receiver
	edgeNotify(ch)
	edgeGuard.Unlock()
}
