// Package commitblocking exercises the commit-window-blocking rule:
// nothing reachable from a commit-guard hold window or a handler body
// may block — a blocked window stalls every transaction sharing its
// guards. The vocabulary covered here: time.Sleep, channel operations
// (send, receive, range, default-less select), sync mutex/waitgroup
// parking, and file I/O.
package commitblocking

import (
	"os"
	"sync"
	"time"

	"tcc/internal/obs/metrics"
	"tcc/internal/stm"
)

var guard = stm.NewGuard()

// sleepInWindow is the canonical convoy: every transaction sharing the
// guard waits out the sleep.
func sleepInWindow() {
	guard.Lock()
	time.Sleep(time.Millisecond) // want commit-window-blocking
	guard.Unlock()
}

// sleepOutside: the same operation after release is fine.
func sleepOutside() {
	guard.Lock()
	guard.Unlock()
	time.Sleep(time.Millisecond)
}

// chanInWindow: both directions of a channel operation park the
// goroutine while the guard is held.
func chanInWindow(ch chan int) {
	guard.Lock()
	ch <- 1 // want commit-window-blocking
	<-ch    // want commit-window-blocking
	guard.Unlock()
}

// rangeChanInWindow: range over a channel blocks on every iteration.
func rangeChanInWindow(ch chan int) {
	guard.Lock()
	for v := range ch { // want commit-window-blocking
		_ = v
	}
	guard.Unlock()
}

// selectInWindow: a select with no default commits to waiting.
func selectInWindow(a, b chan int) {
	guard.Lock()
	select { // want commit-window-blocking
	case <-a:
	case <-b:
	}
	guard.Unlock()
}

// selectWithDefault polls without parking, which is allowed; the comm
// clauses themselves are attempted non-blockingly.
func selectWithDefault(a chan int) {
	guard.Lock()
	select {
	case <-a:
	default:
	}
	guard.Unlock()
}

// mutexInWindow nests a parking lock inside the guard.
func mutexInWindow(mu *sync.Mutex) {
	guard.Lock()
	mu.Lock() // want commit-window-blocking
	mu.Unlock()
	guard.Unlock()
}

// fileInWindow does file I/O with the guard held.
func fileInWindow(f *os.File, buf []byte) {
	guard.Lock()
	_, _ = f.Write(buf) // want commit-window-blocking
	guard.Unlock()
}

// callsBlocking reaches the blocking operation through a call: the
// diagnostic lands on the in-window call site with the chain
// (notify → channel send) in its message.
func callsBlocking(ch chan int) {
	guard.Lock()
	notify(ch) // want commit-window-blocking
	guard.Unlock()
}

func notify(ch chan int) {
	ch <- 1 // only flagged when reached with a guard held
}

// handlerBlocks: handlers run with their registered guard held, so a
// send inside one convoys every commit sharing that guard.
func handlerBlocks(th *stm.Thread, done chan struct{}) error {
	return th.Atomic(func(tx *stm.Tx) error {
		tx.OnTopCommit(func() {
			done <- struct{}{} // want commit-window-blocking
		})
		return nil
	})
}

// spawnInWindow hands the blocking operation to a goroutine: the send
// happens off the window's synchronous path, so the window itself never
// parks. (Whether the spawned goroutine should exist is not this
// rule's question.)
func spawnInWindow(ch chan int) {
	guard.Lock()
	go func() {
		ch <- 1
	}()
	guard.Unlock()
}

// waitGroupInWindow parks until the group drains.
func waitGroupInWindow(wg *sync.WaitGroup) {
	guard.Lock()
	wg.Wait() // want commit-window-blocking
	guard.Unlock()
}

// metricsInWindow: the live metrics plane is trusted inside hold
// windows — its increment paths are atomic-only, so counting a
// violation while the guard is held is the plane's designed usage, not
// a convoy. No diagnostics expected here, even for the registration
// call (the trusted set prunes the search at the package edge).
var winViolations = metrics.Default.Counter("fixture_violations_total", "fixture")

func metricsInWindow() {
	guard.Lock()
	if metrics.On() {
		winViolations.Add(1)
	}
	guard.Unlock()
}

// metricsRegistrationInWindow: registration takes the registry mutex,
// but the whole package is trusted — stmlint leaves the discipline
// ("register at construction time") to review, flagging nothing.
func metricsRegistrationInWindow() {
	guard.Lock()
	metrics.Default.Counter("fixture_late_total", "fixture").Add(1)
	guard.Unlock()
}

// laneSweep models the segmented queue's all-lane hold window
// (lockLanes/unlockLanes) and the range-striped sorted map's interval
// span (lockStripeSpan/unlockStripeSpan): calls to them open and close
// commit-guard hold windows just like lockGuards, so blocking between
// them convoys every lane/stripe at once.
type laneSweep struct {
	guards []*stm.Guard
}

func (s *laneSweep) lockLanes() {
	for _, g := range s.guards {
		g.Lock()
	}
}

func (s *laneSweep) unlockLanes() {
	for _, g := range s.guards {
		g.Unlock()
	}
}

func (s *laneSweep) lockStripeSpan(lo, hi int) {
	for i := lo; i <= hi; i++ {
		s.guards[i].Lock()
	}
}

func (s *laneSweep) unlockStripeSpan(lo, hi int) {
	for i := lo; i <= hi; i++ {
		s.guards[i].Unlock()
	}
}

func sleepInLaneWindow(s *laneSweep) {
	s.lockLanes()
	time.Sleep(time.Millisecond) // want commit-window-blocking
	s.unlockLanes()
}

func sleepInSpanWindow(s *laneSweep) {
	s.lockStripeSpan(0, 1)
	time.Sleep(time.Millisecond) // want commit-window-blocking
	s.unlockStripeSpan(0, 1)
}

// suppressedSleep: a reviewed violation is silenced in place.
func suppressedSleep() {
	guard.Lock()
	//stmlint:ignore commit-window-blocking simulator-only path, no shared guards
	time.Sleep(time.Millisecond)
	guard.Unlock()
}
