// Package traceincommit exercises the trace-in-commit rule: between
// commitMu.Lock and commitMu.Unlock no code may call into the obs
// package or construct obs values — emission belongs after the guard is
// released.
package traceincommit

import (
	"sync"

	"tcc/internal/obs"
)

var commitMu sync.Mutex

// otherMu is a non-guard mutex; holding it does not restrict emission.
var otherMu sync.Mutex

// emitInWindow emits directly inside the window: both the event
// construction and the sink call are flagged.
func emitInWindow(tr obs.Tracer) {
	commitMu.Lock()
	e := obs.Event{Kind: obs.KindTxCommit} // want trace-in-commit
	tr.Trace(e)                            // want trace-in-commit
	commitMu.Unlock()
	tr.Trace(e) // emission after Unlock is the sanctioned pattern
}

// conditionalWindow mirrors the STM's real shape: the guard is taken
// under a condition, so the window opens at the if statement.
func conditionalWindow(tr obs.Tracer, guarded bool) {
	if guarded {
		commitMu.Lock()
	}
	tr.Trace(obs.Event{}) // want trace-in-commit trace-in-commit
	if guarded {
		commitMu.Unlock()
	}
	tr.Trace(obs.Event{})
}

// lockAndCall reaches emission through a same-package call chain; the
// diagnostics land on the emitting lines of the callees.
func lockAndCall() {
	commitMu.Lock()
	helper()
	commitMu.Unlock()
}

func helper() {
	deeper()
}

func deeper() {
	obs.SetTracer(nil) // want trace-in-commit
}

// deferredUnlock holds the guard until the function returns, so the
// trailing emission is still inside the window.
func deferredUnlock(tr obs.Tracer) {
	commitMu.Lock()
	defer commitMu.Unlock()
	tr.Trace(obs.Event{}) // want trace-in-commit trace-in-commit
}

// closureDoesNotOpen: a commitMu window inside a function literal does
// not leak into the enclosing function.
func closureDoesNotOpen(tr obs.Tracer) {
	f := func() {
		commitMu.Lock()
		commitMu.Unlock()
	}
	f()
	tr.Trace(obs.Event{})
}

// otherMutexIsFine: emission under an unrelated lock is allowed.
func otherMutexIsFine(tr obs.Tracer) {
	otherMu.Lock()
	tr.Trace(obs.Event{})
	otherMu.Unlock()
}

// fieldStoresAreFine mirrors stm's noteConflict: recording attribution
// with plain stores inside the window is the sanctioned mechanism.
type conflictNote struct {
	where string
	other uint64
}

func fieldStoresAreFine(n *conflictNote) {
	commitMu.Lock()
	n.where = "var#1"
	n.other = 42
	commitMu.Unlock()
}
