// Package traceincommit exercises the trace-in-commit rule: inside a
// commit-guard hold window — opened by stm.Guard.Lock, by a call to a
// function named acquireGuards, or by a striped collection's
// lockGuards helper; closed by Guard.Unlock / releaseGuards /
// unlockGuards — no code may call into the obs package or construct
// obs values. Emission belongs after the guards are released.
package traceincommit

import (
	"sync"

	"tcc/internal/obs"
	"tcc/internal/stm"
)

var guard = stm.NewGuard()

// otherMu is a plain mutex; holding it does not restrict emission.
var otherMu sync.Mutex

// emitInWindow emits directly inside the window: both the event
// construction and the sink call are flagged.
func emitInWindow(tr obs.Tracer) {
	guard.Lock()
	e := obs.Event{Kind: obs.KindTxCommit} // want trace-in-commit
	tr.Trace(e)                            // want trace-in-commit
	guard.Unlock()
	tr.Trace(e) // emission after Unlock is the sanctioned pattern
}

// conditionalWindow mirrors the collections' real shape: the guard is
// taken under a condition, so the window opens at the if statement.
func conditionalWindow(tr obs.Tracer, guarded bool) {
	if guarded {
		guard.Lock()
	}
	tr.Trace(obs.Event{}) // want trace-in-commit trace-in-commit
	if guarded {
		guard.Unlock()
	}
	tr.Trace(obs.Event{})
}

// footprint models the commit protocol's guard-set acquisition: calls
// to functions named acquireGuards/releaseGuards open and close the
// window just like direct Guard.Lock/Unlock.
func acquireGuards(gs []*stm.Guard) {
	for _, g := range gs {
		g.Lock()
	}
}

func releaseGuards(gs []*stm.Guard) {
	for _, g := range gs {
		g.Unlock()
	}
}

func footprintWindow(tr obs.Tracer, gs []*stm.Guard) {
	acquireGuards(gs)
	tr.Trace(obs.Event{}) // want trace-in-commit trace-in-commit
	releaseGuards(gs)
	tr.Trace(obs.Event{}) // emission after release: the protocol's emitGuardWaits shape
}

// stripedMap models a striped collection's all-stripes acquisition
// helper: lockGuards/unlockGuards are methods (the real helpers hang
// off the collection instance) that sweep every stripe guard, so a call
// to them opens/closes a hold window exactly like Guard.Lock/Unlock.
type stripedMap struct {
	guards []*stm.Guard
}

func (m *stripedMap) lockGuards() {
	for _, g := range m.guards {
		g.Lock()
	}
}

func (m *stripedMap) unlockGuards() {
	for _, g := range m.guards {
		g.Unlock()
	}
}

func stripedSnapshotWindow(tr obs.Tracer, m *stripedMap) {
	m.lockGuards()
	tr.Trace(obs.Event{}) // want trace-in-commit trace-in-commit
	m.unlockGuards()
	tr.Trace(obs.Event{}) // emission after the stripe sweep is released
}

// lockAndCall reaches emission through a same-package call chain; the
// diagnostic lands on the in-window call site, carrying the chain
// (helper → deeper → call to obs.SetTracer) in its message, so a
// suppression comment stays next to the window that owns the problem
// rather than on a callee shared with innocent callers.
func lockAndCall() {
	guard.Lock()
	helper() // want trace-in-commit
	guard.Unlock()
}

func helper() {
	deeper()
}

func deeper() {
	obs.SetTracer(nil) // only flagged when reached with a guard held
}

// deferredUnlock holds the guard until the function returns, so the
// trailing emission is still inside the window.
func deferredUnlock(tr obs.Tracer) {
	guard.Lock()
	defer guard.Unlock()
	tr.Trace(obs.Event{}) // want trace-in-commit trace-in-commit
}

// closureDoesNotOpen: a guard window inside a function literal does
// not leak into the enclosing function.
func closureDoesNotOpen(tr obs.Tracer) {
	f := func() {
		guard.Lock()
		guard.Unlock()
	}
	f()
	tr.Trace(obs.Event{})
}

// otherMutexIsFine: emission under an unrelated lock is allowed.
func otherMutexIsFine(tr obs.Tracer) {
	otherMu.Lock()
	tr.Trace(obs.Event{})
	otherMu.Unlock()
}

// fieldStoresAreFine mirrors stm's noteConflict and noteGuardWait:
// recording attribution with plain stores inside the window is the
// sanctioned mechanism.
type conflictNote struct {
	where string
	other uint64
}

func fieldStoresAreFine(n *conflictNote) {
	guard.Lock()
	n.where = "var#1"
	n.other = 42
	guard.Unlock()
}
