package protocolwindows

import "os"

// Eager TL2 holds lockwords from Set onward, so its commit-time
// lockWriteSet finds everything already owned — but the commit span is
// the same lockWriteSet → installWriteSet window, and blocking inside
// it stalls readers of every written var just the same.

func eagerCommit(t *tx, buf []*varCore, f *os.File) {
	if !lockWriteSet(t, buf) {
		return
	}
	_, _ = f.WriteString("commit") // want commit-window-blocking
	installWriteSet(buf, 1)
}

// eagerAbort releases via unlockWriteSet (the failed-commit path);
// blocking after the release is clean.
func eagerAbort(t *tx, buf []*varCore, ch chan int) {
	if !lockWriteSet(t, buf) {
		return
	}
	unlockWriteSet(buf)
	<-ch
}
