// Package protocolwindows exercises the commit-window-blocking rule on
// the protocol seam's hold windows: the write-set lockword span
// (lockWriteSet → unlockWriteSet/installWriteSet, held by every
// protocol's commit) and NOrec's sequence-lock span (norecSeqAcquire →
// norecSeqRelease). One file per protocol, each modelling that
// protocol's commit shape with a blocking operation inside the span
// (flagged) and the same operation after release (clean).
package protocolwindows

import (
	"time"
)

type tx struct{}
type varCore struct{}

// lockWriteSet, unlockWriteSet, and installWriteSet model the stm
// package's write-set lockword machinery; the rule matches them by
// name, so the fixture stands in for internal/stm/protocol_tl2.go.
func lockWriteSet(t *tx, buf []*varCore) bool { return true }

func unlockWriteSet(buf []*varCore) {}

func installWriteSet(buf []*varCore, wv uint64) {}

// tl2Commit holds every written var's lockword from lockWriteSet to
// installWriteSet; a sleep in between convoys every reader of those
// vars.
func tl2Commit(t *tx, buf []*varCore) bool {
	if !lockWriteSet(t, buf) {
		return false
	}
	time.Sleep(time.Millisecond) // want commit-window-blocking
	if !tl2Validate() {
		unlockWriteSet(buf)
		return false
	}
	installWriteSet(buf, 1)
	return true
}

// tl2CommitReach reaches the blocking operation through a call: the
// diagnostic lands on the in-window call site.
func tl2CommitReach(t *tx, buf []*varCore, ch chan int) {
	if !lockWriteSet(t, buf) {
		return
	}
	notifyWaiters(ch) // want commit-window-blocking
	installWriteSet(buf, 1)
}

// tl2CommitClean: the same operations after the installing release are
// outside the window.
func tl2CommitClean(t *tx, buf []*varCore, ch chan int) {
	if !lockWriteSet(t, buf) {
		return
	}
	installWriteSet(buf, 1)
	time.Sleep(time.Millisecond)
	notifyWaiters(ch)
}

func tl2Validate() bool { return true }

func notifyWaiters(ch chan int) {
	ch <- 1 // only flagged when reached with a window held
}
