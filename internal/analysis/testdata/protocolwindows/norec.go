package protocolwindows

import "sync"

// norecSeqAcquire and norecSeqRelease model NOrec's global sequence
// lock: between them norecSeq is odd and every NOrec transaction
// system-wide stalls, so this is the widest window the rule knows.
func norecSeqAcquire(t *tx) bool { return true }

func norecSeqRelease(s uint64) {}

// norecCommit parks on a mutex while holding the sequence lock — the
// whole protocol convoys behind it.
func norecCommit(t *tx, buf []*varCore, mu *sync.Mutex) bool {
	if !norecSeqAcquire(t) {
		return false
	}
	mu.Lock() // want commit-window-blocking
	mu.Unlock()
	if !lockWriteSet(t, buf) {
		norecSeqRelease(0)
		return false
	}
	installWriteSet(buf, 1)
	norecSeqRelease(2)
	return true
}

// norecCommitClean: the machinery calls themselves are the sanctioned
// window boundary, and operations after the release are free to block.
func norecCommitClean(t *tx, ch chan int) {
	if !norecSeqAcquire(t) {
		return
	}
	norecSeqRelease(2)
	<-ch
}
