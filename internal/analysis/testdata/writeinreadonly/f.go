// Package writeinreadonly exercises the write-in-readonly rule: a
// Var.Set — or a fallback-forcing registration (Tx.Open, the
// OnCommit/OnAbort families, AddTopGuard) — reachable from a function
// passed to Thread.AtomicRead silently demotes the snapshot read to
// the locking retry path. Reads, nested closures that only read, and
// writes inside ordinary Thread.Atomic bodies are all clean.
package writeinreadonly

import "tcc/internal/stm"

var v = stm.NewVar(0)

// readOnlyRead: pure reads are what AtomicRead is for — clean.
func readOnlyRead(th *stm.Thread) (int, error) {
	var got int
	err := th.AtomicRead(func(tx *stm.Tx) error {
		got = v.Get(tx)
		return nil
	})
	return got, err
}

// writeInBody: the canonical mistake — a Set directly in the body.
func writeInBody(th *stm.Thread) error {
	return th.AtomicRead(func(tx *stm.Tx) error {
		v.Set(tx, 1) // want write-in-readonly
		return nil
	})
}

// writeInClosure: a plain nested closure runs inline in the same
// transaction, so its write counts.
func writeInClosure(th *stm.Thread) error {
	return th.AtomicRead(func(tx *stm.Tx) error {
		bump := func() { v.Set(tx, v.Get(tx)+1) } // want write-in-readonly
		bump()
		return nil
	})
}

// writeThroughCall reaches the Set through a helper: the diagnostic
// lands on the in-body call site with the chain in its message.
func writeThroughCall(th *stm.Thread) error {
	return th.AtomicRead(func(tx *stm.Tx) error {
		increment(tx) // want write-in-readonly
		return nil
	})
}

func increment(tx *stm.Tx) {
	v.Set(tx, v.Get(tx)+1) // only flagged when reached from a read-only body
}

// readThroughCall: the same shape without a write stays clean.
func readThroughCall(th *stm.Thread) (int, error) {
	var got int
	err := th.AtomicRead(func(tx *stm.Tx) error {
		got = lookup(tx)
		return nil
	})
	return got, err
}

func lookup(tx *stm.Tx) int { return v.Get(tx) }

// namedBody: a named function passed to AtomicRead is a root too; the
// write is flagged at its own position inside the declaration.
func namedBody(th *stm.Thread) error {
	return th.AtomicRead(namedWriter)
}

func namedWriter(tx *stm.Tx) error {
	v.Set(tx, 2) // want write-in-readonly
	return nil
}

// openInBody: open nesting needs commit machinery the snapshot path
// does not run; the Open call itself is the finding (the write inside
// belongs to the open-nested child, not to this transaction).
func openInBody(th *stm.Thread) error {
	return th.AtomicRead(func(tx *stm.Tx) error {
		return tx.Open(func(otx *stm.Tx) error { // want write-in-readonly
			v.Set(otx, 3)
			return nil
		})
	})
}

// handlerInBody: registering a commit handler forces the fallback even
// though the handler never touches a Var.
func handlerInBody(th *stm.Thread, n *int) error {
	return th.AtomicRead(func(tx *stm.Tx) error {
		tx.OnTopCommit(func() { *n++ }) // want write-in-readonly
		return nil
	})
}

// writeInAtomic: an ordinary read-write transaction writes freely.
func writeInAtomic(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		v.Set(tx, 4)
		return nil
	})
}

// suppressedWrite: a reviewed demotion is silenced in place.
func suppressedWrite(th *stm.Thread) error {
	return th.AtomicRead(func(tx *stm.Tx) error {
		//stmlint:ignore write-in-readonly warm-up write, fallback accepted
		v.Set(tx, 5)
		return nil
	})
}
