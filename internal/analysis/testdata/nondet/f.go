// Package fixture exercises the nondeterminism rule.
package fixture

import (
	"math/rand"
	"sync/atomic"
	"time"

	"tcc/internal/stm"
)

// bad: wall clock and global RNG inside a transactional body — retries
// re-draw fresh values and the virtual clock never sees the time.
func nondetBody(th *stm.Thread, v *stm.Var[int64]) error {
	return th.Atomic(func(tx *stm.Tx) error {
		v.Set(tx, time.Now().UnixNano()) // want nondeterminism
		time.Sleep(time.Millisecond)     // want nondeterminism
		v.Set(tx, int64(rand.Intn(10)))  // want nondeterminism
		return nil
	})
}

// bad: wall clock inside a commit handler.
func nondetHandler(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		tx.OnCommit(func() {
			_ = time.Since(time.Unix(0, 0)) // want nondeterminism
		})
		return nil
	})
}

// bad: global RNG inside an open-nested body.
func nondetOpen(th *stm.Thread, v *stm.Var[float64]) error {
	return th.Atomic(func(tx *stm.Tx) error {
		return tx.Open(func(o *stm.Tx) error {
			v.Set(o, rand.Float64()) // want nondeterminism
			return nil
		})
	})
}

// clean: a deterministic per-worker generator, seeded explicitly.
func cleanSeededRNG(th *stm.Thread, v *stm.Var[int]) error {
	rng := rand.New(rand.NewSource(42))
	return th.Atomic(func(tx *stm.Tx) error {
		v.Set(tx, rng.Intn(10))
		return nil
	})
}

// clean: charging virtual time through the worker's clock.
func cleanClock(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		tx.Thread().Clock.Tick(100)
		return nil
	})
}

// clean: wall clock outside any transaction (measurement harness).
func cleanOutside(th *stm.Thread) (time.Duration, error) {
	start := time.Now()
	err := th.Atomic(func(tx *stm.Tx) error { return nil })
	return time.Since(start), err
}

// clean: sync/atomic operations inside a transactional body. Atomic
// loads, stores and CASes are deterministic single-word memory
// operations with no hidden host state — the idiom the stm core's TL2
// packed lockword uses on every read and commit — and must never be
// confused with the wall-clock/global-RNG nondeterminism this rule
// polices.
func cleanAtomics(th *stm.Thread, v *stm.Var[uint64], epoch *atomic.Uint64) error {
	return th.Atomic(func(tx *stm.Tx) error {
		v.Set(tx, epoch.Add(1))
		return nil
	})
}

// clean: a CAS spin loop inside a transactional body, the shape of the
// lockword acquire protocol.
func cleanCASSpin(th *stm.Thread, word *atomic.Uint64) error {
	return th.Atomic(func(tx *stm.Tx) error {
		for {
			w := word.Load()
			if word.CompareAndSwap(w, w|1) {
				return nil
			}
		}
	})
}
