// Package guardorder exercises the guard-order rule: every path that
// holds more than one stm.Guard must acquire them through the footprint
// machinery (lockGuards / acquireGuards, which sweep in ascending ID
// order) or under an explicit ID() comparison. A manual second
// Guard.Lock while one is held reintroduces the lock-order inversion
// the commit protocol exists to rule out.
package guardorder

import (
	"tcc/internal/stm"
)

var (
	guardA = stm.NewGuard()
	guardB = stm.NewGuard()
)

// nestedManual: the textbook inversion — a second guard acquired
// directly inside the first one's hold window.
func nestedManual() {
	guardA.Lock()
	guardB.Lock() // want guard-order
	guardB.Unlock()
	guardA.Unlock()
}

// nestedAscending is the sanctioned manual form: the nesting sits under
// an if whose condition compares the guards' IDs, which is the
// protocol's own ascending order made explicit.
func nestedAscending(a, b *stm.Guard) {
	if a.ID() < b.ID() {
		a.Lock()
		b.Lock()
		b.Unlock()
		a.Unlock()
	}
}

// sweepAll is a manual footprint sweep outside the machinery: every
// iteration locks and nothing inside the loop releases, so the caller
// ends up holding the whole set in slice order, not ID order.
func sweepAll(gs []*stm.Guard) {
	for _, g := range gs {
		g.Lock() // want guard-order
	}
	for _, g := range gs {
		g.Unlock()
	}
}

// perStripe holds at most one guard at a time: each iteration releases
// before the next acquires. No footprint, no ordering obligation.
func perStripe(gs []*stm.Guard) {
	for _, g := range gs {
		g.Lock()
		g.Unlock()
	}
}

// acquireGuards and lockGuards ARE the machinery: the sweep loop is
// their job (the real ones sort the footprint by ID first), so the
// loop check exempts functions with these names.
func acquireGuards(gs []*stm.Guard) {
	for _, g := range gs {
		g.Lock()
	}
}

type striped struct {
	guards []*stm.Guard
}

func (s *striped) lockGuards() {
	for _, g := range s.guards {
		g.Lock()
	}
}

func (s *striped) unlockGuards() {
	for _, g := range s.guards {
		g.Unlock()
	}
}

// footprintInWindow: even the sanctioned machinery must not be entered
// with a guard already held — the sweep orders its own set, but cannot
// order it against what the caller holds.
func footprintInWindow(gs []*stm.Guard) {
	guardA.Lock()
	acquireGuards(gs) // want guard-order
	guardA.Unlock()
}

// lockThenCall reaches the second acquisition through a call: the
// diagnostic lands on the in-window call site with the chain
// (grabOther → Guard.Lock) in its message.
func lockThenCall() {
	guardA.Lock()
	grabOther() // want guard-order
	guardA.Unlock()
}

func grabOther() {
	guardB.Lock()
	guardB.Unlock()
}

// handlerGrabs: a commit handler runs with its registered guard held,
// so acquiring another guard inside one is the same inversion.
func handlerGrabs(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		tx.OnTopCommit(func() {
			guardB.Lock() // want guard-order
			guardB.Unlock()
		})
		return nil
	})
}

// stripeSweepUnderGuard: calling a striped collection's lockGuards
// while already holding a guard is flagged at the call site.
func stripeSweepUnderGuard(s *striped) {
	guardA.Lock()
	s.lockGuards() // want guard-order
	s.unlockGuards()
	guardA.Unlock()
}

// lockStripeSpan/unlockStripeSpan model the range-striped sorted map's
// contiguous-interval sweep; lockLanes/unlockLanes the segmented
// queue's all-lane sweep. All four are machinery: their loops are
// their job (ascending ID order by construction).
func (s *striped) lockStripeSpan(lo, hi int) {
	for i := lo; i <= hi; i++ {
		s.guards[i].Lock()
	}
}

func (s *striped) unlockStripeSpan(lo, hi int) {
	for i := lo; i <= hi; i++ {
		s.guards[i].Unlock()
	}
}

func (s *striped) lockLanes() {
	for _, g := range s.guards {
		g.Lock()
	}
}

func (s *striped) unlockLanes() {
	for _, g := range s.guards {
		g.Unlock()
	}
}

// spanSweepUnderGuard: a sorted map's interval-span sweep entered with
// a guard already held is the same inversion as lockGuards.
func spanSweepUnderGuard(s *striped) {
	guardA.Lock()
	s.lockStripeSpan(0, 1) // want guard-order
	s.unlockStripeSpan(0, 1)
	guardA.Unlock()
}

// laneSweepUnderGuard: likewise the segmented queue's all-lane sweep.
func laneSweepUnderGuard(s *striped) {
	guardA.Lock()
	s.lockLanes() // want guard-order
	s.unlockLanes()
	guardA.Unlock()
}

// suppressedNested: a reviewed violation is silenced in place.
func suppressedNested() {
	guardA.Lock()
	//stmlint:ignore guard-order reviewed: B's owner is quiesced here
	guardB.Lock()
	guardB.Unlock()
	guardA.Unlock()
}

// sequentialIsFine holds one guard at a time; no footprint forms.
func sequentialIsFine() {
	guardA.Lock()
	guardA.Unlock()
	guardB.Lock()
	guardB.Unlock()
}
