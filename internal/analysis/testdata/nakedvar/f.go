// Package fixture exercises the naked-var-access rule.
package fixture

import "tcc/internal/stm"

// bad: committed read while inside a transaction bypasses snapshot
// validation — the transaction can commit on unserializable state.
func nakedInBody(th *stm.Thread, v *stm.Var[int]) error {
	return th.Atomic(func(tx *stm.Tx) error {
		if v.GetCommitted() > 0 { // want naked-var-access
			v.Set(tx, 0)
		}
		return nil
	})
}

// bad: committed write in a helper that has the transaction in scope
// (the write is neither buffered nor rolled back on abort).
func nakedWithTxParam(tx *stm.Tx, v *stm.Var[int]) {
	v.SetCommitted(42) // want naked-var-access
}

// clean: single-threaded setup before any transaction exists.
func cleanSetup(v *stm.Var[int]) {
	v.SetCommitted(1)
}

// clean: post-run inspection outside any transaction.
func cleanInspect(v *stm.Var[int]) int {
	return v.GetCommitted()
}

// clean: transactional access through the in-scope Tx.
func cleanTransactional(th *stm.Thread, v *stm.Var[int]) error {
	return th.Atomic(func(tx *stm.Tx) error {
		v.Set(tx, v.Get(tx)+1)
		return nil
	})
}
