// Package fixture exercises the nested-atomic rule.
package fixture

import "tcc/internal/stm"

// bad: Atomic directly inside an Atomic body.
func nestedDirect(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		return th.Atomic(func(tx2 *stm.Tx) error { // want nested-atomic
			return nil
		})
	})
}

// bad: Atomic inside a plain closure nested in the body; the closure is
// invoked inline, so the transaction is still running.
func nestedViaClosure(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		helper := func() error {
			return th.Atomic(func(tx2 *stm.Tx) error { return nil }) // want nested-atomic
		}
		return helper()
	})
}

// bad: Atomic inside an open-nested body — the thread is still inside
// the enclosing top-level transaction.
func nestedInOpen(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		return tx.Open(func(o *stm.Tx) error {
			return th.Atomic(func(tx2 *stm.Tx) error { return nil }) // want nested-atomic
		})
	})
}

// clean: closed and open nesting are the sanctioned forms.
func cleanNesting(th *stm.Thread, v *stm.Var[int]) error {
	return th.Atomic(func(tx *stm.Tx) error {
		if err := tx.Nested(func() error {
			v.Set(tx, 1)
			return nil
		}); err != nil {
			return err
		}
		return tx.Open(func(o *stm.Tx) error { return nil })
	})
}

// clean: sequential top-level transactions on one thread.
func cleanSequential(th *stm.Thread, v *stm.Var[int]) error {
	if err := th.Atomic(func(tx *stm.Tx) error {
		v.Set(tx, 1)
		return nil
	}); err != nil {
		return err
	}
	return th.Atomic(func(tx *stm.Tx) error {
		v.Set(tx, 2)
		return nil
	})
}

// clean: a goroutine spawned from a transaction is a different worker;
// an Atomic on a thread the goroutine creates for itself is fine.
func cleanGoroutine(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		go func() {
			inner := stm.NewThread(&stm.RealClock{}, 2)
			if err := inner.Atomic(func(tx2 *stm.Tx) error { return nil }); err != nil {
				panic(err)
			}
		}()
		return nil
	})
}
