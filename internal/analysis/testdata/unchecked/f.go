// Package fixture exercises the unchecked-atomic rule.
package fixture

import "tcc/internal/stm"

// bad: bare call statement drops the error.
func discardStmt(th *stm.Thread) {
	th.Atomic(func(tx *stm.Tx) error { return nil }) // want unchecked-atomic
}

// bad: explicit blank assignment still swallows user aborts.
func discardBlank(th *stm.Thread) {
	_ = th.Atomic(func(tx *stm.Tx) error { return nil }) // want unchecked-atomic
}

// bad: go'ing the call discards the error (and leaks the thread).
func discardGo(th *stm.Thread) {
	go th.Atomic(func(tx *stm.Tx) error { return nil }) // want tx-escape unchecked-atomic
}

// bad: deferring the call discards the error.
func discardDefer(th *stm.Thread) {
	defer th.Atomic(func(tx *stm.Tx) error { return nil }) // want unchecked-atomic
}

// clean: error propagated.
func checkErr(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error { return nil })
}

// clean: error handled.
func handleErr(th *stm.Thread) {
	if err := th.Atomic(func(tx *stm.Tx) error { return nil }); err != nil {
		panic(err)
	}
}
