// Package fixture exercises the handler-txn rule.
package fixture

import (
	"tcc/internal/stm"
)

type registry struct {
	commits int
	owner   *stm.Handle
}

// bad: commit handler touches transactional state.
func handlerVar(th *stm.Thread, v *stm.Var[int]) error {
	return th.Atomic(func(tx *stm.Tx) error {
		tx.OnCommit(func() {
			v.SetCommitted(1) // want handler-txn
		})
		return nil
	})
}

// bad: abort handler starts a new top-level transaction.
func handlerAtomic(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		tx.OnTopAbort(func() {
			err := th.Atomic(func(tx2 *stm.Tx) error { return nil }) // want handler-txn
			_ = err
		})
		return nil
	})
}

// bad: handler opens a nested transaction on the dead Tx.
func handlerOpen(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		tx.OnAbort(func() {
			err := tx.Open(func(o *stm.Tx) error { return nil }) // want handler-txn
			_ = err
		})
		return nil
	})
}

// bad: handler uses the captured *stm.Tx (dead by the time it runs).
func handlerCapturesTx(th *stm.Thread) error {
	return th.Atomic(func(tx *stm.Tx) error {
		tx.OnCommit(func() {
			tx.Poll() // want handler-txn
		})
		return nil
	})
}

// clean: the collection-class pattern — capture Handle and Thread
// before registering; the handler compensates with plain stores (the
// commit protocol already holds the registered guard for the whole
// handler window, so the handler takes no lock of its own) and charges
// time via DeferTick.
func cleanHandler(th *stm.Thread, reg *registry) error {
	return th.Atomic(func(tx *stm.Tx) error {
		h := tx.Handle()
		thd := tx.Thread()
		tx.OnTopCommit(func() {
			reg.commits++
			reg.owner = h
			thd.DeferTick(8)
		})
		return nil
	})
}
