package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// isSTMPath reports whether an import path names the STM package that
// defines Thread/Tx/Var/Handle. Matching by path suffix keeps the rules
// independent of the module name (fixtures, forks, renames).
func isSTMPath(path string) bool {
	return path == "stm" || strings.HasSuffix(path, "/stm")
}

// isSTMPackage reports whether the package under analysis is the STM
// implementation itself. The implementation is exempt from the rules
// that govern *clients* of the API (it constructs Tx values, touches
// varCore directly, and so on).
func (p *Pass) isSTMPackage() bool { return isSTMPath(p.Pkg.Path) }

// calleeFunc resolves the function or method called by call, or nil if
// the callee is not a declared function (e.g. a function-typed
// variable, a conversion, or a builtin).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// recvNamed returns the named type of fn's receiver (pointers
// dereferenced, generic instances reduced to their origin), or nil for
// package-level functions.
func recvNamed(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Origin()
}

// isSTMMethod reports whether call invokes the method recv.name of the
// STM package (e.g. isSTMMethod(call, "Thread", "Atomic")).
func isSTMMethod(info *types.Info, call *ast.CallExpr, recv, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	named := recvNamed(fn)
	if named == nil || named.Obj().Name() != recv {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && isSTMPath(pkg.Path())
}

// stmNamedPtr reports whether t is a pointer to the STM package's named
// type with the given name (*stm.Tx, *stm.Thread, ...).
func stmNamedPtr(t types.Type, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Origin().Obj()
	return obj.Name() == name && obj.Pkg() != nil && isSTMPath(obj.Pkg().Path())
}

// bodyKind classifies a function literal by how the STM will run it.
type bodyKind int

const (
	bodyPlain      bodyKind = iota
	bodyTx                  // argument to Thread.Atomic, Tx.Open or Tx.Nested
	bodyReadOnlyTx          // argument to Thread.AtomicRead (a transaction body that must not write)
	bodyHandler             // argument to OnCommit/OnAbort/OnTopCommit/OnTopAbort or a Guarded variant
	bodyGo                  // launched by a go statement
)

// funcCtx is the transactional context in effect at a node.
type funcCtx struct {
	// inTx: lexically inside the body closure of Atomic/Open/Nested
	// (including plain nested closures, which may be invoked inline).
	inTx bool
	// inHandler: lexically inside a commit/abort handler closure.
	inHandler bool
	// txInScope: a *stm.Tx is reachable here — either because we are
	// inside a transactional body or because an enclosing function (up
	// to the nearest goroutine boundary) declares a *stm.Tx parameter.
	txInScope bool
}

// classifyFuncLits maps every function literal in f to its bodyKind.
func classifyFuncLits(info *types.Info, f *ast.File) map[*ast.FuncLit]bodyKind {
	kinds := make(map[*ast.FuncLit]bodyKind)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				kinds[lit] = bodyGo
			}
		case *ast.CallExpr:
			litAt := func(i int) *ast.FuncLit {
				if i >= len(n.Args) {
					return nil
				}
				lit, _ := ast.Unparen(n.Args[i]).(*ast.FuncLit)
				return lit
			}
			switch {
			case isSTMMethod(info, n, "Thread", "Atomic"),
				isSTMMethod(info, n, "Tx", "Open"),
				isSTMMethod(info, n, "Tx", "Nested"):
				if lit := litAt(0); lit != nil {
					kinds[lit] = bodyTx
				}
			case isSTMMethod(info, n, "Thread", "AtomicRead"):
				if lit := litAt(0); lit != nil {
					kinds[lit] = bodyReadOnlyTx
				}
			case isSTMMethod(info, n, "Tx", "OnCommit"),
				isSTMMethod(info, n, "Tx", "OnAbort"),
				isSTMMethod(info, n, "Tx", "OnTopCommit"),
				isSTMMethod(info, n, "Tx", "OnTopAbort"):
				if lit := litAt(0); lit != nil {
					kinds[lit] = bodyHandler
				}
			case isSTMMethod(info, n, "Tx", "OnCommitGuarded"),
				isSTMMethod(info, n, "Tx", "OnAbortGuarded"),
				isSTMMethod(info, n, "Tx", "OnTopCommitGuarded"),
				isSTMMethod(info, n, "Tx", "OnTopAbortGuarded"):
				// Guarded registration takes (guard, fn): the handler
				// literal is the second argument.
				if lit := litAt(1); lit != nil {
					kinds[lit] = bodyHandler
				}
			}
		}
		return true
	})
	return kinds
}

// hasTxParam reports whether the function type declares a *stm.Tx
// parameter or receiver.
func hasTxParam(info *types.Info, ft *ast.FuncType, recv *ast.FieldList) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, field := range fl.List {
			if tv, ok := info.Types[field.Type]; ok && stmNamedPtr(tv.Type, "Tx") {
				return true
			}
		}
		return false
	}
	return check(ft.Params) || check(recv)
}

// walkCtx traverses f, invoking visit for every node with the
// transactional context in effect at that node. Goroutine bodies reset
// the context (they run concurrently with, not inside, the
// transaction); handler bodies run after the transaction's fate is
// decided and so clear inTx. Classification comes from the call graph,
// which spans the whole module: a named function registered as a
// handler or passed as a transaction body in *any* package carries
// that context into its declaration here.
func (p *Pass) walkCtx(f *ast.File, visit func(n ast.Node, ctx funcCtx)) {
	info := p.Pkg.Info
	g := p.Graph

	var walk func(n ast.Node, ctx funcCtx)
	walk = func(n ast.Node, ctx funcCtx) {
		switch n := n.(type) {
		case *ast.FuncDecl:
			ctx = funcCtx{txInScope: hasTxParam(info, n.Type, n.Recv)}
			if fn := declFunc(info, n); fn != nil {
				switch {
				case g.handlerFuncs[fn]:
					ctx.inHandler = true
				case g.txBodyFuncs[fn]:
					ctx.inTx = true
					ctx.txInScope = true
				}
			}
		case *ast.FuncLit:
			switch g.litKinds[n] {
			case bodyTx, bodyReadOnlyTx:
				ctx = funcCtx{inTx: true, txInScope: true}
			case bodyHandler:
				ctx = funcCtx{inHandler: true}
			case bodyGo:
				ctx = funcCtx{}
			default:
				// Plain closure: inherits its lexical context.
			}
			if hasTxParam(info, n.Type, nil) {
				ctx.txInScope = true
			}
		}
		visit2 := func(child ast.Node) bool {
			if child == nil || child == n {
				return child == n
			}
			walk(child, ctx)
			return false
		}
		visit(n, ctx)
		ast.Inspect(n, visit2)
	}
	walk(f, funcCtx{})
}
