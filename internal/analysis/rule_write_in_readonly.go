package analysis

import (
	"go/ast"
	"go/types"
)

// write-in-readonly: no write may be reachable from a function passed
// to Thread.AtomicRead. A read-only transaction rides the MVCC-lite
// snapshot path (DESIGN §4.4) — one clock sample, no lockword CAS, no
// guard acquisition, wait-free under writers. The first Var.Set (or
// anything else that needs commit machinery: Tx.Open, handler
// registration, AddTopGuard) silently demotes the whole transaction to
// the locking retry path, so the declared read-only intent and the
// perf it was chosen for are both lost at runtime with no signal
// beyond a fallback counter. This rule makes the demotion a build-time
// finding instead.
//
// Effects, per scan:
//
//   - Var.Set anywhere on the body's same-transaction synchronous
//     path, lexically or through the module call graph.
//   - Lexically in the AtomicRead body itself, the fallback-forcing
//     registrations too: Tx.Open, the OnCommit/OnAbort families
//     (Guarded or not), Tx.AddTopGuard. These are only flagged at the
//     root — library code reached from a snapshot read (the internal/
//     core collections in particular) branches on Tx.IsSnapshot before
//     its registration paths, so a reachable registration is not
//     evidence of a write the way a reachable Var.Set is.
//
// Function literals that begin a *different* transaction (bodies of
// Atomic/AtomicRead/Open/Nested) are not traversed: their writes
// belong to that transaction, and starting one from a read-only body
// is its own finding (the Open/registration call site is flagged here;
// a nested Thread.Atomic is nested-atomic's). Var.SetCommitted inside
// a transaction is naked-var-access's finding and is not re-reported
// under this ID.
var ruleWriteInReadonly = &Rule{
	ID:  "write-in-readonly",
	Doc: "Var.Set (or Tx.Open/handler registration) reachable from a Thread.AtomicRead body (silently demotes the snapshot read to the retry path)",
	Run: runWriteInReadonly,
}

// fallbackRegistrations are the Tx methods that force a snapshot
// transaction back onto the retry path the moment they are called.
var fallbackRegistrations = [...]string{
	"OnCommit", "OnAbort", "OnTopCommit", "OnTopAbort",
	"OnCommitGuarded", "OnAbortGuarded", "OnTopCommitGuarded", "OnTopAbortGuarded",
	"AddTopGuard",
}

func runWriteInReadonly(p *Pass) {
	if p.isSTMPackage() {
		return
	}
	g := p.Graph
	searcher := g.newSearcher(func(n *callNode) []effect {
		return writeEffectsIn(g, n.pkg.Info, n.decl.Body, false)
	}, writeTrusted)

	info := p.Pkg.Info
	seen := make(map[string]bool)
	check := func(stmts []ast.Stmt) {
		p.reportLexical(stmts, func(root ast.Node) []effect {
			return writeEffectsIn(g, info, root, true)
		}, seen, func(desc string) string {
			return desc + " inside a read-only AtomicRead body; the transaction silently falls back to the locking retry path — drop the write or use Thread.Atomic"
		})
		p.reportReach(stmts, searcher, seen, func(head, chain string) string {
			return "call to " + head + " inside a read-only AtomicRead body reaches a write (" + chain + "); the transaction silently falls back to the locking retry path"
		})
	}
	p.forEachFile(func(f *ast.File) {
		p.forEachReadOnlyBody(f, check)
	})
}

// forEachReadOnlyBody visits the statements of every read-only
// transaction root in f: function literals passed to Thread.AtomicRead
// here, and named functions the module passes to AtomicRead anywhere
// that are declared here.
func (p *Pass) forEachReadOnlyBody(f *ast.File, visit func(stmts []ast.Stmt)) {
	g := p.Graph
	ast.Inspect(f, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && g.litKinds[lit] == bodyReadOnlyTx {
			visit(lit.Body.List)
		}
		return true
	})
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fn := declFunc(p.Pkg.Info, fd); fn != nil && g.readonlyBodyFuncs[fn] {
			visit(fd.Body.List)
		}
	}
}

// writeTrusted prunes the reachability search at the STM package
// itself: the implementation is exempt from client-discipline rules,
// and nothing a client reaches inside it is a client write.
func writeTrusted(fn *types.Func) bool {
	pkg := fn.Pkg()
	return pkg != nil && isSTMPath(pkg.Path())
}

// writeEffectsIn collects the write-path operations on root's
// same-transaction synchronous path, in source order. atRoot widens
// the vocabulary from Var.Set to the fallback-forcing registrations
// (see the rule comment for why those are root-only). Goroutine
// bodies, handler bodies and transaction-body literals are pruned —
// each is a different execution context with its own rules.
func writeEffectsIn(g *CallGraph, info *types.Info, root ast.Node, atRoot bool) []effect {
	var effs []effect
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.FuncLit:
			if g.litKinds[n] != bodyPlain {
				return false
			}
		case *ast.CallExpr:
			if e, ok := writeCall(info, n, atRoot); ok {
				effs = append(effs, e)
			}
		}
		return true
	})
	return effs
}

// writeCall classifies a call expression as a write-path operation.
func writeCall(info *types.Info, call *ast.CallExpr, atRoot bool) (effect, bool) {
	if isSTMMethod(info, call, "Var", "Set") {
		return effect{call.Pos(), "Var.Set write"}, true
	}
	if !atRoot {
		return effect{}, false
	}
	if isSTMMethod(info, call, "Tx", "Open") {
		return effect{call.Pos(), "open-nested Tx.Open"}, true
	}
	for _, name := range fallbackRegistrations {
		if isSTMMethod(info, call, "Tx", name) {
			return effect{call.Pos(), "Tx." + name + " registration"}, true
		}
	}
	return effect{}, false
}
