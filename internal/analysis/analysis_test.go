package analysis_test

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"tcc/internal/analysis"
)

// One loader is shared across all tests: the expensive part is
// type-checking the stdlib and internal/stm from source, and the
// loader caches packages by import path.
var (
	loaderOnce sync.Once
	loaderErr  error
	shared     *analysis.Loader
)

func getLoader(t *testing.T) *analysis.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			loaderErr = err
			return
		}
		root, err := analysis.FindModuleRoot(wd)
		if err != nil {
			loaderErr = err
			return
		}
		shared, loaderErr = analysis.NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return shared
}

// loadFixture type-checks testdata/<name> and returns it with the
// loader that owns its FileSet.
func loadFixture(t *testing.T, name string) (*analysis.Loader, *analysis.Package) {
	t.Helper()
	l := getLoader(t)
	dir := filepath.Join(l.ModuleDir, "internal", "analysis", "testdata", name)
	pkg, err := l.LoadDir(dir, "tcc/internal/analysis/testdata/"+name)
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", name, pkg.TypeErrors)
	}
	return l, pkg
}

// collectWant scans a fixture for "// want rule-id [rule-id ...]"
// comments and returns the expected rule IDs keyed by file:line.
func collectWant(fset *token.FileSet, pkg *analysis.Package) map[string][]string {
	want := make(map[string][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				want[key] = append(want[key], strings.Fields(text)[1:]...)
			}
		}
	}
	for _, ids := range want {
		sort.Strings(ids)
	}
	return want
}

// runFixture checks a fixture package against its want comments. Every
// want comment must be matched by a diagnostic of that rule on that
// line, and every diagnostic must be announced by a want comment —
// which is also what keeps the "clean" cases in each fixture honest.
func runFixture(t *testing.T, name string) {
	t.Helper()
	l, pkg := loadFixture(t, name)
	want := collectWant(l.Fset, pkg)
	if len(want) == 0 && name != "suppress" {
		t.Fatalf("fixture %s has no want comments", name)
	}
	got := make(map[string][]string)
	for _, d := range analysis.Check(l.Fset, pkg) {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		got[key] = append(got[key], d.Rule)
	}
	for _, ids := range got {
		sort.Strings(ids)
	}
	for key, ids := range want {
		if !reflect.DeepEqual(got[key], ids) {
			t.Errorf("%s: want %v, got %v", key, ids, got[key])
		}
	}
	for key, ids := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: unexpected diagnostics %v", key, ids)
		}
	}
}

func TestNestedAtomicFixture(t *testing.T) { runFixture(t, "nestedatomic") }
func TestTxEscapeFixture(t *testing.T)     { runFixture(t, "txescape") }
func TestNakedVarFixture(t *testing.T)     { runFixture(t, "nakedvar") }
func TestNondetFixture(t *testing.T)       { runFixture(t, "nondet") }
func TestHandlerTxnFixture(t *testing.T)   { runFixture(t, "handlertxn") }
func TestUncheckedFixture(t *testing.T)    { runFixture(t, "unchecked") }

func TestTraceInCommitFixture(t *testing.T) { runFixture(t, "traceincommit") }
func TestGuardOrderFixture(t *testing.T)    { runFixture(t, "guardorder") }
func TestCommitBlockingFixture(t *testing.T) {
	runFixture(t, "commitblocking")
}

// TestProtocolWindowsFixture covers the protocol seam's hold windows:
// the write-set lockword span shared by every protocol's commit and
// NOrec's sequence-lock span, one fixture file per protocol.
func TestProtocolWindowsFixture(t *testing.T) { runFixture(t, "protocolwindows") }
func TestWriteInReadonlyFixture(t *testing.T) { runFixture(t, "writeinreadonly") }

// TestSuppress proves //stmlint:ignore silences exactly the named
// rule: three suppressed violations yield nothing, and a directive for
// the wrong rule leaves its diagnostic standing.
func TestSuppress(t *testing.T) { runFixture(t, "suppress") }

// TestEveryRuleHasFixture keeps the corpus in sync with the rule set:
// each registered rule must fire somewhere in testdata.
func TestEveryRuleHasFixture(t *testing.T) {
	fired := make(map[string]bool)
	for _, name := range []string{"nestedatomic", "txescape", "nakedvar", "nondet", "handlertxn", "unchecked", "traceincommit", "guardorder", "commitblocking", "protocolwindows", "writeinreadonly"} {
		l, pkg := loadFixture(t, name)
		for _, d := range analysis.Check(l.Fset, pkg) {
			fired[d.Rule] = true
		}
	}
	for _, r := range analysis.Rules() {
		if !fired[r.ID] {
			t.Errorf("rule %s never fires on the fixture corpus", r.ID)
		}
	}
}

// TestRepoClean lints every package in the module against one
// module-wide call graph, mirroring the `stmlint ./...` CI gate: the
// repository must hold its own discipline, including the
// interprocedural rules' cross-package reachability.
func TestRepoClean(t *testing.T) {
	l := getLoader(t)
	paths, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*analysis.Package
	for _, path := range paths {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("type errors in %s: %v", path, pkg.TypeErrors[0])
		}
		pkgs = append(pkgs, pkg)
	}
	g := analysis.BuildCallGraph(l.Fset, pkgs)
	for _, pkg := range pkgs {
		for _, d := range analysis.CheckWithGraph(l.Fset, pkg, g).Diagnostics {
			t.Errorf("%s: %s", pkg.Path, d)
		}
	}
}
