package core

import (
	"sync"

	"tcc/internal/stm"
)

// Counter is a shared counter updated through open-nested transactions
// with compensation, the paper's "global counter" reduced-isolation
// example (§1, §6.3): increments become globally visible immediately —
// so concurrent incrementing transactions never conflict — and an abort
// handler subtracts the transaction's contribution on rollback.
// Serializability of reads is deliberately forgone: Get returns the
// instantaneous value, which may include increments of transactions
// that later abort.
type Counter struct {
	// guard fuses the value's mutex with the commit-guard shard the
	// compensating abort handler is registered under.
	guard *stm.Guard
	value int64
}

// counterLocal accumulates one transaction's net contribution so a
// single abort handler can compensate for all of it.
type counterLocal struct {
	delta int64
}

// NewCounter creates a counter with an initial value.
func NewCounter(initial int64) *Counter {
	return &Counter{guard: stm.NewGuard(), value: initial}
}

func (c *Counter) local(tx *stm.Tx) *counterLocal {
	if l, ok := tx.Local(c).(*counterLocal); ok {
		return l
	}
	l := &counterLocal{}
	tx.SetLocal(c, l)
	tx.OnTopAbortGuarded(c.guard, func() {
		c.value -= l.delta
	})
	return l
}

// Add applies delta immediately (open-nested update with compensation
// on abort).
func (c *Counter) Add(tx *stm.Tx, delta int64) {
	l := c.local(tx)
	_ = tx.Open(func(o *stm.Tx) error {
		c.guard.Lock()
		c.value += delta
		c.guard.Unlock()
		return nil
	})
	l.delta += delta
	tx.Thread().Clock.Tick(8)
}

// Get returns the instantaneous value (reduced isolation: no lock, no
// conflict).
func (c *Counter) Get(tx *stm.Tx) int64 {
	var v int64
	_ = tx.Open(func(o *stm.Tx) error {
		c.guard.Lock()
		v = c.value
		c.guard.Unlock()
		return nil
	})
	tx.Thread().Clock.Tick(4)
	return v
}

// Value returns the committed value outside any transaction.
func (c *Counter) Value() int64 {
	c.guard.Lock()
	defer c.guard.Unlock()
	return c.value
}

// UIDGen generates unique, monotonically increasing identifiers inside
// transactions without creating conflicts — the paper's UID example and
// the main fix behind the "Atomos Open" SPECjbb configuration (§6.3,
// District.nextOrder). Identifiers handed to transactions that later
// abort are simply skipped, the classic monotonic-identifier trade-off
// between isolation and serializability the database literature
// describes: uniqueness and monotonicity hold, density does not.
type UIDGen struct {
	mu   sync.Mutex
	next int64
}

// NewUIDGen creates a generator whose first identifier is start.
func NewUIDGen(start int64) *UIDGen { return &UIDGen{next: start} }

// Next returns a fresh identifier, immediately and irrevocably (no
// compensation on abort — see the type comment).
func (g *UIDGen) Next(tx *stm.Tx) int64 {
	var id int64
	_ = tx.Open(func(o *stm.Tx) error {
		g.mu.Lock()
		id = g.next
		g.next++
		g.mu.Unlock()
		return nil
	})
	tx.Thread().Clock.Tick(8)
	return id
}

// Current returns the next identifier that would be handed out, without
// consuming it and without taking any lock — a reduced-isolation read
// like Counter.Get. TPC-C's Stock-Level transaction uses exactly this
// (reading D_NEXT_O_ID to bound its scan of recent orders), and because
// the read creates no dependency it never conflicts with concurrent
// Next calls.
func (g *UIDGen) Current(tx *stm.Tx) int64 {
	var v int64
	_ = tx.Open(func(o *stm.Tx) error {
		g.mu.Lock()
		v = g.next
		g.mu.Unlock()
		return nil
	})
	tx.Thread().Clock.Tick(4)
	return v
}

// Peek returns the next identifier that would be handed out, outside
// any transaction.
func (g *UIDGen) Peek() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.next
}
