package core

import (
	"testing"

	"tcc/internal/stm"
)

func TestNavigableQueriesMergeBuffer(t *testing.T) {
	tm := newSorted()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		for _, k := range []int{10, 20, 30} {
			tm.Put(tx, k, k)
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		tm.Put(tx, 15, 15) // buffered addition
		tm.Remove(tx, 20)  // buffered removal
		cases := []struct {
			name string
			got  func() (int, bool)
			want int
			ok   bool
		}{
			{"ceiling-buffered-add", func() (int, bool) { return tm.CeilingKey(tx, 12) }, 15, true},
			{"ceiling-skips-buffered-removal", func() (int, bool) { return tm.CeilingKey(tx, 16) }, 30, true},
			{"ceiling-exact", func() (int, bool) { return tm.CeilingKey(tx, 15) }, 15, true},
			{"higher-exact-strict", func() (int, bool) { return tm.HigherKey(tx, 15) }, 30, true},
			{"higher-none", func() (int, bool) { return tm.HigherKey(tx, 30) }, 0, false},
			{"floor-buffered-add", func() (int, bool) { return tm.FloorKey(tx, 16) }, 15, true},
			{"floor-skips-buffered-removal", func() (int, bool) { return tm.FloorKey(tx, 25) }, 15, true},
			{"lower-strict", func() (int, bool) { return tm.LowerKey(tx, 15) }, 10, true},
			{"lower-none", func() (int, bool) { return tm.LowerKey(tx, 10) }, 0, false},
		}
		for _, c := range cases {
			got, ok := c.got()
			if ok != c.ok || (ok && got != c.want) {
				t.Errorf("%s = (%d,%v), want (%d,%v)", c.name, got, ok, c.want, c.ok)
			}
		}
	})
}

// TestNavigableConflictMatrix extends the paper's Table 4 methodology
// to the NavigableMap queries: a navigation query conflicts exactly
// with writes that change its answer.
func TestNavigableConflictMatrix(t *testing.T) {
	seed := func(tm *TransactionalSortedMap[int, int], keys ...int) func(tx *stm.Tx) {
		return func(tx *stm.Tx) {
			for _, k := range keys {
				tm.Put(tx, k, k)
			}
		}
	}
	{ // ceiling(5)=10 vs put(7): 7 lands in the observed gap [5,10].
		tm := newSorted()
		expectConflict(t, "ceiling/put-in-gap", true,
			seed(tm, 10, 20),
			func(tx *stm.Tx) { tm.CeilingKey(tx, 5) },
			func(tx *stm.Tx) { tm.Put(tx, 7, 7) },
		)
	}
	{ // ceiling(5)=10 vs remove(10): the result key disappears.
		tm := newSorted()
		expectConflict(t, "ceiling/remove-result", true,
			seed(tm, 10, 20),
			func(tx *stm.Tx) { tm.CeilingKey(tx, 5) },
			func(tx *stm.Tx) { tm.Remove(tx, 10) },
		)
	}
	{ // ceiling(5)=10 vs put(15): beyond the observed gap — commute.
		tm := newSorted()
		expectConflict(t, "ceiling/put-beyond-result", false,
			seed(tm, 10, 20),
			func(tx *stm.Tx) { tm.CeilingKey(tx, 5) },
			func(tx *stm.Tx) { tm.Put(tx, 15, 15) },
		)
	}
	{ // higherKey(10)=20 vs put(10): the strict probe endpoint is not
		// observed — commute.
		tm := newSorted()
		expectConflict(t, "higher/put-at-probe", false,
			seed(tm, 10, 20),
			func(tx *stm.Tx) { tm.HigherKey(tx, 10) },
			func(tx *stm.Tx) { tm.Put(tx, 10, 99) },
		)
	}
	{ // ceilingKey(10)=10 vs put(10): the inclusive probe IS the result
		// — its value writer conflicts via the key lock.
		tm := newSorted()
		expectConflict(t, "ceiling/put-at-result", true,
			seed(tm, 10, 20),
			func(tx *stm.Tx) { tm.CeilingKey(tx, 10) },
			func(tx *stm.Tx) { tm.Put(tx, 10, 99) },
		)
	}
	{ // ceiling with no result observed the empty tail: a later insert
		// there conflicts.
		tm := newSorted()
		expectConflict(t, "ceiling-none/put-in-tail", true,
			seed(tm, 10),
			func(tx *stm.Tx) {
				if _, ok := tm.CeilingKey(tx, 50); ok && tx.Attempt() == 0 {
					t.Error("expected no ceiling above 50")
				}
			},
			func(tx *stm.Tx) { tm.Put(tx, 70, 70) },
		)
	}
	{ // floor(25)=20 vs remove(20): conflict.
		tm := newSorted()
		expectConflict(t, "floor/remove-result", true,
			seed(tm, 10, 20),
			func(tx *stm.Tx) { tm.FloorKey(tx, 25) },
			func(tx *stm.Tx) { tm.Remove(tx, 20) },
		)
	}
	{ // floor(25)=20 vs put(22): in the observed gap [20,25] — conflict.
		tm := newSorted()
		expectConflict(t, "floor/put-in-gap", true,
			seed(tm, 10, 20),
			func(tx *stm.Tx) { tm.FloorKey(tx, 25) },
			func(tx *stm.Tx) { tm.Put(tx, 22, 22) },
		)
	}
	{ // floor(25)=20 vs put(5): below the observed gap — commute.
		tm := newSorted()
		expectConflict(t, "floor/put-below-gap", false,
			seed(tm, 10, 20),
			func(tx *stm.Tx) { tm.FloorKey(tx, 25) },
			func(tx *stm.Tx) { tm.Put(tx, 5, 5) },
		)
	}
	{ // lowerKey(20)=10 vs put(20): strict bound — commute.
		tm := newSorted()
		expectConflict(t, "lower/put-at-probe", false,
			seed(tm, 10, 20),
			func(tx *stm.Tx) { tm.LowerKey(tx, 20) },
			func(tx *stm.Tx) { tm.Put(tx, 20, 99) },
		)
	}
}

func TestNavigableLocks(t *testing.T) {
	tm := newSorted()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		tm.Put(tx, 10, 10)
		tm.Put(tx, 30, 30)
	})
	atomically(t, th, func(tx *stm.Tx) {
		if r, ok := tm.CeilingKey(tx, 5); !ok || r != 10 {
			t.Fatalf("ceiling = (%d,%v)", r, ok)
		}
		// Key lock on the result, range lock over the gap.
		st := snapshotLocks(&tm.TransactionalMap, tx.Handle(), []int{10, 30})
		if len(st.keys) != 1 || st.keys[0] != 10 {
			t.Fatalf("key locks = %v, want [10]", st.keys)
		}
		if st.rangeLocks != 1 {
			t.Fatalf("range locks = %d, want 1", st.rangeLocks)
		}
		if !coversAny(tm, tx, 7) {
			t.Error("gap [5,10] not covered")
		}
		if coversAny(tm, tx, 20) {
			t.Error("range extends beyond the result")
		}
	})
}
