package core

import (
	"testing"
	"testing/quick"

	"tcc/internal/stm"
)

// TestMapQuickMatchesModel is a quick-check property: any sequence of
// operations, split arbitrarily into committed transactions, leaves the
// TransactionalMap equal to a plain map driven by the same sequence —
// and every operation's return value matches along the way.
func TestMapQuickMatchesModel(t *testing.T) {
	type qop struct {
		Kind  uint8
		Key   int8
		Val   int16
		Split bool // commit the running transaction before this op
	}
	prop := func(ops []qop) bool {
		tm := newIntMap()
		ref := map[int]int{}
		th := stm.NewThread(&stm.RealClock{}, 3)
		i := 0
		okAll := true
		for i < len(ops) {
			err := th.Atomic(func(tx *stm.Tx) error {
				for ; i < len(ops); i++ {
					op := ops[i]
					if op.Split && i > 0 {
						i++
						return nil // commit here, continue in a new tx
					}
					k, v := int(op.Key), int(op.Val)
					switch op.Kind % 6 {
					case 0:
						gotV, gotOK := tm.Get(tx, k)
						wantV, wantOK := ref[k]
						if gotOK != wantOK || (wantOK && gotV != wantV) {
							okAll = false
						}
					case 1:
						gotV, gotOK := tm.Put(tx, k, v)
						wantV, wantOK := ref[k]
						if gotOK != wantOK || (wantOK && gotV != wantV) {
							okAll = false
						}
						ref[k] = v
					case 2:
						gotV, gotOK := tm.Remove(tx, k)
						wantV, wantOK := ref[k]
						if gotOK != wantOK || (wantOK && gotV != wantV) {
							okAll = false
						}
						delete(ref, k)
					case 3:
						tm.PutUnread(tx, k, v)
						ref[k] = v
					case 4:
						if tm.Size(tx) != len(ref) {
							okAll = false
						}
					default:
						if tm.IsEmpty(tx) != (len(ref) == 0) {
							okAll = false
						}
					}
				}
				return nil
			})
			if err != nil {
				return false
			}
		}
		// Final committed state must equal the model.
		finalOK := true
		_ = th.Atomic(func(tx *stm.Tx) error {
			if tm.Size(tx) != len(ref) {
				finalOK = false
			}
			for k, v := range ref {
				if got, ok := tm.Get(tx, k); !ok || got != v {
					finalOK = false
				}
			}
			return nil
		})
		return okAll && finalOK
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestSortedQuickOrderedIteration quick-checks that for any mix of
// committed and buffered writes, sorted iteration yields exactly the
// model's keys in order.
func TestSortedQuickOrderedIteration(t *testing.T) {
	prop := func(committed []int8, buffered []int8, removed []int8) bool {
		tm := newSorted()
		ref := map[int]int{}
		th := stm.NewThread(&stm.RealClock{}, 5)
		if err := th.Atomic(func(tx *stm.Tx) error {
			for _, k := range committed {
				tm.Put(tx, int(k), int(k))
				ref[int(k)] = int(k)
			}
			return nil
		}); err != nil {
			return false
		}
		ok := true
		if err := th.Atomic(func(tx *stm.Tx) error {
			for _, k := range buffered {
				tm.Put(tx, int(k), 1000+int(k))
				ref[int(k)] = 1000 + int(k)
			}
			for _, k := range removed {
				tm.Remove(tx, int(k))
				delete(ref, int(k))
			}
			prev := -1000
			count := 0
			tm.ForEach(tx, func(k, v int) bool {
				if k <= prev {
					ok = false
				}
				if want, present := ref[k]; !present || want != v {
					ok = false
				}
				prev = k
				count++
				return true
			})
			if count != len(ref) {
				ok = false
			}
			return nil
		}); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
