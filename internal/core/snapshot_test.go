package core

import (
	"sort"
	"testing"

	"tcc/internal/stm"
)

// Snapshot-reader matrix: the interleavings of tables_test.go with the
// reader switched to the MVCC-lite snapshot path. Every cell that
// conflicts on the retry path (reader aborted and re-executed) must
// commute here — a snapshot reader takes no semantic locks, so there is
// nothing for the writer's commit handler to violate, and the reader
// completes in exactly one body execution with zero fallbacks.

// runSnapshotInterleaved parks a snapshot reader mid-body, commits a
// writer under it, and resumes the reader. It fails the test if the
// reader re-executed, fell back to the retry path, or aborted.
func runSnapshotInterleaved(t *testing.T, setup, read, write func(tx *stm.Tx)) {
	t.Helper()
	th0 := stm.NewThread(&stm.RealClock{}, 0)
	if setup != nil {
		atomically(t, th0, setup)
	}
	parked := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	runs := 0
	th1 := stm.NewThread(&stm.RealClock{}, 1)
	go func() {
		done <- th1.AtomicRead(func(tx *stm.Tx) error {
			runs++
			read(tx)
			if runs == 1 {
				parked <- struct{}{}
				<-release
			}
			return nil
		})
	}()
	<-parked
	th2 := stm.NewThread(&stm.RealClock{}, 2)
	atomically(t, th2, write)
	close(release)
	must(t, <-done)
	if runs != 1 {
		t.Fatalf("snapshot reader ran %d times, want 1", runs)
	}
	if th1.Stats.SnapshotFallbacks != 0 || th1.Stats.Aborts != 0 || th1.Stats.SnapshotCommits != 1 {
		t.Fatalf("snapshot reader stats = %+v, want 1 snapshot commit and no fallbacks/aborts", th1.Stats)
	}
}

// TestSnapshotReaderMatrix re-runs the conflicting cells of Table 1
// with a snapshot reader: every one commutes.
func TestSnapshotReaderMatrix(t *testing.T) {
	seed := func(tm *TransactionalMap[int, int], pairs ...int) func(tx *stm.Tx) {
		return func(tx *stm.Tx) {
			for i := 0; i+1 < len(pairs); i += 2 {
				tm.Put(tx, pairs[i], pairs[i+1])
			}
		}
	}

	t.Run("get/put-same-key", func(t *testing.T) {
		tm := newIntMap()
		runSnapshotInterleaved(t,
			seed(tm, 1, 10),
			func(tx *stm.Tx) {
				if v, ok := tm.Get(tx, 1); !ok || v != 10 {
					t.Errorf("snapshot get = (%d, %v), want (10, true)", v, ok)
				}
			},
			func(tx *stm.Tx) { tm.Put(tx, 1, 11) },
		)
	})
	t.Run("get/remove-same-key", func(t *testing.T) {
		tm := newIntMap()
		runSnapshotInterleaved(t,
			seed(tm, 1, 10),
			func(tx *stm.Tx) { tm.Get(tx, 1) },
			func(tx *stm.Tx) { tm.Remove(tx, 1) },
		)
	})
	t.Run("size/put-new-key", func(t *testing.T) {
		tm := newIntMap()
		runSnapshotInterleaved(t,
			seed(tm, 1, 1),
			func(tx *stm.Tx) {
				if n := tm.Size(tx); n != 1 {
					t.Errorf("snapshot size = %d, want 1", n)
				}
			},
			func(tx *stm.Tx) { tm.Put(tx, 2, 2) },
		)
	})
	t.Run("isEmpty/put-into-empty-map", func(t *testing.T) {
		tm := newIntMap()
		runSnapshotInterleaved(t,
			nil,
			func(tx *stm.Tx) {
				if !tm.IsEmpty(tx) {
					t.Error("fresh map not empty")
				}
			},
			func(tx *stm.Tx) { tm.Put(tx, 1, 1) },
		)
	})
	t.Run("iterate-exhausted/put-new-key", func(t *testing.T) {
		tm := newIntMap()
		runSnapshotInterleaved(t,
			seed(tm, 1, 1),
			func(tx *stm.Tx) {
				it := tm.Iterator(tx)
				n := 0
				for it.HasNext() {
					it.Next()
					n++
				}
				if n != 1 {
					t.Errorf("snapshot iterator saw %d entries, want 1", n)
				}
			},
			func(tx *stm.Tx) { tm.Put(tx, 2, 2) },
		)
	})
	t.Run("striped-size/put-new-key", func(t *testing.T) {
		tm := newStripedIntMap(8)
		runSnapshotInterleaved(t,
			seed(tm, 1, 1, 2, 2, 3, 3),
			func(tx *stm.Tx) {
				if n := tm.Size(tx); n != 3 {
					t.Errorf("snapshot size = %d, want 3", n)
				}
			},
			func(tx *stm.Tx) { tm.Put(tx, 4, 4) },
		)
	})
}

// TestSnapshotIteratorFrozenView: the snapshot iterator's view is
// captured whole at creation — entries committed mid-walk do not appear
// and do not disturb the walk.
func TestSnapshotIteratorFrozenView(t *testing.T) {
	tm := newStripedIntMap(4)
	th := stm.NewThread(&stm.RealClock{}, 1)
	writer := stm.NewThread(&stm.RealClock{}, 2)
	atomically(t, th, func(tx *stm.Tx) {
		for i := 0; i < 10; i++ {
			tm.Put(tx, i, i*10)
		}
	})
	var keys []int
	must(t, th.AtomicRead(func(tx *stm.Tx) error {
		it := tm.Iterator(tx)
		first := true
		for {
			k, v, ok := it.Next()
			if !ok {
				break
			}
			if first {
				// A commit mid-walk must not leak into this view.
				first = false
				atomically(t, writer, func(wtx *stm.Tx) { tm.Put(wtx, 100, 1) })
			}
			if v != k*10 {
				t.Errorf("entry (%d, %d) torn", k, v)
			}
			keys = append(keys, k)
		}
		return nil
	}))
	sort.Ints(keys)
	if len(keys) != 10 || keys[0] != 0 || keys[9] != 9 {
		t.Fatalf("frozen walk saw keys %v, want exactly 0..9", keys)
	}
	if th.Stats.SnapshotFallbacks != 0 {
		t.Fatalf("iterator walk fell back: %+v", th.Stats)
	}
}

// TestSnapshotFallbackOnCollectionWrite: a collection write inside
// AtomicRead cannot stay invisible — it re-runs on the retry path and
// commits through the normal Table 3 buffer.
func TestSnapshotFallbackOnCollectionWrite(t *testing.T) {
	tm := newIntMap()
	th := stm.NewThread(&stm.RealClock{}, 1)
	must(t, th.AtomicRead(func(tx *stm.Tx) error {
		tm.Put(tx, 1, 10)
		return nil
	}))
	if th.Stats.SnapshotFallbacks != 1 || th.Stats.Commits != 1 {
		t.Fatalf("stats = %+v, want 1 fallback + 1 commit", th.Stats)
	}
	atomically(t, th, func(tx *stm.Tx) {
		if v, ok := tm.Get(tx, 1); !ok || v != 10 {
			t.Errorf("fallback write lost: (%d, %v)", v, ok)
		}
	})
}

// TestSnapshotReadStress: concurrent snapshot readers against a
// committing writer on a striped map, under -race in CI. Readers check
// the writer's pair invariant within one frozen iterator walk.
func TestSnapshotReadStress(t *testing.T) {
	tm := newStripedIntMap(8)
	th0 := stm.NewThread(&stm.RealClock{}, 0)
	atomically(t, th0, func(tx *stm.Tx) {
		tm.Put(tx, 0, 0)
		tm.Put(tx, 1, 0)
	})
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		w := stm.NewThread(&stm.RealClock{}, 9)
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = w.Atomic(func(tx *stm.Tx) error {
				// Keys 0 and 1 always carry the same value.
				tm.Put(tx, 0, i)
				tm.Put(tx, 1, i)
				return nil
			})
		}
	}()
	reader := stm.NewThread(&stm.RealClock{}, 1)
	iters := 300
	if testing.Short() {
		iters = 50
	}
	for i := 0; i < iters; i++ {
		must(t, reader.AtomicRead(func(tx *stm.Tx) error {
			got := map[int]int{}
			it := tm.Iterator(tx)
			for {
				k, v, ok := it.Next()
				if !ok {
					break
				}
				got[k] = v
			}
			if got[0] != got[1] {
				t.Errorf("frozen walk tore the pair: %v", got)
			}
			return nil
		}))
	}
	close(stop)
	<-writerDone
	if reader.Stats.SnapshotFallbacks != 0 || reader.Stats.Aborts != 0 {
		t.Fatalf("reader stats = %+v, want no fallbacks/aborts", reader.Stats)
	}
}
