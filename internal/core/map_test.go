package core

import (
	"errors"
	"sort"
	"sync"
	"testing"

	"tcc/internal/collections"
	"tcc/internal/stm"
)

func newTh(seed int64) *stm.Thread { return stm.NewThread(&stm.RealClock{}, seed) }

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func atomically(t *testing.T, th *stm.Thread, fn func(tx *stm.Tx)) {
	t.Helper()
	must(t, th.Atomic(func(tx *stm.Tx) error {
		fn(tx)
		return nil
	}))
}

func newIntMap() *TransactionalMap[int, int] {
	return NewTransactionalMap[int, int](collections.NewHashMap[int, int]())
}

func TestMapReadYourOwnWrites(t *testing.T) {
	tm := newIntMap()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		if _, ok := tm.Get(tx, 1); ok {
			t.Error("get on empty map succeeded")
		}
		if old, had := tm.Put(tx, 1, 10); had {
			t.Errorf("first put returned previous %d", old)
		}
		if v, ok := tm.Get(tx, 1); !ok || v != 10 {
			t.Errorf("get after put = (%d,%v)", v, ok)
		}
		if old, had := tm.Put(tx, 1, 20); !had || old != 10 {
			t.Errorf("second put = (%d,%v)", old, had)
		}
		if old, had := tm.Remove(tx, 1); !had || old != 20 {
			t.Errorf("remove = (%d,%v)", old, had)
		}
		if _, ok := tm.Get(tx, 1); ok {
			t.Error("get after remove succeeded")
		}
		if _, had := tm.Remove(tx, 1); had {
			t.Error("second remove reported presence")
		}
	})
}

func TestMapCommitPublishes(t *testing.T) {
	tm := newIntMap()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		tm.Put(tx, 1, 10)
		tm.Put(tx, 2, 20)
		tm.Remove(tx, 2)
	})
	atomically(t, th, func(tx *stm.Tx) {
		if v, ok := tm.Get(tx, 1); !ok || v != 10 {
			t.Errorf("committed get(1) = (%d,%v)", v, ok)
		}
		if _, ok := tm.Get(tx, 2); ok {
			t.Error("removed key visible after commit")
		}
		if n := tm.Size(tx); n != 1 {
			t.Errorf("size = %d, want 1", n)
		}
	})
}

func TestMapAbortDiscardsBuffer(t *testing.T) {
	tm := newIntMap()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) { tm.Put(tx, 1, 10) })
	boom := errors.New("boom")
	if err := th.Atomic(func(tx *stm.Tx) error {
		tm.Put(tx, 2, 20)
		tm.Remove(tx, 1)
		return boom
	}); err != boom {
		t.Fatal(err)
	}
	atomically(t, th, func(tx *stm.Tx) {
		if _, ok := tm.Get(tx, 2); ok {
			t.Error("aborted put leaked")
		}
		if _, ok := tm.Get(tx, 1); !ok {
			t.Error("aborted remove leaked")
		}
		if n := tm.Size(tx); n != 1 {
			t.Errorf("size = %d, want 1", n)
		}
	})
	// All semantic locks must have been released by the abort handler.
	if tm.stripes[tm.StripeOf(1)].key2lockers.Locked(1) || tm.stripes[tm.StripeOf(2)].key2lockers.Locked(2) {
		t.Error("abort leaked key locks")
	}
	if tm.stripes[0].sizeLockers.Len() != 0 {
		t.Error("abort leaked size lock")
	}
}

func TestMapIsolationUncommittedInvisible(t *testing.T) {
	tm := newIntMap()
	th1, th2 := newTh(1), newTh(2)
	inBody := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error)
	go func() {
		done <- th1.Atomic(func(tx *stm.Tx) error {
			tm.Put(tx, 1, 100)
			if tx.Attempt() == 0 {
				inBody <- struct{}{}
				<-release
			}
			return nil
		})
	}()
	<-inBody
	// th1 has buffered a put but not committed: th2 must not see it.
	atomically(t, th2, func(tx *stm.Tx) {
		if _, ok := tm.Get(tx, 1); ok {
			t.Error("uncommitted put visible to another transaction (isolation broken)")
		}
	})
	close(release)
	must(t, <-done)
}

func TestMapLocksHeldDuringTxReleasedAfter(t *testing.T) {
	tm := newIntMap()
	th := newTh(1)
	var h *stm.Handle
	atomically(t, th, func(tx *stm.Tx) {
		h = tx.Handle()
		tm.Get(tx, 7)
		tm.lockGuards()
		held := tm.stripes[tm.StripeOf(7)].key2lockers.Holds(7, h)
		tm.unlockGuards()
		if !held {
			t.Error("key lock not held during transaction")
		}
	})
	tm.lockGuards()
	defer tm.unlockGuards()
	if tm.stripes[tm.StripeOf(7)].key2lockers.Locked(7) {
		t.Error("key lock survived commit")
	}
}

func TestMapSizeWithDelta(t *testing.T) {
	tm := newIntMap()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		for i := 0; i < 5; i++ {
			tm.Put(tx, i, i)
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		if n := tm.Size(tx); n != 5 {
			t.Fatalf("size = %d, want 5", n)
		}
		tm.Put(tx, 10, 10)  // new: +1
		tm.Put(tx, 0, 99)   // replace: 0
		tm.Remove(tx, 1)    // present: -1
		tm.Remove(tx, 1000) // absent: 0
		tm.Put(tx, 11, 11)  // new: +1
		tm.Remove(tx, 11)   // removes own buffered add: net 0
		if n := tm.Size(tx); n != 5+1-1 {
			t.Fatalf("size with delta = %d, want 5", n)
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		if n := tm.Size(tx); n != 5 {
			t.Fatalf("committed size = %d, want 5", n)
		}
	})
}

func TestMapBlindWritesResolveAtSize(t *testing.T) {
	tm := newIntMap()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) { tm.Put(tx, 1, 1) })
	atomically(t, th, func(tx *stm.Tx) {
		tm.PutUnread(tx, 1, 100) // overwrite existing: size unchanged
		tm.PutUnread(tx, 2, 200) // new key: +1
		tm.RemoveUnread(tx, 3)   // absent: 0
		if n := tm.Size(tx); n != 2 {
			t.Fatalf("size = %d, want 2", n)
		}
		// Blind write followed by own get sees the buffered value.
		if v, ok := tm.Get(tx, 2); !ok || v != 200 {
			t.Fatalf("get own blind put = (%d,%v)", v, ok)
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		if v, _ := tm.Get(tx, 1); v != 100 {
			t.Fatalf("blind overwrite lost: %d", v)
		}
		if n := tm.Size(tx); n != 2 {
			t.Fatalf("committed size = %d, want 2", n)
		}
	})
}

func TestMapIsEmptyUsesEmptyLock(t *testing.T) {
	tm := newIntMap()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		if !tm.IsEmpty(tx) {
			t.Error("fresh map not empty")
		}
		tm.Put(tx, 1, 1)
		if tm.IsEmpty(tx) {
			t.Error("map with buffered put reported empty")
		}
	})
	// The empty lock, not the size lock, must have been taken.
	if tm.stripes[0].sizeLockers.Len() != 0 {
		t.Error("IsEmpty took the size lock")
	}
}

func TestMapIteratorMergesBufferAndCommitted(t *testing.T) {
	tm := newIntMap()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		tm.Put(tx, 1, 10)
		tm.Put(tx, 2, 20)
		tm.Put(tx, 3, 30)
	})
	atomically(t, th, func(tx *stm.Tx) {
		tm.Remove(tx, 2)  // buffered removal hides committed key
		tm.Put(tx, 3, 33) // buffered overwrite
		tm.Put(tx, 4, 40) // buffered addition
		got := map[int]int{}
		tm.ForEach(tx, func(k, v int) bool {
			got[k] = v
			return true
		})
		want := map[int]int{1: 10, 3: 33, 4: 40}
		if len(got) != len(want) {
			t.Fatalf("iterated %v, want %v", got, want)
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("iterated %v, want %v", got, want)
			}
		}
		// Full enumeration reveals the size: the size lock must be held.
		tm.lockGuards()
		n := tm.stripes[0].sizeLockers.Len()
		tm.unlockGuards()
		if n != 1 {
			t.Fatal("full enumeration did not take the size lock")
		}
	})
}

func TestMapIteratorEarlyStopTakesNoSizeLock(t *testing.T) {
	tm := newIntMap()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		for i := 0; i < 10; i++ {
			tm.Put(tx, i, i)
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		count := 0
		tm.ForEach(tx, func(int, int) bool {
			count++
			return count < 3
		})
		tm.lockGuards()
		n := tm.stripes[0].sizeLockers.Len()
		tm.unlockGuards()
		if n != 0 {
			t.Error("partial enumeration took the size lock")
		}
	})
}

func TestMapKeysSorted(t *testing.T) {
	tm := newIntMap()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		for i := 0; i < 20; i++ {
			tm.Put(tx, i, i)
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		ks := tm.Keys(tx)
		sort.Ints(ks)
		if len(ks) != 20 || ks[0] != 0 || ks[19] != 19 {
			t.Fatalf("keys = %v", ks)
		}
	})
}

// TestMapConcurrentDisjointPutsCommute is the paper's headline claim
// (§2.4): inserts of different keys must not conflict even though every
// insert changes the internal size field. We verify semantically: all
// inserts land, none are lost, and (statistically) the violation count
// stays zero because no semantic locks collide.
func TestMapConcurrentDisjointPutsCommute(t *testing.T) {
	tm := newIntMap()
	const workers, per = 8, 100
	var wg sync.WaitGroup
	var mu sync.Mutex
	var violations uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := newTh(int64(w))
			for i := 0; i < per; i++ {
				k := w*per + i
				must(t, th.Atomic(func(tx *stm.Tx) error {
					tm.Put(tx, k, k)
					return nil
				}))
			}
			mu.Lock()
			violations += th.Stats.Violations
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if violations != 0 {
		t.Errorf("disjoint-key puts caused %d semantic violations", violations)
	}
	th := newTh(99)
	atomically(t, th, func(tx *stm.Tx) {
		if n := tm.Size(tx); n != workers*per {
			t.Fatalf("size = %d, want %d (lost updates)", n, workers*per)
		}
	})
}

// TestMapConcurrentSameKeyIncrements serializes read-modify-write
// transactions on a single key through semantic key conflicts: the
// final count must equal the number of increments.
func TestMapConcurrentSameKeyIncrements(t *testing.T) {
	tm := newIntMap()
	th0 := newTh(0)
	atomically(t, th0, func(tx *stm.Tx) { tm.Put(tx, 0, 0) })
	const workers, per = 6, 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := newTh(int64(w + 1))
			for i := 0; i < per; i++ {
				must(t, th.Atomic(func(tx *stm.Tx) error {
					v, _ := tm.Get(tx, 0)
					tm.Put(tx, 0, v+1)
					return nil
				}))
			}
		}(w)
	}
	wg.Wait()
	atomically(t, th0, func(tx *stm.Tx) {
		if v, _ := tm.Get(tx, 0); v != workers*per {
			t.Fatalf("counter = %d, want %d (lost increments => not serializable)", v, workers*per)
		}
	})
}

// TestMapMoneyConservation runs transfer transactions between keys
// while a checker repeatedly sums the map through a full enumeration;
// serializability requires every observed sum to equal the invariant
// total.
func TestMapMoneyConservation(t *testing.T) {
	tm := newIntMap()
	const accounts = 6
	const total = accounts * 100
	th0 := newTh(0)
	atomically(t, th0, func(tx *stm.Tx) {
		for i := 0; i < accounts; i++ {
			tm.Put(tx, i, 100)
		}
	})
	var transfers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		transfers.Add(1)
		go func(w int) {
			defer transfers.Done()
			th := newTh(int64(w + 1))
			for i := 0; i < 150; i++ {
				from := (w + i) % accounts
				to := (w + i*3 + 1) % accounts
				if from == to {
					continue
				}
				must(t, th.Atomic(func(tx *stm.Tx) error {
					a, _ := tm.Get(tx, from)
					b, _ := tm.Get(tx, to)
					tm.Put(tx, from, a-7)
					tm.Put(tx, to, b+7)
					return nil
				}))
			}
		}(w)
	}
	var checker sync.WaitGroup
	checker.Add(1)
	go func() {
		defer checker.Done()
		th := newTh(50)
		for {
			select {
			case <-stop:
				return
			default:
			}
			sum := 0
			must(t, th.Atomic(func(tx *stm.Tx) error {
				sum = 0
				tm.ForEach(tx, func(_, v int) bool {
					sum += v
					return true
				})
				return nil
			}))
			if sum != total {
				t.Errorf("checker observed sum %d, want %d (not serializable)", sum, total)
				return
			}
		}
	}()
	transfers.Wait()
	close(stop)
	checker.Wait()
}

// TestMapComposedOperationsAtomic is the TestCompound property: two
// operations on the map compose into one atomic action. Each
// transaction moves a token from one key to another; concurrently no
// reader may ever observe both keys holding the token or neither.
func TestMapComposedOperationsAtomic(t *testing.T) {
	tm := newIntMap()
	th0 := newTh(0)
	atomically(t, th0, func(tx *stm.Tx) {
		tm.Put(tx, 0, 1) // token at key 0
		tm.Put(tx, 1, 0)
	})
	var movers sync.WaitGroup
	stop := make(chan struct{})
	movers.Add(1)
	go func() {
		defer movers.Done()
		th := newTh(1)
		for i := 0; i < 200; i++ {
			must(t, th.Atomic(func(tx *stm.Tx) error {
				a, _ := tm.Get(tx, 0)
				b, _ := tm.Get(tx, 1)
				tm.Put(tx, 0, b)
				tm.Put(tx, 1, a)
				return nil
			}))
		}
	}()
	var checker sync.WaitGroup
	checker.Add(1)
	go func() {
		defer checker.Done()
		th := newTh(2)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var a, b int
			must(t, th.Atomic(func(tx *stm.Tx) error {
				a, _ = tm.Get(tx, 0)
				b, _ = tm.Get(tx, 1)
				return nil
			}))
			if a+b != 1 {
				t.Errorf("torn compound update: a=%d b=%d", a, b)
				return
			}
		}
	}()
	movers.Wait()
	close(stop)
	checker.Wait()
}

func TestMapPutAll(t *testing.T) {
	tm := newIntMap()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		tm.PutAll(tx, map[int]int{1: 1, 2: 2, 3: 3})
	})
	atomically(t, th, func(tx *stm.Tx) {
		if n := tm.Size(tx); n != 3 {
			t.Fatalf("size = %d", n)
		}
	})
}

func TestSetWrapper(t *testing.T) {
	s := NewTransactionalSet[string]()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		if !s.Add(tx, "a") {
			t.Error("first add reported duplicate")
		}
		if s.Add(tx, "a") {
			t.Error("second add reported new")
		}
		s.AddUnread(tx, "b")
		if !s.Contains(tx, "a") || !s.Contains(tx, "b") {
			t.Error("membership wrong")
		}
		if s.Size(tx) != 2 {
			t.Errorf("size = %d", s.Size(tx))
		}
		if !s.Remove(tx, "a") {
			t.Error("remove of member failed")
		}
		if s.IsEmpty(tx) {
			t.Error("set with one member reported empty")
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		var got []string
		s.ForEach(tx, func(k string) bool {
			got = append(got, k)
			return true
		})
		if len(got) != 1 || got[0] != "b" {
			t.Fatalf("committed set = %v", got)
		}
	})
}
