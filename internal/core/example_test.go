package core_test

import (
	"fmt"

	"tcc/internal/collections"
	"tcc/internal/core"
	"tcc/internal/stm"
)

// A TransactionalMap wraps any existing Map implementation and makes
// composed operations on it atomic and serializable.
func ExampleTransactionalMap() {
	tm := core.NewTransactionalMap[string, int](collections.NewHashMap[string, int]())
	th := stm.NewThread(&stm.RealClock{}, 1)

	_ = th.Atomic(func(tx *stm.Tx) error {
		tm.Put(tx, "apples", 3)
		tm.Put(tx, "pears", 5)
		// Read-modify-write composes with the puts atomically.
		n, _ := tm.Get(tx, "apples")
		tm.Put(tx, "apples", n+1)
		return nil
	})

	_ = th.Atomic(func(tx *stm.Tx) error {
		a, _ := tm.Get(tx, "apples")
		fmt.Println("apples:", a)
		fmt.Println("size:", tm.Size(tx))
		return nil
	})
	// Output:
	// apples: 4
	// size: 2
}

// A TransactionalSortedMap adds ordered iteration, endpoint queries and
// range views over any SortedMap implementation.
func ExampleTransactionalSortedMap() {
	tm := core.NewTransactionalSortedMap[int, string](collections.NewTreeMap[int, string]())
	th := stm.NewThread(&stm.RealClock{}, 1)

	_ = th.Atomic(func(tx *stm.Tx) error {
		tm.Put(tx, 30, "c")
		tm.Put(tx, 10, "a")
		tm.Put(tx, 20, "b")
		first, _ := tm.FirstKey(tx)
		fmt.Println("first:", first)
		for _, k := range tm.SubMap(15, 35).Keys(tx) {
			fmt.Println("in range:", k)
		}
		return nil
	})
	// Output:
	// first: 10
	// in range: 20
	// in range: 30
}

// A TransactionalQueue is a work queue whose takes are compensated on
// abort, so failed transactions lose no work.
func ExampleTransactionalQueue() {
	q := core.NewTransactionalQueue[string](collections.NewLinkedQueue[string]())
	th := stm.NewThread(&stm.RealClock{}, 1)

	_ = th.Atomic(func(tx *stm.Tx) error {
		q.Put(tx, "job-1")
		q.Put(tx, "job-2")
		return nil
	})

	// This transaction takes a job but fails: the job goes back.
	failed := fmt.Errorf("worker crashed")
	err := th.Atomic(func(tx *stm.Tx) error {
		job, _ := q.Poll(tx)
		_ = job
		return failed
	})
	fmt.Println("aborted:", err != nil)
	fmt.Println("jobs still queued:", q.CommittedSize())
	// Output:
	// aborted: true
	// jobs still queued: 2
}

// Counter demonstrates reduced isolation: increments are visible
// immediately and never conflict, with compensation on abort.
func ExampleCounter() {
	c := core.NewCounter(0)
	th := stm.NewThread(&stm.RealClock{}, 1)

	_ = th.Atomic(func(tx *stm.Tx) error {
		c.Add(tx, 5)
		return nil
	})
	_ = th.Atomic(func(tx *stm.Tx) error {
		c.Add(tx, 100)
		return fmt.Errorf("rolled back") // compensation subtracts the 100
	})
	fmt.Println("counter:", c.Value())
	// Output:
	// counter: 5
}

// UIDGen hands out unique increasing identifiers without serializing
// the transactions that draw them; aborted transactions leave gaps.
func ExampleUIDGen() {
	g := core.NewUIDGen(1)
	th := stm.NewThread(&stm.RealClock{}, 1)

	var a, b int64
	_ = th.Atomic(func(tx *stm.Tx) error {
		a = g.Next(tx)
		return nil
	})
	_ = th.Atomic(func(tx *stm.Tx) error {
		g.Next(tx)                 // consumed...
		return fmt.Errorf("abort") // ...and skipped: no compensation
	})
	_ = th.Atomic(func(tx *stm.Tx) error {
		b = g.Next(tx)
		return nil
	})
	fmt.Println(a, b)
	// Output:
	// 1 3
}
