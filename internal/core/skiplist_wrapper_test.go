package core

// The paper's central usability claim: transactional collection classes
// "wrap existing data structures, without the need for custom
// implementations or knowledge of data structure internals". These
// tests wrap a skip list — a structurally different SortedMap
// implementation with its own internal hot spots (tower pointers,
// level counter) — and re-run the sorted-map behaviours unchanged.

import (
	"cmp"
	"sync"
	"testing"

	"tcc/internal/collections"
	"tcc/internal/stm"
)

func newSkipSorted() *TransactionalSortedMap[int, int] {
	return NewTransactionalSortedMap[int, int](
		collections.NewSkipListMap[int, int](cmp.Compare[int], 17))
}

func TestWrapperOverSkipListBasics(t *testing.T) {
	tm := newSkipSorted()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		for _, k := range []int{30, 10, 50, 20, 40} {
			tm.Put(tx, k, k*2)
		}
		if k, _ := tm.FirstKey(tx); k != 10 {
			t.Errorf("first = %d", k)
		}
		if k, _ := tm.LastKey(tx); k != 50 {
			t.Errorf("last = %d", k)
		}
		tm.Remove(tx, 30)
		ks := tm.Keys(tx)
		want := []int{10, 20, 40, 50}
		if len(ks) != len(want) {
			t.Fatalf("keys = %v", ks)
		}
		for i := range want {
			if ks[i] != want[i] {
				t.Fatalf("keys = %v, want %v", ks, want)
			}
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		got := tm.SubMap(15, 45).Keys(tx)
		if len(got) != 2 || got[0] != 20 || got[1] != 40 {
			t.Fatalf("submap keys = %v", got)
		}
	})
}

func TestWrapperOverSkipListConflictSemantics(t *testing.T) {
	// Identical conflict matrix cells as the TreeMap-backed map: the
	// semantics come from the wrapper, not the wrapped implementation.
	tm := newSkipSorted()
	expectConflict(t, "skiplist-lastKey/put-new-max", true,
		func(tx *stm.Tx) { tm.Put(tx, 10, 10) },
		func(tx *stm.Tx) { tm.LastKey(tx) },
		func(tx *stm.Tx) { tm.Put(tx, 20, 20) },
	)
	tm2 := newSkipSorted()
	expectConflict(t, "skiplist-put/put-different-keys", false,
		nil,
		func(tx *stm.Tx) { tm2.Put(tx, 1, 1) },
		func(tx *stm.Tx) { tm2.Put(tx, 2, 2) },
	)
	tm3 := newSkipSorted()
	expectConflict(t, "skiplist-iterator/put-inside-range", true,
		func(tx *stm.Tx) { tm3.Put(tx, 10, 10); tm3.Put(tx, 20, 20); tm3.Put(tx, 40, 40) },
		func(tx *stm.Tx) {
			it := tm3.Iterator(tx)
			it.Next()
			it.Next()
		},
		func(tx *stm.Tx) { tm3.Put(tx, 15, 15) },
	)
}

func TestWrapperOverSkipListConcurrentStress(t *testing.T) {
	tm := newSkipSorted()
	const workers, per = 6, 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := newTh(int64(w))
			for i := 0; i < per; i++ {
				k := i*workers + w
				must(t, th.Atomic(func(tx *stm.Tx) error {
					tm.Put(tx, k, k)
					return nil
				}))
			}
		}(w)
	}
	wg.Wait()
	th := newTh(99)
	atomically(t, th, func(tx *stm.Tx) {
		ks := tm.Keys(tx)
		if len(ks) != workers*per {
			t.Fatalf("lost inserts: %d", len(ks))
		}
		for i := 1; i < len(ks); i++ {
			if ks[i-1] >= ks[i] {
				t.Fatalf("order broken at %d", i)
			}
		}
	})
}
