package core

import (
	"sync"
	"testing"
	"time"

	"tcc/internal/collections"
	"tcc/internal/stm"
)

func newSegmentedQueue(lanes int) *TransactionalQueue[int] {
	return NewSegmentedTransactionalQueue[int](func() collections.Queue[int] {
		return collections.NewLinkedQueue[int]()
	}, lanes)
}

// newLaneTh pins a thread to a lane: LaneOf hashes Thread.TraceID, so a
// TraceID equal to the lane index (for power-of-two lane counts) lands
// exactly there.
func newLaneTh(seed int64, lane int) *stm.Thread {
	th := stm.NewThread(&stm.RealClock{}, seed)
	th.TraceID = lane
	return th
}

// TestSegmentedQueueLaneFIFO is the lane-level FIFO property test:
// elements enqueued on one lane dequeue in exactly their enqueue order,
// regardless of traffic on other lanes interleaved between them.
func TestSegmentedQueueLaneFIFO(t *testing.T) {
	q := newSegmentedQueue(4)
	if q.Lanes() != 4 {
		t.Fatalf("Lanes = %d, want 4", q.Lanes())
	}
	th := newTh(1)
	// Interleave enqueues round-robin across lanes; encode (lane, seq)
	// in the value.
	const perLane = 10
	atomically(t, th, func(tx *stm.Tx) {
		for seq := 0; seq < perLane; seq++ {
			for lane := 0; lane < 4; lane++ {
				q.PutLane(tx, lane, lane*1000+seq)
			}
		}
	})
	// Drain from each lane's local perspective: a consumer pinned to a
	// lane sees that lane's elements first, in order. tryDequeue probes
	// the consumer's home lane before stealing, so a full home lane is
	// drained FIFO before anything else arrives.
	nextSeq := make([]int, 4)
	for lane := 0; lane < 4; lane++ {
		lth := newLaneTh(int64(10+lane), lane)
		for i := 0; i < perLane; i++ {
			var v int
			var ok bool
			if err := lth.Atomic(func(tx *stm.Tx) error {
				if got := q.LaneOf(tx); got != lane {
					t.Fatalf("LaneOf = %d for TraceID %d, want %d", got, lane, lane)
				}
				v, ok = q.Poll(tx)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("lane %d: queue empty after %d polls", lane, i)
			}
			gotLane, gotSeq := v/1000, v%1000
			if gotLane != lane {
				t.Fatalf("lane %d consumer got element from lane %d", lane, gotLane)
			}
			if gotSeq != nextSeq[gotLane] {
				t.Fatalf("lane %d: seq %d out of order, want %d", gotLane, gotSeq, nextSeq[gotLane])
			}
			nextSeq[gotLane]++
		}
	}
	if got := q.CommittedSize(); got != 0 {
		t.Fatalf("CommittedSize = %d after drain, want 0", got)
	}
}

// TestSegmentedQueueStealsAcrossLanes: when the consumer's home lane is
// empty, Poll falls through to the other lanes rather than reporting
// empty — the segmented queue is still one queue.
func TestSegmentedQueueStealsAcrossLanes(t *testing.T) {
	q := newSegmentedQueue(4)
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		q.PutLane(tx, 2, 42)
	})
	consumer := newLaneTh(2, 0) // home lane 0, which is empty
	var v int
	var ok bool
	if err := consumer.Atomic(func(tx *stm.Tx) error {
		v, ok = q.Poll(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !ok || v != 42 {
		t.Fatalf("Poll = (%d,%v), want (42,true) stolen from lane 2", v, ok)
	}
}

// TestSegmentedQueueEmptyPollLocksAllLanes: a Poll that reports empty
// must have proven EVERY lane empty atomically and hold all lanes'
// empty locks, so any producer's enqueue — on any lane — conflicts.
func TestSegmentedQueueEmptyPollLocksAllLanes(t *testing.T) {
	for lane := 0; lane < 4; lane++ {
		q := newSegmentedQueue(4)
		conflicted := runInterleaved(t,
			func(tx *stm.Tx) {},
			func(tx *stm.Tx) {
				// On a retry the producer's element is visible; only the
				// first attempt observes (and locks) emptiness.
				if _, ok := q.Poll(tx); ok && tx.Attempt() == 0 {
					t.Error("Poll on empty segmented queue returned a value")
				}
			},
			func(tx *stm.Tx) { q.PutLane(tx, lane, 1) },
		)
		if !conflicted {
			t.Fatalf("empty-Poll did not conflict with a Put on lane %d", lane)
		}
	}
}

// TestSegmentedQueueDisjointLanesCommute: a producer on one lane and a
// consumer draining another (non-empty) lane have disjoint footprints
// and commit without conflict.
func TestSegmentedQueueDisjointLanesCommute(t *testing.T) {
	q := newSegmentedQueue(4)
	conflicted := runInterleaved(t,
		func(tx *stm.Tx) { q.PutLane(tx, 0, 1); q.PutLane(tx, 0, 2) },
		func(tx *stm.Tx) {
			tx.Thread().TraceID = 0 // consume from lane 0
			if v, ok := q.Poll(tx); !ok || v != 1 {
				t.Errorf("Poll = (%d,%v), want (1,true)", v, ok)
			}
		},
		func(tx *stm.Tx) { q.PutLane(tx, 3, 99) },
	)
	if conflicted {
		t.Fatal("dequeue from lane 0 conflicted with enqueue on lane 3")
	}
}

// TestSegmentedQueueDisjointLaneHandlerWindowsOverlap is the queue's
// rendezvous proof: two transactions committing to different lanes of
// the SAME queue hold their commit-handler windows simultaneously.
// With the old single-guard queue this deadlocks until the timeout.
func TestSegmentedQueueDisjointLaneHandlerWindowsOverlap(t *testing.T) {
	q := newSegmentedQueue(4)
	aIn, bIn := make(chan struct{}), make(chan struct{})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	var onceA, onceB sync.Once
	go func() {
		defer wg.Done()
		th := newTh(1)
		_ = th.Atomic(func(tx *stm.Tx) error {
			q.PutLane(tx, 0, 1)
			tx.OnCommitGuarded(q.LaneGuard(0), func() {
				onceA.Do(func() { close(aIn) })
				<-bIn
			})
			return nil
		})
	}()
	go func() {
		defer wg.Done()
		th := newTh(2)
		_ = th.Atomic(func(tx *stm.Tx) error {
			q.PutLane(tx, 3, 2)
			tx.OnCommitGuarded(q.LaneGuard(3), func() {
				onceB.Do(func() { close(bIn) })
				<-aIn
			})
			return nil
		})
	}()
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("disjoint-lane handler windows on one segmented queue did not overlap")
	}
	if got := q.CommittedSize(); got != 2 {
		t.Fatalf("CommittedSize = %d after overlapping commits, want 2", got)
	}
}

// TestSegmentedQueueSingleLaneEquivalence: one lane reproduces the
// plain queue, including the empty-lock protocol on the single lane.
func TestSegmentedQueueSingleLaneEquivalence(t *testing.T) {
	q := newSegmentedQueue(1)
	if q.Lanes() != 1 || q.mask != 0 {
		t.Fatalf("1-lane queue: lanes=%d mask=%d", q.Lanes(), q.mask)
	}
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		q.Put(tx, 7)
	})
	conflicted := runInterleaved(t,
		func(tx *stm.Tx) {},
		func(tx *stm.Tx) {
			// The abort's refill re-enqueues 7 behind the committed 8, so
			// the retry sees a different order; assert only on attempt 0.
			if v, ok := q.Poll(tx); tx.Attempt() == 0 && (!ok || v != 7) {
				t.Errorf("Poll = (%d,%v)", v, ok)
			}
			if _, ok := q.Poll(tx); ok && tx.Attempt() == 0 {
				t.Error("second Poll returned a value")
			}
		},
		func(tx *stm.Tx) { q.Put(tx, 8) },
	)
	if !conflicted {
		t.Fatal("single-lane empty-Poll did not conflict with Put")
	}
}

// TestSegmentedQueueNoLostOrDuplicatedWork hammers producers and
// consumers across all lanes and checks conservation.
func TestSegmentedQueueNoLostOrDuplicatedWork(t *testing.T) {
	q := newSegmentedQueue(4)
	const producers, perProducer = 4, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := newLaneTh(int64(p+1), p)
			for i := 0; i < perProducer; i++ {
				v := p*perProducer + i
				if err := th.Atomic(func(tx *stm.Tx) error {
					q.Put(tx, v)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	seen := make(map[int]int)
	var mu sync.Mutex
	var cwg sync.WaitGroup
	for c := 0; c < producers; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			th := newLaneTh(int64(100+c), c)
			for {
				var v int
				var ok bool
				if err := th.Atomic(func(tx *stm.Tx) error {
					v, ok = q.Poll(tx)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if !ok {
					mu.Lock()
					n := len(seen)
					mu.Unlock()
					if n >= producers*perProducer {
						return
					}
					time.Sleep(time.Millisecond)
					continue
				}
				mu.Lock()
				seen[v]++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	cwg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("consumed %d distinct values, want %d", len(seen), producers*perProducer)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d consumed %d times", v, n)
		}
	}
}
