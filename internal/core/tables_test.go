package core

import (
	"testing"

	"tcc/internal/stm"
)

// runInterleaved executes the two-transaction interleaving used to
// check each cell of the paper's conflict matrices (Tables 1, 4, 7):
//
//	T1 runs `first` (typically a read operation taking semantic locks)
//	and parks; T2 then runs `second` to completion (its commit handler
//	performs semantic conflict detection); T1 resumes and tries to
//	commit.
//
// It returns whether T1 was aborted and re-executed — i.e. whether the
// implementation detected a conflict between the two operations.
func runInterleaved(t *testing.T, setup, first, second func(tx *stm.Tx)) (conflicted bool) {
	t.Helper()
	th0 := stm.NewThread(&stm.RealClock{}, 0)
	if setup != nil {
		atomically(t, th0, setup)
	}
	parked := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	attempts := 0
	go func() {
		th1 := stm.NewThread(&stm.RealClock{}, 1)
		done <- th1.Atomic(func(tx *stm.Tx) error {
			attempts = tx.Attempt() + 1
			first(tx)
			if tx.Attempt() == 0 {
				parked <- struct{}{}
				<-release
			}
			return nil
		})
	}()
	<-parked
	th2 := stm.NewThread(&stm.RealClock{}, 2)
	atomically(t, th2, second)
	close(release)
	must(t, <-done)
	return attempts > 1
}

// expectConflict asserts the cell's verdict.
func expectConflict(t *testing.T, name string, want bool, setup, first, second func(tx *stm.Tx)) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		got := runInterleaved(t, setup, first, second)
		if got != want {
			if want {
				t.Fatalf("%s: expected a semantic conflict, but both transactions committed untouched", name)
			}
			t.Fatalf("%s: operations should commute, but the reader was aborted", name)
		}
	})
}

// TestTable1MapConflictMatrix encodes Table 1 (and the Table 2 locking
// rules that implement it): the conditions under which Map operations
// conflict.
func TestTable1MapConflictMatrix(t *testing.T) {
	seed := func(tm *TransactionalMap[int, int], pairs ...int) func(tx *stm.Tx) {
		return func(tx *stm.Tx) {
			for i := 0; i+1 < len(pairs); i += 2 {
				tm.Put(tx, pairs[i], pairs[i+1])
			}
		}
	}

	{ // containsKey vs put: conflict when put adds an entry with the same key.
		tm := newIntMap()
		expectConflict(t, "containsKey/put-same-new-key", true,
			seed(tm),
			func(tx *stm.Tx) {
				if tm.ContainsKey(tx, 1) && tx.Attempt() == 0 {
					t.Error("key 1 unexpectedly present")
				}
			},
			func(tx *stm.Tx) { tm.Put(tx, 1, 1) },
		)
	}
	{ // containsKey vs put of a different key: commute.
		tm := newIntMap()
		expectConflict(t, "containsKey/put-different-key", false,
			seed(tm, 1, 1),
			func(tx *stm.Tx) { tm.ContainsKey(tx, 1) },
			func(tx *stm.Tx) { tm.Put(tx, 2, 2) },
		)
	}
	{ // get vs remove of the same key: conflict.
		tm := newIntMap()
		expectConflict(t, "get/remove-same-key", true,
			seed(tm, 1, 10),
			func(tx *stm.Tx) { tm.Get(tx, 1) },
			func(tx *stm.Tx) { tm.Remove(tx, 1) },
		)
	}
	{ // get vs remove of a different key: commute.
		tm := newIntMap()
		expectConflict(t, "get/remove-different-key", false,
			seed(tm, 1, 10, 2, 20),
			func(tx *stm.Tx) { tm.Get(tx, 1) },
			func(tx *stm.Tx) { tm.Remove(tx, 2) },
		)
	}
	{ // get vs put replacing the same key's value: value readers must
		// be ordered against value writers (Table 2: key conflict based
		// on argument).
		tm := newIntMap()
		expectConflict(t, "get/put-same-key-replace", true,
			seed(tm, 1, 10),
			func(tx *stm.Tx) { tm.Get(tx, 1) },
			func(tx *stm.Tx) { tm.Put(tx, 1, 11) },
		)
	}
	{ // size vs put adding a new entry: conflict.
		tm := newIntMap()
		expectConflict(t, "size/put-new-key", true,
			seed(tm, 1, 1),
			func(tx *stm.Tx) { tm.Size(tx) },
			func(tx *stm.Tx) { tm.Put(tx, 2, 2) },
		)
	}
	{ // size vs put replacing a value: size unchanged, commute.
		tm := newIntMap()
		expectConflict(t, "size/put-replace", false,
			seed(tm, 1, 1),
			func(tx *stm.Tx) { tm.Size(tx) },
			func(tx *stm.Tx) { tm.Put(tx, 1, 99) },
		)
	}
	{ // size vs remove taking away an entry: conflict.
		tm := newIntMap()
		expectConflict(t, "size/remove-present", true,
			seed(tm, 1, 1, 2, 2),
			func(tx *stm.Tx) { tm.Size(tx) },
			func(tx *stm.Tx) { tm.Remove(tx, 2) },
		)
	}
	{ // size vs remove of an absent key: size unchanged, commute. (The
		// remover read key 9's absence, but the sizer never touched key
		// 9.)
		tm := newIntMap()
		expectConflict(t, "size/remove-absent", false,
			seed(tm, 1, 1),
			func(tx *stm.Tx) { tm.Size(tx) },
			func(tx *stm.Tx) { tm.Remove(tx, 9) },
		)
	}
	{ // hasNext==false vs put adding a new entry: the full enumeration
		// observed the size (Table 1: "if hasNext is false and put adds
		// a new entry").
		tm := newIntMap()
		expectConflict(t, "hasNextFalse/put-new-key", true,
			seed(tm, 1, 1),
			func(tx *stm.Tx) {
				it := tm.Iterator(tx)
				for it.HasNext() {
					it.Next()
				}
			},
			func(tx *stm.Tx) { tm.Put(tx, 2, 2) },
		)
	}
	{ // iterator.next vs remove of a returned key: conflict (Table 1:
		// "remove takes away key in iterated range").
		tm := newIntMap()
		expectConflict(t, "iteratorNext/remove-returned-key", true,
			seed(tm, 1, 1),
			func(tx *stm.Tx) {
				it := tm.Iterator(tx)
				it.Next() // returns key 1, the only key
			},
			func(tx *stm.Tx) { tm.Remove(tx, 1) },
		)
	}
	{ // put vs put to the same key: conflict (both write the key; one
		// must see the other).
		tm := newIntMap()
		expectConflict(t, "put/put-same-key", true,
			seed(tm),
			func(tx *stm.Tx) { tm.Put(tx, 5, 50) },
			func(tx *stm.Tx) { tm.Put(tx, 5, 55) },
		)
	}
	{ // put vs put to different keys: the paper's headline — both
		// change the size field, yet they commute.
		tm := newIntMap()
		expectConflict(t, "put/put-different-keys", false,
			seed(tm),
			func(tx *stm.Tx) { tm.Put(tx, 5, 50) },
			func(tx *stm.Tx) { tm.Put(tx, 6, 60) },
		)
	}
	{ // remove vs remove of the same key: conflict.
		tm := newIntMap()
		expectConflict(t, "remove/remove-same-key", true,
			seed(tm, 5, 50),
			func(tx *stm.Tx) { tm.Remove(tx, 5) },
			func(tx *stm.Tx) { tm.Remove(tx, 5) },
		)
	}
	{ // blind puts to the same key: §5.1's relaxation — no read, no
		// ordering requirement, both commit.
		tm := newIntMap()
		expectConflict(t, "putUnread/putUnread-same-key", false,
			seed(tm, 5, 1),
			func(tx *stm.Tx) { tm.PutUnread(tx, 5, 50) },
			func(tx *stm.Tx) { tm.PutUnread(tx, 5, 55) },
		)
	}
	{ // isEmpty (empty-transition lock) vs put on a non-empty map:
		// commute (§5.1: "these transactions should commute as long as
		// they add different keys").
		tm := newIntMap()
		expectConflict(t, "isEmpty/put-nonempty-map", false,
			seed(tm, 1, 1),
			func(tx *stm.Tx) {
				if tm.IsEmpty(tx) && tx.Attempt() == 0 {
					t.Error("seeded map empty")
				}
			},
			func(tx *stm.Tx) { tm.Put(tx, 2, 2) },
		)
	}
	{ // isEmpty vs first put into an empty map: emptiness changes,
		// conflict (§5.1: "should not commute because a serial ordering
		// would require that only one would find an empty map").
		tm := newIntMap()
		expectConflict(t, "isEmpty/put-into-empty-map", true,
			nil,
			func(tx *stm.Tx) {
				if !tm.IsEmpty(tx) && tx.Attempt() == 0 {
					t.Error("fresh map not empty")
				}
			},
			func(tx *stm.Tx) { tm.Put(tx, 1, 1) },
		)
	}
	{ // the §5.1 ablation: isEmpty via the size lock conflicts even on
		// a non-empty map.
		tm := newIntMap()
		tm.SetIsEmptyViaSize(true)
		expectConflict(t, "isEmptyViaSize/put-nonempty-map", true,
			seed(tm, 1, 1),
			func(tx *stm.Tx) { tm.IsEmpty(tx) },
			func(tx *stm.Tx) { tm.Put(tx, 2, 2) },
		)
	}
}

// TestTable4SortedMapConflictMatrix encodes the SortedMap-specific
// cells of Table 4 / locking rules of Table 5.
func TestTable4SortedMapConflictMatrix(t *testing.T) {
	seed := func(tm *TransactionalSortedMap[int, int], keys ...int) func(tx *stm.Tx) {
		return func(tx *stm.Tx) {
			for _, k := range keys {
				tm.Put(tx, k, k)
			}
		}
	}

	{ // lastKey vs put of a new maximum: conflict.
		tm := newSorted()
		expectConflict(t, "lastKey/put-new-max", true,
			seed(tm, 10, 20),
			func(tx *stm.Tx) { tm.LastKey(tx) },
			func(tx *stm.Tx) { tm.Put(tx, 30, 30) },
		)
	}
	{ // lastKey vs put of an interior key: commute.
		tm := newSorted()
		expectConflict(t, "lastKey/put-interior", false,
			seed(tm, 10, 20),
			func(tx *stm.Tx) { tm.LastKey(tx) },
			func(tx *stm.Tx) { tm.Put(tx, 15, 15) },
		)
	}
	{ // lastKey vs remove of the maximum: conflict.
		tm := newSorted()
		expectConflict(t, "lastKey/remove-max", true,
			seed(tm, 10, 20),
			func(tx *stm.Tx) { tm.LastKey(tx) },
			func(tx *stm.Tx) { tm.Remove(tx, 20) },
		)
	}
	{ // firstKey vs remove of the minimum: conflict.
		tm := newSorted()
		expectConflict(t, "firstKey/remove-min", true,
			seed(tm, 10, 20),
			func(tx *stm.Tx) { tm.FirstKey(tx) },
			func(tx *stm.Tx) { tm.Remove(tx, 10) },
		)
	}
	{ // firstKey vs put of a larger key: commute.
		tm := newSorted()
		expectConflict(t, "firstKey/put-larger", false,
			seed(tm, 10),
			func(tx *stm.Tx) { tm.FirstKey(tx) },
			func(tx *stm.Tx) { tm.Put(tx, 20, 20) },
		)
	}
	{ // iterator vs put of a new key inside the iterated range:
		// conflict (Table 4: "put adds key in iterated range"). The
		// iterator returned 10 and 20; 15 lands inside [_, 20].
		tm := newSorted()
		expectConflict(t, "iterator/put-inside-iterated-range", true,
			seed(tm, 10, 20, 40),
			func(tx *stm.Tx) {
				it := tm.Iterator(tx)
				it.Next() // 10
				it.Next() // 20
			},
			func(tx *stm.Tx) { tm.Put(tx, 15, 15) },
		)
	}
	{ // iterator vs put beyond the iterated range: commute — the
		// iterator never observed that region.
		tm := newSorted()
		expectConflict(t, "iterator/put-beyond-iterated-range", false,
			seed(tm, 10, 20, 40),
			func(tx *stm.Tx) {
				it := tm.Iterator(tx)
				it.Next() // 10
				it.Next() // 20: iterated range is (-inf, 20]
			},
			func(tx *stm.Tx) { tm.Put(tx, 30, 30) },
		)
	}
	{ // iterator vs remove of a key inside the iterated range: conflict.
		tm := newSorted()
		expectConflict(t, "iterator/remove-inside-iterated-range", true,
			seed(tm, 10, 20, 40),
			func(tx *stm.Tx) {
				it := tm.Iterator(tx)
				it.Next()
				it.Next()
			},
			func(tx *stm.Tx) { tm.Remove(tx, 10) },
		)
	}
	{ // subMap iterator vs put inside the view's iterated range.
		tm := newSorted()
		expectConflict(t, "subMapIterator/put-inside-range", true,
			seed(tm, 10, 20, 30, 40),
			func(tx *stm.Tx) {
				it := tm.SubMap(10, 35).Iterator(tx)
				it.Next() // 10
				it.Next() // 20: range [10, 20]
			},
			func(tx *stm.Tx) { tm.Put(tx, 15, 15) },
		)
	}
	{ // subMap iterator vs put outside the view: commute.
		tm := newSorted()
		expectConflict(t, "subMapIterator/put-outside-view", false,
			seed(tm, 10, 20, 30, 40),
			func(tx *stm.Tx) {
				it := tm.SubMap(10, 35).Iterator(tx)
				it.Next()
				it.Next()
			},
			func(tx *stm.Tx) { tm.Put(tx, 50, 50) },
		)
	}
	{ // exhausted subMap iterator pins its range to the view bound:
		// put inside the drained view conflicts even past the last
		// returned key.
		tm := newSorted()
		expectConflict(t, "subMapIteratorExhausted/put-in-view-tail", true,
			seed(tm, 10, 20, 40),
			func(tx *stm.Tx) {
				it := tm.SubMap(10, 35).Iterator(tx)
				for it.HasNext() {
					it.Next()
				}
			},
			func(tx *stm.Tx) { tm.Put(tx, 30, 30) },
		)
	}
	{ // tailMap hasNext==false vs put of a new last key: conflict
		// (Table 4: "hasNext is false and put adds new lastKey").
		tm := newSorted()
		expectConflict(t, "tailMapHasNextFalse/put-new-last", true,
			seed(tm, 10, 20),
			func(tx *stm.Tx) {
				it := tm.TailMap(15).Iterator(tx)
				for it.HasNext() {
					it.Next()
				}
			},
			func(tx *stm.Tx) { tm.Put(tx, 30, 30) },
		)
	}
	{ // full iteration to exhaustion vs put of a new last key: the last
		// lock fires.
		tm := newSorted()
		expectConflict(t, "iteratorExhausted/put-new-last", true,
			seed(tm, 10),
			func(tx *stm.Tx) {
				it := tm.Iterator(tx)
				for it.HasNext() {
					it.Next()
				}
			},
			func(tx *stm.Tx) { tm.Put(tx, 99, 99) },
		)
	}
}

// TestTable7ChannelConflictMatrix encodes Table 7 / Table 8: the
// TransactionalQueue's reduced-isolation conflict rules.
func TestTable7ChannelConflictMatrix(t *testing.T) {
	{ // peek that returned null vs put: conflict ("if peek returned
		// null" x put "if now non-empty").
		q := newQueue()
		expectConflict(t, "peekNull/put", true,
			nil,
			func(tx *stm.Tx) {
				if _, ok := q.Peek(tx); ok && tx.Attempt() == 0 {
					t.Error("peek on empty queue succeeded")
				}
			},
			func(tx *stm.Tx) { q.Put(tx, 1) },
		)
	}
	{ // poll that returned null vs put: conflict.
		q := newQueue()
		expectConflict(t, "pollNull/put", true,
			nil,
			func(tx *stm.Tx) {
				if _, ok := q.Poll(tx); ok && tx.Attempt() == 0 {
					t.Error("poll on empty queue succeeded")
				}
			},
			func(tx *stm.Tx) { q.Put(tx, 1) },
		)
	}
	{ // peek that returned an element vs put: commute.
		q := newQueue()
		expectConflict(t, "peekNonNull/put", false,
			func(tx *stm.Tx) { q.Put(tx, 1) },
			func(tx *stm.Tx) {
				if _, ok := q.Peek(tx); !ok {
					t.Error("peek on non-empty queue failed")
				}
			},
			func(tx *stm.Tx) { q.Put(tx, 2) },
		)
	}
	{ // take vs take: no semantic conflict — each gets its own element
		// (Table 7: the take column and row are empty).
		q := newQueue()
		expectConflict(t, "take/take", false,
			func(tx *stm.Tx) { q.Put(tx, 1); q.Put(tx, 2) },
			func(tx *stm.Tx) {
				if _, ok := q.Poll(tx); !ok {
					t.Error("first poll failed")
				}
			},
			func(tx *stm.Tx) {
				if _, ok := q.Poll(tx); !ok {
					t.Error("second poll failed")
				}
			},
		)
	}
	{ // put vs put: commute.
		q := newQueue()
		expectConflict(t, "put/put", false,
			nil,
			func(tx *stm.Tx) { q.Put(tx, 1) },
			func(tx *stm.Tx) { q.Put(tx, 2) },
		)
	}
	{ // poll that returned an element vs put: commute (the queue was
		// non-empty; no emptiness was observed).
		q := newQueue()
		expectConflict(t, "pollNonNull/put", false,
			func(tx *stm.Tx) { q.Put(tx, 1) },
			func(tx *stm.Tx) {
				if _, ok := q.Poll(tx); !ok {
					t.Error("poll failed")
				}
			},
			func(tx *stm.Tx) { q.Put(tx, 2) },
		)
	}
}
