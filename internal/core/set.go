package core

import (
	"tcc/internal/collections"
	"tcc/internal/stm"
)

// TransactionalSet is a set built as a thin wrapper over
// TransactionalMap, "as has been done similarly for ConcurrentHashSet
// implementations built on top of ConcurrentHashMap" (paper §5.1).
type TransactionalSet[K comparable] struct {
	m *TransactionalMap[K, struct{}]
}

// NewTransactionalSet creates a set backed by a fresh HashMap.
func NewTransactionalSet[K comparable]() *TransactionalSet[K] {
	return &TransactionalSet[K]{m: NewTransactionalMap[K, struct{}](collections.NewHashMap[K, struct{}]())}
}

// Add inserts k, reporting whether it was newly added.
func (s *TransactionalSet[K]) Add(tx *stm.Tx, k K) bool {
	_, had := s.m.Put(tx, k, struct{}{})
	return !had
}

// AddUnread inserts k blindly: no read dependency, no report.
func (s *TransactionalSet[K]) AddUnread(tx *stm.Tx, k K) { s.m.PutUnread(tx, k, struct{}{}) }

// Remove deletes k, reporting whether it was present.
func (s *TransactionalSet[K]) Remove(tx *stm.Tx, k K) bool {
	_, had := s.m.Remove(tx, k)
	return had
}

// Contains reports whether k is in the set.
func (s *TransactionalSet[K]) Contains(tx *stm.Tx, k K) bool { return s.m.ContainsKey(tx, k) }

// Size returns the number of elements (takes the size lock).
func (s *TransactionalSet[K]) Size(tx *stm.Tx) int { return s.m.Size(tx) }

// IsEmpty reports emptiness (takes the empty-transition lock).
func (s *TransactionalSet[K]) IsEmpty(tx *stm.Tx) bool { return s.m.IsEmpty(tx) }

// ForEach enumerates the set until fn returns false.
func (s *TransactionalSet[K]) ForEach(tx *stm.Tx, fn func(k K) bool) {
	s.m.ForEach(tx, func(k K, _ struct{}) bool { return fn(k) })
}

// TransactionalSortedSet is the ordered variant, over
// TransactionalSortedMap.
type TransactionalSortedSet[K comparable] struct {
	m *TransactionalSortedMap[K, struct{}]
}

// NewTransactionalSortedSet creates a sorted set backed by a fresh
// red-black TreeMap ordered by compare.
func NewTransactionalSortedSet[K comparable](compare func(a, b K) int) *TransactionalSortedSet[K] {
	return &TransactionalSortedSet[K]{
		m: NewTransactionalSortedMap[K, struct{}](collections.NewTreeMapFunc[K, struct{}](compare)),
	}
}

// Add inserts k, reporting whether it was newly added.
func (s *TransactionalSortedSet[K]) Add(tx *stm.Tx, k K) bool {
	_, had := s.m.Put(tx, k, struct{}{})
	return !had
}

// Remove deletes k, reporting whether it was present.
func (s *TransactionalSortedSet[K]) Remove(tx *stm.Tx, k K) bool {
	_, had := s.m.Remove(tx, k)
	return had
}

// Contains reports whether k is in the set.
func (s *TransactionalSortedSet[K]) Contains(tx *stm.Tx, k K) bool { return s.m.ContainsKey(tx, k) }

// Size returns the number of elements (takes the size lock).
func (s *TransactionalSortedSet[K]) Size(tx *stm.Tx) int { return s.m.Size(tx) }

// IsEmpty reports emptiness (takes the empty-transition lock).
func (s *TransactionalSortedSet[K]) IsEmpty(tx *stm.Tx) bool { return s.m.IsEmpty(tx) }

// First returns the minimum element (takes the first lock).
func (s *TransactionalSortedSet[K]) First(tx *stm.Tx) (K, bool) { return s.m.FirstKey(tx) }

// Last returns the maximum element (takes the last lock).
func (s *TransactionalSortedSet[K]) Last(tx *stm.Tx) (K, bool) { return s.m.LastKey(tx) }

// ForEach enumerates the set in ascending order until fn returns false.
func (s *TransactionalSortedSet[K]) ForEach(tx *stm.Tx, fn func(k K) bool) {
	s.m.ForEach(tx, func(k K, _ struct{}) bool { return fn(k) })
}
