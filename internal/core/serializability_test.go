package core

// A randomized serializability checker. Workers run transactions of
// random composed map operations, recording every operation's result.
// Each transaction also registers a commit handler that draws a global
// sequence number; because commit handlers run under the STM's commit
// guard, the sequence numbers are the true serialization order the
// semantic concurrency control produced. Afterwards, the committed
// transactions are replayed in sequence order against a plain model
// map: serializability holds iff every recorded result matches the
// replay and the final committed map equals the model.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"tcc/internal/stm"
)

type serOpKind int

const (
	serGet serOpKind = iota
	serContains
	serPut
	serPutUnread
	serRemove
	serSize
	serIsEmpty
)

type serOp struct {
	kind serOpKind
	k    int
	v    int
	// recorded results
	gotV  int
	gotOK bool
	gotN  int
	gotB  bool
}

type serTx struct {
	seq int64
	ops []serOp
}

func runSerializabilityWorkload(t *testing.T, workers, txPerWorker, keySpace int, blindAllowed bool) {
	t.Helper()
	tm := newIntMap()
	var seqCounter atomic.Int64
	var mu sync.Mutex
	var committed []serTx

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 13))
			th := newTh(int64(w + 1))
			for i := 0; i < txPerWorker; i++ {
				// Draw the transaction's shape once; results are
				// recorded fresh on every attempt so the committed
				// attempt's observations survive.
				nOps := 1 + rng.Intn(4)
				shape := make([]serOp, nOps)
				for j := range shape {
					maxKind := int(serIsEmpty)
					kind := serOpKind(rng.Intn(maxKind + 1))
					if kind == serPutUnread && !blindAllowed {
						kind = serPut
					}
					shape[j] = serOp{kind: kind, k: rng.Intn(keySpace), v: rng.Int() % 1000}
				}
				var rec serTx
				err := th.Atomic(func(tx *stm.Tx) error {
					rec = serTx{ops: make([]serOp, len(shape))}
					copy(rec.ops, shape)
					for j := range rec.ops {
						op := &rec.ops[j]
						switch op.kind {
						case serGet:
							op.gotV, op.gotOK = tm.Get(tx, op.k)
						case serContains:
							op.gotB = tm.ContainsKey(tx, op.k)
						case serPut:
							op.gotV, op.gotOK = tm.Put(tx, op.k, op.v)
						case serPutUnread:
							tm.PutUnread(tx, op.k, op.v)
						case serRemove:
							op.gotV, op.gotOK = tm.Remove(tx, op.k)
						case serSize:
							op.gotN = tm.Size(tx)
						case serIsEmpty:
							op.gotB = tm.IsEmpty(tx)
						}
					}
					// Draw the serialization number at commit, under
					// the commit guard.
					tx.OnTopCommit(func() {
						rec.seq = seqCounter.Add(1)
					})
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				committed = append(committed, rec)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	// Replay in serialization order against a model.
	bydSeq := make([]serTx, len(committed))
	copy(bydSeq, committed)
	for i := range bydSeq {
		if bydSeq[i].seq == 0 {
			t.Fatal("committed transaction without sequence number")
		}
	}
	sortBySeq(bydSeq)
	model := map[int]int{}
	for _, tr := range bydSeq {
		for _, op := range tr.ops {
			switch op.kind {
			case serGet:
				wantV, wantOK := model[op.k]
				if op.gotOK != wantOK || (wantOK && op.gotV != wantV) {
					t.Fatalf("seq %d: get(%d) observed (%d,%v), replay gives (%d,%v) — not serializable",
						tr.seq, op.k, op.gotV, op.gotOK, wantV, wantOK)
				}
			case serContains:
				_, want := model[op.k]
				if op.gotB != want {
					t.Fatalf("seq %d: containsKey(%d) observed %v, replay gives %v", tr.seq, op.k, op.gotB, want)
				}
			case serPut:
				wantV, wantOK := model[op.k]
				if op.gotOK != wantOK || (wantOK && op.gotV != wantV) {
					t.Fatalf("seq %d: put(%d) returned (%d,%v), replay gives (%d,%v)",
						tr.seq, op.k, op.gotV, op.gotOK, wantV, wantOK)
				}
				model[op.k] = op.v
			case serPutUnread:
				model[op.k] = op.v
			case serRemove:
				wantV, wantOK := model[op.k]
				if op.gotOK != wantOK || (wantOK && op.gotV != wantV) {
					t.Fatalf("seq %d: remove(%d) returned (%d,%v), replay gives (%d,%v)",
						tr.seq, op.k, op.gotV, op.gotOK, wantV, wantOK)
				}
				delete(model, op.k)
			case serSize:
				if op.gotN != len(model) {
					t.Fatalf("seq %d: size observed %d, replay gives %d", tr.seq, op.gotN, len(model))
				}
			case serIsEmpty:
				if op.gotB != (len(model) == 0) {
					t.Fatalf("seq %d: isEmpty observed %v, replay gives %v", tr.seq, op.gotB, len(model) == 0)
				}
			}
		}
	}

	// Final state must match the model.
	th := newTh(999)
	atomically(t, th, func(tx *stm.Tx) {
		if n := tm.Size(tx); n != len(model) {
			t.Fatalf("final size %d, model %d", n, len(model))
		}
		for k, v := range model {
			if got, ok := tm.Get(tx, k); !ok || got != v {
				t.Fatalf("final state: key %d = (%d,%v), model %d", k, got, ok, v)
			}
		}
	})
}

func sortBySeq(txs []serTx) {
	for i := 1; i < len(txs); i++ {
		for j := i; j > 0 && txs[j].seq < txs[j-1].seq; j-- {
			txs[j], txs[j-1] = txs[j-1], txs[j]
		}
	}
}

// TestSerializabilityHighContention hammers a tiny key space so nearly
// every pair of transactions semantically conflicts.
func TestSerializabilityHighContention(t *testing.T) {
	runSerializabilityWorkload(t, 6, 80, 4, false)
}

// TestSerializabilityMediumContention uses a wider key space where
// disjoint-key transactions commute.
func TestSerializabilityMediumContention(t *testing.T) {
	runSerializabilityWorkload(t, 8, 80, 64, false)
}

// TestSerializabilityWithBlindWrites includes PutUnread. Blind writes
// deliberately forgo read dependencies, but the commit-order replay
// must still match: a blind write that commits later wins, exactly as
// the replay applies it.
func TestSerializabilityWithBlindWrites(t *testing.T) {
	runSerializabilityWorkload(t, 6, 80, 8, true)
}
