// Package core implements the paper's contribution: transactional
// collection classes. They wrap existing, non-thread-safe collection
// implementations (internal/collections) and make them usable from
// long-running transactions without the unnecessary memory-level
// conflicts that wreck scalability when such structures are accessed
// directly inside transactions.
//
// The construction follows the paper's §5 guidelines exactly:
//
//   - The underlying structure is read only inside open-nested regions
//     that also take the appropriate semantic locks (key, size, empty,
//     range, first/last — Tables 2, 5, 8).
//   - Write operations never touch the underlying structure; they buffer
//     into transaction-local state (storeBuffer, addBuffer — Tables 3,
//     6, 9).
//   - A single commit handler per (transaction, collection), registered
//     by the first operation, applies the buffer, violates transactions
//     holding conflicting semantic locks, and releases this
//     transaction's locks.
//   - A single abort handler releases locks and discards buffers
//     (compensation for the open-nested lock acquisitions).
//
// The open-nested regions execute as tx.Open children whose body is a
// short critical section on a commit guard (stm.Guard) — the same guard
// the instance's handlers are registered under, so lock-table reads
// stay atomic with respect to commits; this is the substitution for the
// paper's low-level open-nested hardware transactions described in
// DESIGN.md §4 — immediate global visibility, compensation via abort
// handlers, and lock ownership by the top-level transaction are all
// preserved.
//
// # Striping
//
// TransactionalMap shards its internals — the wrapped map, the key-lock
// table, and the size/empty lock sets — into S hash(key)-indexed
// stripes, each fused with its own guard, so open-nested operations on
// disjoint keys of the same map run fully in parallel and a commit's
// guard footprint covers only the stripes its buffer touched
// (NewStripedTransactionalMap; DESIGN.md §4.2). NewTransactionalMap
// wraps one caller-supplied structure and is therefore single-stripe.
//
// TransactionalSortedMap stripes differently: range and endpoint locks
// are inherently cross-key, so hashing keys to stripes would force
// every iterator and navigation query to take every stripe. Instead
// NewRangeStripedTransactionalSortedMap partitions the *key space* into
// contiguous intervals — each stripe fuses its own guard, sorted shard,
// key-lock table and range-lock table — so point operations and range
// scans confined to one interval stay on one guard, and only scans and
// endpoint walks that genuinely span intervals touch several stripes
// (one guard at a time, in ascending interval order; see
// sortedmap_striped.go and DESIGN.md §4.5). TransactionalQueue
// similarly segments into lanes (NewSegmentedTransactionalQueue):
// semantic FIFO is preserved per lane, and producers/consumers on
// different lanes commit and run handler windows in parallel.
//
// Caveat, matching the paper's single-handler design choice (§5.1
// "Single versus multiple handlers"): collection operations performed
// inside a closed-nested child are merged into the transaction's one
// buffer, so they are rolled back correctly when the whole transaction
// aborts, but a closed-nested child that aborts and retries *after*
// performing collection operations does not unwind those buffered
// operations. Perform collection operations in the transaction body (as
// the paper's benchmarks do), not in partially-rolled-back children.
package core

import (
	"hash/maphash"
	"strconv"

	"tcc/internal/collections"
	"tcc/internal/obs/metrics"
	"tcc/internal/semlock"
	"tcc/internal/stm"
)

// DefaultOpCost is the abstract cycle cost charged per collection
// operation (the open-nested critical section's work), calibrated to be
// comparable with the lock-based baseline's per-operation cost so that
// single-CPU runtimes of the configurations in the paper's figures are
// commensurable.
const DefaultOpCost = 40

// DefaultStripes is the stripe count NewStripedTransactionalMap uses
// when the caller passes stripes <= 0.
const DefaultStripes = 16

// maxStripes bounds the stripe count so a transaction's touched-stripe
// set fits one uint64 bitmask in its local state.
const maxStripes = 64

// stripeSeed hashes keys to stripes; one process-global seed keeps
// StripeOf stable for a key across every map (and across the map and
// the benchmarks that pick pairwise-disjoint stripes).
var stripeSeed = maphash.MakeSeed()

// mapWrite is one buffered write in the storeBuffer (Table 3: "map of
// keys to new values, special value for removed keys").
type mapWrite[V any] struct {
	val     V
	removed bool
	// knownCommitted records whether the key was present in the
	// committed map when this transaction read it under its key lock;
	// nil for blind writes (PutUnread/RemoveUnread), which defer the
	// presence question — and hence their size contribution — until
	// Size/IsEmpty resolves it or commit applies it.
	knownCommitted *bool
}

// mapLocal is the transaction-local state of Table 3 (and, for sorted
// maps, Table 6): the locks this transaction holds on this instance and
// the write buffer.
type mapLocal[K comparable, V any] struct {
	keyLocks    map[K]struct{}
	sizeLocked  bool
	emptyLocked bool
	firstLocked bool
	lastLocked  bool
	rangeLocks  []stripedRange[K]
	storeBuffer map[K]*mapWrite[V]
	// sortedKeys is Table 6's sortedStoreBuffer: for sorted maps, the
	// buffered keys in comparator order, so iterators and navigation
	// queries enumerate local changes ordered instead of scanning the
	// buffer (values and removal markers stay in storeBuffer).
	sortedKeys *collections.TreeMap[K, struct{}]
	// touched is the bitmask of stripes in this transaction's guard
	// footprint for this instance: every stripe it read, wrote, or
	// registered a size/empty lock in. The commit/abort handler pair is
	// registered under the first touched stripe's guard; each later
	// stripe widens the footprint (stm.Tx.AddTopGuard) so the handlers
	// run with every touched stripe's guard held.
	touched uint64
	// registered records that the handler pair exists.
	registered bool
}

// bufferKey records k in the buffer index (no-op for unsorted maps).
func (l *mapLocal[K, V]) bufferKey(k K) {
	if l.sortedKeys != nil {
		l.sortedKeys.Put(k, struct{}{})
	}
}

// stripedRange records one range lock a transaction holds, with the
// stripe whose table the entry lives in (always 0 on single-stripe
// instances). The stripe index is what lets releaseLocked return each
// entry to the table it came from after an interval-striped walk left
// entries in several stripes' tables.
type stripedRange[K comparable] struct {
	si int
	e  *semlock.RangeEntry[K]
}

// sortedExt carries the extra shared state of TransactionalSortedMap
// (Table 6): the sorted views of the wrapped shards and the range and
// endpoint lock tables. A single-stripe sorted map has one shard and
// one range table; a range-striped one (see sortedmap_striped.go) has
// one of each per interval stripe, split by the boundaries slice.
type sortedExt[K comparable, V any] struct {
	// cmp is the comparator shared by every shard (captured at
	// construction, read-only thereafter).
	cmp func(a, b K) int
	// sms[i] is stripe i's committed sorted shard — the same object as
	// stripes[i].m, retyped to its sorted interface.
	sms []collections.SortedMap[K, V]
	// boundaries[i] is the inclusive lower bound of stripe i+1's
	// interval: stripe 0 owns keys below boundaries[0], stripe i owns
	// [boundaries[i-1], boundaries[i]), the last stripe owns the tail.
	// Empty for single-stripe instances. Immutable after construction.
	boundaries []K
	// rangeLockers[i] is stripe i's range-lock table; an entry in table
	// i is only ever checked against keys of stripe i, so nil bounds
	// mean "to this stripe's edge", not the whole key space.
	rangeLockers []*semlock.RangeTable[K]
	// firstLockers/lastLockers are the endpoint locks of Table 5, used
	// by the single-stripe paths only: a striped sorted map expresses
	// endpoint observations as range+key locks laid down by the
	// stripe-walk (walkUp/walkDown), which a committing endpoint change
	// necessarily violates.
	firstLockers *semlock.OwnerSet
	lastLockers  *semlock.OwnerSet
}

// stripeFor maps k to its interval stripe: the number of boundaries at
// or below k (binary search; boundaries is immutable).
func (x *sortedExt[K, V]) stripeFor(k K) int {
	lo, hi := 0, len(x.boundaries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if x.cmp(k, x.boundaries[mid]) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// mapStripe is one shard of a TransactionalMap: a slice of the
// committed state and of the semantic-lock tables, fused with its own
// commit guard. Every key hashes to exactly one stripe, which holds
// that key's committed mapping and key-lock entry; the size and empty
// lock sets are sharded too — a size/empty reader registers in every
// stripe's set, and a committing writer sweeps only the stripes whose
// local size (or local emptiness) its buffer changed, under guards it
// already holds. A reader is therefore still violated by any committing
// insert or remove (the paper's Table 2 size semantics), but writers on
// disjoint keys never touch a shared counter line or a shared lock set.
type mapStripe[K comparable, V any] struct {
	// guard is this stripe's shard of the commit guard, fused with the
	// mutex that protects the stripe's slice of the wrapped map and the
	// lock tables: open-nested critical sections on this stripe are
	// short and lock only this guard, playing the role of the paper's
	// low-level open-nested transactions. Handlers of transactions that
	// touched this stripe run with it held (see mapLocal.touched).
	guard *stm.Guard
	// m holds the stripe's committed state (Table 3: "the underlying
	// Map instance").
	m collections.Map[K, V]
	// key2lockers and sizeLockers are the shared transaction state of
	// Table 3; emptyLockers implements the §5.1 isEmpty refinement.
	key2lockers  *semlock.KeyTable[K]
	sizeLockers  *semlock.OwnerSet
	emptyLockers *semlock.OwnerSet
	// violations counts semantic violations this stripe's sweeps landed
	// on other transactions (metrics plane; labels collection+stripe,
	// named by SetName). Incremented with atomic-only adds inside the
	// commit-guard hold window — the one in-window operation the
	// metrics discipline allows — and only when metrics.On().
	violations *metrics.Counter
}

// TransactionalMap wraps any collections.Map and provides concurrent,
// atomically composable access from transactions, using semantic
// concurrency control instead of memory-level dependencies (paper
// §3.1). It offers the same operations as the underlying Map interface
// and can serve as a drop-in replacement. See the package documentation
// for the striped internal layout.
type TransactionalMap[K comparable, V any] struct {
	// stripes has power-of-two length in [1, maxStripes]; stripe guard
	// ids are ascending in slice order (they are minted in order at
	// construction), which is what lets lockGuards hold several at once
	// without deadlocking against the commit protocol's sorted
	// footprint acquisition.
	stripes []*mapStripe[K, V]
	// mask is len(stripes)-1; 0 means single-stripe and StripeOf skips
	// hashing entirely.
	mask uint64
	// isEmptyViaSize makes IsEmpty take the size lock instead of the
	// empty-transition lock, reproducing the §5.1 ablation.
	isEmptyViaSize bool
	// eagerWriteCheck switches write operations to pessimistic conflict
	// detection (§5.1 "Alternatives to optimistic concurrency
	// control"): Put/Remove violate conflicting key-lock holders when
	// the operation is first performed instead of waiting until commit.
	// Conflicts surface earlier (less lost work for the writer) at the
	// price of aborting readers that might otherwise have committed
	// before the writer.
	eagerWriteCheck bool
	// opCost is the abstract cycle cost per operation.
	opCost uint64
	// name labels this instance in violation reasons, so lost-work
	// profiles attribute conflicts to specific structures (the paper's
	// TAPE-style analysis names District.orderTable etc.).
	name string
	// Precomputed violation reasons.
	reasonKey, reasonSize, reasonEmpty   string
	reasonRange, reasonFirst, reasonLast string
	// sorted is non-nil when this instance is a TransactionalSortedMap.
	sorted *sortedExt[K, V]
}

// newMapStripe builds one stripe around the given committed shard.
func newMapStripe[K comparable, V any](m collections.Map[K, V]) *mapStripe[K, V] {
	return &mapStripe[K, V]{
		guard:        stm.NewGuard(),
		m:            m,
		key2lockers:  semlock.NewKeyTable[K](),
		sizeLockers:  semlock.NewOwnerSet(),
		emptyLockers: semlock.NewOwnerSet(),
	}
}

// NewTransactionalMap wraps m. The wrapper assumes exclusive ownership:
// all subsequent access must go through the wrapper. Because it adopts
// one existing structure it is single-stripe; use
// NewStripedTransactionalMap (which builds its own shards) when
// disjoint-key operations on one hot map need to scale.
func NewTransactionalMap[K comparable, V any](m collections.Map[K, V]) *TransactionalMap[K, V] {
	tm := &TransactionalMap[K, V]{
		stripes: []*mapStripe[K, V]{newMapStripe(m)},
		opCost:  DefaultOpCost,
	}
	tm.SetName("map")
	return tm
}

// NewStripedTransactionalMap creates a map sharded into the given
// number of stripes (rounded up to a power of two, clamped to
// [1, 64]; stripes <= 0 selects DefaultStripes). newShard is called
// once per stripe to build that stripe's committed structure, so the
// shards start empty and the wrapper owns them outright.
func NewStripedTransactionalMap[K comparable, V any](newShard func() collections.Map[K, V], stripes int) *TransactionalMap[K, V] {
	n := normalizeStripes(stripes)
	tm := &TransactionalMap[K, V]{
		stripes: make([]*mapStripe[K, V], n),
		mask:    uint64(n - 1),
		opCost:  DefaultOpCost,
	}
	if n == 1 {
		tm.mask = 0
	}
	for i := range tm.stripes {
		tm.stripes[i] = newMapStripe(newShard())
	}
	tm.SetName("map")
	return tm
}

// normalizeStripes maps a requested stripe count to the supported
// power-of-two range.
func normalizeStripes(n int) int {
	if n <= 0 {
		n = DefaultStripes
	}
	if n > maxStripes {
		n = maxStripes
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SetName labels this instance in violation reasons so conflict
// profiles (harness.FormatViolationProfile) attribute lost work to
// specific structures. Striped instances label each stripe's guard
// "name.stripe[i]" — or "name.range[i]" for an interval-striped sorted
// map — so guard-wait heatmaps show the stripes working.
func (tm *TransactionalMap[K, V]) SetName(name string) {
	tm.name = name
	if len(tm.stripes) == 1 {
		tm.stripes[0].guard.SetLabel(name)
	} else if tm.sorted != nil {
		for i, st := range tm.stripes {
			st.guard.SetLabel(name + ".range[" + strconv.Itoa(i) + "]")
		}
	} else {
		for i, st := range tm.stripes {
			st.guard.SetLabel(name + ".stripe[" + strconv.Itoa(i) + "]")
		}
	}
	// Per-stripe violation counters reuse the guard-label naming, so
	// scrapes, CPU-profile labels and guard-wait heatmaps all attribute
	// to the same names. Registration locks the registry mutex — fine
	// here (setup time), never inside a guard window.
	for i, st := range tm.stripes {
		st.violations = metrics.Default.Counter(metrics.CollectionViolations,
			"Semantic violations landed by this collection stripe's conflict sweeps",
			metrics.L("collection", name), metrics.L("stripe", strconv.Itoa(i)))
	}
	tm.reasonKey = name + ": key conflict"
	tm.reasonSize = name + ": size conflict"
	tm.reasonEmpty = name + ": emptiness conflict"
	tm.reasonRange = name + ": range conflict"
	tm.reasonFirst = name + ": first-key conflict"
	tm.reasonLast = name + ": last-key conflict"
}

// Name returns the label set by SetName.
func (tm *TransactionalMap[K, V]) Name() string { return tm.name }

// Guard returns stripe 0's commit guard — the instance guard of a
// single-stripe map. Code composing its own guarded handlers with a
// striped map should use StripeGuard(k) for the key it works with.
func (tm *TransactionalMap[K, V]) Guard() *stm.Guard { return tm.stripes[0].guard }

// Stripes returns the number of stripes (1 unless built by
// NewStripedTransactionalMap).
func (tm *TransactionalMap[K, V]) Stripes() int { return len(tm.stripes) }

// StripeOf returns the index of k's stripe: its hash stripe for a
// plain map, its interval stripe for a range-striped sorted map.
func (tm *TransactionalMap[K, V]) StripeOf(k K) int {
	if tm.mask == 0 {
		return 0
	}
	if tm.sorted != nil {
		return tm.sorted.stripeFor(k)
	}
	return int(maphash.Comparable(stripeSeed, k) & tm.mask)
}

// StripeGuard returns the commit guard of k's stripe, for code that
// composes its own guarded handlers with operations on k.
func (tm *TransactionalMap[K, V]) StripeGuard(k K) *stm.Guard {
	return tm.stripes[tm.StripeOf(k)].guard
}

// guard0 returns stripe 0's guard: the instance guard of the
// single-stripe sorted map, whose order-dependent code paths all
// serialize on it.
func (tm *TransactionalMap[K, V]) guard0() *stm.Guard { return tm.stripes[0].guard }

// lockGuards locks every stripe guard, in ascending guard-id order
// (slice order; see the stripes field). Whole-map snapshots need all
// stripes pinned at once — a sequential stripe-at-a-time scan could see
// half of a multi-stripe commit — and the ascending order keeps the
// hold compatible with the commit protocol's sorted footprint
// acquisition, so it cannot deadlock. stmlint classifies a lockGuards
// call as opening a commit-guard hold window.
func (tm *TransactionalMap[K, V]) lockGuards() {
	for _, st := range tm.stripes {
		st.guard.Lock()
	}
}

// unlockGuards unlocks every stripe guard (closing the hold window).
func (tm *TransactionalMap[K, V]) unlockGuards() {
	for _, st := range tm.stripes {
		st.guard.Unlock()
	}
}

// lockStripeSpan locks the guards of stripes [lo, hi], in ascending
// guard-id order (slice order), for snapshot-mode navigation over a
// contiguous interval span of a range-striped sorted map. Like
// lockGuards, the ascending order keeps the hold compatible with the
// commit protocol's sorted footprint acquisition; stmlint classifies a
// lockStripeSpan call as opening a commit-guard hold window.
func (tm *TransactionalMap[K, V]) lockStripeSpan(lo, hi int) {
	for si := lo; si <= hi; si++ {
		tm.stripes[si].guard.Lock()
	}
}

// unlockStripeSpan unlocks the guards of stripes [lo, hi] (closing the
// hold window).
func (tm *TransactionalMap[K, V]) unlockStripeSpan(lo, hi int) {
	for si := lo; si <= hi; si++ {
		tm.stripes[si].guard.Unlock()
	}
}

// addRangeLock publishes e into stripe si's range-lock table and
// records it in the transaction's local state so releaseLocked can
// return it to the right table. Caller holds stripe si's guard.
func (tm *TransactionalMap[K, V]) addRangeLock(l *mapLocal[K, V], si int, e *semlock.RangeEntry[K]) {
	tm.sorted.rangeLockers[si].Add(e)
	l.rangeLocks = append(l.rangeLocks, stripedRange[K]{si: si, e: e})
}

// SetOpCost overrides the abstract cycle cost charged per operation.
func (tm *TransactionalMap[K, V]) SetOpCost(c uint64) { tm.opCost = c }

// SetKeyedConflicts toggles per-key detail in key-conflict violation
// reasons (semlock.KeyTable.SetKeyedReasons): conflict profiles then
// attribute semantic aborts to individual keys, at the price of one
// formatting allocation per violated transaction. Call during setup.
func (tm *TransactionalMap[K, V]) SetKeyedConflicts(on bool) {
	for _, st := range tm.stripes {
		st.key2lockers.SetKeyedReasons(on)
	}
}

// SetIsEmptyViaSize toggles the §5.1 ablation: when true, IsEmpty takes
// the size lock (conflicting with any size change) instead of the
// dedicated empty-transition lock.
func (tm *TransactionalMap[K, V]) SetIsEmptyViaSize(v bool) { tm.isEmptyViaSize = v }

// SetEagerWriteCheck toggles pessimistic write-conflict detection (the
// §5.1 alternative): writes abort conflicting readers at operation time
// rather than at commit.
func (tm *TransactionalMap[K, V]) SetEagerWriteCheck(v bool) { tm.eagerWriteCheck = v }

// local returns this transaction's local state for this instance,
// creating it on first use. For a single-stripe instance the commit and
// abort handler pair is registered immediately (paper §5: "registered
// by the first open-nested transaction to commit"); a striped instance
// defers registration to the first touch so the footprint starts with
// the stripe actually used instead of pinning stripe 0 into every
// transaction's footprint.
func (tm *TransactionalMap[K, V]) local(tx *stm.Tx) *mapLocal[K, V] {
	if l, ok := tx.Local(tm).(*mapLocal[K, V]); ok {
		return l
	}
	l := &mapLocal[K, V]{
		keyLocks:    make(map[K]struct{}),
		storeBuffer: make(map[K]*mapWrite[V]),
	}
	if tm.sorted != nil {
		l.sortedKeys = collections.NewTreeMapFunc[K, struct{}](tm.sorted.cmp)
	}
	tx.SetLocal(tm, l)
	if len(tm.stripes) == 1 {
		l.touched = 1
		tm.register(tx, l)
	}
	return l
}

// register installs the transaction's single commit/abort handler pair
// for this instance under the guard of the first stripe it touched.
// The handler bodies take no lock themselves: the commit/rollback
// protocol holds every touched stripe's guard (the footprint widened by
// touch) for the whole handler window.
func (tm *TransactionalMap[K, V]) register(tx *stm.Tx, l *mapLocal[K, V]) {
	l.registered = true
	g := tm.stripes[firstStripe(l.touched)].guard
	h := tx.Handle()
	th := tx.Thread()
	tx.OnTopCommitGuarded(g, func() {
		n := len(l.storeBuffer)
		tm.applyLocked(l, h)
		th.DeferTick(tm.opCost * uint64(1+n))
	})
	tx.OnTopAbortGuarded(g, func() {
		tm.releaseLocked(l, h)
		th.DeferTick(tm.opCost)
	})
}

// firstStripe returns the index of the lowest set bit of a touched
// mask (the mask is never zero when this is called).
func firstStripe(mask uint64) int {
	i := 0
	for mask&1 == 0 {
		mask >>= 1
		i++
	}
	return i
}

// touch adds stripe si to the transaction's footprint for this
// instance, registering the handler pair on the first touch and
// widening the root-level guard footprint on later ones, and returns
// the stripe. It must run before (not inside) the open-nested critical
// section that locks the stripe's guard: registration itself takes no
// lock, and the footprint must be in place before the transaction can
// reach a handler window that walks the stripe.
func (tm *TransactionalMap[K, V]) touch(tx *stm.Tx, l *mapLocal[K, V], si int) *mapStripe[K, V] {
	st := tm.stripes[si]
	bit := uint64(1) << uint(si)
	if l.touched&bit != 0 {
		return st
	}
	l.touched |= bit
	if !l.registered {
		tm.register(tx, l)
		return st
	}
	tx.AddTopGuard(st.guard)
	return st
}

// touchAll puts every stripe into the footprint (whole-map operations:
// Size, IsEmpty, iteration).
func (tm *TransactionalMap[K, V]) touchAll(tx *stm.Tx, l *mapLocal[K, V]) {
	for si := range tm.stripes {
		tm.touch(tx, l, si)
	}
}

// lockKeyLocked takes (idempotently) the key lock for k on behalf of h.
// Caller holds k's stripe guard.
func (tm *TransactionalMap[K, V]) lockKeyLocked(l *mapLocal[K, V], h semlock.Owner, k K) {
	if _, ok := l.keyLocks[k]; ok {
		return
	}
	tm.stripes[tm.StripeOf(k)].key2lockers.Lock(k, h)
	l.keyLocks[k] = struct{}{}
}

// Get returns the value mapped to k as seen by tx: the transaction's
// own buffered write if any, otherwise the committed value read under a
// key lock inside an open-nested region (Table 2: get takes a "key lock
// on argument").
func (tm *TransactionalMap[K, V]) Get(tx *stm.Tx, k K) (V, bool) {
	if tx.IsSnapshot() {
		return tm.snapshotGet(tx, k)
	}
	l := tm.local(tx)
	if w, ok := l.storeBuffer[k]; ok {
		if w.removed {
			var zero V
			return zero, false
		}
		return w.val, true
	}
	st := tm.touch(tx, l, tm.StripeOf(k))
	var v V
	var present bool
	_ = tx.Open(func(o *stm.Tx) error {
		st.guard.Lock()
		defer st.guard.Unlock()
		tm.lockKeyLocked(l, o.Handle(), k)
		v, present = st.m.Get(k)
		return nil
	})
	tx.Thread().Clock.Tick(tm.opCost)
	return v, present
}

// ContainsKey reports whether k is mapped, taking the same key lock as
// Get.
func (tm *TransactionalMap[K, V]) ContainsKey(tx *stm.Tx, k K) bool {
	_, ok := tm.Get(tx, k)
	return ok
}

// Put buffers a mapping of k to v and returns the previous value.
// Because it returns the old value it logically includes a read, so it
// takes the key lock (Table 2); the actual update is deferred to the
// commit handler. Use PutUnread when the old value is not needed — it
// creates no read dependency (§5.1 "Extensions to java.util.Map").
func (tm *TransactionalMap[K, V]) Put(tx *stm.Tx, k K, v V) (V, bool) {
	l := tm.local(tx)
	if w, ok := l.storeBuffer[k]; ok {
		var old V
		had := !w.removed
		if had {
			old = w.val
		}
		w.val, w.removed = v, false
		return old, had
	}
	old, had := tm.readCommittedWrite(tx, l, k, true)
	kc := had
	l.storeBuffer[k] = &mapWrite[V]{val: v, knownCommitted: &kc}
	l.bufferKey(k)
	return old, had
}

// PutUnread buffers a mapping of k to v without reading or locking the
// old value: two transactions blindly writing the same key commute and
// may commit in either order (the paper's "LastModified" example). The
// key's stripe still joins the guard footprint — the commit handler
// will apply the write there.
func (tm *TransactionalMap[K, V]) PutUnread(tx *stm.Tx, k K, v V) {
	l := tm.local(tx)
	if w, ok := l.storeBuffer[k]; ok {
		w.val, w.removed = v, false
		return
	}
	tm.touch(tx, l, tm.StripeOf(k))
	l.storeBuffer[k] = &mapWrite[V]{val: v}
	l.bufferKey(k)
	tx.Thread().Clock.Tick(tm.opCost / 4)
}

// Remove buffers a removal of k and returns the removed value, taking a
// key lock for the read it implies.
func (tm *TransactionalMap[K, V]) Remove(tx *stm.Tx, k K) (V, bool) {
	l := tm.local(tx)
	var zero V
	if w, ok := l.storeBuffer[k]; ok {
		var old V
		had := !w.removed
		if had {
			old = w.val
		}
		w.val, w.removed = zero, true
		return old, had
	}
	old, had := tm.readCommittedWrite(tx, l, k, true)
	kc := had
	l.storeBuffer[k] = &mapWrite[V]{removed: true, knownCommitted: &kc}
	l.bufferKey(k)
	return old, had
}

// RemoveUnread buffers a removal of k without reading the old value.
func (tm *TransactionalMap[K, V]) RemoveUnread(tx *stm.Tx, k K) {
	l := tm.local(tx)
	var zero V
	if w, ok := l.storeBuffer[k]; ok {
		w.val, w.removed = zero, true
		return
	}
	tm.touch(tx, l, tm.StripeOf(k))
	l.storeBuffer[k] = &mapWrite[V]{removed: true}
	l.bufferKey(k)
	tx.Thread().Clock.Tick(tm.opCost / 4)
}

// PutAll buffers every mapping of src (a derivative operation built on
// Put, as in the paper's primitive/derivative categorization).
func (tm *TransactionalMap[K, V]) PutAll(tx *stm.Tx, src map[K]V) {
	for k, v := range src {
		tm.Put(tx, k, v)
	}
}

// readCommitted reads k's committed mapping under its key lock. For
// write operations (forWrite), the eager-write-check ablation also
// performs the key-conflict detection immediately.
func (tm *TransactionalMap[K, V]) readCommitted(tx *stm.Tx, l *mapLocal[K, V], k K) (V, bool) {
	return tm.readCommittedWrite(tx, l, k, false)
}

func (tm *TransactionalMap[K, V]) readCommittedWrite(tx *stm.Tx, l *mapLocal[K, V], k K, forWrite bool) (V, bool) {
	st := tm.touch(tx, l, tm.StripeOf(k))
	var v V
	var present bool
	_ = tx.Open(func(o *stm.Tx) error {
		st.guard.Lock()
		defer st.guard.Unlock()
		h := o.Handle()
		tm.lockKeyLocked(l, h, k)
		if forWrite && tm.eagerWriteCheck {
			n := st.key2lockers.ViolateOthers(k, h, tm.reasonKey)
			if n > 0 && metrics.On() {
				st.violations.Add(uint64(n))
			}
		}
		v, present = st.m.Get(k)
		return nil
	})
	tx.Thread().Clock.Tick(tm.opCost)
	return v, present
}

// resolveBlindStripeLocked pins down the committed presence of every
// blindly written key that hashes to stripe si (taking its key lock) so
// the buffer's net size effect is well defined. Caller holds stripe
// si's guard.
func (tm *TransactionalMap[K, V]) resolveBlindStripeLocked(st *mapStripe[K, V], si int, l *mapLocal[K, V], h semlock.Owner) {
	for k, w := range l.storeBuffer {
		if w.knownCommitted == nil && tm.StripeOf(k) == si {
			tm.lockKeyLocked(l, h, k)
			p := st.m.ContainsKey(k)
			w.knownCommitted = &p
		}
	}
}

// deltaLocked is the Table 3 delta: the buffer's net change to the
// map's size. The caller has resolved blind writes; only this
// transaction's local state is read.
func (tm *TransactionalMap[K, V]) deltaLocked(l *mapLocal[K, V]) int {
	d := 0
	for _, w := range l.storeBuffer {
		if w.removed {
			if *w.knownCommitted {
				d--
			}
		} else if !*w.knownCommitted {
			d++
		}
	}
	return d
}

// Size returns the number of mappings as seen by tx: the committed size
// plus the buffer's delta. It takes the size lock on every stripe, so
// any committing transaction that changes any stripe's size aborts this
// one (Table 2's "size conflicts with any insert or remove").
//
// The stripes are scanned one at a time — lock the stripe guard,
// register in its size-lock table, read its committed size, unlock —
// rather than under all guards at once. The sum is still serializable:
// a writer committing between two of the scan's steps sweeps the
// size-lock tables of every stripe it changes, and this transaction is
// already registered in the stripes it has passed, so any commit that
// could have torn the sum also violates this transaction, which then
// cannot commit (the same opacity-by-violation argument as the paper's
// open-nested reads).
func (tm *TransactionalMap[K, V]) Size(tx *stm.Tx) int {
	if tx.IsSnapshot() {
		return tm.snapshotSize(tx)
	}
	l := tm.local(tx)
	tm.touchAll(tx, l)
	n := 0
	_ = tx.Open(func(o *stm.Tx) error {
		h := o.Handle()
		for si, st := range tm.stripes {
			st.guard.Lock()
			st.sizeLockers.Lock(h)
			tm.resolveBlindStripeLocked(st, si, l, h)
			n += st.m.Size()
			st.guard.Unlock()
		}
		l.sizeLocked = true
		n += tm.deltaLocked(l)
		return nil
	})
	tx.Thread().Clock.Tick(tm.opCost)
	return n
}

// IsEmpty reports whether the map is empty. As the paper's §5.1
// discussion prescribes, it is a primitive operation with its own
// empty-transition lock: it conflicts only with commits that change
// emptiness, not with every size change, so two transactions running
// "if !m.IsEmpty() { m.Put(...) }" on a non-empty map commute. On a
// striped map the empty lock is registered per stripe and a committing
// writer sweeps a stripe's set when that stripe's local emptiness
// flips — conservative (a stripe can flip while the whole map stays
// non-empty) but never missing a global transition, since a global flip
// requires some stripe to flip.
func (tm *TransactionalMap[K, V]) IsEmpty(tx *stm.Tx) bool {
	if tm.isEmptyViaSize || tx.IsSnapshot() {
		return tm.Size(tx) == 0
	}
	l := tm.local(tx)
	tm.touchAll(tx, l)
	n := 0
	_ = tx.Open(func(o *stm.Tx) error {
		h := o.Handle()
		for si, st := range tm.stripes {
			st.guard.Lock()
			st.emptyLockers.Lock(h)
			tm.resolveBlindStripeLocked(st, si, l, h)
			n += st.m.Size()
			st.guard.Unlock()
		}
		l.emptyLocked = true
		n += tm.deltaLocked(l)
		return nil
	})
	tx.Thread().Clock.Tick(tm.opCost)
	return n == 0
}

// applyLocked is the commit handler's body: apply the buffer to the
// underlying stripes, violate conflicting semantic lock holders (Table
// 2's "Write Conflict" column), and release this transaction's locks.
// The commit protocol holds every touched stripe's guard; the buffer's
// keys all hash to touched stripes (touch precedes buffering).
func (tm *TransactionalMap[K, V]) applyLocked(l *mapLocal[K, V], h semlock.Owner) {
	var oldSizes [maxStripes]int
	if len(l.storeBuffer) > 0 {
		for si, st := range tm.stripes {
			if l.touched&(uint64(1)<<uint(si)) != 0 {
				oldSizes[si] = st.m.Size()
			}
		}
	}
	var oldFirst, oldLast *K
	// Endpoint (first/last) sweeps exist only on the single-stripe
	// sorted map: a range-striped one expresses endpoint observations
	// as the range+key locks laid down by walkUp/walkDown, which the
	// per-key range sweep below already violates.
	sweepEndpoints := tm.sorted != nil && len(tm.stripes) == 1
	if sweepEndpoints && len(l.storeBuffer) > 0 {
		oldFirst, oldLast = tm.endpointsLocked()
	}
	// mon gates the per-stripe violation counters: one atomic load for
	// the whole sweep, then atomic-only Adds (the window discipline).
	mon := metrics.On()
	for k, w := range l.storeBuffer {
		st := tm.stripes[tm.StripeOf(k)]
		// Key conflict based on argument: abort every other reader (or
		// locking writer) of this key.
		n := st.key2lockers.ViolateOthers(k, h, tm.reasonKey)
		var membershipChanged bool
		if w.removed {
			_, had := st.m.Remove(k)
			membershipChanged = had
		} else {
			_, had := st.m.Put(k, w.val)
			membershipChanged = !had
		}
		if tm.sorted != nil && membershipChanged {
			// Range conflict: the key entered or left an iterated range.
			// Only k's own stripe's table can hold entries covering k.
			n += tm.sorted.rangeLockers[tm.StripeOf(k)].ViolateCovering(k, h, tm.reasonRange)
		}
		if mon && n > 0 {
			st.violations.Add(uint64(n))
		}
	}
	if len(l.storeBuffer) > 0 {
		// Size and empty sweeps are per stripe: a size/empty reader is
		// registered in every stripe's set, so sweeping just the stripes
		// whose local size changed still violates every reader, while
		// disjoint-key writers never sweep (or resize) a shared set.
		for si, st := range tm.stripes {
			if l.touched&(uint64(1)<<uint(si)) == 0 {
				continue
			}
			n := 0
			newSize := st.m.Size()
			if newSize != oldSizes[si] {
				n += st.sizeLockers.ViolateOthers(h, tm.reasonSize)
			}
			if (oldSizes[si] == 0) != (newSize == 0) {
				n += st.emptyLockers.ViolateOthers(h, tm.reasonEmpty)
			}
			if mon && n > 0 {
				st.violations.Add(uint64(n))
			}
		}
	}
	if sweepEndpoints && len(l.storeBuffer) > 0 {
		n := 0
		newFirst, newLast := tm.endpointsLocked()
		if !tm.sameKey(oldFirst, newFirst) {
			n += tm.sorted.firstLockers.ViolateOthers(h, tm.reasonFirst)
		}
		if !tm.sameKey(oldLast, newLast) {
			n += tm.sorted.lastLockers.ViolateOthers(h, tm.reasonLast)
		}
		if mon && n > 0 {
			tm.stripes[0].violations.Add(uint64(n))
		}
	}
	tm.releaseLocked(l, h)
}

// endpointsLocked returns the committed first and last keys (nil when
// the map is empty). Caller holds the instance guard; only valid for
// sorted maps (single-stripe).
func (tm *TransactionalMap[K, V]) endpointsLocked() (first, last *K) {
	if f, ok := tm.sorted.sms[0].FirstKey(); ok {
		first = &f
	}
	if lst, ok := tm.sorted.sms[0].LastKey(); ok {
		last = &lst
	}
	return
}

func (tm *TransactionalMap[K, V]) sameKey(a, b *K) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return tm.sorted.cmp(*a, *b) == 0
}

// releaseLocked releases every semantic lock held by this transaction
// on this instance and clears its local state; it is both the tail of
// the commit handler and the whole of the abort handler. The protocol
// holds every touched stripe's guard; all of this transaction's locks
// live on touched stripes (size/empty locks imply every stripe was
// touched).
func (tm *TransactionalMap[K, V]) releaseLocked(l *mapLocal[K, V], h semlock.Owner) {
	for k := range l.keyLocks {
		tm.stripes[tm.StripeOf(k)].key2lockers.Unlock(k, h)
	}
	if l.sizeLocked {
		for _, st := range tm.stripes {
			st.sizeLockers.Unlock(h)
		}
	}
	if l.emptyLocked {
		for _, st := range tm.stripes {
			st.emptyLockers.Unlock(h)
		}
	}
	if tm.sorted != nil {
		for _, rl := range l.rangeLocks {
			tm.sorted.rangeLockers[rl.si].Remove(rl.e)
		}
		if l.firstLocked {
			tm.sorted.firstLockers.Unlock(h)
		}
		if l.lastLocked {
			tm.sorted.lastLockers.Unlock(h)
		}
	}
	l.keyLocks = make(map[K]struct{})
	l.storeBuffer = make(map[K]*mapWrite[V])
	if l.sortedKeys != nil {
		l.sortedKeys.Clear()
	}
	l.rangeLocks = nil
	l.sizeLocked, l.emptyLocked, l.firstLocked, l.lastLocked = false, false, false, false
}
