// Package core implements the paper's contribution: transactional
// collection classes. They wrap existing, non-thread-safe collection
// implementations (internal/collections) and make them usable from
// long-running transactions without the unnecessary memory-level
// conflicts that wreck scalability when such structures are accessed
// directly inside transactions.
//
// The construction follows the paper's §5 guidelines exactly:
//
//   - The underlying structure is read only inside open-nested regions
//     that also take the appropriate semantic locks (key, size, empty,
//     range, first/last — Tables 2, 5, 8).
//   - Write operations never touch the underlying structure; they buffer
//     into transaction-local state (storeBuffer, addBuffer — Tables 3,
//     6, 9).
//   - A single commit handler per (transaction, collection), registered
//     by the first operation, applies the buffer, violates transactions
//     holding conflicting semantic locks, and releases this
//     transaction's locks.
//   - A single abort handler releases locks and discards buffers
//     (compensation for the open-nested lock acquisitions).
//
// The open-nested regions execute as tx.Open children whose body is a
// short critical section on the instance's commit guard (stm.Guard) —
// the same guard its handlers are registered under, so lock-table
// reads stay atomic with respect to commits; this is the substitution
// for the paper's low-level open-nested hardware transactions
// described in DESIGN.md §4 — immediate global visibility,
// compensation via abort handlers, and lock ownership by the top-level
// transaction are all preserved.
//
// Caveat, matching the paper's single-handler design choice (§5.1
// "Single versus multiple handlers"): collection operations performed
// inside a closed-nested child are merged into the transaction's one
// buffer, so they are rolled back correctly when the whole transaction
// aborts, but a closed-nested child that aborts and retries *after*
// performing collection operations does not unwind those buffered
// operations. Perform collection operations in the transaction body (as
// the paper's benchmarks do), not in partially-rolled-back children.
package core

import (
	"tcc/internal/collections"
	"tcc/internal/semlock"
	"tcc/internal/stm"
)

// DefaultOpCost is the abstract cycle cost charged per collection
// operation (the open-nested critical section's work), calibrated to be
// comparable with the lock-based baseline's per-operation cost so that
// single-CPU runtimes of the configurations in the paper's figures are
// commensurable.
const DefaultOpCost = 40

// mapWrite is one buffered write in the storeBuffer (Table 3: "map of
// keys to new values, special value for removed keys").
type mapWrite[V any] struct {
	val     V
	removed bool
	// knownCommitted records whether the key was present in the
	// committed map when this transaction read it under its key lock;
	// nil for blind writes (PutUnread/RemoveUnread), which defer the
	// presence question — and hence their size contribution — until
	// Size/IsEmpty resolves it or commit applies it.
	knownCommitted *bool
}

// mapLocal is the transaction-local state of Table 3 (and, for sorted
// maps, Table 6): the locks this transaction holds on this instance and
// the write buffer.
type mapLocal[K comparable, V any] struct {
	keyLocks    map[K]struct{}
	sizeLocked  bool
	emptyLocked bool
	firstLocked bool
	lastLocked  bool
	rangeLocks  []*semlock.RangeEntry[K]
	storeBuffer map[K]*mapWrite[V]
	// sortedKeys is Table 6's sortedStoreBuffer: for sorted maps, the
	// buffered keys in comparator order, so iterators and navigation
	// queries enumerate local changes ordered instead of scanning the
	// buffer (values and removal markers stay in storeBuffer).
	sortedKeys *collections.TreeMap[K, struct{}]
}

// bufferKey records k in the buffer index (no-op for unsorted maps).
func (l *mapLocal[K, V]) bufferKey(k K) {
	if l.sortedKeys != nil {
		l.sortedKeys.Put(k, struct{}{})
	}
}

// sortedExt carries the extra shared state of TransactionalSortedMap
// (Table 6): the sorted view of the wrapped map and the range and
// endpoint lock tables.
type sortedExt[K comparable, V any] struct {
	sm           collections.SortedMap[K, V]
	rangeLockers *semlock.RangeTable[K]
	firstLockers *semlock.OwnerSet
	lastLockers  *semlock.OwnerSet
}

// TransactionalMap wraps any collections.Map and provides concurrent,
// atomically composable access from transactions, using semantic
// concurrency control instead of memory-level dependencies (paper
// §3.1). It offers the same operations as the underlying Map interface
// and can serve as a drop-in replacement.
type TransactionalMap[K comparable, V any] struct {
	// guard is this instance's shard of the commit guard, fused with
	// the mutex that protects the wrapped map and the lock tables:
	// every open-nested critical section is short, locks exactly one
	// guard, and never blocks on other instances, playing the role of
	// the paper's low-level open-nested transactions. Commit and abort
	// handlers are registered under it (OnTopCommitGuarded /
	// OnTopAbortGuarded), so the STM holds it across the handler
	// window and transactions on disjoint instances commit in
	// parallel.
	guard *stm.Guard
	// m holds the committed state (Table 3: "the underlying Map
	// instance").
	m collections.Map[K, V]
	// key2lockers and sizeLockers are the shared transaction state of
	// Table 3; emptyLockers implements the §5.1 isEmpty refinement.
	key2lockers  *semlock.KeyTable[K]
	sizeLockers  *semlock.OwnerSet
	emptyLockers *semlock.OwnerSet
	// isEmptyViaSize makes IsEmpty take the size lock instead of the
	// empty-transition lock, reproducing the §5.1 ablation.
	isEmptyViaSize bool
	// eagerWriteCheck switches write operations to pessimistic conflict
	// detection (§5.1 "Alternatives to optimistic concurrency
	// control"): Put/Remove violate conflicting key-lock holders when
	// the operation is first performed instead of waiting until commit.
	// Conflicts surface earlier (less lost work for the writer) at the
	// price of aborting readers that might otherwise have committed
	// before the writer.
	eagerWriteCheck bool
	// opCost is the abstract cycle cost per operation.
	opCost uint64
	// name labels this instance in violation reasons, so lost-work
	// profiles attribute conflicts to specific structures (the paper's
	// TAPE-style analysis names District.orderTable etc.).
	name string
	// Precomputed violation reasons.
	reasonKey, reasonSize, reasonEmpty   string
	reasonRange, reasonFirst, reasonLast string
	// sorted is non-nil when this instance is a TransactionalSortedMap.
	sorted *sortedExt[K, V]
}

// NewTransactionalMap wraps m. The wrapper assumes exclusive ownership:
// all subsequent access must go through the wrapper.
func NewTransactionalMap[K comparable, V any](m collections.Map[K, V]) *TransactionalMap[K, V] {
	tm := &TransactionalMap[K, V]{
		guard:        stm.NewGuard(),
		m:            m,
		key2lockers:  semlock.NewKeyTable[K](),
		sizeLockers:  semlock.NewOwnerSet(),
		emptyLockers: semlock.NewOwnerSet(),
		opCost:       DefaultOpCost,
	}
	tm.SetName("map")
	return tm
}

// SetName labels this instance in violation reasons so conflict
// profiles (harness.FormatViolationProfile) attribute lost work to
// specific structures.
func (tm *TransactionalMap[K, V]) SetName(name string) {
	tm.name = name
	tm.guard.SetLabel(name)
	tm.reasonKey = name + ": key conflict"
	tm.reasonSize = name + ": size conflict"
	tm.reasonEmpty = name + ": emptiness conflict"
	tm.reasonRange = name + ": range conflict"
	tm.reasonFirst = name + ": first-key conflict"
	tm.reasonLast = name + ": last-key conflict"
}

// Name returns the label set by SetName.
func (tm *TransactionalMap[K, V]) Name() string { return tm.name }

// Guard returns the instance's commit guard, for code that composes
// its own guarded handlers with this collection's commit window.
func (tm *TransactionalMap[K, V]) Guard() *stm.Guard { return tm.guard }

// SetOpCost overrides the abstract cycle cost charged per operation.
func (tm *TransactionalMap[K, V]) SetOpCost(c uint64) { tm.opCost = c }

// SetKeyedConflicts toggles per-key detail in key-conflict violation
// reasons (semlock.KeyTable.SetKeyedReasons): conflict profiles then
// attribute semantic aborts to individual keys, at the price of one
// formatting allocation per violated transaction. Call during setup.
func (tm *TransactionalMap[K, V]) SetKeyedConflicts(on bool) {
	tm.key2lockers.SetKeyedReasons(on)
}

// SetIsEmptyViaSize toggles the §5.1 ablation: when true, IsEmpty takes
// the size lock (conflicting with any size change) instead of the
// dedicated empty-transition lock.
func (tm *TransactionalMap[K, V]) SetIsEmptyViaSize(v bool) { tm.isEmptyViaSize = v }

// SetEagerWriteCheck toggles pessimistic write-conflict detection (the
// §5.1 alternative): writes abort conflicting readers at operation time
// rather than at commit.
func (tm *TransactionalMap[K, V]) SetEagerWriteCheck(v bool) { tm.eagerWriteCheck = v }

// local returns this transaction's local state for this instance,
// creating it — and registering the transaction's single commit and
// abort handler pair — on first use (paper §5: "registered by the first
// open-nested transaction to commit").
func (tm *TransactionalMap[K, V]) local(tx *stm.Tx) *mapLocal[K, V] {
	if l, ok := tx.Local(tm).(*mapLocal[K, V]); ok {
		return l
	}
	l := &mapLocal[K, V]{
		keyLocks:    make(map[K]struct{}),
		storeBuffer: make(map[K]*mapWrite[V]),
	}
	if tm.sorted != nil {
		l.sortedKeys = collections.NewTreeMapFunc[K, struct{}](tm.sorted.sm.Compare)
	}
	tx.SetLocal(tm, l)
	h := tx.Handle()
	th := tx.Thread()
	// The handler bodies take no lock themselves: the commit/rollback
	// protocol already holds tm.guard for the whole handler window.
	tx.OnTopCommitGuarded(tm.guard, func() {
		n := len(l.storeBuffer)
		tm.applyLocked(l, h)
		th.DeferTick(tm.opCost * uint64(1+n))
	})
	tx.OnTopAbortGuarded(tm.guard, func() {
		tm.releaseLocked(l, h)
		th.DeferTick(tm.opCost)
	})
	return l
}

// lockKeyLocked takes (idempotently) the key lock for k on behalf of h.
// Caller holds tm.guard.
func (tm *TransactionalMap[K, V]) lockKeyLocked(l *mapLocal[K, V], h semlock.Owner, k K) {
	if _, ok := l.keyLocks[k]; ok {
		return
	}
	tm.key2lockers.Lock(k, h)
	l.keyLocks[k] = struct{}{}
}

// Get returns the value mapped to k as seen by tx: the transaction's
// own buffered write if any, otherwise the committed value read under a
// key lock inside an open-nested region (Table 2: get takes a "key lock
// on argument").
func (tm *TransactionalMap[K, V]) Get(tx *stm.Tx, k K) (V, bool) {
	l := tm.local(tx)
	if w, ok := l.storeBuffer[k]; ok {
		if w.removed {
			var zero V
			return zero, false
		}
		return w.val, true
	}
	var v V
	var present bool
	_ = tx.Open(func(o *stm.Tx) error {
		tm.guard.Lock()
		defer tm.guard.Unlock()
		tm.lockKeyLocked(l, o.Handle(), k)
		v, present = tm.m.Get(k)
		return nil
	})
	tx.Thread().Clock.Tick(tm.opCost)
	return v, present
}

// ContainsKey reports whether k is mapped, taking the same key lock as
// Get.
func (tm *TransactionalMap[K, V]) ContainsKey(tx *stm.Tx, k K) bool {
	_, ok := tm.Get(tx, k)
	return ok
}

// Put buffers a mapping of k to v and returns the previous value.
// Because it returns the old value it logically includes a read, so it
// takes the key lock (Table 2); the actual update is deferred to the
// commit handler. Use PutUnread when the old value is not needed — it
// creates no read dependency (§5.1 "Extensions to java.util.Map").
func (tm *TransactionalMap[K, V]) Put(tx *stm.Tx, k K, v V) (V, bool) {
	l := tm.local(tx)
	if w, ok := l.storeBuffer[k]; ok {
		var old V
		had := !w.removed
		if had {
			old = w.val
		}
		w.val, w.removed = v, false
		return old, had
	}
	old, had := tm.readCommittedWrite(tx, l, k, true)
	kc := had
	l.storeBuffer[k] = &mapWrite[V]{val: v, knownCommitted: &kc}
	l.bufferKey(k)
	return old, had
}

// PutUnread buffers a mapping of k to v without reading or locking the
// old value: two transactions blindly writing the same key commute and
// may commit in either order (the paper's "LastModified" example).
func (tm *TransactionalMap[K, V]) PutUnread(tx *stm.Tx, k K, v V) {
	l := tm.local(tx)
	if w, ok := l.storeBuffer[k]; ok {
		w.val, w.removed = v, false
		return
	}
	l.storeBuffer[k] = &mapWrite[V]{val: v}
	l.bufferKey(k)
	tx.Thread().Clock.Tick(tm.opCost / 4)
}

// Remove buffers a removal of k and returns the removed value, taking a
// key lock for the read it implies.
func (tm *TransactionalMap[K, V]) Remove(tx *stm.Tx, k K) (V, bool) {
	l := tm.local(tx)
	var zero V
	if w, ok := l.storeBuffer[k]; ok {
		var old V
		had := !w.removed
		if had {
			old = w.val
		}
		w.val, w.removed = zero, true
		return old, had
	}
	old, had := tm.readCommittedWrite(tx, l, k, true)
	kc := had
	l.storeBuffer[k] = &mapWrite[V]{removed: true, knownCommitted: &kc}
	l.bufferKey(k)
	return old, had
}

// RemoveUnread buffers a removal of k without reading the old value.
func (tm *TransactionalMap[K, V]) RemoveUnread(tx *stm.Tx, k K) {
	l := tm.local(tx)
	var zero V
	if w, ok := l.storeBuffer[k]; ok {
		w.val, w.removed = zero, true
		return
	}
	l.storeBuffer[k] = &mapWrite[V]{removed: true}
	l.bufferKey(k)
	tx.Thread().Clock.Tick(tm.opCost / 4)
}

// PutAll buffers every mapping of src (a derivative operation built on
// Put, as in the paper's primitive/derivative categorization).
func (tm *TransactionalMap[K, V]) PutAll(tx *stm.Tx, src map[K]V) {
	for k, v := range src {
		tm.Put(tx, k, v)
	}
}

// readCommitted reads k's committed mapping under its key lock. For
// write operations (forWrite), the eager-write-check ablation also
// performs the key-conflict detection immediately.
func (tm *TransactionalMap[K, V]) readCommitted(tx *stm.Tx, l *mapLocal[K, V], k K) (V, bool) {
	return tm.readCommittedWrite(tx, l, k, false)
}

func (tm *TransactionalMap[K, V]) readCommittedWrite(tx *stm.Tx, l *mapLocal[K, V], k K, forWrite bool) (V, bool) {
	var v V
	var present bool
	_ = tx.Open(func(o *stm.Tx) error {
		tm.guard.Lock()
		defer tm.guard.Unlock()
		h := o.Handle()
		tm.lockKeyLocked(l, h, k)
		if forWrite && tm.eagerWriteCheck {
			tm.key2lockers.ViolateOthers(k, h, tm.reasonKey)
		}
		v, present = tm.m.Get(k)
		return nil
	})
	tx.Thread().Clock.Tick(tm.opCost)
	return v, present
}

// resolveBlindLocked pins down the committed presence of every blindly
// written key (taking its key lock) so the buffer's net size effect is
// well defined. Caller holds tm.guard.
func (tm *TransactionalMap[K, V]) resolveBlindLocked(l *mapLocal[K, V], h semlock.Owner) {
	for k, w := range l.storeBuffer {
		if w.knownCommitted == nil {
			tm.lockKeyLocked(l, h, k)
			p := tm.m.ContainsKey(k)
			w.knownCommitted = &p
		}
	}
}

// deltaLocked is the Table 3 delta: the buffer's net change to the
// map's size. Caller holds tm.guard and has resolved blind writes.
func (tm *TransactionalMap[K, V]) deltaLocked(l *mapLocal[K, V]) int {
	d := 0
	for _, w := range l.storeBuffer {
		if w.removed {
			if *w.knownCommitted {
				d--
			}
		} else if !*w.knownCommitted {
			d++
		}
	}
	return d
}

// Size returns the number of mappings as seen by tx: the committed size
// plus the buffer's delta. It takes the size lock, so any committing
// transaction that changes the size aborts this one (Table 2).
func (tm *TransactionalMap[K, V]) Size(tx *stm.Tx) int {
	l := tm.local(tx)
	n := 0
	_ = tx.Open(func(o *stm.Tx) error {
		tm.guard.Lock()
		defer tm.guard.Unlock()
		h := o.Handle()
		tm.sizeLockers.Lock(h)
		l.sizeLocked = true
		tm.resolveBlindLocked(l, h)
		n = tm.m.Size() + tm.deltaLocked(l)
		return nil
	})
	tx.Thread().Clock.Tick(tm.opCost)
	return n
}

// IsEmpty reports whether the map is empty. As the paper's §5.1
// discussion prescribes, it is a primitive operation with its own
// empty-transition lock: it conflicts only with commits that change
// emptiness, not with every size change, so two transactions running
// "if !m.IsEmpty() { m.Put(...) }" on a non-empty map commute.
func (tm *TransactionalMap[K, V]) IsEmpty(tx *stm.Tx) bool {
	if tm.isEmptyViaSize {
		return tm.Size(tx) == 0
	}
	l := tm.local(tx)
	n := 0
	_ = tx.Open(func(o *stm.Tx) error {
		tm.guard.Lock()
		defer tm.guard.Unlock()
		h := o.Handle()
		tm.emptyLockers.Lock(h)
		l.emptyLocked = true
		tm.resolveBlindLocked(l, h)
		n = tm.m.Size() + tm.deltaLocked(l)
		return nil
	})
	tx.Thread().Clock.Tick(tm.opCost)
	return n == 0
}

// applyLocked is the commit handler's body: apply the buffer to the
// underlying map, violate conflicting semantic lock holders (Table 2's
// "Write Conflict" column), and release this transaction's locks.
// Caller holds tm.guard.
func (tm *TransactionalMap[K, V]) applyLocked(l *mapLocal[K, V], h semlock.Owner) {
	oldSize := tm.m.Size()
	var oldFirst, oldLast *K
	if tm.sorted != nil && len(l.storeBuffer) > 0 {
		oldFirst, oldLast = tm.endpointsLocked()
	}
	for k, w := range l.storeBuffer {
		// Key conflict based on argument: abort every other reader (or
		// locking writer) of this key.
		tm.key2lockers.ViolateOthers(k, h, tm.reasonKey)
		var membershipChanged bool
		if w.removed {
			_, had := tm.m.Remove(k)
			membershipChanged = had
		} else {
			_, had := tm.m.Put(k, w.val)
			membershipChanged = !had
		}
		if tm.sorted != nil && membershipChanged {
			// Range conflict: the key entered or left an iterated range.
			tm.sorted.rangeLockers.ViolateCovering(k, h, tm.reasonRange)
		}
	}
	newSize := tm.m.Size()
	if newSize != oldSize {
		tm.sizeLockers.ViolateOthers(h, tm.reasonSize)
	}
	if (oldSize == 0) != (newSize == 0) {
		tm.emptyLockers.ViolateOthers(h, tm.reasonEmpty)
	}
	if tm.sorted != nil && len(l.storeBuffer) > 0 {
		newFirst, newLast := tm.endpointsLocked()
		if !tm.sameKey(oldFirst, newFirst) {
			tm.sorted.firstLockers.ViolateOthers(h, tm.reasonFirst)
		}
		if !tm.sameKey(oldLast, newLast) {
			tm.sorted.lastLockers.ViolateOthers(h, tm.reasonLast)
		}
	}
	tm.releaseLocked(l, h)
}

// endpointsLocked returns the committed first and last keys (nil when
// the map is empty). Caller holds tm.guard; only valid for sorted maps.
func (tm *TransactionalMap[K, V]) endpointsLocked() (first, last *K) {
	if f, ok := tm.sorted.sm.FirstKey(); ok {
		first = &f
	}
	if lst, ok := tm.sorted.sm.LastKey(); ok {
		last = &lst
	}
	return
}

func (tm *TransactionalMap[K, V]) sameKey(a, b *K) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return tm.sorted.sm.Compare(*a, *b) == 0
}

// releaseLocked releases every semantic lock held by this transaction
// on this instance and clears its local state; it is both the tail of
// the commit handler and the whole of the abort handler. Caller holds
// tm.guard.
func (tm *TransactionalMap[K, V]) releaseLocked(l *mapLocal[K, V], h semlock.Owner) {
	for k := range l.keyLocks {
		tm.key2lockers.Unlock(k, h)
	}
	if l.sizeLocked {
		tm.sizeLockers.Unlock(h)
	}
	if l.emptyLocked {
		tm.emptyLockers.Unlock(h)
	}
	if tm.sorted != nil {
		for _, e := range l.rangeLocks {
			tm.sorted.rangeLockers.Remove(e)
		}
		if l.firstLocked {
			tm.sorted.firstLockers.Unlock(h)
		}
		if l.lastLocked {
			tm.sorted.lastLockers.Unlock(h)
		}
	}
	l.keyLocks = make(map[K]struct{})
	l.storeBuffer = make(map[K]*mapWrite[V])
	if l.sortedKeys != nil {
		l.sortedKeys.Clear()
	}
	l.rangeLocks = nil
	l.sizeLocked, l.emptyLocked, l.firstLocked, l.lastLocked = false, false, false, false
}
