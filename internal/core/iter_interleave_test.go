package core

// Interleaving tests for iterator snapshot staleness: the unordered
// iterator snapshots the committed key set at creation but re-reads
// each entry fresh under its key lock when returning it, so committed
// changes between creation and Next() are observed consistently (the
// iterating transaction serializes after the writer).

import (
	"testing"

	"tcc/internal/stm"
)

// interleaveMidIteration parks T1 between iterator creation and
// iteration, runs mutate to completion, then lets T1 iterate and
// returns what T1 observed on its final attempt plus whether it
// restarted.
func interleaveMidIteration(t *testing.T, tm *TransactionalMap[int, int],
	mutate func(tx *stm.Tx)) (got map[int]int, restarted bool) {
	t.Helper()
	parked := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	attempts := 0
	go func() {
		th := newTh(1)
		done <- th.Atomic(func(tx *stm.Tx) error {
			attempts = tx.Attempt() + 1
			it := tm.Iterator(tx)
			if tx.Attempt() == 0 {
				parked <- struct{}{}
				<-release
			}
			got = map[int]int{}
			for {
				k, v, ok := it.Next()
				if !ok {
					break
				}
				got[k] = v
			}
			return nil
		})
	}()
	<-parked
	th2 := newTh(2)
	atomically(t, th2, mutate)
	close(release)
	must(t, <-done)
	return got, attempts > 1
}

func TestIteratorSkipsKeyRemovedAfterSnapshot(t *testing.T) {
	tm := newIntMap()
	th := newTh(0)
	atomically(t, th, func(tx *stm.Tx) {
		tm.Put(tx, 1, 10)
		tm.Put(tx, 2, 20)
	})
	got, restarted := interleaveMidIteration(t, tm, func(tx *stm.Tx) {
		tm.Remove(tx, 2)
	})
	if restarted {
		// The full enumeration takes the size lock only at exhaustion,
		// which is after the remove committed; but the remove's size
		// change may violate the iterator if it already held the size
		// lock from a previous partial state. Either outcome must be
		// consistent: restart means the retry saw the post-remove map.
		if len(got) != 1 || got[1] != 10 {
			t.Fatalf("restarted iteration saw %v", got)
		}
		return
	}
	// No restart: the iterator must have skipped the removed key (it
	// serialized after the remover).
	if len(got) != 1 || got[1] != 10 {
		t.Fatalf("iteration saw %v, want {1:10}", got)
	}
}

func TestIteratorSeesValueCommittedAfterSnapshot(t *testing.T) {
	tm := newIntMap()
	th := newTh(0)
	atomically(t, th, func(tx *stm.Tx) {
		tm.Put(tx, 1, 10)
	})
	got, _ := interleaveMidIteration(t, tm, func(tx *stm.Tx) {
		tm.Put(tx, 1, 11) // replace: no size change, no violation
	})
	if len(got) != 1 || got[1] != 11 {
		t.Fatalf("iteration saw %v, want the freshly committed value {1:11}", got)
	}
}

func TestExhaustedIteratorViolatedByLaterInsert(t *testing.T) {
	// The reverse order: T1 finishes the whole enumeration (size lock
	// taken) and parks; T2 inserts; T1 must restart.
	tm := newIntMap()
	th := newTh(0)
	atomically(t, th, func(tx *stm.Tx) { tm.Put(tx, 1, 10) })

	parked := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	counts := []int{}
	go func() {
		th1 := newTh(1)
		done <- th1.Atomic(func(tx *stm.Tx) error {
			n := 0
			tm.ForEach(tx, func(int, int) bool {
				n++
				return true
			})
			counts = append(counts, n)
			if tx.Attempt() == 0 {
				parked <- struct{}{}
				<-release
			}
			return nil
		})
	}()
	<-parked
	th2 := newTh(2)
	atomically(t, th2, func(tx *stm.Tx) { tm.Put(tx, 2, 20) })
	close(release)
	must(t, <-done)
	if len(counts) != 2 {
		t.Fatalf("enumerator ran %d times, want 2 (insert must violate the size lock)", len(counts))
	}
	if counts[0] != 1 || counts[1] != 2 {
		t.Fatalf("counts = %v, want [1 2]", counts)
	}
}
