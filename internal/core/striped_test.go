package core

import (
	"sort"
	"sync"
	"testing"
	"time"

	"tcc/internal/collections"
	"tcc/internal/stm"
)

func newStripedIntMap(stripes int) *TransactionalMap[int, int] {
	return NewStripedTransactionalMap[int, int](func() collections.Map[int, int] {
		return collections.NewHashMap[int, int]()
	}, stripes)
}

// disjointStripeKeys returns two keys that hash to different stripes of
// tm (they exist for any map with more than one stripe).
func disjointStripeKeys(t *testing.T, tm *TransactionalMap[int, int]) (int, int) {
	t.Helper()
	for k2 := 1; k2 < 1<<16; k2++ {
		if tm.StripeOf(k2) != tm.StripeOf(0) {
			return 0, k2
		}
	}
	t.Fatal("no disjoint-stripe key pair found")
	return 0, 0
}

// TestStripedMapBasics drives the full Map surface through a 16-stripe
// map, with commits that span many stripes at once (multi-stripe
// footprints, per-stripe size bookkeeping, striped iteration).
func TestStripedMapBasics(t *testing.T) {
	tm := newStripedIntMap(16)
	th := newTh(1)
	const n = 200
	for base := 0; base < n; base += 50 {
		b := base
		atomically(t, th, func(tx *stm.Tx) {
			for k := b; k < b+50; k++ {
				tm.Put(tx, k, k*10)
			}
		})
	}
	atomically(t, th, func(tx *stm.Tx) {
		if got := tm.Size(tx); got != n {
			t.Fatalf("Size = %d, want %d", got, n)
		}
		if tm.IsEmpty(tx) {
			t.Fatal("IsEmpty on a populated map")
		}
		for k := 0; k < n; k++ {
			if v, ok := tm.Get(tx, k); !ok || v != k*10 {
				t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
			}
		}
		keys := tm.Keys(tx)
		sort.Ints(keys)
		if len(keys) != n || keys[0] != 0 || keys[n-1] != n-1 {
			t.Fatalf("Keys: len=%d first=%d last=%d", len(keys), keys[0], keys[len(keys)-1])
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		for k := 0; k < n; k += 2 {
			if old, had := tm.Remove(tx, k); !had || old != k*10 {
				t.Fatalf("Remove(%d) = (%d,%v)", k, old, had)
			}
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		if got := tm.Size(tx); got != n/2 {
			t.Fatalf("Size after removals = %d, want %d", got, n/2)
		}
		if tm.ContainsKey(tx, 0) || !tm.ContainsKey(tx, 1) {
			t.Fatal("wrong membership after removing even keys")
		}
		tm.Clear(tx)
	})
	atomically(t, th, func(tx *stm.Tx) {
		if !tm.IsEmpty(tx) {
			t.Fatal("IsEmpty false after Clear")
		}
	})
}

// TestStripedMapNormalization: the stripe count is clamped to [1, 64]
// and rounded up to a power of two; 0 means the default.
func TestStripedMapNormalization(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultStripes}, {-3, DefaultStripes},
		{1, 1}, {2, 2}, {5, 8}, {16, 16}, {100, maxStripes},
	}
	for _, c := range cases {
		if got := newStripedIntMap(c.in).Stripes(); got != c.want {
			t.Errorf("Stripes(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	if got := newIntMap().Stripes(); got != 1 {
		t.Errorf("NewTransactionalMap stripes = %d, want 1", got)
	}
}

// TestStripedMapGuardLabels: SetName labels each stripe guard
// name.stripe[i] so conflict profiles attribute guard contention to
// individual stripes; a single-stripe map keeps the plain name.
func TestStripedMapGuardLabels(t *testing.T) {
	tm := newStripedIntMap(4)
	tm.SetName("hot")
	for i := 0; i < 4; i++ {
		want := "hot.stripe[" + []string{"0", "1", "2", "3"}[i] + "]"
		if got := tm.stripes[i].guard.Label(); got != want {
			t.Errorf("stripe %d label = %q, want %q", i, got, want)
		}
	}
	single := newIntMap()
	single.SetName("solo")
	if got := single.Guard().Label(); got != "solo" {
		t.Errorf("single-stripe label = %q, want %q", got, "solo")
	}
}

// TestStripedMapConflicts re-checks the Table 1 cells that striping
// could plausibly have broken: same-key conflicts must survive, and
// disjoint-key operations on different stripes must still commute.
func TestStripedMapConflicts(t *testing.T) {
	{ // same key, necessarily same stripe: conflict preserved.
		tm := newStripedIntMap(16)
		expectConflict(t, "striped-containsKey/put-same-key", true,
			nil,
			func(tx *stm.Tx) { tm.ContainsKey(tx, 1) },
			func(tx *stm.Tx) { tm.Put(tx, 1, 10) })
	}
	{ // disjoint keys on disjoint stripes: no conflict.
		tm := newStripedIntMap(16)
		k1, k2 := disjointStripeKeys(t, tm)
		expectConflict(t, "striped-get/put-disjoint-stripes", false,
			func(tx *stm.Tx) { tm.Put(tx, k1, 1) },
			func(tx *stm.Tx) { tm.Get(tx, k1) },
			func(tx *stm.Tx) { tm.Put(tx, k2, 2) })
	}
	{ // a size reader is still violated by an insert on any stripe.
		tm := newStripedIntMap(16)
		k1, k2 := disjointStripeKeys(t, tm)
		expectConflict(t, "striped-size/put-any-stripe", true,
			func(tx *stm.Tx) { tm.Put(tx, k1, 1) },
			func(tx *stm.Tx) { tm.Size(tx) },
			func(tx *stm.Tx) { tm.Put(tx, k2, 2) })
	}
	{ // overwriting an existing key changes no stripe's size: commutes
		// with a size reader even on the same stripe.
		tm := newStripedIntMap(16)
		expectConflict(t, "striped-size/overwrite", false,
			func(tx *stm.Tx) { tm.Put(tx, 1, 1) },
			func(tx *stm.Tx) { tm.Size(tx) },
			func(tx *stm.Tx) { tm.Put(tx, 1, 2) })
	}
	{ // empty→nonempty transition still violates an isEmpty reader.
		tm := newStripedIntMap(16)
		expectConflict(t, "striped-isEmpty/first-put", true,
			nil,
			func(tx *stm.Tx) { tm.IsEmpty(tx) },
			func(tx *stm.Tx) { tm.Put(tx, 1, 1) })
	}
}

// TestStripedDisjointKeyHandlerWindowsOverlap is the tentpole's
// rendezvous proof: two transactions committing disjoint keys of the
// SAME striped map hold their commit-handler windows at the same time.
// Each handler closes its own channel and then waits for the other's;
// the rendezvous can only complete if the two windows overlap. Under a
// single shared guard (the pre-striping layout, or any S=1 map) the
// first committer would block inside its window waiting for a handler
// the guard prevents from starting, and the test would time out.
func TestStripedDisjointKeyHandlerWindowsOverlap(t *testing.T) {
	tm := newStripedIntMap(16)
	k1, k2 := disjointStripeKeys(t, tm)
	aIn, bIn := make(chan struct{}), make(chan struct{})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	var onceA, onceB sync.Once
	go func() {
		defer wg.Done()
		th := newTh(1)
		_ = th.Atomic(func(tx *stm.Tx) error {
			tm.Put(tx, k1, 1)
			tx.OnCommitGuarded(tm.StripeGuard(k1), func() {
				onceA.Do(func() { close(aIn) })
				<-bIn
			})
			return nil
		})
	}()
	go func() {
		defer wg.Done()
		th := newTh(2)
		_ = th.Atomic(func(tx *stm.Tx) error {
			tm.Put(tx, k2, 2)
			tx.OnCommitGuarded(tm.StripeGuard(k2), func() {
				onceB.Do(func() { close(bIn) })
				<-aIn
			})
			return nil
		})
	}()
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("disjoint-key handler windows on one striped map did not overlap")
	}
	th := newTh(3)
	atomically(t, th, func(tx *stm.Tx) {
		if v, ok := tm.Get(tx, k1); !ok || v != 1 {
			t.Errorf("Get(k1) = (%d,%v) after overlapping commits", v, ok)
		}
		if v, ok := tm.Get(tx, k2); !ok || v != 2 {
			t.Errorf("Get(k2) = (%d,%v) after overlapping commits", v, ok)
		}
	})
}
