package core

import (
	"tcc/internal/collections"
	"tcc/internal/semlock"
	"tcc/internal/stm"
)

// TransactionalSortedMap wraps any collections.SortedMap (typically a
// red-black TreeMap) and extends TransactionalMap with the
// order-dependent operations of paper §3.2 and Tables 4-6: endpoint
// queries protected by first/last locks, ordered iteration protected by
// expanding key-range locks, and subMap/headMap/tailMap views.
type TransactionalSortedMap[K comparable, V any] struct {
	TransactionalMap[K, V]
}

// NewTransactionalSortedMap wraps sm. The wrapper assumes exclusive
// ownership of sm; the comparator is captured at construction and is
// thereafter read-only (Table 6). Because it adopts one existing
// structure it is single-stripe; use
// NewRangeStripedTransactionalSortedMap (which builds its own interval
// shards) when disjoint-range operations on one hot sorted map need to
// scale (see the package documentation's striping note).
func NewTransactionalSortedMap[K comparable, V any](sm collections.SortedMap[K, V]) *TransactionalSortedMap[K, V] {
	t := &TransactionalSortedMap[K, V]{
		TransactionalMap: TransactionalMap[K, V]{
			stripes: []*mapStripe[K, V]{newMapStripe[K, V](sm)},
			opCost:  DefaultOpCost,
		},
	}
	t.sorted = &sortedExt[K, V]{
		cmp:          sm.Compare,
		sms:          []collections.SortedMap[K, V]{sm},
		rangeLockers: []*semlock.RangeTable[K]{semlock.NewRangeTable[K](sm.Compare)},
		firstLockers: semlock.NewOwnerSet(),
		lastLockers:  semlock.NewOwnerSet(),
	}
	t.SetName("sortedmap")
	return t
}

// Compare applies the map's comparator.
func (t *TransactionalSortedMap[K, V]) Compare(a, b K) int { return t.sorted.cmp(a, b) }

// bufferCeilingLocked returns the smallest buffered non-removed key
// >= *k (> *k when strict); k == nil starts from the buffer's minimum.
// It walks the sortedStoreBuffer index (Table 6), skipping removal
// markers. Caller holds the instance guard.
func (t *TransactionalSortedMap[K, V]) bufferCeilingLocked(l *mapLocal[K, V], k *K, strict bool) (K, bool) {
	var cand K
	var ok bool
	switch {
	case k == nil:
		cand, ok = l.sortedKeys.FirstKey()
	case strict:
		cand, ok = l.sortedKeys.HigherKey(*k)
	default:
		cand, ok = l.sortedKeys.CeilingKey(*k)
	}
	for ok {
		if w := l.storeBuffer[cand]; w != nil && !w.removed {
			return cand, true
		}
		cand, ok = l.sortedKeys.HigherKey(cand)
	}
	var zero K
	return zero, false
}

// bufferFloorLocked is the descending mirror of bufferCeilingLocked.
func (t *TransactionalSortedMap[K, V]) bufferFloorLocked(l *mapLocal[K, V], k *K, strict bool) (K, bool) {
	var cand K
	var ok bool
	switch {
	case k == nil:
		cand, ok = l.sortedKeys.LastKey()
	case strict:
		cand, ok = l.sortedKeys.LowerKey(*k)
	default:
		cand, ok = l.sortedKeys.FloorKey(*k)
	}
	for ok {
		if w := l.storeBuffer[cand]; w != nil && !w.removed {
			return cand, true
		}
		cand, ok = l.sortedKeys.LowerKey(cand)
	}
	var zero K
	return zero, false
}

// mergedFirstLocked returns the smallest live key as seen by this
// transaction: the smallest committed key that is not buffered-removed,
// merged with the smallest buffered addition. Caller holds the instance guard.
func (t *TransactionalSortedMap[K, V]) mergedFirstLocked(l *mapLocal[K, V]) (K, bool) {
	sm := t.sorted.sms[0]
	var committed *K
	sm.AscendRange(nil, nil, func(k K, _ V) bool {
		if w, ok := l.storeBuffer[k]; ok && w.removed {
			return true
		}
		kk := k
		committed = &kk
		return false
	})
	best := committed
	if bk, ok := t.bufferCeilingLocked(l, nil, false); ok {
		if best == nil || sm.Compare(bk, *best) < 0 {
			best = &bk
		}
	}
	if best == nil {
		var zero K
		return zero, false
	}
	return *best, true
}

// mergedLastLocked is the mirror of mergedFirstLocked. Caller holds
// the instance guard.
func (t *TransactionalSortedMap[K, V]) mergedLastLocked(l *mapLocal[K, V]) (K, bool) {
	sm := t.sorted.sms[0]
	var committed *K
	k, ok := sm.LastKey()
	for ok {
		if w, buffered := l.storeBuffer[k]; !buffered || !w.removed {
			kk := k
			committed = &kk
			break
		}
		k, ok = sm.LowerKey(k)
	}
	best := committed
	if bk, ok := t.bufferFloorLocked(l, nil, false); ok {
		if best == nil || sm.Compare(bk, *best) > 0 {
			best = &bk
		}
	}
	if best == nil {
		var zero K
		return zero, false
	}
	return *best, true
}

// FirstKey returns the minimum key as seen by tx, taking the first lock
// (Table 5): a committing put or remove that changes the map's minimum
// aborts this transaction. On a range-striped map the observation is a
// stripe-walk instead: range+key locks laid from the bottom of the key
// space to the first live key (walkUp), which any endpoint-changing
// commit necessarily violates.
func (t *TransactionalSortedMap[K, V]) FirstKey(tx *stm.Tx) (K, bool) {
	if t.mask != 0 {
		if tx.IsSnapshot() {
			return t.snapshotFirstKey(tx)
		}
		return t.walkUp(tx, nil, false)
	}
	l := t.local(tx)
	var k K
	var ok bool
	_ = tx.Open(func(o *stm.Tx) error {
		t.guard0().Lock()
		defer t.guard0().Unlock()
		t.sorted.firstLockers.Lock(o.Handle())
		l.firstLocked = true
		k, ok = t.mergedFirstLocked(l)
		return nil
	})
	tx.Thread().Clock.Tick(t.opCost)
	return k, ok
}

// LastKey returns the maximum key as seen by tx, taking the last lock
// (or, range-striped, walking stripes downward — see FirstKey).
func (t *TransactionalSortedMap[K, V]) LastKey(tx *stm.Tx) (K, bool) {
	if t.mask != 0 {
		if tx.IsSnapshot() {
			return t.snapshotLastKey(tx)
		}
		return t.walkDown(tx, nil, false)
	}
	l := t.local(tx)
	var k K
	var ok bool
	_ = tx.Open(func(o *stm.Tx) error {
		t.guard0().Lock()
		defer t.guard0().Unlock()
		t.sorted.lastLockers.Lock(o.Handle())
		l.lastLocked = true
		k, ok = t.mergedLastLocked(l)
		return nil
	})
	tx.Thread().Clock.Tick(t.opCost)
	return k, ok
}

// SortedIterator enumerates entries in key order within [lo, hi) as
// seen by one transaction, merging committed entries with the
// transaction's buffered writes. Per Table 5, each Next takes the key
// lock of the returned key and widens the iterator's range lock to
// cover everything observed so far; an iterator that starts at the
// map's beginning also takes the first lock, and a HasNext answering
// false takes the last lock (unbounded iterators — the answer reveals
// what the maximum key is) or pins the range lock to the view's upper
// bound (bounded views).
type SortedIterator[K comparable, V any] struct {
	t       *TransactionalSortedMap[K, V]
	tx      *stm.Tx
	l       *mapLocal[K, V]
	lo, hi  *K // view bounds: lo inclusive, hi exclusive; nil = unbounded
	last    *K // last returned key
	lock    *semlock.RangeEntry[K]
	pending *mapEntry[K, V]
	done    bool
	// Range-striped state (advanceStriped): si is the stripe the scan
	// is currently positioned in; slocks[i] is the widening range lock
	// this iterator owns in stripe i's table (created lazily as the
	// scan enters stripe i).
	si     int
	slocks []*semlock.RangeEntry[K]
}

// Iterator creates an ascending iterator over the whole map.
func (t *TransactionalSortedMap[K, V]) Iterator(tx *stm.Tx) *SortedIterator[K, V] {
	return t.rangeIterator(tx, nil, nil)
}

func (t *TransactionalSortedMap[K, V]) rangeIterator(tx *stm.Tx, lo, hi *K) *SortedIterator[K, V] {
	//stmlint:ignore tx-escape iterator is per-transaction local state (Table 5) and documented not to outlive tx
	it := &SortedIterator[K, V]{t: t, tx: tx, l: t.local(tx), lo: lo, hi: hi}
	if t.mask != 0 {
		if lo != nil {
			it.si = t.sorted.stripeFor(*lo)
		}
		it.slocks = make([]*semlock.RangeEntry[K], len(t.stripes))
	}
	return it
}

// advance finds the next live merged key after it.last (or from it.lo),
// locking and recording it.
func (it *SortedIterator[K, V]) advance() (K, V, bool) {
	t, l := it.t, it.l
	if t.mask != 0 {
		return it.advanceStriped()
	}
	sm := t.sorted.sms[0]
	var outK K
	var outV V
	found := false
	_ = it.tx.Open(func(o *stm.Tx) error {
		t.guard0().Lock()
		defer t.guard0().Unlock()
		h := o.Handle()
		if it.lock == nil {
			it.lock = &semlock.RangeEntry[K]{Owner: h}
			if it.lo != nil {
				lo := *it.lo
				it.lock.Lo = &lo
				// Until a key is returned the locked range is empty:
				// [lo, lo) — represent as Hi=lo exclusive.
				hi := lo
				it.lock.Hi = &hi
				it.lock.HiExcl = true
			} else {
				// Iteration from the beginning reads the first key
				// (Table 5: next takes "range lock over iterated
				// values, first lock"). The range lock starts
				// unbounded and is pinned to the first returned key
				// below, within this same critical section.
				t.sorted.firstLockers.Lock(h)
				l.firstLocked = true
			}
			t.addRangeLock(l, 0, it.lock)
		}
		// Committed candidate: smallest committed key in (last, hi) —
		// or [lo, hi) before the first return — skipping
		// buffered-removed keys.
		var ck *K
		var k K
		var ok bool
		switch {
		case it.last != nil:
			k, ok = sm.HigherKey(*it.last)
		case it.lo != nil:
			k, ok = sm.CeilingKey(*it.lo)
		default:
			k, ok = sm.FirstKey()
		}
		for ok {
			if w, buffered := l.storeBuffer[k]; buffered && w.removed {
				k, ok = sm.HigherKey(k)
				continue
			}
			kk := k
			ck = &kk
			break
		}
		// Buffered candidate: smallest buffered-added key in range,
		// from the sortedStoreBuffer index.
		var bk *K
		var bc K
		var bok bool
		switch {
		case it.last != nil:
			bc, bok = t.bufferCeilingLocked(l, it.last, true)
		case it.lo != nil:
			bc, bok = t.bufferCeilingLocked(l, it.lo, false)
		default:
			bc, bok = t.bufferCeilingLocked(l, nil, false)
		}
		if bok {
			bk = &bc
		}
		var next *K
		switch {
		case ck == nil:
			next = bk
		case bk == nil:
			next = ck
		case sm.Compare(*bk, *ck) <= 0:
			next = bk
		default:
			next = ck
		}
		if next != nil && it.hi != nil && sm.Compare(*next, *it.hi) >= 0 {
			next = nil
		}
		if next == nil {
			return nil
		}
		k = *next
		// Lock the key, widen the range lock through it, read fresh.
		t.lockKeyLocked(l, h, k)
		kk := k
		it.lock.Hi = &kk
		it.lock.HiExcl = false
		it.last = &kk
		if w, buffered := l.storeBuffer[k]; buffered {
			outK, outV, found = k, w.val, true
		} else {
			v, _ := sm.Get(k)
			outK, outV, found = k, v, true
		}
		return nil
	})
	it.tx.Thread().Clock.Tick(t.opCost)
	return outK, outV, found
}

// HasNext reports whether another entry exists in the view.
func (it *SortedIterator[K, V]) HasNext() bool {
	if it.done {
		return false
	}
	if it.pending != nil {
		return true
	}
	k, v, ok := it.advance()
	if !ok {
		it.done = true
		t, l := it.t, it.l
		if t.mask != 0 {
			// Range-striped: advanceStriped already left range locks
			// covering every scanned interval through the view bound
			// (or to the top of the key space), so the emptiness of the
			// tail is protected without endpoint locks.
			return false
		}
		_ = it.tx.Open(func(o *stm.Tx) error {
			t.guard0().Lock()
			defer t.guard0().Unlock()
			if it.hi == nil {
				// "hasNext is false" on an unbounded iterator reveals
				// the last key (Table 5).
				t.sorted.lastLockers.Lock(o.Handle())
				l.lastLocked = true
			} else if it.lock != nil {
				// Bounded view: the emptiness of (last, hi) was
				// observed; pin the range lock to the view bound.
				hi := *it.hi
				it.lock.Hi = &hi
				it.lock.HiExcl = true
			} else {
				// Nothing was ever returned and no range lock exists:
				// lock the whole empty view.
				e := &semlock.RangeEntry[K]{Owner: o.Handle()}
				if it.lo != nil {
					lo := *it.lo
					e.Lo = &lo
				}
				hi := *it.hi
				e.Hi = &hi
				e.HiExcl = true
				t.addRangeLock(l, 0, e)
				it.lock = e
			}
			return nil
		})
		return false
	}
	it.pending = &mapEntry[K, V]{Key: k, Val: v}
	return true
}

// Next returns the next entry in key order; ok is false when exhausted.
func (it *SortedIterator[K, V]) Next() (k K, v V, ok bool) {
	if !it.HasNext() {
		return k, v, false
	}
	e := it.pending
	it.pending = nil
	return e.Key, e.Val, true
}

// ForEach enumerates the whole map in key order until fn returns false.
func (t *TransactionalSortedMap[K, V]) ForEach(tx *stm.Tx, fn func(k K, v V) bool) {
	it := t.Iterator(tx)
	for {
		k, v, ok := it.Next()
		if !ok {
			return
		}
		if !fn(k, v) {
			return
		}
	}
}

// Keys returns all keys in ascending order as seen by tx.
func (t *TransactionalSortedMap[K, V]) Keys(tx *stm.Tx) []K {
	var out []K
	t.ForEach(tx, func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// SortedView is a subMap/headMap/tailMap view: the [lo, hi) slice of a
// TransactionalSortedMap, sharing its state and locks (paper §3.2:
// "mutable SortedMap views returned by subMap, headMap, and tailMap").
type SortedView[K comparable, V any] struct {
	t      *TransactionalSortedMap[K, V]
	lo, hi *K
}

// SubMap returns the view of keys in [lo, hi).
func (t *TransactionalSortedMap[K, V]) SubMap(lo, hi K) *SortedView[K, V] {
	if t.sorted.cmp(lo, hi) > 0 {
		panic("core: SubMap bounds out of order")
	}
	return &SortedView[K, V]{t: t, lo: &lo, hi: &hi}
}

// HeadMap returns the view of keys below hi.
func (t *TransactionalSortedMap[K, V]) HeadMap(hi K) *SortedView[K, V] {
	return &SortedView[K, V]{t: t, hi: &hi}
}

// TailMap returns the view of keys at or above lo.
func (t *TransactionalSortedMap[K, V]) TailMap(lo K) *SortedView[K, V] {
	return &SortedView[K, V]{t: t, lo: &lo}
}

// inRange panics when k is outside the view, mirroring java.util's
// IllegalArgumentException.
func (v *SortedView[K, V]) inRange(k K) {
	cmp := v.t.sorted.cmp
	if v.lo != nil && cmp(k, *v.lo) < 0 || v.hi != nil && cmp(k, *v.hi) >= 0 {
		panic("core: key outside sorted view range")
	}
}

// Get returns the value mapped to k, which must lie inside the view.
func (v *SortedView[K, V]) Get(tx *stm.Tx, k K) (V, bool) {
	v.inRange(k)
	return v.t.Get(tx, k)
}

// ContainsKey reports whether k (inside the view) is mapped.
func (v *SortedView[K, V]) ContainsKey(tx *stm.Tx, k K) bool {
	v.inRange(k)
	return v.t.ContainsKey(tx, k)
}

// Put buffers a mapping; k must lie inside the view.
func (v *SortedView[K, V]) Put(tx *stm.Tx, k K, val V) (V, bool) {
	v.inRange(k)
	return v.t.Put(tx, k, val)
}

// Remove buffers a removal; k must lie inside the view.
func (v *SortedView[K, V]) Remove(tx *stm.Tx, k K) (V, bool) {
	v.inRange(k)
	return v.t.Remove(tx, k)
}

// Iterator returns an ascending iterator over the view.
func (v *SortedView[K, V]) Iterator(tx *stm.Tx) *SortedIterator[K, V] {
	return v.t.rangeIterator(tx, v.lo, v.hi)
}

// ForEach enumerates the view in key order until fn returns false.
func (v *SortedView[K, V]) ForEach(tx *stm.Tx, fn func(k K, val V) bool) {
	it := v.Iterator(tx)
	for {
		k, val, ok := it.Next()
		if !ok {
			return
		}
		if !fn(k, val) {
			return
		}
	}
}

// Keys returns the view's keys in ascending order.
func (v *SortedView[K, V]) Keys(tx *stm.Tx) []K {
	var out []K
	v.ForEach(tx, func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}
