package core

// Range-striped TransactionalSortedMap (DESIGN.md §4.5). Hash-striping
// keys would force every iterator and navigation query to visit every
// stripe, so the sorted map partitions the *key space* instead:
// contiguous intervals, split by an immutable boundary vector, each
// interval fusing its own guard, sorted shard, key-lock table and
// range-lock table. Point operations (Get/Put/Remove) land on one
// interval stripe exactly like the hash-striped map; order-dependent
// operations walk stripes one at a time, in interval order, laying a
// chain of per-stripe range locks that together cover exactly what the
// single-stripe implementation's one range lock would have covered:
//
//   - CeilingKey(k) = r: a [k, r] entry when both lie in one stripe;
//     otherwise [k, edge) in k's stripe, whole-interval entries in the
//     empty stripes crossed, and [edge, r] in r's stripe.
//   - FirstKey/LastKey: a walk from the bottom (top) of the key space —
//     endpoint locks (Table 5's first/last) become "the ranges below
//     (above) the answer are empty", which any endpoint-changing commit
//     necessarily violates via the ordinary per-stripe range sweep.
//   - Iterators keep one widening entry per stripe entered, so a scan
//     confined to one interval holds exactly one stripe's locks.
//
// Guards are only ever taken one at a time on the retry path (each
// stripe probe is its own open-nested critical section), and in
// ascending id order by lockStripeSpan on the snapshot path, so every
// hold is compatible with the commit protocol's sorted footprint
// acquisition. Each stripe joins the transaction's guard footprint
// (touch) before its probe, exactly like the hash-striped map.

import (
	"sort"

	"tcc/internal/collections"
	"tcc/internal/semlock"
	"tcc/internal/stm"
)

// NewRangeStripedTransactionalSortedMap creates a sorted map
// partitioned into contiguous key intervals: stripe 0 owns keys below
// boundaries[0], stripe i owns [boundaries[i-1], boundaries[i]), the
// last stripe owns the tail. newShard is called once per stripe, so
// the shards start empty and the wrapper owns them outright. The
// boundary vector is sorted and deduplicated, then truncated so the
// stripe count is a power of two in [1, 64] (the map's clamp); use
// SampleRangeBoundaries to derive boundaries from expected keys.
func NewRangeStripedTransactionalSortedMap[K comparable, V any](newShard func() collections.SortedMap[K, V], boundaries []K) *TransactionalSortedMap[K, V] {
	first := newShard()
	cmp := first.Compare
	bs := append([]K(nil), boundaries...)
	sort.Slice(bs, func(i, j int) bool { return cmp(bs[i], bs[j]) < 0 })
	bs = dedupeSorted(bs, cmp)
	// Largest power-of-two stripe count expressible with these
	// boundaries (n stripes need n-1 of them), clamped like the map.
	n := 1
	for n*2 <= len(bs)+1 && n*2 <= maxStripes {
		n *= 2
	}
	bs = bs[:n-1]

	t := &TransactionalSortedMap[K, V]{
		TransactionalMap: TransactionalMap[K, V]{
			stripes: make([]*mapStripe[K, V], n),
			opCost:  DefaultOpCost,
		},
	}
	if n > 1 {
		t.mask = uint64(n - 1)
	}
	ext := &sortedExt[K, V]{
		cmp:          cmp,
		sms:          make([]collections.SortedMap[K, V], n),
		boundaries:   bs,
		rangeLockers: make([]*semlock.RangeTable[K], n),
		firstLockers: semlock.NewOwnerSet(),
		lastLockers:  semlock.NewOwnerSet(),
	}
	for i := range t.stripes {
		sm := first
		if i > 0 {
			sm = newShard()
		}
		t.stripes[i] = newMapStripe[K, V](sm)
		ext.sms[i] = sm
		ext.rangeLockers[i] = semlock.NewRangeTable[K](cmp)
	}
	t.sorted = ext
	t.SetName("sortedmap")
	return t
}

// dedupeSorted removes adjacent duplicates from a cmp-sorted slice.
func dedupeSorted[K comparable](s []K, cmp func(a, b K) int) []K {
	out := s[:0]
	for i, k := range s {
		if i == 0 || cmp(k, out[len(out)-1]) != 0 {
			out = append(out, k)
		}
	}
	return out
}

// SampleRangeBoundaries derives an interval-boundary vector for
// NewRangeStripedTransactionalSortedMap from a sample of expected keys:
// the (i/n)-quantiles of the sorted, deduplicated sample, for the
// normalized (power-of-two, clamped) stripe count n. A sample smaller
// than the stripe count yields fewer boundaries and hence fewer
// stripes — the constructor clamps again.
func SampleRangeBoundaries[K comparable](sample []K, cmp func(a, b K) int, stripes int) []K {
	n := normalizeStripes(stripes)
	ks := append([]K(nil), sample...)
	sort.Slice(ks, func(i, j int) bool { return cmp(ks[i], ks[j]) < 0 })
	ks = dedupeSorted(ks, cmp)
	var out []K
	for i := 1; i < n; i++ {
		idx := i * len(ks) / n
		if idx > 0 && idx < len(ks) {
			out = append(out, ks[idx])
		}
	}
	return dedupeSorted(out, cmp)
}

// bufferCeilingInStripe returns the smallest buffered non-removed key
// of stripe si that is >= *k (> when strict); k == nil starts from the
// stripe's lower edge. Caller holds stripe si's guard and guarantees
// *k lies in stripe si.
func (t *TransactionalSortedMap[K, V]) bufferCeilingInStripe(l *mapLocal[K, V], si int, k *K, strict bool) (K, bool) {
	var cand K
	var ok bool
	switch {
	case k != nil && strict:
		cand, ok = l.sortedKeys.HigherKey(*k)
	case k != nil:
		cand, ok = l.sortedKeys.CeilingKey(*k)
	case si == 0:
		cand, ok = l.sortedKeys.FirstKey()
	default:
		cand, ok = l.sortedKeys.CeilingKey(t.sorted.boundaries[si-1])
	}
	for ok && t.sorted.stripeFor(cand) == si {
		if w := l.storeBuffer[cand]; w != nil && !w.removed {
			return cand, true
		}
		cand, ok = l.sortedKeys.HigherKey(cand)
	}
	var zero K
	return zero, false
}

// bufferFloorInStripe is the descending mirror of bufferCeilingInStripe.
func (t *TransactionalSortedMap[K, V]) bufferFloorInStripe(l *mapLocal[K, V], si int, k *K, strict bool) (K, bool) {
	var cand K
	var ok bool
	switch {
	case k != nil && strict:
		cand, ok = l.sortedKeys.LowerKey(*k)
	case k != nil:
		cand, ok = l.sortedKeys.FloorKey(*k)
	case si == len(t.stripes)-1:
		cand, ok = l.sortedKeys.LastKey()
	default:
		// Keys below boundaries[si] belong to stripes <= si.
		cand, ok = l.sortedKeys.LowerKey(t.sorted.boundaries[si])
	}
	for ok && t.sorted.stripeFor(cand) == si {
		if w := l.storeBuffer[cand]; w != nil && !w.removed {
			return cand, true
		}
		cand, ok = l.sortedKeys.LowerKey(cand)
	}
	var zero K
	return zero, false
}

// mergedCeilingInStripe returns the smallest live key of stripe si
// that is >= *k (> when strict; k == nil means from the stripe's lower
// edge), merging the committed shard (skipping buffered removals) with
// buffered additions. Caller holds stripe si's guard.
func (t *TransactionalSortedMap[K, V]) mergedCeilingInStripe(l *mapLocal[K, V], si int, k *K, strict bool) (K, bool) {
	sm := t.sorted.sms[si]
	var committed *K
	var c K
	var ok bool
	switch {
	case k == nil:
		c, ok = sm.FirstKey()
	case strict:
		c, ok = sm.HigherKey(*k)
	default:
		c, ok = sm.CeilingKey(*k)
	}
	for ok {
		if w, buffered := l.storeBuffer[c]; buffered && w.removed {
			c, ok = sm.HigherKey(c)
			continue
		}
		cc := c
		committed = &cc
		break
	}
	best := committed
	if bk, bok := t.bufferCeilingInStripe(l, si, k, strict); bok {
		if best == nil || t.sorted.cmp(bk, *best) < 0 {
			best = &bk
		}
	}
	if best == nil {
		var zero K
		return zero, false
	}
	return *best, true
}

// mergedFloorInStripe is the descending mirror of mergedCeilingInStripe.
func (t *TransactionalSortedMap[K, V]) mergedFloorInStripe(l *mapLocal[K, V], si int, k *K, strict bool) (K, bool) {
	sm := t.sorted.sms[si]
	var committed *K
	var c K
	var ok bool
	switch {
	case k == nil:
		c, ok = sm.LastKey()
	case strict:
		c, ok = sm.LowerKey(*k)
	default:
		c, ok = sm.FloorKey(*k)
	}
	for ok {
		if w, buffered := l.storeBuffer[c]; buffered && w.removed {
			c, ok = sm.LowerKey(c)
			continue
		}
		cc := c
		committed = &cc
		break
	}
	best := committed
	if bk, bok := t.bufferFloorInStripe(l, si, k, strict); bok {
		if best == nil || t.sorted.cmp(bk, *best) > 0 {
			best = &bk
		}
	}
	if best == nil {
		var zero K
		return zero, false
	}
	return *best, true
}

// walkUp finds the smallest live key >= *from (> when strict), or the
// map's first key when from == nil, walking interval stripes upward.
// Each stripe probe is its own open-nested critical section under that
// stripe's guard alone (touched first, so the commit footprint is in
// place), and leaves a range-lock entry in that stripe's table: the
// probed gap plus the result in the stripe that answers, the whole
// scanned interval in stripes observed empty. Together the chain locks
// exactly the gap+result the single-stripe navigateUp would have.
func (t *TransactionalSortedMap[K, V]) walkUp(tx *stm.Tx, from *K, strict bool) (K, bool) {
	l := t.local(tx)
	start := 0
	if from != nil {
		start = t.sorted.stripeFor(*from)
	}
	var res K
	var found bool
	for si := start; si < len(t.stripes) && !found; si++ {
		si := si
		st := t.touch(tx, l, si)
		_ = tx.Open(func(o *stm.Tx) error {
			st.guard.Lock()
			defer st.guard.Unlock()
			h := o.Handle()
			e := &semlock.RangeEntry[K]{Owner: h}
			var k *K
			if si == start && from != nil {
				lo := *from
				e.Lo = &lo
				e.LoExcl = strict
				k = &lo
			}
			if r, ok := t.mergedCeilingInStripe(l, si, k, strict); ok {
				rr := r
				e.Hi = &rr
				t.lockKeyLocked(l, h, rr)
				res, found = rr, true
			}
			// Not found: e.Hi stays nil — the stripe's whole remaining
			// interval was observed empty.
			t.addRangeLock(l, si, e)
			return nil
		})
		tx.Thread().Clock.Tick(t.opCost)
	}
	return res, found
}

// walkDown is the descending mirror of walkUp (FloorKey/LowerKey/
// LastKey): stripes are probed downward from *from's interval (or the
// top), one guard at a time.
func (t *TransactionalSortedMap[K, V]) walkDown(tx *stm.Tx, from *K, strict bool) (K, bool) {
	l := t.local(tx)
	start := len(t.stripes) - 1
	if from != nil {
		start = t.sorted.stripeFor(*from)
	}
	var res K
	var found bool
	for si := start; si >= 0 && !found; si-- {
		si := si
		st := t.touch(tx, l, si)
		_ = tx.Open(func(o *stm.Tx) error {
			st.guard.Lock()
			defer st.guard.Unlock()
			h := o.Handle()
			e := &semlock.RangeEntry[K]{Owner: h}
			var k *K
			if si == start && from != nil {
				hi := *from
				e.Hi = &hi
				e.HiExcl = strict
				k = &hi
			}
			if r, ok := t.mergedFloorInStripe(l, si, k, strict); ok {
				rr := r
				e.Lo = &rr
				t.lockKeyLocked(l, h, rr)
				res, found = rr, true
			}
			t.addRangeLock(l, si, e)
			return nil
		})
		tx.Thread().Clock.Tick(t.opCost)
	}
	return res, found
}

// advanceStriped is the range-striped body of SortedIterator.advance:
// the scan keeps one widening range-lock entry per stripe entered
// (it.slocks), positioned by it.si, and probes the current stripe
// under its guard alone. Exhausting a stripe pins its entry to the
// view bound (when the bound lies in that stripe) or extends it to the
// stripe's upper edge and moves on.
func (it *SortedIterator[K, V]) advanceStriped() (K, V, bool) {
	t, l := it.t, it.l
	n := len(t.stripes)
	var outK K
	var outV V
	found := false
	for !found && it.si < n {
		si := it.si
		st := t.touch(it.tx, l, si)
		_ = it.tx.Open(func(o *stm.Tx) error {
			st.guard.Lock()
			defer st.guard.Unlock()
			h := o.Handle()
			e := it.slocks[si]
			if e == nil {
				e = &semlock.RangeEntry[K]{Owner: h}
				if it.lo != nil && t.sorted.stripeFor(*it.lo) == si {
					lo := *it.lo
					e.Lo = &lo
				}
				it.slocks[si] = e
				t.addRangeLock(l, si, e)
			}
			var from *K
			strict := false
			if it.last != nil && t.sorted.stripeFor(*it.last) == si {
				from, strict = it.last, true
			} else if e.Lo != nil {
				from = e.Lo
			}
			res, ok := t.mergedCeilingInStripe(l, si, from, strict)
			if ok && it.hi != nil && t.sorted.cmp(res, *it.hi) >= 0 {
				ok = false
			}
			if ok {
				t.lockKeyLocked(l, h, res)
				kk := res
				e.Hi = &kk
				e.HiExcl = false
				it.last = &kk
				if w, buffered := l.storeBuffer[res]; buffered {
					outK, outV, found = res, w.val, true
				} else {
					v, _ := t.sorted.sms[si].Get(res)
					outK, outV, found = res, v, true
				}
				return nil
			}
			// Stripe exhausted within the view.
			if it.hi != nil && t.sorted.stripeFor(*it.hi) == si {
				// The view bound lies in this stripe: pin the entry to
				// it ([.., hi) observed empty) and stop the scan.
				hi := *it.hi
				e.Hi = &hi
				e.HiExcl = true
				it.si = n
			} else {
				// Extend to the stripe's upper edge and move on.
				e.Hi = nil
				e.HiExcl = false
				it.si = si + 1
			}
			return nil
		})
		it.tx.Thread().Clock.Tick(t.opCost)
	}
	return outK, outV, found
}

// snapshotFirstKey answers FirstKey for a snapshot transaction on a
// range-striped map: the committed minimum, read with every stripe
// guard held so a multi-stripe commit is seen entirely or not at all.
func (t *TransactionalSortedMap[K, V]) snapshotFirstKey(tx *stm.Tx) (K, bool) {
	var res K
	var ok bool
	t.lockGuards()
	for _, sm := range t.sorted.sms {
		if k, has := sm.FirstKey(); has {
			res, ok = k, true
			break
		}
	}
	t.unlockGuards()
	tx.Thread().Clock.Tick(t.opCost)
	return res, ok
}

// snapshotLastKey is the descending mirror of snapshotFirstKey.
func (t *TransactionalSortedMap[K, V]) snapshotLastKey(tx *stm.Tx) (K, bool) {
	var res K
	var ok bool
	t.lockGuards()
	for si := len(t.sorted.sms) - 1; si >= 0; si-- {
		if k, has := t.sorted.sms[si].LastKey(); has {
			res, ok = k, true
			break
		}
	}
	t.unlockGuards()
	tx.Thread().Clock.Tick(t.opCost)
	return res, ok
}

// snapshotCeiling answers CeilingKey/HigherKey for a snapshot
// transaction: the committed answer, read with the guards of every
// stripe the query could span held at once (ascending, so the hold is
// compatible with the commit protocol's sorted footprint acquisition).
func (t *TransactionalSortedMap[K, V]) snapshotCeiling(tx *stm.Tx, k K, strict bool) (K, bool) {
	lo := t.sorted.stripeFor(k)
	hi := len(t.stripes) - 1
	var res K
	var found bool
	t.lockStripeSpan(lo, hi)
	for si := lo; si <= hi && !found; si++ {
		sm := t.sorted.sms[si]
		var c K
		var ok bool
		switch {
		case si > lo:
			c, ok = sm.FirstKey()
		case strict:
			c, ok = sm.HigherKey(k)
		default:
			c, ok = sm.CeilingKey(k)
		}
		if ok {
			res, found = c, true
		}
	}
	t.unlockStripeSpan(lo, hi)
	tx.Thread().Clock.Tick(t.opCost)
	return res, found
}

// snapshotFloor is the descending mirror of snapshotCeiling.
func (t *TransactionalSortedMap[K, V]) snapshotFloor(tx *stm.Tx, k K, strict bool) (K, bool) {
	hi := t.sorted.stripeFor(k)
	var res K
	var found bool
	t.lockStripeSpan(0, hi)
	for si := hi; si >= 0 && !found; si-- {
		sm := t.sorted.sms[si]
		var c K
		var ok bool
		switch {
		case si < hi:
			c, ok = sm.LastKey()
		case strict:
			c, ok = sm.LowerKey(k)
		default:
			c, ok = sm.FloorKey(k)
		}
		if ok {
			res, found = c, true
		}
	}
	t.unlockStripeSpan(0, hi)
	tx.Thread().Clock.Tick(t.opCost)
	return res, found
}
