package core

import (
	"tcc/internal/collections"
	"tcc/internal/obs/metrics"
	"tcc/internal/semlock"
	"tcc/internal/stm"
)

// TransactionalQueue wraps a Queue behind the util.concurrent Channel
// interface (Put/Offer/Take/Poll/Peek), trading strict FIFO isolation
// for concurrency as in paper §3.3: transactions that confine
// themselves to Put and Take never semantically conflict (Table 7).
//
// Reduced isolation, by design: Take and Poll remove elements from the
// underlying queue immediately (other transactions will not see — and
// cannot steal — them), with an abort handler returning them on
// rollback; Put buffers additions that a commit handler publishes. The
// only semantic lock is the empty lock (Table 8): a transaction that
// observed emptiness via a null Peek/Poll is aborted by a commit that
// makes the queue non-empty.
type TransactionalQueue[T any] struct {
	// guard is the instance's commit-guard shard, fused with the mutex
	// for the wrapped queue and its empty-lock table (see
	// TransactionalMap.guard).
	guard *stm.Guard
	// q holds the committed state (Table 9: "the underlying Queue
	// instance").
	q collections.Queue[T]
	// emptyLockers is the shared transaction state of Table 9.
	emptyLockers *semlock.OwnerSet
	opCost       uint64
	// name labels this instance in violation reasons.
	name           string
	reasonRefill   string
	reasonNotEmpty string
	// violations counts semantic violations landed by this queue's
	// empty-lock sweeps (metrics plane; atomic-only, guard-window safe).
	violations *metrics.Counter
}

// queueLocal is the local transaction state of Table 9.
type queueLocal[T any] struct {
	addBuffer    []T
	removeBuffer []T
	emptyLocked  bool
}

// NewTransactionalQueue wraps q; the wrapper assumes exclusive
// ownership.
func NewTransactionalQueue[T any](q collections.Queue[T]) *TransactionalQueue[T] {
	tq := &TransactionalQueue[T]{
		guard:        stm.NewGuard(),
		q:            q,
		emptyLockers: semlock.NewOwnerSet(),
		opCost:       DefaultOpCost,
	}
	tq.SetName("queue")
	return tq
}

// SetName labels this instance in violation reasons for lost-work
// profiles.
func (tq *TransactionalQueue[T]) SetName(name string) {
	tq.name = name
	tq.guard.SetLabel(name)
	tq.reasonNotEmpty = name + ": no longer empty"
	tq.reasonRefill = name + ": refilled on abort"
	tq.violations = metrics.Default.Counter(metrics.CollectionViolations,
		"Semantic violations landed by this collection stripe's conflict sweeps",
		metrics.L("collection", name), metrics.L("stripe", "0"))
}

// Name returns the label set by SetName.
func (tq *TransactionalQueue[T]) Name() string { return tq.name }

// Guard returns the instance's commit guard.
func (tq *TransactionalQueue[T]) Guard() *stm.Guard { return tq.guard }

// SetOpCost overrides the abstract cycle cost charged per operation.
func (tq *TransactionalQueue[T]) SetOpCost(c uint64) { tq.opCost = c }

func (tq *TransactionalQueue[T]) local(tx *stm.Tx) *queueLocal[T] {
	if l, ok := tx.Local(tq).(*queueLocal[T]); ok {
		return l
	}
	l := &queueLocal[T]{}
	tx.SetLocal(tq, l)
	h := tx.Handle()
	th := tx.Thread()
	// Handler bodies run with tq.guard already held by the protocol.
	tx.OnTopCommitGuarded(tq.guard, func() {
		wasEmpty := tq.q.Size() == 0
		for _, v := range l.addBuffer {
			tq.q.Enqueue(v)
		}
		if wasEmpty && len(l.addBuffer) > 0 {
			// Table 8: put's write conflict fires "if now non-empty".
			n := tq.emptyLockers.ViolateOthers(h, tq.reasonNotEmpty)
			if n > 0 && metrics.On() {
				tq.violations.Add(uint64(n))
			}
		}
		if l.emptyLocked {
			tq.emptyLockers.Unlock(h)
		}
		n := len(l.addBuffer)
		l.addBuffer, l.removeBuffer, l.emptyLocked = nil, nil, false
		th.DeferTick(tq.opCost * uint64(1+n))
	})
	tx.OnTopAbortGuarded(tq.guard, func() {
		wasEmpty := tq.q.Size() == 0
		// Compensation: return everything this transaction dequeued.
		for _, v := range l.removeBuffer {
			tq.q.Enqueue(v)
		}
		if wasEmpty && len(l.removeBuffer) > 0 {
			n := tq.emptyLockers.ViolateOthers(h, tq.reasonRefill)
			if n > 0 && metrics.On() {
				tq.violations.Add(uint64(n))
			}
		}
		if l.emptyLocked {
			tq.emptyLockers.Unlock(h)
		}
		n := len(l.removeBuffer)
		l.addBuffer, l.removeBuffer, l.emptyLocked = nil, nil, false
		th.DeferTick(tq.opCost * uint64(1+n))
	})
	return l
}

// Put enqueues v when the transaction commits. Put never semantically
// conflicts with other Put or Take operations (Table 7).
func (tq *TransactionalQueue[T]) Put(tx *stm.Tx, v T) {
	l := tq.local(tx)
	l.addBuffer = append(l.addBuffer, v)
	tx.Thread().Clock.Tick(tq.opCost / 4)
}

// Offer is Put for an unbounded queue; it always reports acceptance
// (the Channel interface's non-blocking insert).
func (tq *TransactionalQueue[T]) Offer(tx *stm.Tx, v T) bool {
	tq.Put(tx, v)
	return true
}

// tryDequeue removes one element visible to tx: preferentially from the
// committed queue (recording it for compensation on abort), else from
// the transaction's own uncommitted additions.
func (tq *TransactionalQueue[T]) tryDequeue(tx *stm.Tx, l *queueLocal[T], lockIfEmpty bool) (T, bool) {
	var out T
	var ok bool
	_ = tx.Open(func(o *stm.Tx) error {
		tq.guard.Lock()
		defer tq.guard.Unlock()
		if v, got := tq.q.Dequeue(); got {
			l.removeBuffer = append(l.removeBuffer, v)
			out, ok = v, true
			return nil
		}
		if len(l.addBuffer) > 0 {
			out, ok = l.addBuffer[0], true
			l.addBuffer = l.addBuffer[1:]
			return nil
		}
		if lockIfEmpty {
			tq.emptyLockers.Lock(o.Handle())
			l.emptyLocked = true
		}
		return nil
	})
	tx.Thread().Clock.Tick(tq.opCost)
	return out, ok
}

// Poll removes and returns an element, or reports false on an empty
// queue — in which case it takes the empty lock, so a commit that makes
// the queue non-empty aborts this transaction (Table 8: "poll: read
// lock if empty").
func (tq *TransactionalQueue[T]) Poll(tx *stm.Tx) (T, bool) {
	return tq.tryDequeue(tx, tq.local(tx), true)
}

// Take removes and returns an element, spinning (with contention
// backoff and violation polling) while the queue is empty. The caller
// is responsible for termination: a Take with no concurrent producers
// spins forever, so work-queue algorithms with a termination condition
// should use Poll.
func (tq *TransactionalQueue[T]) Take(tx *stm.Tx) T {
	l := tq.local(tx)
	for spin := 0; ; spin++ {
		if v, ok := tq.tryDequeue(tx, l, false); ok {
			return v
		}
		tx.Poll()
		backoff := uint64(16)
		if spin > 4 {
			backoff = 256
		}
		tx.Thread().Clock.Wait(backoff)
	}
}

// Peek returns the element Take would return, without removing it, or
// reports false and takes the empty lock (Table 8: "peek: read lock if
// empty"). Note the reduced isolation: the peeked element may be taken
// by another transaction before this one commits.
func (tq *TransactionalQueue[T]) Peek(tx *stm.Tx) (T, bool) {
	l := tq.local(tx)
	var out T
	var ok bool
	_ = tx.Open(func(o *stm.Tx) error {
		tq.guard.Lock()
		defer tq.guard.Unlock()
		if v, got := tq.q.Peek(); got {
			out, ok = v, true
			return nil
		}
		if len(l.addBuffer) > 0 {
			out, ok = l.addBuffer[0], true
			return nil
		}
		tq.emptyLockers.Lock(o.Handle())
		l.emptyLocked = true
		return nil
	})
	tx.Thread().Clock.Tick(tq.opCost)
	return out, ok
}

// CommittedSize returns the size of the committed queue, for inspection
// after transactions have quiesced.
func (tq *TransactionalQueue[T]) CommittedSize() int {
	tq.guard.Lock()
	defer tq.guard.Unlock()
	return tq.q.Size()
}
