package core

import (
	"strconv"

	"tcc/internal/collections"
	"tcc/internal/obs/metrics"
	"tcc/internal/semlock"
	"tcc/internal/stm"
)

// TransactionalQueue wraps a Queue behind the util.concurrent Channel
// interface (Put/Offer/Take/Poll/Peek), trading strict FIFO isolation
// for concurrency as in paper §3.3: transactions that confine
// themselves to Put and Take never semantically conflict (Table 7).
//
// Reduced isolation, by design: Take and Poll remove elements from the
// underlying queue immediately (other transactions will not see — and
// cannot steal — them), with an abort handler returning them on
// rollback; Put buffers additions that a commit handler publishes. The
// only semantic lock is the empty lock (Table 8): a transaction that
// observed emptiness via a null Peek/Poll is aborted by a commit that
// makes the queue non-empty.
//
// # Lanes
//
// A queue built by NewSegmentedTransactionalQueue is split into L
// lanes, each fusing its own guard, committed sub-queue and empty-lock
// set — the segmented cousin of internal/concurrent's MSQueue, which
// gets its parallelism from separate head/tail CAS points; here the
// separation is whole lanes, so commit handler windows parallelize
// too. FIFO is semantic at lane granularity: elements of one lane
// leave in the order their transactions committed, but the queue makes
// no ordering promise between lanes — the same relaxation the paper's
// §3.3 makes for Put/Take commutativity, one level wider. Producers
// put into their thread-affine lane (LaneOf keys on Thread.TraceID),
// consumers drain their own lane first and steal from the others only
// when it is empty, so disjoint-lane traffic commits fully in
// parallel. Observing *global* emptiness (null Poll/Peek) takes every
// lane's empty lock, under every lane's guard (lockLanes, ascending
// id order — deadlock-free against the commit protocol's sorted
// footprint acquisition). NewTransactionalQueue builds one lane and
// is behaviorally identical to the pre-lane implementation.
type TransactionalQueue[T any] struct {
	// lanes has power-of-two length in [1, 64]; lane guard ids are
	// ascending in slice order (minted in order at construction).
	lanes []*queueLane[T]
	// mask is len(lanes)-1; 0 means single-lane.
	mask   uint64
	opCost uint64
	// name labels this instance in violation reasons.
	name           string
	reasonRefill   string
	reasonNotEmpty string
}

// queueLane is one lane: a committed sub-queue and its empty-lock set,
// fused with the lane's commit-guard shard (see TransactionalMap's
// mapStripe for the fusion idiom).
type queueLane[T any] struct {
	guard *stm.Guard
	// q holds the lane's committed state (Table 9: "the underlying
	// Queue instance").
	q collections.Queue[T]
	// emptyLockers is the shared transaction state of Table 9.
	emptyLockers *semlock.OwnerSet
	// violations counts semantic violations landed by this lane's
	// empty-lock sweeps (metrics plane; atomic-only, guard-window safe).
	violations *metrics.Counter
}

// queueLocal is the local transaction state of Table 9, per lane.
type queueLocal[T any] struct {
	addBuffers    [][]T
	removeBuffers [][]T
	// emptyLocked and touched are lane bitmasks: the lanes whose empty
	// lock this transaction holds, and the lanes in its guard
	// footprint (see mapLocal.touched for the footprint protocol).
	emptyLocked uint64
	touched     uint64
	registered  bool
}

func newQueueLane[T any](q collections.Queue[T]) *queueLane[T] {
	return &queueLane[T]{
		guard:        stm.NewGuard(),
		q:            q,
		emptyLockers: semlock.NewOwnerSet(),
	}
}

// NewTransactionalQueue wraps q; the wrapper assumes exclusive
// ownership. Because it adopts one existing structure it is
// single-lane; use NewSegmentedTransactionalQueue (which builds its
// own lanes) when endpoint traffic on one hot queue needs to scale.
func NewTransactionalQueue[T any](q collections.Queue[T]) *TransactionalQueue[T] {
	tq := &TransactionalQueue[T]{
		lanes:  []*queueLane[T]{newQueueLane(q)},
		opCost: DefaultOpCost,
	}
	tq.SetName("queue")
	return tq
}

// NewSegmentedTransactionalQueue creates a queue split into the given
// number of lanes (rounded up to a power of two, clamped to [1, 64];
// lanes <= 0 selects DefaultStripes). newLane is called once per lane
// to build that lane's committed sub-queue.
func NewSegmentedTransactionalQueue[T any](newLane func() collections.Queue[T], lanes int) *TransactionalQueue[T] {
	n := normalizeStripes(lanes)
	tq := &TransactionalQueue[T]{
		lanes:  make([]*queueLane[T], n),
		opCost: DefaultOpCost,
	}
	if n > 1 {
		tq.mask = uint64(n - 1)
	}
	for i := range tq.lanes {
		tq.lanes[i] = newQueueLane(newLane())
	}
	tq.SetName("queue")
	return tq
}

// SetName labels this instance in violation reasons for lost-work
// profiles. Segmented instances label each lane's guard "name.lane[i]"
// (the queue cousin of the map's "name.stripe[i]" convention).
func (tq *TransactionalQueue[T]) SetName(name string) {
	tq.name = name
	if len(tq.lanes) == 1 {
		tq.lanes[0].guard.SetLabel(name)
	} else {
		for i, ln := range tq.lanes {
			ln.guard.SetLabel(name + ".lane[" + strconv.Itoa(i) + "]")
		}
	}
	for i, ln := range tq.lanes {
		ln.violations = metrics.Default.Counter(metrics.CollectionViolations,
			"Semantic violations landed by this collection stripe's conflict sweeps",
			metrics.L("collection", name), metrics.L("stripe", strconv.Itoa(i)))
	}
	tq.reasonNotEmpty = name + ": no longer empty"
	tq.reasonRefill = name + ": refilled on abort"
}

// Name returns the label set by SetName.
func (tq *TransactionalQueue[T]) Name() string { return tq.name }

// Guard returns lane 0's commit guard — the instance guard of a
// single-lane queue. Code composing its own guarded handlers with a
// segmented queue should use LaneGuard for the lane it works with.
func (tq *TransactionalQueue[T]) Guard() *stm.Guard { return tq.lanes[0].guard }

// Lanes returns the number of lanes (1 unless built by
// NewSegmentedTransactionalQueue).
func (tq *TransactionalQueue[T]) Lanes() int { return len(tq.lanes) }

// LaneGuard returns the commit guard of lane li.
func (tq *TransactionalQueue[T]) LaneGuard(li int) *stm.Guard {
	return tq.lanes[li&int(tq.mask)].guard
}

// LaneOf returns the calling thread's affine lane: the lane Put
// targets and Poll/Take drain first. Keyed on Thread.TraceID (the
// harness sets it to the worker's CPU id), so each worker sticks to
// one lane and disjoint workers need never share an endpoint.
func (tq *TransactionalQueue[T]) LaneOf(tx *stm.Tx) int {
	return int(uint64(tx.Thread().TraceID) & tq.mask)
}

// SetOpCost overrides the abstract cycle cost charged per operation.
func (tq *TransactionalQueue[T]) SetOpCost(c uint64) { tq.opCost = c }

// lockLanes locks every lane guard, in ascending guard-id order (slice
// order) — whole-queue answers (global emptiness, CommittedSize) need
// all lanes pinned at once, and the ascending order keeps the hold
// compatible with the commit protocol's sorted footprint acquisition.
// stmlint classifies a lockLanes call as opening a commit-guard hold
// window.
func (tq *TransactionalQueue[T]) lockLanes() {
	for _, ln := range tq.lanes {
		ln.guard.Lock()
	}
}

// unlockLanes unlocks every lane guard (closing the hold window).
func (tq *TransactionalQueue[T]) unlockLanes() {
	for _, ln := range tq.lanes {
		ln.guard.Unlock()
	}
}

// local returns this transaction's local state for this instance,
// creating it on first use. Single-lane instances register the handler
// pair immediately; segmented ones defer to the first touch so the
// footprint starts with the lane actually used (see
// TransactionalMap.local).
func (tq *TransactionalQueue[T]) local(tx *stm.Tx) *queueLocal[T] {
	if l, ok := tx.Local(tq).(*queueLocal[T]); ok {
		return l
	}
	l := &queueLocal[T]{
		addBuffers:    make([][]T, len(tq.lanes)),
		removeBuffers: make([][]T, len(tq.lanes)),
	}
	tx.SetLocal(tq, l)
	if len(tq.lanes) == 1 {
		l.touched = 1
		tq.register(tx, l)
	}
	return l
}

// register installs the transaction's single commit/abort handler pair
// for this instance under the guard of the first lane it touched. The
// handler bodies take no lock themselves: the commit/rollback protocol
// holds every touched lane's guard (the footprint widened by touch)
// for the whole handler window.
func (tq *TransactionalQueue[T]) register(tx *stm.Tx, l *queueLocal[T]) {
	l.registered = true
	g := tq.lanes[firstStripe(l.touched)].guard
	h := tx.Handle()
	th := tx.Thread()
	tx.OnTopCommitGuarded(g, func() {
		mon := metrics.On()
		total := 0
		for li, ln := range tq.lanes {
			bit := uint64(1) << uint(li)
			if l.touched&bit == 0 {
				continue
			}
			wasEmpty := ln.q.Size() == 0
			for _, v := range l.addBuffers[li] {
				ln.q.Enqueue(v)
			}
			if wasEmpty && len(l.addBuffers[li]) > 0 {
				// Table 8: put's write conflict fires "if now non-empty".
				n := ln.emptyLockers.ViolateOthers(h, tq.reasonNotEmpty)
				if n > 0 && mon {
					ln.violations.Add(uint64(n))
				}
			}
			if l.emptyLocked&bit != 0 {
				ln.emptyLockers.Unlock(h)
			}
			total += len(l.addBuffers[li])
			l.addBuffers[li], l.removeBuffers[li] = nil, nil
		}
		l.emptyLocked = 0
		th.DeferTick(tq.opCost * uint64(1+total))
	})
	tx.OnTopAbortGuarded(g, func() {
		mon := metrics.On()
		total := 0
		for li, ln := range tq.lanes {
			bit := uint64(1) << uint(li)
			if l.touched&bit == 0 {
				continue
			}
			wasEmpty := ln.q.Size() == 0
			// Compensation: return everything this transaction dequeued
			// from this lane.
			for _, v := range l.removeBuffers[li] {
				ln.q.Enqueue(v)
			}
			if wasEmpty && len(l.removeBuffers[li]) > 0 {
				n := ln.emptyLockers.ViolateOthers(h, tq.reasonRefill)
				if n > 0 && mon {
					ln.violations.Add(uint64(n))
				}
			}
			if l.emptyLocked&bit != 0 {
				ln.emptyLockers.Unlock(h)
			}
			total += len(l.removeBuffers[li])
			l.addBuffers[li], l.removeBuffers[li] = nil, nil
		}
		l.emptyLocked = 0
		th.DeferTick(tq.opCost * uint64(1+total))
	})
}

// touch adds lane li to the transaction's footprint for this instance,
// registering the handler pair on the first touch and widening the
// root-level guard footprint on later ones, and returns the lane. Like
// TransactionalMap.touch, it must run before (not inside) the
// open-nested critical section that locks the lane's guard.
func (tq *TransactionalQueue[T]) touch(tx *stm.Tx, l *queueLocal[T], li int) *queueLane[T] {
	ln := tq.lanes[li]
	bit := uint64(1) << uint(li)
	if l.touched&bit != 0 {
		return ln
	}
	l.touched |= bit
	if !l.registered {
		tq.register(tx, l)
		return ln
	}
	tx.AddTopGuard(ln.guard)
	return ln
}

// Put enqueues v — into the calling thread's affine lane — when the
// transaction commits. Put never semantically conflicts with other Put
// or Take operations (Table 7).
func (tq *TransactionalQueue[T]) Put(tx *stm.Tx, v T) {
	tq.PutLane(tx, tq.LaneOf(tx), v)
}

// PutLane enqueues v into a specific lane at commit, for callers that
// partition work across lanes themselves.
func (tq *TransactionalQueue[T]) PutLane(tx *stm.Tx, li int, v T) {
	li &= int(tq.mask)
	l := tq.local(tx)
	tq.touch(tx, l, li)
	l.addBuffers[li] = append(l.addBuffers[li], v)
	tx.Thread().Clock.Tick(tq.opCost / 4)
}

// Offer is Put for an unbounded queue; it always reports acceptance
// (the Channel interface's non-blocking insert).
func (tq *TransactionalQueue[T]) Offer(tx *stm.Tx, v T) bool {
	tq.Put(tx, v)
	return true
}

// tryDequeueLane removes one element of lane li visible to tx:
// preferentially from the lane's committed sub-queue (recording it for
// compensation on abort), else from the transaction's own uncommitted
// additions to the lane.
func (tq *TransactionalQueue[T]) tryDequeueLane(tx *stm.Tx, l *queueLocal[T], li int, lockIfEmpty bool) (T, bool) {
	ln := tq.touch(tx, l, li)
	var out T
	var ok bool
	_ = tx.Open(func(o *stm.Tx) error {
		ln.guard.Lock()
		defer ln.guard.Unlock()
		if v, got := ln.q.Dequeue(); got {
			l.removeBuffers[li] = append(l.removeBuffers[li], v)
			out, ok = v, true
			return nil
		}
		if len(l.addBuffers[li]) > 0 {
			out, ok = l.addBuffers[li][0], true
			l.addBuffers[li] = l.addBuffers[li][1:]
			return nil
		}
		if lockIfEmpty {
			ln.emptyLockers.Lock(o.Handle())
			l.emptyLocked |= uint64(1) << uint(li)
		}
		return nil
	})
	tx.Thread().Clock.Tick(tq.opCost)
	return out, ok
}

// tryDequeue removes one element visible to tx. Single-lane: the old
// one-guard protocol. Segmented: probe lanes one guard at a time
// starting from the thread's affine lane (no empty locks — which lane
// supplied the element is not semantically observable under lane-FIFO
// ordering), and only if every lane came up empty fall to the
// two-phase global-empty check (dequeueOrLockEmpty) when the caller
// needs emptiness locked.
func (tq *TransactionalQueue[T]) tryDequeue(tx *stm.Tx, l *queueLocal[T], lockIfEmpty bool) (T, bool) {
	if tq.mask == 0 {
		return tq.tryDequeueLane(tx, l, 0, lockIfEmpty)
	}
	start := tq.LaneOf(tx)
	for i := range tq.lanes {
		li := (start + i) & int(tq.mask)
		if v, ok := tq.tryDequeueLane(tx, l, li, false); ok {
			return v, true
		}
	}
	if lockIfEmpty {
		return tq.dequeueOrLockEmpty(tx, l)
	}
	var zero T
	return zero, false
}

// dequeueOrLockEmpty re-checks every lane with all lane guards held at
// once and, if the queue is still globally empty, takes every lane's
// empty lock under that same hold — so "the queue was empty" is one
// atomic observation that any lane's refill violates. The lane-at-a-
// time probe cannot be used for this: emptiness seen lane by lane can
// be stale by the time the last lane is checked.
func (tq *TransactionalQueue[T]) dequeueOrLockEmpty(tx *stm.Tx, l *queueLocal[T]) (T, bool) {
	for li := range tq.lanes {
		tq.touch(tx, l, li)
	}
	var out T
	var ok bool
	_ = tx.Open(func(o *stm.Tx) error {
		tq.lockLanes()
		defer tq.unlockLanes()
		for li, ln := range tq.lanes {
			if v, got := ln.q.Dequeue(); got {
				l.removeBuffers[li] = append(l.removeBuffers[li], v)
				out, ok = v, true
				return nil
			}
			if len(l.addBuffers[li]) > 0 {
				out, ok = l.addBuffers[li][0], true
				l.addBuffers[li] = l.addBuffers[li][1:]
				return nil
			}
		}
		h := o.Handle()
		for li, ln := range tq.lanes {
			if l.emptyLocked&(uint64(1)<<uint(li)) == 0 {
				ln.emptyLockers.Lock(h)
				l.emptyLocked |= uint64(1) << uint(li)
			}
		}
		return nil
	})
	tx.Thread().Clock.Tick(tq.opCost)
	return out, ok
}

// Poll removes and returns an element, or reports false on an empty
// queue — in which case it takes the empty lock (every lane's, for a
// segmented queue), so a commit that makes the queue non-empty aborts
// this transaction (Table 8: "poll: read lock if empty").
func (tq *TransactionalQueue[T]) Poll(tx *stm.Tx) (T, bool) {
	return tq.tryDequeue(tx, tq.local(tx), true)
}

// Take removes and returns an element, spinning (with contention
// backoff and violation polling) while the queue is empty. The caller
// is responsible for termination: a Take with no concurrent producers
// spins forever, so work-queue algorithms with a termination condition
// should use Poll.
func (tq *TransactionalQueue[T]) Take(tx *stm.Tx) T {
	l := tq.local(tx)
	for spin := 0; ; spin++ {
		if v, ok := tq.tryDequeue(tx, l, false); ok {
			return v
		}
		tx.Poll()
		backoff := uint64(16)
		if spin > 4 {
			backoff = 256
		}
		tx.Thread().Clock.Wait(backoff)
	}
}

// peekLane is tryDequeueLane without the removal.
func (tq *TransactionalQueue[T]) peekLane(tx *stm.Tx, l *queueLocal[T], li int, lockIfEmpty bool) (T, bool) {
	ln := tq.touch(tx, l, li)
	var out T
	var ok bool
	_ = tx.Open(func(o *stm.Tx) error {
		ln.guard.Lock()
		defer ln.guard.Unlock()
		if v, got := ln.q.Peek(); got {
			out, ok = v, true
			return nil
		}
		if len(l.addBuffers[li]) > 0 {
			out, ok = l.addBuffers[li][0], true
			return nil
		}
		if lockIfEmpty {
			ln.emptyLockers.Lock(o.Handle())
			l.emptyLocked |= uint64(1) << uint(li)
		}
		return nil
	})
	tx.Thread().Clock.Tick(tq.opCost)
	return out, ok
}

// Peek returns the element Take would return, without removing it, or
// reports false and takes the empty lock (Table 8: "peek: read lock if
// empty"). Note the reduced isolation: the peeked element may be taken
// by another transaction before this one commits.
func (tq *TransactionalQueue[T]) Peek(tx *stm.Tx) (T, bool) {
	l := tq.local(tx)
	if tq.mask == 0 {
		return tq.peekLane(tx, l, 0, true)
	}
	start := tq.LaneOf(tx)
	for i := range tq.lanes {
		li := (start + i) & int(tq.mask)
		if v, ok := tq.peekLane(tx, l, li, false); ok {
			return v, true
		}
	}
	return tq.peekOrLockEmpty(tx, l)
}

// peekOrLockEmpty is dequeueOrLockEmpty without the removal.
func (tq *TransactionalQueue[T]) peekOrLockEmpty(tx *stm.Tx, l *queueLocal[T]) (T, bool) {
	for li := range tq.lanes {
		tq.touch(tx, l, li)
	}
	var out T
	var ok bool
	_ = tx.Open(func(o *stm.Tx) error {
		tq.lockLanes()
		defer tq.unlockLanes()
		for li, ln := range tq.lanes {
			if v, got := ln.q.Peek(); got {
				out, ok = v, true
				return nil
			}
			if len(l.addBuffers[li]) > 0 {
				out, ok = l.addBuffers[li][0], true
				return nil
			}
		}
		h := o.Handle()
		for li, ln := range tq.lanes {
			if l.emptyLocked&(uint64(1)<<uint(li)) == 0 {
				ln.emptyLockers.Lock(h)
				l.emptyLocked |= uint64(1) << uint(li)
			}
		}
		return nil
	})
	tx.Thread().Clock.Tick(tq.opCost)
	return out, ok
}

// CommittedSize returns the size of the committed queue, for inspection
// after transactions have quiesced.
func (tq *TransactionalQueue[T]) CommittedSize() int {
	tq.lockLanes()
	defer tq.unlockLanes()
	n := 0
	for _, ln := range tq.lanes {
		n += ln.q.Size()
	}
	return n
}
