package core

// Lock-acquisition tests: one assertion per row of the paper's Table 2
// (Map semantic locks), Table 5 (SortedMap) and Table 8 (Channel) —
// each read operation must take exactly the locks the tables prescribe,
// and write operations must take only the key lock implied by their
// read component (or none, for the Unread variants).

import (
	"testing"

	"tcc/internal/stm"
)

// mapLockState snapshots which locks h holds on tm.
type mapLockState struct {
	keys       []int
	size       bool
	empty      bool
	first      bool
	last       bool
	rangeLocks int
}

func snapshotLocks(tm *TransactionalMap[int, int], h *stm.Handle, probeKeys []int) mapLockState {
	tm.lockGuards()
	defer tm.unlockGuards()
	st := mapLockState{
		size:  tm.stripes[0].sizeLockers.Holds(h),
		empty: tm.stripes[0].emptyLockers.Holds(h),
	}
	for _, k := range probeKeys {
		if tm.stripes[tm.StripeOf(k)].key2lockers.Holds(k, h) {
			st.keys = append(st.keys, k)
		}
	}
	if tm.sorted != nil {
		st.first = tm.sorted.firstLockers.Holds(h)
		st.last = tm.sorted.lastLockers.Holds(h)
		for _, rt := range tm.sorted.rangeLockers {
			st.rangeLocks += rt.Len()
		}
	}
	return st
}

// assertLocks runs op inside a transaction and compares the locks held
// immediately afterwards (while the transaction is still active).
func assertLocks(t *testing.T, name string, tm *TransactionalMap[int, int], probe []int,
	op func(tx *stm.Tx), want mapLockState) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		th := newTh(1)
		atomically(t, th, func(tx *stm.Tx) {
			op(tx)
			got := snapshotLocks(tm, tx.Handle(), probe)
			if len(got.keys) != len(want.keys) {
				t.Fatalf("key locks = %v, want %v", got.keys, want.keys)
			}
			for i := range want.keys {
				if got.keys[i] != want.keys[i] {
					t.Fatalf("key locks = %v, want %v", got.keys, want.keys)
				}
			}
			if got.size != want.size {
				t.Errorf("size lock = %v, want %v", got.size, want.size)
			}
			if got.empty != want.empty {
				t.Errorf("empty lock = %v, want %v", got.empty, want.empty)
			}
			if got.first != want.first {
				t.Errorf("first lock = %v, want %v", got.first, want.first)
			}
			if got.last != want.last {
				t.Errorf("last lock = %v, want %v", got.last, want.last)
			}
			if got.rangeLocks != want.rangeLocks {
				t.Errorf("range locks = %d, want %d", got.rangeLocks, want.rangeLocks)
			}
		})
	})
}

// TestMapLocks asserts Table 2 row by row.
func TestMapLocks(t *testing.T) {
	seeded := func() *TransactionalMap[int, int] {
		tm := newIntMap()
		th := newTh(9)
		atomically(t, th, func(tx *stm.Tx) {
			tm.Put(tx, 1, 10)
			tm.Put(tx, 2, 20)
		})
		return tm
	}
	probe := []int{1, 2, 3}

	{
		tm := seeded()
		assertLocks(t, "containsKey", tm, probe,
			func(tx *stm.Tx) { tm.ContainsKey(tx, 1) },
			mapLockState{keys: []int{1}})
	}
	{
		tm := seeded()
		assertLocks(t, "get", tm, probe,
			func(tx *stm.Tx) { tm.Get(tx, 2) },
			mapLockState{keys: []int{2}})
	}
	{
		tm := seeded()
		assertLocks(t, "get-absent-key", tm, probe,
			func(tx *stm.Tx) { tm.Get(tx, 3) },
			mapLockState{keys: []int{3}})
	}
	{
		tm := seeded()
		assertLocks(t, "size", tm, probe,
			func(tx *stm.Tx) { tm.Size(tx) },
			mapLockState{size: true})
	}
	{
		tm := seeded()
		assertLocks(t, "isEmpty", tm, probe,
			func(tx *stm.Tx) { tm.IsEmpty(tx) },
			mapLockState{empty: true})
	}
	{
		tm := seeded()
		assertLocks(t, "put", tm, probe,
			func(tx *stm.Tx) { tm.Put(tx, 1, 11) },
			mapLockState{keys: []int{1}})
	}
	{
		tm := seeded()
		assertLocks(t, "putUnread", tm, probe,
			func(tx *stm.Tx) { tm.PutUnread(tx, 1, 11) },
			mapLockState{})
	}
	{
		tm := seeded()
		assertLocks(t, "remove", tm, probe,
			func(tx *stm.Tx) { tm.Remove(tx, 2) },
			mapLockState{keys: []int{2}})
	}
	{
		tm := seeded()
		assertLocks(t, "removeUnread", tm, probe,
			func(tx *stm.Tx) { tm.RemoveUnread(tx, 2) },
			mapLockState{})
	}
	t.Run("iterator-next", func(t *testing.T) {
		tm := seeded()
		th := newTh(1)
		atomically(t, th, func(tx *stm.Tx) {
			it := tm.Iterator(tx)
			it.Next()
			st := snapshotLocks(tm, tx.Handle(), probe)
			// Exactly one key lock (whichever key the unordered
			// iterator returned first) and no size lock yet.
			if len(st.keys) != 1 {
				t.Fatalf("key locks = %v, want exactly one", st.keys)
			}
			if st.size {
				t.Fatal("partial iteration must not take the size lock")
			}
		})
	})
	{
		tm := seeded()
		assertLocks(t, "iterator-exhausted", tm, []int{},
			func(tx *stm.Tx) {
				it := tm.Iterator(tx)
				for it.HasNext() {
					it.Next()
				}
			},
			mapLockState{size: true})
	}
}

// TestMapIteratorNextTakesKeyLock covers the dynamic part of Table 2's
// iterator row: the key lock of each returned key is held.
func TestMapIteratorNextTakesKeyLock(t *testing.T) {
	tm := newIntMap()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		tm.Put(tx, 1, 10)
		tm.Put(tx, 2, 20)
	})
	atomically(t, th, func(tx *stm.Tx) {
		it := tm.Iterator(tx)
		h := tx.Handle()
		seen := 0
		for {
			k, _, ok := it.Next()
			if !ok {
				break
			}
			seen++
			tm.lockGuards()
			held := tm.stripes[tm.StripeOf(k)].key2lockers.Holds(k, h)
			tm.unlockGuards()
			if !held {
				t.Fatalf("iterator returned %d without its key lock", k)
			}
		}
		if seen != 2 {
			t.Fatalf("iterated %d keys", seen)
		}
	})
}

// TestSortedLocks asserts the Table 5 additions.
func TestSortedLocks(t *testing.T) {
	seeded := func() *TransactionalSortedMap[int, int] {
		tm := newSorted()
		th := newTh(9)
		atomically(t, th, func(tx *stm.Tx) {
			for _, k := range []int{10, 20, 30} {
				tm.Put(tx, k, k)
			}
		})
		return tm
	}
	probe := []int{10, 20, 30}

	{
		tm := seeded()
		assertLocks(t, "firstKey", &tm.TransactionalMap, probe,
			func(tx *stm.Tx) { tm.FirstKey(tx) },
			mapLockState{first: true})
	}
	{
		tm := seeded()
		assertLocks(t, "lastKey", &tm.TransactionalMap, probe,
			func(tx *stm.Tx) { tm.LastKey(tx) },
			mapLockState{last: true})
	}
	{
		tm := seeded()
		assertLocks(t, "iterator-first-next", &tm.TransactionalMap, probe,
			func(tx *stm.Tx) {
				it := tm.Iterator(tx)
				it.Next() // returns 10
			},
			// Table 5: next takes "range lock over iterated values,
			// first lock" for iteration from the beginning.
			mapLockState{keys: []int{10}, first: true, rangeLocks: 1})
	}
	{
		tm := seeded()
		assertLocks(t, "tailmap-iterator-next", &tm.TransactionalMap, probe,
			func(tx *stm.Tx) {
				it := tm.TailMap(15).Iterator(tx)
				it.Next() // returns 20
			},
			// Bounded start: range lock only, no first lock.
			mapLockState{keys: []int{20}, rangeLocks: 1})
	}
	{
		tm := seeded()
		assertLocks(t, "iterator-exhausted-takes-last", &tm.TransactionalMap, probe,
			func(tx *stm.Tx) {
				it := tm.Iterator(tx)
				for it.HasNext() {
					it.Next()
				}
			},
			mapLockState{keys: []int{10, 20, 30}, first: true, last: true, rangeLocks: 1})
	}
	{
		tm := seeded()
		assertLocks(t, "submap-exhausted-pins-range", &tm.TransactionalMap, probe,
			func(tx *stm.Tx) {
				it := tm.SubMap(10, 25).Iterator(tx)
				for it.HasNext() {
					it.Next()
				}
				// Bounded view exhaustion must not take the last lock;
				// it pins the range to the view bound instead.
			},
			mapLockState{keys: []int{10, 20}, rangeLocks: 1})
	}
}

// TestSortedRangeLockWidens checks that an iterator's single range lock
// grows to cover exactly the observed keys.
func TestSortedRangeLockWidens(t *testing.T) {
	tm := newSorted()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		for _, k := range []int{10, 20, 30, 40} {
			tm.Put(tx, k, k)
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		it := tm.TailMap(10).Iterator(tx)
		it.Next() // 10
		it.Next() // 20
		if !coversAny(tm, tx, 15) {
			t.Error("range [10,20] should cover 15")
		}
		if coversAny(tm, tx, 25) {
			t.Error("range [10,20] should not cover 25 yet")
		}
		it.Next() // 30
		if !coversAny(tm, tx, 25) {
			t.Error("widened range [10,30] should cover 25")
		}
	})
}

// coversAny reports whether any range lock tx holds on tm covers k.
func coversAny(tm *TransactionalSortedMap[int, int], tx *stm.Tx, k int) bool {
	l, ok := tx.Local(&tm.TransactionalMap).(*mapLocal[int, int])
	if !ok {
		return false
	}
	tm.lockGuards()
	defer tm.unlockGuards()
	for _, rl := range l.rangeLocks {
		if tm.sorted.rangeLockers[rl.si].Covers(rl.e, k) {
			return true
		}
	}
	return false
}

// TestQueueLocks asserts Table 8.
func TestQueueLocks(t *testing.T) {
	emptyHeld := func(q *TransactionalQueue[int], h *stm.Handle) bool {
		q.lanes[0].guard.Lock()
		defer q.lanes[0].guard.Unlock()
		return q.lanes[0].emptyLockers.Holds(h)
	}
	t.Run("peek-empty", func(t *testing.T) {
		q := newQueue()
		th := newTh(1)
		atomically(t, th, func(tx *stm.Tx) {
			q.Peek(tx)
			if !emptyHeld(q, tx.Handle()) {
				t.Error("null peek must take the empty lock")
			}
		})
	})
	t.Run("peek-nonempty", func(t *testing.T) {
		q := newQueue()
		th := newTh(1)
		atomically(t, th, func(tx *stm.Tx) { q.Put(tx, 1) })
		atomically(t, th, func(tx *stm.Tx) {
			q.Peek(tx)
			if emptyHeld(q, tx.Handle()) {
				t.Error("successful peek must not take the empty lock")
			}
		})
	})
	t.Run("poll-empty", func(t *testing.T) {
		q := newQueue()
		th := newTh(1)
		atomically(t, th, func(tx *stm.Tx) {
			q.Poll(tx)
			if !emptyHeld(q, tx.Handle()) {
				t.Error("null poll must take the empty lock")
			}
		})
	})
	t.Run("poll-nonempty", func(t *testing.T) {
		q := newQueue()
		th := newTh(1)
		atomically(t, th, func(tx *stm.Tx) { q.Put(tx, 1) })
		atomically(t, th, func(tx *stm.Tx) {
			q.Poll(tx)
			if emptyHeld(q, tx.Handle()) {
				t.Error("successful poll must not take the empty lock")
			}
		})
	})
	t.Run("put", func(t *testing.T) {
		q := newQueue()
		th := newTh(1)
		atomically(t, th, func(tx *stm.Tx) {
			q.Put(tx, 1)
			if emptyHeld(q, tx.Handle()) {
				t.Error("put must not take the empty lock")
			}
		})
	})
}
