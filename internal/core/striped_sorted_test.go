package core

import (
	"sort"
	"sync"
	"testing"
	"time"

	"tcc/internal/collections"
	"tcc/internal/stm"
)

// newRangeStripedIntSortedMap builds a sorted map over [0, 64) with the
// given number of interval stripes, each stripe owning a contiguous
// 64/n-key interval.
func newRangeStripedIntSortedMap(stripes int) *TransactionalSortedMap[int, int] {
	var boundaries []int
	for i := 1; i < stripes; i++ {
		boundaries = append(boundaries, i*64/stripes)
	}
	return NewRangeStripedTransactionalSortedMap[int, int](func() collections.SortedMap[int, int] {
		return collections.NewTreeMap[int, int]()
	}, boundaries)
}

// TestRangeStripedSortedMapBasics drives the full SortedMap surface
// through an interval-striped instance, with commits spanning several
// stripes (multi-stripe footprints, per-stripe range tables, the
// cross-stripe walk paths).
func TestRangeStripedSortedMapBasics(t *testing.T) {
	tm := newRangeStripedIntSortedMap(8)
	if got := tm.Stripes(); got != 8 {
		t.Fatalf("Stripes = %d, want 8", got)
	}
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		for k := 0; k < 64; k += 2 {
			tm.Put(tx, k, k*10)
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		if got := tm.Size(tx); got != 32 {
			t.Fatalf("Size = %d, want 32", got)
		}
		if k, ok := tm.FirstKey(tx); !ok || k != 0 {
			t.Fatalf("FirstKey = (%d,%v), want (0,true)", k, ok)
		}
		if k, ok := tm.LastKey(tx); !ok || k != 62 {
			t.Fatalf("LastKey = (%d,%v), want (62,true)", k, ok)
		}
		// Navigation across a stripe boundary: 15 is stripe 1's last
		// key-slot, 16 starts stripe 2.
		if k, ok := tm.CeilingKey(tx, 15); !ok || k != 16 {
			t.Fatalf("CeilingKey(15) = (%d,%v), want (16,true)", k, ok)
		}
		if k, ok := tm.FloorKey(tx, 15); !ok || k != 14 {
			t.Fatalf("FloorKey(15) = (%d,%v), want (14,true)", k, ok)
		}
		if k, ok := tm.HigherKey(tx, 62); ok {
			t.Fatalf("HigherKey(62) = (%d,%v), want none", k, ok)
		}
		if k, ok := tm.LowerKey(tx, 0); ok {
			t.Fatalf("LowerKey(0) = (%d,%v), want none", k, ok)
		}
		keys := tm.Keys(tx)
		if len(keys) != 32 || !sort.IntsAreSorted(keys) {
			t.Fatalf("Keys: %d entries, sorted=%v", len(keys), sort.IntsAreSorted(keys))
		}
		// A bounded view spanning three stripes.
		got := tm.SubMap(10, 40).Keys(tx)
		var want []int
		for k := 10; k < 40; k += 2 {
			want = append(want, k)
		}
		if len(got) != len(want) {
			t.Fatalf("SubMap(10,40).Keys = %v, want %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("SubMap(10,40).Keys = %v, want %v", got, want)
			}
		}
	})
	// Buffered writes merge into the striped walks before commit.
	atomically(t, th, func(tx *stm.Tx) {
		tm.Remove(tx, 0)
		tm.Put(tx, 63, 630)
		if k, ok := tm.FirstKey(tx); !ok || k != 2 {
			t.Fatalf("FirstKey after buffered remove = (%d,%v), want (2,true)", k, ok)
		}
		if k, ok := tm.LastKey(tx); !ok || k != 63 {
			t.Fatalf("LastKey with buffered put = (%d,%v), want (63,true)", k, ok)
		}
		if k, ok := tm.CeilingKey(tx, 62); !ok || k != 62 {
			t.Fatalf("CeilingKey(62) = (%d,%v), want (62,true)", k, ok)
		}
		if k, ok := tm.HigherKey(tx, 62); !ok || k != 63 {
			t.Fatalf("HigherKey(62) with buffered put = (%d,%v), want (63,true)", k, ok)
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		if got := tm.Size(tx); got != 32 {
			t.Fatalf("Size after remove+put = %d, want 32", got)
		}
	})
}

// TestRangeStripedSingleStripeEquivalence: a 1-stripe range-striped map
// must behave exactly like NewTransactionalSortedMap (the acceptance
// criterion's behavioral-identity clause), including endpoint locks.
func TestRangeStripedSingleStripeEquivalence(t *testing.T) {
	tm := newRangeStripedIntSortedMap(1)
	if tm.Stripes() != 1 || tm.mask != 0 {
		t.Fatalf("1-stripe map: stripes=%d mask=%d", tm.Stripes(), tm.mask)
	}
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		tm.Put(tx, 1, 10)
		tm.Put(tx, 2, 20)
	})
	atomically(t, th, func(tx *stm.Tx) {
		if k, ok := tm.FirstKey(tx); !ok || k != 1 {
			t.Fatalf("FirstKey = (%d,%v)", k, ok)
		}
	})
	// Single-stripe endpoint observations go through the first/last
	// OwnerSets, exactly like the plain sorted map.
	h := stm.NewThread(&stm.RealClock{}, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = h.Atomic(func(tx *stm.Tx) error {
			tm.FirstKey(tx)
			if tx.Attempt() == 0 && !tm.sorted.firstLockers.Holds(tx.Handle()) {
				t.Error("single-stripe FirstKey did not take the first lock")
			}
			return nil
		})
	}()
	<-done
}

// TestRangeStripedDisjointRangeHandlerWindowsOverlap is the tentpole's
// rendezvous proof for the sorted map, mirroring
// TestStripedDisjointKeyHandlerWindowsOverlap: two transactions
// committing keys in different interval stripes of the SAME sorted map
// hold their commit-handler windows at the same time. Under the old
// single-guard sorted map the first committer would block inside its
// window waiting for a handler the shared guard prevents from starting,
// and the rendezvous would time out.
func TestRangeStripedDisjointRangeHandlerWindowsOverlap(t *testing.T) {
	tm := newRangeStripedIntSortedMap(8)
	k1, k2 := 3, 60 // stripe 0 and stripe 7
	if tm.StripeOf(k1) == tm.StripeOf(k2) {
		t.Fatalf("test keys landed on one stripe: %d", tm.StripeOf(k1))
	}
	aIn, bIn := make(chan struct{}), make(chan struct{})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	var onceA, onceB sync.Once
	go func() {
		defer wg.Done()
		th := newTh(1)
		_ = th.Atomic(func(tx *stm.Tx) error {
			tm.Put(tx, k1, 1)
			tx.OnCommitGuarded(tm.StripeGuard(k1), func() {
				onceA.Do(func() { close(aIn) })
				<-bIn
			})
			return nil
		})
	}()
	go func() {
		defer wg.Done()
		th := newTh(2)
		_ = th.Atomic(func(tx *stm.Tx) error {
			tm.Put(tx, k2, 2)
			tx.OnCommitGuarded(tm.StripeGuard(k2), func() {
				onceB.Do(func() { close(bIn) })
				<-aIn
			})
			return nil
		})
	}()
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("disjoint-range handler windows on one striped sorted map did not overlap")
	}
	th := newTh(3)
	atomically(t, th, func(tx *stm.Tx) {
		if v, ok := tm.Get(tx, k1); !ok || v != 1 {
			t.Errorf("Get(k1) = (%d,%v) after overlapping commits", v, ok)
		}
		if v, ok := tm.Get(tx, k2); !ok || v != 2 {
			t.Errorf("Get(k2) = (%d,%v) after overlapping commits", v, ok)
		}
	})
}

// TestRangeStripedScanSerializability checks the cross-stripe scan
// path's conflict detection: a scan that spans stripes is violated by
// an insert into any interval it covered, while operations confined to
// intervals the scan never reached commute.
func TestRangeStripedScanSerializability(t *testing.T) {
	seed := func(tm *TransactionalSortedMap[int, int], keys ...int) func(tx *stm.Tx) {
		return func(tx *stm.Tx) {
			for _, k := range keys {
				tm.Put(tx, k, k)
			}
		}
	}
	{ // Whole-map scan vs insert into a middle stripe: conflict.
		tm := newRangeStripedIntSortedMap(8)
		expectConflict(t, "spanning-scan/insert-covered", true,
			seed(tm, 2, 30, 60),
			func(tx *stm.Tx) { tm.Keys(tx) },
			func(tx *stm.Tx) { tm.Put(tx, 33, 33) },
		)
	}
	{ // Scan confined to stripe 0's interval vs insert into stripe 7: commute.
		tm := newRangeStripedIntSortedMap(8)
		expectConflict(t, "confined-scan/insert-elsewhere", false,
			seed(tm, 2, 5, 60),
			func(tx *stm.Tx) { tm.SubMap(0, 8).Keys(tx) },
			func(tx *stm.Tx) { tm.Put(tx, 61, 61) },
		)
	}
	{ // Bounded scan pins its tail: insert below the bound conflicts...
		tm := newRangeStripedIntSortedMap(8)
		expectConflict(t, "bounded-scan/insert-in-tail-gap", true,
			seed(tm, 2),
			func(tx *stm.Tx) { tm.SubMap(0, 30).Keys(tx) },
			func(tx *stm.Tx) { tm.Put(tx, 20, 20) },
		)
	}
	{ // ...and an insert at the bound does not.
		tm := newRangeStripedIntSortedMap(8)
		expectConflict(t, "bounded-scan/insert-at-bound", false,
			seed(tm, 2),
			func(tx *stm.Tx) { tm.SubMap(0, 30).Keys(tx) },
			func(tx *stm.Tx) { tm.Put(tx, 30, 30) },
		)
	}
	{ // A cross-stripe navigation walk locks the gap it crossed.
		tm := newRangeStripedIntSortedMap(8)
		expectConflict(t, "cross-stripe-ceiling/insert-in-gap", true,
			seed(tm, 60),
			func(tx *stm.Tx) { tm.CeilingKey(tx, 5) }, // walks stripes 0..7, answers 60
			func(tx *stm.Tx) { tm.Put(tx, 33, 33) },
		)
	}
	{ // The walk's gap lock stops at the answer: inserts above commute.
		tm := newRangeStripedIntSortedMap(8)
		expectConflict(t, "cross-stripe-ceiling/insert-above-answer", false,
			seed(tm, 30),
			func(tx *stm.Tx) { tm.CeilingKey(tx, 5) }, // answers 30
			func(tx *stm.Tx) { tm.Put(tx, 50, 50) },
		)
	}
	{ // Endpoint walks are violated by a new minimum...
		tm := newRangeStripedIntSortedMap(8)
		expectConflict(t, "first-key/insert-new-min", true,
			seed(tm, 30),
			func(tx *stm.Tx) { tm.FirstKey(tx) },
			func(tx *stm.Tx) { tm.Put(tx, 3, 3) },
		)
	}
	{ // ...but commute with inserts above the observed minimum.
		tm := newRangeStripedIntSortedMap(8)
		expectConflict(t, "first-key/insert-above-min", false,
			seed(tm, 10),
			func(tx *stm.Tx) { tm.FirstKey(tx) },
			func(tx *stm.Tx) { tm.Put(tx, 50, 50) },
		)
	}
	{ // Disjoint point reads on different stripes commute.
		tm := newRangeStripedIntSortedMap(8)
		expectConflict(t, "point-get/put-other-stripe", false,
			seed(tm, 2, 60),
			func(tx *stm.Tx) { tm.Get(tx, 2) },
			func(tx *stm.Tx) { tm.Put(tx, 60, 61) },
		)
	}
}

// TestSampleRangeBoundaries checks the quantile splitter policy.
func TestSampleRangeBoundaries(t *testing.T) {
	cmp := func(a, b int) int { return a - b }
	var sample []int
	for i := 0; i < 1024; i++ {
		sample = append(sample, i)
	}
	bs := SampleRangeBoundaries(sample, cmp, 8)
	if len(bs) != 7 {
		t.Fatalf("boundaries = %v, want 7 quantiles", bs)
	}
	if !sort.IntsAreSorted(bs) {
		t.Fatalf("boundaries not sorted: %v", bs)
	}
	tm := NewRangeStripedTransactionalSortedMap[int, int](func() collections.SortedMap[int, int] {
		return collections.NewTreeMap[int, int]()
	}, bs)
	if tm.Stripes() != 8 {
		t.Fatalf("Stripes = %d, want 8", tm.Stripes())
	}
	// Tiny samples degrade gracefully to fewer stripes.
	bs = SampleRangeBoundaries([]int{1, 2}, cmp, 8)
	tm = NewRangeStripedTransactionalSortedMap[int, int](func() collections.SortedMap[int, int] {
		return collections.NewTreeMap[int, int]()
	}, bs)
	if tm.Stripes() > 2 {
		t.Fatalf("Stripes = %d from a 2-key sample", tm.Stripes())
	}
}
