package core

// NavigableMap queries for TransactionalSortedMap: CeilingKey,
// HigherKey, FloorKey and LowerKey (the java.util.NavigableMap
// extension that paper §2.2 notes ConcurrentSkipListMap implements).
//
// These are not in the paper's Table 5, so we derive their locks by the
// paper's own methodology (§3.1's categorization): a navigation query
// observes more than its result key — it observes the *absence of any
// key in the gap* between the probe and the result. CeilingKey(k) = r
// therefore takes a key lock on r plus a range lock over [k, r] (the
// committing insert of any key in between, or the removal of r, must
// abort the reader); a query with no result locks the unbounded tail
// (or head) it proved empty. The strict variants exclude the probe
// endpoint, so a write exactly at the probe commutes.

import (
	"tcc/internal/semlock"
	"tcc/internal/stm"
)

// mergedCeilingLocked returns the smallest live key >= k (> k when
// strict), merging committed state (skipping buffered removals) with
// buffered additions. Caller holds the instance guard.
func (t *TransactionalSortedMap[K, V]) mergedCeilingLocked(l *mapLocal[K, V], k K, strict bool) (K, bool) {
	sm := t.sorted.sms[0]
	var committed *K
	var c K
	var ok bool
	if strict {
		c, ok = sm.HigherKey(k)
	} else {
		c, ok = sm.CeilingKey(k)
	}
	for ok {
		if w, buffered := l.storeBuffer[c]; buffered && w.removed {
			c, ok = sm.HigherKey(c)
			continue
		}
		cc := c
		committed = &cc
		break
	}
	best := committed
	if bk, bok := t.bufferCeilingLocked(l, &k, strict); bok {
		if best == nil || sm.Compare(bk, *best) < 0 {
			best = &bk
		}
	}
	if best == nil {
		var zero K
		return zero, false
	}
	return *best, true
}

// mergedFloorLocked is the descending mirror. Caller holds the instance guard.
func (t *TransactionalSortedMap[K, V]) mergedFloorLocked(l *mapLocal[K, V], k K, strict bool) (K, bool) {
	sm := t.sorted.sms[0]
	var committed *K
	var c K
	var ok bool
	if strict {
		c, ok = sm.LowerKey(k)
	} else {
		c, ok = sm.FloorKey(k)
	}
	for ok {
		if w, buffered := l.storeBuffer[c]; buffered && w.removed {
			c, ok = sm.LowerKey(c)
			continue
		}
		cc := c
		committed = &cc
		break
	}
	best := committed
	if bk, bok := t.bufferFloorLocked(l, &k, strict); bok {
		if best == nil || sm.Compare(bk, *best) > 0 {
			best = &bk
		}
	}
	if best == nil {
		var zero K
		return zero, false
	}
	return *best, true
}

// navigateUp implements CeilingKey/HigherKey with gap locking. On a
// range-striped map the query walks stripes upward from k's interval
// (walkUp), laying an equivalent chain of per-stripe gap locks.
func (t *TransactionalSortedMap[K, V]) navigateUp(tx *stm.Tx, k K, strict bool) (K, bool) {
	if t.mask != 0 {
		if tx.IsSnapshot() {
			return t.snapshotCeiling(tx, k, strict)
		}
		return t.walkUp(tx, &k, strict)
	}
	l := t.local(tx)
	var res K
	var ok bool
	_ = tx.Open(func(o *stm.Tx) error {
		t.guard0().Lock()
		defer t.guard0().Unlock()
		h := o.Handle()
		res, ok = t.mergedCeilingLocked(l, k, strict)
		lo := k
		e := &semlock.RangeEntry[K]{Lo: &lo, LoExcl: strict, Owner: h}
		if ok {
			hi := res
			e.Hi = &hi // [k, res]: the observed gap plus the result
			t.lockKeyLocked(l, h, res)
		}
		// No result: the whole tail [k, +inf) was observed empty; the
		// unbounded range lock protects that observation.
		t.addRangeLock(l, 0, e)
		return nil
	})
	tx.Thread().Clock.Tick(t.opCost)
	return res, ok
}

// navigateDown implements FloorKey/LowerKey with gap locking (striped:
// a downward stripe-walk, see navigateUp).
func (t *TransactionalSortedMap[K, V]) navigateDown(tx *stm.Tx, k K, strict bool) (K, bool) {
	if t.mask != 0 {
		if tx.IsSnapshot() {
			return t.snapshotFloor(tx, k, strict)
		}
		return t.walkDown(tx, &k, strict)
	}
	l := t.local(tx)
	var res K
	var ok bool
	_ = tx.Open(func(o *stm.Tx) error {
		t.guard0().Lock()
		defer t.guard0().Unlock()
		h := o.Handle()
		res, ok = t.mergedFloorLocked(l, k, strict)
		hi := k
		e := &semlock.RangeEntry[K]{Hi: &hi, HiExcl: strict, Owner: h}
		if ok {
			lo := res
			e.Lo = &lo // [res, k]
			t.lockKeyLocked(l, h, res)
		}
		t.addRangeLock(l, 0, e)
		return nil
	})
	tx.Thread().Clock.Tick(t.opCost)
	return res, ok
}

// CeilingKey returns the smallest key >= k as seen by tx, locking the
// result key and the gap [k, result] it observed.
func (t *TransactionalSortedMap[K, V]) CeilingKey(tx *stm.Tx, k K) (K, bool) {
	return t.navigateUp(tx, k, false)
}

// HigherKey returns the smallest key > k as seen by tx; a concurrent
// write exactly at k does not conflict.
func (t *TransactionalSortedMap[K, V]) HigherKey(tx *stm.Tx, k K) (K, bool) {
	return t.navigateUp(tx, k, true)
}

// FloorKey returns the largest key <= k as seen by tx, locking the
// result key and the gap [result, k].
func (t *TransactionalSortedMap[K, V]) FloorKey(tx *stm.Tx, k K) (K, bool) {
	return t.navigateDown(tx, k, false)
}

// LowerKey returns the largest key < k as seen by tx.
func (t *TransactionalSortedMap[K, V]) LowerKey(tx *stm.Tx, k K) (K, bool) {
	return t.navigateDown(tx, k, true)
}
