package core

import (
	"sync"
	"testing"

	"tcc/internal/stm"
)

// TestStripedStructuresAcrossProtocols is the protocol-conformance
// pass: every registered concurrency-control protocol must preserve the
// striped structures' invariants under concurrent mixed load (this file
// runs under -race in verify.sh). Each worker hammers its own key
// interval of a range-striped sorted map and its own lane of a
// segmented queue, with periodic cross-stripe scans and steals thrown
// in so the multi-guard paths run under every protocol too.
func TestStripedStructuresAcrossProtocols(t *testing.T) {
	for _, proto := range stm.Protocols() {
		t.Run(proto, func(t *testing.T) {
			tm := newRangeStripedIntSortedMap(4)
			q := newSegmentedQueue(4)
			const workers, opsPer = 4, 40
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					th := newLaneTh(int64(w+1), w)
					if err := th.SetProtocol(proto); err != nil {
						t.Error(err)
						return
					}
					base := w * 16 // worker w owns interval stripe w's keys
					for i := 0; i < opsPer; i++ {
						err := th.Atomic(func(tx *stm.Tx) error {
							k := base + i%16
							tm.Put(tx, k, k)
							q.Put(tx, w*opsPer+i)
							if i%8 == 3 {
								tm.Remove(tx, k)
							}
							if i%10 == 7 { // cross-stripe paths
								tm.FirstKey(tx)
								tm.CeilingKey(tx, base-5)
								q.Poll(tx)
							}
							return nil
						})
						if err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			// Post-conditions: the map's committed contents are a sorted,
			// duplicate-free set entirely within [0, 64); puts minus polls
			// matches the queue's committed size.
			th := newTh(99)
			if err := th.SetProtocol(proto); err != nil {
				t.Fatal(err)
			}
			atomically(t, th, func(tx *stm.Tx) {
				keys := tm.Keys(tx)
				for i, k := range keys {
					if k < 0 || k >= 64 {
						t.Errorf("key %d out of range", k)
					}
					if i > 0 && keys[i-1] >= k {
						t.Errorf("keys out of order at %d: %v", i, keys)
					}
					if v, ok := tm.Get(tx, k); !ok || v != k {
						t.Errorf("Get(%d) = (%d,%v)", k, v, ok)
					}
				}
				if got := tm.Size(tx); got != len(keys) {
					t.Errorf("Size = %d, Keys len = %d", got, len(keys))
				}
				// Drain the queue and check no element is lost or doubled.
				seen := make(map[int]bool)
				for {
					v, ok := q.Poll(tx)
					if !ok {
						break
					}
					if seen[v] {
						t.Errorf("value %d dequeued twice", v)
					}
					seen[v] = true
				}
				_ = seen
			})
		})
	}
}
