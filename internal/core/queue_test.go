package core

import (
	"errors"
	"sync"
	"testing"

	"tcc/internal/collections"
	"tcc/internal/stm"
)

func newQueue() *TransactionalQueue[int] {
	return NewTransactionalQueue[int](collections.NewLinkedQueue[int]())
}

func TestQueuePutCommitsAtEnd(t *testing.T) {
	q := newQueue()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		q.Put(tx, 1)
		q.Put(tx, 2)
		// Not yet committed: other transactions can't see them, but the
		// committed queue is also still empty.
		if q.CommittedSize() != 0 {
			t.Error("puts visible before commit")
		}
	})
	if q.CommittedSize() != 2 {
		t.Fatalf("committed size = %d, want 2", q.CommittedSize())
	}
}

func TestQueuePutAbortDiscards(t *testing.T) {
	q := newQueue()
	th := newTh(1)
	boom := errors.New("boom")
	_ = th.Atomic(func(tx *stm.Tx) error {
		q.Put(tx, 1)
		return boom
	})
	if q.CommittedSize() != 0 {
		t.Fatal("aborted put leaked into queue")
	}
}

func TestQueueTakeIsCompensatedOnAbort(t *testing.T) {
	q := newQueue()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) { q.Put(tx, 42) })
	boom := errors.New("boom")
	_ = th.Atomic(func(tx *stm.Tx) error {
		v, ok := q.Poll(tx)
		if !ok || v != 42 {
			t.Errorf("poll = (%d,%v)", v, ok)
		}
		// Reduced isolation: the element is already gone globally.
		if q.CommittedSize() != 0 {
			t.Error("take did not remove eagerly")
		}
		return boom
	})
	// Compensation must have returned the element.
	if q.CommittedSize() != 1 {
		t.Fatalf("committed size after abort = %d, want 1", q.CommittedSize())
	}
	atomically(t, th, func(tx *stm.Tx) {
		if v, ok := q.Poll(tx); !ok || v != 42 {
			t.Errorf("element lost after compensation: (%d,%v)", v, ok)
		}
	})
}

func TestQueuePollOwnBufferedAdds(t *testing.T) {
	q := newQueue()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		q.Put(tx, 7)
		if v, ok := q.Poll(tx); !ok || v != 7 {
			t.Errorf("poll own add = (%d,%v)", v, ok)
		}
		if _, ok := q.Poll(tx); ok {
			t.Error("second poll found phantom element")
		}
	})
	if q.CommittedSize() != 0 {
		t.Fatal("self-consumed element committed")
	}
}

func TestQueuePeekDoesNotRemove(t *testing.T) {
	q := newQueue()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) { q.Put(tx, 9) })
	atomically(t, th, func(tx *stm.Tx) {
		if v, ok := q.Peek(tx); !ok || v != 9 {
			t.Errorf("peek = (%d,%v)", v, ok)
		}
		if v, ok := q.Peek(tx); !ok || v != 9 {
			t.Errorf("second peek = (%d,%v)", v, ok)
		}
	})
	if q.CommittedSize() != 1 {
		t.Fatal("peek removed the element")
	}
}

func TestQueueEmptyPollTakesEmptyLock(t *testing.T) {
	q := newQueue()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		if _, ok := q.Poll(tx); ok {
			t.Error("poll on empty queue succeeded")
		}
		q.lanes[0].guard.Lock()
		n := q.lanes[0].emptyLockers.Len()
		q.lanes[0].guard.Unlock()
		if n != 1 {
			t.Error("null poll did not take the empty lock")
		}
	})
	q.lanes[0].guard.Lock()
	n := q.lanes[0].emptyLockers.Len()
	q.lanes[0].guard.Unlock()
	if n != 0 {
		t.Error("empty lock leaked after commit")
	}
}

func TestQueueTakeBlocksUntilProducer(t *testing.T) {
	q := newQueue()
	got := make(chan int)
	go func() {
		th := newTh(1)
		var v int
		must(t, th.Atomic(func(tx *stm.Tx) error {
			v = q.Take(tx)
			return nil
		}))
		got <- v
	}()
	th := newTh(2)
	atomically(t, th, func(tx *stm.Tx) { q.Put(tx, 31) })
	if v := <-got; v != 31 {
		t.Fatalf("take = %d, want 31", v)
	}
}

// TestQueueNoLostOrDuplicatedWork drives producers and consumers
// concurrently (with some consumer transactions aborting after taking
// work) and checks that every element is consumed exactly once —
// compensation must neither lose nor duplicate work items.
func TestQueueNoLostOrDuplicatedWork(t *testing.T) {
	q := newQueue()
	const producers, per = 3, 60
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := newTh(int64(p))
			for i := 0; i < per; i++ {
				must(t, th.Atomic(func(tx *stm.Tx) error {
					q.Put(tx, p*per+i)
					return nil
				}))
			}
		}(p)
	}
	wg.Wait()

	var mu sync.Mutex
	consumed := map[int]int{}
	boom := errors.New("simulated failure")
	var cg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func(c int) {
			defer cg.Done()
			th := newTh(int64(100 + c))
			i := 0
			for {
				var v int
				var ok bool
				err := th.Atomic(func(tx *stm.Tx) error {
					v, ok = q.Poll(tx)
					if !ok {
						return nil
					}
					i++
					if i%5 == 0 {
						return boom // abort: element must be returned
					}
					return nil
				})
				if err == boom {
					continue
				}
				must(t, err)
				if !ok {
					return
				}
				mu.Lock()
				consumed[v]++
				mu.Unlock()
			}
		}(c)
	}
	cg.Wait()
	if len(consumed) != producers*per {
		t.Fatalf("consumed %d distinct items, want %d", len(consumed), producers*per)
	}
	for v, n := range consumed {
		if n != 1 {
			t.Fatalf("item %d consumed %d times", v, n)
		}
	}
	if q.CommittedSize() != 0 {
		t.Fatalf("queue not drained: %d left", q.CommittedSize())
	}
}

func TestCounterCompensation(t *testing.T) {
	c := NewCounter(0)
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		c.Add(tx, 5)
		c.Add(tx, 3)
		// Open-nested effect: visible immediately.
		if got := c.Value(); got != 8 {
			t.Errorf("mid-tx value = %d, want 8", got)
		}
	})
	if c.Value() != 8 {
		t.Fatalf("value = %d", c.Value())
	}
	boom := errors.New("boom")
	_ = th.Atomic(func(tx *stm.Tx) error {
		c.Add(tx, 100)
		return boom
	})
	if c.Value() != 8 {
		t.Fatalf("abort compensation failed: value = %d, want 8", c.Value())
	}
}

func TestCounterConcurrentAddsNeverConflict(t *testing.T) {
	c := NewCounter(0)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	var mu sync.Mutex
	var retries uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := newTh(int64(w))
			for i := 0; i < per; i++ {
				must(t, th.Atomic(func(tx *stm.Tx) error {
					c.Add(tx, 1)
					return nil
				}))
			}
			mu.Lock()
			retries += th.Stats.Aborts + th.Stats.Violations
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if retries != 0 {
		t.Errorf("open-nested counter increments caused %d rollbacks", retries)
	}
}

func TestUIDGenUniqueMonotonicWithGaps(t *testing.T) {
	g := NewUIDGen(1)
	th := newTh(1)
	var ids []int64
	atomically(t, th, func(tx *stm.Tx) {
		ids = append(ids, g.Next(tx), g.Next(tx))
	})
	boom := errors.New("boom")
	_ = th.Atomic(func(tx *stm.Tx) error {
		g.Next(tx) // consumed and skipped: no compensation
		return boom
	})
	atomically(t, th, func(tx *stm.Tx) {
		ids = append(ids, g.Next(tx))
	})
	if ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("ids = %v", ids)
	}
	if ids[2] != 4 {
		t.Fatalf("expected gap after aborted transaction: ids = %v", ids)
	}
}

func TestUIDGenConcurrentUnique(t *testing.T) {
	g := NewUIDGen(0)
	const workers, per = 6, 100
	var mu sync.Mutex
	seen := map[int64]bool{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := newTh(int64(w))
			for i := 0; i < per; i++ {
				var id int64
				must(t, th.Atomic(func(tx *stm.Tx) error {
					id = g.Next(tx)
					return nil
				}))
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate id %d", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(seen) != workers*per {
		t.Fatalf("got %d ids, want %d", len(seen), workers*per)
	}
}
