package core

import (
	"tcc/internal/stm"
)

// Snapshot-mode reads (DESIGN.md §4.4). A transaction on the MVCC-lite
// snapshot path (stm.Thread.AtomicRead / stm.Tx.SetReadOnly) cannot use
// the collection protocol of Tables 2/3: it takes no semantic locks,
// registers no handlers, and never aborts — so there is no commit
// window in which a conflicting writer could violate it, and nothing to
// compensate. Instead every read-only operation is answered directly
// from the committed structure under the stripe guard(s) it needs:
//
//   - Get/ContainsKey lock one stripe guard, read the committed shard,
//     and unlock — no key lock, no open-nested child.
//   - Size/IsEmpty/Iterator pin every stripe guard at once
//     (lockGuards), so a whole-map answer can never observe half of a
//     multi-stripe commit.
//
// Consistency caveat: unlike stm.Var reads — which the snapshot path
// serializes at one read version via the per-var history chain — the
// committed state of a collection is unversioned, so each collection
// operation is linearizable on its own but a *sequence* of collection
// operations inside one snapshot transaction may observe different
// commits. A single Size, a single Get, or one Iterator walk is an
// atomic view; comparing two of them is not. Read-mostly workloads that
// need a multi-operation collection snapshot should stay on the retry
// path (plain Atomic), which buys full serializability with semantic
// locks. This is the same trade the paper's §5.1 "alternatives"
// discussion prices: the snapshot path removes all read-side aborts and
// lock-table traffic in exchange for per-operation (rather than
// per-transaction) atomicity on collections.

// snapshotGet answers Get for a snapshot transaction: the committed
// mapping, read under k's stripe guard only.
func (tm *TransactionalMap[K, V]) snapshotGet(tx *stm.Tx, k K) (V, bool) {
	st := tm.stripes[tm.StripeOf(k)]
	st.guard.Lock()
	v, ok := st.m.Get(k)
	st.guard.Unlock()
	tx.Thread().Clock.Tick(tm.opCost)
	return v, ok
}

// snapshotSize answers Size for a snapshot transaction: the committed
// size summed with every stripe guard held, so a multi-stripe commit is
// either fully counted or not at all.
func (tm *TransactionalMap[K, V]) snapshotSize(tx *stm.Tx) int {
	tm.lockGuards()
	n := 0
	for _, st := range tm.stripes {
		n += st.m.Size()
	}
	tm.unlockGuards()
	tx.Thread().Clock.Tick(tm.opCost)
	return n
}

// snapshotIterator answers Iterator for a snapshot transaction: the
// committed entries are frozen at creation under all stripe guards, and
// enumeration walks the frozen slice with no further locking. The walk
// is one atomic view of the map (see the caveat above for sequences).
func (tm *TransactionalMap[K, V]) snapshotIterator(tx *stm.Tx) *MapIterator[K, V] {
	it := &MapIterator[K, V]{frozen: true}
	tm.lockGuards()
	for _, st := range tm.stripes {
		for _, k := range st.m.Keys() {
			if v, ok := st.m.Get(k); ok {
				it.entries = append(it.entries, mapEntry[K, V]{Key: k, Val: v})
			}
		}
	}
	tm.unlockGuards()
	tx.Thread().Clock.Tick(tm.opCost)
	return it
}
