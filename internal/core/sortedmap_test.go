package core

import (
	"sync"
	"testing"

	"tcc/internal/collections"
	"tcc/internal/stm"
)

func newSorted() *TransactionalSortedMap[int, int] {
	return NewTransactionalSortedMap[int, int](collections.NewTreeMap[int, int]())
}

func TestSortedMapBasics(t *testing.T) {
	tm := newSorted()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		if _, ok := tm.FirstKey(tx); ok {
			t.Error("FirstKey on empty map succeeded")
		}
		for _, k := range []int{30, 10, 20} {
			tm.Put(tx, k, k*10)
		}
		if k, ok := tm.FirstKey(tx); !ok || k != 10 {
			t.Errorf("first = (%d,%v)", k, ok)
		}
		if k, ok := tm.LastKey(tx); !ok || k != 30 {
			t.Errorf("last = (%d,%v)", k, ok)
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		ks := tm.Keys(tx)
		if len(ks) != 3 || ks[0] != 10 || ks[1] != 20 || ks[2] != 30 {
			t.Fatalf("keys = %v", ks)
		}
	})
}

func TestSortedMapMergedEndpoints(t *testing.T) {
	tm := newSorted()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		tm.Put(tx, 10, 1)
		tm.Put(tx, 20, 2)
	})
	atomically(t, th, func(tx *stm.Tx) {
		// Buffered additions and removals shift the endpoints this
		// transaction sees.
		tm.Put(tx, 5, 0) // buffered new minimum
		if k, _ := tm.FirstKey(tx); k != 5 {
			t.Errorf("first with buffered add = %d, want 5", k)
		}
		tm.Remove(tx, 20) // buffered removal of the maximum
		if k, _ := tm.LastKey(tx); k != 10 {
			t.Errorf("last with buffered remove = %d, want 10", k)
		}
	})
	// Aborted, so committed endpoints unchanged... (that tx committed;
	// verify the commit applied the buffer).
	atomically(t, th, func(tx *stm.Tx) {
		if k, _ := tm.FirstKey(tx); k != 5 {
			t.Errorf("committed first = %d", k)
		}
		if k, _ := tm.LastKey(tx); k != 10 {
			t.Errorf("committed last = %d", k)
		}
	})
}

func TestSortedIterationOrderWithBuffer(t *testing.T) {
	tm := newSorted()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		for _, k := range []int{10, 20, 30, 40} {
			tm.Put(tx, k, k)
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		tm.Put(tx, 15, 15) // buffered insert between committed keys
		tm.Remove(tx, 30)  // buffered removal
		tm.Put(tx, 40, 44) // buffered overwrite
		tm.Put(tx, 50, 50) // buffered append
		var got []int
		tm.ForEach(tx, func(k, v int) bool {
			got = append(got, k)
			if k == 40 && v != 44 {
				t.Errorf("overwritten value not seen: %d", v)
			}
			return true
		})
		want := []int{10, 15, 20, 40, 50}
		if len(got) != len(want) {
			t.Fatalf("iteration = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iteration = %v, want %v", got, want)
			}
		}
	})
}

func TestSubMapViewIteration(t *testing.T) {
	tm := newSorted()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		for i := 0; i < 100; i += 10 {
			tm.Put(tx, i, i)
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		v := tm.SubMap(25, 65)
		got := v.Keys(tx)
		want := []int{30, 40, 50, 60}
		if len(got) != len(want) {
			t.Fatalf("submap keys = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("submap keys = %v, want %v", got, want)
			}
		}
		if got := tm.HeadMap(30).Keys(tx); len(got) != 3 {
			t.Fatalf("headmap keys = %v", got)
		}
		if got := tm.TailMap(70).Keys(tx); len(got) != 3 {
			t.Fatalf("tailmap keys = %v", got)
		}
	})
}

func TestViewRangeChecks(t *testing.T) {
	tm := newSorted()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) { tm.Put(tx, 10, 10) })
	atomically(t, th, func(tx *stm.Tx) {
		v := tm.SubMap(0, 20)
		if _, ok := v.Get(tx, 10); !ok {
			t.Error("in-range get failed")
		}
		v.Put(tx, 5, 5)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			v.Get(tx, 25)
		}()
	})
}

func TestSubMapMedianLookup(t *testing.T) {
	// The TestSortedMap benchmark's access pattern: read a small range,
	// take the median key.
	tm := newSorted()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		for i := 0; i < 50; i++ {
			tm.Put(tx, i, i*i)
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		keys := tm.SubMap(10, 20).Keys(tx)
		if len(keys) != 10 {
			t.Fatalf("range size %d", len(keys))
		}
		median := keys[len(keys)/2]
		if v, ok := tm.Get(tx, median); !ok || v != median*median {
			t.Fatalf("median get = (%d,%v)", v, ok)
		}
	})
}

// TestSortedConcurrentDisjointInsertsCommute mirrors Figure 2's claim:
// inserts of different keys into a tree must not semantically conflict,
// despite rebalancing, because the wrapper confines structure access to
// open-nested sections.
func TestSortedConcurrentDisjointInsertsCommute(t *testing.T) {
	tm := newSorted()
	const workers, per = 8, 80
	var wg sync.WaitGroup
	var mu sync.Mutex
	var violations uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := newTh(int64(w))
			for i := 0; i < per; i++ {
				k := i*workers + w
				must(t, th.Atomic(func(tx *stm.Tx) error {
					tm.Put(tx, k, k)
					return nil
				}))
			}
			mu.Lock()
			violations += th.Stats.Violations
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if violations != 0 {
		t.Errorf("disjoint inserts caused %d violations", violations)
	}
	th := newTh(99)
	atomically(t, th, func(tx *stm.Tx) {
		ks := tm.Keys(tx)
		if len(ks) != workers*per {
			t.Fatalf("lost inserts: %d keys", len(ks))
		}
		for i := 1; i < len(ks); i++ {
			if ks[i-1] >= ks[i] {
				t.Fatalf("order violated at %d", i)
			}
		}
	})
}

// TestSortedRangeScanInvariant: writers move values between adjacent
// keys while scanners sum a range; serializability demands scanners
// always see the conserved total.
func TestSortedRangeScanInvariant(t *testing.T) {
	tm := newSorted()
	th0 := newTh(0)
	const n = 8
	const total = n * 100
	atomically(t, th0, func(tx *stm.Tx) {
		for i := 0; i < n; i++ {
			tm.Put(tx, i, 100)
		}
	})
	var writers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			th := newTh(int64(w + 1))
			for i := 0; i < 120; i++ {
				a := (w*3 + i) % n
				b := (a + 1) % n
				must(t, th.Atomic(func(tx *stm.Tx) error {
					x, _ := tm.Get(tx, a)
					y, _ := tm.Get(tx, b)
					tm.Put(tx, a, x-5)
					tm.Put(tx, b, y+5)
					return nil
				}))
			}
		}(w)
	}
	var checker sync.WaitGroup
	checker.Add(1)
	go func() {
		defer checker.Done()
		th := newTh(42)
		for {
			select {
			case <-stop:
				return
			default:
			}
			sum := 0
			must(t, th.Atomic(func(tx *stm.Tx) error {
				sum = 0
				tm.ForEach(tx, func(_, v int) bool {
					sum += v
					return true
				})
				return nil
			}))
			if sum != total {
				t.Errorf("scan saw %d, want %d", sum, total)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	checker.Wait()
}

func TestSortedSetWrapper(t *testing.T) {
	s := NewTransactionalSortedSet[int](func(a, b int) int { return a - b })
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		for _, k := range []int{5, 1, 9, 3} {
			s.Add(tx, k)
		}
		if k, _ := s.First(tx); k != 1 {
			t.Errorf("first = %d", k)
		}
		if k, _ := s.Last(tx); k != 9 {
			t.Errorf("last = %d", k)
		}
		var got []int
		s.ForEach(tx, func(k int) bool {
			got = append(got, k)
			return true
		})
		if len(got) != 4 || got[0] != 1 || got[3] != 9 {
			t.Fatalf("elements = %v", got)
		}
		if s.Size(tx) != 4 || s.IsEmpty(tx) {
			t.Error("size/empty wrong")
		}
		if !s.Remove(tx, 5) || s.Contains(tx, 5) {
			t.Error("remove failed")
		}
	})
}
