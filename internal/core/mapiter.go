package core

import (
	"tcc/internal/stm"
)

// MapIterator enumerates a TransactionalMap's entries as seen by one
// transaction: committed entries merged with the transaction's buffered
// writes (paper §3.1: "the iterators need to both enumerate the
// underlying map with modifications for new or deleted values from the
// storeBuffer and enumerate the storeBuffer for newly added keys").
//
// Locking follows Table 2: each returned key is key-locked by Next, and
// a HasNext that answers false takes the size lock — a transaction that
// enumerated the whole map has observed its size, so any committing
// insert or remove must abort it.
//
// Buffered writes performed *after* the iterator is created have
// undefined visibility, as with java.util iterators.
type MapIterator[K comparable, V any] struct {
	tm *TransactionalMap[K, V]
	tx *stm.Tx
	l  *mapLocal[K, V]
	// snapshot holds the committed keys at creation; values are re-read
	// fresh under the key lock when returned, and keys removed by other
	// committed transactions since the snapshot are skipped.
	snapshot []K
	i        int
	// extras holds buffered-added keys absent from the snapshot.
	extras []K
	j      int
	// pending is the prefetched next entry (HasNext peeks by advancing).
	pending *mapEntry[K, V]
	done    bool
	// frozen marks a snapshot-mode iterator: entries holds the whole
	// committed view captured at creation (snapshotIterator), tm/tx/l
	// are nil, and enumeration takes no locks at all.
	frozen  bool
	entries []mapEntry[K, V]
}

// mapEntry is one key/value pair returned by an iterator.
type mapEntry[K comparable, V any] struct {
	Key K
	Val V
}

// Iterator creates an iterator over the map's entries as seen by tx.
// Enumeration order is implementation-defined (like HashMap's).
//
// The committed-keys snapshot is taken with every stripe guard held at
// once (lockGuards): a stripe-at-a-time scan could observe half of a
// multi-stripe commit — its insert on a later stripe but not its insert
// on an earlier one — with no violation to save it, since enumeration
// takes no lock that such a commit sweeps until the keys are visited.
func (tm *TransactionalMap[K, V]) Iterator(tx *stm.Tx) *MapIterator[K, V] {
	if tx.IsSnapshot() {
		return tm.snapshotIterator(tx)
	}
	l := tm.local(tx)
	tm.touchAll(tx, l)
	//stmlint:ignore tx-escape iterator is per-transaction local state (Table 2) and documented not to outlive tx
	it := &MapIterator[K, V]{tm: tm, tx: tx, l: l}
	_ = tx.Open(func(o *stm.Tx) error {
		tm.lockGuards()
		defer tm.unlockGuards()
		for _, st := range tm.stripes {
			it.snapshot = append(it.snapshot, st.m.Keys()...)
		}
		inSnapshot := make(map[K]struct{}, len(it.snapshot))
		for _, k := range it.snapshot {
			inSnapshot[k] = struct{}{}
		}
		for k, w := range l.storeBuffer {
			if _, ok := inSnapshot[k]; !ok && !w.removed {
				it.extras = append(it.extras, k)
			}
		}
		return nil
	})
	tx.Thread().Clock.Tick(tm.opCost)
	return it
}

// advance finds the next live entry, taking its key lock and reading
// its value fresh under the instance lock.
func (it *MapIterator[K, V]) advance() (K, V, bool) {
	tm, l := it.tm, it.l
	for it.i < len(it.snapshot) {
		k := it.snapshot[it.i]
		it.i++
		if w, ok := l.storeBuffer[k]; ok && w.removed {
			continue
		}
		var val V
		var live bool
		st := tm.stripes[tm.StripeOf(k)]
		_ = it.tx.Open(func(o *stm.Tx) error {
			st.guard.Lock()
			defer st.guard.Unlock()
			tm.lockKeyLocked(l, o.Handle(), k)
			if w, ok := l.storeBuffer[k]; ok {
				val, live = w.val, !w.removed
			} else {
				val, live = st.m.Get(k)
			}
			return nil
		})
		it.tx.Thread().Clock.Tick(tm.opCost)
		if !live {
			// Removed by another committed transaction since the
			// snapshot; the key lock we now hold preserves the
			// observation of its absence.
			continue
		}
		return k, val, true
	}
	for it.j < len(it.extras) {
		k := it.extras[it.j]
		it.j++
		w, ok := l.storeBuffer[k]
		if !ok || w.removed {
			continue
		}
		st := tm.stripes[tm.StripeOf(k)]
		_ = it.tx.Open(func(o *stm.Tx) error {
			st.guard.Lock()
			defer st.guard.Unlock()
			tm.lockKeyLocked(l, o.Handle(), k)
			return nil
		})
		return k, w.val, true
	}
	var zk K
	var zv V
	return zk, zv, false
}

// HasNext reports whether another entry exists; a false answer reveals
// the map's size, so it takes the size lock.
func (it *MapIterator[K, V]) HasNext() bool {
	if it.frozen {
		return it.i < len(it.entries)
	}
	if it.done {
		return false
	}
	if it.pending != nil {
		return true
	}
	k, v, ok := it.advance()
	if !ok {
		it.done = true
		tm, l := it.tm, it.l
		_ = it.tx.Open(func(o *stm.Tx) error {
			h := o.Handle()
			for _, st := range tm.stripes {
				st.guard.Lock()
				st.sizeLockers.Lock(h)
				st.guard.Unlock()
			}
			l.sizeLocked = true
			return nil
		})
		return false
	}
	it.pending = &mapEntry[K, V]{Key: k, Val: v}
	return true
}

// Next returns the next entry; ok is false when the iteration is
// exhausted.
func (it *MapIterator[K, V]) Next() (k K, v V, ok bool) {
	if !it.HasNext() {
		return k, v, false
	}
	if it.frozen {
		e := it.entries[it.i]
		it.i++
		return e.Key, e.Val, true
	}
	e := it.pending
	it.pending = nil
	return e.Key, e.Val, true
}

// ForEach enumerates every entry via an iterator (taking key locks on
// each entry and, on completion, the size lock) until fn returns false.
func (tm *TransactionalMap[K, V]) ForEach(tx *stm.Tx, fn func(k K, v V) bool) {
	it := tm.Iterator(tx)
	for {
		k, v, ok := it.Next()
		if !ok {
			return
		}
		if !fn(k, v) {
			return
		}
	}
}

// Keys returns all keys as seen by tx (a full enumeration).
func (tm *TransactionalMap[K, V]) Keys(tx *stm.Tx) []K {
	var out []K
	tm.ForEach(tx, func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Values returns all values as seen by tx (a full enumeration, like
// java.util.Map.values()).
func (tm *TransactionalMap[K, V]) Values(tx *stm.Tx) []V {
	var out []V
	tm.ForEach(tx, func(_ K, v V) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Entry is one key/value pair returned by Entries.
type Entry[K comparable, V any] struct {
	Key K
	Val V
}

// Entries returns every mapping as seen by tx (entrySet()).
func (tm *TransactionalMap[K, V]) Entries(tx *stm.Tx) []Entry[K, V] {
	var out []Entry[K, V]
	tm.ForEach(tx, func(k K, v V) bool {
		out = append(out, Entry[K, V]{Key: k, Val: v})
		return true
	})
	return out
}

// Clear removes every mapping, as the derivative operation the paper's
// categorization implies: a full enumeration (key locks on every entry
// plus the size lock) followed by buffered removals.
func (tm *TransactionalMap[K, V]) Clear(tx *stm.Tx) {
	for _, k := range tm.Keys(tx) {
		tm.Remove(tx, k)
	}
}

// GetOrDefault returns the mapped value, or def when k is unmapped; the
// key lock is taken either way.
func (tm *TransactionalMap[K, V]) GetOrDefault(tx *stm.Tx, k K, def V) V {
	if v, ok := tm.Get(tx, k); ok {
		return v
	}
	return def
}
