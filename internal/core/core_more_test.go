package core

import (
	"errors"
	"sort"
	"sync"
	"testing"

	"tcc/internal/collections"
	"tcc/internal/stm"
)

func TestMapValuesEntriesClear(t *testing.T) {
	tm := newIntMap()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		for i := 0; i < 5; i++ {
			tm.Put(tx, i, i*10)
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		vals := tm.Values(tx)
		sort.Ints(vals)
		if len(vals) != 5 || vals[0] != 0 || vals[4] != 40 {
			t.Fatalf("values = %v", vals)
		}
		es := tm.Entries(tx)
		if len(es) != 5 {
			t.Fatalf("entries = %v", es)
		}
		for _, e := range es {
			if e.Val != e.Key*10 {
				t.Fatalf("entry %+v", e)
			}
		}
		if got := tm.GetOrDefault(tx, 2, -1); got != 20 {
			t.Fatalf("getOrDefault hit = %d", got)
		}
		if got := tm.GetOrDefault(tx, 99, -1); got != -1 {
			t.Fatalf("getOrDefault miss = %d", got)
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		tm.Clear(tx)
		if !tm.IsEmpty(tx) {
			t.Fatal("clear left entries in this transaction's view")
		}
	})
	atomically(t, th, func(tx *stm.Tx) {
		if n := tm.Size(tx); n != 0 {
			t.Fatalf("committed size after clear = %d", n)
		}
	})
}

func TestIteratorOnEmptyMap(t *testing.T) {
	tm := newIntMap()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		it := tm.Iterator(tx)
		if it.HasNext() {
			t.Fatal("empty map has next")
		}
		if _, _, ok := it.Next(); ok {
			t.Fatal("Next on empty iterator succeeded")
		}
		// HasNext()==false on an empty map still reveals the size.
		tm.lockGuards()
		n := tm.stripes[0].sizeLockers.Len()
		tm.unlockGuards()
		if n != 1 {
			t.Fatal("exhausted empty iterator must hold the size lock")
		}
	})
}

func TestIteratorAllEntriesBufferedRemoved(t *testing.T) {
	tm := newIntMap()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		tm.Put(tx, 1, 1)
		tm.Put(tx, 2, 2)
	})
	atomically(t, th, func(tx *stm.Tx) {
		tm.Remove(tx, 1)
		tm.Remove(tx, 2)
		count := 0
		tm.ForEach(tx, func(int, int) bool {
			count++
			return true
		})
		if count != 0 {
			t.Fatalf("iterated %d entries through own removals", count)
		}
	})
}

func TestIteratorBufferedOnly(t *testing.T) {
	tm := newIntMap()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		tm.Put(tx, 7, 70)
		tm.PutUnread(tx, 8, 80)
		got := map[int]int{}
		tm.ForEach(tx, func(k, v int) bool {
			got[k] = v
			return true
		})
		if len(got) != 2 || got[7] != 70 || got[8] != 80 {
			t.Fatalf("buffered-only iteration = %v", got)
		}
	})
}

func TestSortedIteratorOnEmptyMap(t *testing.T) {
	tm := newSorted()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		it := tm.Iterator(tx)
		if it.HasNext() {
			t.Fatal("empty sorted map has next")
		}
		// Unbounded exhaustion takes the last lock.
		tm.lockGuards()
		held := tm.sorted.lastLockers.Len()
		tm.unlockGuards()
		if held != 1 {
			t.Fatal("exhausted unbounded iterator must hold the last lock")
		}
	})
}

func TestSortedEmptyViewTakesRangeLock(t *testing.T) {
	tm := newSorted()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		tm.Put(tx, 100, 1)
	})
	// A view over an empty range, fully drained, must lock that range
	// so an insert into it conflicts.
	{
		parked := make(chan struct{})
		release := make(chan struct{})
		done := make(chan error, 1)
		attempts := 0
		go func() {
			th1 := newTh(2)
			done <- th1.Atomic(func(tx *stm.Tx) error {
				attempts = tx.Attempt() + 1
				it := tm.SubMap(10, 20).Iterator(tx)
				if it.HasNext() && tx.Attempt() == 0 {
					t.Error("view [10,20) should be empty")
				}
				if tx.Attempt() == 0 {
					parked <- struct{}{}
					<-release
				}
				return nil
			})
		}()
		<-parked
		th2 := newTh(3)
		atomically(t, th2, func(tx *stm.Tx) { tm.Put(tx, 15, 15) })
		close(release)
		must(t, <-done)
		if attempts < 2 {
			t.Fatal("insert into drained empty view did not conflict")
		}
	}
}

func TestEagerWriteCheckStillSerializable(t *testing.T) {
	// The pessimistic variant must preserve the same end state for
	// concurrent read-modify-writes.
	tm := newIntMap()
	tm.SetEagerWriteCheck(true)
	th0 := newTh(0)
	atomically(t, th0, func(tx *stm.Tx) { tm.Put(tx, 0, 0) })
	const workers, per = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := newTh(int64(w + 1))
			for i := 0; i < per; i++ {
				must(t, th.Atomic(func(tx *stm.Tx) error {
					v, _ := tm.Get(tx, 0)
					tm.Put(tx, 0, v+1)
					return nil
				}))
			}
		}(w)
	}
	wg.Wait()
	atomically(t, th0, func(tx *stm.Tx) {
		if v, _ := tm.Get(tx, 0); v != workers*per {
			t.Fatalf("eager counter = %d, want %d", v, workers*per)
		}
	})
}

func TestEagerWriteCheckAbortsReaderEarly(t *testing.T) {
	tm := newIntMap()
	tm.SetEagerWriteCheck(true)
	th0 := newTh(0)
	atomically(t, th0, func(tx *stm.Tx) { tm.Put(tx, 1, 1) })

	parked := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	attempts := 0
	go func() {
		th1 := newTh(1)
		done <- th1.Atomic(func(tx *stm.Tx) error {
			attempts = tx.Attempt() + 1
			tm.Get(tx, 1)
			if tx.Attempt() == 0 {
				parked <- struct{}{}
				<-release
			}
			return nil
		})
	}()
	<-parked
	// The writer's Put itself (not its commit) must violate the parked
	// reader under the eager policy. The writer transaction then parks
	// *without committing*; the reader must already be violated.
	writerParked := make(chan struct{})
	writerRelease := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		th2 := newTh(2)
		writerDone <- th2.Atomic(func(tx *stm.Tx) error {
			tm.Put(tx, 1, 2)
			if tx.Attempt() == 0 {
				writerParked <- struct{}{}
				<-writerRelease
			}
			return nil
		})
	}()
	<-writerParked
	close(release) // reader resumes; its commit must observe the violation
	must(t, <-done)
	if attempts < 2 {
		t.Fatal("eager write did not abort the reader before the writer committed")
	}
	close(writerRelease)
	must(t, <-writerDone)
}

func TestQueueOfferAndCommittedSize(t *testing.T) {
	q := newQueue()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		if !q.Offer(tx, 1) {
			t.Fatal("offer on unbounded queue refused")
		}
		if !q.Offer(tx, 2) {
			t.Fatal("offer refused")
		}
	})
	if q.CommittedSize() != 2 {
		t.Fatalf("committed size = %d", q.CommittedSize())
	}
}

func TestQueueAbortAfterMixedOps(t *testing.T) {
	q := newQueue()
	th := newTh(1)
	atomically(t, th, func(tx *stm.Tx) {
		q.Put(tx, 1)
		q.Put(tx, 2)
	})
	boom := errors.New("boom")
	_ = th.Atomic(func(tx *stm.Tx) error {
		// Take a committed element, add two, take one of our own.
		if v, ok := q.Poll(tx); !ok || v != 1 {
			t.Errorf("poll = (%d,%v)", v, ok)
		}
		q.Put(tx, 10)
		q.Put(tx, 11)
		if v, ok := q.Poll(tx); !ok || v != 2 {
			// second committed element comes before own adds
			t.Errorf("second poll = (%d,%v)", v, ok)
		}
		if v, ok := q.Poll(tx); !ok || v != 10 {
			t.Errorf("third poll (own add) = (%d,%v)", v, ok)
		}
		return boom
	})
	// Abort: the two committed takes return; the own adds vanish.
	if q.CommittedSize() != 2 {
		t.Fatalf("committed size after abort = %d, want 2", q.CommittedSize())
	}
	seen := map[int]bool{}
	atomically(t, th, func(tx *stm.Tx) {
		for {
			v, ok := q.Poll(tx)
			if !ok {
				break
			}
			seen[v] = true
		}
	})
	if !seen[1] || !seen[2] || len(seen) != 2 {
		t.Fatalf("queue contents after compensation = %v", seen)
	}
}

func TestCounterGetIsReducedIsolation(t *testing.T) {
	c := NewCounter(0)
	th1, th2 := newTh(1), newTh(2)
	parked := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- th1.Atomic(func(tx *stm.Tx) error {
			c.Add(tx, 10)
			if tx.Attempt() == 0 {
				parked <- struct{}{}
				<-release
			}
			return nil
		})
	}()
	<-parked
	// Reduced isolation: th2 sees th1's uncommitted increment, and is
	// not aborted when th1 later commits.
	atomically(t, th2, func(tx *stm.Tx) {
		if got := c.Get(tx); got != 10 {
			t.Errorf("reduced-isolation read = %d, want 10", got)
		}
	})
	close(release)
	must(t, <-done)
	if th2.Stats.Violations != 0 {
		t.Fatal("counter read caused a violation")
	}
}

func TestUIDGenCurrentDoesNotConflict(t *testing.T) {
	g := NewUIDGen(100)
	th1, th2 := newTh(1), newTh(2)
	parked := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	attempts := 0
	go func() {
		done <- th1.Atomic(func(tx *stm.Tx) error {
			attempts = tx.Attempt() + 1
			if got := g.Current(tx); got < 100 {
				t.Errorf("current = %d", got)
			}
			if tx.Attempt() == 0 {
				parked <- struct{}{}
				<-release
			}
			return nil
		})
	}()
	<-parked
	atomically(t, th2, func(tx *stm.Tx) { g.Next(tx) })
	close(release)
	must(t, <-done)
	if attempts != 1 {
		t.Fatalf("Current() reader restarted %d times; it must never conflict", attempts-1)
	}
}

// TestTwoMapsComposedAtomicity moves tokens between two different
// TransactionalMaps in one transaction; a checker must always see a
// conserved cross-map total.
func TestTwoMapsComposedAtomicity(t *testing.T) {
	a := newIntMap()
	b := newIntMap()
	th0 := newTh(0)
	atomically(t, th0, func(tx *stm.Tx) {
		a.Put(tx, 0, 100)
		b.Put(tx, 0, 100)
	})
	var movers sync.WaitGroup
	stop := make(chan struct{})
	movers.Add(1)
	go func() {
		defer movers.Done()
		th := newTh(1)
		for i := 0; i < 200; i++ {
			must(t, th.Atomic(func(tx *stm.Tx) error {
				x, _ := a.Get(tx, 0)
				y, _ := b.Get(tx, 0)
				a.Put(tx, 0, x-3)
				b.Put(tx, 0, y+3)
				return nil
			}))
		}
	}()
	var checker sync.WaitGroup
	checker.Add(1)
	go func() {
		defer checker.Done()
		th := newTh(2)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var x, y int
			must(t, th.Atomic(func(tx *stm.Tx) error {
				x, _ = a.Get(tx, 0)
				y, _ = b.Get(tx, 0)
				return nil
			}))
			if x+y != 200 {
				t.Errorf("cross-map atomicity broken: %d + %d", x, y)
				return
			}
		}
	}()
	movers.Wait()
	close(stop)
	checker.Wait()
}

// TestWrapperOverTreeMapAndHashMapEquivalent: the wrapper's semantics
// must not depend on the wrapped implementation.
func TestWrapperOverTreeMapAndHashMapEquivalent(t *testing.T) {
	impls := map[string]collections.Map[int, int]{
		"hashmap": collections.NewHashMap[int, int](),
		"treemap": collections.NewTreeMap[int, int](),
	}
	for name, impl := range impls {
		t.Run(name, func(t *testing.T) {
			tm := NewTransactionalMap[int, int](impl)
			th := newTh(1)
			atomically(t, th, func(tx *stm.Tx) {
				for i := 0; i < 50; i++ {
					tm.Put(tx, i, i)
				}
				tm.Remove(tx, 25)
				if n := tm.Size(tx); n != 49 {
					t.Fatalf("size = %d", n)
				}
			})
			atomically(t, th, func(tx *stm.Tx) {
				if tm.ContainsKey(tx, 25) {
					t.Fatal("removed key present")
				}
				if n := len(tm.Keys(tx)); n != 49 {
					t.Fatalf("keys = %d", n)
				}
			})
		})
	}
}
