package stm

import "sync/atomic"

// NOrec: value-based validation over a single global sequence lock
// (Dalessandro, Spear, Scott, "NOrec: Streamlining STM by Abolishing
// Ownership Records", PPoPP 2010), adapted to this STM's boxed Vars.
//
// The protocol keeps no per-Var version traffic on the read side: a
// read is one atomic load of the variable's current value box plus one
// load of the sequence lock. The read set records the observed box;
// validation re-compares values (box pointer equality as the fast
// path), so a reader is only invalidated by commits that actually
// changed something it read. Writer commits serialize on norecSeq —
// CAS(rv → rv+1) to acquire, revalidate-on-CAS-failure, release at
// rv+2 — which makes the successful first-try CAS itself the commit
// validation: if the sequence has not moved since this transaction's
// last validation, no writer has committed, so every recorded value is
// still current.
//
// Interaction with the rest of the STM: writes are still installed
// through the per-Var lockwords, acquired before the global-clock tick
// that stamps the write version, exactly as TL2 installs — that
// preserves the MVCC-lite readAt invariant, so the snapshot path and
// GetCommitted work unchanged. SetCommitted bypasses norecSeq and is
// only safe, as documented, for single-threaded setup.
type norecProtocol struct{}

var protoNOrec Protocol = registerProtocol(norecProtocol{})

// norecSeq is the global sequence lock: even = free, odd = a writer is
// committing. Read versions under NOrec are (even) values of this
// sequence, not of the global clock.
var norecSeq atomic.Uint64

func (norecProtocol) Name() string { return "norec" }

// begin waits for a quiescent (even) sequence value and adopts it as
// the attempt's read version.
func (norecProtocol) begin(t *Thread) uint64 {
	for {
		s := norecSeq.Load()
		if s&1 == 0 {
			return s
		}
		t.Clock.Wait(4)
	}
}

// read loads the variable's current box — immutable, so one atomic
// load yields a coherent (value, version) pair — and post-validates
// against the sequence lock: if any writer committed since this
// transaction's read version, every recorded value is re-compared and
// the read version moves forward (or the attempt aborts).
func (norecProtocol) read(tx *Tx, c *varCore) any {
	box := c.val.Load()
	for tx.readVersion != norecSeq.Load() {
		if !norecExtend(tx) {
			tx.bail(sigRetry, "stale read")
		}
		box = c.val.Load()
	}
	tx.cur.reads.put(c, 0, box)
	return box.val
}

// observeWrite does nothing: NOrec is lazy, like TL2.
func (norecProtocol) observeWrite(tx *Tx, c *varCore) {}

func (norecProtocol) extend(tx *Tx) bool { return norecExtend(tx) }

// norecExtend is NOrec value-based extension: wait for a quiescent
// sequence value, re-compare every recorded read's current value with
// its observed value, and re-check the sequence; on success the read
// version moves to the validated sequence value. Called from read and
// nested-retry contexts only — it may unwind via tx.check (violation),
// so it must never run inside the commit window (norecValidate is the
// in-window variant).
func norecExtend(tx *Tx) bool {
	for {
		s := norecSeq.Load()
		if s&1 != 0 {
			tx.check()
			tx.thread.Clock.Wait(4)
			continue
		}
		for l := tx.cur; l != nil; l = l.parent {
			if c := l.reads.firstChangedValue(); c != nil {
				tx.noteConflict(c, nil, causeStaleRead)
				return false
			}
		}
		if norecSeq.Load() == s {
			tx.readVersion = s
			return true
		}
	}
}

// commit is the NOrec writer commit. Read-only transactions commit
// with no validation at all: every read was validated against the
// sequence when it happened, so the transaction serializes at its read
// version. Writers acquire the sequence lock by CAS(readVersion →
// readVersion+1); a failed CAS means some writer committed since the
// last validation, so the read set is revalidated by value (in-window
// variant, no unwinding) and the CAS retried at the newer sequence.
// Once the lock is held no concurrent writer exists, so the held
// window only needs the per-Var installs — done through the lockwords,
// before the global-clock tick, to keep snapshot readers safe.
func (norecProtocol) commit(tx *Tx, l *level, doPrepare bool) bool {
	if l.writes.len() == 0 {
		return !doPrepare || tx.handle.toPrepared()
	}
	if !norecSeqAcquire(tx) {
		return false
	}
	rv := tx.readVersion
	buf := tx.thread.sortedWrites(l)
	if !lockWriteSet(tx, buf) {
		// Only a non-transactional SetCommitted can hold a lockword
		// while we hold the sequence lock; bail out rather than spin.
		norecSeqRelease(rv)
		return false
	}
	if doPrepare && !tx.handle.toPrepared() {
		unlockWriteSet(buf)
		norecSeqRelease(rv)
		return false
	}
	installWriteSet(buf, globalClock.Add(1))
	norecSeqRelease(rv + 2)
	return true
}

// norecSeqAcquire takes the sequence lock by CAS(readVersion →
// readVersion+1), revalidating by value and re-adopting the newer
// sequence on every CAS failure. On success norecSeq is odd and every
// other NOrec transaction system-wide stalls until norecSeqRelease —
// stmlint treats the acquire→release span as a hold window.
func norecSeqAcquire(tx *Tx) bool {
	for !norecSeq.CompareAndSwap(tx.readVersion, tx.readVersion+1) {
		if !norecValidate(tx) {
			return false
		}
	}
	return true
}

// norecSeqRelease stores an even sequence value, reopening the lock:
// readVersion (abort — nothing was installed while odd, so readers'
// validations against the restored value still hold) or readVersion+2
// (successful commit).
func norecSeqRelease(s uint64) {
	norecSeq.Store(s)
}

// norecValidate is norecExtend without unwinding, for the commit
// window: a pending violation is left for the toPrepared CAS (or the
// next attempt's check) to observe, and a writer that sits on the
// sequence lock past the spin budget fails the commit instead of
// blocking forever.
func norecValidate(tx *Tx) bool {
	for spin := 0; ; spin++ {
		s := norecSeq.Load()
		if s&1 != 0 {
			if spin >= 64 {
				tx.noteConflict(nil, nil, causeCommitLock)
				return false
			}
			tx.thread.Clock.Wait(4)
			continue
		}
		for l := tx.cur; l != nil; l = l.parent {
			if c := l.reads.firstChangedValue(); c != nil {
				tx.noteConflict(c, nil, causeCommitStale)
				return false
			}
		}
		if norecSeq.Load() == s {
			tx.readVersion = s
			return true
		}
	}
}

// snapshotMark maps the attempt's sequence-space read point into clock
// space for the MVCC-lite snapshot branch: revalidate at a quiescent
// sequence value, sample the global clock, and confirm the sequence
// has not moved — then no writer committed around the clock sample, so
// every recorded read is the newest committed value at that clock
// version.
func (norecProtocol) snapshotMark(tx *Tx) (uint64, bool) {
	for attempt := 0; attempt < 8; attempt++ {
		if !norecExtend(tx) {
			return 0, false
		}
		mark := globalClock.Load()
		if norecSeq.Load() == tx.readVersion {
			return mark, true
		}
	}
	return 0, false
}

func (norecProtocol) abandon(tx *Tx)                 {}
func (norecProtocol) abandonLevel(tx *Tx, l *level) {}

// firstChangedValue returns the first recorded read whose current
// committed value differs from the observed one (nil if none) — the
// value-based validation predicate. Box pointer equality is the fast
// path; distinct boxes holding equal values (a silent re-store) still
// validate, which is NOrec's advantage over version validation.
func (s *readSet) firstChangedValue() *varCore {
	for i := 0; i < s.n; i++ {
		e := &s.inline[i]
		if cur := e.c.val.Load(); cur != e.box && !valuesEqual(cur.val, e.box.val) {
			return e.c
		}
	}
	for c, ev := range s.spill {
		if cur := c.val.Load(); cur != ev.box && !valuesEqual(cur.val, ev.box.val) {
			return c
		}
	}
	return nil
}

// valuesEqual compares two committed values, treating values of
// uncomparable dynamic types as unequal (conservative: forces an
// abort) instead of panicking.
func valuesEqual(a, b any) (eq bool) {
	defer func() {
		if recover() != nil {
			eq = false
		}
	}()
	return a == b
}
