package stm

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcc/internal/obs"
)

var errRollback = errors.New("roll back")

func TestGuardIDsUniqueAndSorted(t *testing.T) {
	a, b, c := NewGuard(), NewGuard(), NewGuard()
	if a.ID() == b.ID() || b.ID() == c.ID() || a.ID() == c.ID() {
		t.Fatalf("guard ids not unique: %d %d %d", a.ID(), b.ID(), c.ID())
	}
	buf := []*Guard{c, a, b, a, c}
	buf = sortGuards(buf)
	if len(buf) != 3 {
		t.Fatalf("sortGuards kept %d entries, want 3 (dedup)", len(buf))
	}
	for i := 1; i < len(buf); i++ {
		if buf[i-1].id >= buf[i].id {
			t.Fatalf("sortGuards not ascending at %d: %d >= %d", i, buf[i-1].id, buf[i].id)
		}
	}
}

func TestAddGuardDedups(t *testing.T) {
	g := NewGuard()
	set := addGuard(nil, g)
	set = addGuard(set, g)
	if len(set) != 1 {
		t.Fatalf("addGuard duplicated an entry: %d", len(set))
	}
}

// TestGuardFreeRollbackTakesNoGuard is the rollback bugfix's regression
// test: a transaction with no abort handlers — even one with a commit
// handler, whose guard is irrelevant once the transaction is rolling
// back — must abort without acquiring any guard. The old global-guard
// code locked commitMu whenever *any* handler existed; here every guard
// in sight is held hostage by another goroutine, so a rollback that
// touched one would block forever.
func TestGuardFreeRollbackTakesNoGuard(t *testing.T) {
	g := NewGuard()
	g.Lock()
	fallbackGuard.Lock()
	defer g.Unlock()
	defer fallbackGuard.Unlock()

	done := make(chan error, 1)
	go func() {
		th := newTestThread()
		done <- th.Atomic(func(tx *Tx) error {
			// Commit handler only, under a held guard: rollback must
			// ignore it (commit guards are not rollback guards).
			tx.OnCommitGuarded(g, func() {})
			return errRollback
		})
	}()
	select {
	case err := <-done:
		if err != errRollback {
			t.Fatalf("rollback returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("guard-free rollback blocked on a guard it never registered")
	}
}

// TestRollbackAcquiresOnlyRegisteredAbortGuards: a rollback with an
// abort handler under guard A must not touch unrelated guard B (held by
// someone else), and must run the handler with A held.
func TestRollbackAcquiresOnlyRegisteredAbortGuards(t *testing.T) {
	a, b := NewGuard(), NewGuard()
	b.Lock()
	defer b.Unlock()

	done := make(chan struct{})
	heldA := false
	go func() {
		defer close(done)
		th := newTestThread()
		_ = th.Atomic(func(tx *Tx) error {
			tx.OnAbortGuarded(a, func() {
				// The protocol holds a for the handler window, so a
				// TryLock from inside the handler must fail.
				heldA = !a.mu.TryLock()
			})
			return errRollback
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("rollback blocked on an unregistered guard")
	}
	if !heldA {
		t.Fatal("abort handler ran without its registered guard held")
	}
}

// TestDisjointHandlerWindowsOverlap is the tentpole's concurrency
// witness: two transactions with disjoint guard footprints rendezvous
// *inside their commit handlers*. Each handler signals the other and
// waits for the other's signal, which can only succeed if both handler
// windows are open at the same time — under the old global commitMu
// this deadlocks (one handler holds the only guard while waiting for
// the other, which can never enter its own window).
func TestDisjointHandlerWindowsOverlap(t *testing.T) {
	ga, gb := NewGuard(), NewGuard()
	aIn, bIn := make(chan struct{}), make(chan struct{})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		th := NewThread(&RealClock{}, 1)
		_ = th.Atomic(func(tx *Tx) error {
			tx.OnCommitGuarded(ga, func() {
				close(aIn)
				<-bIn
			})
			return nil
		})
	}()
	go func() {
		defer wg.Done()
		th := NewThread(&RealClock{}, 2)
		_ = th.Atomic(func(tx *Tx) error {
			tx.OnCommitGuarded(gb, func() {
				close(bIn)
				<-aIn
			})
			return nil
		})
	}()
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("disjoint handler windows did not overlap: commits serialized behind a shared guard")
	}
}

// TestOverlappingGuardFootprintStress drives N workers committing and
// aborting transactions whose footprints are random overlapping subsets
// of K guards, in registration orders chosen adversarially (descending,
// interleaved). The id-ordered blocking acquisition must never
// deadlock, and every guarded counter must come out exact because each
// counter is only ever touched under its guard. Run with -race for the
// full effect.
func TestOverlappingGuardFootprintStress(t *testing.T) {
	const (
		K     = 4
		N     = 8
		iters = 300
	)
	guards := make([]*Guard, K)
	counts := make([]int64, K) // counts[i] guarded by guards[i]
	for i := range guards {
		guards[i] = NewGuard()
	}
	want := make([]int64, K)
	var wantMu sync.Mutex

	var wg sync.WaitGroup
	wg.Add(N)
	for w := 0; w < N; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			th := NewThread(&RealClock{}, int64(w))
			local := make([]int64, K)
			for it := 0; it < iters; it++ {
				// Pick an overlapping footprint of 1..K guards and a
				// shuffled registration order (the protocol must sort).
				perm := rng.Perm(K)
				n := 1 + rng.Intn(K)
				abort := rng.Intn(4) == 0
				err := th.Atomic(func(tx *Tx) error {
					for _, gi := range perm[:n] {
						gi := gi
						tx.OnCommitGuarded(guards[gi], func() {
							counts[gi]++
						})
						tx.OnAbortGuarded(guards[gi], func() {
							counts[gi]-- // compensation exercises rollback's guard set
							counts[gi]++
						})
					}
					if abort {
						return errRollback
					}
					return nil
				})
				if err == nil {
					for _, gi := range perm[:n] {
						local[gi]++
					}
				}
			}
			wantMu.Lock()
			for i, v := range local {
				want[i] += v
			}
			wantMu.Unlock()
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("overlapping-footprint stress deadlocked")
	}
	for i := range counts {
		if counts[i] != want[i] {
			t.Fatalf("guard %d: count %d, want %d (handler ran without mutual exclusion?)", i, counts[i], want[i])
		}
	}
}

// TestNestedFootprintMerge: a closed-nested child that registered
// guarded handlers under stripes {a, b} commits into a parent that had
// registered under {b, c}; the merged level must carry exactly the
// union {a, b, c}, deduplicated — the footprint the striped collections
// rely on when a child touches stripes its parent has not.
func TestNestedFootprintMerge(t *testing.T) {
	a, b, c := NewGuard(), NewGuard(), NewGuard()
	th := newTestThread()
	err := th.Atomic(func(tx *Tx) error {
		tx.OnCommitGuarded(b, func() {})
		tx.OnCommitGuarded(c, func() {})
		if err := tx.Nested(func() error {
			tx.OnCommitGuarded(a, func() {})
			tx.OnCommitGuarded(b, func() {})
			return nil
		}); err != nil {
			return err
		}
		got := make(map[*Guard]bool, len(tx.cur.commitGuards))
		for _, g := range tx.cur.commitGuards {
			got[g] = true
		}
		if len(tx.cur.commitGuards) != 3 || !got[a] || !got[b] || !got[c] {
			t.Fatalf("merged commit footprint has %d guards (a=%v b=%v c=%v), want exactly {a,b,c}",
				len(tx.cur.commitGuards), got[a], got[b], got[c])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAddTopGuardWidensFootprint: AddTopGuard must land the guard in
// both the commit and the abort footprint of the root level, from any
// nesting depth — including a closed-nested child and an open-nested
// child, which is where the striped map's touch() calls it from.
func TestAddTopGuardWidensFootprint(t *testing.T) {
	a, b, c := NewGuard(), NewGuard(), NewGuard()
	th := newTestThread()
	err := th.Atomic(func(tx *Tx) error {
		tx.AddTopGuard(a)
		if err := tx.Nested(func() error {
			tx.AddTopGuard(b)
			return nil
		}); err != nil {
			return err
		}
		if err := tx.Open(func(o *Tx) error {
			o.AddTopGuard(c)
			return nil
		}); err != nil {
			return err
		}
		root := tx.rootLevel()
		for _, set := range [][]*Guard{root.commitGuards, root.abortGuards} {
			got := make(map[*Guard]bool, len(set))
			for _, g := range set {
				got[g] = true
			}
			if len(set) != 3 || !got[a] || !got[b] || !got[c] {
				t.Fatalf("root footprint = %d guards (a=%v b=%v c=%v), want {a,b,c} in both lists",
					len(set), got[a], got[b], got[c])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAddTopGuardHeldDuringHandlers: a guard added with AddTopGuard —
// no handler of its own — is held across the commit handler window and
// the abort handler window, which is what makes it safe for one
// handler to walk several stripes.
func TestAddTopGuardHeldDuringHandlers(t *testing.T) {
	a, b := NewGuard(), NewGuard()
	th := newTestThread()
	heldAtCommit := false
	if err := th.Atomic(func(tx *Tx) error {
		tx.OnCommitGuarded(a, func() {
			heldAtCommit = !b.mu.TryLock()
			if !heldAtCommit {
				b.mu.Unlock()
			}
		})
		tx.AddTopGuard(b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !heldAtCommit {
		t.Fatal("AddTopGuard'd guard not held during the commit handler window")
	}
	heldAtAbort := false
	if err := th.Atomic(func(tx *Tx) error {
		tx.OnAbortGuarded(a, func() {
			heldAtAbort = !b.mu.TryLock()
			if !heldAtAbort {
				b.mu.Unlock()
			}
		})
		tx.AddTopGuard(b)
		return errRollback
	}); err != errRollback {
		t.Fatalf("rollback returned %v", err)
	}
	if !heldAtAbort {
		t.Fatal("AddTopGuard'd guard not held during the abort handler window")
	}
}

// TestGuardWaitEventEmitted: contended guarded commits surface as
// guard.wait events with the guard's label, emitted outside the window.
func TestGuardWaitEventEmitted(t *testing.T) {
	g := NewGuard()
	g.SetLabel("stress.map")
	var waits atomic.Int64
	obs.SetTracer(guardWaitCounter{&waits})
	t.Cleanup(func() { obs.SetTracer(nil) })

	const N = 4
	var wg sync.WaitGroup
	wg.Add(N)
	for w := 0; w < N; w++ {
		go func(w int) {
			defer wg.Done()
			th := NewThread(&RealClock{}, int64(w))
			for i := 0; i < 200; i++ {
				_ = th.Atomic(func(tx *Tx) error {
					tx.OnCommitGuarded(g, func() {
						time.Sleep(10 * time.Microsecond)
					})
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	if waits.Load() == 0 {
		t.Skip("no guard contention observed on this run (single-core scheduling)")
	}
}

// guardWaitCounter is a concurrency-safe sink counting guard.wait
// contention.
type guardWaitCounter struct{ n *atomic.Int64 }

func (c guardWaitCounter) Trace(e obs.Event) {
	if e.Kind == obs.KindGuardWait {
		c.n.Add(int64(e.Waits))
	}
}
