package stm

import "testing"

// TestWaitYieldCap: RealClock.Wait's backoff loop yields proportionally
// to the stall for short waits but is capped at maxWaitYields — before
// the cap, a large exponential backoff (cycles in the tens of
// thousands) degenerated into cycles/64 Gosched calls, a busy spin that
// burned the CPU the backoff was supposed to cede.
func TestWaitYieldCap(t *testing.T) {
	cases := []struct {
		cycles uint64
		want   uint64
	}{
		{0, 1},
		{63, 1},
		{64, 2},
		{64 * (maxWaitYields - 1), maxWaitYields},
		{64 * maxWaitYields, maxWaitYields},
		{1 << 20, maxWaitYields},
		{^uint64(0), maxWaitYields},
	}
	for _, c := range cases {
		if got := waitYields(c.cycles); got != c.want {
			t.Errorf("waitYields(%d) = %d, want %d", c.cycles, got, c.want)
		}
	}
}

// TestWaitAdvancesClock: Wait still charges the full stall to the
// worker-local clock regardless of the yield cap.
func TestWaitAdvancesClock(t *testing.T) {
	c := &RealClock{}
	c.Wait(1 << 30) // would be ~16M yields uncapped
	if c.Now() != 1<<30 {
		t.Fatalf("Now() = %d after Wait(1<<30)", c.Now())
	}
}
