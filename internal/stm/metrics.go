package stm

import (
	"time"

	"tcc/internal/obs/metrics"
)

// This file is the STM side of the live metrics plane (see
// internal/obs/metrics): counters, the windowed commit-latency
// summary, and the guard-wait clock, all registered against
// metrics.Default under the canonical names in metrics/names.go.
//
// Discipline mirrors trace.go: the hot path pays one metrics.On()
// load per top-level attempt (captured into tx.mon alongside
// tx.tracer); every increment site branches on that plain bool and
// performs atomic-only counter adds. Counting happens in the retry
// loop after guards and lockwords are released — the only in-window
// work is the plain field store of guard-wait nanoseconds in
// acquireGuards, matching the noteConflict/noteGuardWait pattern.

var (
	mCommits = metrics.Default.CounterSharded(metrics.StmCommits,
		"Committed top-level transactions (includes snapshot-path commits)", 8)
	mRetries = metrics.Default.CounterSharded(metrics.StmRetries,
		"Top-level attempt restarts (memory aborts + violations)", 8)
	mViolations = metrics.Default.CounterSharded(metrics.StmViolations,
		"Top-level rollbacks from program-directed (semantic) aborts", 8)
	mUserAborts = metrics.Default.Counter(metrics.StmUserAborts,
		"Rollbacks requested by the transaction body")
	mNestedRetries = metrics.Default.Counter(metrics.StmNestedRetries,
		"Partial rollbacks of closed-nested levels")
	mOpenCommits = metrics.Default.CounterSharded(metrics.StmOpenCommits,
		"Open-nested child commits", 8)
	mOpenRetries = metrics.Default.Counter(metrics.StmOpenRetries,
		"Open-nested child conflict retries")
	mSnapCommits = metrics.Default.CounterSharded(metrics.StmSnapshotCommits,
		"Top-level commits completed on the MVCC-lite snapshot path", 8)
	mSnapFallbacks = metrics.Default.Counter(metrics.StmSnapshotFallbacks,
		"Read-only transactions that left the snapshot path for the retry path")
	mGuardWaits = metrics.Default.Counter(metrics.StmGuardWaits,
		"Contended commit-guard acquisitions (commit-serialization lost work)")
	mGuardWaitNs = metrics.Default.Counter(metrics.StmGuardWaitNs,
		"Wall nanoseconds spent blocked acquiring commit guards")
	mTxLatency = metrics.Default.Summary(metrics.StmTxLatency,
		"Top-level commit latency in thread-clock cycles, first attempt to commit (windowed)")

	// Aborts by mechanical cause: the fixed cause vocabulary of
	// trace.go, pre-registered so counting an abort never touches the
	// registry (and never allocates).
	mAbortStale       = abortCounter(causeStaleRead)
	mAbortLocked      = abortCounter(causeLockedVar)
	mAbortCommitLock  = abortCounter(causeCommitLock)
	mAbortCommitStale = abortCounter(causeCommitStale)
	mAbortOther       = abortCounter("other")
)

func abortCounter(cause string) *metrics.Counter {
	return metrics.Default.CounterSharded(metrics.StmAborts,
		"Top-level rollbacks from memory-level conflicts, by mechanical cause", 8,
		metrics.L("cause", cause))
}

func init() {
	metrics.Default.GaugeFunc(metrics.StmClock,
		"TL2 global version clock (slope = system-wide write-commit rate)",
		func() float64 { return float64(globalClock.Load()) })
}

// metricsOn is the per-attempt gate: one atomic load, captured into
// tx.mon next to tx.tracer.
func metricsOn() bool { return metrics.On() }

// countCommit records a committed top-level transaction and its
// whole-transaction latency (cycles since the first attempt began).
// Emission site: after guards and lockwords are released.
func (tx *Tx) countCommit(snapshot bool) {
	if !tx.mon {
		return
	}
	lane := tx.thread.TraceID
	mCommits.AddLane(lane, 1)
	if pc := tx.thread.protoCommits; pc != nil {
		pc.AddLane(lane, 1)
	}
	if snapshot {
		mSnapCommits.AddLane(lane, 1)
	}
	mTxLatency.Observe(lane, since(tx.thread.Clock.Now(), tx.firstBirth))
}

// countAbort records a memory-conflict rollback under its mechanical
// cause (recorded by noteConflict; "other" when no attribution was
// captured). When no tracer is active the conflict record is consumed
// here, so a stale cause cannot leak into the next attempt.
func (tx *Tx) countAbort() {
	if !tx.mon {
		return
	}
	top := tx.top()
	cause := top.conflict.cause
	if top.tracer == nil {
		top.conflict = conflictRec{}
	}
	lane := tx.thread.TraceID
	switch cause {
	case causeStaleRead:
		mAbortStale.AddLane(lane, 1)
	case causeLockedVar:
		mAbortLocked.AddLane(lane, 1)
	case causeCommitLock:
		mAbortCommitLock.AddLane(lane, 1)
	case causeCommitStale:
		mAbortCommitStale.AddLane(lane, 1)
	default:
		mAbortOther.AddLane(lane, 1)
	}
}

// countGuardWaits flushes guard-contention metrics accumulated by
// acquireGuards. Called after releaseGuards, before emitGuardWaits
// (which consumes the shared gwaits field for the tracer); when no
// tracer is active it clears the attribution itself.
func (tx *Tx) countGuardWaits() {
	top := tx.top()
	if !top.mon {
		return
	}
	lane := tx.thread.TraceID
	if top.gwaits > 0 {
		mGuardWaits.AddLane(lane, uint64(top.gwaits))
	}
	if top.gwaitNs > 0 {
		mGuardWaitNs.AddLane(lane, top.gwaitNs)
		top.gwaitNs = 0
	}
	if top.tracer == nil {
		top.gwaits = 0
		top.gwaitOn = nil
	}
}

// guardWaitStart/guardWaitDone bracket a blocking guard acquisition
// when metrics are enabled. Wall time, not Clock time: RealClock.Now
// counts only charged cycles and the simulator's clock does not
// advance while a host mutex blocks, so the serialization cost is
// only visible to the wall clock. The result is accumulated with a
// plain field store (safe inside the acquisition sequence) and
// flushed by countGuardWaits after the guards are released.
func guardWaitStart(top *Tx) time.Time {
	if !top.mon {
		return time.Time{}
	}
	return time.Now()
}

func guardWaitDone(top *Tx, t0 time.Time) {
	if !top.mon {
		return
	}
	top.gwaitNs += uint64(time.Since(t0))
}
