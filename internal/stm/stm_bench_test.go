package stm_test

// Microbenchmarks for the STM's hot paths, all with allocation
// reporting: the TL2 lockword fast path promises mutex-free reads and
// the Thread recycling pools promise an allocation-free retry loop, and
// these benches (run by scripts/bench.sh into BENCH_stm.json) are the
// machine-readable record of both. The companion guardrail test pins
// the read-only allocation budget so a regression fails `go test`, not
// just a bench comparison.

import (
	"testing"
	"time"

	"tcc/internal/obs"
	"tcc/internal/obs/metrics"
	"tcc/internal/stm"
)

// newBenchThread returns a worker on the real clock with a fixed seed.
func newBenchThread() *stm.Thread {
	return stm.NewThread(&stm.RealClock{}, 1)
}

// BenchmarkSTMReadOnly4Var is the headline fast-path bench: a
// transaction that reads four vars and commits read-only. Unlocked
// reads are plain atomic loads; the only allocation is the per-attempt
// Handle.
func BenchmarkSTMReadOnly4Var(b *testing.B) {
	var vars [4]*stm.Var[int]
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	th := newBenchThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = th.Atomic(func(tx *stm.Tx) error {
			for _, v := range vars {
				v.Get(tx)
			}
			return nil
		})
	}
}

// BenchmarkSTMSmallWriteSet measures a read-modify-write transaction
// over four vars: lockword CAS acquisition, read validation, and
// install of a 4-entry write set held entirely in the inline array.
func BenchmarkSTMSmallWriteSet(b *testing.B) {
	var vars [4]*stm.Var[int]
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	th := newBenchThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = th.Atomic(func(tx *stm.Tx) error {
			for _, v := range vars {
				v.Set(tx, v.Get(tx)+1)
			}
			return nil
		})
	}
}

// BenchmarkSTMNestedCommit measures the closed-nesting machinery with
// no conflicts: pushing a recycled level, reading and writing under it,
// and merging it into the parent.
func BenchmarkSTMNestedCommit(b *testing.B) {
	v := stm.NewVar(0)
	w := stm.NewVar(0)
	th := newBenchThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = th.Atomic(func(tx *stm.Tx) error {
			v.Get(tx)
			return tx.Nested(func() error {
				w.Set(tx, w.Get(tx)+1)
				return nil
			})
		})
	}
}

// BenchmarkSTMNestedRetry measures one full nested-retry cycle: the
// child observes a conflicting commit (performed by a helper worker on
// its own goroutine, handshaken over channels so every iteration
// retries exactly once), partially rolls back, extends the snapshot,
// and succeeds on the second attempt. Reported allocations include the
// helper's committing transaction.
func BenchmarkSTMNestedRetry(b *testing.B) {
	a := stm.NewVar(0)
	v := stm.NewVar(0)
	w := stm.NewVar(0)
	th := newBenchThread()
	helper := stm.NewThread(&stm.RealClock{}, 2)
	start := make(chan struct{})
	done := make(chan struct{})
	go func() {
		for range start {
			_ = helper.Atomic(func(tx *stm.Tx) error {
				v.Set(tx, v.Get(tx)+1)
				w.Set(tx, w.Get(tx)+1)
				return nil
			})
			done <- struct{}{}
		}
	}()
	defer close(start)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		first := true
		_ = th.Atomic(func(tx *stm.Tx) error {
			a.Get(tx) // parent-level read that stays valid across the conflict
			return tx.Nested(func() error {
				v.Get(tx)
				if first {
					// A conflicting commit to (v, w) lands between the
					// child's read of v and its read of w: reading w then
					// fails validation, the child retries, the parent
					// does not.
					first = false
					start <- struct{}{}
					<-done
				}
				w.Get(tx)
				return nil
			})
		})
	}
	b.StopTimer()
	if th.Stats.NestedRetries < uint64(b.N) {
		b.Fatalf("expected >= %d nested retries, got %d", b.N, th.Stats.NestedRetries)
	}
}

// BenchmarkSTMOpenNestedCommit measures an open-nested child that
// writes one var and attaches a commit handler to the parent — the
// paper's semantic-lock acquisition shape.
func BenchmarkSTMOpenNestedCommit(b *testing.B) {
	v := stm.NewVar(0)
	th := newBenchThread()
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = th.Atomic(func(tx *stm.Tx) error {
			return tx.Open(func(o *stm.Tx) error {
				v.Set(o, i)
				o.OnCommit(nop)
				return nil
			})
		})
	}
}

// BenchmarkSTMDisjointCommit measures the sharded commit protocol's
// no-contention path: every worker owns a private guard and registers a
// commit handler on it, so the guard footprints are pairwise disjoint
// and commits never queue behind one another. Under the old global
// commitMu every handler-bearing commit serialized here regardless of
// footprint.
func BenchmarkSTMDisjointCommit(b *testing.B) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := stm.NewVar(0)
		g := stm.NewGuard()
		th := newBenchThread()
		nop := func() {}
		for pb.Next() {
			_ = th.Atomic(func(tx *stm.Tx) error {
				v.Set(tx, v.Get(tx)+1)
				tx.OnCommitGuarded(g, nop)
				return nil
			})
		}
	})
}

// BenchmarkSTMGuardedCommitContended is the adversarial counterpart of
// BenchmarkSTMDisjointCommit: every worker registers its handler on ONE
// shared guard, reproducing the old global-guard regime. The gap
// between the two benches is the price of footprint overlap — and the
// bound the sharding removes for disjoint workloads.
func BenchmarkSTMGuardedCommitContended(b *testing.B) {
	g := stm.NewGuard()
	nop := func() {}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := stm.NewVar(0)
		th := newBenchThread()
		for pb.Next() {
			_ = th.Atomic(func(tx *stm.Tx) error {
				v.Set(tx, v.Get(tx)+1)
				tx.OnCommitGuarded(g, nop)
				return nil
			})
		}
	})
}

// BenchmarkSTMDisjointHandlerWindow is the demonstration bench for
// commit-guard sharding on any core count: 8 parallel workers commit
// transactions whose commit handlers each sleep 50µs under a private
// guard. Handler windows that block (I/O-shaped work) expose the
// serialization directly — with a single global guard the windows
// cannot overlap and an op costs ~8×50µs ≥ 400µs; with per-worker
// guards the sleeps overlap and the per-op cost approaches the 50µs
// handler floor even on one CPU, because sleeping goroutines yield the
// processor.
func BenchmarkSTMDisjointHandlerWindow(b *testing.B) {
	b.SetParallelism(8)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := stm.NewVar(0)
		g := stm.NewGuard()
		th := newBenchThread()
		handler := func() { time.Sleep(50 * time.Microsecond) }
		for pb.Next() {
			_ = th.Atomic(func(tx *stm.Tx) error {
				v.Set(tx, v.Get(tx)+1)
				tx.OnCommitGuarded(g, handler)
				return nil
			})
		}
	})
}

// TestReadOnlyAllocationGuardrail pins the allocation budget of the
// recycled fast path: after warmup, a read-only 4-var transaction must
// allocate at most 2 objects per run (the per-attempt Handle, plus
// slack for one pool-growth amortization). Before the lockword and
// recycling work this path cost 6 allocations.
func TestReadOnlyAllocationGuardrail(t *testing.T) {
	var vars [4]*stm.Var[int]
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	th := newBenchThread()
	// The budget assumes the tracing fast path: with no tracer installed
	// a transaction must not pay for observability (no txid assignment,
	// no event structs).
	if obs.Active() != nil {
		t.Fatal("guardrail requires tracing disabled")
	}
	run := func() {
		_ = th.Atomic(func(tx *stm.Tx) error {
			for _, v := range vars {
				v.Get(tx)
			}
			return nil
		})
	}
	run() // warm the Tx/level pools
	if got := testing.AllocsPerRun(100, run); got > 2 {
		t.Fatalf("read-only 4-var transaction allocates %.1f objects/run, budget is 2", got)
	}
}

// TestTracerDisableRestoresAllocBudget checks that observability is
// pay-as-you-go in both directions: enabling a Profile tracer and then
// disabling it leaves the read-only fast path back inside the untraced
// allocation budget — no residual per-transaction cost sticks to the
// recycled Tx objects.
func TestTracerDisableRestoresAllocBudget(t *testing.T) {
	var vars [4]*stm.Var[int]
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	th := newBenchThread()
	run := func() {
		_ = th.Atomic(func(tx *stm.Tx) error {
			for _, v := range vars {
				v.Get(tx)
			}
			return nil
		})
	}
	prof := obs.NewProfile()
	obs.SetTracer(prof)
	for i := 0; i < 50; i++ {
		run()
	}
	obs.SetTracer(nil)
	if prof.Report().Commits == 0 {
		t.Fatal("profile saw no commits while enabled")
	}
	run() // warm pools in the disabled regime
	if got := testing.AllocsPerRun(100, run); got > 2 {
		t.Fatalf("after disabling tracer, read-only transaction allocates %.1f objects/run, budget is 2", got)
	}
}

// BenchmarkSTMReadOnly4VarProfiled is the enabled-tracer counterpart of
// BenchmarkSTMReadOnly4Var: same transaction with a Profile sink
// installed, so BENCH_stm.json records what turning observability on
// costs the fast path (two events plus two histogram observes per
// commit).
func BenchmarkSTMReadOnly4VarProfiled(b *testing.B) {
	var vars [4]*stm.Var[int]
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	th := newBenchThread()
	obs.SetTracer(obs.NewProfile())
	defer obs.SetTracer(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = th.Atomic(func(tx *stm.Tx) error {
			for _, v := range vars {
				v.Get(tx)
			}
			return nil
		})
	}
}

// BenchmarkSTMSnapshotReadOnly4Var is the MVCC-lite counterpart of
// BenchmarkSTMReadOnly4Var: the same four reads under AtomicRead ride
// the snapshot path — no per-attempt Handle allocation, no read-set
// bookkeeping, no validation, and a commit that publishes nothing. The
// gap between the two benches is the per-transaction price of the
// retry machinery on a read-only workload.
func BenchmarkSTMSnapshotReadOnly4Var(b *testing.B) {
	var vars [4]*stm.Var[int]
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	th := newBenchThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = th.AtomicRead(func(tx *stm.Tx) error {
			for _, v := range vars {
				v.Get(tx)
			}
			return nil
		})
	}
	b.StopTimer()
	if th.Stats.SnapshotFallbacks != 0 {
		b.Fatalf("snapshot bench fell back %d times", th.Stats.SnapshotFallbacks)
	}
}

// TestSnapshotReadOnlyAllocationGuardrail pins the snapshot path's
// allocation budget at zero: with the Tx, level, and snapshot Handle
// all recycled through the Thread and no read set recorded, a warmed
// 4-var AtomicRead must not touch the heap at all.
func TestSnapshotReadOnlyAllocationGuardrail(t *testing.T) {
	var vars [4]*stm.Var[int]
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	th := newBenchThread()
	if obs.Active() != nil {
		t.Fatal("guardrail requires tracing disabled")
	}
	run := func() {
		_ = th.AtomicRead(func(tx *stm.Tx) error {
			for _, v := range vars {
				v.Get(tx)
			}
			return nil
		})
	}
	run() // warm the Tx/level pools and the snapshot handle
	if got := testing.AllocsPerRun(100, run); got > 0 {
		t.Fatalf("snapshot read-only 4-var transaction allocates %.1f objects/run, budget is 0", got)
	}
	if th.Stats.SnapshotFallbacks != 0 {
		t.Fatalf("guardrail runs fell back %d times", th.Stats.SnapshotFallbacks)
	}
}

// TestSmallWriteAllocationGuardrail pins the write path: a 4-var
// read-modify-write allocates the Handle, one immutable value box per
// installed write (boxes cannot be recycled — concurrent readers may
// still hold them), and up to one interface conversion per Set once
// the values leave the runtime's small-int cache.
func TestSmallWriteAllocationGuardrail(t *testing.T) {
	var vars [4]*stm.Var[int]
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	th := newBenchThread()
	run := func() {
		_ = th.Atomic(func(tx *stm.Tx) error {
			for _, v := range vars {
				v.Set(tx, v.Get(tx)+1)
			}
			return nil
		})
	}
	run()
	// 1 Handle + 4 Set boxings + 4 install boxes = 9.
	if got := testing.AllocsPerRun(1000, run); got > 9 {
		t.Fatalf("4-var write transaction allocates %.1f objects/run, budget is 9", got)
	}
}

// TestMetricsOnWriteAllocationGuardrail proves metric increments are
// allocation-free on the commit path: with the live metrics plane
// enabled, the 4-var write transaction stays inside the same 9-object
// budget as with metrics off — counting is a per-attempt bool capture,
// field stores, and atomic adds into pre-registered instruments.
func TestMetricsOnWriteAllocationGuardrail(t *testing.T) {
	var vars [4]*stm.Var[int]
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	th := newBenchThread()
	if obs.Active() != nil {
		t.Fatal("guardrail requires tracing disabled")
	}
	metrics.SetEnabled(true)
	defer metrics.SetEnabled(false)
	run := func() {
		_ = th.Atomic(func(tx *stm.Tx) error {
			for _, v := range vars {
				v.Set(tx, v.Get(tx)+1)
			}
			return nil
		})
	}
	run()
	if got := testing.AllocsPerRun(1000, run); got > 9 {
		t.Fatalf("with metrics on, 4-var write transaction allocates %.1f objects/run, budget is 9", got)
	}
}

// TestMetricsOnSnapshotAllocationGuardrail pins the strictest case:
// the snapshot read path's budget is zero, and enabling metrics —
// which adds a commit count, a snapshot-commit count, and a latency
// observation per transaction — must keep it at zero.
func TestMetricsOnSnapshotAllocationGuardrail(t *testing.T) {
	var vars [4]*stm.Var[int]
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	th := newBenchThread()
	if obs.Active() != nil {
		t.Fatal("guardrail requires tracing disabled")
	}
	metrics.SetEnabled(true)
	defer metrics.SetEnabled(false)
	run := func() {
		_ = th.AtomicRead(func(tx *stm.Tx) error {
			for _, v := range vars {
				v.Get(tx)
			}
			return nil
		})
	}
	run()
	if got := testing.AllocsPerRun(100, run); got > 0 {
		t.Fatalf("with metrics on, snapshot read-only transaction allocates %.1f objects/run, budget is 0", got)
	}
	if th.Stats.SnapshotFallbacks != 0 {
		t.Fatalf("guardrail runs fell back %d times", th.Stats.SnapshotFallbacks)
	}
}

// TestMetricsDisableRestoresFastPath mirrors the tracer's guarantee in
// the other direction: after enabling and disabling the metrics plane,
// the read-only path is back inside its untraced budget and the
// registry actually saw the enabled-phase commits.
func TestMetricsDisableRestoresFastPath(t *testing.T) {
	var vars [4]*stm.Var[int]
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	th := newBenchThread()
	run := func() {
		_ = th.Atomic(func(tx *stm.Tx) error {
			for _, v := range vars {
				v.Get(tx)
			}
			return nil
		})
	}
	commits := metrics.Default.Counter(metrics.StmCommits, "Committed top-level transactions")
	before := commits.Total()
	metrics.SetEnabled(true)
	for i := 0; i < 50; i++ {
		run()
	}
	metrics.SetEnabled(false)
	if commits.Total() < before+50 {
		t.Fatalf("registry saw %d commits while enabled, want >= 50", commits.Total()-before)
	}
	run() // warm pools in the disabled regime
	if got := testing.AllocsPerRun(100, run); got > 2 {
		t.Fatalf("after disabling metrics, read-only transaction allocates %.1f objects/run, budget is 2", got)
	}
}

// BenchmarkSTMSmallWriteSetMetricsOn is BenchmarkSTMSmallWriteSet with
// the live metrics plane enabled, so BENCH_stm.json records the
// enabled-vs-disabled delta of the commit-path counting (a handful of
// atomic adds plus one windowed histogram observe per commit).
func BenchmarkSTMSmallWriteSetMetricsOn(b *testing.B) {
	var vars [4]*stm.Var[int]
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	th := newBenchThread()
	metrics.SetEnabled(true)
	defer metrics.SetEnabled(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = th.Atomic(func(tx *stm.Tx) error {
			for _, v := range vars {
				v.Set(tx, v.Get(tx)+1)
			}
			return nil
		})
	}
}
