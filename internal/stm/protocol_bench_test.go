package stm_test

// Per-protocol hot-path benchmarks and allocation guardrails. The
// protocol seam must be pay-as-you-go: TL2 through the interface is
// covered by the headline benches in stm_bench_test.go (same budgets as
// before the seam), and the alternative protocols get the same pinned
// budgets here — NOrec's read side replaces version sampling with a
// box load plus sequence check, and eager TL2 moves lock acquisition
// to Set, neither of which may cost heap objects.

import (
	"testing"

	"tcc/internal/obs"
	"tcc/internal/stm"
)

// newProtoBenchThread returns a real-clock worker running the named
// protocol.
func newProtoBenchThread(tb testing.TB, proto string) *stm.Thread {
	th := stm.NewThread(&stm.RealClock{}, 1)
	if err := th.SetProtocol(proto); err != nil {
		tb.Fatal(err)
	}
	return th
}

// benchProtocols are the non-default protocols benchmarked side by side
// with the TL2 headline benches.
var benchProtocols = []string{"norec", "tl2-eager"}

// BenchmarkSTMProtocolReadOnly4Var is BenchmarkSTMReadOnly4Var per
// protocol: four reads, read-only commit.
func BenchmarkSTMProtocolReadOnly4Var(b *testing.B) {
	for _, proto := range benchProtocols {
		b.Run(proto, func(b *testing.B) {
			var vars [4]*stm.Var[int]
			for i := range vars {
				vars[i] = stm.NewVar(i)
			}
			th := newProtoBenchThread(b, proto)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = th.Atomic(func(tx *stm.Tx) error {
					for _, v := range vars {
						v.Get(tx)
					}
					return nil
				})
			}
		})
	}
}

// BenchmarkSTMProtocolSmallWriteSet is BenchmarkSTMSmallWriteSet per
// protocol: a 4-var read-modify-write with the write set inline.
func BenchmarkSTMProtocolSmallWriteSet(b *testing.B) {
	for _, proto := range benchProtocols {
		b.Run(proto, func(b *testing.B) {
			var vars [4]*stm.Var[int]
			for i := range vars {
				vars[i] = stm.NewVar(i)
			}
			th := newProtoBenchThread(b, proto)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = th.Atomic(func(tx *stm.Tx) error {
					for _, v := range vars {
						v.Set(tx, v.Get(tx)+1)
					}
					return nil
				})
			}
		})
	}
}

// TestProtocolReadOnlyAllocationGuardrail pins the read-only budget for
// every alternative protocol to the TL2 budget (2 objects: the
// per-attempt Handle plus pool-growth slack). NOrec's recorded box
// pointers ride the existing read-set entries; nothing new may touch
// the heap.
func TestProtocolReadOnlyAllocationGuardrail(t *testing.T) {
	if obs.Active() != nil {
		t.Fatal("guardrail requires tracing disabled")
	}
	for _, proto := range benchProtocols {
		t.Run(proto, func(t *testing.T) {
			var vars [4]*stm.Var[int]
			for i := range vars {
				vars[i] = stm.NewVar(i)
			}
			th := newProtoBenchThread(t, proto)
			run := func() {
				_ = th.Atomic(func(tx *stm.Tx) error {
					for _, v := range vars {
						v.Get(tx)
					}
					return nil
				})
			}
			run() // warm the Tx/level pools
			if got := testing.AllocsPerRun(100, run); got > 2 {
				t.Fatalf("%s read-only 4-var transaction allocates %.1f objects/run, budget is 2", proto, got)
			}
		})
	}
}

// TestProtocolSmallWriteAllocationGuardrail pins the write-path budget
// for every alternative protocol to the TL2 budget (9 objects: 1 Handle
// + 4 Set boxings + 4 install boxes). Eager TL2's Set-time acquisition
// must reuse the Tx-recycled eagerLocks slice after warmup.
func TestProtocolSmallWriteAllocationGuardrail(t *testing.T) {
	if obs.Active() != nil {
		t.Fatal("guardrail requires tracing disabled")
	}
	for _, proto := range benchProtocols {
		t.Run(proto, func(t *testing.T) {
			var vars [4]*stm.Var[int]
			for i := range vars {
				vars[i] = stm.NewVar(i)
			}
			th := newProtoBenchThread(t, proto)
			run := func() {
				_ = th.Atomic(func(tx *stm.Tx) error {
					for _, v := range vars {
						v.Set(tx, v.Get(tx)+1)
					}
					return nil
				})
			}
			run()
			if got := testing.AllocsPerRun(1000, run); got > 9 {
				t.Fatalf("%s 4-var write transaction allocates %.1f objects/run, budget is 9", proto, got)
			}
		})
	}
}
