package stm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// TestSingleThreadMatchesModel drives a set of vars with random
// transactional op sequences and compares against a plain-slice model:
// committed transactions apply, aborted ones don't, reads see
// everything written so far.
func TestSingleThreadMatchesModel(t *testing.T) {
	const nVars = 8
	vars := make([]*Var[int], nVars)
	model := make([]int, nVars)
	for i := range vars {
		vars[i] = NewVar(0)
	}
	th := newTestThread()
	rng := rand.New(rand.NewSource(99))
	boom := errors.New("boom")
	for round := 0; round < 2000; round++ {
		abort := rng.Intn(4) == 0
		shadow := make([]int, nVars)
		copy(shadow, model)
		err := th.Atomic(func(tx *Tx) error {
			for op := 0; op < 3; op++ {
				i := rng.Intn(nVars)
				switch rng.Intn(2) {
				case 0:
					if got := vars[i].Get(tx); got != shadow[i] {
						t.Fatalf("round %d: var %d = %d, want %d", round, i, got, shadow[i])
					}
				default:
					v := rng.Int() % 1000
					vars[i].Set(tx, v)
					shadow[i] = v
				}
			}
			if abort {
				return boom
			}
			return nil
		})
		if abort {
			if err != boom {
				t.Fatal(err)
			}
		} else {
			if err != nil {
				t.Fatal(err)
			}
			copy(model, shadow)
		}
		// Committed state must equal the model after every round.
		for i := range vars {
			if got := vars[i].GetCommitted(); got != model[i] {
				t.Fatalf("round %d: committed var %d = %d, want %d", round, i, got, model[i])
			}
		}
	}
}

// TestNestingDepthProperty quick-checks that a chain of nested levels
// with an abort at a random depth rolls back exactly the levels at and
// below the abort.
func TestNestingDepthProperty(t *testing.T) {
	prop := func(depthSeed, abortSeed uint8) bool {
		depth := int(depthSeed%5) + 1
		abortAt := int(abortSeed) % (depth + 1) // depth means "no abort"
		vars := make([]*Var[int], depth)
		for i := range vars {
			vars[i] = NewVar(0)
		}
		th := newTestThread()
		childErr := errors.New("child")
		var build func(tx *Tx, level int) error
		build = func(tx *Tx, level int) error {
			if level == depth {
				return nil
			}
			err := tx.Nested(func() error {
				vars[level].Set(tx, level+1)
				if level == abortAt {
					return childErr
				}
				return build(tx, level+1)
			})
			if level == abortAt {
				return nil // swallow the child abort, keep outer levels
			}
			return err
		}
		if err := th.Atomic(func(tx *Tx) error { return build(tx, 0) }); err != nil {
			return false
		}
		for i := range vars {
			want := i + 1
			if i >= abortAt {
				want = 0 // rolled back with the aborted child
			}
			if vars[i].GetCommitted() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenInsideNested(t *testing.T) {
	v := NewVar(0)
	openEffect := NewVar(0)
	th := newTestThread()
	childErr := errors.New("child aborts")
	var compensated bool
	err := th.Atomic(func(tx *Tx) error {
		_ = tx.Nested(func() error {
			v.Set(tx, 1)
			if err := tx.Open(func(o *Tx) error {
				openEffect.Set(o, 42)
				o.OnAbort(func() { compensated = true })
				return nil
			}); err != nil {
				return err
			}
			return childErr
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The nested child aborted: its memory write is gone, but the
	// open-nested effect committed — and the abort handler registered
	// by the open child (attached to the aborting level) must have run
	// as compensation.
	if v.GetCommitted() != 0 {
		t.Fatal("aborted child's memory write survived")
	}
	if openEffect.GetCommitted() != 42 {
		t.Fatal("open-nested effect was rolled back with the closed-nested child")
	}
	if !compensated {
		t.Fatal("abort handler from the open child did not run when its level aborted")
	}
}

func TestNestedPartialRollbackRetries(t *testing.T) {
	// A nested child that hits a memory conflict retries alone: the
	// parent body must execute once while the child body executes
	// twice.
	a := NewVar(0)
	shared := NewVar(0)
	th1 := newTestThread()
	th2 := NewThread(&RealClock{}, 2)
	parentRuns, childRuns := 0, 0
	err := th1.Atomic(func(tx *Tx) error {
		parentRuns++
		a.Set(tx, 7)
		return tx.Nested(func() error {
			childRuns++
			got := shared.Get(tx)
			if childRuns == 1 {
				// Another transaction commits a change to shared,
				// invalidating the child's read.
				if err := th2.Atomic(func(tx2 *Tx) error {
					shared.Set(tx2, got+100)
					return nil
				}); err != nil {
					return err
				}
				// Touch it again so the child sees the stale snapshot
				// on this attempt... the conflict surfaces at the
				// parent's commit-time validation instead if extension
				// succeeded. Force the issue with a write.
			}
			shared.Set(tx, got+1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if shared.GetCommitted() != 101 {
		t.Fatalf("shared = %d, want 101 (child must have re-read after retry)", shared.GetCommitted())
	}
	if a.GetCommitted() != 7 {
		t.Fatal("parent write lost")
	}
}

func TestViolateDuringBackoffEventuallyCommits(t *testing.T) {
	// Repeatedly violated transactions must still make progress once
	// the violator stops.
	v := NewVar(0)
	th := newTestThread()
	var h *Handle
	attempts := 0
	err := th.Atomic(func(tx *Tx) error {
		attempts++
		h = tx.Handle()
		v.Set(tx, attempts)
		if attempts <= 3 {
			// Simulate an external violator hitting us mid-flight.
			if !h.Violate(fmt.Sprintf("hit %d", attempts)) {
				t.Fatal("violate failed on active tx")
			}
			tx.Poll()
			t.Fatal("unreachable: Poll must unwind after violation")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4", attempts)
	}
	if th.Stats.Violations != 3 {
		t.Fatalf("violations = %d, want 3", th.Stats.Violations)
	}
	if v.GetCommitted() != 4 {
		t.Fatalf("v = %d, want 4", v.GetCommitted())
	}
}

func TestViolateObservedAtCommit(t *testing.T) {
	// A violation that lands after the last Poll must still abort the
	// transaction at its commit point.
	v := NewVar(0)
	th := newTestThread()
	attempts := 0
	err := th.Atomic(func(tx *Tx) error {
		attempts++
		v.Set(tx, attempts)
		if attempts == 1 {
			if !tx.Handle().Violate("late hit") {
				t.Fatal("violate failed")
			}
			// No Poll: the commit's Active→Prepared CAS must notice.
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if v.GetCommitted() != 2 {
		t.Fatalf("v = %d (the violated attempt's write must not commit)", v.GetCommitted())
	}
}

func TestSetCommittedVisibleToTransactions(t *testing.T) {
	v := NewVar(1)
	v.SetCommitted(5)
	th := newTestThread()
	var got int
	if err := th.Atomic(func(tx *Tx) error {
		got = v.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("got %d, want 5", got)
	}
}

func TestOpenNestedSeesOwnWritesNotParents(t *testing.T) {
	v := NewVar(0)
	th := newTestThread()
	err := th.Atomic(func(tx *Tx) error {
		v.Set(tx, 10) // buffered in the parent
		return tx.Open(func(o *Tx) error {
			// Open children read committed state, not the parent's
			// uncommitted buffer (they commit independently of it).
			if got := v.Get(o); got != 0 {
				t.Fatalf("open child saw parent's uncommitted write: %d", got)
			}
			v.Set(o, 5)
			if got := v.Get(o); got != 5 {
				t.Fatalf("open child missed own write: %d", got)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// The parent's buffered write overwrote the open child's at commit.
	if got := v.GetCommitted(); got != 10 {
		t.Fatalf("final = %d, want 10 (parent commits after child)", got)
	}
}

func TestConcurrentMixedNestingStress(t *testing.T) {
	const workers = 6
	const rounds = 150
	vars := make([]*Var[int], 16)
	for i := range vars {
		vars[i] = NewVar(0)
	}
	total := NewVar(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := NewThread(&RealClock{}, int64(w))
			rng := rand.New(rand.NewSource(int64(w) * 31))
			for r := 0; r < rounds; r++ {
				err := th.Atomic(func(tx *Tx) error {
					i, j := rng.Intn(len(vars)), rng.Intn(len(vars))
					_ = tx.Nested(func() error {
						vars[i].Set(tx, vars[i].Get(tx)+1)
						if rng.Intn(3) == 0 {
							return errors.New("drop this nested increment")
						}
						vars[j].Set(tx, vars[j].Get(tx)-1)
						return nil
					})
					total.Set(tx, total.Get(tx)+1)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := total.GetCommitted(); got != workers*rounds {
		t.Fatalf("total = %d, want %d", got, workers*rounds)
	}
	// Every committed nested child did +1/-1; aborted children did
	// nothing; so the grand sum across vars must be zero.
	sum := 0
	for _, v := range vars {
		sum += v.GetCommitted()
	}
	if sum != 0 {
		t.Fatalf("var sum = %d, want 0 (partial rollback leaked a half-done child)", sum)
	}
}

func TestStatsCountCommitsAndAborts(t *testing.T) {
	th := newTestThread()
	v := NewVar(0)
	for i := 0; i < 10; i++ {
		if err := th.Atomic(func(tx *Tx) error {
			v.Set(tx, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if th.Stats.Commits != 10 {
		t.Fatalf("commits = %d, want 10", th.Stats.Commits)
	}
	boom := errors.New("x")
	_ = th.Atomic(func(tx *Tx) error { return boom })
	if th.Stats.UserAborts != 1 {
		t.Fatalf("user aborts = %d", th.Stats.UserAborts)
	}
}

func TestDeferTickFlushedAfterCommit(t *testing.T) {
	clock := &RealClock{}
	th := NewThread(clock, 1)
	if err := th.Atomic(func(tx *Tx) error {
		tx.OnCommit(func() { th.DeferTick(1000) })
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if clock.Now() < 1000 {
		t.Fatalf("deferred cycles not flushed: now = %d", clock.Now())
	}
}

func TestHandleStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		StatusActive:    "active",
		StatusPrepared:  "prepared",
		StatusCommitted: "committed",
		StatusViolated:  "violated",
		StatusAborted:   "aborted",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if Status(99).String() == "" {
		t.Error("unknown status must render")
	}
}

// TestReadOnlySnapshotIsolation: a pure reader observing two vars that
// are always updated together must never see them out of sync, even
// without committing any writes.
func TestReadOnlySnapshotIsolation(t *testing.T) {
	a, b := NewVar(0), NewVar(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := NewThread(&RealClock{}, 1)
		for i := 1; i <= 500; i++ {
			if err := th.Atomic(func(tx *Tx) error {
				a.Set(tx, i)
				b.Set(tx, -i)
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := NewThread(&RealClock{}, 2)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var x, y int
			if err := th.Atomic(func(tx *Tx) error {
				x = a.Get(tx)
				y = b.Get(tx)
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
			if x+y != 0 {
				t.Errorf("torn snapshot: a=%d b=%d", x, y)
				return
			}
		}
	}()
	// Wait for the writer (first Add) by re-waiting the whole group
	// after signalling the reader.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Give the writer time to finish its 500 rounds, then stop reader.
	for {
		if a.GetCommitted() == 500 {
			break
		}
	}
	close(stop)
	<-done
}
