package stm

import (
	"math/rand"
	"testing"
)

func TestExponentialBackoffGrowsAndCaps(t *testing.T) {
	p := ExponentialBackoff{Base: 16, MaxShift: 4}
	rng := rand.New(rand.NewSource(1))
	prev := uint64(0)
	for attempt := 0; attempt < 4; attempt++ {
		// Average over jitter.
		var sum uint64
		for i := 0; i < 100; i++ {
			sum += p.Backoff(attempt, rng)
		}
		avg := sum / 100
		if avg <= prev {
			t.Fatalf("attempt %d: avg %d did not grow past %d", attempt, avg, prev)
		}
		prev = avg
	}
	// Beyond MaxShift the bound stops growing.
	max := uint64(0)
	for i := 0; i < 1000; i++ {
		if b := p.Backoff(100, rng); b > max {
			max = b
		}
	}
	if max > 16<<4*2 {
		t.Fatalf("capped backoff produced %d", max)
	}
}

func TestLinearBackoffGrowsLinearly(t *testing.T) {
	p := LinearBackoff{Base: 10}
	rng := rand.New(rand.NewSource(1))
	b0 := p.Backoff(0, rng)
	b9 := p.Backoff(9, rng)
	if b9 < 5*b0 {
		t.Fatalf("linear growth too shallow: %d vs %d", b0, b9)
	}
}

func TestAggressiveRetryIsTiny(t *testing.T) {
	p := AggressiveRetry{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if b := p.Backoff(i, rng); b == 0 || b > 8 {
			t.Fatalf("aggressive backoff = %d", b)
		}
	}
}

func TestSetBackoffPolicyIsUsed(t *testing.T) {
	clock := &RealClock{}
	th := NewThread(clock, 1)
	th.SetBackoffPolicy(LinearBackoff{Base: 1000})
	attempts := 0
	if err := th.Atomic(func(tx *Tx) error {
		attempts++
		if attempts == 1 {
			tx.bail(sigRetry, "forced")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// One forced retry must have charged at least the linear base via
	// Clock.Wait (RealClock counts waited cycles in Now).
	if clock.Now() < 1000 {
		t.Fatalf("custom policy not applied: clock = %d", clock.Now())
	}
	th.SetBackoffPolicy(nil) // restore default must not panic
	if err := th.Atomic(func(tx *Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
