package stm

// Protocol conformance suite: every registered concurrency-control
// protocol must pass the same serializability matrix — interleaved
// cuts, torn-pair stress (run under -race by verify.sh), write skew,
// nesting, open nesting, violations, and the snapshot-path fallbacks.
// The suite iterates Protocols(), so a newly registered protocol gets
// this coverage for free (and fails loudly until it earns it).

import (
	"errors"
	"sync"
	"testing"
)

// protoThread returns a worker on the real clock running the named
// protocol.
func protoThread(t testing.TB, name string, seed int64) *Thread {
	t.Helper()
	th := NewThread(&RealClock{}, seed)
	if err := th.SetProtocol(name); err != nil {
		t.Fatal(err)
	}
	return th
}

func TestProtocolRegistry(t *testing.T) {
	names := Protocols()
	if len(names) < 3 {
		t.Fatalf("Protocols() = %v, want at least tl2, norec, tl2-eager", names)
	}
	if names[0] != DefaultProtocol {
		t.Fatalf("Protocols()[0] = %q, want default %q first", names[0], DefaultProtocol)
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"tl2", "norec", "tl2-eager"} {
		if !seen[want] {
			t.Fatalf("protocol %q not registered (have %v)", want, names)
		}
	}
	th := newTestThread()
	if th.Protocol() != DefaultProtocol {
		t.Fatalf("new thread protocol = %q, want %q", th.Protocol(), DefaultProtocol)
	}
	if th.Stats.Protocol != DefaultProtocol {
		t.Fatalf("Stats.Protocol = %q, want %q", th.Stats.Protocol, DefaultProtocol)
	}
	if err := th.SetProtocol("no-such-protocol"); err == nil {
		t.Fatal("SetProtocol of unknown name did not error")
	}
	if err := th.SetProtocol("norec"); err != nil {
		t.Fatal(err)
	}
	if th.Protocol() != "norec" || th.Stats.Protocol != "norec" {
		t.Fatalf("after switch: Protocol()=%q Stats.Protocol=%q", th.Protocol(), th.Stats.Protocol)
	}
}

func TestSetProtocolInsideTxPanics(t *testing.T) {
	th := newTestThread()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from SetProtocol inside a transaction")
		}
	}()
	_ = th.Atomic(func(tx *Tx) error {
		return th.SetProtocol("norec")
	})
}

func TestStatsProtocolMerge(t *testing.T) {
	var s Stats
	s.Add(Stats{Protocol: "tl2", Commits: 1})
	s.Add(Stats{Protocol: "tl2", Commits: 1})
	if s.Protocol != "tl2" {
		t.Fatalf("same-protocol merge = %q, want tl2", s.Protocol)
	}
	s.Add(Stats{Protocol: "norec"})
	if s.Protocol != "mixed" {
		t.Fatalf("cross-protocol merge = %q, want mixed", s.Protocol)
	}
}

// TestProtocolConformance runs the serializability matrix against every
// registered protocol.
func TestProtocolConformance(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(t *testing.T, proto string)
	}{
		{"ReadWriteCommit", confReadWriteCommit},
		{"AbortDiscardsWrites", confAbortDiscards},
		{"CounterRace", confCounterRace},
		{"InterleavedCuts", confInterleavedCuts},
		{"TornPairStress", confTornPair},
		{"WriteSkewPrevented", confWriteSkew},
		{"ReadExtension", confReadExtension},
		{"ConflictingReadAborts", confConflictingRead},
		{"NestedPartialAbort", confNestedPartialAbort},
		{"OpenNesting", confOpenNesting},
		{"Violation", confViolation},
		{"SnapshotRead", confSnapshotRead},
		{"SnapshotFallback", confSnapshotFallback},
		{"SetReadOnlyMidTx", confSetReadOnly},
	}
	for _, proto := range Protocols() {
		t.Run(proto, func(t *testing.T) {
			for _, sc := range scenarios {
				t.Run(sc.name, func(t *testing.T) { sc.run(t, proto) })
			}
		})
	}
}

func confReadWriteCommit(t *testing.T, proto string) {
	v := NewVar("a")
	th := protoThread(t, proto, 1)
	err := th.Atomic(func(tx *Tx) error {
		v.Set(tx, "b")
		if got := v.Get(tx); got != "b" {
			t.Fatalf("read own write = %q, want b", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.GetCommitted(); got != "b" {
		t.Fatalf("committed = %q, want b", got)
	}
	if th.Stats.Commits != 1 {
		t.Fatalf("Commits = %d, want 1", th.Stats.Commits)
	}
}

func confAbortDiscards(t *testing.T, proto string) {
	v := NewVar(1)
	th := protoThread(t, proto, 1)
	wantErr := errors.New("rollback")
	if err := th.Atomic(func(tx *Tx) error {
		v.Set(tx, 99)
		return wantErr
	}); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if got := v.GetCommitted(); got != 1 {
		t.Fatalf("committed = %d, want 1 (write must be discarded)", got)
	}
	// The write lock (if the protocol took one at Set) must be gone:
	// another worker on the same protocol commits without interference.
	th2 := protoThread(t, proto, 2)
	if err := th2.Atomic(func(tx *Tx) error {
		v.Set(tx, v.Get(tx)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.GetCommitted(); got != 2 {
		t.Fatalf("committed after release = %d, want 2", got)
	}
}

func confCounterRace(t *testing.T, proto string) {
	const workers, perWorker = 6, 150
	v := NewVar(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := protoThread(t, proto, seed)
			for i := 0; i < perWorker; i++ {
				if err := th.Atomic(func(tx *Tx) error {
					v.Set(tx, v.Get(tx)+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if got := v.GetCommitted(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d (lost updates)", got, workers*perWorker)
	}
}

// confInterleavedCuts is the bank-transfer invariant: concurrent
// transfers conserve the total, and concurrent checker transactions
// must only ever observe serializable cuts (the full total).
func confInterleavedCuts(t *testing.T, proto string) {
	const accounts, perAccount = 6, 1000
	const transfers, checks = 150, 150
	vars := make([]*Var[int], accounts)
	for i := range vars {
		vars[i] = NewVar(perAccount)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		th := protoThread(t, proto, 11)
		for i := 0; i < transfers; i++ {
			from, to := i%accounts, (i+3)%accounts
			if err := th.Atomic(func(tx *Tx) error {
				amt := 1 + i%7
				vars[from].Set(tx, vars[from].Get(tx)-amt)
				vars[to].Set(tx, vars[to].Get(tx)+amt)
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		th := protoThread(t, proto, 12)
		for i := 0; i < checks; i++ {
			var sum int
			if err := th.Atomic(func(tx *Tx) error {
				sum = 0
				for _, v := range vars {
					sum += v.Get(tx)
				}
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
			if sum != accounts*perAccount {
				t.Errorf("checker saw torn cut: total = %d, want %d", sum, accounts*perAccount)
				return
			}
		}
	}()
	wg.Wait()
}

// confTornPair writes (i, -i) pairs from several writers while readers
// assert x == -y — the pairing that a torn (non-atomic) commit or an
// unsynchronized read would break, and the scenario verify.sh runs
// under the race detector.
func confTornPair(t *testing.T, proto string) {
	x, y := NewVar(0), NewVar(0)
	const writers, readers, rounds = 3, 3, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := protoThread(t, proto, seed)
			for i := 1; i <= rounds; i++ {
				if err := th.Atomic(func(tx *Tx) error {
					x.Set(tx, i)
					y.Set(tx, -i)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(20 + w))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := protoThread(t, proto, seed)
			for i := 0; i < rounds; i++ {
				var gx, gy int
				if err := th.Atomic(func(tx *Tx) error {
					gx, gy = x.Get(tx), y.Get(tx)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if gx != -gy {
					t.Errorf("torn pair: x=%d y=%d", gx, gy)
					return
				}
			}
		}(int64(30 + r))
	}
	wg.Wait()
}

func confWriteSkew(t *testing.T, proto string) {
	const rounds = 60
	for r := 0; r < rounds; r++ {
		a, b := NewVar(1), NewVar(1)
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := protoThread(t, proto, int64(w))
				_ = th.Atomic(func(tx *Tx) error {
					sum := a.Get(tx) + b.Get(tx)
					if sum < 2 {
						return nil
					}
					if w == 0 {
						a.Set(tx, a.Get(tx)-2)
					} else {
						b.Set(tx, b.Get(tx)-2)
					}
					return nil
				})
			}(w)
		}
		wg.Wait()
		if a.GetCommitted()+b.GetCommitted() < 0 {
			t.Fatalf("write skew: a=%d b=%d", a.GetCommitted(), b.GetCommitted())
		}
	}
}

// confReadExtension: tx1 reads a, tx2 commits a change to b, tx1 reads
// b — the read point must extend past tx2's commit without restarting
// tx1 (its only recorded read is still valid).
func confReadExtension(t *testing.T, proto string) {
	a, b := NewVar(1), NewVar(2)
	th1, th2 := protoThread(t, proto, 1), protoThread(t, proto, 2)
	err := th1.Atomic(func(tx *Tx) error {
		_ = a.Get(tx)
		if tx.Attempt() == 0 {
			if err := th2.Atomic(func(tx2 *Tx) error {
				b.Set(tx2, 20)
				return nil
			}); err != nil {
				return err
			}
		}
		if got := b.Get(tx); got != 20 {
			t.Fatalf("read of b = %d, want 20", got)
		}
		if tx.Attempt() != 0 {
			t.Fatal("transaction restarted despite valid extension")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// confConflictingRead: tx1 reads a and writes b; tx2 changes a before
// tx1 commits. tx1 must restart and see the new value.
func confConflictingRead(t *testing.T, proto string) {
	a, b := NewVar(1), NewVar(2)
	th1, th2 := protoThread(t, proto, 1), protoThread(t, proto, 2)
	sawOld, sawNew := false, false
	err := th1.Atomic(func(tx *Tx) error {
		got := a.Get(tx)
		if got == 1 {
			sawOld = true
		}
		if got == 10 {
			sawNew = true
		}
		b.Set(tx, got*2)
		if tx.Attempt() == 0 {
			if err := th2.Atomic(func(tx2 *Tx) error {
				a.Set(tx2, 10)
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawOld || !sawNew {
		t.Fatalf("sawOld=%v sawNew=%v, want both (abort + consistent retry)", sawOld, sawNew)
	}
	if th1.Stats.Aborts == 0 {
		t.Fatal("expected at least one abort")
	}
	if got := b.GetCommitted(); got != 20 {
		t.Fatalf("b = %d, want 20 (written from the consistent retry)", got)
	}
}

func confNestedPartialAbort(t *testing.T, proto string) {
	v, w := NewVar(1), NewVar(1)
	th := protoThread(t, proto, 1)
	childErr := errors.New("child abort")
	err := th.Atomic(func(tx *Tx) error {
		v.Set(tx, 2)
		if err := tx.Nested(func() error {
			w.Set(tx, 99)
			return childErr
		}); err != childErr {
			t.Fatalf("nested err = %v, want %v", err, childErr)
		}
		// The child's write is gone; the parent's survives.
		if got := w.Get(tx); got != 1 {
			t.Fatalf("w inside parent after child abort = %d, want 1", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.GetCommitted() != 2 || w.GetCommitted() != 1 {
		t.Fatalf("committed v=%d w=%d, want 2, 1", v.GetCommitted(), w.GetCommitted())
	}
}

func confOpenNesting(t *testing.T, proto string) {
	counter := NewVar(0)
	v := NewVar(0)
	th := protoThread(t, proto, 1)
	compensated := false
	wantErr := errors.New("parent rolls back")
	err := th.Atomic(func(tx *Tx) error {
		if err := tx.Open(func(o *Tx) error {
			counter.Set(o, counter.Get(o)+1)
			o.OnAbort(func() { compensated = true })
			return nil
		}); err != nil {
			return err
		}
		// The open child's effect is already committed and visible.
		if got := counter.GetCommitted(); got != 1 {
			t.Fatalf("open-nested effect not published: counter = %d", got)
		}
		v.Set(tx, 1)
		return wantErr
	})
	if err != wantErr {
		t.Fatal(err)
	}
	if !compensated {
		t.Fatal("abort handler from open child did not run on parent rollback")
	}
	if v.GetCommitted() != 0 {
		t.Fatal("parent write survived rollback")
	}
}

func confViolation(t *testing.T, proto string) {
	th := protoThread(t, proto, 1)
	var victim *Handle
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error)
	go func() {
		th2 := protoThread(t, proto, 2)
		done <- th2.Atomic(func(tx *Tx) error {
			if tx.Attempt() == 0 {
				victim = tx.Handle()
				close(started)
				<-release
				tx.Poll()
				t.Error("victim survived Poll after violation")
			}
			return nil
		})
	}()
	<-started
	if !victim.Violate("conformance conflict") {
		t.Fatal("Violate of active tx returned false")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	_ = th
}

func confSnapshotRead(t *testing.T, proto string) {
	a, b := NewVar(10), NewVar(20)
	th := protoThread(t, proto, 1)
	var sum int
	if err := th.AtomicRead(func(tx *Tx) error {
		if !tx.IsSnapshot() {
			t.Fatal("AtomicRead not in snapshot mode")
		}
		sum = a.Get(tx) + b.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 30 {
		t.Fatalf("sum = %d, want 30", sum)
	}
	if th.Stats.SnapshotCommits != 1 {
		t.Fatalf("SnapshotCommits = %d, want 1", th.Stats.SnapshotCommits)
	}
}

func confSnapshotFallback(t *testing.T, proto string) {
	v := NewVar(5)
	th := protoThread(t, proto, 1)
	if err := th.AtomicRead(func(tx *Tx) error {
		v.Set(tx, v.Get(tx)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.GetCommitted(); got != 6 {
		t.Fatalf("committed = %d, want 6 (fallback must honor the write)", got)
	}
	if th.Stats.SnapshotFallbacks == 0 {
		t.Fatal("writing AtomicRead did not count a snapshot fallback")
	}
}

func confSetReadOnly(t *testing.T, proto string) {
	a, b := NewVar(1), NewVar(2)
	th := protoThread(t, proto, 1)
	helper := protoThread(t, proto, 2)
	var got int
	if err := th.Atomic(func(tx *Tx) error {
		_ = a.Get(tx)
		tx.SetReadOnly()
		if tx.Attempt() == 0 && !tx.IsSnapshot() {
			// NOrec may legitimately fail to establish a clock-space
			// mark under concurrent commits, but quiescent it must not.
			t.Fatal("SetReadOnly did not enter snapshot mode")
		}
		// A commit that lands after the switch must be invisible to the
		// frozen read point.
		if tx.Attempt() == 0 {
			if err := helper.Atomic(func(h *Tx) error {
				b.Set(h, 99)
				return nil
			}); err != nil {
				return err
			}
		}
		got = b.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("snapshot read of b = %d, want 2 (pre-switch state)", got)
	}
	if th.Stats.SnapshotCommits != 1 {
		t.Fatalf("SnapshotCommits = %d, want 1", th.Stats.SnapshotCommits)
	}
}

// TestEagerLockLifecycle (white-box) pins the encounter-time variant's
// defining behaviour: the lockword is owned from Set until commit or
// rollback, and released on both.
func TestEagerLockLifecycle(t *testing.T) {
	v := NewVar(1)
	th := protoThread(t, "tl2-eager", 1)
	if err := th.Atomic(func(tx *Tx) error {
		v.Set(tx, 2)
		if w := v.core.word.Load(); !wordLocked(w) {
			t.Fatal("lockword not held after Set under tl2-eager")
		}
		if v.core.owner.Load() != tx.handle {
			t.Fatal("lockword owner is not the writing transaction")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if w := v.core.word.Load(); wordLocked(w) {
		t.Fatal("lockword still held after commit")
	}
	wantErr := errors.New("abort")
	if err := th.Atomic(func(tx *Tx) error {
		v.Set(tx, 3)
		return wantErr
	}); err != wantErr {
		t.Fatal(err)
	}
	if w := v.core.word.Load(); wordLocked(w) {
		t.Fatal("lockword still held after rollback")
	}
	if got := v.GetCommitted(); got != 2 {
		t.Fatalf("committed = %d, want 2", got)
	}
}

// TestEagerWriteWriteConflict: a second writer hitting a Set-held
// lockword must abort at the write (encounter time), not at commit,
// and succeed once the holder finishes.
func TestEagerWriteWriteConflict(t *testing.T) {
	v := NewVar(0)
	holderIn := make(chan struct{})
	holderGo := make(chan struct{})
	done := make(chan error)
	go func() {
		th := protoThread(t, "tl2-eager", 1)
		done <- th.Atomic(func(tx *Tx) error {
			if tx.Attempt() == 0 {
				v.Set(tx, 1)
				close(holderIn)
				<-holderGo
			} else {
				v.Set(tx, 1)
			}
			return nil
		})
	}()
	<-holderIn
	th2 := protoThread(t, "tl2-eager", 2)
	var sawConflict bool
	err := th2.Atomic(func(tx *Tx) error {
		if tx.Attempt() == 0 {
			defer close(holderGo)
		}
		v.Set(tx, 2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sawConflict = th2.Stats.Aborts > 0
	if !sawConflict {
		t.Fatal("second writer never observed the encounter-time conflict")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := v.GetCommitted(); got != 1 && got != 2 {
		t.Fatalf("committed = %d, want a serial outcome (1 or 2)", got)
	}
}

// TestEagerNestedPartialRelease: aborting a closed-nested child under
// tl2-eager releases only the child's fresh acquisitions — a variable
// also written by the parent stays locked and commits.
func TestEagerNestedPartialRelease(t *testing.T) {
	p, c := NewVar(0), NewVar(0)
	th := protoThread(t, "tl2-eager", 1)
	childErr := errors.New("child abort")
	if err := th.Atomic(func(tx *Tx) error {
		p.Set(tx, 1)
		if err := tx.Nested(func() error {
			c.Set(tx, 1)
			p.Set(tx, 2) // already held by the parent level
			return childErr
		}); err != childErr {
			t.Fatalf("nested err = %v", err)
		}
		if w := c.core.word.Load(); wordLocked(w) {
			t.Fatal("child-only lock not released by partial rollback")
		}
		if w := p.core.word.Load(); !wordLocked(w) || p.core.owner.Load() != tx.handle {
			t.Fatal("parent-held lock lost in partial rollback")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p.GetCommitted() != 1 || c.GetCommitted() != 0 {
		t.Fatalf("committed p=%d c=%d, want 1, 0", p.GetCommitted(), c.GetCommitted())
	}
}

// TestNOrecSilentRestoreValidates pins NOrec's defining advantage over
// version validation: a concurrent commit that re-stores the value a
// reader observed does not invalidate the reader, because validation
// compares values, not versions.
func TestNOrecSilentRestoreValidates(t *testing.T) {
	x, y := NewVar(7), NewVar(0)
	reader := protoThread(t, "norec", 1)
	writer := protoThread(t, "norec", 2)
	err := reader.Atomic(func(tx *Tx) error {
		if got := x.Get(tx); got != 7 {
			t.Fatalf("x = %d, want 7", got)
		}
		if tx.Attempt() == 0 {
			// A commit that bumps the sequence lock but re-stores x's
			// observed value. Version validation would now abort the
			// reader; value validation must not.
			if err := writer.Atomic(func(w *Tx) error {
				x.Set(w, 7)
				y.Set(w, 1)
				return nil
			}); err != nil {
				return err
			}
		}
		_ = y.Get(tx) // forces validation against the moved sequence
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if reader.Stats.Aborts != 0 {
		t.Fatalf("reader aborted %d times; silent re-store must validate", reader.Stats.Aborts)
	}
	if reader.Stats.Commits != 1 {
		t.Fatalf("Commits = %d, want 1", reader.Stats.Commits)
	}
}

// TestNOrecSequenceLockShape (white-box): the sequence lock is even at
// rest and advances by exactly 2 per writing commit; read-only commits
// leave it untouched.
func TestNOrecSequenceLockShape(t *testing.T) {
	th := protoThread(t, "norec", 1)
	v := NewVar(0)
	before := norecSeq.Load()
	if before&1 != 0 {
		t.Fatalf("sequence lock odd (%d) at rest", before)
	}
	for i := 0; i < 3; i++ {
		if err := th.Atomic(func(tx *Tx) error {
			v.Set(tx, v.Get(tx)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	after := norecSeq.Load()
	if after != before+6 {
		t.Fatalf("sequence moved %d→%d, want +2 per writing commit (+6)", before, after)
	}
	if err := th.Atomic(func(tx *Tx) error {
		_ = v.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := norecSeq.Load(); got != after {
		t.Fatalf("read-only commit moved the sequence lock %d→%d", after, got)
	}
}
