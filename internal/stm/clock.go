// Package stm is a software transactional memory with the rich
// transactional semantics the paper's collection classes require
// (paper §4): closed-nested transactions with partial rollback,
// open-nested transactions, commit and abort handlers associated with
// nesting levels, and program-directed abort of other transactions.
//
// The design is TL2-flavored optimistic concurrency control: a global
// version clock, per-variable version numbers, per-transaction read and
// write sets, lazy versioning (writes buffered until commit), and
// commit-time validation with the write set locked in variable-ID order.
// The paper evaluates on the TCC hardware TM; this STM substitutes for
// it (see DESIGN.md §4) and exposes the same programmer-visible
// semantics.
//
// All time is charged through a Clock so the same transactional code
// runs both on real hardware (RealClock) and on the deterministic
// virtual-CPU simulator (sim.CPU satisfies Clock).
package stm

import "runtime"

// Clock abstracts the passage of time for a single worker. It exists so
// transactional code can charge abstract cycles: on the simulator, Tick
// advances virtual time and yields to the scheduler; on real hardware it
// is (nearly) free and real time passes on its own.
type Clock interface {
	// Tick charges busy cycles. Must not be called while holding a lock
	// shared with other workers.
	Tick(cycles uint64)
	// Wait charges stall cycles (contention backoff).
	Wait(cycles uint64)
	// Now returns the worker-local time in cycles.
	Now() uint64
}

// RealClock is the Clock for running on the host machine: Tick is a
// no-op (real work takes real time), Wait yields the processor briefly,
// and Now counts only explicitly charged cycles.
type RealClock struct {
	now uint64
}

// Tick records charged cycles; on real hardware the work itself already
// took time, so nothing else happens.
func (c *RealClock) Tick(cycles uint64) { c.now += cycles }

// maxWaitYields caps how many times one Wait call yields the processor.
// Backoff cycles grow exponentially with the retry attempt; without a
// cap a long backoff degrades into a busy Gosched storm (cycles/64
// yields) that burns the very CPU the backoff is meant to cede.
const maxWaitYields = 64

// waitYields maps a stall of the given length to a number of scheduler
// yields: proportional for short stalls, clamped at maxWaitYields.
func waitYields(cycles uint64) uint64 {
	y := cycles/64 + 1
	if y > maxWaitYields {
		return maxWaitYields
	}
	return y
}

// Wait backs off by yielding the processor, roughly proportionally to
// the requested cycles, capped so pathological backoffs do not spin.
func (c *RealClock) Wait(cycles uint64) {
	c.now += cycles
	for i := uint64(0); i < waitYields(cycles); i++ {
		runtime.Gosched()
	}
}

// Now returns the cycles charged so far.
func (c *RealClock) Now() uint64 { return c.now }

var _ Clock = (*RealClock)(nil)

// Abstract cycle costs, mirroring the paper's "all instructions except
// loads and stores have a CPI of 1.0" abstraction: only the relative
// magnitudes matter for the speedup shapes the figures report.
const (
	// CostRead and CostWrite are charged per transactional variable
	// access.
	CostRead  = 2
	CostWrite = 2
	// CostTxBegin is charged when a top-level transaction (re)starts.
	CostTxBegin = 8
	// CostCommitBase plus CostCommitPerWrite are charged at commit.
	CostCommitBase     = 12
	CostCommitPerWrite = 3
	// CostSnapshotCommit is charged when a snapshot (read-only)
	// transaction completes: cheaper than CostCommitBase because the
	// snapshot path locks, validates, and publishes nothing.
	CostSnapshotCommit = 4
	// CostAbort is the fixed rollback cost; the real price of an abort
	// is re-executing the body, which re-charges naturally.
	CostAbort = 16
	// CostOpenCommit is charged when an open-nested child commits.
	CostOpenCommit = 6
	// backoffBase seeds the randomized exponential backoff run between
	// attempts of a conflicted transaction (contention management,
	// paper §5.1). The cap keeps repeatedly violated long transactions
	// from stalling far beyond their own body length.
	backoffBase = 16
	// backoffMaxShift caps the exponential growth of the backoff.
	backoffMaxShift = 6
)
