package stm

import (
	"errors"
	"fmt"
	"testing"
)

func TestOnTopCommitFromNestedLevel(t *testing.T) {
	// OnTopCommit registers at the root level no matter how deep the
	// current nesting is: the handler survives the nested child's
	// commit and runs exactly once at top-level commit.
	th := newTestThread()
	runs := 0
	err := th.Atomic(func(tx *Tx) error {
		return tx.Nested(func() error {
			return tx.Nested(func() error {
				tx.OnTopCommit(func() { runs++ })
				return nil
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("top commit handler ran %d times", runs)
	}
}

func TestOnTopAbortRunsOnWholeTxRollbackOnly(t *testing.T) {
	th := newTestThread()
	aborts := 0
	childErr := errors.New("child")
	// Registered from inside a nested child that aborts: unlike a
	// level-local OnAbort, the top-level registration survives and runs
	// only if the whole transaction rolls back. This is precisely the
	// single-handler design the collections rely on (and the documented
	// caveat of the paper's §5.1 single-handler choice).
	if err := th.Atomic(func(tx *Tx) error {
		_ = tx.Nested(func() error {
			tx.OnTopAbort(func() { aborts++ })
			return childErr
		})
		return nil // transaction commits
	}); err != nil {
		t.Fatal(err)
	}
	if aborts != 0 {
		t.Fatalf("top abort handler ran on commit (%d)", aborts)
	}
	boom := errors.New("boom")
	_ = th.Atomic(func(tx *Tx) error {
		tx.OnTopAbort(func() { aborts++ })
		return boom
	})
	if aborts != 1 {
		t.Fatalf("top abort handler ran %d times on rollback", aborts)
	}
}

// TestCommitHandlersAreMutuallyAtomic: handlers of different
// transactions must never interleave (they run under the commit guard,
// emulating TCC's atomic commit broadcast).
func TestCommitHandlersAreMutuallyAtomic(t *testing.T) {
	const workers = 6
	const rounds = 100
	inside := 0
	bad := false
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			th := NewThread(&RealClock{}, int64(w))
			for r := 0; r < rounds; r++ {
				_ = th.Atomic(func(tx *Tx) error {
					tx.OnCommit(func() {
						inside++
						if inside != 1 {
							bad = true
						}
						inside--
					})
					return nil
				})
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if bad {
		t.Fatal("commit handlers of different transactions interleaved")
	}
}

func TestSignalStringAndTxThread(t *testing.T) {
	s := &signal{kind: sigRetry, reason: "why"}
	if got := s.String(); got == "" || got != fmt.Sprintf("stm signal %d (why)", sigRetry) {
		t.Fatalf("signal string = %q", got)
	}
	th := newTestThread()
	if err := th.Atomic(func(tx *Tx) error {
		if tx.Thread() != th {
			t.Error("Tx.Thread mismatch")
		}
		return tx.Open(func(o *Tx) error {
			if o.Thread() != th {
				t.Error("open child Thread mismatch")
			}
			if o.Handle() != tx.Handle() {
				t.Error("open child must share the top-level handle")
			}
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRetryOnMemoryConflict(t *testing.T) {
	// Force an open child's immediate commit to fail once: another
	// transaction commits a conflicting write between the child's read
	// and its install. The open child alone must retry.
	v := NewVar(0)
	th1 := newTestThread()
	th2 := NewThread(&RealClock{}, 2)
	openRuns := 0
	err := th1.Atomic(func(tx *Tx) error {
		return tx.Open(func(o *Tx) error {
			openRuns++
			got := v.Get(o)
			if openRuns == 1 {
				if err := th2.Atomic(func(tx2 *Tx) error {
					v.Set(tx2, got+50)
					return nil
				}); err != nil {
					return err
				}
			}
			v.Set(o, got+1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if openRuns != 2 {
		t.Fatalf("open child ran %d times, want 2", openRuns)
	}
	if v.GetCommitted() != 51 {
		t.Fatalf("v = %d, want 51", v.GetCommitted())
	}
	if th1.Stats.OpenRetries != 1 {
		t.Fatalf("open retries = %d", th1.Stats.OpenRetries)
	}
}

func TestStatsAddMergesReasonMaps(t *testing.T) {
	var a, b Stats
	a.countViolation("x")
	a.countViolation("x")
	b.countViolation("y")
	b.countViolation("")
	a.Add(b)
	if a.Violations != 4 {
		t.Fatalf("violations = %d", a.Violations)
	}
	if a.ViolationsByReason["x"] != 2 || a.ViolationsByReason["y"] != 1 || a.ViolationsByReason["(unspecified)"] != 1 {
		t.Fatalf("reason map = %v", a.ViolationsByReason)
	}
}
