package stm

import "math/rand"

// BackoffPolicy is a pluggable contention-management policy: given how
// many times a transaction has failed, it chooses how long to stall
// before the next attempt. The paper (§5.1) notes that optimistic
// concurrency control "can suffer from livelock since long-running
// transactions may be continuously rolled back by shorter ones" and
// defers to contention-management policies; these are the standard ones
// from that literature.
type BackoffPolicy interface {
	// Backoff returns the stall in cycles before attempt+1. rng is the
	// owning thread's deterministic source.
	Backoff(attempt int, rng *rand.Rand) uint64
}

// ExponentialBackoff doubles a randomized base per failure up to a cap;
// the default policy.
type ExponentialBackoff struct {
	// Base is the first-failure stall; MaxShift caps the doubling.
	Base     uint64
	MaxShift int
}

// Backoff implements BackoffPolicy.
func (p ExponentialBackoff) Backoff(attempt int, rng *rand.Rand) uint64 {
	shift := attempt
	if shift > p.MaxShift {
		shift = p.MaxShift
	}
	base := p.Base << shift
	return base + uint64(rng.Int63n(int64(base)))
}

// LinearBackoff grows the stall linearly with the failure count.
type LinearBackoff struct {
	Base uint64
}

// Backoff implements BackoffPolicy.
func (p LinearBackoff) Backoff(attempt int, rng *rand.Rand) uint64 {
	base := p.Base * uint64(attempt+1)
	return base + uint64(rng.Int63n(int64(p.Base)))
}

// AggressiveRetry barely waits at all — the "Aggressive" contention
// manager: maximal optimism, maximal livelock exposure.
type AggressiveRetry struct{}

// Backoff implements BackoffPolicy.
func (AggressiveRetry) Backoff(attempt int, rng *rand.Rand) uint64 {
	return 1 + uint64(rng.Int63n(4))
}

// defaultPolicy matches the historical built-in behaviour.
var defaultPolicy BackoffPolicy = ExponentialBackoff{Base: backoffBase, MaxShift: backoffMaxShift}

// SetBackoffPolicy installs a contention-management policy for this
// worker; nil restores the default randomized exponential backoff.
func (t *Thread) SetBackoffPolicy(p BackoffPolicy) { t.policy = p }
