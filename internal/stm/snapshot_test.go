package stm

// Tests for the MVCC-lite snapshot read path (Thread.AtomicRead,
// Tx.SetReadOnly, varCore.readAt): invisible-read serializability,
// non-blocking progress against continuous writers, lap-detection
// fallback, and torn-snapshot freedom under the race detector.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"tcc/internal/obs"
)

func newSnapThread(seed int64) *Thread { return NewThread(&RealClock{}, seed) }

// TestReadAtHistoryChain exercises varCore.readAt directly: one retained
// prior box serves readers one commit behind; two commits past the read
// version report shallow history rather than a wrong value.
func TestReadAtHistoryChain(t *testing.T) {
	c := newVarCore(10)
	clock := &RealClock{}
	rv := globalClock.Load()
	if v, ok := c.readAt(clock, rv); !ok || v.(int) != 10 {
		t.Fatalf("readAt on fresh var = (%v, %v), want (10, true)", v, ok)
	}

	h := &Handle{}
	c.tryLock(h)
	c.install(20, globalClock.Add(1))
	// One commit past rv: the prior box still serves the old version.
	if v, ok := c.readAt(clock, rv); !ok || v.(int) != 10 {
		t.Fatalf("readAt one commit behind = (%v, %v), want (10, true)", v, ok)
	}
	// The new version is visible to a reader at the new clock.
	if v, ok := c.readAt(clock, globalClock.Load()); !ok || v.(int) != 20 {
		t.Fatalf("readAt at head = (%v, %v), want (20, true)", v, ok)
	}

	c.tryLock(h)
	c.install(30, globalClock.Add(1))
	// Two commits past rv: history was truncated, the reader is lapped.
	if _, ok := c.readAt(clock, rv); ok {
		t.Fatal("readAt two commits behind reported ok; want shallow-history failure")
	}
}

// TestReadAtGivesUpOnHeldLock: a committer parked on the lockword makes
// readAt report failure after its spin budget instead of spinning
// forever (the snapshot loop then resamples or falls back).
func TestReadAtGivesUpOnHeldLock(t *testing.T) {
	c := newVarCore(1)
	c.tryLock(&Handle{})
	if _, ok := c.readAt(&RealClock{}, globalClock.Load()); ok {
		t.Fatal("readAt returned ok despite a held lockword")
	}
}

// TestAtomicReadBasic: committed values are visible, the snapshot
// commit is counted, and no ordinary commit machinery ran.
func TestAtomicReadBasic(t *testing.T) {
	v := NewVar(41)
	v.SetCommitted(42)
	th := newSnapThread(1)
	var got int
	if err := th.AtomicRead(func(tx *Tx) error {
		if !tx.IsSnapshot() {
			t.Error("AtomicRead body does not report IsSnapshot")
		}
		got = v.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("AtomicRead saw %d, want 42", got)
	}
	if th.Stats.Commits != 1 || th.Stats.SnapshotCommits != 1 || th.Stats.SnapshotFallbacks != 0 {
		t.Fatalf("stats = %+v, want 1 commit, 1 snapshot commit, 0 fallbacks", th.Stats)
	}
}

// TestAtomicReadErrorReturn: a body error is returned without retrying,
// like Atomic, and counted as a user abort.
func TestAtomicReadErrorReturn(t *testing.T) {
	v := NewVar(1)
	th := newSnapThread(1)
	want := errors.New("nope")
	runs := 0
	if err := th.AtomicRead(func(tx *Tx) error {
		runs++
		v.Get(tx)
		return want
	}); err != want {
		t.Fatalf("AtomicRead error = %v, want %v", err, want)
	}
	if runs != 1 {
		t.Fatalf("body ran %d times, want 1", runs)
	}
	if th.Stats.UserAborts != 1 || th.Stats.Commits != 0 {
		t.Fatalf("stats = %+v, want 1 user abort, 0 commits", th.Stats)
	}
}

// TestAtomicReadSerializableCut is the invisible-read serializability
// proof: a snapshot reader parked between its two reads must not see a
// writer's commit that lands in the gap — it returns the consistent
// pre-commit pair, with zero retries and zero aborts on either side.
// The retry path would also stay consistent, but only by aborting and
// re-running; the snapshot path must do it without the writer or the
// reader losing any work.
func TestAtomicReadSerializableCut(t *testing.T) {
	a := NewVar(0)
	b := NewVar(0)
	reader := newSnapThread(1)
	writer := newSnapThread(2)

	readA := make(chan struct{})
	wrote := make(chan struct{})
	var gotA, gotB int
	done := make(chan error, 1)
	go func() {
		done <- reader.AtomicRead(func(tx *Tx) error {
			gotA = a.Get(tx)
			readA <- struct{}{}
			<-wrote
			gotB = b.Get(tx)
			return nil
		})
	}()
	<-readA
	if err := writer.Atomic(func(tx *Tx) error {
		a.Set(tx, 1)
		b.Set(tx, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	close(wrote)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if gotA != 0 || gotB != 0 {
		t.Fatalf("snapshot saw (%d, %d) across a concurrent commit, want the consistent cut (0, 0)", gotA, gotB)
	}
	if reader.Stats.Aborts != 0 || reader.Stats.SnapshotFallbacks != 0 || reader.Stats.Commits != 1 {
		t.Fatalf("reader stats = %+v, want 1 commit and no aborts/fallbacks", reader.Stats)
	}
	if writer.Stats.Aborts != 0 || writer.Stats.Violations != 0 {
		t.Fatalf("writer stats = %+v, want no lost work", writer.Stats)
	}
}

// eventLog is a test tracer that retains every event per CPU lane.
type eventLog struct {
	mu     sync.Mutex
	events []obs.Event
}

func (l *eventLog) Trace(e obs.Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// TestSnapshotReadersNonBlocking is the acceptance test for the
// non-blocking claim: a writer commits continuously while an AtomicRead
// loop completes a fixed budget of read-only transactions. The reader
// must finish with zero aborts, zero fallbacks, and an empty retry
// record — every one of its commit events at attempt 0, no abort or
// backoff event on its lane — even though the writer truncates history
// under it the whole time.
func TestSnapshotReadersNonBlocking(t *testing.T) {
	const readerTxs = 2000
	a := NewVar(0)
	b := NewVar(0)
	reader := newSnapThread(1)
	reader.TraceID = 1
	writer := newSnapThread(2)
	writer.TraceID = 2

	log := &eventLog{}
	obs.SetTracer(log)
	defer obs.SetTracer(nil)

	stop := make(chan struct{})
	var writerCommits atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = writer.Atomic(func(tx *Tx) error {
				a.Set(tx, i)
				b.Set(tx, i)
				return nil
			})
			writerCommits.Add(1)
		}
	}()

	// Keep reading until the writer has provably committed under us —
	// snapshot reads are fast enough to finish before a goroutine
	// switch, which would prove nothing.
	readerDone := 0
	for readerDone < readerTxs || writerCommits.Load() < 50 {
		if err := reader.AtomicRead(func(tx *Tx) error {
			if x, y := a.Get(tx), b.Get(tx); x != y {
				t.Errorf("torn snapshot: a=%d b=%d", x, y)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		readerDone++
	}
	close(stop)
	wg.Wait()

	if got := reader.Stats.Commits; got != uint64(readerDone) || reader.Stats.SnapshotCommits != uint64(readerDone) {
		t.Fatalf("reader commits = %d (snapshot %d), want %d on the snapshot path",
			got, reader.Stats.SnapshotCommits, readerDone)
	}
	if reader.Stats.Aborts != 0 || reader.Stats.Violations != 0 || reader.Stats.SnapshotFallbacks != 0 {
		t.Fatalf("reader lost work: %+v", reader.Stats)
	}
	log.mu.Lock()
	defer log.mu.Unlock()
	for _, e := range log.events {
		if e.CPU != reader.TraceID {
			continue
		}
		switch e.Kind {
		case obs.KindTxAbort, obs.KindTxViolated, obs.KindBackoff:
			t.Fatalf("reader lane emitted %v; snapshot readers must never retry", e.Kind)
		case obs.KindTxCommit:
			if e.Attempt != 0 || !e.Snapshot {
				t.Fatalf("reader commit event attempt=%d snapshot=%v, want 0/true", e.Attempt, e.Snapshot)
			}
		}
	}
}

// TestSnapshotTornPairStress hammers two vars from a writer while
// snapshot readers check the (a == b) invariant, under -race in CI.
// One prior box per var is exactly enough for a reader one commit
// behind; a reader lapped twice restarts with a fresh read version and
// must still never observe a mixed pair.
func TestSnapshotTornPairStress(t *testing.T) {
	a := NewVar(0)
	b := NewVar(0)
	const readers = 4
	iters := 5000
	if testing.Short() {
		iters = 500
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		writer := newSnapThread(99)
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = writer.Atomic(func(tx *Tx) error {
				a.Set(tx, i)
				b.Set(tx, i)
				return nil
			})
		}
	}()

	var torn atomic.Uint64
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(seed int64) {
			defer rg.Done()
			th := newSnapThread(seed)
			for i := 0; i < iters; i++ {
				_ = th.AtomicRead(func(tx *Tx) error {
					if x, y := a.Get(tx), b.Get(tx); x != y {
						torn.Add(1)
					}
					return nil
				})
			}
		}(int64(r + 1))
	}
	rg.Wait()
	close(stop)
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("observed %d torn snapshots", n)
	}
}

// TestAtomicReadFallbackOnWrite: a body that writes cannot stay on the
// snapshot path; it transparently re-runs on the retry path, commits
// the write, and the detour is visible in SnapshotFallbacks.
func TestAtomicReadFallbackOnWrite(t *testing.T) {
	v := NewVar(0)
	th := newSnapThread(1)
	if err := th.AtomicRead(func(tx *Tx) error {
		v.Set(tx, v.Get(tx)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.GetCommitted(); got != 1 {
		t.Fatalf("fallback write lost: v = %d, want 1", got)
	}
	if th.Stats.SnapshotFallbacks != 1 || th.Stats.Commits != 1 || th.Stats.SnapshotCommits != 0 {
		t.Fatalf("stats = %+v, want 1 fallback + 1 ordinary commit", th.Stats)
	}
}

// TestAtomicReadFallbackOnOpenNesting: open nesting exists to publish
// effects, so it too drops the attempt to the retry path.
func TestAtomicReadFallbackOnOpenNesting(t *testing.T) {
	v := NewVar(0)
	th := newSnapThread(1)
	if err := th.AtomicRead(func(tx *Tx) error {
		return tx.Open(func(o *Tx) error {
			v.Set(o, 7)
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.GetCommitted(); got != 7 {
		t.Fatalf("open-nested write lost: v = %d, want 7", got)
	}
	if th.Stats.SnapshotFallbacks != 1 {
		t.Fatalf("stats = %+v, want 1 fallback", th.Stats)
	}
}

// TestAtomicReadShallowHistoryRestart: when writers lap the reader
// twice mid-attempt, the snapshot restarts with a fresh read version
// (no fallback, no abort) and completes on the snapshot path.
func TestAtomicReadShallowHistoryRestart(t *testing.T) {
	v := NewVar(0)
	th := newSnapThread(1)
	lapped := false
	if err := th.AtomicRead(func(tx *Tx) error {
		if !lapped {
			// Two committed writes after this attempt sampled its
			// read version truncate v's history past it.
			lapped = true
			v.SetCommitted(1)
			v.SetCommitted(2)
		}
		v.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if th.Stats.SnapshotCommits != 1 || th.Stats.SnapshotFallbacks != 0 || th.Stats.Aborts != 0 {
		t.Fatalf("stats = %+v, want a snapshot commit after a silent restart", th.Stats)
	}
}

// TestAtomicReadNested: closed nesting is read-compatible — a Nested
// body in snapshot mode reads the same frozen version and the whole
// transaction still commits on the snapshot path.
func TestAtomicReadNested(t *testing.T) {
	v := NewVar(5)
	th := newSnapThread(1)
	var got int
	if err := th.AtomicRead(func(tx *Tx) error {
		return tx.Nested(func() error {
			got = v.Get(tx)
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	if got != 5 || th.Stats.SnapshotCommits != 1 {
		t.Fatalf("nested snapshot read got %d (stats %+v), want 5 on the snapshot path", got, th.Stats)
	}
}

// TestSetReadOnlyMidTransaction: the escape hatch flips a running
// Atomic body onto the snapshot path; the commit is counted as a
// snapshot commit and later reads are invisible (a concurrent commit
// between the reads does not abort the transaction).
func TestSetReadOnlyMidTransaction(t *testing.T) {
	a := NewVar(0)
	b := NewVar(0)
	th := newSnapThread(1)
	other := newSnapThread(2)
	first := true
	var gotA, gotB int
	if err := th.Atomic(func(tx *Tx) error {
		gotA = a.Get(tx)
		tx.SetReadOnly()
		if !tx.IsSnapshot() {
			t.Error("SetReadOnly did not engage snapshot mode")
		}
		if first {
			first = false
			// A conflicting commit to b lands after the switch; a
			// recorded read would force an abort-or-extend, an
			// invisible one must not.
			if err := other.Atomic(func(otx *Tx) error {
				b.Set(otx, 9)
				return nil
			}); err != nil {
				t.Error(err)
			}
		}
		gotB = b.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The snapshot is at the tx's read version: the concurrent commit
	// is invisible, and nothing aborted on either side.
	if gotA != 0 || gotB != 0 {
		t.Fatalf("mixed-mode tx saw (%d, %d), want the consistent cut (0, 0)", gotA, gotB)
	}
	if th.Stats.Commits != 1 || th.Stats.SnapshotCommits != 1 || th.Stats.Aborts != 0 {
		t.Fatalf("stats = %+v, want 1 snapshot commit, 0 aborts", th.Stats)
	}
}

// TestSetReadOnlyThenWrite: a write after SetReadOnly restarts the
// attempt with snapshot mode pinned off; the transaction still commits
// its write and the detour shows up only as a fallback.
func TestSetReadOnlyThenWrite(t *testing.T) {
	v := NewVar(0)
	th := newSnapThread(1)
	declared := 0
	if err := th.Atomic(func(tx *Tx) error {
		tx.SetReadOnly()
		if tx.IsSnapshot() {
			declared++
		}
		v.Set(tx, v.Get(tx)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.GetCommitted(); got != 1 {
		t.Fatalf("v = %d, want 1", got)
	}
	// First run: snapshot engaged, Set fell back. Second run: fellBack
	// pins SetReadOnly off, the write commits normally.
	if declared != 1 {
		t.Fatalf("snapshot mode engaged on %d runs, want exactly the first", declared)
	}
	if th.Stats.SnapshotFallbacks != 1 || th.Stats.Commits != 1 || th.Stats.Aborts != 0 {
		t.Fatalf("stats = %+v, want 1 silent fallback + 1 commit", th.Stats)
	}
}

// TestSetReadOnlyAfterWriteIsIgnored: a transaction that already
// buffered a write cannot become invisible; the declaration is a no-op.
func TestSetReadOnlyAfterWriteIsIgnored(t *testing.T) {
	v := NewVar(0)
	th := newSnapThread(1)
	if err := th.Atomic(func(tx *Tx) error {
		v.Set(tx, 1)
		tx.SetReadOnly()
		if tx.IsSnapshot() {
			t.Error("SetReadOnly engaged with a buffered write")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.GetCommitted(); got != 1 {
		t.Fatalf("v = %d, want 1", got)
	}
}

// TestSnapshotStatsAdd keeps the aggregation in sync with the new
// counters.
func TestSnapshotStatsAdd(t *testing.T) {
	var a, b Stats
	a.SnapshotCommits, a.SnapshotFallbacks = 2, 1
	b.SnapshotCommits, b.SnapshotFallbacks = 3, 4
	a.Add(b)
	if a.SnapshotCommits != 5 || a.SnapshotFallbacks != 5 {
		t.Fatalf("Stats.Add dropped snapshot counters: %+v", a)
	}
}
