package stm

import (
	"sync/atomic"

	"tcc/internal/obs"
)

// This file is the STM side of the observability layer (see
// internal/obs): conflict attribution and event emission for the
// TAPE-style profiles of paper §6.3.
//
// Discipline: the hot path pays one obs.Active() load per top-level
// attempt. Attribution inside the commit machinery (noteConflict) only
// stores pre-existing pointers and constant strings — no allocation,
// no user code — because it can run while commit guards are
// held. Everything that formats, allocates, or calls the Tracer
// happens in the retry loop after guards and locks are released (the stmlint
// trace-in-commit rule enforces this for emission sites).

// txIDs hands out process-global transaction ids. Ids are assigned
// lazily — only when a tracer is installed — so untraced runs pay
// nothing.
var txIDs atomic.Uint64

// Mechanical conflict causes, as constant strings so recording one
// never allocates.
const (
	causeStaleRead   = "stale read"
	causeLockedVar   = "locked by committer"
	causeCommitLock  = "commit lock busy"
	causeCommitStale = "commit validation failed"
)

// conflictRec is the pending attribution of the most recent
// memory-level conflict: which variable, who held it, and the
// mechanical cause. It lives on the top-level Tx and is consumed by
// the next rollback/retry event emission.
type conflictRec struct {
	c     *varCore
	other uint64 // txid of the conflicting transaction, if known
	cause string
}

// noteConflict records attribution for an imminent conflict signal.
// Safe under the commit guard: field stores only.
func (tx *Tx) noteConflict(c *varCore, owner *Handle, cause string) {
	top := tx.top()
	if top.tracer == nil && !top.mon {
		return
	}
	rec := conflictRec{c: c, cause: cause}
	if owner != nil {
		rec.other = owner.txid
	}
	top.conflict = rec
}

// takeConflict consumes the pending attribution, resolving the
// variable's display label (this may allocate; emission sites only).
func (tx *Tx) takeConflict() (where string, other uint64, cause string) {
	top := tx.top()
	rec := top.conflict
	top.conflict = conflictRec{}
	if rec.c != nil {
		where = rec.c.displayLabel()
	}
	return where, rec.other, rec.cause
}

// trc returns the tracer captured by the enclosing top-level attempt.
func (tx *Tx) trc() obs.Tracer { return tx.top().tracer }

// event stamps a new event with the transaction's identity and the
// worker's current time.
func (tx *Tx) event(k obs.Kind) obs.Event {
	top := tx.top()
	return obs.Event{
		Kind:    k,
		TxID:    top.txid,
		CPU:     tx.thread.TraceID,
		Attempt: top.attempt,
		Time:    tx.thread.Clock.Now(),
	}
}

// since returns now-start clamped at zero (tracer installation
// mid-transaction can leave start unset).
func since(now, start uint64) uint64 {
	if start >= now {
		return 0
	}
	return now - start
}

// emitRollback emits the abort/violation/user-abort event for the
// attempt that just rolled back, attaching any pending conflict
// attribution. reason, when non-empty, overrides the mechanical cause
// (violation reasons carry the semantic attribution).
func (tx *Tx) emitRollback(kind obs.Kind, reason string) {
	if tx.tracer == nil {
		return
	}
	e := tx.event(kind)
	e.Dur = since(e.Time, tx.handle.birth)
	e.Where, e.OtherTx, e.Reason = tx.takeConflict()
	if reason != "" {
		e.Reason = reason
	}
	tx.tracer.Trace(e)
}

// noteGuardWait records that the commit or rollback protocol blocked
// acquiring g (the TryLock probe in acquireGuards failed). Safe inside
// the guard-acquisition sequence: field stores only, no allocation, no
// tracer call.
func (tx *Tx) noteGuardWait(g *Guard) {
	top := tx.top()
	if top.tracer == nil && !top.mon {
		return
	}
	top.gwaits++
	top.gwaitOn = g
}

// emitGuardWaits emits the guard-wait event for the commit or rollback
// that just released its guard footprint, attributing
// commit-serialization lost work to the last contended guard. Label
// resolution may allocate; emission sites only (after releaseGuards).
func (tx *Tx) emitGuardWaits() {
	top := tx.top()
	if top.tracer == nil || top.gwaits == 0 {
		return
	}
	e := tx.event(obs.KindGuardWait)
	e.Where = top.gwaitOn.Label()
	e.Waits = top.gwaits
	top.gwaits = 0
	top.gwaitOn = nil
	top.tracer.Trace(e)
}

// emitOpenRetry emits the retry event for an open-nested child.
func (o *Tx) emitOpenRetry() {
	tr := o.trc()
	if tr == nil {
		return
	}
	e := o.event(obs.KindOpenRetry)
	e.Where, e.OtherTx, e.Reason = o.takeConflict()
	tr.Trace(e)
}

// backoffTraced stalls via the contention manager and emits the wait
// as a backoff span.
func (tx *Tx) backoffTraced(attempt int) {
	waited := tx.thread.backoff(attempt)
	tr := tx.trc()
	if tr == nil {
		return
	}
	e := tx.event(obs.KindBackoff)
	e.Dur = waited
	tr.Trace(e)
}
