package stm

import (
	"testing"

	"tcc/internal/obs"
)

// recordSink collects events in order; single-threaded tests only.
type recordSink struct {
	events []obs.Event
}

func (r *recordSink) Trace(e obs.Event) { r.events = append(r.events, e) }

func (r *recordSink) kinds() []obs.Kind {
	ks := make([]obs.Kind, len(r.events))
	for i, e := range r.events {
		ks[i] = e.Kind
	}
	return ks
}

func (r *recordSink) find(k obs.Kind) *obs.Event {
	for i := range r.events {
		if r.events[i].Kind == k {
			return &r.events[i]
		}
	}
	return nil
}

func withSink(t *testing.T) *recordSink {
	t.Helper()
	s := &recordSink{}
	obs.SetTracer(s)
	t.Cleanup(func() { obs.SetTracer(nil) })
	return s
}

func kindsEqual(a, b []obs.Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTraceCommitEvent(t *testing.T) {
	sink := withSink(t)
	th := NewThread(&RealClock{}, 1)
	th.TraceID = 3
	v := NewVar(0).SetLabel("test.v")
	w := NewVar(0)
	MustAtomicT(t, th, func(tx *Tx) error {
		v.Set(tx, v.Get(tx)+1)
		_ = w.Get(tx)
		return nil
	})
	want := []obs.Kind{obs.KindTxBegin, obs.KindTxCommit}
	if !kindsEqual(sink.kinds(), want) {
		t.Fatalf("events = %v, want %v", sink.kinds(), want)
	}
	begin, commit := sink.events[0], sink.events[1]
	if begin.TxID == 0 || begin.TxID != commit.TxID {
		t.Fatalf("txids: begin=%d commit=%d", begin.TxID, commit.TxID)
	}
	if commit.CPU != 3 {
		t.Fatalf("commit CPU = %d, want 3", commit.CPU)
	}
	if commit.Reads != 2 || commit.Writes != 1 {
		t.Fatalf("commit sets: reads=%d writes=%d, want 2,1", commit.Reads, commit.Writes)
	}
	if commit.Dur == 0 || commit.Time <= begin.Time {
		t.Fatalf("commit timing: time=%d dur=%d begin=%d", commit.Time, commit.Dur, begin.Time)
	}
}

func TestTraceAbortAttribution(t *testing.T) {
	sink := withSink(t)
	th := NewThread(&RealClock{}, 1)
	hot := NewVar(0).SetLabel("counter.hot")
	other := NewVar(0)
	poked := false
	MustAtomicT(t, th, func(tx *Tx) error {
		_ = hot.Get(tx)
		if !poked {
			poked = true
			// A concurrent committer bumps the var we already read and
			// publishes a newer version of the next one; reading it
			// forces a failed extension → stale-read abort on hot.
			hot.SetCommitted(99)
			other.SetCommitted(5)
		}
		_ = other.Get(tx)
		return nil
	})
	want := []obs.Kind{
		obs.KindTxBegin, obs.KindTxAbort, obs.KindBackoff,
		obs.KindTxBegin, obs.KindTxCommit,
	}
	if !kindsEqual(sink.kinds(), want) {
		t.Fatalf("events = %v, want %v", sink.kinds(), want)
	}
	abort := sink.find(obs.KindTxAbort)
	if abort.Where != "counter.hot" {
		t.Fatalf("abort attributed to %q, want counter.hot", abort.Where)
	}
	if abort.Reason != "stale read" {
		t.Fatalf("abort reason = %q", abort.Reason)
	}
	commit := sink.find(obs.KindTxCommit)
	if commit.Attempt != 1 {
		t.Fatalf("commit attempt = %d, want 1", commit.Attempt)
	}
	if bo := sink.find(obs.KindBackoff); bo.Dur == 0 {
		t.Fatal("backoff event has zero duration")
	}
	if abort.TxID != commit.TxID {
		t.Fatalf("txid changed across retry: %d vs %d", abort.TxID, commit.TxID)
	}
}

func TestTraceUnlabelledVarFallback(t *testing.T) {
	sink := withSink(t)
	th := NewThread(&RealClock{}, 1)
	v := NewVar(0)
	poked := false
	other := NewVar(0)
	MustAtomicT(t, th, func(tx *Tx) error {
		_ = v.Get(tx)
		if !poked {
			poked = true
			v.SetCommitted(1)
			other.SetCommitted(2)
		}
		_ = other.Get(tx)
		return nil
	})
	abort := sink.find(obs.KindTxAbort)
	if abort == nil || len(abort.Where) < 5 || abort.Where[:4] != "var#" {
		t.Fatalf("unlabelled attribution = %+v, want var#<id>", abort)
	}
}

func TestTraceViolationEvent(t *testing.T) {
	sink := withSink(t)
	th := NewThread(&RealClock{}, 1)
	v := NewVar(0)
	violated := false
	MustAtomicT(t, th, func(tx *Tx) error {
		_ = v.Get(tx)
		if !violated {
			violated = true
			tx.Handle().Violate("TestMap: key conflict")
		}
		tx.Poll()
		return nil
	})
	ev := sink.find(obs.KindTxViolated)
	if ev == nil || ev.Reason != "TestMap: key conflict" {
		t.Fatalf("violation event = %+v", ev)
	}
}

func TestTraceNestedRetryEvent(t *testing.T) {
	sink := withSink(t)
	th := NewThread(&RealClock{}, 1)
	a := NewVar(0)
	inner := NewVar(0).SetLabel("nested.inner")
	fresh := NewVar(0)
	poked := false
	MustAtomicT(t, th, func(tx *Tx) error {
		_ = a.Get(tx)
		return tx.Nested(func() error {
			_ = inner.Get(tx)
			if !poked {
				poked = true
				// Invalidate the child's read and publish a newer
				// version of the next one: the failed extension rolls
				// back and retries only the nested body.
				inner.SetCommitted(7)
				fresh.SetCommitted(1)
				_ = fresh.Get(tx)
			}
			return nil
		})
	})
	want := []obs.Kind{
		obs.KindTxBegin, obs.KindNestedRetry, obs.KindBackoff, obs.KindTxCommit,
	}
	if !kindsEqual(sink.kinds(), want) {
		t.Fatalf("events = %v, want %v", sink.kinds(), want)
	}
	nr := sink.find(obs.KindNestedRetry)
	if nr.Where != "nested.inner" || nr.Reason != "stale read" {
		t.Fatalf("nested retry attribution = %+v", nr)
	}
}

func TestTraceOpenEvents(t *testing.T) {
	sink := withSink(t)
	th := NewThread(&RealClock{}, 1)
	c := NewVar(0).SetLabel("open.counter")
	MustAtomicT(t, th, func(tx *Tx) error {
		return tx.Open(func(o *Tx) error {
			c.Set(o, c.Get(o)+1)
			return nil
		})
	})
	want := []obs.Kind{obs.KindTxBegin, obs.KindOpenCommit, obs.KindTxCommit}
	if !kindsEqual(sink.kinds(), want) {
		t.Fatalf("events = %v, want %v", sink.kinds(), want)
	}
	oc := sink.find(obs.KindOpenCommit)
	if oc.Writes != 1 || oc.TxID != sink.events[0].TxID {
		t.Fatalf("open commit event = %+v", oc)
	}
}

func TestTraceLockedByCommitterCarriesOwnerTx(t *testing.T) {
	sink := withSink(t)
	th := NewThread(&RealClock{}, 1)
	v := NewVar(0).SetLabel("contended")
	other := NewVar(0)

	// Simulate a committer parked on v's lockword: lock it directly
	// with a handle that carries a txid, as the commit machinery would.
	holder := &Handle{txid: 4242}
	if !v.core.tryLock(holder) {
		t.Fatal("setup: tryLock failed")
	}
	poked := false
	MustAtomicT(t, th, func(tx *Tx) error {
		_ = other.Get(tx)
		if !poked {
			poked = true
			defer v.core.unlock() // release after the first doomed sample
		}
		_ = v.Get(tx)
		return nil
	})
	abort := sink.find(obs.KindTxAbort)
	if abort == nil || abort.Where != "contended" || abort.Reason != "locked by committer" {
		t.Fatalf("abort event = %+v", abort)
	}
	if abort.OtherTx != 4242 {
		t.Fatalf("abort OtherTx = %d, want 4242", abort.OtherTx)
	}
}

func TestTraceDisabledEmitsNothingAndAssignsNoIDs(t *testing.T) {
	th := NewThread(&RealClock{}, 1)
	v := NewVar(0)
	before := txIDs.Load()
	MustAtomicT(t, th, func(tx *Tx) error {
		v.Set(tx, 1)
		return nil
	})
	if txIDs.Load() != before {
		t.Fatal("txid assigned with tracing disabled")
	}
}

// MustAtomicT runs fn transactionally and fails the test on error.
func MustAtomicT(t *testing.T, th *Thread, fn func(tx *Tx) error) {
	t.Helper()
	if err := th.Atomic(fn); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
}
