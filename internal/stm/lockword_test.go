package stm

// White-box tests for the packed TL2 lockword: bit-budget packing,
// spin/bail behaviour of readers that observe a mid-install lock, and
// race soundness of the committed accessors against real committers.
// (The -race run of verify.sh is what gives the concurrent tests their
// teeth.)

import (
	"sync"
	"testing"
	"time"
)

// TestLockwordPacking pins the bit layout: 63-bit version, low lock
// bit, round-trip at the documented maximum. Version overflow needs
// 2^63 writing commits and is documented as unreachable in var.go; this
// test is the executable form of that bit budget.
func TestLockwordPacking(t *testing.T) {
	for _, ver := range []uint64{0, 1, 12345, maxVersion} {
		for _, locked := range []bool{false, true} {
			w := packWord(ver, locked)
			if wordVersion(w) != ver {
				t.Fatalf("packWord(%d, %v): version round-trips to %d", ver, locked, wordVersion(w))
			}
			if wordLocked(w) != locked {
				t.Fatalf("packWord(%d, %v): lock bit round-trips to %v", ver, locked, wordLocked(w))
			}
		}
	}
	if maxVersion != uint64(1)<<63-1 {
		t.Fatalf("version budget changed: maxVersion = %d", maxVersion)
	}
}

// TestLockwordAcquireRelease exercises the CAS acquire / side-slot
// owner / release protocol directly.
func TestLockwordAcquireRelease(t *testing.T) {
	c := newVarCore(7)
	h1, h2 := &Handle{}, &Handle{}
	if !c.tryLock(h1) {
		t.Fatal("tryLock on an unlocked core failed")
	}
	if !c.tryLock(h1) {
		t.Fatal("re-tryLock by the owner should succeed")
	}
	if c.tryLock(h2) {
		t.Fatal("tryLock by another handle succeeded while locked")
	}
	if ver, lockedByOther := c.peek(h1); ver != 0 || lockedByOther {
		t.Fatalf("owner peek = (%d, %v), want (0, false)", ver, lockedByOther)
	}
	if _, lockedByOther := c.peek(h2); !lockedByOther {
		t.Fatal("non-owner peek should report lockedByOther")
	}
	c.unlock()
	if ver, lockedByOther := c.peek(h2); ver != 0 || lockedByOther {
		t.Fatalf("post-unlock peek = (%d, %v), want (0, false)", ver, lockedByOther)
	}
	c.tryLock(h2)
	c.install(9, 42)
	if ver, lockedByOther := c.peek(h1); ver != 42 || lockedByOther {
		t.Fatalf("post-install peek = (%d, %v), want (42, false)", ver, lockedByOther)
	}
	if got := c.val.Load().val; got.(int) != 9 {
		t.Fatalf("post-install value = %v, want 9", got)
	}
}

// TestSampleBailsOnHeldLock is the deterministic half of the
// mid-install story: a reader that keeps observing a lockword held by
// another transaction must give up the attempt with a retry signal
// rather than spin forever.
func TestSampleBailsOnHeldLock(t *testing.T) {
	c := newVarCore(1)
	other := &Handle{}
	if !c.tryLock(other) {
		t.Fatal("setup lock failed")
	}
	th := NewThread(&RealClock{}, 1)
	tx := &Tx{thread: th, handle: &Handle{}}
	defer func() {
		r := recover()
		sig, ok := r.(*signal)
		if !ok || sig.kind != sigRetry {
			t.Fatalf("sample on a held lockword: recovered %v, want sigRetry", r)
		}
	}()
	c.sample(tx)
	t.Fatal("sample returned despite a held lock")
}

// TestSampleReadsOwnLockedVar: a core locked by the sampling
// transaction's own handle stays readable (owner side-slot check).
func TestSampleSelfOwned(t *testing.T) {
	c := newVarCore(5)
	th := NewThread(&RealClock{}, 1)
	tx := &Tx{thread: th, handle: &Handle{}}
	c.tryLock(tx.handle)
	val, ver := c.sample(tx)
	if val.(int) != 5 || ver != 0 {
		t.Fatalf("self-owned sample = (%v, %d), want (5, 0)", val, ver)
	}
}

// TestReaderSpinsThroughInstall holds a var's lockword while a reader
// transaction is running, then completes the install: the reader must
// come back (spinning in its attempt or bailing into a fresh one) and
// observe exactly the installed value.
func TestReaderSpinsThroughInstall(t *testing.T) {
	v := NewVar(0)
	writer := &Handle{}
	if !v.core.tryLock(writer) {
		t.Fatal("setup lock failed")
	}
	got := make(chan int, 1)
	started := make(chan struct{})
	go func() {
		th := NewThread(&RealClock{}, 2)
		close(started)
		_ = th.Atomic(func(tx *Tx) error {
			got <- v.Get(tx)
			return nil
		})
	}()
	<-started
	time.Sleep(2 * time.Millisecond) // let the reader hit the held lockword
	v.core.install(77, globalClock.Add(1))
	select {
	case val := <-got:
		if val != 77 {
			t.Fatalf("reader observed %d through the install, want 77", val)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader never finished after the lock was released")
	}
}

// TestCommittedAccessorsVsCommitters races GetCommitted/SetCommitted
// against committing transactions on the same vars. The assertions are
// deliberately weak (the committed accessors promise only an atomic,
// unordered snapshot); the value of the test is that -race proves the
// lockword protocol synchronizes the value boxes.
func TestCommittedAccessorsVsCommitters(t *testing.T) {
	v := NewVar(0)
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := NewThread(&RealClock{}, seed)
			for i := 0; i < perWorker; i++ {
				_ = th.Atomic(func(tx *Tx) error {
					v.Set(tx, v.Get(tx)+1)
					return nil
				})
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < perWorker; i++ {
			v.SetCommitted(-i)
			if v.GetCommitted() > 2*perWorker {
				t.Error("GetCommitted observed an impossible value")
				return
			}
		}
	}()
	wg.Wait()
	if got := v.GetCommitted(); got > 2*perWorker || got < -perWorker {
		t.Fatalf("final committed value %d outside every possible history", got)
	}
}

// TestInstallConsistencyStress is the torn-read stress: writers commit
// x and y together (invariant x == y), readers sample both in one
// transaction. A reader that paired a value box with the wrong lockword
// version — the failure the double word load in sample prevents — would
// observe x != y.
func TestInstallConsistencyStress(t *testing.T) {
	x := NewVar(0)
	y := NewVar(0)
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			th := NewThread(&RealClock{}, seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = th.Atomic(func(tx *Tx) error {
					n := x.Get(tx) + 1
					x.Set(tx, n)
					y.Set(tx, n)
					return nil
				})
			}
		}(int64(w + 10))
	}
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			th := NewThread(&RealClock{}, seed)
			for i := 0; i < 5000; i++ {
				var a, b int
				_ = th.Atomic(func(tx *Tx) error {
					a = x.Get(tx)
					b = y.Get(tx)
					return nil
				})
				if a != b {
					t.Errorf("torn read: x=%d y=%d inside one transaction", a, b)
					return
				}
			}
		}(int64(r + 20))
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}
