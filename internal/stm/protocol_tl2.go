package stm

// TL2 through the Protocol seam: the global-version-clock protocol the
// STM was built around (DESIGN.md §4), unchanged in behaviour — the
// inline read/write sets, lockword packing, read-version extension and
// commit sequence are exactly the pre-seam code paths, moved here so
// alternative protocols can replace them hook by hook.
type tl2Protocol struct{}

// protoTL2 is the registered instance; NewThread starts on it.
var protoTL2 Protocol = registerProtocol(tl2Protocol{})

func (tl2Protocol) Name() string { return "tl2" }

// begin samples the TL2 snapshot: the global version clock.
func (tl2Protocol) begin(t *Thread) uint64 { return globalClock.Load() }

// read is the TL2 invisible read: sample a consistent (value, version)
// pair, extend the snapshot if the version is too new, and record the
// read for commit-time validation.
func (tl2Protocol) read(tx *Tx, c *varCore) any {
	return tl2Read(tx, c)
}

// observeWrite does nothing: TL2 locks the write set at commit.
func (tl2Protocol) observeWrite(tx *Tx, c *varCore) {}

func (tl2Protocol) extend(tx *Tx) bool { return tl2Extend(tx) }

func (tl2Protocol) commit(tx *Tx, l *level, doPrepare bool) bool {
	return tl2Commit(tx, l, doPrepare)
}

// snapshotMark: TL2's read version already is a global-clock version.
func (tl2Protocol) snapshotMark(tx *Tx) (uint64, bool) { return tx.readVersion, true }

// abandon/abandonLevel: lazy locking holds nothing between Set and
// commit, so an aborted attempt has nothing to release.
func (tl2Protocol) abandon(tx *Tx)                 {}
func (tl2Protocol) abandonLevel(tx *Tx, l *level) {}

// tl2Read samples c without locking and validates the version against
// tx's snapshot, extending the snapshot when possible. Shared with the
// eager variant, whose read side is identical.
func tl2Read(tx *Tx, c *varCore) any {
	val, ver := c.sample(tx)
	if ver > tx.readVersion && !tl2Extend(tx) {
		tx.bail(sigRetry, "stale read")
	}
	tx.cur.reads.put(c, ver, nil)
	return val
}

// tl2Extend attempts TL2 read-version extension: if every read recorded
// so far is still at its recorded version and unlocked, the snapshot can
// be moved forward to the current global clock, allowing a read of a
// newer variable (or a nested retry) to proceed without aborting.
func tl2Extend(tx *Tx) bool {
	now := globalClock.Load()
	for l := tx.cur; l != nil; l = l.parent {
		if c := l.reads.firstInvalid(tx.handle); c != nil {
			tx.noteConflict(c, nil, causeStaleRead)
			return false
		}
	}
	tx.readVersion = now
	return true
}

// tl2Commit is the single lock-sort-validate-install sequence shared by
// top-level and open-nested commits (and by the eager variant, whose
// Set-time acquisitions make lockWriteSet's tryLocks instant): acquire
// the write set's lockwords in variable-ID order (deadlock freedom),
// validate the read set, for a top-level commit (doPrepare) pass the
// point of no return, and install every write at one fresh global-clock
// tick. On any failure all locks are released, nothing is installed,
// and for doPrepare the handle is left un-Prepared so the caller rolls
// back.
func tl2Commit(tx *Tx, l *level, doPrepare bool) bool {
	if l.writes.len() == 0 {
		// Read-only fast path: every read was validated against the
		// snapshot when it happened, so the transaction is serializable
		// at readVersion. For a top-level commit only the violation
		// race remains; an open-nested child has nothing to do.
		return !doPrepare || tx.handle.toPrepared()
	}
	buf := tx.thread.sortedWrites(l)
	if !lockWriteSet(tx, buf) {
		return false
	}
	if c := l.reads.firstInvalid(tx.handle); c != nil {
		tx.noteConflict(c, nil, causeCommitStale)
		unlockWriteSet(buf)
		return false
	}
	if doPrepare && !tx.handle.toPrepared() {
		unlockWriteSet(buf)
		return false
	}
	installWriteSet(buf, globalClock.Add(1))
	return true
}

// lockWriteSet acquires the lockword of every write in buf (which is
// sorted by variable ID) for tx, releasing the acquired prefix and
// recording conflict attribution if any acquisition fails. It opens
// the protocol's lockword hold window: everything until the matching
// unlockWriteSet/installWriteSet runs with committed state locked, and
// must not block (stmlint commit-window-blocking).
func lockWriteSet(tx *Tx, buf []writeEntry) bool {
	for i, e := range buf {
		if !e.c.tryLock(tx.handle) {
			tx.noteConflict(e.c, e.c.owner.Load(), causeCommitLock)
			unlockWriteSet(buf[:i])
			return false
		}
	}
	return true
}

// unlockWriteSet unlocks the given write-set prefix after a failed
// commit, leaving versions unchanged. Closes the lockword hold window.
func unlockWriteSet(buf []writeEntry) {
	for _, e := range buf {
		e.c.unlock()
	}
}

// installWriteSet publishes every buffered write at version wv,
// releasing each lockword in the same store. Closes the lockword hold
// window on the success path.
func installWriteSet(buf []writeEntry, wv uint64) {
	for _, e := range buf {
		e.c.install(e.val, wv)
	}
}
