package stm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newTestThread() *Thread { return NewThread(&RealClock{}, 1) }

func TestReadInitialValue(t *testing.T) {
	v := NewVar(42)
	th := newTestThread()
	var got int
	if err := th.Atomic(func(tx *Tx) error {
		got = v.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestWriteThenReadOwnWrite(t *testing.T) {
	v := NewVar("a")
	th := newTestThread()
	err := th.Atomic(func(tx *Tx) error {
		v.Set(tx, "b")
		if got := v.Get(tx); got != "b" {
			t.Fatalf("read own write = %q, want b", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.GetCommitted(); got != "b" {
		t.Fatalf("committed = %q, want b", got)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	v := NewVar(1)
	th := newTestThread()
	wantErr := errors.New("rollback")
	err := th.Atomic(func(tx *Tx) error {
		v.Set(tx, 99)
		return wantErr
	})
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if got := v.GetCommitted(); got != 1 {
		t.Fatalf("committed = %d, want 1 (write must be discarded)", got)
	}
}

func TestSelfAbort(t *testing.T) {
	v := NewVar(1)
	th := newTestThread()
	wantErr := errors.New("inconsistent")
	err := th.Atomic(func(tx *Tx) error {
		v.Set(tx, 2)
		tx.Abort(wantErr)
		t.Fatal("unreachable")
		return nil
	})
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if got := v.GetCommitted(); got != 1 {
		t.Fatalf("committed = %d, want 1", got)
	}
	if th.Stats.UserAborts != 1 {
		t.Fatalf("UserAborts = %d, want 1", th.Stats.UserAborts)
	}
}

// TestCounterRace hammers one variable from many goroutines; lost
// updates would reveal broken isolation.
func TestCounterRace(t *testing.T) {
	const workers, perWorker = 8, 200
	v := NewVar(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := NewThread(&RealClock{}, seed)
			for i := 0; i < perWorker; i++ {
				if err := th.Atomic(func(tx *Tx) error {
					v.Set(tx, v.Get(tx)+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if got := v.GetCommitted(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestBankTransferInvariant moves money between accounts concurrently;
// the total must be conserved and no transaction may observe a torn
// state (checked by an invariant-reading transaction).
func TestBankTransferInvariant(t *testing.T) {
	const accounts = 8
	const total = 1000 * accounts
	vars := make([]*Var[int], accounts)
	for i := range vars {
		vars[i] = NewVar(1000)
	}
	var transfers, checker sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		transfers.Add(1)
		go func(seed int64) {
			defer transfers.Done()
			th := NewThread(&RealClock{}, seed)
			for i := 0; i < 300; i++ {
				from, to := int(seed+int64(i))%accounts, int(seed+int64(i)*7+1)%accounts
				if from == to {
					continue
				}
				err := th.Atomic(func(tx *Tx) error {
					a := vars[from].Get(tx)
					b := vars[to].Get(tx)
					vars[from].Set(tx, a-10)
					vars[to].Set(tx, b+10)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	checker.Add(1)
	go func() {
		defer checker.Done()
		th := NewThread(&RealClock{}, 99)
		for {
			select {
			case <-stop:
				return
			default:
			}
			sum := 0
			if err := th.Atomic(func(tx *Tx) error {
				sum = 0
				for _, v := range vars {
					sum += v.Get(tx)
				}
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
			if sum != total {
				t.Errorf("observed torn total %d, want %d", sum, total)
				return
			}
		}
	}()
	transfers.Wait()
	close(stop)
	checker.Wait()
	sum := 0
	for _, v := range vars {
		sum += v.GetCommitted()
	}
	if sum != total {
		t.Fatalf("final total %d, want %d", sum, total)
	}
}

func TestNestedCommitMergesIntoParent(t *testing.T) {
	a, b := NewVar(0), NewVar(0)
	th := newTestThread()
	err := th.Atomic(func(tx *Tx) error {
		a.Set(tx, 1)
		if err := tx.Nested(func() error {
			b.Set(tx, 2)
			if a.Get(tx) != 1 {
				t.Fatal("nested child cannot see parent write")
			}
			return nil
		}); err != nil {
			return err
		}
		if b.Get(tx) != 2 {
			t.Fatal("parent cannot see merged child write")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.GetCommitted() != 1 || b.GetCommitted() != 2 {
		t.Fatalf("committed (%d,%d), want (1,2)", a.GetCommitted(), b.GetCommitted())
	}
}

func TestNestedAbortIsPartial(t *testing.T) {
	a, b := NewVar(0), NewVar(0)
	th := newTestThread()
	childErr := errors.New("child fails")
	err := th.Atomic(func(tx *Tx) error {
		a.Set(tx, 1)
		if err := tx.Nested(func() error {
			b.Set(tx, 2)
			return childErr
		}); err != childErr {
			t.Fatalf("nested err = %v, want %v", err, childErr)
		}
		// Child write must be gone; parent write must survive.
		if b.Get(tx) != 0 {
			t.Fatal("aborted child write visible in parent")
		}
		if a.Get(tx) != 1 {
			t.Fatal("parent write lost after child abort")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.GetCommitted() != 1 || b.GetCommitted() != 0 {
		t.Fatalf("committed (%d,%d), want (1,0)", a.GetCommitted(), b.GetCommitted())
	}
}

func TestOpenNestingPublishesImmediately(t *testing.T) {
	v := NewVar(0)
	th := newTestThread()
	wantErr := errors.New("parent aborts")
	err := th.Atomic(func(tx *Tx) error {
		if err := tx.Open(func(o *Tx) error {
			v.Set(o, 7)
			return nil
		}); err != nil {
			return err
		}
		// The open child's write is globally committed even though the
		// parent is still running.
		if got := v.GetCommitted(); got != 7 {
			t.Fatalf("open write not published: %d", got)
		}
		return wantErr // parent aborts; open write must survive
	})
	if err != wantErr {
		t.Fatal(err)
	}
	if got := v.GetCommitted(); got != 7 {
		t.Fatalf("open write rolled back with parent: %d", got)
	}
}

func TestOpenNestingDoesNotPolluteParentReadSet(t *testing.T) {
	// Parent reads v only inside an open child. Another transaction
	// then commits a change to v. The parent must still commit: the
	// read dependency was released with the open child.
	v := NewVar(0)
	w := NewVar(0)
	th1, th2 := NewThread(&RealClock{}, 1), NewThread(&RealClock{}, 2)
	err := th1.Atomic(func(tx *Tx) error {
		if err := tx.Open(func(o *Tx) error {
			_ = v.Get(o)
			return nil
		}); err != nil {
			return err
		}
		if err := th2.Atomic(func(tx2 *Tx) error {
			v.Set(tx2, 99)
			return nil
		}); err != nil {
			return err
		}
		w.Set(tx, 1)
		if tx.Attempt() > 0 {
			t.Fatal("parent restarted despite open-nested read")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommitHandlerRunsOnCommitOnly(t *testing.T) {
	th := newTestThread()
	runs := 0
	if err := th.Atomic(func(tx *Tx) error {
		tx.OnCommit(func() { runs++ })
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("commit handler ran %d times, want 1", runs)
	}
	bad := errors.New("abort")
	_ = th.Atomic(func(tx *Tx) error {
		tx.OnCommit(func() { runs++ })
		return bad
	})
	if runs != 1 {
		t.Fatalf("commit handler ran on abort (runs=%d)", runs)
	}
}

func TestAbortHandlerRunsOnAbortOnly(t *testing.T) {
	th := newTestThread()
	runs := 0
	bad := errors.New("abort")
	_ = th.Atomic(func(tx *Tx) error {
		tx.OnAbort(func() { runs++ })
		return bad
	})
	if runs != 1 {
		t.Fatalf("abort handler ran %d times, want 1", runs)
	}
	if err := th.Atomic(func(tx *Tx) error {
		tx.OnAbort(func() { runs++ })
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("abort handler ran on commit (runs=%d)", runs)
	}
}

func TestHandlersFromAbortedNestedLevelAreDiscarded(t *testing.T) {
	// A commit handler registered inside a nested child that aborts
	// must never run; the child's abort handler must run exactly once,
	// at child abort time (paper §4).
	th := newTestThread()
	var commits, aborts int
	childErr := errors.New("child abort")
	err := th.Atomic(func(tx *Tx) error {
		_ = tx.Nested(func() error {
			tx.OnCommit(func() { commits++ })
			tx.OnAbort(func() { aborts++ })
			return childErr
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if commits != 0 {
		t.Fatalf("commit handler from aborted child ran %d times", commits)
	}
	if aborts != 1 {
		t.Fatalf("abort handler from aborted child ran %d times, want 1", aborts)
	}
}

func TestHandlersPromoteThroughNestedCommit(t *testing.T) {
	th := newTestThread()
	var order []string
	err := th.Atomic(func(tx *Tx) error {
		tx.OnCommit(func() { order = append(order, "outer") })
		return tx.Nested(func() error {
			tx.OnCommit(func() { order = append(order, "inner") })
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("handler order %v, want [outer inner]", order)
	}
}

func TestAbortHandlersRunNewestFirst(t *testing.T) {
	th := newTestThread()
	var order []string
	bad := errors.New("abort")
	_ = th.Atomic(func(tx *Tx) error {
		tx.OnAbort(func() { order = append(order, "first") })
		tx.OnAbort(func() { order = append(order, "second") })
		return bad
	})
	if len(order) != 2 || order[0] != "second" || order[1] != "first" {
		t.Fatalf("abort handler order %v, want [second first]", order)
	}
}

func TestOpenChildHandlersAttachToParent(t *testing.T) {
	th := newTestThread()
	var commits, aborts int
	if err := th.Atomic(func(tx *Tx) error {
		return tx.Open(func(o *Tx) error {
			o.OnCommit(func() { commits++ })
			o.OnAbort(func() { aborts++ })
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	if commits != 1 || aborts != 0 {
		t.Fatalf("(commits,aborts) = (%d,%d), want (1,0)", commits, aborts)
	}
	bad := errors.New("parent abort")
	_ = th.Atomic(func(tx *Tx) error {
		if err := tx.Open(func(o *Tx) error {
			o.OnCommit(func() { commits++ })
			o.OnAbort(func() { aborts++ })
			return nil
		}); err != nil {
			return err
		}
		return bad
	})
	if commits != 1 || aborts != 1 {
		t.Fatalf("(commits,aborts) = (%d,%d), want (1,1): parent abort must run the open child's compensation", commits, aborts)
	}
}

func TestOpenChildErrorHasNoEffects(t *testing.T) {
	v := NewVar(0)
	th := newTestThread()
	var handlerRan bool
	childErr := errors.New("open child aborts")
	err := th.Atomic(func(tx *Tx) error {
		if err := tx.Open(func(o *Tx) error {
			v.Set(o, 5)
			o.OnAbort(func() { handlerRan = true })
			return childErr
		}); err != childErr {
			t.Fatalf("open err = %v, want %v", err, childErr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.GetCommitted() != 0 {
		t.Fatal("aborted open child published a write")
	}
	if handlerRan {
		t.Fatal("handler from aborted open child ran")
	}
}

func TestViolateAbortsVictim(t *testing.T) {
	th := newTestThread()
	var victim *Handle
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error)
	go func() {
		th2 := NewThread(&RealClock{}, 2)
		done <- th2.Atomic(func(tx *Tx) error {
			if tx.Attempt() == 0 {
				victim = tx.Handle()
				close(started)
				<-release
				tx.Poll() // must observe the violation here
				t.Error("victim survived Poll after violation")
			}
			return nil
		})
	}()
	<-started
	if !victim.Violate("test conflict") {
		t.Fatal("Violate of active tx returned false")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	_ = th
}

func TestViolateLosesToPreparedCommit(t *testing.T) {
	th := newTestThread()
	var h *Handle
	if err := th.Atomic(func(tx *Tx) error {
		h = tx.Handle()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if h.Violate("too late") {
		t.Fatal("Violate succeeded against a committed transaction")
	}
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v, want committed", h.Status())
	}
}

func TestLocalsClearedAcrossAttempts(t *testing.T) {
	th := newTestThread()
	key := "k"
	attempts := 0
	err := th.Atomic(func(tx *Tx) error {
		attempts++
		if tx.Local(key) != nil {
			t.Fatal("stale local visible after restart")
		}
		tx.SetLocal(key, attempts)
		if attempts == 1 {
			// Force one retry via self-violation of the memory kind.
			tx.bail(sigRetry, "forced")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
}

func TestReadVersionExtension(t *testing.T) {
	// tx1 reads a, then tx2 commits a change to b, then tx1 reads b.
	// Plain TL2 would abort tx1 (b's version exceeds the snapshot);
	// extension revalidates a and lets tx1 proceed.
	a, b := NewVar(1), NewVar(2)
	th1, th2 := NewThread(&RealClock{}, 1), NewThread(&RealClock{}, 2)
	err := th1.Atomic(func(tx *Tx) error {
		_ = a.Get(tx)
		if tx.Attempt() == 0 {
			if err := th2.Atomic(func(tx2 *Tx) error {
				b.Set(tx2, 20)
				return nil
			}); err != nil {
				return err
			}
		}
		_ = b.Get(tx)
		if tx.Attempt() != 0 {
			t.Fatal("transaction restarted despite valid extension")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConflictingReadAborts(t *testing.T) {
	// tx1 reads a and writes b; tx2 commits a change to a before tx1
	// commits. Commit-time validation must fail (a changed after being
	// read), so tx1 restarts and sees the new value on the retry.
	a, b := NewVar(1), NewVar(2)
	th1, th2 := NewThread(&RealClock{}, 1), NewThread(&RealClock{}, 2)
	sawOld, sawNew := false, false
	err := th1.Atomic(func(tx *Tx) error {
		got := a.Get(tx)
		if got == 1 {
			sawOld = true
		}
		if got == 10 {
			sawNew = true
		}
		b.Set(tx, got*2)
		if tx.Attempt() == 0 {
			if err := th2.Atomic(func(tx2 *Tx) error {
				a.Set(tx2, 10)
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawOld || !sawNew {
		t.Fatalf("sawOld=%v sawNew=%v, want both (abort + consistent retry)", sawOld, sawNew)
	}
	if th1.Stats.Aborts == 0 {
		t.Fatal("expected at least one abort")
	}
}

func TestWriteSkewPrevented(t *testing.T) {
	// Classic write-skew: each tx reads both vars and writes one.
	// Serializability requires the final state to reflect some serial
	// order; under snapshot isolation both could commit and break the
	// a+b >= 0 style invariant. Run many rounds and check.
	const rounds = 100
	for r := 0; r < rounds; r++ {
		a, b := NewVar(1), NewVar(1)
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := NewThread(&RealClock{}, int64(w))
				_ = th.Atomic(func(tx *Tx) error {
					sum := a.Get(tx) + b.Get(tx)
					if sum < 2 {
						return nil
					}
					if w == 0 {
						a.Set(tx, a.Get(tx)-2)
					} else {
						b.Set(tx, b.Get(tx)-2)
					}
					return nil
				})
			}(w)
		}
		wg.Wait()
		if a.GetCommitted()+b.GetCommitted() < 0 {
			t.Fatalf("write skew: a=%d b=%d", a.GetCommitted(), b.GetCommitted())
		}
	}
}

func TestNestedAtomicPanics(t *testing.T) {
	th := newTestThread()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from nested Atomic")
		}
	}()
	_ = th.Atomic(func(tx *Tx) error {
		return th.Atomic(func(tx2 *Tx) error { return nil })
	})
}

func TestUserPanicPropagates(t *testing.T) {
	th := newTestThread()
	defer func() {
		if r := recover(); fmt.Sprint(r) != "user bug" {
			t.Fatalf("recovered %v, want user bug", r)
		}
	}()
	_ = th.Atomic(func(tx *Tx) error { panic("user bug") })
}

func TestStatsAccumulate(t *testing.T) {
	var s Stats
	s.Add(Stats{Commits: 1, Aborts: 2, Violations: 3})
	s.Add(Stats{Commits: 10})
	if s.Commits != 11 || s.Aborts != 2 || s.Violations != 3 {
		t.Fatalf("stats = %+v", s)
	}
}
