package stm

import (
	"math/rand"

	"tcc/internal/obs"
	"tcc/internal/obs/metrics"
)

// Stats counts transactional events on one worker. Harnesses aggregate
// them across workers to report the lost-work breakdowns the paper's
// conflict analysis (TAPE-style, §6.3) relies on.
type Stats struct {
	// Protocol names the concurrency-control protocol the worker ran
	// ("tl2" unless SetProtocol changed it). Aggregating Stats from
	// workers on different protocols yields "mixed".
	Protocol string
	// Commits counts committed top-level transactions.
	Commits uint64
	// Aborts counts top-level rollbacks due to memory-level conflicts.
	Aborts uint64
	// Violations counts top-level rollbacks due to program-directed
	// aborts (semantic conflicts raised by other transactions).
	Violations uint64
	// UserAborts counts rollbacks requested by the program itself.
	UserAborts uint64
	// NestedRetries counts partial rollbacks of closed-nested levels.
	NestedRetries uint64
	// OpenCommits and OpenRetries count open-nested child commits and
	// their internal conflict retries.
	OpenCommits uint64
	OpenRetries uint64
	// HandlerRuns counts executed commit handlers.
	HandlerRuns uint64
	// SnapshotCommits counts top-level transactions that completed on
	// the MVCC-lite snapshot path (AtomicRead, or Atomic after
	// SetReadOnly): no locks taken, no CAS issued, nothing published.
	SnapshotCommits uint64
	// SnapshotFallbacks counts read-only transactions that had to
	// leave the snapshot path — the body wrote or registered a
	// handler, or retained history stayed too shallow across the
	// restart budget — and completed on the ordinary retry path.
	SnapshotFallbacks uint64
	// ViolationsByReason breaks Violations down by the reason string the
	// violator supplied — the lost-work attribution the paper obtained
	// with TAPE (§6.3: "we were able to identify several global counters
	// ... as the main sources of lost work"). Lazily allocated.
	ViolationsByReason map[string]uint64
}

// countViolation records one program-directed abort under its reason.
func (s *Stats) countViolation(reason string) {
	s.Violations++
	if reason == "" {
		reason = "(unspecified)"
	}
	if s.ViolationsByReason == nil {
		s.ViolationsByReason = make(map[string]uint64)
	}
	s.ViolationsByReason[reason]++
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	switch {
	case s.Protocol == "":
		s.Protocol = other.Protocol
	case other.Protocol != "" && other.Protocol != s.Protocol:
		s.Protocol = "mixed"
	}
	s.Commits += other.Commits
	s.Aborts += other.Aborts
	s.Violations += other.Violations
	s.UserAborts += other.UserAborts
	s.NestedRetries += other.NestedRetries
	s.OpenCommits += other.OpenCommits
	s.OpenRetries += other.OpenRetries
	s.HandlerRuns += other.HandlerRuns
	s.SnapshotCommits += other.SnapshotCommits
	s.SnapshotFallbacks += other.SnapshotFallbacks
	for reason, n := range other.ViolationsByReason {
		if s.ViolationsByReason == nil {
			s.ViolationsByReason = make(map[string]uint64)
		}
		s.ViolationsByReason[reason] += n
	}
}

// Thread is one transactional worker: a clock for charging time, a
// deterministic RNG for contention backoff, and event counters. Each
// concurrent worker (goroutine or virtual CPU) needs its own Thread.
//
// The Thread also owns the recycling pools that make the retry loop
// allocation-free in steady state: Tx objects, nesting levels (with
// their inline read/write sets and spill maps), and the sorted
// write-set scratch used at commit are all reused across attempts and
// across transactions. Only the per-attempt Handle is allocated fresh,
// because handles outlive attempts in semantic lock tables.
type Thread struct {
	// Clock charges this worker's time; on the simulator it is the
	// worker's virtual CPU.
	Clock Clock
	// Stats accumulates this worker's transactional events.
	Stats Stats
	// TraceID is the worker's lane in observability output (the tid of
	// its Chrome-trace lane and its histogram shard). Harnesses set it
	// to the virtual CPU id; it is not interpreted by the STM.
	TraceID int
	rng     *rand.Rand
	inTx    bool
	// proto is the worker's concurrency-control protocol (see Protocol);
	// NewThread starts on the TL2 default and SetProtocol switches it.
	// protoCommits caches the protocol's labeled commit counter so the
	// commit path never touches the registry maps.
	proto        Protocol
	protoCommits *metrics.Counter
	// deferred accumulates cycles charged by commit/abort handlers via
	// DeferTick; they are flushed to the Clock once the commit guard is
	// released.
	deferred uint64
	// policy is the contention-management policy; nil means the default
	// randomized exponential backoff.
	policy BackoffPolicy
	// txPool and levelPool recycle transaction and nesting-level
	// objects; commitBuf is the sorted write-set scratch and guardBuf
	// the sorted guard-footprint scratch.
	txPool    []*Tx
	levelPool []*level
	commitBuf writeBuf
	guardBuf  []*Guard
	// snapHandle is the recycled handle for snapshot attempts. A
	// snapshot transaction never enters a semantic lock table and
	// never acquires a lockword, so no other transaction can hold (or
	// violate) its handle across attempts — reusing one per thread is
	// what makes the snapshot path allocation-free.
	snapHandle *Handle
}

// sortedGuards gathers the union of the given guard lists into the
// thread's scratch buffer, sorted ascending by id and deduplicated —
// the canonical acquisition order for acquireGuards.
func (t *Thread) sortedGuards(lists ...[]*Guard) []*Guard {
	buf := t.guardBuf[:0]
	for _, gs := range lists {
		buf = append(buf, gs...)
	}
	t.guardBuf = buf
	return sortGuards(buf)
}

// NewThread creates a worker bound to a clock, with a deterministic
// backoff RNG seeded by seed. The worker starts on the default (TL2)
// concurrency-control protocol; see SetProtocol.
func NewThread(clock Clock, seed int64) *Thread {
	t := &Thread{
		Clock:        clock,
		rng:          rand.New(rand.NewSource(seed)),
		proto:        protocolRegistry[DefaultProtocol],
		protoCommits: protoCommitCounters[DefaultProtocol],
	}
	t.Stats.Protocol = DefaultProtocol
	protoThreadCounts[DefaultProtocol].Add(1)
	return t
}

// getTx pops a recycled Tx or allocates one.
func (t *Thread) getTx() *Tx {
	if n := len(t.txPool) - 1; n >= 0 {
		tx := t.txPool[n]
		t.txPool[n] = nil
		t.txPool = t.txPool[:n]
		return tx
	}
	return &Tx{}
}

// putTx returns a finished Tx (and its level chain) to the pools. The
// locals map is cleared but kept, so collections that attach buffers
// every transaction stop paying for the map after the first one.
func (t *Thread) putTx(tx *Tx) {
	t.releaseLevels(tx)
	tx.thread = nil
	tx.handle = nil
	tx.outer = nil
	tx.readVersion = 0
	tx.attempt = 0
	tx.tracer = nil
	tx.txid = 0
	tx.firstBirth = 0
	tx.conflict = conflictRec{}
	tx.gwaits = 0
	tx.gwaitOn = nil
	tx.mon = false
	tx.gwaitNs = 0
	tx.snapshot = false
	tx.fellBack = false
	tx.snapVersion = 0
	for i := range tx.eagerLocks {
		tx.eagerLocks[i] = nil
	}
	tx.eagerLocks = tx.eagerLocks[:0]
	if tx.locals != nil {
		clear(tx.locals)
	}
	t.txPool = append(t.txPool, tx)
}

// getLevel pops a recycled level or allocates one.
func (t *Thread) getLevel(parent *level) *level {
	if n := len(t.levelPool) - 1; n >= 0 {
		l := t.levelPool[n]
		t.levelPool[n] = nil
		t.levelPool = t.levelPool[:n]
		l.parent = parent
		return l
	}
	return &level{parent: parent}
}

// putLevel resets a level and returns it to the pool.
func (t *Thread) putLevel(l *level) {
	l.reset()
	t.levelPool = append(t.levelPool, l)
}

// releaseLevels returns a Tx's whole level chain to the pool.
func (t *Thread) releaseLevels(tx *Tx) {
	for l := tx.cur; l != nil; {
		next := l.parent
		t.putLevel(l)
		l = next
	}
	tx.cur = nil
}

// DeferTick records cycles to charge once the current commit or abort
// completes. Commit and abort handlers run with their collection's
// commit guard held and must not advance the clock directly (on the
// simulator that would yield while holding a host lock); they charge
// their work here instead.
func (t *Thread) DeferTick(cycles uint64) { t.deferred += cycles }

// flushDeferred charges the accumulated handler cycles.
func (t *Thread) flushDeferred() {
	if t.deferred > 0 {
		t.Clock.Tick(t.deferred)
		t.deferred = 0
	}
}

// backoff stalls according to the worker's contention-management
// policy (paper §5.1 discusses the need; the default is randomized
// exponential backoff, see BackoffPolicy for alternatives) and
// returns the cycles waited, so retry loops can report the stall.
func (t *Thread) backoff(attempt int) uint64 {
	p := t.policy
	if p == nil {
		p = defaultPolicy
	}
	w := p.Backoff(attempt, t.rng)
	t.Clock.Wait(w)
	return w
}

// Atomic runs fn as a top-level transaction, retrying on memory
// conflicts and program-directed aborts until it commits. If fn returns
// an error the transaction rolls back (abort handlers run, buffered
// writes vanish) and Atomic returns that error without retrying.
//
// Atomic must not be called while a transaction is already running on
// this Thread; use tx.Nested (closed nesting) or tx.Open (open nesting)
// instead.
func (t *Thread) Atomic(fn func(tx *Tx) error) error {
	if t.inTx {
		panic("stm: nested Atomic on one Thread; use tx.Nested or tx.Open")
	}
	t.inTx = true
	defer func() { t.inTx = false }()
	return t.retryLoop(fn)
}

// AtomicRead runs fn as a read-only transaction on the MVCC-lite
// snapshot path: the global clock is sampled once at begin and every
// Var.Get returns the newest committed box at or below that version —
// no lockword CAS, no read-set bookkeeping, no validation, and no way
// for a writer to abort it, even while writers commit continuously.
//
// If the snapshot cannot complete — fn writes, registers a handler,
// opens an open-nested child, or a var's one-deep retained history was
// truncated past the read version on every restart — the transaction
// transparently re-runs on the ordinary retry path (counted in
// Stats.SnapshotFallbacks), so fn must tolerate re-execution exactly
// as an Atomic body must.
func (t *Thread) AtomicRead(fn func(tx *Tx) error) error {
	if t.inTx {
		panic("stm: nested AtomicRead on one Thread; use tx.Nested")
	}
	t.inTx = true
	defer func() { t.inTx = false }()
	if err, done := t.snapshotRead(fn); done {
		return err
	}
	t.Stats.SnapshotFallbacks++
	if metricsOn() {
		mSnapFallbacks.Add(1)
	}
	return t.retryLoop(fn)
}

// maxSnapshotRestarts bounds how many times one snapshot transaction
// restarts with a fresh read version (shallow history, or a committer
// stalled on a lockword) before giving up on the snapshot path.
const maxSnapshotRestarts = 8

// snapshotRead attempts fn as a snapshot transaction. done=false means
// the caller must re-run fn on the retry path. The handle is the
// thread's recycled snapshot handle: a snapshot transaction never
// enters a lock table, so nobody else can hold it between attempts,
// and the path allocates nothing in steady state.
func (t *Thread) snapshotRead(fn func(tx *Tx) error) (error, bool) {
	tx := t.getTx()
	h := t.snapHandle
	if h == nil {
		h = &Handle{}
		t.snapHandle = h
	}
	for restart := 0; restart < maxSnapshotRestarts; restart++ {
		t.Clock.Tick(CostTxBegin)
		h.status.Store(int32(StatusActive))
		h.birth = t.Clock.Now()
		tx.thread = t
		tx.handle = h
		tx.outer = nil
		// The snapshot path is protocol-independent MVCC: its read
		// point is always a global-clock version, whatever space the
		// active protocol's readVersion lives in.
		tx.readVersion = globalClock.Load()
		tx.snapVersion = tx.readVersion
		tx.cur = t.getLevel(nil)
		tx.attempt = 0
		tx.snapshot = true
		if tx.locals != nil {
			clear(tx.locals)
		}
		tx.tracer = obs.Active()
		tx.mon = metricsOn()
		if (tx.tracer != nil || tx.mon) && tx.firstBirth == 0 {
			tx.firstBirth = h.birth
		}
		if tx.tracer != nil {
			if tx.txid == 0 {
				tx.txid = txIDs.Add(1)
			}
			h.txid = tx.txid
			e := tx.event(obs.KindTxBegin)
			e.Snapshot = true
			tx.tracer.Trace(e)
		}
		err, sig := runTx(fn, tx)
		switch {
		case sig == nil && err == nil:
			// Nothing to lock, validate, or publish: the snapshot
			// serializes at its read version by construction. Commit
			// is a pair of counters and a (cheaper) tick.
			t.Stats.Commits++
			t.Stats.SnapshotCommits++
			tx.countCommit(true)
			if tx.tracer != nil {
				e := tx.event(obs.KindTxCommit)
				e.Snapshot = true
				e.Dur = since(e.Time, tx.firstBirth)
				e.Reads = 0
				tx.tracer.Trace(e)
			}
			t.putTx(tx)
			t.Clock.Tick(CostSnapshotCommit)
			return nil, true
		case sig == nil:
			// fn returned an error: nothing was buffered, nothing to
			// compensate — report it without retrying, like Atomic.
			t.Stats.UserAborts++
			if tx.mon {
				mUserAborts.Add(1)
			}
			tx.emitRollback(obs.KindTxUserAbort, "error return")
			t.putTx(tx)
			return err, true
		case sig.kind == sigUserAbort:
			t.Stats.UserAborts++
			if tx.mon {
				mUserAborts.Add(1)
			}
			tx.emitRollback(obs.KindTxUserAbort, sig.reason)
			t.putTx(tx)
			return sig.err, true
		case sig.kind == sigFallback && sig.reason == fallbackShallowHistory:
			// Writers truncated a var's history past the read version
			// (lapped this reader twice), or a committer sat on a
			// lockword for the whole spin budget. Resample the clock
			// and re-run — not a conflict, not an abort: this reader
			// was invisible, so no writer lost any work either.
			t.releaseLevels(tx)
		default:
			// The body wrote, registered a handler, opened an
			// open-nested child — or was violated through a handle
			// the caller shared. Re-run on the retry path.
			t.releaseLevels(tx)
			t.putTx(tx)
			return nil, false
		}
	}
	t.putTx(tx)
	return nil, false
}

// retryLoop is the ordinary optimistic path shared by Atomic and the
// AtomicRead fallback: run fn, commit, and on any conflict roll back,
// back off, and re-run until the transaction commits or returns.
func (t *Thread) retryLoop(fn func(tx *Tx) error) error {
	tx := t.getTx()
	for attempt := 0; ; attempt++ {
		t.Clock.Tick(CostTxBegin)
		tx.thread = t
		tx.handle = &Handle{id: handleIDs.Add(1), birth: t.Clock.Now()}
		tx.outer = nil
		tx.readVersion = t.proto.begin(t)
		tx.snapVersion = 0
		tx.cur = t.getLevel(nil)
		tx.attempt = attempt
		tx.snapshot = false
		if tx.locals != nil {
			clear(tx.locals)
		}
		// One atomic load per attempt is the entire disabled-tracer
		// cost (plus nil checks at the emission sites below); the
		// metrics plane pays the same way via tx.mon.
		tx.tracer = obs.Active()
		tx.mon = metricsOn()
		if tx.tracer != nil || tx.mon {
			if tx.firstBirth == 0 {
				tx.firstBirth = tx.handle.birth
			}
			tx.conflict = conflictRec{}
		}
		if tx.tracer != nil {
			if tx.txid == 0 {
				tx.txid = txIDs.Add(1)
			}
			tx.handle.txid = tx.txid
			tx.tracer.Trace(tx.event(obs.KindTxBegin))
		}
		err, sig := runTx(fn, tx)
		switch {
		case sig == nil && err == nil:
			var nr, nw, nh int
			if tx.tracer != nil {
				nr, nw, nh = tx.cur.reads.len(), tx.cur.writes.len(), len(tx.cur.onCommit)
			}
			if tx.commit() {
				t.Stats.Commits++
				if tx.snapshot {
					// SetReadOnly ran and held: the attempt's later
					// reads were invisible snapshot reads.
					t.Stats.SnapshotCommits++
				}
				tx.countCommit(tx.snapshot)
				if tx.tracer != nil {
					e := tx.event(obs.KindTxCommit)
					e.Snapshot = tx.snapshot
					e.Dur = since(e.Time, tx.firstBirth)
					e.Reads, e.Writes, e.Handlers = nr, nw, nh
					tx.tracer.Trace(e)
				}
				t.putTx(tx)
				return nil
			}
			tx.rollback()
			if reason := tx.handle.ViolationReason(); reason != "" {
				t.Stats.countViolation(reason)
				if tx.mon {
					mViolations.AddLane(t.TraceID, 1)
				}
				tx.emitRollback(obs.KindTxViolated, reason)
			} else {
				t.Stats.Aborts++
				tx.countAbort()
				tx.emitRollback(obs.KindTxAbort, "")
			}
		case sig == nil && err != nil:
			tx.rollback()
			t.Stats.UserAborts++
			if tx.mon {
				mUserAborts.Add(1)
			}
			tx.emitRollback(obs.KindTxUserAbort, "error return")
			t.putTx(tx)
			return err
		case sig.kind == sigUserAbort:
			tx.rollback()
			t.Stats.UserAborts++
			if tx.mon {
				mUserAborts.Add(1)
			}
			tx.emitRollback(obs.KindTxUserAbort, sig.reason)
			t.putTx(tx)
			return sig.err
		case sig.kind == sigViolated:
			tx.rollback()
			t.Stats.countViolation(sig.reason)
			if tx.mon {
				mViolations.AddLane(t.TraceID, 1)
			}
			tx.emitRollback(obs.KindTxViolated, sig.reason)
		case sig.kind == sigFallback:
			// A SetReadOnly attempt turned out to write (or register
			// a handler): silently restart with snapshot mode pinned
			// off. No conflict occurred and nothing was published —
			// no abort is counted and no backoff is due; rollback
			// runs any abort handlers registered before the switch.
			tx.fellBack = true
			t.Stats.SnapshotFallbacks++
			if tx.mon {
				mSnapFallbacks.Add(1)
			}
			tx.rollback()
			t.releaseLevels(tx)
			continue
		default: // sigRetry
			tx.rollback()
			t.Stats.Aborts++
			tx.countAbort()
			tx.emitRollback(obs.KindTxAbort, "")
		}
		if tx.mon {
			mRetries.AddLane(t.TraceID, 1)
		}
		t.releaseLevels(tx)
		tx.backoffTraced(attempt)
	}
}

// Open runs fn as an open-nested child transaction: its effects commit
// immediately and become visible to all transactions regardless of
// whether the parent later commits — the enabling mechanism for taking
// semantic locks without retaining memory dependencies (paper §2.4,
// §4). Handlers registered inside fn (via the child's OnCommit/OnAbort)
// attach to the parent's current nesting level when the child commits,
// so a later rollback of the parent runs the compensation and a commit
// applies the buffered updates.
//
// Memory conflicts inside fn retry only fn. If fn returns an error the
// child aborts: no effects, no handlers, and the error is returned with
// the parent still viable.
func (tx *Tx) Open(fn func(o *Tx) error) error {
	if tx.top().snapshot {
		// An open-nested child exists to publish effects and take
		// semantic locks — neither is available to a read-only
		// snapshot; restart on the retry path.
		tx.bail(sigFallback, fallbackOpen)
	}
	t := tx.thread
	o := t.getTx()
	o.thread = t
	o.handle = tx.handle // locks taken inside are owned by the top-level tx
	o.outer = tx
	for attempt := 0; ; attempt++ {
		if tx.handle.violated() {
			t.putTx(o)
			tx.check()
		}
		o.readVersion = t.proto.begin(t)
		o.cur = t.getLevel(nil)
		err, sig := runTx(fn, o)
		switch {
		case sig == nil && err == nil:
			if o.commitOpen() {
				tx.cur.onCommit = append(tx.cur.onCommit, o.cur.onCommit...)
				tx.cur.onAbort = append(tx.cur.onAbort, o.cur.onAbort...)
				for _, g := range o.cur.commitGuards {
					tx.cur.commitGuards = addGuard(tx.cur.commitGuards, g)
				}
				for _, g := range o.cur.abortGuards {
					tx.cur.abortGuards = addGuard(tx.cur.abortGuards, g)
				}
				t.Stats.OpenCommits++
				if o.top().mon {
					mOpenCommits.AddLane(t.TraceID, 1)
				}
				if tr := o.trc(); tr != nil {
					e := o.event(obs.KindOpenCommit)
					e.Writes = o.cur.writes.len()
					tr.Trace(e)
				}
				// Whatever the protocol still held for the child was
				// released by the install; this only clears the tracking.
				t.proto.abandon(o)
				t.putTx(o)
				tx.tick(CostOpenCommit)
				return nil
			}
			t.Stats.OpenRetries++
			if o.top().mon {
				mOpenRetries.Add(1)
			}
			o.emitOpenRetry()
		case sig == nil && err != nil:
			t.proto.abandon(o)
			t.putTx(o)
			return err
		case sig.kind == sigRetry:
			t.Stats.OpenRetries++
			if o.top().mon {
				mOpenRetries.Add(1)
			}
			o.emitOpenRetry()
		default:
			// Violation or user abort of the enclosing transaction.
			t.proto.abandon(o)
			t.putTx(o)
			panic(sig)
		}
		t.proto.abandon(o)
		t.releaseLevels(o)
		o.backoffTraced(attempt)
	}
}
