package stm

import (
	"math/rand"
	"sync"
)

// commitMu serializes the window from a transaction's point of no
// return through the completion of its commit (or abort) handlers, for
// transactions that have handlers. On the paper's TCC hardware a commit
// is atomic with the conflict broadcast that violates other processors;
// without this guard a reader holding a semantic lock could slip its
// own commit between a writer's memory commit and the writer's
// handler-performed semantic conflict detection, breaking
// serializability. Handler bodies are short critical sections and must
// not charge virtual time while the guard is held (they use
// Thread.DeferTick), so on the simulator the guard is never contended
// and on real hardware it serializes only the brief commit windows.
var commitMu sync.Mutex

// Stats counts transactional events on one worker. Harnesses aggregate
// them across workers to report the lost-work breakdowns the paper's
// conflict analysis (TAPE-style, §6.3) relies on.
type Stats struct {
	// Commits counts committed top-level transactions.
	Commits uint64
	// Aborts counts top-level rollbacks due to memory-level conflicts.
	Aborts uint64
	// Violations counts top-level rollbacks due to program-directed
	// aborts (semantic conflicts raised by other transactions).
	Violations uint64
	// UserAborts counts rollbacks requested by the program itself.
	UserAborts uint64
	// NestedRetries counts partial rollbacks of closed-nested levels.
	NestedRetries uint64
	// OpenCommits and OpenRetries count open-nested child commits and
	// their internal conflict retries.
	OpenCommits uint64
	OpenRetries uint64
	// HandlerRuns counts executed commit handlers.
	HandlerRuns uint64
	// ViolationsByReason breaks Violations down by the reason string the
	// violator supplied — the lost-work attribution the paper obtained
	// with TAPE (§6.3: "we were able to identify several global counters
	// ... as the main sources of lost work"). Lazily allocated.
	ViolationsByReason map[string]uint64
}

// countViolation records one program-directed abort under its reason.
func (s *Stats) countViolation(reason string) {
	s.Violations++
	if reason == "" {
		reason = "(unspecified)"
	}
	if s.ViolationsByReason == nil {
		s.ViolationsByReason = make(map[string]uint64)
	}
	s.ViolationsByReason[reason]++
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Commits += other.Commits
	s.Aborts += other.Aborts
	s.Violations += other.Violations
	s.UserAborts += other.UserAborts
	s.NestedRetries += other.NestedRetries
	s.OpenCommits += other.OpenCommits
	s.OpenRetries += other.OpenRetries
	s.HandlerRuns += other.HandlerRuns
	for reason, n := range other.ViolationsByReason {
		if s.ViolationsByReason == nil {
			s.ViolationsByReason = make(map[string]uint64)
		}
		s.ViolationsByReason[reason] += n
	}
}

// Thread is one transactional worker: a clock for charging time, a
// deterministic RNG for contention backoff, and event counters. Each
// concurrent worker (goroutine or virtual CPU) needs its own Thread.
type Thread struct {
	// Clock charges this worker's time; on the simulator it is the
	// worker's virtual CPU.
	Clock Clock
	// Stats accumulates this worker's transactional events.
	Stats Stats
	rng   *rand.Rand
	inTx  bool
	// deferred accumulates cycles charged by commit/abort handlers via
	// DeferTick; they are flushed to the Clock once the commit guard is
	// released.
	deferred uint64
	// policy is the contention-management policy; nil means the default
	// randomized exponential backoff.
	policy BackoffPolicy
}

// NewThread creates a worker bound to a clock, with a deterministic
// backoff RNG seeded by seed.
func NewThread(clock Clock, seed int64) *Thread {
	return &Thread{Clock: clock, rng: rand.New(rand.NewSource(seed))}
}

// DeferTick records cycles to charge once the current commit or abort
// completes. Commit and abort handlers run under the global commit
// guard and must not advance the clock directly (on the simulator that
// would yield while holding a host lock); they charge their work here
// instead.
func (t *Thread) DeferTick(cycles uint64) { t.deferred += cycles }

// flushDeferred charges the accumulated handler cycles.
func (t *Thread) flushDeferred() {
	if t.deferred > 0 {
		t.Clock.Tick(t.deferred)
		t.deferred = 0
	}
}

// backoff stalls according to the worker's contention-management
// policy (paper §5.1 discusses the need; the default is randomized
// exponential backoff, see BackoffPolicy for alternatives).
func (t *Thread) backoff(attempt int) {
	p := t.policy
	if p == nil {
		p = defaultPolicy
	}
	t.Clock.Wait(p.Backoff(attempt, t.rng))
}

// Atomic runs fn as a top-level transaction, retrying on memory
// conflicts and program-directed aborts until it commits. If fn returns
// an error the transaction rolls back (abort handlers run, buffered
// writes vanish) and Atomic returns that error without retrying.
//
// Atomic must not be called while a transaction is already running on
// this Thread; use tx.Nested (closed nesting) or tx.Open (open nesting)
// instead.
func (t *Thread) Atomic(fn func(tx *Tx) error) error {
	if t.inTx {
		panic("stm: nested Atomic on one Thread; use tx.Nested or tx.Open")
	}
	t.inTx = true
	defer func() { t.inTx = false }()

	for attempt := 0; ; attempt++ {
		t.Clock.Tick(CostTxBegin)
		tx := &Tx{
			thread:      t,
			handle:      &Handle{birth: t.Clock.Now()},
			readVersion: globalClock.Load(),
			cur:         newLevel(nil),
			attempt:     attempt,
		}
		err, sig := runBody(func() error { return fn(tx) })
		switch {
		case sig == nil && err == nil:
			if tx.commit() {
				t.Stats.Commits++
				return nil
			}
			tx.rollback()
			if reason := tx.handle.ViolationReason(); reason != "" {
				t.Stats.countViolation(reason)
			} else {
				t.Stats.Aborts++
			}
		case sig == nil && err != nil:
			tx.rollback()
			t.Stats.UserAborts++
			return err
		case sig.kind == sigUserAbort:
			tx.rollback()
			t.Stats.UserAborts++
			return sig.err
		case sig.kind == sigViolated:
			tx.rollback()
			t.Stats.countViolation(sig.reason)
		default: // sigRetry
			tx.rollback()
			t.Stats.Aborts++
		}
		t.backoff(attempt)
	}
}

// Open runs fn as an open-nested child transaction: its effects commit
// immediately and become visible to all transactions regardless of
// whether the parent later commits — the enabling mechanism for taking
// semantic locks without retaining memory dependencies (paper §2.4,
// §4). Handlers registered inside fn (via the child's OnCommit/OnAbort)
// attach to the parent's current nesting level when the child commits,
// so a later rollback of the parent runs the compensation and a commit
// applies the buffered updates.
//
// Memory conflicts inside fn retry only fn. If fn returns an error the
// child aborts: no effects, no handlers, and the error is returned with
// the parent still viable.
func (tx *Tx) Open(fn func(o *Tx) error) error {
	for attempt := 0; ; attempt++ {
		tx.check()
		o := &Tx{
			thread:      tx.thread,
			handle:      tx.handle, // locks taken inside are owned by the top-level tx
			outer:       tx,
			readVersion: globalClock.Load(),
			cur:         newLevel(nil),
		}
		err, sig := runBody(func() error { return fn(o) })
		switch {
		case sig == nil && err == nil:
			if o.commitOpen() {
				tx.cur.onCommit = append(tx.cur.onCommit, o.cur.onCommit...)
				tx.cur.onAbort = append(tx.cur.onAbort, o.cur.onAbort...)
				tx.thread.Stats.OpenCommits++
				tx.tick(CostOpenCommit)
				return nil
			}
			tx.thread.Stats.OpenRetries++
		case sig == nil && err != nil:
			return err
		case sig.kind == sigRetry:
			tx.thread.Stats.OpenRetries++
		default:
			// Violation or user abort of the enclosing transaction.
			panic(sig)
		}
		tx.thread.backoff(attempt)
	}
}

// commitOpen installs an open-nested child's writes immediately, like a
// top-level commit but without touching the shared handle's lifecycle
// (the parent remains Active) and without running handlers (they attach
// to the parent instead). A parent violated mid-install still completes
// the install — the attached abort handlers will compensate — and the
// violation is observed at the parent's next check.
func (o *Tx) commitOpen() bool {
	l := o.cur
	if l.parent != nil {
		panic("stm: open commit with open nested level")
	}
	if len(l.writes) == 0 {
		return true
	}
	cores := make([]*varCore, 0, len(l.writes))
	for c := range l.writes {
		cores = append(cores, c)
	}
	for i := 1; i < len(cores); i++ {
		for j := i; j > 0 && cores[j].id < cores[j-1].id; j-- {
			cores[j], cores[j-1] = cores[j-1], cores[j]
		}
	}
	locked := 0
	release := func() {
		for _, c := range cores[:locked] {
			c.mu.Lock()
			c.owner = nil
			c.mu.Unlock()
		}
	}
	for _, c := range cores {
		c.mu.Lock()
		if c.owner != nil && c.owner != o.handle {
			c.mu.Unlock()
			release()
			return false
		}
		c.owner = o.handle
		c.mu.Unlock()
		locked++
	}
	for c, ver := range l.reads {
		c.mu.Lock()
		ok := c.ver == ver && (c.owner == nil || c.owner == o.handle)
		c.mu.Unlock()
		if !ok {
			release()
			return false
		}
	}
	wv := globalClock.Add(1)
	for _, c := range cores {
		c.mu.Lock()
		c.val = l.writes[c]
		c.ver = wv
		c.owner = nil
		c.mu.Unlock()
	}
	return true
}
