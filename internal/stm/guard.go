package stm

import (
	"sync"
	"sync/atomic"
)

// A Guard is one shard of the commit guard: a mutex with a unique
// 64-bit identity that serializes the window from a transaction's point
// of no return through the completion of the handlers registered under
// it. On the paper's TCC hardware a commit is atomic with the conflict
// broadcast that violates other processors; without a guard a reader
// holding a semantic lock could slip its own commit between a writer's
// memory commit and the writer's handler-performed semantic conflict
// detection, breaking serializability. That argument only involves the
// transactions sharing one collection instance, so each transactional
// collection owns a Guard and registers its handlers under it
// (OnCommitGuarded / OnAbortGuarded): transactions with disjoint guard
// footprints commit — and run their handler windows — in parallel.
//
// Ordering invariant: a commit or rollback acquires its whole guard
// set in ascending id order before anything else, then try-locks the
// write-set lockwords (non-blocking, so they cannot deadlock against
// the guards); the collections' own open-nested critical sections lock
// either exactly one guard at a time or — for operations that must see
// every stripe of a striped collection at once, like an iterator
// snapshot — several guards in the same ascending id order the commit
// protocol uses (core's lockGuards). Together these make the protocol
// deadlock-free.
//
// Handler bodies are short critical sections and must not charge
// virtual time while a guard is held (they use Thread.DeferTick), so on
// the simulator guards are never contended and on real hardware they
// serialize only the brief commit windows of transactions that share a
// collection.
type Guard struct {
	id    uint64
	label string
	mu    sync.Mutex
}

// guardIDs hands out process-global guard identities, starting after
// the fallback guard's id 1.
var guardIDs atomic.Uint64

// fallbackGuard serializes the handler windows of transactions that
// register handlers without naming a guard (tx.OnCommit / tx.OnAbort):
// they keep the old global-guard semantics, conservatively correct for
// handler-only users that predate guard footprints.
var fallbackGuard = NewGuard()

// NewGuard creates a guard with a fresh identity. Transactional
// collections create one per instance at construction time.
func NewGuard() *Guard {
	return &Guard{id: guardIDs.Add(1)}
}

// ID returns the guard's unique identity (the canonical acquisition
// order is ascending ID).
func (g *Guard) ID() uint64 { return g.id }

// SetLabel names the guard in observability output (guard-wait events);
// call during setup, before concurrent use.
func (g *Guard) SetLabel(label string) { g.label = label }

// Label returns the label set by SetLabel, or "guard#<id>".
func (g *Guard) Label() string {
	if g.label != "" {
		return g.label
	}
	return "guard#" + utoa(g.id)
}

// Lock acquires the guard outside the commit protocol — the
// collections' open-nested critical sections, which fuse the mutex
// that protects the wrapped structure and its lock tables with the
// guard their handlers run under, so lock-table reads stay atomic with
// respect to commits (the paper's low-level open-nested transactions).
func (g *Guard) Lock() { g.mu.Lock() }

// Unlock releases the guard.
func (g *Guard) Unlock() { g.mu.Unlock() }

// addGuard appends g to set if not already present (guard sets are a
// handful of entries, so the linear scan beats any map). It returns the
// possibly-grown slice.
func addGuard(set []*Guard, g *Guard) []*Guard {
	for _, have := range set {
		if have == g {
			return set
		}
	}
	return append(set, g)
}

// sortGuards orders buf ascending by id and removes duplicates in
// place (duplicates arise when levels merge), returning the compacted
// slice. Insertion sort: footprints are tiny.
func sortGuards(buf []*Guard) []*Guard {
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && buf[j].id < buf[j-1].id; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	out := buf[:0]
	for i, g := range buf {
		if i > 0 && g == buf[i-1] {
			continue
		}
		out = append(out, g)
	}
	return out
}

// acquireGuards locks every guard in gs, which must be sorted by id
// (deadlock freedom). The TryLock probe is only contention detection
// for the guard-wait event and metric: attribution is recorded with
// plain field stores here (including the wall-clock blocking time
// when metrics are enabled) and emitted after the guards are
// released.
func acquireGuards(tx *Tx, gs []*Guard) {
	top := tx.top()
	for _, g := range gs {
		if g.mu.TryLock() {
			continue
		}
		tx.noteGuardWait(g)
		t0 := guardWaitStart(top)
		g.mu.Lock()
		guardWaitDone(top, t0)
	}
}

// releaseGuards unlocks every guard in gs (any order; nothing blocks
// on release).
func releaseGuards(gs []*Guard) {
	for _, g := range gs {
		g.mu.Unlock()
	}
}

// utoa formats a uint64 without importing strconv into the hot-path
// file set (labels are resolved at emission time only).
func utoa(u uint64) string {
	if u == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for u > 0 {
		i--
		b[i] = byte('0' + u%10)
		u /= 10
	}
	return string(b[i:])
}
