package stm

import (
	"fmt"
	"sync/atomic"
)

// Status is the lifecycle state of a top-level transaction.
type Status int32

// Transaction lifecycle. Violated is reachable only from Active: once a
// transaction is Prepared it has logically committed and can no longer
// be aborted by anyone (the point of no return), which is what makes
// semantic conflict detection race-free — a committer either violates a
// still-active reader or observes that the reader already serialized
// before it.
const (
	StatusActive Status = iota
	StatusPrepared
	StatusCommitted
	StatusViolated
	StatusAborted
)

// String implements fmt.Stringer for diagnostics.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusPrepared:
		return "prepared"
	case StatusCommitted:
		return "committed"
	case StatusViolated:
		return "violated"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", int32(s))
	}
}

// Handle is a shareable reference to a top-level transaction, used as
// the owner of semantic locks. The paper (§4, "Program-directed
// transaction abort") requires that an open-nested transaction can
// obtain a reference to its top-level transaction, store it in a lock
// table, and that another transaction can later use it to abort the
// owner; Handle is that reference.
//
// A Handle outlives the attempt it names: after the attempt commits or
// aborts, Violate calls become no-ops, so stale handles left in lock
// tables are harmless until the owner's handlers clean them up.
type Handle struct {
	status atomic.Int32
	// reason records why the transaction was violated, for diagnostics.
	reason atomic.Value // string
	// id is a process-global unique identity assigned when the attempt
	// begins. Semantic lock tables violate conflicting owners in
	// ascending id order, so violation order — and hence trace order —
	// is deterministic under the simulator's deterministic schedules
	// (Go map iteration would randomize it). Zero for handles created
	// outside a transaction (tests).
	id uint64
	// birth is the worker-local time the attempt began, available to
	// age-based contention policies.
	birth uint64
	// txid is the observability id of the owning top-level transaction
	// (0 when tracing was disabled at begin). It lets a conflicting
	// transaction that finds this handle in a lockword attribute its
	// abort to the holder.
	txid uint64
}

// handleIDs hands out Handle identities; see Handle.id.
var handleIDs atomic.Uint64

// Status returns the current lifecycle state.
func (h *Handle) Status() Status { return Status(h.status.Load()) }

// ID returns the handle's process-global identity (0 for handles not
// created by a transaction attempt). Lock tables use it as the
// canonical violation order.
func (h *Handle) ID() uint64 { return h.id }

// Violate requests that the owning transaction abort (program-directed
// abort). It succeeds only while the transaction is still Active; the
// victim observes the state change at its next transactional operation
// or at its pre-commit check and rolls itself back. The return value
// reports whether the victim will abort: false means the victim already
// serialized (Prepared/Committed) or is gone, and no conflict exists.
func (h *Handle) Violate(reason string) bool {
	if h.status.CompareAndSwap(int32(StatusActive), int32(StatusViolated)) {
		h.reason.Store(reason)
		return true
	}
	return Status(h.status.Load()) == StatusViolated
}

// ViolationReason returns the reason recorded by the successful Violate
// call, or "" if the transaction was never violated.
func (h *Handle) ViolationReason() string {
	if r, ok := h.reason.Load().(string); ok {
		return r
	}
	return ""
}

// violated reports whether the transaction has been asked to abort.
func (h *Handle) violated() bool { return h.Status() == StatusViolated }

// toPrepared moves Active→Prepared, the point of no return. A failed
// CAS means a violator won the race and the commit must be abandoned.
func (h *Handle) toPrepared() bool {
	return h.status.CompareAndSwap(int32(StatusActive), int32(StatusPrepared))
}

func (h *Handle) setCommitted() { h.status.Store(int32(StatusCommitted)) }
func (h *Handle) setAborted()   { h.status.Store(int32(StatusAborted)) }
