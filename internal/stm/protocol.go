package stm

import (
	"fmt"
	"sort"
	"sync/atomic"

	"tcc/internal/obs/metrics"
)

// Protocol is the word-level concurrency-control seam: the set of
// hooks through which the transaction machinery (retry loop, Var
// access, nesting, commit) touches variables. Everything above the
// seam — guards, commit/abort handlers, open nesting, semantic locks,
// violations, the MVCC-lite snapshot path — is protocol-independent,
// exactly as the paper's transactional collections are independent of
// the word-level TM they run on.
//
// The interface is sealed (its methods take unexported types): new
// protocols live in this package, in a protocol_*.go file, and are
// chosen by name via Thread.SetProtocol. The registered protocols:
//
//	tl2        — the default. Global version clock, per-Var versioned
//	             lockwords, invisible reads validated by version,
//	             commit-time write locking (DESIGN.md §4).
//	norec      — NOrec-style value-based validation over a single
//	             global sequence lock: reads record the observed value
//	             box, validation re-compares values, and commits
//	             serialize on the sequence lock with no per-Var version
//	             traffic on the read side (DESIGN.md §11).
//	tl2-eager  — TL2 with encounter-time write locking: Set acquires
//	             the lockword immediately, so write-write conflicts
//	             surface at the write instead of at commit.
//
// One process may run different protocols on different Threads, but
// all Threads that share transactional data must use the same
// protocol: each protocol's reads are only coherent against its own
// commit discipline.
type Protocol interface {
	// Name returns the protocol's registry name.
	Name() string
	// begin samples whatever begin-of-attempt state the protocol needs
	// and returns the attempt's read version (TL2: the global clock;
	// NOrec: the sequence lock). Also used for open-nested children,
	// which sample their own, newer read point.
	begin(t *Thread) uint64
	// read returns a committed value of c consistent with everything
	// tx has read so far, recording whatever evidence later validation
	// needs. Runs after the write-set lookup missed; unwinds with
	// sigRetry when consistency cannot be preserved.
	read(tx *Tx, c *varCore) any
	// observeWrite runs at Set time, before val is buffered in tx's
	// current level. Eager protocols acquire the variable's lockword
	// here; lazy protocols do nothing.
	observeWrite(tx *Tx, c *varCore)
	// extend revalidates every read tx has recorded and, on success,
	// moves tx's read version forward to the present — the partial-
	// rollback retry's way of keeping the enclosing transaction viable.
	extend(tx *Tx) bool
	// commit publishes level l: acquire whatever the protocol locks,
	// validate, pass the point of no return when doPrepare (top-level
	// commits; open-nested children skip it), install at a fresh global
	// clock tick, release. On failure nothing is installed and every
	// lock the call itself took is released. Must not unwind: it runs
	// inside the commit-guard window.
	commit(tx *Tx, l *level, doPrepare bool) bool
	// snapshotMark maps tx's current read point to a global-clock
	// version at which all reads recorded so far are valid, for
	// SetReadOnly's switch onto the MVCC-lite snapshot path. ok=false
	// means no such mark can be established (the transaction then
	// simply stays on the ordinary path).
	snapshotMark(tx *Tx) (uint64, bool)
	// abandon releases per-variable state an aborted attempt may still
	// hold (eager protocols: acquired lockwords). Runs on every
	// rollback, before the abort-guard footprint is taken, and on every
	// failed open-nested attempt. Must be idempotent.
	abandon(tx *Tx)
	// abandonLevel is abandon for one discarded nesting level (partial
	// rollback): release state held only for that level's writes.
	abandonLevel(tx *Tx, l *level)
}

// DefaultProtocol is the name NewThread starts every worker on.
const DefaultProtocol = "tl2"

// protocolRegistry maps names to implementations. Written only by
// registerProtocol during package init (protocols are sealed), so
// unsynchronized reads afterwards are safe.
var protocolRegistry = map[string]Protocol{}

// protoThreadCounts tracks how many Threads currently run each
// protocol, exported as the tcc_stm_protocol_threads gauge so /metrics
// scrapes can tell sweep configurations apart.
var protoThreadCounts = map[string]*atomic.Int64{}

// protoCommitCounters holds the pre-registered per-protocol commit
// counters (label: protocol); Threads cache their own pointer so the
// commit path never touches this map.
var protoCommitCounters = map[string]*metrics.Counter{}

// registerProtocol adds p to the registry and creates its metrics
// instruments. Called from init() in protocol_*.go files only.
func registerProtocol(p Protocol) Protocol {
	name := p.Name()
	if _, dup := protocolRegistry[name]; dup {
		panic("stm: duplicate protocol " + name)
	}
	protocolRegistry[name] = p
	protoCommitCounters[name] = metrics.Default.CounterSharded(metrics.StmProtocolCommits,
		"Committed top-level transactions by concurrency-control protocol", 8,
		metrics.L("protocol", name))
	n := &atomic.Int64{}
	protoThreadCounts[name] = n
	metrics.Default.GaugeFunc(metrics.StmProtocolThreads,
		"Threads currently configured for each concurrency-control protocol",
		func() float64 { return float64(n.Load()) },
		metrics.L("protocol", name))
	return p
}

// Protocols returns the registered protocol names, sorted, with the
// default first — the iteration order of the conformance suite and the
// sweep driver.
func Protocols() []string {
	names := make([]string, 0, len(protocolRegistry))
	for name := range protocolRegistry {
		if name != DefaultProtocol {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return append([]string{DefaultProtocol}, names...)
}

// SetProtocol switches the worker to the named concurrency-control
// protocol. It must be called outside any transaction, and every
// Thread sharing transactional data with this one must use the same
// protocol. The choice is sticky until the next SetProtocol.
func (t *Thread) SetProtocol(name string) error {
	if t.inTx {
		panic("stm: SetProtocol inside a transaction")
	}
	p, ok := protocolRegistry[name]
	if !ok {
		return fmt.Errorf("stm: unknown protocol %q (registered: %v)", name, Protocols())
	}
	if t.proto != nil {
		protoThreadCounts[t.proto.Name()].Add(-1)
	}
	t.proto = p
	t.protoCommits = protoCommitCounters[name]
	t.Stats.Protocol = name
	protoThreadCounts[name].Add(1)
	return nil
}

// Protocol returns the name of the worker's active protocol.
func (t *Thread) Protocol() string { return t.proto.Name() }
