package stm

// Edge cases in the interaction between handlers and the two nesting
// mechanisms: partial rollback of a closed-nested level must run only
// that level's abort handlers (newest-first) and leave the parent
// viable, and a program-directed abort landing in the middle of an
// open-nested commit must let the install complete and be compensated
// by the handlers the child attached (paper §4).

import (
	"fmt"
	"reflect"
	"testing"
)

// TestNestedPartialRollbackHandlerOrder forces a stale read inside a
// closed-nested level whose enclosing snapshot can be extended: the
// child level must roll back alone, running exactly its own abort
// handlers in reverse registration order, and the retried child plus
// the parent must then commit.
func TestNestedPartialRollbackHandlerOrder(t *testing.T) {
	th := NewThread(&RealClock{}, 1)
	v1 := NewVar(0)
	v2 := NewVar(0)

	var events []string
	nestedAttempts := 0
	err := th.Atomic(func(tx *Tx) error {
		tx.OnAbort(func() { events = append(events, "parent-abort") })
		tx.OnCommit(func() { events = append(events, "parent-commit") })
		return tx.Nested(func() error {
			attempt := nestedAttempts
			nestedAttempts++
			tx.OnAbort(func() { events = append(events, fmt.Sprintf("child-abort-1#%d", attempt)) })
			tx.OnAbort(func() { events = append(events, fmt.Sprintf("child-abort-2#%d", attempt)) })
			got := v1.Get(tx)
			if attempt == 0 {
				if got != 0 {
					t.Errorf("first attempt read v1 = %d, want 0", got)
				}
				// A concurrent committer overwrites both vars after the
				// child has read v1: the child's v1 read pins the snapshot,
				// so the v2 read below cannot extend and must retry the
				// child. The parent level has no reads, so its extension
				// succeeds and the rollback stays partial.
				v1.SetCommitted(10)
				v2.SetCommitted(20)
			}
			_ = v2.Get(tx)
			v1.Set(tx, v1.Get(tx)+1)
			return nil
		})
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if nestedAttempts != 2 {
		t.Errorf("nested attempts = %d, want 2", nestedAttempts)
	}
	// Attempt 0's handlers run newest-first at the partial rollback;
	// attempt 1's handlers merge into the parent and are discarded when
	// it commits; the parent's own abort handler never runs.
	want := []string{"child-abort-2#0", "child-abort-1#0", "parent-commit"}
	if !reflect.DeepEqual(events, want) {
		t.Errorf("events = %v, want %v", events, want)
	}
	if v1.GetCommitted() != 11 {
		t.Errorf("v1 = %d, want 11", v1.GetCommitted())
	}
	if v2.GetCommitted() != 20 {
		t.Errorf("v2 = %d, want 20", v2.GetCommitted())
	}
	if th.Stats.NestedRetries != 1 {
		t.Errorf("NestedRetries = %d, want 1", th.Stats.NestedRetries)
	}
	if th.Stats.Commits != 1 || th.Stats.Aborts != 0 || th.Stats.Violations != 0 {
		t.Errorf("stats = %+v, want exactly one commit and no full aborts", th.Stats)
	}
}

// TestViolateDuringOpenCommit violates the top-level transaction while
// an open-nested child is between finishing its body and installing its
// writes. The install must still complete (open effects are published
// unconditionally), the parent must observe the violation at its next
// transactional operation, and the rollback must run the compensation
// the child attached — the race commitOpen documents.
func TestViolateDuringOpenCommit(t *testing.T) {
	th := NewThread(&RealClock{}, 2)
	v := NewVar(0)
	ov := NewVar(0)

	attempts := 0
	compensations := 0
	openCommitHandlerRan := false
	err := th.Atomic(func(tx *Tx) error {
		attempt := attempts
		attempts++
		if attempt == 0 {
			if err := tx.Open(func(o *Tx) error {
				ov.Set(o, 99)
				o.OnAbort(func() { compensations++ })
				o.OnCommit(func() { openCommitHandlerRan = true })
				// The violator wins the race against this attempt while the
				// child's write is still uninstalled.
				if !tx.Handle().Violate("test-violation") {
					t.Error("Violate refused while the owner was still active")
				}
				return nil
			}); err != nil {
				t.Errorf("Open: %v", err)
			}
			// The open child committed: its effect is already public even
			// though this attempt is doomed.
			if ov.GetCommitted() != 99 {
				t.Errorf("open effect not installed: ov = %d, want 99", ov.GetCommitted())
			}
			_ = v.Get(tx) // observes the violation and unwinds
			t.Error("read on a violated transaction did not unwind")
		}
		v.Set(tx, 1)
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
	if compensations != 1 {
		t.Errorf("compensations = %d, want 1", compensations)
	}
	if openCommitHandlerRan {
		t.Error("open child's commit handler ran although the parent aborted")
	}
	if v.GetCommitted() != 1 {
		t.Errorf("v = %d, want 1", v.GetCommitted())
	}
	if ov.GetCommitted() != 99 {
		t.Errorf("ov = %d, want 99 (open effects survive the parent's rollback)", ov.GetCommitted())
	}
	if th.Stats.Violations != 1 || th.Stats.ViolationsByReason["test-violation"] != 1 {
		t.Errorf("violations = %d (%v), want 1 attributed to test-violation",
			th.Stats.Violations, th.Stats.ViolationsByReason)
	}
	if th.Stats.OpenCommits != 1 || th.Stats.Commits != 1 {
		t.Errorf("stats = %+v, want one open commit and one top-level commit", th.Stats)
	}
}
