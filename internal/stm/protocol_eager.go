package stm

// TL2 with encounter-time (eager) write locking: identical to the TL2
// default on the read and validation side, but Set acquires the
// variable's lockword immediately instead of at commit, so write-write
// conflicts surface at the write. Acquisition is non-blocking —
// a locked variable aborts the attempt rather than waiting — which
// keeps the protocol deadlock-free without ordering Set-time
// acquisitions; the contention manager's backoff breaks livelock, as
// it already does for commit-time conflicts.
//
// Writes stay buffered (lazy versioning): holding the lockword from
// Set to commit means commit's lockWriteSet finds every lock already
// owned and the install is conflict-free, but an abort still only has
// to release lockwords — no undo log. Acquired lockwords are tracked
// in Tx.eagerLocks per transaction (open-nested children track their
// own), released by the abandon hooks on every rollback path; release
// is conditional on still owning the word because a child's install or
// a failed commit's unlock may already have released it.
type eagerProtocol struct{}

var protoEager Protocol = registerProtocol(eagerProtocol{})

func (eagerProtocol) Name() string { return "tl2-eager" }

func (eagerProtocol) begin(t *Thread) uint64 { return globalClock.Load() }

func (eagerProtocol) read(tx *Tx, c *varCore) any { return tl2Read(tx, c) }

// observeWrite acquires c's lockword for the top-level handle at Set
// time. A variable already owned — by this Tx, an enclosing Tx, or an
// open-nested sibling sharing the handle — is left to its first
// acquirer's tracking; only fresh acquisitions join tx.eagerLocks.
func (eagerProtocol) observeWrite(tx *Tx, c *varCore) {
	h := tx.handle
	if w := c.word.Load(); wordLocked(w) && c.owner.Load() == h {
		return
	}
	if !c.tryLock(h) {
		tx.noteConflict(c, c.owner.Load(), causeLockedVar)
		tx.bail(sigRetry, "variable locked by writer")
	}
	tx.eagerLocks = append(tx.eagerLocks, c)
}

func (eagerProtocol) extend(tx *Tx) bool { return tl2Extend(tx) }

// commit reuses the TL2 sequence: lockWriteSet's tryLocks find every
// word already owned (instant), validation and install are unchanged,
// and install's release leaves the eagerLocks entries unowned for the
// abandon hooks to skip.
func (eagerProtocol) commit(tx *Tx, l *level, doPrepare bool) bool {
	return tl2Commit(tx, l, doPrepare)
}

func (eagerProtocol) snapshotMark(tx *Tx) (uint64, bool) { return tx.readVersion, true }

// abandon releases every lockword this Tx still owns from Set-time
// acquisition. Idempotent: entries already released — by a successful
// install, a failed commit's unlockWriteSet, or a previous abandon —
// are skipped by the ownership check.
func (eagerProtocol) abandon(tx *Tx) {
	releaseEagerLocks(tx, tx.eagerLocks)
	tx.eagerLocks = tx.eagerLocks[:0]
}

// abandonLevel releases the lockwords held only for level l's writes
// (partial rollback of a closed-nested child, already unlinked from
// tx.cur): a variable also written by a surviving level — of this Tx
// or, for an open-nested child, an enclosing one — keeps its lock.
func (eagerProtocol) abandonLevel(tx *Tx, l *level) {
	if len(tx.eagerLocks) == 0 {
		return
	}
	keep := tx.eagerLocks[:0]
	for _, c := range tx.eagerLocks {
		if _, ok := l.writes.get(c); ok && !writtenElsewhere(tx, c) {
			releaseIfOwned(c, tx.handle)
			continue
		}
		keep = append(keep, c)
	}
	for i := len(keep); i < len(tx.eagerLocks); i++ {
		tx.eagerLocks[i] = nil
	}
	tx.eagerLocks = keep
}

// writtenElsewhere reports whether c is written by any live level of
// tx or an enclosing transaction (the discarded level is not reachable
// from tx.cur when abandonLevel runs).
func writtenElsewhere(tx *Tx, c *varCore) bool {
	for t := tx; t != nil; t = t.outer {
		for lv := t.cur; lv != nil; lv = lv.parent {
			if _, ok := lv.writes.get(c); ok {
				return true
			}
		}
	}
	return false
}

// releaseEagerLocks unlocks every variable in locks still owned by
// tx's handle. The ownership check makes release safe against words
// already released and since re-acquired by another transaction: only
// the owner may mutate a locked word.
func releaseEagerLocks(tx *Tx, locks []*varCore) {
	for i, c := range locks {
		releaseIfOwned(c, tx.handle)
		locks[i] = nil
	}
}

// releaseIfOwned unlocks c if and only if h still owns it.
func releaseIfOwned(c *varCore, h *Handle) {
	if w := c.word.Load(); wordLocked(w) && c.owner.Load() == h {
		c.unlock()
	}
}
