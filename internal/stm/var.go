package stm

import (
	"sync"
	"sync/atomic"
)

// globalClock is the TL2 global version clock. It is package-global so
// that variables created by independent experiments in one process share
// a single monotonically increasing version space, which keeps version
// comparisons correct without threading a runtime object everywhere.
var globalClock atomic.Uint64

// globalVarID hands out the total order used to acquire write-set locks
// deadlock-free at commit.
var globalVarID atomic.Uint64

// varCore is the untyped heart of a transactional variable: a value, the
// version of the commit that produced it, and a write-lock owner set
// only while a committing transaction is installing into it.
type varCore struct {
	id    uint64
	mu    sync.Mutex
	val   any
	ver   uint64
	owner *Handle
}

// sample returns a consistent (value, version) pair, spinning in virtual
// time while another transaction is mid-install on this variable.
func (c *varCore) sample(tx *Tx) (any, uint64) {
	for spin := 0; ; spin++ {
		c.mu.Lock()
		if c.owner != nil && c.owner != tx.handle {
			c.mu.Unlock()
			tx.check()
			if spin >= 64 {
				// The owner may itself be stalled behind us in some
				// larger scheme; give up the attempt rather than spin
				// forever.
				tx.bail(sigRetry, "variable locked by committer")
			}
			tx.thread.Clock.Wait(4)
			continue
		}
		v, ver := c.val, c.ver
		c.mu.Unlock()
		return v, ver
	}
}

// peek reports the current version and whether the variable is
// write-locked by a transaction other than self.
func (c *varCore) peek(self *Handle) (ver uint64, lockedByOther bool) {
	c.mu.Lock()
	ver = c.ver
	lockedByOther = c.owner != nil && c.owner != self
	c.mu.Unlock()
	return
}

// Var is a transactional variable holding a value of type T. All reads
// and writes inside transactions go through Get and Set; vars give the
// STM the per-field conflict granularity that lets the STM-instrumented
// collections (internal/stmcol) exhibit exactly the memory-level
// conflicts the paper attributes to hash-table size fields and tree
// rotations.
type Var[T any] struct {
	core *varCore
}

// NewVar creates a transactional variable with an initial value. The
// initial value is published at version 0, visible to every transaction.
func NewVar[T any](initial T) *Var[T] {
	return &Var[T]{core: &varCore{id: globalVarID.Add(1), val: initial}}
}

// Get returns the variable's value as seen by tx: the transaction's own
// pending write if it has one (innermost nesting level first), otherwise
// a validated committed value. On a consistency violation the enclosing
// transaction (or nested level) aborts and retries via panic unwinding.
func (v *Var[T]) Get(tx *Tx) T {
	tx.check()
	c := v.core
	for l := tx.cur; l != nil; l = l.parent {
		if val, ok := l.writes[c]; ok {
			tx.tick(CostRead)
			return val.(T)
		}
	}
	val, ver := c.sample(tx)
	if ver > tx.readVersion && !tx.extend() {
		tx.bail(sigRetry, "stale read")
	}
	tx.cur.reads[c] = ver
	tx.tick(CostRead)
	return val.(T)
}

// Set buffers a write of val into tx's current nesting level (lazy
// versioning); it becomes globally visible only if the top-level
// transaction commits.
func (v *Var[T]) Set(tx *Tx, val T) {
	tx.check()
	tx.cur.writes[v.core] = val
	tx.tick(CostWrite)
}

// GetCommitted returns the latest committed value without any
// transactional bookkeeping. Intended for initialization and for
// inspecting results after all transactions have finished; using it
// concurrently with committers yields an atomic but unordered snapshot.
func (v *Var[T]) GetCommitted() T {
	c := v.core
	c.mu.Lock()
	val := c.val
	c.mu.Unlock()
	return val.(T)
}

// SetCommitted installs a value outside any transaction, as if by an
// instantly committing transaction. Intended for single-threaded setup.
func (v *Var[T]) SetCommitted(val T) {
	c := v.core
	c.mu.Lock()
	c.val = val
	c.ver = globalClock.Add(1)
	c.mu.Unlock()
}
