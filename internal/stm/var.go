package stm

import (
	"runtime"
	"strconv"
	"sync/atomic"
)

// globalClock is the TL2 global version clock. It is package-global so
// that variables created by independent experiments in one process share
// a single monotonically increasing version space, which keeps version
// comparisons correct without threading a runtime object everywhere.
var globalClock atomic.Uint64

// globalVarID hands out the total order used to acquire write-set locks
// deadlock-free at commit.
var globalVarID atomic.Uint64

// Lockword layout (see DESIGN.md §4 "TL2 lockword"): a varCore's entire
// concurrency-control state is one uint64 — the commit version in the
// high 63 bits and a write-lock bit in bit 0 — so the unlocked fast
// paths (Var.Get's sample, peek, commit-time read validation) are plain
// atomic loads with no mutex and no CAS.
//
// Bit budget: versions are 63 bits wide. The global clock ticks once
// per writing commit (plus once per SetCommitted), so overflow needs
// 2^63 ≈ 9.2·10^18 commits — at an implausible 10^9 commits/second
// that is ~292 years of continuous running; overflow is unreachable in
// practice and the code does not attempt to handle wraparound.
const (
	lockBit      = uint64(1)
	versionShift = 1
	// maxVersion is the largest version the packed word can hold.
	maxVersion = uint64(1)<<63 - 1
)

// packWord builds a lockword from a version and a lock flag.
func packWord(ver uint64, locked bool) uint64 {
	w := ver << versionShift
	if locked {
		w |= lockBit
	}
	return w
}

// wordVersion and wordLocked unpack a lockword.
func wordVersion(w uint64) uint64 { return w >> versionShift }
func wordLocked(w uint64) bool    { return w&lockBit != 0 }

// valBox is one committed value together with the version of the
// commit that installed it. Boxes are immutable apart from prev, which
// links to the box the install displaced — the MVCC-lite history that
// lets snapshot readers find the newest value at or below their read
// version. install truncates the displaced box's own prev, so a var
// retains exactly one prior box: a snapshot reader lapped by two
// commits finds no box old enough and falls back to the retry path.
type valBox struct {
	val any
	ver uint64
	// prev is the displaced box (nil once truncated by the next
	// install). Atomic because truncation races with snapshot readers
	// walking the chain.
	prev atomic.Pointer[valBox]
}

// varCore is the untyped heart of a transactional variable: a boxed
// committed value, the packed versioned lockword of the commit that
// produced it, and an owner side-slot identifying the committing
// transaction while — and only while — the lock bit is set.
//
// Acquire/release protocol: a committer CASes the word from
// (ver, unlocked) to (ver, locked), then stores its handle into owner;
// install stores a fresh value box, clears owner, and releases by
// storing (newVer, unlocked) in one atomic store. While the lock bit is
// set only the holder mutates the word, so the holder may load+store it
// without CAS. The owner lives in a side-slot rather than in the word
// because a *Handle does not fit alongside a 63-bit version; readers
// that observe the lock bit before the owner store see a nil owner and
// conservatively treat the variable as locked by another transaction.
type varCore struct {
	id uint64
	// label is the variable's name in observability output (conflict
	// heatmaps, traces). Write it only during construction/setup —
	// before the variable is shared — so reads at event-emission time
	// need no synchronization.
	label string
	word  atomic.Uint64
	// val points to the newest committed value box (head of the
	// two-box history chain). install replaces the pointer, never a
	// published box's value, so a reader holding a stale box still
	// sees a coherent value.
	val atomic.Pointer[valBox]
	// owner is valid only while the lock bit is set in word.
	owner atomic.Pointer[Handle]
}

func newVarCore(initial any) *varCore {
	c := &varCore{id: globalVarID.Add(1)}
	c.val.Store(&valBox{val: initial})
	return c
}

// displayLabel names the variable in observability output, falling
// back to its allocation-ordered id.
func (c *varCore) displayLabel() string {
	if c.label != "" {
		return c.label
	}
	return "var#" + strconv.FormatUint(c.id, 10)
}

// sample returns a consistent (value, version) pair without taking any
// lock: load the word, load the value box, and re-load the word. If the
// two word loads agree and the word is unlocked, no install completed in
// between (versions are monotonic, so the word cannot ABA), hence the
// box belongs to exactly that version. While another transaction is
// mid-install the reader spins in virtual time and eventually bails.
func (c *varCore) sample(tx *Tx) (any, uint64) {
	for spin := 0; ; spin++ {
		w := c.word.Load()
		if !wordLocked(w) {
			val := c.val.Load().val
			if c.word.Load() == w {
				return val, wordVersion(w)
			}
			// An install completed between the two word loads; the box
			// may not match the sampled version. Re-sample.
			continue
		}
		if c.owner.Load() == tx.handle {
			// Locked by this transaction's own commit machinery; the
			// current box and version bits are still ours to read.
			return c.val.Load().val, wordVersion(w)
		}
		tx.check()
		if spin >= 64 {
			// The owner may itself be stalled behind us in some
			// larger scheme; give up the attempt rather than spin
			// forever.
			tx.noteConflict(c, c.owner.Load(), causeLockedVar)
			tx.bail(sigRetry, "variable locked by committer")
		}
		tx.thread.Clock.Wait(4)
	}
}

// peek reports the current version and whether the variable is
// write-locked by a transaction other than self. On an unlocked
// variable this is a single atomic load.
func (c *varCore) peek(self *Handle) (ver uint64, lockedByOther bool) {
	w := c.word.Load()
	if wordLocked(w) && c.owner.Load() != self {
		return wordVersion(w), true
	}
	return wordVersion(w), false
}

// tryLock attempts to acquire the write lock for h. It fails only if
// another transaction holds the lock; a CAS lost to a concurrent
// version install retries against the new word.
func (c *varCore) tryLock(h *Handle) bool {
	for {
		w := c.word.Load()
		if wordLocked(w) {
			return c.owner.Load() == h
		}
		if c.word.CompareAndSwap(w, w|lockBit) {
			c.owner.Store(h)
			return true
		}
	}
}

// unlock releases the write lock without changing the version (the
// failed-commit path). Holder-only: no CAS needed.
func (c *varCore) unlock() {
	c.owner.Store(nil)
	c.word.Store(c.word.Load() &^ lockBit)
}

// install publishes a new committed value at version wv and releases
// the lock in the same atomic store. Holder-only. The displaced box is
// retained behind the new one for snapshot readers, and its own prev
// is truncated first, bounding every var's history to one prior box
// regardless of write traffic.
func (c *varCore) install(val any, wv uint64) {
	box := &valBox{val: val, ver: wv}
	old := c.val.Load()
	old.prev.Store(nil)
	box.prev.Store(old)
	c.val.Store(box)
	c.owner.Store(nil)
	c.word.Store(packWord(wv, false))
}

// readAt is the MVCC-lite snapshot read: the newest committed value
// with version ≤ rv, found by walking the box chain — no lock, no CAS,
// no read-set entry. ok=false means the snapshot attempt must restart
// (and eventually fall back to the retry path): either both retained
// boxes are newer than rv (two commits lapped the reader), or a
// committer held the lockword for the whole spin budget.
//
// Safety of the unlocked walk: a commit acquires the var's lockword
// before it draws its write version from the global clock, and install
// publishes the new box before the single release store of the word.
// A reader that samples rv and then observes the word unlocked
// therefore knows every install at a version ≤ rv is fully present in
// the chain; any install that lands mid-walk carries a version > rv
// and only prepends. A concurrent truncation can cut the chain under
// the walk, but that yields nil — reported as shallow history, never a
// wrong value.
func (c *varCore) readAt(clock Clock, rv uint64) (any, bool) {
	for spin := 0; ; spin++ {
		w := c.word.Load()
		if !wordLocked(w) {
			for b := c.val.Load(); b != nil; b = b.prev.Load() {
				if b.ver <= rv {
					return b.val, true
				}
			}
			return nil, false
		}
		if spin >= 64 {
			// A stalled committer holds the word; give up the attempt
			// rather than spin forever (the restart resamples rv).
			return nil, false
		}
		clock.Wait(4)
	}
}

// Var is a transactional variable holding a value of type T. All reads
// and writes inside transactions go through Get and Set; vars give the
// STM the per-field conflict granularity that lets the STM-instrumented
// collections (internal/stmcol) exhibit exactly the memory-level
// conflicts the paper attributes to hash-table size fields and tree
// rotations.
type Var[T any] struct {
	core *varCore
}

// NewVar creates a transactional variable with an initial value. The
// initial value is published at version 0, visible to every transaction.
func NewVar[T any](initial T) *Var[T] {
	return &Var[T]{core: newVarCore(initial)}
}

// SetLabel names the variable in observability output (conflict
// heatmaps, Chrome traces); unlabelled vars appear as "var#<id>". Call
// it during construction, before the variable is shared with other
// threads. Returns v for chaining.
func (v *Var[T]) SetLabel(label string) *Var[T] {
	v.core.label = label
	return v
}

// Label returns the variable's observability label ("" if unset).
func (v *Var[T]) Label() string { return v.core.label }

// Get returns the variable's value as seen by tx: the transaction's own
// pending write if it has one (innermost nesting level first), otherwise
// a validated committed value. On a consistency violation the enclosing
// transaction (or nested level) aborts and retries via panic unwinding.
func (v *Var[T]) Get(tx *Tx) T {
	tx.check()
	c := v.core
	top := tx.top()
	if top.snapshot {
		// Snapshot mode: invisible read against the frozen clock-space
		// read version. Nothing is recorded, validated, or extended; a
		// writer can never observe — let alone abort — this reader.
		val, ok := c.readAt(tx.thread.Clock, top.snapVersion)
		if !ok {
			tx.bail(sigFallback, fallbackShallowHistory)
		}
		tx.tick(CostRead)
		return val.(T)
	}
	for l := tx.cur; l != nil; l = l.parent {
		if val, ok := l.writes.get(c); ok {
			tx.tick(CostRead)
			return val.(T)
		}
	}
	val := tx.thread.proto.read(tx, c)
	tx.tick(CostRead)
	return val.(T)
}

// Set buffers a write of val into tx's current nesting level (lazy
// versioning); it becomes globally visible only if the top-level
// transaction commits. Inside a snapshot (read-only) transaction a
// write cannot be honored — snapshot reads were never recorded, so
// there is nothing to validate a writing commit against — and the
// attempt restarts on the ordinary retry path instead.
func (v *Var[T]) Set(tx *Tx, val T) {
	tx.check()
	if tx.top().snapshot {
		tx.bail(sigFallback, fallbackWrite)
	}
	tx.thread.proto.observeWrite(tx, v.core)
	tx.cur.writes.put(v.core, val)
	tx.tick(CostWrite)
}

// GetCommitted returns the latest committed value without any
// transactional bookkeeping. Intended for initialization and for
// inspecting results after all transactions have finished; using it
// concurrently with committers yields an atomic but unordered snapshot
// (value boxes are immutable, so even a mid-install reader sees a
// coherent old-or-new value).
func (v *Var[T]) GetCommitted() T {
	return v.core.val.Load().val.(T)
}

// SetCommitted installs a value outside any transaction, as if by an
// instantly committing transaction: it acquires the lockword, installs
// at a fresh clock tick, and releases. Intended for single-threaded
// setup; it is nonetheless safe (if unordered) against concurrent
// committers.
func (v *Var[T]) SetCommitted(val T) {
	c := v.core
	for {
		w := c.word.Load()
		if wordLocked(w) {
			runtime.Gosched()
			continue
		}
		if c.word.CompareAndSwap(w, w|lockBit) {
			break
		}
	}
	c.install(val, globalClock.Add(1))
}
