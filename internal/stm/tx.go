package stm

import (
	"fmt"
	"sort"
)

// signal is the panic payload used for non-local transaction control
// flow. Real panics are not wrapped and propagate unchanged.
type signal struct {
	kind   sigKind
	reason string
	err    error // for sigUserAbort
}

type sigKind int

const (
	// sigRetry: a memory-level conflict; the innermost retryable scope
	// (nested level or top-level attempt) re-executes.
	sigRetry sigKind = iota
	// sigViolated: another transaction performed a program-directed
	// abort of this one; always unwinds to the top level, which rolls
	// back and retries.
	sigViolated
	// sigUserAbort: tx.Abort(err) was called; unwinds to the top level,
	// which rolls back and returns err to the caller of Atomic.
	sigUserAbort
)

func (s *signal) String() string {
	return fmt.Sprintf("stm signal %d (%s)", s.kind, s.reason)
}

// handler is a registered commit or abort handler.
type handler func()

// level is one closed-nesting level of a transaction: private read and
// write sets plus the commit/abort handlers registered while it was the
// current level. Committing a level merges everything into its parent;
// aborting it discards the sets, runs its abort handlers (compensation
// for open-nested effects made at this level), and discards its commit
// handlers — the handler semantics of paper §4.
type level struct {
	parent   *level
	reads    map[*varCore]uint64
	writes   map[*varCore]any
	onCommit []handler
	onAbort  []handler
}

func newLevel(parent *level) *level {
	return &level{
		parent: parent,
		reads:  make(map[*varCore]uint64),
		writes: make(map[*varCore]any),
	}
}

// Tx is a transaction: either a top-level atomic region, or an
// open-nested child (created by Open) that commits its effects
// immediately. Closed nesting does not create a new Tx; it pushes a new
// level onto the same Tx.
type Tx struct {
	thread *Thread
	// handle identifies the top-level transaction; open-nested children
	// share their top-level ancestor's handle so semantic locks they
	// take are owned by the outermost transaction (paper §3.1: "The
	// owner of a lock is the top-level transaction at the time of the
	// read operation, not the open-nested transaction that actually
	// performs the read").
	handle *Handle
	// outer is the enclosing Tx for an open-nested child, nil for a
	// top-level transaction.
	outer *Tx
	// readVersion is this Tx's TL2 snapshot version; an open-nested
	// child samples its own, newer snapshot.
	readVersion uint64
	cur         *level
	// locals holds per-transaction attachments keyed by arbitrary
	// comparable keys; the transactional collections store their
	// thread-local buffers and lock sets here (paper Tables 3, 6, 9
	// "Local Transaction State"). Only the top-level Tx has locals.
	locals map[any]any
	// attempt counts restarts of this top-level transaction, feeding
	// the contention manager's backoff.
	attempt int
}

// Thread returns the worker this transaction runs on.
func (tx *Tx) Thread() *Thread { return tx.thread }

// Handle returns the top-level transaction's handle, suitable for use as
// the owner of semantic locks and as a target of Violate.
func (tx *Tx) Handle() *Handle { return tx.handle }

// Attempt returns how many times this top-level transaction has been
// restarted (0 on the first attempt).
func (tx *Tx) Attempt() int { return tx.top().attempt }

// top returns the outermost Tx (self for top-level transactions).
func (tx *Tx) top() *Tx {
	t := tx
	for t.outer != nil {
		t = t.outer
	}
	return t
}

// Local returns the attachment stored under key on the top-level
// transaction, or nil.
func (tx *Tx) Local(key any) any { return tx.top().locals[key] }

// SetLocal stores an attachment under key on the top-level transaction.
// Attachments live for one attempt: a restart begins with no
// attachments, so collections re-register their buffers and handlers.
func (tx *Tx) SetLocal(key, val any) {
	t := tx.top()
	if t.locals == nil {
		t.locals = make(map[any]any)
	}
	t.locals[key] = val
}

// OnCommit registers fn to run if the transaction commits. The handler
// is associated with the current nesting level: it is discarded if that
// level aborts, promoted to the parent when the level commits, and runs
// (in registration order) after the top-level transaction's memory
// commit succeeds. Registering from an open-nested child attaches the
// handler to the child's *enclosing* level once the child commits.
func (tx *Tx) OnCommit(fn func()) { tx.cur.onCommit = append(tx.cur.onCommit, fn) }

// OnAbort registers fn to run if the level it is associated with — and
// therefore the work it compensates for — is rolled back: it runs
// (newest-first) when that level or any enclosing level aborts, and is
// discarded once the top-level transaction commits. Abort handlers are
// the compensation mechanism that undoes effects published by
// open-nested children (paper §4).
func (tx *Tx) OnAbort(fn func()) { tx.cur.onAbort = append(tx.cur.onAbort, fn) }

// OnTopCommit registers fn at the top-level transaction's root nesting
// level, regardless of the current nesting depth. The transactional
// collection classes use this (together with OnTopAbort) to implement
// the paper's §5 guideline of a single commit handler and a single
// abort handler per transaction and collection, registered by the first
// operation; see the internal/core package documentation for the
// resulting closed-nesting caveat.
func (tx *Tx) OnTopCommit(fn func()) {
	l := tx.top().rootLevel()
	l.onCommit = append(l.onCommit, fn)
}

// OnTopAbort registers fn at the top-level transaction's root nesting
// level; it runs if and only if the whole transaction rolls back.
func (tx *Tx) OnTopAbort(fn func()) {
	l := tx.top().rootLevel()
	l.onAbort = append(l.onAbort, fn)
}

func (tx *Tx) rootLevel() *level {
	l := tx.cur
	for l.parent != nil {
		l = l.parent
	}
	return l
}

// Poll gives the STM an opportunity to observe a pending violation in
// the middle of long straight-line computation; it unwinds to the
// top-level retry loop if another transaction has aborted this one.
func (tx *Tx) Poll() { tx.check() }

// Abort rolls the transaction back and makes Atomic return err without
// retrying (the self-abort of paper §4, for consistency violations
// detected by the program).
func (tx *Tx) Abort(err error) {
	panic(&signal{kind: sigUserAbort, reason: "self abort", err: err})
}

// check unwinds if this transaction has been violated.
func (tx *Tx) check() {
	if tx.handle.violated() {
		panic(&signal{kind: sigViolated, reason: tx.handle.ViolationReason()})
	}
}

// bail unwinds with the given signal kind.
func (tx *Tx) bail(kind sigKind, reason string) {
	panic(&signal{kind: kind, reason: reason})
}

func (tx *Tx) tick(cycles uint64) { tx.thread.Clock.Tick(cycles) }

// extend attempts TL2 read-version extension: if every read recorded so
// far is still at its recorded version and unlocked, the snapshot can be
// moved forward to the current global clock, allowing a read of a newer
// variable to proceed without aborting.
func (tx *Tx) extend() bool {
	now := globalClock.Load()
	for l := tx.cur; l != nil; l = l.parent {
		for c, ver := range l.reads {
			cur, locked := c.peek(tx.handle)
			if locked || cur != ver {
				return false
			}
		}
	}
	tx.readVersion = now
	return true
}

// Nested runs fn as a closed-nested transaction with partial rollback:
// a memory conflict inside fn rolls back and retries only fn, not the
// enclosing transaction. On success the child's reads, writes and
// handlers merge into the parent level. If fn returns an error the
// child aborts (its abort handlers run, its buffered writes vanish) and
// the error is returned to the caller, with the parent still viable.
//
// The paper requires this so commit handlers that apply buffered
// collection updates can conflict and replay without re-executing the
// long-running parent (§4 "Nested transactions: open and closed").
func (tx *Tx) Nested(fn func() error) error {
	for childAttempt := 0; ; childAttempt++ {
		tx.check()
		child := newLevel(tx.cur)
		tx.cur = child
		err, sig := runBody(fn)
		tx.cur = child.parent
		switch {
		case sig == nil && err == nil:
			// Child commits: merge into parent.
			for c, ver := range child.reads {
				if _, dup := tx.cur.reads[c]; !dup {
					tx.cur.reads[c] = ver
				}
			}
			for c, val := range child.writes {
				tx.cur.writes[c] = val
			}
			tx.cur.onCommit = append(tx.cur.onCommit, child.onCommit...)
			tx.cur.onAbort = append(tx.cur.onAbort, child.onAbort...)
			return nil
		case sig == nil && err != nil:
			// Child aborts by user request: compensate and report.
			child.runAbortHandlers()
			return err
		case sig.kind == sigRetry:
			// Memory conflict inside the child: partial rollback. The
			// child can only make progress on retry if the snapshot can
			// be extended past the conflicting commit; otherwise some
			// enclosing read is stale and the whole transaction must
			// restart.
			child.runAbortHandlers()
			tx.thread.Stats.NestedRetries++
			if !tx.extend() {
				panic(sig)
			}
			tx.thread.backoff(childAttempt)
		default:
			// Violation or user abort of the whole transaction: this
			// child level is rolled back on the way out.
			child.runAbortHandlers()
			panic(sig)
		}
	}
}

// runAbortHandlers runs a level's abort handlers newest-first, so
// compensations undo open-nested effects in reverse order of their
// creation.
func (l *level) runAbortHandlers() {
	for i := len(l.onAbort) - 1; i >= 0; i-- {
		l.onAbort[i]()
	}
	l.onAbort = nil
	l.onCommit = nil
}

// runBody executes fn, converting signal panics into return values and
// letting real panics propagate.
func runBody(fn func() error) (err error, sig *signal) {
	defer func() {
		if r := recover(); r != nil {
			if s, ok := r.(*signal); ok {
				sig = s
				return
			}
			panic(r)
		}
	}()
	err = fn()
	return
}

// commit attempts the top-level TL2 commit: lock the write set in
// variable-ID order, validate the read set, pass the point of no return
// (Active→Prepared, losing to any in-flight Violate), install at a
// fresh clock tick, then run commit handlers in registration order.
// For transactions with handlers the whole sequence runs under the
// global commit guard so that semantic conflict detection is atomic
// with the commit (see commitMu). It reports whether the transaction
// committed.
func (tx *Tx) commit() bool {
	l := tx.cur
	if l.parent != nil {
		panic("stm: commit with open nested level")
	}
	guarded := len(l.onCommit) > 0 || len(l.onAbort) > 0
	if guarded {
		commitMu.Lock()
	}
	ok := tx.commitGuarded(l)
	if guarded {
		commitMu.Unlock()
	}
	if ok {
		tx.tick(CostCommitBase + CostCommitPerWrite*uint64(len(l.writes)))
		tx.thread.flushDeferred()
	}
	return ok
}

// commitGuarded performs validation, installation and handler execution
// without charging any clock time (the caller ticks afterwards, outside
// the commit guard).
func (tx *Tx) commitGuarded(l *level) bool {
	if len(l.writes) == 0 {
		// Read-only fast path: every read was validated against the
		// snapshot when it happened, so the transaction is serializable
		// at readVersion. Only the violation race remains.
		if !tx.handle.toPrepared() {
			return false
		}
	} else {
		cores := make([]*varCore, 0, len(l.writes))
		for c := range l.writes {
			cores = append(cores, c)
		}
		sort.Slice(cores, func(i, j int) bool { return cores[i].id < cores[j].id })
		locked := 0
		release := func() {
			for _, c := range cores[:locked] {
				c.mu.Lock()
				c.owner = nil
				c.mu.Unlock()
			}
		}
		for _, c := range cores {
			c.mu.Lock()
			if c.owner != nil && c.owner != tx.handle {
				c.mu.Unlock()
				release()
				return false
			}
			c.owner = tx.handle
			c.mu.Unlock()
			locked++
		}
		for c, ver := range l.reads {
			c.mu.Lock()
			ok := c.ver == ver && (c.owner == nil || c.owner == tx.handle)
			c.mu.Unlock()
			if !ok {
				release()
				return false
			}
		}
		if !tx.handle.toPrepared() {
			release()
			return false
		}
		wv := globalClock.Add(1)
		for _, c := range cores {
			c.mu.Lock()
			c.val = l.writes[c]
			c.ver = wv
			c.owner = nil
			c.mu.Unlock()
		}
	}
	tx.handle.setCommitted()
	for _, h := range l.onCommit {
		h()
		tx.thread.Stats.HandlerRuns++
	}
	return true
}

// rollback discards the transaction's buffered writes and runs its abort
// handlers (compensating any open-nested effects) under the commit
// guard, so compensations are atomic with respect to other
// transactions' commits.
func (tx *Tx) rollback() {
	tx.handle.setAborted()
	guarded := false
	for l := tx.cur; l != nil; l = l.parent {
		if len(l.onAbort) > 0 {
			guarded = true
		}
	}
	if guarded {
		commitMu.Lock()
	}
	for l := tx.cur; l != nil; l = l.parent {
		l.runAbortHandlers()
	}
	if guarded {
		commitMu.Unlock()
	}
	tx.tick(CostAbort)
	tx.thread.flushDeferred()
}
