package stm

import (
	"fmt"
	"sort"

	"tcc/internal/obs"
)

// signal is the panic payload used for non-local transaction control
// flow. Real panics are not wrapped and propagate unchanged.
type signal struct {
	kind   sigKind
	reason string
	err    error // for sigUserAbort
}

type sigKind int

const (
	// sigRetry: a memory-level conflict; the innermost retryable scope
	// (nested level or top-level attempt) re-executes.
	sigRetry sigKind = iota
	// sigViolated: another transaction performed a program-directed
	// abort of this one; always unwinds to the top level, which rolls
	// back and retries.
	sigViolated
	// sigUserAbort: tx.Abort(err) was called; unwinds to the top level,
	// which rolls back and returns err to the caller of Atomic.
	sigUserAbort
	// sigFallback: a snapshot (read-only) attempt cannot proceed in
	// snapshot mode — the body turned out to write, registered a
	// handler, or a var's retained history was too shallow. The
	// attempt restarts: with a fresh read version for shallow history,
	// or on the ordinary retry path with snapshot mode off. Never
	// counted as an abort; nothing was published or locked.
	sigFallback
)

// Fallback reasons, as constant strings so raising one never
// allocates. Shallow history restarts the snapshot attempt with a
// fresh read version; everything else drops to the retry path.
const (
	fallbackShallowHistory = "snapshot history too shallow"
	fallbackWrite          = "write inside read-only transaction"
	fallbackHandler        = "handler registration inside read-only transaction"
	fallbackOpen           = "open nesting inside read-only transaction"
)

func (s *signal) String() string {
	return fmt.Sprintf("stm signal %d (%s)", s.kind, s.reason)
}

// handler is a registered commit or abort handler.
type handler func()

// inlineSet is how many read-set and write-set entries a nesting level
// holds in fixed arrays before spilling to a map. Most transactions in
// the paper's workloads touch a handful of vars per level (a bucket
// head, a size field, a counter), so the common case allocates nothing.
const inlineSet = 8

// readEvidence is what one sampled read recorded for later validation.
// Version-validating protocols (TL2 and its eager variant) record the
// observed lockword version; the value-validating protocol (NOrec)
// records the observed value box instead. Exactly one of the two is
// meaningful per protocol.
type readEvidence struct {
	ver uint64
	box *valBox
}

// readEntry records one sampled read: the variable and the evidence the
// transaction observed.
type readEntry struct {
	c *varCore
	readEvidence
}

// readSet is a small-size-optimized map from varCore to observed
// evidence: the first inlineSet distinct vars live in an inline array,
// the rest spill to a lazily allocated map. Entries are deduplicated by
// core (matching the previous map semantics: re-reading a var
// overwrites its recorded evidence).
type readSet struct {
	n      int // entries used in inline
	inline [inlineSet]readEntry
	spill  map[*varCore]readEvidence
}

// put records (c, ver, box), overwriting any existing entry for c.
func (s *readSet) put(c *varCore, ver uint64, box *valBox) {
	ev := readEvidence{ver, box}
	for i := 0; i < s.n; i++ {
		if s.inline[i].c == c {
			s.inline[i].readEvidence = ev
			return
		}
	}
	if s.spill != nil {
		if _, ok := s.spill[c]; ok {
			s.spill[c] = ev
			return
		}
	}
	if s.n < inlineSet {
		s.inline[s.n] = readEntry{c, ev}
		s.n++
		return
	}
	if s.spill == nil {
		s.spill = make(map[*varCore]readEvidence)
	}
	s.spill[c] = ev
}

// has reports whether c has a recorded read.
func (s *readSet) has(c *varCore) bool {
	for i := 0; i < s.n; i++ {
		if s.inline[i].c == c {
			return true
		}
	}
	_, ok := s.spill[c]
	return ok
}

// len returns the number of recorded reads.
func (s *readSet) len() int { return s.n + len(s.spill) }

// firstInvalid returns the first recorded read that is no longer at
// its recorded version or is locked by a transaction other than self
// (nil if the whole set is valid) — the shared predicate of TL2
// read-version extension and commit-time read validation, returning
// the offending variable so rollbacks can be attributed to it. One
// atomic load per unlocked entry.
func (s *readSet) firstInvalid(self *Handle) *varCore {
	for i := 0; i < s.n; i++ {
		cur, lockedByOther := s.inline[i].c.peek(self)
		if lockedByOther || cur != s.inline[i].ver {
			return s.inline[i].c
		}
	}
	for c, ev := range s.spill {
		cur, lockedByOther := c.peek(self)
		if lockedByOther || cur != ev.ver {
			return c
		}
	}
	return nil
}

// reset clears the set for reuse, dropping core pointers so recycled
// levels do not pin dead variables.
func (s *readSet) reset() {
	for i := 0; i < s.n; i++ {
		s.inline[i] = readEntry{}
	}
	s.n = 0
	if s.spill != nil {
		clear(s.spill)
	}
}

// writeEntry is one buffered write: the variable and the pending value.
type writeEntry struct {
	c   *varCore
	val any
}

// writeSet is the write-set analogue of readSet: inline array first,
// map spill after, deduplicated by core with last-write-wins values.
type writeSet struct {
	n      int
	inline [inlineSet]writeEntry
	spill  map[*varCore]any
}

// get returns the buffered value for c, if any.
func (s *writeSet) get(c *varCore) (any, bool) {
	for i := 0; i < s.n; i++ {
		if s.inline[i].c == c {
			return s.inline[i].val, true
		}
	}
	if s.spill != nil {
		val, ok := s.spill[c]
		return val, ok
	}
	return nil, false
}

// put buffers val for c, overwriting any existing entry.
func (s *writeSet) put(c *varCore, val any) {
	for i := 0; i < s.n; i++ {
		if s.inline[i].c == c {
			s.inline[i].val = val
			return
		}
	}
	if s.spill != nil {
		if _, ok := s.spill[c]; ok {
			s.spill[c] = val
			return
		}
	}
	if s.n < inlineSet {
		s.inline[s.n] = writeEntry{c, val}
		s.n++
		return
	}
	if s.spill == nil {
		s.spill = make(map[*varCore]any)
	}
	s.spill[c] = val
}

// len returns the number of buffered writes.
func (s *writeSet) len() int { return s.n + len(s.spill) }

// reset clears the set for reuse.
func (s *writeSet) reset() {
	for i := 0; i < s.n; i++ {
		s.inline[i] = writeEntry{}
	}
	s.n = 0
	if s.spill != nil {
		clear(s.spill)
	}
}

// level is one closed-nesting level of a transaction: private read and
// write sets plus the commit/abort handlers registered while it was the
// current level. Committing a level merges everything into its parent;
// aborting it discards the sets, runs its abort handlers (compensation
// for open-nested effects made at this level), and discards its commit
// handlers — the handler semantics of paper §4. Levels are recycled
// through the owning Thread's pool, so steady-state transactions
// allocate no per-attempt bookkeeping.
type level struct {
	parent   *level
	reads    readSet
	writes   writeSet
	onCommit []handler
	onAbort  []handler
	// commitGuards and abortGuards are the guard footprint accumulated
	// at this level: the (deduplicated) guards under which the handlers
	// above were registered. The commit protocol acquires the union of
	// both in id order; rollback acquires only abortGuards.
	commitGuards []*Guard
	abortGuards  []*Guard
}

// reset clears the level for reuse. Handler slices keep their backing
// arrays (the capacity is the point of recycling) but drop the closure
// references so captured state is not pinned between transactions.
func (l *level) reset() {
	l.parent = nil
	l.reads.reset()
	l.writes.reset()
	for i := range l.onCommit {
		l.onCommit[i] = nil
	}
	l.onCommit = l.onCommit[:0]
	for i := range l.onAbort {
		l.onAbort[i] = nil
	}
	l.onAbort = l.onAbort[:0]
	for i := range l.commitGuards {
		l.commitGuards[i] = nil
	}
	l.commitGuards = l.commitGuards[:0]
	for i := range l.abortGuards {
		l.abortGuards[i] = nil
	}
	l.abortGuards = l.abortGuards[:0]
}

// Tx is a transaction: either a top-level atomic region, or an
// open-nested child (created by Open) that commits its effects
// immediately. Closed nesting does not create a new Tx; it pushes a new
// level onto the same Tx. Tx objects are recycled through the owning
// Thread; only the Handle — which outlives the attempt in semantic lock
// tables — is allocated fresh per attempt.
type Tx struct {
	thread *Thread
	// handle identifies the top-level transaction; open-nested children
	// share their top-level ancestor's handle so semantic locks they
	// take are owned by the outermost transaction (paper §3.1: "The
	// owner of a lock is the top-level transaction at the time of the
	// read operation, not the open-nested transaction that actually
	// performs the read").
	handle *Handle
	// outer is the enclosing Tx for an open-nested child, nil for a
	// top-level transaction.
	outer *Tx
	// readVersion is this Tx's read point in whatever space the active
	// protocol's begin hook samples (TL2: the global version clock;
	// NOrec: the commit sequence lock); an open-nested child samples
	// its own, newer read point.
	readVersion uint64
	// snapVersion is the global-clock version the MVCC-lite snapshot
	// branch reads at while snapshot mode is on. It equals readVersion
	// for clock-based protocols but must be tracked separately because
	// NOrec's readVersion lives in sequence-lock space; set by
	// snapshotRead and by SetReadOnly via the protocol's snapshotMark.
	snapVersion uint64
	// eagerLocks tracks the lockwords this Tx (not its open-nested
	// children, which track their own) acquired at Set time under an
	// encounter-time protocol, for release on rollback. Empty under
	// lazy protocols.
	eagerLocks []*varCore
	cur        *level
	// locals holds per-transaction attachments keyed by arbitrary
	// comparable keys; the transactional collections store their
	// thread-local buffers and lock sets here (paper Tables 3, 6, 9
	// "Local Transaction State"). Only the top-level Tx has locals.
	locals map[any]any
	// attempt counts restarts of this top-level transaction, feeding
	// the contention manager's backoff.
	attempt int
	// snapshot marks a read-only MVCC-lite transaction: Var.Get reads
	// the newest value box at or below readVersion (readAt) without
	// recording, validating, locking, or CASing anything, and commit
	// is a no-op. Set on every attempt under Thread.AtomicRead, or
	// mid-attempt by SetReadOnly. Meaningful on the top-level Tx.
	snapshot bool
	// fellBack records that a snapshot attempt of this transaction
	// already fell back to the retry path; SetReadOnly then stays off
	// for the rest of the transaction so the fallback cannot loop.
	fellBack bool

	// Observability state, meaningful only on a top-level Tx (nested
	// and open children route through top()). tracer is the sink
	// captured at the start of the attempt (nil = tracing disabled,
	// the fast path); txid is the process-global transaction id,
	// assigned lazily when a tracer is active; firstBirth is the
	// worker time of the first attempt, for whole-transaction latency;
	// conflict is the pending rollback attribution.
	tracer     obs.Tracer
	txid       uint64
	firstBirth uint64
	conflict   conflictRec
	// mon mirrors tracer for the metrics plane: metrics.On() sampled
	// once at the start of the attempt (the entire disabled-metrics
	// cost), branched on as a plain bool at every counting site.
	// gwaitNs accumulates wall nanoseconds blocked in acquireGuards,
	// flushed by countGuardWaits after the guards are released.
	mon     bool
	gwaitNs uint64
	// gwaits / gwaitOn record commit-guard contention observed by the
	// TryLock probe in acquireGuards: the number of guards this commit
	// or rollback blocked on and the last such guard. Plain field
	// stores — the guard-wait event is emitted after the guards are
	// released (emitGuardWaits), never inside the guard window.
	gwaits  int
	gwaitOn *Guard
}

// Thread returns the worker this transaction runs on.
func (tx *Tx) Thread() *Thread { return tx.thread }

// Handle returns the top-level transaction's handle, suitable for use as
// the owner of semantic locks and as a target of Violate.
func (tx *Tx) Handle() *Handle { return tx.handle }

// Attempt returns how many times this top-level transaction has been
// restarted (0 on the first attempt).
func (tx *Tx) Attempt() int { return tx.top().attempt }

// IsSnapshot reports whether the top-level transaction is running in
// snapshot (read-only) mode. Collections branch on it to take their
// lock-free or lean read paths and to avoid registering handlers that
// would force a fallback.
func (tx *Tx) IsSnapshot() bool { return tx.top().snapshot }

// SetReadOnly declares, mid-transaction, that the rest of this
// transaction only reads: subsequent Var.Gets switch to the invisible
// snapshot path (no read-set entries, no validation, no aborts by
// writers). It is the escape hatch for bodies that are read-only but
// run under Atomic — under AtomicRead snapshot mode is already on.
//
// The declaration is honored only while it can be: a transaction that
// has already buffered writes, and one whose earlier snapshot attempt
// already fell back to the retry path, stays on the ordinary path. A
// later write (or handler registration) silently restarts the attempt
// with snapshot mode off. Reads recorded before the switch remain in
// the read set and are still validated at commit, so the transaction
// stays serializable at its read version.
func (tx *Tx) SetReadOnly() {
	top := tx.top()
	if top.fellBack || top.snapshot {
		return
	}
	for l := top.cur; l != nil; l = l.parent {
		if l.writes.len() > 0 {
			return
		}
	}
	// The snapshot branch reads at a global-clock version; ask the
	// protocol to map the attempt's read point into clock space. If no
	// such mark can be established the declaration is silently dropped
	// and the transaction stays on the ordinary path, which is always
	// correct.
	v, ok := top.thread.proto.snapshotMark(top)
	if !ok {
		return
	}
	top.snapVersion = v
	top.snapshot = true
}

// top returns the outermost Tx (self for top-level transactions).
func (tx *Tx) top() *Tx {
	t := tx
	for t.outer != nil {
		t = t.outer
	}
	return t
}

// Local returns the attachment stored under key on the top-level
// transaction, or nil.
func (tx *Tx) Local(key any) any { return tx.top().locals[key] }

// SetLocal stores an attachment under key on the top-level transaction.
// Attachments live for one attempt: a restart begins with no
// attachments, so collections re-register their buffers and handlers.
func (tx *Tx) SetLocal(key, val any) {
	t := tx.top()
	if t.locals == nil {
		t.locals = make(map[any]any)
	}
	t.locals[key] = val
}

// OnCommit registers fn to run if the transaction commits. The handler
// is associated with the current nesting level: it is discarded if that
// level aborts, promoted to the parent when the level commits, and runs
// (in registration order) after the top-level transaction's memory
// commit succeeds. Registering from an open-nested child attaches the
// handler to the child's *enclosing* level once the child commits.
//
// Handlers registered this way run under the shared fallback guard:
// correct for any handler, but serializing against every other
// fallback-guarded commit. Code tied to a specific collection instance
// should use OnCommitGuarded with that instance's Guard so disjoint
// footprints commit in parallel.
func (tx *Tx) OnCommit(fn func()) { tx.OnCommitGuarded(fallbackGuard, fn) }

// OnCommitGuarded is OnCommit with an explicit guard: the commit
// protocol acquires g (with the rest of the transaction's guard
// footprint, in id order) before the point of no return and holds it
// until every commit handler has run, making fn atomic with the memory
// commit with respect to all other transactions guarded by g.
func (tx *Tx) OnCommitGuarded(g *Guard, fn func()) {
	tx.snapshotFallback()
	l := tx.cur
	l.onCommit = append(l.onCommit, fn)
	l.commitGuards = addGuard(l.commitGuards, g)
}

// snapshotFallback drops a snapshot attempt to the retry path when the
// body does something a read-only transaction cannot honor (handler
// registration implies effects to publish or compensate).
func (tx *Tx) snapshotFallback() {
	if tx.top().snapshot {
		tx.bail(sigFallback, fallbackHandler)
	}
}

// OnAbort registers fn to run if the level it is associated with — and
// therefore the work it compensates for — is rolled back: it runs
// (newest-first) when that level or any enclosing level aborts, and is
// discarded once the top-level transaction commits. Abort handlers are
// the compensation mechanism that undoes effects published by
// open-nested children (paper §4). Like OnCommit, the unguarded form
// maps to the shared fallback guard; prefer OnAbortGuarded.
func (tx *Tx) OnAbort(fn func()) { tx.OnAbortGuarded(fallbackGuard, fn) }

// OnAbortGuarded is OnAbort with an explicit guard, held while fn
// compensates during rollback (and, because an abort handler may still
// be pending when the transaction commits, also during the commit
// window).
func (tx *Tx) OnAbortGuarded(g *Guard, fn func()) {
	tx.snapshotFallback()
	l := tx.cur
	l.onAbort = append(l.onAbort, fn)
	l.abortGuards = addGuard(l.abortGuards, g)
}

// OnTopCommit registers fn at the top-level transaction's root nesting
// level, regardless of the current nesting depth, under the fallback
// guard. The transactional collection classes use the guarded variant
// (together with OnTopAbortGuarded) to implement the paper's §5
// guideline of a single commit handler and a single abort handler per
// transaction and collection, registered by the first operation; see
// the internal/core package documentation for the resulting
// closed-nesting caveat.
func (tx *Tx) OnTopCommit(fn func()) { tx.OnTopCommitGuarded(fallbackGuard, fn) }

// OnTopCommitGuarded registers a commit handler at the root level under
// an explicit guard.
func (tx *Tx) OnTopCommitGuarded(g *Guard, fn func()) {
	tx.snapshotFallback()
	l := tx.top().rootLevel()
	l.onCommit = append(l.onCommit, fn)
	l.commitGuards = addGuard(l.commitGuards, g)
}

// OnTopAbort registers fn at the top-level transaction's root nesting
// level, under the fallback guard; it runs if and only if the whole
// transaction rolls back.
func (tx *Tx) OnTopAbort(fn func()) { tx.OnTopAbortGuarded(fallbackGuard, fn) }

// OnTopAbortGuarded registers an abort handler at the root level under
// an explicit guard.
func (tx *Tx) OnTopAbortGuarded(g *Guard, fn func()) {
	tx.snapshotFallback()
	l := tx.top().rootLevel()
	l.onAbort = append(l.onAbort, fn)
	l.abortGuards = addGuard(l.abortGuards, g)
}

// AddTopGuard widens the top-level transaction's guard footprint with g
// without registering a handler: g joins both the commit and the abort
// footprint of the root level, so the commit protocol (and any rollback)
// acquires it in id order alongside the guards that do carry handlers.
// Striped collections use this when a transaction's single commit/abort
// handler pair is already registered under the first stripe it touched
// and a later operation touches another stripe: the handler will walk
// every touched stripe, so each additional stripe's guard must be in the
// footprint before the handler window opens.
func (tx *Tx) AddTopGuard(g *Guard) {
	tx.snapshotFallback()
	l := tx.top().rootLevel()
	l.commitGuards = addGuard(l.commitGuards, g)
	l.abortGuards = addGuard(l.abortGuards, g)
}

func (tx *Tx) rootLevel() *level {
	l := tx.cur
	for l.parent != nil {
		l = l.parent
	}
	return l
}

// Poll gives the STM an opportunity to observe a pending violation in
// the middle of long straight-line computation; it unwinds to the
// top-level retry loop if another transaction has aborted this one.
func (tx *Tx) Poll() { tx.check() }

// Abort rolls the transaction back and makes Atomic return err without
// retrying (the self-abort of paper §4, for consistency violations
// detected by the program).
func (tx *Tx) Abort(err error) {
	panic(&signal{kind: sigUserAbort, reason: "self abort", err: err})
}

// check unwinds if this transaction has been violated.
func (tx *Tx) check() {
	if tx.handle.violated() {
		panic(&signal{kind: sigViolated, reason: tx.handle.ViolationReason()})
	}
}

// bail unwinds with the given signal kind.
func (tx *Tx) bail(kind sigKind, reason string) {
	panic(&signal{kind: kind, reason: reason})
}

func (tx *Tx) tick(cycles uint64) { tx.thread.Clock.Tick(cycles) }

// extend asks the protocol to revalidate every recorded read and, on
// success, move the transaction's read point forward to the present —
// the partial-rollback retry's way of keeping the enclosing transaction
// viable (see Protocol.extend).
func (tx *Tx) extend() bool {
	return tx.thread.proto.extend(tx)
}

// Nested runs fn as a closed-nested transaction with partial rollback:
// a memory conflict inside fn rolls back and retries only fn, not the
// enclosing transaction. On success the child's reads, writes and
// handlers merge into the parent level. If fn returns an error the
// child aborts (its abort handlers run, its buffered writes vanish) and
// the error is returned to the caller, with the parent still viable.
//
// The paper requires this so commit handlers that apply buffered
// collection updates can conflict and replay without re-executing the
// long-running parent (§4 "Nested transactions: open and closed").
func (tx *Tx) Nested(fn func() error) error {
	t := tx.thread
	for childAttempt := 0; ; childAttempt++ {
		tx.check()
		child := t.getLevel(tx.cur)
		tx.cur = child
		err, sig := runBody(fn)
		tx.cur = child.parent
		switch {
		case sig == nil && err == nil:
			// Child commits: merge into parent.
			child.mergeInto(tx.cur)
			t.putLevel(child)
			return nil
		case sig == nil && err != nil:
			// Child aborts by user request: release anything the
			// protocol held only for this level, compensate and report.
			t.proto.abandonLevel(tx, child)
			child.runAbortHandlers()
			t.putLevel(child)
			return err
		case sig.kind == sigRetry:
			// Memory conflict inside the child: partial rollback. The
			// child can only make progress on retry if the snapshot can
			// be extended past the conflicting commit; otherwise some
			// enclosing read is stale and the whole transaction must
			// restart.
			t.proto.abandonLevel(tx, child)
			child.runAbortHandlers()
			t.putLevel(child)
			tx.thread.Stats.NestedRetries++
			if tx.top().mon {
				mNestedRetries.Add(1)
			}
			if tr := tx.trc(); tr != nil {
				e := tx.event(obs.KindNestedRetry)
				e.Where, e.OtherTx, e.Reason = tx.takeConflict()
				tr.Trace(e)
			}
			if !tx.extend() {
				panic(sig)
			}
			tx.backoffTraced(childAttempt)
		default:
			// Violation or user abort of the whole transaction: this
			// child level is rolled back on the way out; the unwinding
			// rollback's protocol abandon releases any held state.
			child.runAbortHandlers()
			t.putLevel(child)
			panic(sig)
		}
	}
}

// mergeInto merges a committed child level into its parent: reads are
// added if the parent has no entry (the parent's older observation
// wins), writes overwrite, handlers append in registration order.
func (child *level) mergeInto(parent *level) {
	for i := 0; i < child.reads.n; i++ {
		e := child.reads.inline[i]
		if !parent.reads.has(e.c) {
			parent.reads.put(e.c, e.ver, e.box)
		}
	}
	for c, ev := range child.reads.spill {
		if !parent.reads.has(c) {
			parent.reads.put(c, ev.ver, ev.box)
		}
	}
	for i := 0; i < child.writes.n; i++ {
		e := child.writes.inline[i]
		parent.writes.put(e.c, e.val)
	}
	for c, val := range child.writes.spill {
		parent.writes.put(c, val)
	}
	parent.onCommit = append(parent.onCommit, child.onCommit...)
	parent.onAbort = append(parent.onAbort, child.onAbort...)
	for _, g := range child.commitGuards {
		parent.commitGuards = addGuard(parent.commitGuards, g)
	}
	for _, g := range child.abortGuards {
		parent.abortGuards = addGuard(parent.abortGuards, g)
	}
}

// runAbortHandlers runs a level's abort handlers newest-first, so
// compensations undo open-nested effects in reverse order of their
// creation.
func (l *level) runAbortHandlers() {
	for i := len(l.onAbort) - 1; i >= 0; i-- {
		l.onAbort[i]()
	}
	l.onAbort = l.onAbort[:0]
	l.onCommit = l.onCommit[:0]
}

// runBody executes fn, converting signal panics into return values and
// letting real panics propagate.
func runBody(fn func() error) (err error, sig *signal) {
	defer func() {
		if r := recover(); r != nil {
			if s, ok := r.(*signal); ok {
				sig = s
				return
			}
			panic(r)
		}
	}()
	err = fn()
	return
}

// runTx executes fn(tx) like runBody, without allocating an adapter
// closure on the retry path.
func runTx(fn func(*Tx) error, tx *Tx) (err error, sig *signal) {
	defer func() {
		if r := recover(); r != nil {
			if s, ok := r.(*signal); ok {
				sig = s
				return
			}
			panic(r)
		}
	}()
	err = fn(tx)
	return
}

// commit attempts the top-level TL2 commit: acquire the transaction's
// guard footprint in id order (blocking), lock the write set in
// variable-ID order (non-blocking — it cannot deadlock against the
// guards), validate the read set, pass the point of no return
// (Active→Prepared, losing to any in-flight Violate), install at a
// fresh clock tick, then run commit handlers in registration order.
// The guard footprint is the union of the root level's commit and
// abort guards: a transaction that registered only an abort handler
// with a collection still serializes its commit against that
// collection's other users, which is what makes the collection's
// semantic conflict detection atomic with the memory commit (see
// Guard). Transactions with disjoint footprints — or none — do not
// serialize against each other at all. It reports whether the
// transaction committed.
func (tx *Tx) commit() bool {
	l := tx.cur
	if l.parent != nil {
		panic("stm: commit with open nested level")
	}
	gs := tx.thread.sortedGuards(l.commitGuards, l.abortGuards)
	acquireGuards(tx, gs)
	ok := tx.commitGuarded(l)
	releaseGuards(gs)
	tx.countGuardWaits()
	tx.emitGuardWaits()
	if ok {
		tx.tick(CostCommitBase + CostCommitPerWrite*uint64(l.writes.len()))
		tx.thread.flushDeferred()
	}
	return ok
}

// commitGuarded performs validation, installation and handler execution
// without charging any clock time (the caller ticks afterwards, outside
// the commit guard).
func (tx *Tx) commitGuarded(l *level) bool {
	if !tx.publish(l, true) {
		return false
	}
	tx.handle.setCommitted()
	for _, h := range l.onCommit {
		h()
		tx.thread.Stats.HandlerRuns++
	}
	return true
}

// commitOpen installs an open-nested child's writes immediately, like a
// top-level commit but without touching the shared handle's lifecycle
// (the parent remains Active) and without running handlers (they attach
// to the parent instead). A parent violated mid-install still completes
// the install — the attached abort handlers will compensate — and the
// violation is observed at the parent's next check.
func (o *Tx) commitOpen() bool {
	l := o.cur
	if l.parent != nil {
		panic("stm: open commit with open nested level")
	}
	return o.publish(l, false)
}

// publish hands level l to the protocol's commit sequence (acquire,
// validate, for doPrepare pass the point of no return, install at a
// fresh global-clock tick, release — see Protocol.commit and the
// protocol_*.go implementations). On any failure nothing is installed,
// every lock the commit itself took is released, and for doPrepare the
// handle is left un-Prepared so the caller rolls back.
func (tx *Tx) publish(l *level, doPrepare bool) bool {
	return tx.thread.proto.commit(tx, l, doPrepare)
}

// writeBuf is the per-thread sorted write-set scratch; the pointer
// receiver keeps sort.Sort from allocating an interface box.
type writeBuf []writeEntry

func (b *writeBuf) Len() int           { return len(*b) }
func (b *writeBuf) Less(i, j int) bool { return (*b)[i].c.id < (*b)[j].c.id }
func (b *writeBuf) Swap(i, j int)      { (*b)[i], (*b)[j] = (*b)[j], (*b)[i] }

// sortedWrites copies l's write set into the thread's scratch buffer
// sorted by variable ID. The buffer is reused across commits; small
// sets use insertion sort to stay out of sort.Sort's interface calls.
func (t *Thread) sortedWrites(l *level) []writeEntry {
	buf := t.commitBuf[:0]
	buf = append(buf, l.writes.inline[:l.writes.n]...)
	for c, val := range l.writes.spill {
		buf = append(buf, writeEntry{c, val})
	}
	t.commitBuf = buf
	if len(buf) <= 16 {
		for i := 1; i < len(buf); i++ {
			for j := i; j > 0 && buf[j].c.id < buf[j-1].c.id; j-- {
				buf[j], buf[j-1] = buf[j-1], buf[j]
			}
		}
	} else {
		sort.Sort(&t.commitBuf)
	}
	return t.commitBuf
}

// rollback discards the transaction's buffered writes and runs every
// level's abort handlers (compensating any open-nested effects) under
// the union of the guards those handlers were registered with, so
// compensations are atomic with respect to the commits of other
// transactions sharing those collections. A transaction that registered
// no abort handlers — or only commit handlers — acquires no guard at
// all: commit guards are irrelevant once the transaction is rolling
// back, and a guard-free rollback must not serialize behind anyone.
func (tx *Tx) rollback() {
	tx.handle.setAborted()
	t := tx.thread
	// Release whatever the protocol still holds for this attempt (an
	// encounter-time protocol's Set-acquired lockwords) before blocking
	// on the abort-guard footprint.
	t.proto.abandon(tx)
	buf := t.guardBuf[:0]
	for l := tx.cur; l != nil; l = l.parent {
		for _, g := range l.abortGuards {
			buf = addGuard(buf, g)
		}
	}
	t.guardBuf = buf
	gs := sortGuards(buf)
	acquireGuards(tx, gs)
	for l := tx.cur; l != nil; l = l.parent {
		l.runAbortHandlers()
	}
	releaseGuards(gs)
	tx.countGuardWaits()
	tx.emitGuardWaits()
	tx.tick(CostAbort)
	t.flushDeferred()
}
