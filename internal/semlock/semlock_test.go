package semlock

import (
	"testing"

	"tcc/internal/stm"
)

// activeHandle returns a Handle in the Active state, as lock owners are
// in practice. Handles are created by running transactions; for table
// tests a zero Handle is Active by construction.
func activeHandle() Owner { return &stm.Handle{} }

func TestOwnerSetLockUnlock(t *testing.T) {
	s := NewOwnerSet()
	a, b := activeHandle(), activeHandle()
	s.Lock(a)
	s.Lock(a) // idempotent
	s.Lock(b)
	if !s.Holds(a) || !s.Holds(b) || s.Len() != 2 {
		t.Fatalf("holders wrong: len=%d", s.Len())
	}
	s.Unlock(a)
	if s.Holds(a) || !s.Holds(b) {
		t.Fatal("unlock removed wrong owner")
	}
	s.Unlock(a) // no-op
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
}

func TestOwnerSetViolateOthers(t *testing.T) {
	s := NewOwnerSet()
	self, other1, other2 := activeHandle(), activeHandle(), activeHandle()
	s.Lock(self)
	s.Lock(other1)
	s.Lock(other2)
	n := s.ViolateOthers(self, "size conflict")
	if n != 2 {
		t.Fatalf("violated %d, want 2", n)
	}
	if self.Status() != stm.StatusActive {
		t.Fatal("self was violated")
	}
	if other1.Status() != stm.StatusViolated || other2.Status() != stm.StatusViolated {
		t.Fatal("others not violated")
	}
	if other1.ViolationReason() != "size conflict" {
		t.Fatalf("reason = %q", other1.ViolationReason())
	}
}

func TestKeyTableBasics(t *testing.T) {
	kt := NewKeyTable[string]()
	a, b := activeHandle(), activeHandle()
	kt.Lock("x", a)
	kt.Lock("x", b)
	kt.Lock("y", a)
	if !kt.Holds("x", a) || !kt.Holds("x", b) || !kt.Holds("y", a) {
		t.Fatal("locks not recorded")
	}
	if kt.Holds("y", b) {
		t.Fatal("phantom lock")
	}
	kt.Unlock("x", a)
	if kt.Holds("x", a) || !kt.Holds("x", b) {
		t.Fatal("unlock removed wrong lock")
	}
	kt.Unlock("x", b)
	if kt.Locked("x") {
		t.Fatal("key still locked after all unlocks")
	}
	if len(kt.lockers) != 1 {
		t.Fatalf("empty key entries not reclaimed: %d", len(kt.lockers))
	}
	kt.Unlock("z", a) // unlocking unknown key is a no-op
}

func TestKeyTableViolateOthersIsPerKey(t *testing.T) {
	kt := NewKeyTable[int]()
	self, other := activeHandle(), activeHandle()
	bystander := activeHandle()
	kt.Lock(1, self)
	kt.Lock(1, other)
	kt.Lock(2, bystander)
	if n := kt.ViolateOthers(1, self, "key conflict"); n != 1 {
		t.Fatalf("violated %d, want 1", n)
	}
	if bystander.Status() != stm.StatusActive {
		t.Fatal("reader of a different key was violated")
	}
	if other.Status() != stm.StatusViolated {
		t.Fatal("conflicting reader not violated")
	}
}

func TestKeyTableKeyedReasons(t *testing.T) {
	kt := NewKeyTable[int]()
	self, other := activeHandle(), activeHandle()
	kt.Lock(17, self)
	kt.Lock(17, other)
	kt.SetKeyedReasons(true)
	if n := kt.ViolateOthers(17, self, "TestMap: key conflict"); n != 1 {
		t.Fatalf("violated %d, want 1", n)
	}
	if got := other.ViolationReason(); got != "TestMap: key conflict [key=17]" {
		t.Fatalf("reason = %q, want key detail appended", got)
	}
	// Off by default: a fresh table reports the plain reason.
	kt2 := NewKeyTable[int]()
	victim := activeHandle()
	kt2.Lock(3, victim)
	kt2.ViolateOthers(3, activeHandle(), "plain")
	if got := victim.ViolationReason(); got != "plain" {
		t.Fatalf("reason = %q, want %q", got, "plain")
	}
}

func TestViolateSkipsSerializedOwners(t *testing.T) {
	s := NewOwnerSet()
	self, done := activeHandle(), activeHandle()
	// done has already committed: its locks are stale-but-harmless
	// until its release handler runs; it must not count as a conflict.
	if !done.Violate("warm up to active first") {
		t.Fatal("setup violate failed")
	}
	s.Lock(self)
	s.Lock(done)
	// done is now Violated; a second violate reports true (it will
	// abort), so use a Prepared/Committed-like owner instead: build one
	// by committing a real transaction.
	th := stm.NewThread(&stm.RealClock{}, 1)
	var committed Owner
	if err := th.Atomic(func(tx *stm.Tx) error {
		committed = tx.Handle()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s.Lock(committed)
	n := s.ViolateOthers(self, "conflict")
	// 'done' (violated) counts, 'committed' must not.
	if n != 1 {
		t.Fatalf("violated %d, want 1", n)
	}
	if committed.Status() != stm.StatusCommitted {
		t.Fatal("committed owner state changed")
	}
}

func cmpInt(a, b int) int { return a - b }

func TestRangeTableCovers(t *testing.T) {
	rt := NewRangeTable[int](cmpInt)
	lo, hi := 10, 20
	cases := []struct {
		name string
		e    *RangeEntry[int]
		k    int
		want bool
	}{
		{"inside", &RangeEntry[int]{Lo: &lo, Hi: &hi}, 15, true},
		{"at-lo", &RangeEntry[int]{Lo: &lo, Hi: &hi}, 10, true},
		{"at-hi-incl", &RangeEntry[int]{Lo: &lo, Hi: &hi}, 20, true},
		{"at-hi-excl", &RangeEntry[int]{Lo: &lo, Hi: &hi, HiExcl: true}, 20, false},
		{"below", &RangeEntry[int]{Lo: &lo, Hi: &hi}, 9, false},
		{"above", &RangeEntry[int]{Lo: &lo, Hi: &hi}, 21, false},
		{"unbounded-lo", &RangeEntry[int]{Hi: &hi}, -100, true},
		{"unbounded-hi", &RangeEntry[int]{Lo: &lo}, 1000, true},
		{"unbounded-both", &RangeEntry[int]{}, 0, true},
	}
	for _, c := range cases {
		if got := rt.Covers(c.e, c.k); got != c.want {
			t.Errorf("%s: Covers(%d) = %v, want %v", c.name, c.k, got, c.want)
		}
	}
}

func TestRangeTableViolateCovering(t *testing.T) {
	rt := NewRangeTable[int](cmpInt)
	self, iterA, iterB := activeHandle(), activeHandle(), activeHandle()
	lo1, hi1 := 0, 10
	lo2, hi2 := 50, 60
	ea := &RangeEntry[int]{Lo: &lo1, Hi: &hi1, Owner: iterA}
	eb := &RangeEntry[int]{Lo: &lo2, Hi: &hi2, Owner: iterB}
	es := &RangeEntry[int]{Lo: &lo1, Hi: &hi2, Owner: self}
	rt.Add(ea)
	rt.Add(eb)
	rt.Add(es)
	if n := rt.ViolateCovering(5, self, "range conflict"); n != 1 {
		t.Fatalf("violated %d, want 1", n)
	}
	if iterA.Status() != stm.StatusViolated {
		t.Fatal("covering iterator not violated")
	}
	if iterB.Status() != stm.StatusViolated {
		// 5 is outside [50,60]
		t.Log("ok: iterB untouched")
	}
	if iterB.Status() == stm.StatusViolated {
		t.Fatal("non-covering iterator violated")
	}
	rt.Remove(ea)
	if rt.Len() != 2 {
		t.Fatalf("len = %d, want 2", rt.Len())
	}
}

func TestRangeEntryWideningInPlace(t *testing.T) {
	rt := NewRangeTable[int](cmpInt)
	owner, self := activeHandle(), activeHandle()
	lo := 0
	e := &RangeEntry[int]{Lo: &lo, Owner: owner}
	hi := 5
	e.Hi = &hi
	rt.Add(e)
	if rt.ViolateCovering(7, self, "x") != 0 {
		t.Fatal("7 should be outside [0,5]")
	}
	// Iterator advances: widen to 10.
	hi2 := 10
	e.Hi = &hi2
	if rt.ViolateCovering(7, self, "x") != 1 {
		t.Fatal("widened range should cover 7")
	}
}

func TestRangeTableExclusiveLowerBound(t *testing.T) {
	rt := NewRangeTable[int](cmpInt)
	lo, hi := 10, 20
	strict := &RangeEntry[int]{Lo: &lo, LoExcl: true, Hi: &hi}
	if rt.Covers(strict, 10) {
		t.Fatal("exclusive lower bound covered its endpoint")
	}
	if !rt.Covers(strict, 11) || !rt.Covers(strict, 20) {
		t.Fatal("interior/upper coverage wrong")
	}
	inclusive := &RangeEntry[int]{Lo: &lo, Hi: &hi}
	if !rt.Covers(inclusive, 10) {
		t.Fatal("inclusive lower bound missed its endpoint")
	}
}
