package semlock

import "testing"

// The violation-sweep guardrails: once a table's recycled sweep buffer
// has grown to capacity, ViolateOthers / ViolateCovering must not
// allocate. Before the recycling fix each sweep built a fresh []Owner
// (and sort.Slice boxed it), so a hot writer committing against N
// readers paid O(sweeps) garbage on the commit critical path.
//
// Keyed reasons are deliberately off for the KeyTable case: formatting
// the key into the reason string allocates by design (documented on the
// keyed field).

func TestOwnerSetViolateOthersNoAlloc(t *testing.T) {
	s := NewOwnerSet()
	self := activeHandle()
	s.Lock(self)
	for i := 0; i < 8; i++ {
		s.Lock(activeHandle())
	}
	s.ViolateOthers(self, "warm") // grow the sweep buffer once
	if n := testing.AllocsPerRun(100, func() {
		s.ViolateOthers(self, "size conflict")
	}); n != 0 {
		t.Fatalf("OwnerSet.ViolateOthers allocates %v per sweep, want 0", n)
	}
}

func TestKeyTableViolateOthersNoAlloc(t *testing.T) {
	kt := NewKeyTable[int]()
	self := activeHandle()
	kt.Lock(7, self)
	for i := 0; i < 8; i++ {
		kt.Lock(7, activeHandle())
	}
	kt.ViolateOthers(7, self, "warm")
	if n := testing.AllocsPerRun(100, func() {
		kt.ViolateOthers(7, self, "key conflict")
	}); n != 0 {
		t.Fatalf("KeyTable.ViolateOthers allocates %v per sweep, want 0", n)
	}
}

func TestRangeTableViolateCoveringNoAlloc(t *testing.T) {
	rt := NewRangeTable[int](func(a, b int) int { return a - b })
	self := activeHandle()
	for i := 0; i < 8; i++ {
		lo, hi := 0, 100
		rt.Add(&RangeEntry[int]{Lo: &lo, Hi: &hi, Owner: activeHandle()})
	}
	rt.ViolateCovering(50, self, "warm")
	if n := testing.AllocsPerRun(100, func() {
		rt.ViolateCovering(50, self, "range conflict")
	}); n != 0 {
		t.Fatalf("RangeTable.ViolateCovering allocates %v per sweep, want 0", n)
	}
}
